(** Tests for the relax-lint static-analysis pass (lib/lint): each
    fixture module under [test/lint_fixtures/] seeds exactly one rule,
    the clean fixture seeds none, the waived fixture's finding is
    suppressed by its inline comment — and the shipped [lib/] tree
    itself lints clean under the repository configuration. *)

module Lint = Relax_lint

(* Anchor every path to the test binary's own directory
   ([_build/default/test]) so the suite works both under [dune runtest]
   (cwd = that directory) and [dune exec] (cwd = the invocation dir).
   Fixture cmts sit right below it, the repository's below [../lib], and
   cmt-recorded source paths ("test/lint_fixtures/fix_l1.ml",
   "lib/core/search.ml") resolve against the build root [..]. *)
let test_dir =
  let exe = Sys.executable_name in
  let exe =
    if Filename.is_relative exe then Filename.concat (Sys.getcwd ()) exe
    else exe
  in
  Filename.dirname exe

let build_root = Filename.concat test_dir ".."

let fixture_config : Lint.Engine.config =
  {
    root = Filename.concat test_dir "lint_fixtures";
    src_root = build_root;
    obs_dirs = [ "lib/obs" ];
    costing_dirs = [ "lint_fixtures" ];
    intdiv_dirs = [ "lint_fixtures" ];
    core_dirs = [ "lint_fixtures" ];
    lock_dirs = [ "lint_fixtures" ];
    costing_entry_modules = [ "Fix_l7" ];
    assume_parallel = false;
  }

let fixture_result = lazy (Lint.Engine.run fixture_config)

let basename (f : Lint.Finding.t) = Filename.basename f.file
let key (f : Lint.Finding.t) = Printf.sprintf "%s:%d:%s" (basename f) f.line f.rule

let in_file name (fs : Lint.Finding.t list) =
  List.filter (fun f -> basename f = name) fs

let check_findings fixture expected =
  let r = Lazy.force fixture_result in
  Alcotest.(check (list string))
    fixture expected
    (List.map key (in_file fixture r.findings))

let test_l1 () = check_findings "fix_l1.ml" [ "fix_l1.ml:5:L1" ]
let test_l2 () = check_findings "fix_l2.ml" [ "fix_l2.ml:3:L2" ]
let test_l3 () = check_findings "fix_l3.ml" [ "fix_l3.ml:4:L3"; "fix_l3.ml:5:L3" ]
let test_l4 () = check_findings "fix_l4.ml" [ "fix_l4.ml:3:L4" ]

let test_l5 () =
  check_findings "fix_l5.ml"
    [ "fix_l5.ml:3:L5"; "fix_l5.ml:4:L5"; "fix_l5.ml:5:L5" ]

let test_clean () = check_findings "fix_clean.ml" []

(* L6: the first pool closure mutates a captured local, the second
   reaches a wall-clock read two call hops away in another module *)
let test_l6 () =
  check_findings "fix_l6.ml" [ "fix_l6.ml:8:L6"; "fix_l6.ml:15:L6" ]

(* the acceptance demo for the interprocedural analysis: the finding's
   provenance chain crosses a module boundary and two call hops *)
let test_l6_chain () =
  let r = Lazy.force fixture_result in
  let f =
    List.find
      (fun (f : Lint.Finding.t) -> f.rule = "L6" && f.line = 15)
      (in_file "fix_l6.ml" r.findings)
  in
  Alcotest.(check bool)
    "chain crosses into Fix_hop" true
    (Astring_contains.contains f.message
       "Fix_hop.tick -> Fix_hop.raw_now -> Unix.gettimeofday")

(* L7 grounds at the witness site, which lives in the hop module, not
   in the entry module named by the configuration *)
let test_l7 () =
  let r = Lazy.force fixture_result in
  match List.filter (fun (f : Lint.Finding.t) -> f.rule = "L7") r.findings with
  | [ f ] ->
    Alcotest.(check string) "file" "fix_hop.ml" (basename f);
    Alcotest.(check int) "line" 4 f.line;
    Alcotest.(check bool)
      "names the entry" true
      (Astring_contains.contains f.message "Fix_l7.cost");
    Alcotest.(check bool)
      "names the effect" true
      (Astring_contains.contains f.message "reads-clock")
  | fs -> Alcotest.failf "expected exactly one L7 finding, got %d" (List.length fs)

(* the hop module itself carries the direct L5 and hosts the grounded
   L7 witness *)
let test_hop () =
  check_findings "fix_hop.ml" [ "fix_hop.ml:4:L5"; "fix_hop.ml:4:L7" ]

let test_l8 () =
  check_findings "fix_l8.ml" [ "fix_l8.ml:10:L8"; "fix_l8.ml:18:L8" ]

let test_w0 () = check_findings "fix_stale.ml" [ "fix_stale.ml:3:W0" ]

(* mutex use, guarded mutation, and a dissolving capture are all within
   the rules — the effects fixture must lint clean *)
let test_effects_fixture () = check_findings "fix_effects.ml" []

let test_waived () =
  let r = Lazy.force fixture_result in
  check_findings "fix_waived.ml" [];
  Alcotest.(check (list string))
    "waived" [ "fix_waived.ml:4:L5" ]
    (List.map key (in_file "fix_waived.ml" r.waived))

(* the Pool.map reference in fix_l1 seeds the reachability closure with
   that module alone; without it L1 must not fire at all *)
let test_reachability () =
  let r = Lazy.force fixture_result in
  Alcotest.(check bool)
    "fix_l1 in closure" true
    (List.exists
       (fun m -> Filename.check_suffix m "Fix_l1")
       r.parallel_reachable);
  Alcotest.(check bool)
    "fix_l5 not in closure" false
    (List.exists
       (fun m -> Filename.check_suffix m "Fix_l5")
       r.parallel_reachable)

(* with [assume_parallel] every module counts as pool-reachable, so the
   same L1 fixture still fires without its Pool.map seed being found *)
let test_assume_parallel () =
  let r = Lint.Engine.run { fixture_config with assume_parallel = true } in
  Alcotest.(check (list string))
    "fix_l1.ml" [ "fix_l1.ml:5:L1" ]
    (List.map key (in_file "fix_l1.ml" r.findings))

(* the acceptance gate: the shipped library tree has no unwaived
   findings under the repository scopes *)
let test_repo_clean () =
  let config =
    {
      (Lint.Engine.default ~root:(Filename.concat build_root "lib")) with
      src_root = build_root;
    }
  in
  let r = Lint.Engine.run config in
  Alcotest.(check (list string))
    "lib/ findings" []
    (List.map (fun (f : Lint.Finding.t) -> key f) r.findings);
  Alcotest.(check bool) "modules loaded" true (r.modules_checked > 50)

let test_finding_json () =
  let f =
    Lint.Finding.
      {
        rule = "L3";
        file = "lib/core/search.ml";
        line = 42;
        col = 7;
        message = "m";
        suggestion = "s";
      }
  in
  match Relax_obs.Json.of_string (Relax_obs.Json.to_string (Lint.Finding.to_json f)) with
  | Error msg -> Alcotest.failf "reparse failed: %s" msg
  | Ok (Relax_obs.Json.Obj fields) ->
    let str k =
      match List.assoc_opt k fields with
      | Some (Relax_obs.Json.String s) -> s
      | _ -> Alcotest.failf "missing string field %s" k
    in
    Alcotest.(check string) "event" "lint.finding" (str "event");
    Alcotest.(check string) "rule" "L3" (str "rule");
    Alcotest.(check string) "file" "lib/core/search.ml" (str "file")
  | Ok _ -> Alcotest.fail "expected an object"

let suite =
  [
    Alcotest.test_case "fixture: L1 mutable state" `Quick test_l1;
    Alcotest.test_case "fixture: L2 exception hygiene" `Quick test_l2;
    Alcotest.test_case "fixture: L3 costing hygiene" `Quick test_l3;
    Alcotest.test_case "fixture: L4 ambient access" `Quick test_l4;
    Alcotest.test_case "fixture: L5 nondeterminism" `Quick test_l5;
    Alcotest.test_case "fixture: clean module" `Quick test_clean;
    Alcotest.test_case "fixture: L6 parallel purity" `Quick test_l6;
    Alcotest.test_case "fixture: L6 cross-module chain" `Quick test_l6_chain;
    Alcotest.test_case "fixture: L7 costing purity" `Quick test_l7;
    Alcotest.test_case "fixture: hop module findings" `Quick test_hop;
    Alcotest.test_case "fixture: L8 lock discipline" `Quick test_l8;
    Alcotest.test_case "fixture: W0 stale waiver" `Quick test_w0;
    Alcotest.test_case "fixture: effects module clean" `Quick test_effects_fixture;
    Alcotest.test_case "fixture: inline waiver" `Quick test_waived;
    Alcotest.test_case "reachability closure" `Quick test_reachability;
    Alcotest.test_case "assume-parallel scope" `Quick test_assume_parallel;
    Alcotest.test_case "repository lib/ lints clean" `Quick test_repo_clean;
    Alcotest.test_case "finding JSONL schema" `Quick test_finding_json;
  ]
