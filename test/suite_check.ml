(** Tests for the differential invariant checker (lib/check): property
    tests for the §3.3.1 size model and the §3.3.2 cost bounds, the
    structural invariants, and an end-to-end checked tuning run. *)

open Relax_sql.Types
module Query = Relax_sql.Query
module Catalog = Relax_catalog.Catalog
module Index = Relax_physical.Index
module View = Relax_physical.View
module Config = Relax_physical.Config
module Size_model = Relax_physical.Size_model
module O = Relax_optimizer
module T = Relax_tuner
module C = Relax_check
module W = Relax_workloads

let c = Column.make
let cat = lazy (Fixtures.small_catalog ())

(* --- generators ----------------------------------------------------------- *)

let r_cols = [ "a"; "b"; "cc"; "d"; "e"; "sid"; "tid" ]

(* a well-formed random index over r: non-empty key prefix of a random
   permutation, disjoint suffix, optionally clustered *)
let gen_r_index ?(allow_clustered = true) () =
  QCheck.Gen.(
    let* perm = shuffle_l r_cols in
    let* k = int_range 1 3 in
    let keys = List.filteri (fun i _ -> i < k) perm in
    let* ns = int_range 0 3 in
    let suffix = List.filteri (fun i _ -> i < ns) (List.filteri (fun i _ -> i >= k) perm) in
    let* clustered = if allow_clustered then bool else return false in
    return (Index.on "r" ~clustered ~suffix keys))

(* a well-formed configuration: several indexes on r, at most one clustered *)
let gen_config =
  QCheck.Gen.(
    let* n = int_range 1 4 in
    let* idxs = flatten_l (List.init n (fun i -> gen_r_index ~allow_clustered:(i = 0) ())) in
    return (Config.of_indexes idxs))

let arb_config = QCheck.make ~print:Config.fingerprint gen_config

(* --- §3.3.1 size-model properties ------------------------------------------ *)

let index_size rows i =
  let cat = Lazy.force cat in
  Size_model.index_bytes ~rows
    ~width_of:(fun col -> Catalog.col_width cat col)
    ~row_width:(Catalog.row_width cat "r")
    i

(* more rows can never make an index smaller *)
let prop_size_monotone_rows =
  QCheck.Test.make ~name:"index size monotone in row count" ~count:200
    (QCheck.make
       QCheck.Gen.(
         let* i = gen_r_index () in
         let* rows = int_range 1 200_000 in
         let* delta = int_range 0 100_000 in
         return (i, rows, delta)))
    (fun (i, rows, delta) ->
      index_size (float_of_int rows) i
      <= index_size (float_of_int (rows + delta)) i)

(* adding a suffix column can never make an index smaller *)
let prop_size_monotone_suffix =
  QCheck.Test.make ~name:"index size monotone in suffix columns" ~count:200
    (QCheck.make
       QCheck.Gen.(
         let* i = gen_r_index () in
         let* rows = int_range 1 200_000 in
         let* extra = shuffle_l r_cols in
         return (i, rows, List.hd extra)))
    (fun (i, rows, extra_col) ->
      let wider =
        Index.make ~clustered:i.Index.clustered ~keys:i.Index.keys
          ~suffix:(Column_set.add (c "r" extra_col) i.Index.suffix)
          ()
      in
      index_size (float_of_int rows) i <= index_size (float_of_int rows) wider)

(* the closed form agrees with the packing simulation: floor capacities,
   ceil page counts, level by level *)
let prop_size_simulation_agrees =
  QCheck.Test.make ~name:"closed-form size matches packing simulation"
    ~count:300
    (QCheck.make
       QCheck.Gen.(
         let* rows = int_range 1 500_000 in
         let* leaf_width = float_range 1.0 200.0 in
         let* key_width = float_range 1.0 64.0 in
         return (rows, leaf_width, key_width)))
    (fun (rows, leaf_width, key_width) ->
      let rows = float_of_int rows in
      let model = Size_model.btree_pages ~rows ~leaf_width ~key_width () in
      let sim =
        C.Size_check.simulate_btree_pages ~rows ~leaf_width ~key_width ()
      in
      Float.abs (model -. sim) /. Float.max 1.0 model <= 0.02)

(* --- §3.3.2 bound soundness over TPC-H relaxations -------------------------- *)

let tpch = lazy (
  let cat = W.Tpch.catalog ~scale:0.01 () in
  let w = W.Tpch.workload_subset [ 1; 3; 6; 10; 14 ] in
  let inst = T.Instrument.optimal_configuration cat ~base:Config.empty w in
  let prepared = T.Search.prepare w in
  let whatif = O.Whatif.create cat in
  let plans =
    List.map
      (fun (qid, _, sq) ->
        (qid, sq, O.Whatif.plan_select whatif inst.optimal ~qid sq))
      prepared.selects
  in
  let transforms = Array.of_list (T.Transform.enumerate inst.optimal) in
  (cat, inst.optimal, whatif, Array.of_list plans, transforms))

let tpch_bound_context cat config config' tr : T.Cost_bound.context =
  {
    env' = O.Env.make cat config';
    old_env = O.Env.make cat config;
    removed_indexes = T.Transform.removed_indexes config tr;
    removed_views = T.Transform.removed_views tr;
    view_merge =
      (match tr with
      | T.Transform.Merge_views (a, b) -> (
        match View.merge a b with Some m -> Some (m, a, b) | None -> None)
      | _ -> None);
    cbv =
      (fun v ->
        (O.Optimizer.optimize cat Config.empty
           { Query.body = View.definition v; order_by = [] })
          .cost);
    expands = T.Transform.adds_structures tr;
  }

(* the central §3.3.2 claim on a real workload: for any relaxation of the
   TPC-H optimal configuration, the bound dominates the re-optimized cost *)
let prop_bound_sound_tpch =
  QCheck.Test.make ~name:"query_bound >= re-optimized cost (TPC-H)" ~count:100
    (QCheck.make QCheck.Gen.(pair (int_bound 10_000) (int_bound 10_000)))
    (fun (ti, qi) ->
      let cat, optimal, whatif, plans, transforms = Lazy.force tpch in
      if Array.length transforms = 0 then true
      else begin
        let tr = transforms.(ti mod Array.length transforms) in
        let qid, sq, plan = plans.(qi mod Array.length plans) in
        let est v =
          O.Cardinality.spjg (O.Env.make cat Config.empty) (View.definition v)
        in
        match T.Transform.apply ~estimate_rows:est optimal tr with
        | None -> true
        | Some config' ->
          let ctx = tpch_bound_context cat optimal config' tr in
          if not (T.Cost_bound.plan_affected ctx plan) then true
          else begin
            let bound =
              T.Cost_bound.query_bound ~order_by:sq.Query.order_by ctx plan
            in
            let actual =
              (O.Whatif.plan_select whatif config' ~qid sq).O.Plan.cost
            in
            bound >= actual -. (1e-6 *. Float.max 1.0 actual)
          end
      end)

(* --- structural invariants under random transformation sequences ----------- *)

let prop_transforms_preserve_invariants =
  QCheck.Test.make
    ~name:"transform sequences preserve configuration invariants" ~count:100
    (QCheck.pair arb_config
       (QCheck.make QCheck.Gen.(list_size (int_range 1 5) (int_bound 10_000))))
    (fun (config, picks) ->
      let cat = Lazy.force cat in
      let est _ = 1000.0 in
      QCheck.assume (C.Invariants.check cat config = []);
      let rec go config = function
        | [] -> true
        | pick :: rest -> (
          match T.Transform.enumerate config with
          | [] -> true
          | transforms -> (
            let tr = List.nth transforms (pick mod List.length transforms) in
            match T.Transform.apply ~estimate_rows:est config tr with
            | None -> go config rest
            | Some config' ->
              C.Invariants.check cat config' = [] && go config' rest))
      in
      go config picks)

(* Regression: a merge join can consume the key order an index scan
   delivers *incidentally* (the access's request records no order).  The
   §3.3.2 bound used to patch such an access with an unordered
   replacement, producing an invalid plan and a bound *below* the true
   re-optimized cost.  TPC-H Q12 under a config where orders is joined by
   a scan of ix[orders](o_orderkey) reproduces it: merging that index away
   must still yield a sound bound. *)
let test_bound_survives_merge_join_order () =
  let cat, _, _, _, _ = Lazy.force tpch in
  let prepared = T.Search.prepare (W.Tpch.workload_subset [ 3; 10; 12 ]) in
  let whatif = O.Whatif.create cat in
  let plans =
    Array.of_list
      (List.map (fun (qid, _, sq) -> (qid, sq, ())) prepared.selects)
  in
  let i1 =
    Index.on "orders" [ "o_orderdate" ]
      ~suffix:[ "o_custkey"; "o_orderkey"; "o_shippriority" ]
  in
  let i2 = Index.on "orders" [ "o_orderkey" ] in
  let lineitem =
    Index.on "lineitem" [ "l_receiptdate" ]
      ~suffix:[ "l_commitdate"; "l_orderkey"; "l_shipdate"; "l_shipmode" ]
  in
  let config = Config.of_indexes [ i1; i2; lineitem ] in
  let tr = T.Transform.Merge_indexes (i1, i2) in
  let est _ = Alcotest.fail "no views involved" in
  match T.Transform.apply ~estimate_rows:est config tr with
  | None -> Alcotest.fail "merge unexpectedly inapplicable"
  | Some config' ->
    let checked = ref 0 in
    Array.iter
      (fun (qid, sq, _) ->
        let plan = O.Whatif.plan_select whatif config ~qid sq in
        let ctx = tpch_bound_context cat config config' tr in
        if T.Cost_bound.plan_affected ctx plan then begin
          incr checked;
          let bound =
            T.Cost_bound.query_bound ~order_by:sq.Query.order_by ctx plan
          in
          let actual =
            (O.Whatif.plan_select whatif config' ~qid sq).O.Plan.cost
          in
          if bound < actual -. (1e-6 *. actual) then
            Alcotest.failf "%s: bound %.3f below re-optimized cost %.3f" qid
              bound actual
        end)
      plans;
    Alcotest.(check bool) "at least one plan affected" true (!checked > 0)

(* The swapped-argument variant: merged keeps o_orderkey as its key, so it
   *can* deliver the merge join's order — but only if the optimizer asks for
   it.  Before the DP considered join-key interesting orders, the cheapest
   *unordered* orders access under C' (the distractor below) delivered the
   wrong order, the merge-join plan the bound patches to was outside the
   optimizer's plan space, and the bound undercut the re-optimized cost. *)
let test_bound_survives_swapped_merge () =
  let cat, _, _, _, _ = Lazy.force tpch in
  let prepared = T.Search.prepare (W.Tpch.workload_subset [ 12 ]) in
  let whatif = O.Whatif.create cat in
  let i1 = Index.on "orders" [ "o_orderkey" ] in
  let i2 =
    Index.on "orders" [ "o_orderdate" ]
      ~suffix:[ "o_custkey"; "o_orderkey"; "o_shippriority" ]
  in
  let distractor =
    Index.on "orders" [ "o_orderdate" ] ~suffix:[ "o_custkey"; "o_orderkey" ]
  in
  let lineitem =
    Index.on "lineitem"
      [ "l_shipmode"; "l_receiptdate" ]
      ~suffix:[ "l_commitdate"; "l_orderkey"; "l_shipdate" ]
  in
  let config = Config.of_indexes [ i1; i2; distractor; lineitem ] in
  let tr = T.Transform.Merge_indexes (i1, i2) in
  let est _ = Alcotest.fail "no views involved" in
  match T.Transform.apply ~estimate_rows:est config tr with
  | None -> Alcotest.fail "merge unexpectedly inapplicable"
  | Some config' ->
    let checked = ref 0 in
    List.iter
      (fun (qid, _, sq) ->
        let plan = O.Whatif.plan_select whatif config ~qid sq in
        let ctx = tpch_bound_context cat config config' tr in
        if T.Cost_bound.plan_affected ctx plan then begin
          incr checked;
          let bound =
            T.Cost_bound.query_bound ~order_by:sq.Query.order_by ctx plan
          in
          let actual =
            (O.Whatif.plan_select whatif config' ~qid sq).O.Plan.cost
          in
          if bound < actual -. (1e-6 *. actual) then
            Alcotest.failf "%s: bound %.3f below re-optimized cost %.3f" qid
              bound actual
        end)
      prepared.selects;
    Alcotest.(check bool) "at least one plan affected" true (!checked > 0)

(* An access's output cardinality must be a function of the request alone,
   never of the physical path chosen — the §3.3.2 patching argument keeps
   the rest of the plan (costed on the old access's cardinality) unchanged.
   Two indexes keyed on the same column used to break this: their rid
   intersection multiplied both seeks' selectivities, double-counting the
   shared predicate. *)
let test_access_cardinality_path_independent () =
  let cat, _, _, _, _ = Lazy.force tpch in
  let i1 =
    Index.on "lineitem" [ "l_shipdate" ]
      ~suffix:[ "l_discount"; "l_extendedprice"; "l_quantity" ]
  in
  let i2 =
    Index.on "lineitem" [ "l_shipdate" ] ~suffix:[ "l_extendedprice"; "l_orderkey" ]
  in
  let request =
    O.Request.make ~rel:"lineitem"
      ~ranges:
        [
          Relax_sql.Predicate.range
            ~lo:(Relax_sql.Predicate.bound (VDate 9497))
            ~hi:(Relax_sql.Predicate.bound ~inclusive:false (VDate 9527))
            (c "lineitem" "l_shipdate");
        ]
      ~cols:
        (Column_set.of_list
           [ c "lineitem" "l_extendedprice"; c "lineitem" "l_partkey" ])
      ()
  in
  let rows_under config =
    (O.Access_path.best (O.Env.make cat config) request).O.Plan.rows
  in
  let heap_rows = rows_under Config.empty in
  let indexed_rows = rows_under (Config.of_indexes [ i1; i2 ]) in
  Alcotest.(check (float 1e-6))
    "cardinality independent of access path" heap_rows indexed_rows

(* --- unit tests ------------------------------------------------------------- *)

let test_invariants_catch_double_clustered () =
  let cat = Lazy.force cat in
  let config =
    Config.of_indexes
      [ Index.on "r" ~clustered:true [ "a" ]; Index.on "r" ~clustered:true [ "b" ] ]
  in
  let violations = C.Invariants.check cat config in
  Alcotest.(check bool) "detected" true
    (List.exists
       (fun (v : C.Invariants.violation) -> v.rule = "clustered_unique")
       violations)

let test_invariants_catch_unknown_column () =
  let cat = Lazy.force cat in
  let config = Config.of_indexes [ Index.on "r" [ "nonexistent" ] ] in
  let violations = C.Invariants.check cat config in
  Alcotest.(check bool) "detected" true
    (List.exists
       (fun (v : C.Invariants.violation) -> v.rule = "unknown_column")
       violations)

let test_invariants_accept_wellformed () =
  let cat = Lazy.force cat in
  let config =
    Config.of_indexes
      [ Index.on "r" ~clustered:true [ "a" ]; Index.on "s" [ "x" ] ~suffix:[ "y" ] ]
  in
  Alcotest.(check int) "no violations" 0
    (List.length (C.Invariants.check cat config))

let test_drift_bucketing () =
  let d = C.Drift.create () in
  List.iter (C.Drift.add d) [ 0.3; 0.95; 1.0; 1.005; 1.5; 50.0; Float.nan ];
  Alcotest.(check int) "count includes non-finite" 7 (C.Drift.count d);
  let b = C.Drift.buckets d in
  let get l = List.assoc l b in
  Alcotest.(check int) "<0.5" 1 (get "<0.5");
  Alcotest.(check int) "0.9-0.99" 1 (get "0.9-0.99");
  Alcotest.(check int) "1.0-1.01" 2 (get "1.0-1.01");
  Alcotest.(check int) "1.1-2" 1 (get "1.1-2");
  Alcotest.(check int) ">=10" 1 (get ">=10");
  Alcotest.(check int) "non-finite" 1 (get "non-finite")

(* bound-vs-whatif comparisons go through the Cost_bound epsilon
   helpers: a bound within relative [bound_epsilon] of the re-optimized
   cost must not surface as a spurious check.violation, while a genuine
   violation still must *)
let test_bound_epsilon_tolerance () =
  let tol = C.Checker.default_tolerances in
  Alcotest.(check bool) "dominating bound ok" true
    (C.Checker.bound_ok tol ~bound:101.0 ~actual:100.0);
  Alcotest.(check bool) "exactly-met bound ok" true
    (C.Checker.bound_ok tol ~bound:100.0 ~actual:100.0);
  Alcotest.(check bool) "within-epsilon accumulation noise ok" true
    (C.Checker.bound_ok tol ~bound:(100.0 *. (1.0 -. 1e-8)) ~actual:100.0);
  Alcotest.(check bool) "violation at scale reported" false
    (C.Checker.bound_ok tol ~bound:99.0 ~actual:100.0);
  Alcotest.(check bool) "violation near zero reported" false
    (C.Checker.bound_ok tol ~bound:0.0 ~actual:1e-3)

(* end to end: a checked tuning run on the small catalog reports zero
   violations and visits every iteration *)
let test_checked_run_clean () =
  let cat = Lazy.force cat in
  let workload =
    List.mapi
      (fun i s -> Query.entry (Printf.sprintf "q%d" (i + 1)) (Relax_sql.Parser.statement s))
      [
        "SELECT r.a, r.b FROM r WHERE r.a = 5";
        "SELECT r.b, r.e FROM r WHERE r.b = 7 AND r.d < 10";
        "SELECT r.a, r.cc FROM r WHERE r.a < 50 ORDER BY r.cc";
        "SELECT r.d, SUM(r.a) FROM r GROUP BY r.d";
        "SELECT s.x, s.y FROM s WHERE s.x = 3";
      ]
  in
  let checker =
    C.Checker.create cat ~workload ~protected:Config.empty ()
  in
  let opts =
    {
      (T.Tuner.default_options ~space_budget:(4.0 *. 1024.0 *. 1024.0) ())
      with
      max_iterations = 30;
      on_iteration = Some (C.Checker.hook checker);
    }
  in
  let r = T.Tuner.tune cat workload opts in
  let report = C.Checker.report checker in
  Alcotest.(check int) "every iteration checked" r.iterations
    report.iterations_checked;
  if not (C.Checker.ok report) then
    Alcotest.failf "unexpected violations:@.%a" C.Checker.pp_report report

(* the checker's oracles must not leak probes into the run's recorder: a
   checked and an unchecked run produce identical metrics *)
let test_checker_does_not_pollute_metrics () =
  let cat = Lazy.force cat in
  let workload =
    [ Query.entry "q1" (Relax_sql.Parser.statement "SELECT r.a FROM r WHERE r.a = 5") ]
  in
  let run ~with_checker =
    let checker =
      if with_checker then
        Some (C.Checker.create cat ~workload ~protected:Config.empty ())
      else None
    in
    let opts =
      {
        (T.Tuner.default_options ~space_budget:infinity ()) with
        max_iterations = 10;
        on_iteration = Option.map C.Checker.hook checker;
      }
    in
    let r = T.Tuner.tune cat workload opts in
    (r.metrics.what_if_calls, r.iterations)
  in
  let whatif1, it1 = run ~with_checker:false in
  let whatif2, it2 = run ~with_checker:true in
  Alcotest.(check int) "same iterations" it1 it2;
  Alcotest.(check int) "same what-if calls" whatif1 whatif2

let suite =
  [
    QCheck_alcotest.to_alcotest prop_size_monotone_rows;
    QCheck_alcotest.to_alcotest prop_size_monotone_suffix;
    QCheck_alcotest.to_alcotest prop_size_simulation_agrees;
    QCheck_alcotest.to_alcotest prop_bound_sound_tpch;
    QCheck_alcotest.to_alcotest prop_transforms_preserve_invariants;
    Alcotest.test_case "invariants: double clustered" `Quick
      test_invariants_catch_double_clustered;
    Alcotest.test_case "invariants: unknown column" `Quick
      test_invariants_catch_unknown_column;
    Alcotest.test_case "invariants: well-formed ok" `Quick
      test_invariants_accept_wellformed;
    Alcotest.test_case "drift: bucketing" `Quick test_drift_bucketing;
    Alcotest.test_case "bound: merge-join consumed order" `Quick
      test_bound_survives_merge_join_order;
    Alcotest.test_case "bound: swapped merge interesting order" `Quick
      test_bound_survives_swapped_merge;
    Alcotest.test_case "access cardinality path-independent" `Quick
      test_access_cardinality_path_independent;
    Alcotest.test_case "bound: epsilon tolerance" `Quick
      test_bound_epsilon_tolerance;
    Alcotest.test_case "checker: clean run" `Quick test_checked_run_clean;
    Alcotest.test_case "checker: no metric pollution" `Quick
      test_checker_does_not_pollute_metrics;
  ]
