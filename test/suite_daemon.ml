(** Tests for the continuous tuning daemon and its supporting layers: the
    durable Config JSON codec (round-trip and fingerprint preservation,
    randomized), the decayed sliding window (monotone decay, rotation,
    capacity eviction), the JSONL stream codec, the guardrail verdicts,
    warm-vs-cold re-tune economy, deterministic replay across [--jobs],
    guardrail auto-rollback with byte-identical restore, the bounded
    advisory-bounds store, the frugal tier on an update workload, and a
    spawned [relaxd] process signalled mid-stream (clean SIGTERM exit,
    well-formed JSONL). *)

module Query = Relax_sql.Query
module Index = Relax_physical.Index
module View = Relax_physical.View
module Config = Relax_physical.Config
module Config_json = Relax_physical.Config_json
module O = Relax_optimizer
module T = Relax_tuner
module C = Relax_check
module D = Relax_daemon
module W = Relax_workloads

let cat = lazy (Fixtures.small_catalog ())

(* --- Config JSON round-trip ----------------------------------------------- *)

let arb_config =
  let gen =
    QCheck.Gen.(
      let col_pool = [ "id"; "a"; "b"; "cc"; "d"; "e" ] in
      let arb_index =
        let* nk = int_range 1 4 in
        let* perm = shuffle_l col_pool in
        let keys = List.filteri (fun i _ -> i < nk) perm in
        let* ns = int_range 0 2 in
        let rest = List.filteri (fun i _ -> i >= nk) perm in
        let suffix = List.filteri (fun i _ -> i < ns) rest in
        return (Index.on "r" keys ~suffix)
      in
      let* n = int_range 0 4 in
      let* idxs = list_size (return n) arb_index in
      return (Config.of_indexes idxs))
  in
  QCheck.make ~print:Config.fingerprint gen

let prop_config_json_roundtrip =
  QCheck.Test.make ~name:"Config JSON round-trip: parse . print = id"
    ~count:300 arb_config (fun config ->
      let s = Config_json.to_string config in
      match Config_json.of_string s with
      | Error msg -> QCheck.Test.fail_reportf "does not parse back: %s" msg
      | Ok config' ->
        String.equal (Config.fingerprint config) (Config.fingerprint config')
        && String.equal s (Config_json.to_string config'))

let test_config_json_views () =
  let sq =
    Fixtures.parse_select
      "SELECT r.a, SUM(r.cc) FROM r, s WHERE r.sid = s.id AND r.b < 42 \
       GROUP BY r.a"
  in
  let v = View.make sq.Query.body in
  let config =
    Config.add_view
      (Config.of_indexes [ Index.on "r" [ "a" ] ~suffix:[ "cc" ] ])
      v ~rows:123.5
  in
  let s = Config_json.to_string config in
  match Config_json.of_string s with
  | Error msg -> Alcotest.failf "view config does not parse back: %s" msg
  | Ok config' ->
    Alcotest.(check string)
      "fingerprint preserved" (Config.fingerprint config)
      (Config.fingerprint config');
    Alcotest.(check string) "JSON stable" s (Config_json.to_string config');
    (match Config.views_with_rows config' with
    | [ (_, rows) ] -> Fixtures.check_float "view rows preserved" 123.5 rows
    | l -> Alcotest.failf "expected 1 view, got %d" (List.length l))

let test_config_json_rejects_garbage () =
  let bad s =
    match Config_json.of_string s with
    | Ok _ -> Alcotest.failf "parsed garbage: %s" s
    | Error _ -> ()
  in
  bad "";
  bad "[]";
  bad {|{"version":99,"indexes":[],"views":[]}|};
  bad {|{"version":1,"indexes":[{"keys":[]}],"views":[]}|};
  bad {|{"version":1,"indexes":[{"keys":[["r"]],"suffix":[],"clustered":false}],"views":[]}|}

(* --- the sliding window --------------------------------------------------- *)

let select_a = "SELECT r.a FROM r WHERE r.b < 10"
let select_a' = "SELECT r.a FROM r WHERE r.b < 99"
let select_d = "SELECT r.d FROM r WHERE r.cc < 500"

let entry ?(weight = 1.0) qid sql =
  { Query.qid; weight; stmt = Relax_sql.Parser.statement sql }

let test_window_basics () =
  let w = D.Window.create ~decay:0.9 () in
  D.Window.add w (entry "q1" select_a);
  D.Window.add w (entry "q2" select_d);
  (* same template as q1 (constants differ): reinforces, no new template *)
  D.Window.add w (entry "q3" select_a');
  Alcotest.(check int) "two templates" 2 (D.Window.size w);
  Alcotest.(check int) "three arrivals" 3 (D.Window.statements_seen w);
  let wl = D.Window.workload w in
  Alcotest.(check (list string))
    "stable daemon qids in creation order" [ "w000"; "w001" ]
    (List.map (fun (e : Query.entry) -> e.qid) wl);
  (* the reinforced template outweighs the single-arrival one *)
  match D.Window.weights w with
  | [ (_, wa); (_, wd) ] ->
    Alcotest.(check bool) "reinforced heavier" true (wa > wd)
  | l -> Alcotest.failf "expected 2 weights, got %d" (List.length l)

let prop_window_decay_monotone =
  QCheck.Test.make ~name:"window decay: weights monotone non-increasing"
    ~count:100
    QCheck.(pair (float_range 0.05 1.0) (int_range 1 30))
    (fun (decay, ticks) ->
      let w = D.Window.create ~decay () in
      D.Window.add w (entry "q1" select_a);
      D.Window.add w (entry "q2" select_d);
      let rec go prev k =
        if k = 0 then true
        else begin
          D.Window.tick w;
          let now = List.map snd (D.Window.weights w) in
          List.for_all2 (fun a b -> b <= a +. 1e-12) prev now
          && go now (k - 1)
        end
      in
      go (List.map snd (D.Window.weights w)) ticks)

let test_window_rotation () =
  let w = D.Window.create ~decay:0.5 ~min_weight:0.1 () in
  D.Window.add w (entry "q1" select_a);
  D.Window.add w (entry "q2" select_d);
  (* refresh case: q1's template arrives again with new constants *)
  D.Window.add w (entry "q3" select_a');
  let r = D.Window.rotate w in
  Alcotest.(check (list string)) "no drops yet" [] r.D.Window.dropped;
  Alcotest.(check (list string))
    "representative refreshed" [ "w000" ] r.D.Window.refreshed;
  Alcotest.(check bool)
    "refreshed qid queued for eviction" true
    (List.mem "w000" (D.Window.drain_evictions w));
  (* the workload now carries the latest constants *)
  let rep =
    List.find (fun (e : Query.entry) -> e.qid = "w000") (D.Window.workload w)
  in
  Alcotest.(check string)
    "refreshed representative" select_a'
    (Relax_sql.Pretty.statement_to_string rep.stmt);
  (* decay both templates under the floor, rotate: both dropped *)
  for _ = 1 to 8 do
    D.Window.tick w
  done;
  let r = D.Window.rotate w in
  Alcotest.(check (list string))
    "faded templates dropped" [ "w000"; "w001" ] r.D.Window.dropped;
  Alcotest.(check int) "window empty" 0 (D.Window.size w)

let test_window_capacity_eviction () =
  let w = D.Window.create ~capacity:2 ~decay:1.0 () in
  D.Window.add w (entry ~weight:5.0 "q1" select_a);
  D.Window.add w (entry ~weight:1.0 "q2" select_d);
  (* a third template evicts the lightest (q2's) *)
  D.Window.add w (entry ~weight:2.0 "q3" "SELECT r.e FROM r WHERE r.a < 7");
  Alcotest.(check int) "capacity held" 2 (D.Window.size w);
  Alcotest.(check bool)
    "lightest evicted and queued" true
    (List.mem "w001" (D.Window.drain_evictions w))

(* --- the stream codec ----------------------------------------------------- *)

let test_stream_parse () =
  (match D.Stream.parse_line {|{"qid":"q","sql":"SELECT r.a FROM r","weight":2.5}|} with
  | Ok e ->
    Alcotest.(check string) "qid" "q" e.Query.qid;
    Fixtures.check_float "weight" 2.5 e.Query.weight
  | Error msg -> Alcotest.failf "good line rejected: %s" msg);
  (match D.Stream.parse_line {|{"sql":"SELECT r.a FROM r"}|} with
  | Ok e -> Fixtures.check_float "default weight" 1.0 e.Query.weight
  | Error msg -> Alcotest.failf "minimal line rejected: %s" msg);
  let bad l =
    match D.Stream.parse_line l with
    | Ok _ -> Alcotest.failf "parsed malformed line: %s" l
    | Error _ -> ()
  in
  bad "not json";
  bad {|{"weight":1.0}|};
  bad {|{"sql":42}|};
  bad {|{"sql":"SELEKT nonsense"}|}

let test_stream_roundtrip () =
  let e = entry ~weight:3.25 "q7" select_a in
  match D.Stream.parse_line (D.Stream.line_of_entry e) with
  | Error msg -> Alcotest.failf "round-trip failed: %s" msg
  | Ok e' ->
    Alcotest.(check string) "qid" "q7" e'.Query.qid;
    Fixtures.check_float "weight" 3.25 e'.Query.weight;
    Alcotest.(check string)
      "statement" select_a
      (Relax_sql.Pretty.statement_to_string e'.Query.stmt)

(* --- the guardrail -------------------------------------------------------- *)

let workload_small () =
  [
    entry "q1" "SELECT r.a FROM r WHERE r.b < 10";
    entry "q2" "SELECT r.d, SUM(r.cc) FROM r WHERE r.a < 200 GROUP BY r.d";
  ]

let test_guardrail_verdicts () =
  let cat = Lazy.force cat in
  let workload = workload_small () in
  let config =
    Config.of_indexes [ Index.on "r" [ "b" ] ~suffix:[ "a" ] ]
  in
  let cost = T.Tuner.workload_cost cat config workload in
  let v =
    C.Guardrail.validate cat ~workload ~space_budget:infinity
      ~claimed_cost:cost config
  in
  Alcotest.(check bool) "sane proposal passes" true v.C.Guardrail.passed;
  (* a wildly wrong claimed cost must fail the independent recompute *)
  let v =
    C.Guardrail.validate cat ~workload ~space_budget:infinity
      ~claimed_cost:(cost /. 10.0) config
  in
  Alcotest.(check bool) "wrong claimed cost fails" false v.C.Guardrail.passed;
  (* a busted space budget must fail *)
  let v =
    C.Guardrail.validate cat ~workload ~space_budget:1.0 ~claimed_cost:cost
      config
  in
  Alcotest.(check bool) "space budget fails" false v.C.Guardrail.passed;
  Alcotest.(check bool) "reasons reported" true (v.C.Guardrail.reasons <> [])

let test_drift_predicate () =
  let open C.Guardrail in
  Alcotest.(check bool) "within margin" false
    (drift_exceeded ~margin:0.25 ~predicted:100.0 ~realized:120.0);
  Alcotest.(check bool) "beyond margin" true
    (drift_exceeded ~margin:0.25 ~predicted:100.0 ~realized:130.0);
  Alcotest.(check bool) "one-sided: cheaper never fires" false
    (drift_exceeded ~margin:0.25 ~predicted:100.0 ~realized:10.0);
  Fixtures.check_float "ratio" 1.3 (drift_ratio ~predicted:100.0 ~realized:130.0)

(* --- daemon cycles -------------------------------------------------------- *)

let stream_of_reps reps =
  (* [reps] repetitions of the two-template workload, constants varied so
     templates reinforce rather than duplicate *)
  List.concat_map
    (fun i ->
      [
        entry
          (Printf.sprintf "a%d" i)
          (Printf.sprintf "SELECT r.a FROM r WHERE r.b < %d" (10 + i));
        entry
          (Printf.sprintf "d%d" i)
          (Printf.sprintf
             "SELECT r.d, SUM(r.cc) FROM r WHERE r.a < %d GROUP BY r.d"
             (200 + i));
      ])
    (List.init reps Fun.id)

let daemon_opts ?(warm = true) ?(jobs = 1) ?inject () =
  {
    (D.Daemon.default_options ~space_budget:infinity ()) with
    mode = T.Tuner.Indexes_only;
    retune_every = 4;
    min_statements = 4;
    rotate_every = 0;
    max_iterations = 60;
    jobs;
    warm;
    inject_drift = inject;
  }

let replay opts stream =
  let d = D.Daemon.create (Lazy.force cat) opts in
  List.iter (fun e -> ignore (D.Daemon.ingest d e)) stream;
  ignore (D.Daemon.finalize d);
  d

let test_daemon_warm_fewer_calls () =
  let stream = stream_of_reps 6 in
  let warm = replay (daemon_opts ~warm:true ()) stream in
  let cold = replay (daemon_opts ~warm:false ()) stream in
  let calls d =
    List.map
      (fun (r : D.Daemon.retune) -> r.what_if_calls)
      (D.Daemon.history d)
  in
  let sum = List.fold_left ( + ) 0 in
  Alcotest.(check bool) "several retunes ran" true (D.Daemon.retunes warm >= 3);
  Alcotest.(check string)
    "warm and cold converge to the same deployment"
    (Config.fingerprint (D.Daemon.deployed cold))
    (Config.fingerprint (D.Daemon.deployed warm));
  Alcotest.(check bool)
    (Printf.sprintf "warm re-tunes spend fewer what-if calls (%d < %d)"
       (sum (calls warm)) (sum (calls cold)))
    true
    (sum (calls warm) < sum (calls cold));
  (* after the first deploy the warm path answers from cache *)
  match calls warm with
  | first :: rest ->
    Alcotest.(check bool) "first cycle pays" true (first > 0);
    Alcotest.(check bool) "later cycles cheaper" true
      (List.for_all (fun c -> c < first) rest)
  | [] -> Alcotest.fail "no retunes"

let test_daemon_deterministic_replay () =
  let stream = stream_of_reps 6 in
  let trail jobs =
    let d = replay (daemon_opts ~jobs ()) stream in
    List.map
      (fun (r : D.Daemon.retune) ->
        ( r.ordinal,
          (match r.action with
          | D.Daemon.Steady -> "steady"
          | D.Daemon.Deployed delta ->
            "deploy:" ^ Relax_physical.Ddl.delta_to_string delta
          | D.Daemon.Rejected _ -> "reject"
          | D.Daemon.Rolled_back _ -> "rollback") ))
      (D.Daemon.history d)
    @ [ (-1, Config_json.to_string (D.Daemon.deployed d)) ]
  in
  let t1 = trail 1 and t4 = trail 4 in
  Alcotest.(check (list (pair int string)))
    "identical delta sequence at --jobs 1 and 4" t1 t4

let test_daemon_rollback () =
  let stream = stream_of_reps 6 in
  let opts = daemon_opts ~inject:(2, 50.0) () in
  let d = D.Daemon.create (Lazy.force cat) opts in
  let initial_json = D.Daemon.deployed_json d in
  let pre_deploy = ref initial_json and prev = ref initial_json in
  let rollback_json = ref None in
  List.iter
    (fun e ->
      match D.Daemon.ingest d e with
      | None -> ()
      | Some r ->
        let json = D.Daemon.deployed_json d in
        (match r.action with
        | D.Daemon.Deployed _ -> pre_deploy := !prev
        | D.Daemon.Rolled_back _ -> rollback_json := Some (json, !pre_deploy)
        | _ -> ());
        prev := json)
    stream;
  ignore (D.Daemon.finalize d);
  Alcotest.(check int) "exactly one rollback" 1 (D.Daemon.rollbacks d);
  match !rollback_json with
  | None -> Alcotest.fail "no rollback observed"
  | Some (restored, expected) ->
    Alcotest.(check string)
      "previous deployment restored byte-identically" expected restored

let test_daemon_state_persistence () =
  let stream = stream_of_reps 6 in
  let path = Filename.temp_file "relaxd_state" ".json" in
  let opts = { (daemon_opts ()) with state_path = Some path } in
  let d = replay opts stream in
  let persisted = String.trim (In_channel.with_open_bin path In_channel.input_all) in
  Alcotest.(check string)
    "state file holds the deployment" (D.Daemon.deployed_json d) persisted;
  (* a restarted daemon resumes from the persisted deployment *)
  let d2 = D.Daemon.create (Lazy.force cat) opts in
  Alcotest.(check string)
    "warm-loaded on restart"
    (Config.fingerprint (D.Daemon.deployed d))
    (Config.fingerprint (D.Daemon.deployed d2));
  Sys.remove path

(* --- the bounded advisory-bounds store ------------------------------------ *)

let test_bounds_store_bounded () =
  let cat = Lazy.force cat in
  let whatif = O.Whatif.create cat in
  let workload = workload_small () in
  (* hammer one qid with hundreds of distinct configurations: the store
     must stay within its per-qid cap instead of growing per call *)
  for i = 0 to 199 do
    let idx =
      if i mod 2 = 0 then
        Index.on "r" [ "b" ] ~suffix:[ List.nth [ "a"; "cc"; "d"; "e"; "id" ] (i mod 5) ]
      else Index.on "r" [ List.nth [ "a"; "b"; "cc"; "d"; "id" ] (i mod 5) ]
    in
    ignore (O.Whatif.workload_cost whatif (Config.of_indexes [ idx ]) workload)
  done;
  let size = O.Whatif.bounds_size whatif in
  Alcotest.(check bool)
    (Printf.sprintf "bounds store bounded (%d records)" size)
    true
    (size > 0 && size <= 32 * 3);
  O.Whatif.reset_bounds whatif;
  Alcotest.(check int) "reset drops everything" 0 (O.Whatif.bounds_size whatif)

let test_whatif_evict () =
  let cat = Lazy.force cat in
  let whatif = O.Whatif.create cat in
  let workload = workload_small () in
  ignore (O.Whatif.workload_cost whatif Config.empty workload);
  let calls0, _ = O.Whatif.stats whatif in
  (* everything cached: a recost is free *)
  ignore (O.Whatif.workload_cost whatif Config.empty workload);
  let calls1, _ = O.Whatif.stats whatif in
  Alcotest.(check int) "fully cached" calls0 calls1;
  Alcotest.(check bool) "bounds recorded" true (O.Whatif.bounds_size whatif > 0);
  (* evicting q1 forces its re-optimization but keeps q2 cached *)
  O.Whatif.evict whatif ~keep:(fun q -> q <> "q1");
  ignore (O.Whatif.workload_cost whatif Config.empty workload);
  let calls2, _ = O.Whatif.stats whatif in
  Alcotest.(check int) "only the evicted qid re-optimized" (calls1 + 1) calls2

(* --- the frugal tier on an update workload -------------------------------- *)

let test_frugal_dml_bound_hits () =
  let cat = Lazy.force cat in
  let workload =
    [
      entry "q1" "SELECT r.a FROM r WHERE r.b < 10";
      entry ~weight:2.0 "u1" "UPDATE r SET a = 1 WHERE r.b < 25";
      entry ~weight:2.0 "u2" "UPDATE r SET d = 2 WHERE r.cc < 300";
    ]
  in
  let obs = Relax_obs.Recorder.create () in
  let r =
    T.Tuner.tune ~obs cat workload
      {
        (T.Tuner.default_options ~mode:T.Tuner.Indexes_only
           ~space_budget:infinity ())
        with
        max_iterations = 80;
        jobs = 1;
        whatif_budget = Some 8;
      }
  in
  let m = r.T.Tuner.metrics in
  let named name =
    Option.value ~default:0 (List.assoc_opt name m.named_counters)
  in
  (* the point of the shared select-qid helper: advisory bounds recorded
     for DML select components are found again, so the frugal tier
     decides candidates from bounds on an update-heavy workload *)
  let bound_hits = named "whatif.bound_accepts" + named "whatif.bound_rejects" in
  Alcotest.(check bool)
    (Printf.sprintf "bound decisions on update workload (%d)" bound_hits)
    true (bound_hits > 0);
  Alcotest.(check bool) "recommendation sane" true
    (r.T.Tuner.recommended_cost <= r.T.Tuner.initial_cost +. 1e-6)

(* --- spawned relaxd: SIGTERM mid-stream ----------------------------------- *)

let read_lines path =
  In_channel.with_open_bin path (fun ic ->
      let rec go acc =
        match In_channel.input_line ic with
        | None -> List.rev acc
        | Some l -> go (l :: acc)
      in
      go [])

let test_relaxd_sigterm () =
  (* cwd is _build/default/test under `dune runtest`, the workspace root
     under `dune exec test/test_main.exe` *)
  match
    List.find_opt Sys.file_exists
      [ "../bin/relaxd.exe"; "_build/default/bin/relaxd.exe" ]
  with
  | None -> Alcotest.skip ()
  | Some exe ->
    let jsonl = Filename.temp_file "relaxd_events" ".jsonl" in
    let out_r, out_w = Unix.pipe ~cloexec:false () in
    let in_r, in_w = Unix.pipe ~cloexec:false () in
    let pid =
      Unix.create_process exe
        [|
          exe; "--db"; "bench"; "--retune-every"; "100"; "--min-statements";
          "2"; "--iterations"; "40"; "--jsonl"; jsonl;
        |]
        in_r out_w Unix.stderr
    in
    Unix.close in_r;
    Unix.close out_w;
    Unix.close out_r;
    (* feed a few statements, leave the daemon blocked on the next line,
       then signal it *)
    let oc = Unix.out_channel_of_descr in_w in
    let send sql =
      output_string oc
        (Relax_obs.Json.to_string
           (Relax_obs.Json.Obj [ ("sql", Relax_obs.Json.String sql) ]));
      output_char oc '\n'
    in
    send "SELECT onek.value FROM onek WHERE onek.unique2 < 5000";
    send "SELECT onek.value FROM onek WHERE onek.unique2 < 6000";
    send "SELECT onek.value FROM onek WHERE onek.unique2 < 7000";
    flush oc;
    Unix.sleepf 1.0;
    Unix.kill pid Sys.sigterm;
    let _, status = Unix.waitpid [] pid in
    close_out_noerr oc;
    (match status with
    | Unix.WEXITED 0 -> ()
    | Unix.WEXITED n -> Alcotest.failf "relaxd exited %d, expected 0" n
    | Unix.WSIGNALED n -> Alcotest.failf "relaxd killed by signal %d" n
    | Unix.WSTOPPED n -> Alcotest.failf "relaxd stopped by signal %d" n);
    (* the flushed JSONL must be well-formed and end with the shutdown
       event: nothing torn, nothing dropped *)
    let lines = read_lines jsonl in
    Alcotest.(check bool) "events flushed" true (lines <> []);
    List.iter
      (fun l ->
        match Relax_obs.Json.of_string l with
        | Ok _ -> ()
        | Error msg -> Alcotest.failf "torn JSONL line %S: %s" l msg)
      lines;
    let last = List.nth lines (List.length lines - 1) in
    (match Relax_obs.Json.of_string last with
    | Ok j ->
      Alcotest.(check (option string))
        "last event is daemon.shutdown" (Some "daemon.shutdown")
        (Option.bind
           (Relax_obs.Json.member "event" j)
           Relax_obs.Json.to_string_opt)
    | Error msg -> Alcotest.failf "bad last line: %s" msg);
    Sys.remove jsonl

(* --- shutdown plumbing ---------------------------------------------------- *)

let test_shutdown_exit_codes () =
  Alcotest.(check int) "SIGINT" 130 (Relax_obs.Shutdown.exit_code Sys.sigint);
  Alcotest.(check int) "SIGTERM" 143 (Relax_obs.Shutdown.exit_code Sys.sigterm);
  Alcotest.(check int) "protect passes values through" 41
    (Relax_obs.Shutdown.protect (fun () -> 41))

let suite =
  [
    Alcotest.test_case "config json: views round-trip" `Quick
      test_config_json_views;
    Alcotest.test_case "config json: rejects garbage" `Quick
      test_config_json_rejects_garbage;
    QCheck_alcotest.to_alcotest prop_config_json_roundtrip;
    Alcotest.test_case "window: templates and stable qids" `Quick
      test_window_basics;
    QCheck_alcotest.to_alcotest prop_window_decay_monotone;
    Alcotest.test_case "window: rotation drops and refreshes" `Quick
      test_window_rotation;
    Alcotest.test_case "window: capacity eviction" `Quick
      test_window_capacity_eviction;
    Alcotest.test_case "stream: parse" `Quick test_stream_parse;
    Alcotest.test_case "stream: round-trip" `Quick test_stream_roundtrip;
    Alcotest.test_case "guardrail: verdicts" `Quick test_guardrail_verdicts;
    Alcotest.test_case "guardrail: drift predicate" `Quick test_drift_predicate;
    Alcotest.test_case "daemon: warm re-tunes spend fewer calls" `Slow
      test_daemon_warm_fewer_calls;
    Alcotest.test_case "daemon: deterministic replay across jobs" `Slow
      test_daemon_deterministic_replay;
    Alcotest.test_case "daemon: guardrail auto-rollback" `Slow
      test_daemon_rollback;
    Alcotest.test_case "daemon: state persistence" `Slow
      test_daemon_state_persistence;
    Alcotest.test_case "whatif: bounds store stays bounded" `Quick
      test_bounds_store_bounded;
    Alcotest.test_case "whatif: per-qid eviction" `Quick test_whatif_evict;
    Alcotest.test_case "frugal: bound hits on update workload" `Quick
      test_frugal_dml_bound_hits;
    Alcotest.test_case "relaxd: SIGTERM flushes well-formed JSONL" `Slow
      test_relaxd_sigterm;
    Alcotest.test_case "shutdown: exit codes" `Quick test_shutdown_exit_codes;
  ]
