(** Tests for the profiling layer: histogram buckets and quantile
    units, self vs total span time, a qcheck property that span trees
    stay well-parenthesized per domain, well-formedness of the Chrome
    trace-event export under a parallel tune, and the perfdiff
    regression gate that backs the CI perf-smoke job. *)

module Config = Relax_physical.Config
module T = Relax_tuner
module W = Relax_workloads
module Obs = Relax_obs
module J = Relax_obs.Json
module H = Relax_obs.Histogram

(* --- histogram buckets and quantiles --------------------------------- *)

let test_histogram_buckets () =
  Alcotest.(check bool) "first edge is 1 µs" true (Float.abs (H.bound 0 -. 1e-6) < 1e-12);
  Alcotest.(check int) "zero lands in bucket 0" 0 (H.bucket_of 0.0);
  Alcotest.(check int) "sub-µs lands in bucket 0" 0 (H.bucket_of 1e-9);
  Alcotest.(check int) "huge values clamp to the last bucket" 127 (H.bucket_of 1e9);
  (* quarter-octave layout: just under an edge stays in that bucket,
     just over it moves to the next *)
  List.iter
    (fun i ->
      Alcotest.(check int)
        (Printf.sprintf "below edge %d" i)
        i
        (H.bucket_of (H.bound i *. 0.999));
      Alcotest.(check int)
        (Printf.sprintf "above edge %d" i)
        (i + 1)
        (H.bucket_of (H.bound i *. 1.01)))
    [ 1; 7; 40; 100 ];
  (* each bucket is one quarter octave wide: the reported edge is within
     2^0.25 of any value in the bucket *)
  List.iter
    (fun v ->
      let edge = H.bound (H.bucket_of v) in
      Alcotest.(check bool)
        (Printf.sprintf "edge covers %g" v)
        true
        (edge >= v *. 0.999 && edge < v *. 1.19))
    [ 2e-6; 1.23e-4; 0.0123; 0.9; 17.0 ]

let test_histogram_quantiles () =
  let h = H.create () in
  for _ = 1 to 90 do
    H.add h 0.001
  done;
  for _ = 1 to 10 do
    H.add h 1.0
  done;
  let s = H.snap h in
  Alcotest.(check int) "count" 100 (H.count s);
  Alcotest.(check bool) "total" true (Float.abs (H.total_s s -. 10.09) < 1e-9);
  (* quantiles report the upper edge of the rank's bucket, so they are
     exact to within one quarter-octave bucket width *)
  let within_bucket q v = q >= v && q <= v *. 1.19 in
  Alcotest.(check bool) "p50 is ~1 ms" true (within_bucket (H.quantile s 0.50) 0.001);
  Alcotest.(check bool) "p90 is ~1 ms" true (within_bucket (H.quantile s 0.90) 0.001);
  (* the top bucket's edge exceeds the observed maximum, so the cap
     makes p99 exactly the max *)
  Alcotest.(check bool) "p99 is the 1 s max" true (H.quantile s 0.99 = 1.0);
  Alcotest.(check bool) "p100 is the max" true (H.quantile s 1.0 = 1.0);
  let sm = H.summary s in
  Alcotest.(check bool) "summary agrees" true
    (sm.h_count = 100 && within_bucket sm.p50_s 0.001 && sm.p99_s = 1.0);
  Alcotest.(check bool) "empty quantile is 0" true
    (H.quantile (H.snap (H.create ())) 0.99 = 0.0)

let test_histogram_merge () =
  let a = H.create () and b = H.create () in
  H.add a 0.002;
  H.add a 0.002;
  H.add b 0.5;
  let m = H.merge (H.snap a) (H.snap b) in
  Alcotest.(check int) "merged count" 3 (H.count m);
  Alcotest.(check bool) "merged total" true
    (Float.abs (H.total_s m -. 0.504) < 1e-9);
  Alcotest.(check bool) "merged max" true (H.max_s m = 0.5);
  let p50 = H.quantile m 0.50 in
  Alcotest.(check bool) "merged p50" true (p50 >= 0.002 && p50 <= 0.002 *. 1.19)

let test_histogram_json_units () =
  let h = H.create () in
  for _ = 1 to 10 do
    H.add h 0.002
  done;
  let j = H.to_json (H.snap h) in
  let num field =
    match Option.bind (J.member field j) J.to_float with
    | Some f -> f
    | None -> Alcotest.failf "missing %s in %s" field (J.to_string j)
  in
  (* the _ms suffixes really are milliseconds *)
  Alcotest.(check bool) "count" true (num "count" = 10.0);
  Alcotest.(check bool) "p50_ms" true (Float.abs (num "p50_ms" -. 2.0) < 1e-9);
  Alcotest.(check bool) "max_ms" true (Float.abs (num "max_ms" -. 2.0) < 1e-9);
  Alcotest.(check bool) "total_s" true (Float.abs (num "total_s" -. 0.02) < 1e-9);
  match J.of_string (J.to_string j) with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "histogram json unparseable: %s" msg

(* --- self vs total span time ----------------------------------------- *)

let test_span_self_vs_total () =
  let r = Obs.Recorder.create () in
  Obs.Recorder.with_span r "outer" (fun () ->
      Unix.sleepf 0.005;
      Obs.Recorder.with_span r "inner" (fun () -> Unix.sleepf 0.02));
  let stat name =
    List.find
      (fun (s : Obs.Metrics.span_stat) -> s.span_name = name)
      (Obs.Recorder.span_stats r)
  in
  let outer = stat "outer" and inner = stat "inner" in
  Alcotest.(check bool) "self <= total" true (outer.self_s <= outer.total_s);
  Alcotest.(check bool)
    "leaf self = leaf total" true
    (Float.abs (inner.self_s -. inner.total_s) < 1e-9);
  (* outer's exclusive time excludes the 20 ms spent inside inner *)
  Alcotest.(check bool)
    "inner time excluded from outer self" true
    (outer.total_s -. outer.self_s >= 0.015);
  Alcotest.(check bool)
    "self covers outer's own work" true
    (outer.self_s >= 0.004);
  Alcotest.(check bool)
    "times reconcile" true
    (Float.abs (outer.total_s -. (outer.self_s +. inner.total_s)) < 1e-3)

let test_metrics_pp_quantiles () =
  let r = Obs.Recorder.create () in
  Obs.Recorder.with_span r "work.step" (fun () -> Unix.sleepf 0.002);
  Obs.Recorder.with_span r "work.step" (fun () -> ());
  let out = Format.asprintf "%a" Obs.Metrics.pp (Obs.Recorder.snapshot r) in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "pp mentions %S" needle)
        true
        (Astring_contains.contains out needle))
    [ "work.step"; "self"; "latency"; "p50" ]

(* --- qcheck: span trees are well-parenthesized per domain ------------- *)

type prog = Node of int * prog list

let rec prog_size (Node (_, kids)) =
  1 + List.fold_left (fun acc k -> acc + prog_size k) 0 kids

let rec prog_print (Node (i, kids)) =
  Printf.sprintf "s%d(%s)" i (String.concat "," (List.map prog_print kids))

let gen_prog =
  QCheck.Gen.(
    sized_size (int_range 1 12)
      (fix (fun self n ->
           let* name = int_bound 4 in
           if n <= 1 then return (Node (name, []))
           else
             let* k = int_range 0 (Int.min 3 (n - 1)) in
             let width = Int.max 1 k in
             let* kids =
               flatten_l (List.init k (fun _ -> self ((n - 1) / width)))
             in
             return (Node (name, kids)))))

let rec run_prog r (Node (i, kids)) =
  Obs.Recorder.with_span r (Printf.sprintf "s%d" i) (fun () ->
      List.iter (run_prog r) kids)

let check_well_parenthesized spans =
  let eps = 1e-4 in
  let by_sid = Hashtbl.create 16 in
  List.iter
    (fun (s : Obs.Span_tree.span) -> Hashtbl.replace by_sid s.sid s)
    spans;
  let last_sid = ref min_int in
  List.for_all
    (fun (s : Obs.Span_tree.span) ->
      let ordered = s.sid > !last_sid in
      last_sid := s.sid;
      ordered && s.dur_s >= 0.0
      &&
      match s.parent with
      | None -> s.depth = 1
      | Some p -> (
        match Hashtbl.find_opt by_sid p with
        | None -> false
        | Some parent ->
          parent.domain = s.domain
          && s.depth = parent.depth + 1
          && s.t0 >= parent.t0 -. eps
          && s.t0 +. s.dur_s <= parent.t0 +. parent.dur_s +. eps))
    spans

let prop_span_trees_well_parenthesized =
  QCheck.Test.make ~name:"span trees well-parenthesized per domain" ~count:30
    (QCheck.make
       ~print:(fun (a, b) -> prog_print a ^ " || " ^ prog_print b)
       QCheck.Gen.(pair gen_prog gen_prog))
    (fun (p1, p2) ->
      let r = Obs.Recorder.create ~profile:true () in
      (* two domains open and close spans concurrently on one recorder;
         each domain's own tree must still nest cleanly *)
      let d = Domain.spawn (fun () -> run_prog r p2) in
      run_prog r p1;
      Domain.join d;
      let spans = Obs.Recorder.profile_spans r in
      List.length spans = prog_size p1 + prog_size p2
      && check_well_parenthesized spans)

(* --- chrome trace export under a parallel tune ------------------------ *)

let profiled_tune =
  lazy
    (let cat = W.Tpch.catalog ~scale:0.01 () in
     let w = W.Tpch.workload_subset [ 1; 6; 14 ] in
     let inst = T.Instrument.optimal_configuration cat ~base:Config.empty w in
     let budget = Config.total_bytes cat inst.optimal *. 0.5 in
     let opts =
       {
         (T.Tuner.default_options ~space_budget:budget ()) with
         max_iterations = 40;
         jobs = 4;
       }
     in
     let obs = Obs.Recorder.create ~profile:true () in
     let r = T.Tuner.tune ~obs cat w opts in
     (r, obs))

let chrome_events () =
  let _, obs = Lazy.force profiled_tune in
  (* round-trip through the printer so we validate what tune/bench
     actually write to disk *)
  let j =
    match J.of_string (J.to_string (Obs.Chrome.of_recorder obs)) with
    | Ok j -> j
    | Error msg -> Alcotest.failf "chrome trace unparseable: %s" msg
  in
  match J.member "traceEvents" j with
  | Some (J.List events) -> events
  | _ -> Alcotest.failf "no traceEvents list: %s" (J.to_string j)

let str field e = Option.bind (J.member field e) J.to_string_opt
let num field e = Option.bind (J.member field e) J.to_float

let test_chrome_well_formed () =
  let events = chrome_events () in
  Alcotest.(check bool) "trace non-empty" true (events <> []);
  List.iter
    (fun e ->
      (match str "ph" e with
      | Some ("X" | "M" | "C") -> ()
      | _ -> Alcotest.failf "bad phase: %s" (J.to_string e));
      Alcotest.(check (option int))
        "pid" (Some 1)
        (Option.bind (J.member "pid" e) J.to_int);
      if str "ph" e = Some "X" then begin
        Alcotest.(check bool) "X has a name" true (str "name" e <> None);
        Alcotest.(check bool) "X has a tid" true
          (Option.bind (J.member "tid" e) J.to_int <> None);
        match (num "ts" e, num "dur" e) with
        | Some ts, Some dur ->
          Alcotest.(check bool) "ts, dur non-negative" true
            (ts >= 0.0 && dur >= 0.0)
        | _ -> Alcotest.failf "X without ts/dur: %s" (J.to_string e)
      end)
    events

let test_chrome_ts_monotone () =
  let events = chrome_events () in
  let last = ref neg_infinity in
  List.iter
    (fun e ->
      match num "ts" e with
      | None -> () (* metadata events carry no timestamp *)
      | Some ts ->
        Alcotest.(check bool) "ts non-decreasing" true (ts >= !last);
        last := ts)
    events

let test_chrome_thread_tracks () =
  let events = chrome_events () in
  let span_tids =
    List.filter_map
      (fun e ->
        if str "ph" e = Some "X" then
          Option.bind (J.member "tid" e) J.to_int
        else None)
      events
    |> List.sort_uniq compare
  in
  (* at jobs = 4 the worker domains cost plans on their own tracks *)
  Alcotest.(check bool)
    (Printf.sprintf "at least 2 thread tracks (got %d)"
       (List.length span_tids))
    true
    (List.length span_tids >= 2);
  let named_tids =
    List.filter_map
      (fun e ->
        if str "ph" e = Some "M" && str "name" e = Some "thread_name" then
          Option.bind (J.member "tid" e) J.to_int
        else None)
      events
  in
  List.iter
    (fun tid ->
      Alcotest.(check bool)
        (Printf.sprintf "tid %d has thread_name metadata" tid)
        true (List.mem tid named_tids))
    span_tids;
  Alcotest.(check bool) "process named" true
    (List.exists
       (fun e -> str "ph" e = Some "M" && str "name" e = Some "process_name")
       events)

let test_chrome_counter_tracks () =
  let events = chrome_events () in
  let counters =
    List.filter_map
      (fun e -> if str "ph" e = Some "C" then str "name" e else None)
      events
    |> List.sort_uniq compare
  in
  List.iter
    (fun track ->
      Alcotest.(check bool)
        (Printf.sprintf "counter track %s present" track)
        true (List.mem track counters))
    [
      "whatif.calls";
      "whatif.cache_hits";
      "latency.whatif.optimize_us";
      "gc.heap_words";
      "search.pool";
      "pool.queue_depth";
    ]

(* --- perfdiff regression gate ----------------------------------------- *)

let bench_json ?(what_if = 291.0) ?(hits = 80.0) ?(evald = 132.0)
    ?(elapsed = 6.0) () =
  J.Obj
    [
      ( "runs",
        J.List
          [
            J.Obj
              [
                ("jobs", J.Int 1);
                ("elapsed_s", J.Float elapsed);
                ("configurations_evaluated", J.Float evald);
                ("throughput_configs_per_s", J.Float (evald /. elapsed));
                ("what_if_calls", J.Float what_if);
                ("cache_hits", J.Float hits);
              ];
          ] );
    ]

let diff ?counter_tol ?time_tol current =
  Obs.Perfdiff.compare_json ?counter_tol ?time_tol ~baseline:(bench_json ())
    ~current ()

let test_perfdiff_clean () =
  match diff (bench_json ()) with
  | Ok c ->
    Alcotest.(check int) "no regressions" 0 (List.length c.regressions);
    Alcotest.(check int) "all metrics compared" 5 (List.length c.lines);
    Alcotest.(check int) "exit 0" 0 (Obs.Perfdiff.exit_code (Ok c))
  | Error msg -> Alcotest.failf "unexpected malformed: %s" msg

let test_perfdiff_counter_regression () =
  (* the acceptance scenario: a 2x what-if-call regression must hard-gate *)
  match diff (bench_json ~what_if:582.0 ()) with
  | Ok c ->
    Alcotest.(check bool) "flagged" true (c.regressions <> []);
    Alcotest.(check bool) "names the metric" true
      (List.exists
         (fun l -> Astring_contains.contains l "what_if_calls")
         c.regressions);
    Alcotest.(check bool) "hard" true (c.hard_regressions <> []);
    Alcotest.(check int) "exit 3" 3 (Obs.Perfdiff.exit_code (Ok c))
  | Error msg -> Alcotest.failf "unexpected malformed: %s" msg

let frugal_json ?(what_if = 120.0) ?(accepts = 900.0) ?(rejects = 400.0)
    ?(spent = 64.0) label =
  J.Obj
    [
      ( "runs",
        J.List
          [
            J.Obj
              [
                ("label", J.String label);
                ("elapsed_s", J.Float 3.0);
                ("configurations_evaluated", J.Float 80.0);
                ("throughput_configs_per_s", J.Float (80.0 /. 3.0));
                ("what_if_calls", J.Float what_if);
                ("cache_hits", J.Float 50.0);
                ("bound_accepts", J.Float accepts);
                ("bound_rejects", J.Float rejects);
                ("budget_spent", J.Float spent);
              ];
          ] );
    ]

let test_perfdiff_labels_and_optional () =
  (* label-keyed runs (BENCH_frugal.json) match by label, and the
     frugality counters are compared when both sides carry them *)
  (match
     Obs.Perfdiff.compare_json ~baseline:(frugal_json "frugal")
       ~current:(frugal_json "frugal") ()
   with
  | Ok c ->
    Alcotest.(check int) "8 metrics compared" 8 (List.length c.lines);
    Alcotest.(check int) "exit 0" 0 (Obs.Perfdiff.exit_code (Ok c))
  | Error msg -> Alcotest.failf "unexpected malformed: %s" msg);
  (* soft regression on a frugality counter exits 1, not 3 *)
  (match
     Obs.Perfdiff.compare_json ~baseline:(frugal_json "frugal")
       ~current:(frugal_json ~spent:128.0 "frugal") ()
   with
  | Ok c ->
    Alcotest.(check bool) "budget_spent flagged" true
      (List.exists
         (fun l -> Astring_contains.contains l "budget_spent")
         c.regressions);
    Alcotest.(check int) "exit 1" 1 (Obs.Perfdiff.exit_code (Ok c))
  | Error msg -> Alcotest.failf "unexpected malformed: %s" msg);
  (* a jobs-keyed baseline without frugality counters skips them *)
  (match diff (bench_json ()) with
  | Ok c -> Alcotest.(check int) "optional skipped" 5 (List.length c.lines)
  | Error msg -> Alcotest.failf "unexpected malformed: %s" msg);
  (* mismatched labels are malformed input *)
  match
    Obs.Perfdiff.compare_json ~baseline:(frugal_json "frugal")
      ~current:(frugal_json "exact") ()
  with
  | Error _ as r ->
    Alcotest.(check int) "label mismatch exits 2" 2 (Obs.Perfdiff.exit_code r)
  | Ok _ -> Alcotest.fail "label mismatch accepted"

let test_perfdiff_bidirectional () =
  (* cache hits falling is as bad as calls rising *)
  (match diff (bench_json ~hits:40.0 ()) with
  | Ok c ->
    Alcotest.(check bool) "hit drop flagged" true
      (List.exists
         (fun l -> Astring_contains.contains l "cache_hits")
         c.regressions)
  | Error msg -> Alcotest.failf "unexpected malformed: %s" msg);
  (* configurations_evaluated is deterministic: drift either way gates *)
  match diff (bench_json ~evald:100.0 ()) with
  | Ok c ->
    Alcotest.(check bool) "determinism drift flagged" true
      (List.exists
         (fun l -> Astring_contains.contains l "configurations_evaluated")
         c.regressions)
  | Error msg -> Alcotest.failf "unexpected malformed: %s" msg

let test_perfdiff_time_tolerance () =
  (* 40% slower stays inside the default 50% wall-clock tolerance ... *)
  (match diff (bench_json ~elapsed:8.4 ()) with
  | Ok c ->
    Alcotest.(check bool) "within tolerance" true
      (not
         (List.exists
            (fun l -> Astring_contains.contains l "elapsed_s")
            c.regressions))
  | Error msg -> Alcotest.failf "unexpected malformed: %s" msg);
  (* ... 2x slower does not *)
  match diff (bench_json ~elapsed:12.0 ()) with
  | Ok c ->
    Alcotest.(check bool) "2x elapsed flagged" true
      (List.exists
         (fun l -> Astring_contains.contains l "elapsed_s")
         c.regressions);
    (* and a tightened threshold catches the 40% case too *)
    (match diff ~time_tol:0.2 (bench_json ~elapsed:8.4 ()) with
    | Ok c ->
      Alcotest.(check bool) "tight tolerance flags 40%" true
        (List.exists
           (fun l -> Astring_contains.contains l "elapsed_s")
           c.regressions)
    | Error msg -> Alcotest.failf "unexpected malformed: %s" msg)
  | Error msg -> Alcotest.failf "unexpected malformed: %s" msg

let test_perfdiff_malformed () =
  let expect_error what result =
    match result with
    | Error _ -> Alcotest.(check int) (what ^ " exits 2") 2
                   (Obs.Perfdiff.exit_code result)
    | Ok _ -> Alcotest.failf "%s accepted" what
  in
  expect_error "empty object"
    (Obs.Perfdiff.compare_json ~baseline:(J.Obj []) ~current:(bench_json ()) ());
  expect_error "runs not a list"
    (Obs.Perfdiff.compare_json
       ~baseline:(J.Obj [ ("runs", J.Int 3) ])
       ~current:(bench_json ()) ());
  expect_error "empty baseline runs"
    (Obs.Perfdiff.compare_json
       ~baseline:(J.Obj [ ("runs", J.List []) ])
       ~current:(bench_json ()) ());
  expect_error "missing jobs match"
    (Obs.Perfdiff.compare_json ~baseline:(bench_json ())
       ~current:(J.Obj [ ("runs", J.List []) ])
       ());
  expect_error "missing metric field"
    (Obs.Perfdiff.compare_json ~baseline:(bench_json ())
       ~current:
         (J.Obj
            [ ("runs", J.List [ J.Obj [ ("jobs", J.Int 1) ] ]) ])
       ());
  expect_error "unreadable file"
    (Obs.Perfdiff.compare_files ~baseline:"/nonexistent/baseline.json"
       ~current:"/nonexistent/current.json" ())

let suite =
  [
    Alcotest.test_case "histogram: bucket layout" `Quick test_histogram_buckets;
    Alcotest.test_case "histogram: quantiles" `Quick test_histogram_quantiles;
    Alcotest.test_case "histogram: merge" `Quick test_histogram_merge;
    Alcotest.test_case "histogram: json units" `Quick test_histogram_json_units;
    Alcotest.test_case "spans: self vs total" `Quick test_span_self_vs_total;
    Alcotest.test_case "metrics: pp prints quantiles" `Quick
      test_metrics_pp_quantiles;
    QCheck_alcotest.to_alcotest prop_span_trees_well_parenthesized;
    Alcotest.test_case "chrome: events well-formed" `Slow
      test_chrome_well_formed;
    Alcotest.test_case "chrome: timestamps monotone" `Slow
      test_chrome_ts_monotone;
    Alcotest.test_case "chrome: >= 2 thread tracks at jobs=4" `Slow
      test_chrome_thread_tracks;
    Alcotest.test_case "chrome: counter tracks" `Slow
      test_chrome_counter_tracks;
    Alcotest.test_case "perfdiff: clean baseline" `Quick test_perfdiff_clean;
    Alcotest.test_case "perfdiff: 2x what-if calls gates" `Quick
      test_perfdiff_counter_regression;
    Alcotest.test_case "perfdiff: labels and optional counters" `Quick
      test_perfdiff_labels_and_optional;
    Alcotest.test_case "perfdiff: direction handling" `Quick
      test_perfdiff_bidirectional;
    Alcotest.test_case "perfdiff: wall-clock tolerance" `Quick
      test_perfdiff_time_tolerance;
    Alcotest.test_case "perfdiff: malformed input" `Quick
      test_perfdiff_malformed;
  ]
