(** End-to-end integration tests: the whole pipeline (instrument -> relax
    -> recommend) on realistic workloads, cross-tool invariants, and
    randomized checks of the central correctness properties. *)

module Query = Relax_sql.Query
module Index = Relax_physical.Index
module Config = Relax_physical.Config
module Ddl = Relax_physical.Ddl
module O = Relax_optimizer
module T = Relax_tuner
module B = Relax_baseline
module W = Relax_workloads

let mb x = x *. 1024.0 *. 1024.0

let tpch_cat = lazy (W.Tpch.catalog ~scale:0.01 ())

let tpch_tune ?(mode = T.Tuner.Indexes_and_views) ?(budget = infinity)
    ?(iters = 120) nums =
  let cat = Lazy.force tpch_cat in
  let opts = T.Tuner.default_options ~mode ~space_budget:budget () in
  T.Tuner.tune cat (W.Tpch.workload_subset nums) { opts with max_iterations = iters }

(* --- full-pipeline sanity on TPC-H ---------------------------------------- *)

let test_pipeline_tpch_views () =
  let r = tpch_tune ~budget:(mb 20.0) [ 1; 3; 6; 10; 14 ] in
  Alcotest.(check bool) "fits budget" true (r.recommended_size <= mb 20.0);
  Alcotest.(check bool) "improvement in (0, 100]" true
    (r.improvement > 0.0 && r.improvement <= 100.0);
  Alcotest.(check bool) "lower bound respected" true
    (r.recommended_cost >= r.lower_bound -. 1e-6);
  Alcotest.(check bool) "optimal is cheapest explored" true
    (List.for_all (fun (_, c) -> c >= r.optimal_cost -. 1e-6) r.frontier);
  Alcotest.(check bool) "frontier non-trivial" true (List.length r.frontier > 3);
  List.iter
    (fun (s, c) ->
      Alcotest.(check bool) "finite frontier points" true
        (Float.is_finite s && Float.is_finite c))
    r.frontier

let test_pipeline_deterministic () =
  let a = tpch_tune ~budget:(mb 18.0) [ 3; 6; 14 ] in
  let b = tpch_tune ~budget:(mb 18.0) [ 3; 6; 14 ] in
  Fixtures.check_float "same cost" a.recommended_cost b.recommended_cost;
  Alcotest.(check string) "same configuration"
    (Config.fingerprint a.recommended)
    (Config.fingerprint b.recommended)

let test_optimal_dominates_ctt () =
  (* the §2 optimal configuration can never lose to anything the bottom-up
     baseline builds, since the optimizer sees strictly better structures *)
  let cat = Lazy.force tpch_cat in
  let w = W.Tpch.workload_subset [ 1; 3; 6; 10 ] in
  let ptt = tpch_tune [ 1; 3; 6; 10 ] in
  let ctt =
    B.Ctt.tune cat w (B.Ctt.default_options ~with_views:true ~space_budget:infinity ())
  in
  Alcotest.(check bool)
    (Printf.sprintf "optimal %.1f <= ctt %.1f" ptt.optimal_cost
       ctt.recommended_cost)
    true
    (ptt.optimal_cost <= ctt.recommended_cost +. 1e-6)

let test_whatif_total_is_sum_of_entries () =
  let cat = Lazy.force tpch_cat in
  let w = W.Tpch.workload_subset [ 1; 6; 14 ] in
  let whatif = O.Whatif.create cat in
  let total = O.Whatif.workload_cost whatif Config.empty w in
  let parts = O.Whatif.per_entry_costs whatif Config.empty w in
  Fixtures.check_float ~eps:1e-6 "sum matches" total
    (List.fold_left (fun acc (_, c) -> acc +. c) 0.0 parts)

let test_instrument_fixpoint_stable () =
  (* re-instrumenting on top of the optimal configuration adds nothing *)
  let cat = Lazy.force tpch_cat in
  let w = W.Tpch.workload_subset [ 3; 6 ] in
  let first = T.Instrument.optimal_configuration cat ~base:Config.empty w in
  let second = T.Instrument.optimal_configuration cat ~base:first.optimal w in
  Alcotest.(check int) "no growth"
    (Config.cardinal first.optimal)
    (Config.cardinal second.optimal)

let test_request_counts_scale_with_tables () =
  (* Table 1 shape: multi-join queries issue more requests *)
  let cat = Lazy.force tpch_cat in
  let one q = T.Instrument.optimal_configuration cat ~base:Config.empty (W.Tpch.workload_subset [ q ]) in
  let q6 = List.hd (one 6).stats in
  let q5 = List.hd (one 5).stats in
  Alcotest.(check bool) "Q5 needs more requests than Q6" true
    (q5.index_requests > q6.index_requests
    && q5.view_requests > q6.view_requests)

(* --- DDL ----------------------------------------------------------------- *)

let test_ddl_mentions_every_structure () =
  let r = tpch_tune ~budget:(mb 20.0) [ 3; 6 ] in
  let script = Ddl.to_string r.recommended in
  List.iter
    (fun v ->
      let name = Relax_physical.View.name v in
      Alcotest.(check bool) ("view " ^ name) true
        (Astring_contains.contains script name))
    (Config.views r.recommended);
  Alcotest.(check int) "one CREATE per structure"
    (Config.cardinal r.recommended)
    (Astring_contains.count script "CREATE ")

(* --- randomized correctness checks ----------------------------------------- *)

let small_cat = lazy (Fixtures.small_catalog ())

let arb_small_config =
  let gen =
    QCheck.Gen.(
      let cols = [ "a"; "b"; "cc"; "d"; "e"; "sid" ] in
      let* n = int_range 1 4 in
      let idx _ =
        let* k = int_range 1 3 in
        let* perm = shuffle_l cols in
        let keys = List.filteri (fun i _ -> i < k) perm in
        let* ns = int_range 0 2 in
        let suffix =
          List.filteri (fun i _ -> i < ns) (List.filteri (fun i _ -> i >= k) perm)
        in
        return (Index.on "r" keys ~suffix)
      in
      let* idxs = flatten_l (List.init n idx) in
      return (Config.of_indexes idxs))
  in
  QCheck.make ~print:Config.fingerprint gen

let queries_for_bounds =
  [
    "SELECT r.a, r.b FROM r WHERE r.a = 5";
    "SELECT r.b, r.e FROM r WHERE r.b = 7 AND r.d < 10";
    "SELECT r.a, r.cc FROM r WHERE r.a < 50 ORDER BY r.cc";
    "SELECT r.d, SUM(r.a) FROM r GROUP BY r.d";
  ]

(* the central §3.3.2 invariant, randomized: for any configuration and any
   applicable transformation, bound >= re-optimized true cost *)
let prop_cost_bound_dominates =
  QCheck.Test.make ~name:"cost bound dominates true cost (randomized)"
    ~count:60
    (QCheck.pair arb_small_config (QCheck.make (QCheck.Gen.oneofl queries_for_bounds)))
    (fun (config, qs) ->
      let cat = Lazy.force small_cat in
      let q = Fixtures.parse_select qs in
      let plan = O.Optimizer.optimize cat config q in
      let est _ = 1000.0 in
      let transforms = T.Transform.enumerate config in
      List.for_all
        (fun tr ->
          match T.Transform.apply ~estimate_rows:est config tr with
          | None -> true
          | Some config' ->
            let ctx : T.Cost_bound.context =
              {
                env' = O.Env.make cat config';
                old_env = O.Env.make cat config;
                removed_indexes = T.Transform.removed_indexes config tr;
                removed_views = T.Transform.removed_views tr;
                view_merge = None;
                cbv =
                  (fun v ->
                    (O.Optimizer.optimize cat Config.empty
                       {
                         Query.body = Relax_physical.View.definition v;
                         order_by = [];
                       })
                      .cost);
                expands = T.Transform.adds_structures tr;
              }
            in
            if not (T.Cost_bound.plan_affected ctx plan) then true
            else begin
              let bound = T.Cost_bound.query_bound ctx plan in
              let true_cost = (O.Optimizer.optimize cat config' q).cost in
              bound >= true_cost -. 1e-6
            end)
        transforms)

(* relaxing can only lose ground: every child configuration in a chain has
   cost >= the optimal configuration's *)
let prop_relaxation_never_beats_optimal =
  QCheck.Test.make ~name:"no relaxed configuration beats the optimal"
    ~count:6
    (QCheck.make (QCheck.Gen.int_range 10 25))
    (fun budget_mb ->
      let r = tpch_tune ~budget:(mb (float_of_int budget_mb)) ~iters:60 [ 3; 6; 14 ] in
      List.for_all (fun (_, c) -> c >= r.optimal_cost -. 1e-6) r.frontier)

let suite =
  [
    Alcotest.test_case "pipeline: TPC-H with views" `Quick test_pipeline_tpch_views;
    Alcotest.test_case "pipeline: deterministic" `Quick test_pipeline_deterministic;
    Alcotest.test_case "optimal dominates CTT" `Quick test_optimal_dominates_ctt;
    Alcotest.test_case "whatif: total = sum of entries" `Quick
      test_whatif_total_is_sum_of_entries;
    Alcotest.test_case "instrument: fixpoint stable" `Quick
      test_instrument_fixpoint_stable;
    Alcotest.test_case "requests scale with joins" `Quick
      test_request_counts_scale_with_tables;
    Alcotest.test_case "ddl mentions every structure" `Quick
      test_ddl_mentions_every_structure;
    QCheck_alcotest.to_alcotest prop_cost_bound_dominates;
    QCheck_alcotest.to_alcotest prop_relaxation_never_beats_optimal;
  ]
