let () =
  Alcotest.run "relax"
    [
      ("sql", Suite_sql.suite);
      ("catalog", Suite_catalog.suite);
      ("physical", Suite_physical.suite);
      ("optimizer", Suite_optimizer.suite);
      ("tuner", Suite_tuner.suite);
      ("obs", Suite_obs.suite);
      ("profile", Suite_profile.suite);
      ("parallel", Suite_parallel.suite);
      ("multicore", Suite_multicore.suite);
      ("baseline", Suite_baseline.suite);
      ("workloads", Suite_workloads.suite);
      ("costing", Suite_costing.suite);
      ("engine", Suite_engine.suite);
      ("check", Suite_check.suite);
      ("frugal", Suite_frugal.suite);
      ("lint", Suite_lint.suite);
      ("effects", Suite_effects.suite);
      ("integration", Suite_integration.suite);
      ("daemon", Suite_daemon.suite);
    ]
