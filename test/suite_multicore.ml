(** Multi-core tests that only mean something on a big substrate: the
    jobs=1 vs jobs=max determinism guarantee on the generated 104-statement
    pool, the substrate generator itself, the pool oversubscription
    warning counters, and the on-disk what-if bound cache round-trip.

    The determinism-at-scale case needs real parallelism to be a real
    test, so it is gated on [Domain.recommended_domain_count () >= 4] and
    visibly skipped (not silently passed) on smaller hosts — CI's
    multi-core runners execute it. *)

module Query = Relax_sql.Query
module Config = Relax_physical.Config
module Index = Relax_physical.Index
module O = Relax_optimizer
module T = Relax_tuner
module W = Relax_workloads
module Pool = Relax_parallel.Pool
module Obs = Relax_obs

(* --- substrate generator ------------------------------------------------ *)

let qids w = List.map (fun (e : Query.entry) -> e.qid) w

let statements w =
  List.map
    (fun (e : Query.entry) -> Relax_sql.Pretty.statement_to_string e.stmt)
    w

let test_substrate_pool_shape () =
  let w = W.Substrate.pool () in
  Alcotest.(check int) "default pool is 26x4 = 104" 104 (List.length w);
  let ids = qids w in
  Alcotest.(check int)
    "qids unique" (List.length ids)
    (List.length (List.sort_uniq String.compare ids));
  (* reps reparameterize constants, never the template shape: every rep
     family shares a base qid prefix *)
  List.iter
    (fun id ->
      Alcotest.(check bool)
        (Printf.sprintf "qid %s carries a rep suffix" id)
        true
        (match String.rindex_opt id 'r' with
        | Some _ -> String.contains id '-'
        | None -> false))
    ids

let test_substrate_pool_deterministic () =
  let w1 = W.Substrate.pool () and w2 = W.Substrate.pool () in
  Alcotest.(check (list string)) "same seed, same qids" (qids w1) (qids w2);
  Alcotest.(check (list string))
    "same seed, same statements" (statements w1) (statements w2);
  let w3 = W.Substrate.pool ~seed:(W.Substrate.default_seed + 1) () in
  Alcotest.(check bool)
    "different seed, different statements" true
    (statements w1 <> statements w3)

let test_substrate_pool_scales () =
  let w = W.Substrate.pool ~templates:125 ~reps:8 () in
  Alcotest.(check int) "125x8 = 1000 statements" 1000 (List.length w);
  let ids = qids w in
  Alcotest.(check int)
    "1000 unique qids" (List.length ids)
    (List.length (List.sort_uniq String.compare ids))

let test_substrate_pool_invalid () =
  let raises f =
    match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool)
    "templates = 0 rejected" true
    (raises (fun () -> W.Substrate.pool ~templates:0 ()));
  Alcotest.(check bool)
    "reps = 0 rejected" true
    (raises (fun () -> W.Substrate.pool ~reps:0 ()))

let test_substrate_catalog_sf () =
  let base = W.Substrate.catalog ~sf:1.0 () in
  let big = W.Substrate.catalog ~sf:10.0 () in
  let bytes c = Config.total_bytes c Config.empty in
  (* statistics-only: SF-10 is ~10x the data of SF-1 in the stats, for
     free in memory *)
  let ratio = bytes big /. bytes base in
  Alcotest.(check bool)
    (Printf.sprintf "SF-10 / SF-1 total bytes = %.2f in [8, 12]" ratio)
    true
    (ratio > 8.0 && ratio < 12.0)

(* --- pool oversubscription warning counters ----------------------------- *)

let test_pool_oversubscription_counters () =
  let hw = Domain.recommended_domain_count () in
  let r = Obs.Recorder.create () in
  Obs.Recorder.with_ambient r (fun () ->
      let pool = Pool.create ~jobs:(hw + 3) in
      Fun.protect
        ~finally:(fun () -> Pool.shutdown pool)
        (fun () ->
          (* the explicit request is honoured verbatim, not clamped *)
          Alcotest.(check int) "jobs honoured" (hw + 3) (Pool.jobs pool)));
  let m = Obs.Recorder.snapshot r in
  let counter name =
    Option.value ~default:0 (List.assoc_opt name m.Obs.Metrics.named_counters)
  in
  Alcotest.(check int) "oversubscribed flagged once" 1
    (counter "pool.oversubscribed");
  Alcotest.(check int) "oversubscribed_by is the excess" 3
    (counter "pool.oversubscribed_by")

let test_pool_within_hw_no_warning () =
  let r = Obs.Recorder.create () in
  Obs.Recorder.with_ambient r (fun () ->
      let pool = Pool.create ~jobs:1 in
      Pool.shutdown pool);
  let m = Obs.Recorder.snapshot r in
  Alcotest.(check bool) "no oversubscription counter" true
    (List.assoc_opt "pool.oversubscribed" m.Obs.Metrics.named_counters = None)

(* --- on-disk what-if bound cache ---------------------------------------- *)

let with_temp_file f =
  let file = Filename.temp_file "relax-whatif" ".json" in
  Fun.protect ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ()) (fun () -> f file)

let probe_queries =
  [
    ("m1", [ "r" ], "SELECT r.a, r.b FROM r WHERE r.a = 5");
    ("m2", [ "r" ], "SELECT r.d FROM r WHERE r.b < 10");
    ("m3", [ "s" ], "SELECT s.x FROM s WHERE s.x = 3");
    ("m4", [ "r"; "s" ], "SELECT r.a FROM r, s WHERE r.sid = s.id AND s.x < 50");
  ]

let probe_configs =
  [
    Config.empty;
    Config.of_indexes [ Index.on "r" [ "a" ] ];
    Config.of_indexes [ Index.on "r" [ "b"; "d" ]; Index.on "s" [ "x" ] ];
  ]

(* cost a subset of (query, config) pairs selected by [mask], then
   save/load through a temp file into a fresh instance on the same
   catalog and require identical advisory intervals on every probe *)
let roundtrip_preserves_intervals mask =
  let cat = Fixtures.small_catalog () in
  let original = O.Whatif.create cat in
  List.iteri
    (fun i (qid, _, sql) ->
      List.iteri
        (fun j config ->
          if mask land (1 lsl ((i * List.length probe_configs) + j)) <> 0 then
            ignore
              (O.Whatif.plan_select original config ~qid
                 (Fixtures.parse_select sql)))
        probe_configs)
    probe_queries;
  with_temp_file @@ fun file ->
  let saved =
    match O.Whatif.save_bounds original ~file with
    | Ok n -> n
    | Error msg -> QCheck.Test.fail_reportf "save failed: %s" msg
  in
  let reloaded = O.Whatif.create cat in
  (match O.Whatif.load_bounds reloaded ~file with
  | Ok n ->
    if n <> saved then
      QCheck.Test.fail_reportf "saved %d records but loaded %d" saved n
  | Error msg -> QCheck.Test.fail_reportf "load failed: %s" msg);
  List.iter
    (fun (qid, tables, _) ->
      List.iter
        (fun config ->
          let lo1, hi1 = O.Whatif.cost_interval original config ~qid ~tables in
          let lo2, hi2 = O.Whatif.cost_interval reloaded config ~qid ~tables in
          if not (lo1 = lo2 && hi1 = hi2) then
            QCheck.Test.fail_reportf
              "interval drift for %s under %s: (%g, %g) vs (%g, %g)" qid
              (Config.fingerprint config) lo1 hi1 lo2 hi2)
        probe_configs)
    probe_queries;
  true

let prop_bounds_roundtrip =
  QCheck.Test.make ~name:"bound store round-trip preserves cost intervals"
    ~count:40
    QCheck.(int_bound ((1 lsl 12) - 1))
    roundtrip_preserves_intervals

let test_bounds_fingerprint_mismatch () =
  let cat = Fixtures.small_catalog () in
  let w = O.Whatif.create cat in
  ignore
    (O.Whatif.plan_select w Config.empty ~qid:"m1"
       (Fixtures.parse_select "SELECT r.a FROM r WHERE r.a = 5"));
  with_temp_file @@ fun file ->
  (match O.Whatif.save_bounds w ~file with
  | Ok n -> Alcotest.(check bool) "saved records" true (n > 0)
  | Error msg -> Alcotest.fail ("save failed: " ^ msg));
  (* other statistics, other fingerprint: the file must be refused *)
  let other = O.Whatif.create (W.Substrate.catalog ~sf:0.1 ()) in
  match O.Whatif.load_bounds other ~file with
  | Ok _ -> Alcotest.fail "mismatched catalog fingerprint was accepted"
  | Error _ ->
    Alcotest.(check int) "store untouched on refusal" 0
      (O.Whatif.bounds_size other)

(* --- determinism at scale ----------------------------------------------- *)

let require_domains n =
  let have = Domain.recommended_domain_count () in
  if have < n then
    Alcotest.skip ()

let test_determinism_substrate () =
  (* jobs=1 vs jobs=max on the 104-statement generated pool, with a
     finite what-if budget so the frugal spend counters are live too; a
     1- or 2-core host cannot exercise the contended path this exists
     to check, so skip visibly rather than pretend *)
  require_domains 4;
  let cat = W.Substrate.catalog ~sf:1.0 () in
  let w = W.Substrate.pool () in
  let budget = Config.total_bytes cat Config.empty *. 1.3 in
  let jobs_max = Int.min 8 (Domain.recommended_domain_count ()) in
  let run jobs =
    let obs = Obs.Recorder.create () in
    let opts =
      {
        (T.Tuner.default_options ~mode:T.Tuner.Indexes_only
           ~space_budget:budget ())
        with
        max_iterations = 25;
        jobs;
        whatif_budget = Some 200;
      }
    in
    let r = T.Tuner.tune ~obs cat w opts in
    (r, Obs.Recorder.snapshot obs)
  in
  let r1, m1 = run 1 and rn, mn = run jobs_max in
  let chk name b = Alcotest.(check bool) ("substrate: " ^ name) true b in
  let open T.Tuner in
  chk "recommended fingerprint"
    (Config.fingerprint r1.recommended = Config.fingerprint rn.recommended);
  chk "recommended cost" (r1.recommended_cost = rn.recommended_cost);
  chk "frontier" (r1.frontier = rn.frontier);
  chk "per-query costs" (r1.per_query = rn.per_query);
  let open Obs.Metrics in
  chk "what-if calls" (m1.what_if_calls = mn.what_if_calls);
  chk "cache hits" (m1.cache_hits = mn.cache_hits);
  chk "configurations evaluated"
    (m1.configurations_evaluated = mn.configurations_evaluated);
  (* the frugal spend counters live in the named-counter table; strip
     the pool.* utilization entries, which legitimately vary with the
     worker count, and require everything else identical *)
  let work m =
    List.filter
      (fun (name, _) ->
        not (String.length name >= 5 && String.sub name 0 5 = "pool."))
      m.named_counters
  in
  Alcotest.(check (list (pair string int)))
    "substrate: named counters (incl. frugal spend)" (work m1) (work mn)

let suite =
  [
    Alcotest.test_case "substrate: pool shape and unique qids" `Quick
      test_substrate_pool_shape;
    Alcotest.test_case "substrate: pool deterministic in seed" `Quick
      test_substrate_pool_deterministic;
    Alcotest.test_case "substrate: 1000-statement pool" `Quick
      test_substrate_pool_scales;
    Alcotest.test_case "substrate: invalid sizes rejected" `Quick
      test_substrate_pool_invalid;
    Alcotest.test_case "substrate: SF-10 stats scale from SF-1" `Quick
      test_substrate_catalog_sf;
    Alcotest.test_case "pool: oversubscription warning counters" `Quick
      test_pool_oversubscription_counters;
    Alcotest.test_case "pool: no warning within hardware" `Quick
      test_pool_within_hw_no_warning;
    QCheck_alcotest.to_alcotest prop_bounds_roundtrip;
    Alcotest.test_case "whatif: mismatched catalog refused" `Quick
      test_bounds_fingerprint_mismatch;
    Alcotest.test_case "determinism: substrate pool, jobs=1 vs jobs=max"
      `Slow test_determinism_substrate;
  ]
