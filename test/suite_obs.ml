(** Tests for the observability layer: JSON round-trips, span timing,
    counter aggregation through the ambient recorder, the JSONL trace
    schema, and agreement between the structured metrics and the
    optimizer's own legacy statistics. *)

module Query = Relax_sql.Query
module Config = Relax_physical.Config
module O = Relax_optimizer
module T = Relax_tuner
module Obs = Relax_obs

let cat = lazy (Fixtures.small_catalog ())

let workload_of_strings l : Query.workload =
  List.mapi
    (fun i s ->
      Query.entry (Printf.sprintf "q%d" (i + 1)) (Relax_sql.Parser.statement s))
    l

let small_workload () =
  workload_of_strings
    [
      "SELECT r.a, r.b FROM r WHERE r.a = 5";
      "SELECT r.d, r.e FROM r WHERE r.a < 10 AND r.b < 10 ORDER BY r.d";
      "SELECT r.a, s.y FROM r, s WHERE r.sid = s.id AND r.a < 5";
      "SELECT s.y, s.z FROM s WHERE s.x < 3";
    ]

(* --- JSON ----------------------------------------------------------- *)

let roundtrip v =
  match Obs.Json.of_string (Obs.Json.to_string v) with
  | Ok v' -> v'
  | Error msg -> Alcotest.failf "reparse failed: %s" msg

let test_json_roundtrip () =
  let open Obs.Json in
  let values =
    [
      Null;
      Bool true;
      Bool false;
      Int 0;
      Int (-42);
      Float 1.5;
      Float (-0.25);
      String "plain";
      String "esc \"q\" \\ \n \t ctrl \001 end";
      List [ Int 1; String "two"; Null ];
      Obj
        [
          ("a", Int 1);
          ("nested", Obj [ ("l", List [ Bool false; Float 2.5 ]) ]);
          ("empty_obj", Obj []);
          ("empty_list", List []);
        ];
    ]
  in
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Obs.Json.to_string v) true
        (roundtrip v = v))
    values

let test_json_nonfinite_and_errors () =
  let open Obs.Json in
  Alcotest.(check string) "nan is null" "null" (to_string (Float Float.nan));
  Alcotest.(check string)
    "inf is null" "null"
    (to_string (Float Float.infinity));
  List.iter
    (fun s ->
      match of_string s with
      | Ok _ -> Alcotest.failf "parsed garbage: %s" s
      | Error _ -> ())
    [ ""; "{"; "[1,"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated" ]

let test_json_unicode_escape () =
  match Obs.Json.of_string "\"a\\u00e9b\"" with
  | Ok (Obs.Json.String s) ->
    Alcotest.(check string) "utf8 decode" "a\xc3\xa9b" s
  | _ -> Alcotest.fail "expected a string"

(* --- spans ----------------------------------------------------------- *)

let test_span_nesting () =
  let r = Obs.Recorder.create () in
  let v =
    Obs.Recorder.with_span r "outer" (fun () ->
        Obs.Recorder.with_span r "inner" (fun () -> ());
        Obs.Recorder.with_span r "inner" (fun () -> 7))
  in
  Alcotest.(check int) "value threaded" 7 v;
  let stat name =
    match
      List.find_opt
        (fun (s : Obs.Metrics.span_stat) -> s.span_name = name)
        (Obs.Recorder.span_stats r)
    with
    | Some s -> s
    | None -> Alcotest.failf "span %s missing" name
  in
  let outer = stat "outer" and inner = stat "inner" in
  Alcotest.(check int) "outer calls" 1 outer.calls;
  Alcotest.(check int) "inner calls" 2 inner.calls;
  Alcotest.(check int) "outer depth" 1 outer.max_depth;
  Alcotest.(check int) "inner depth" 2 inner.max_depth;
  Alcotest.(check bool) "inner total non-negative" true (inner.total_s >= 0.0);
  Alcotest.(check bool)
    "outer total dominates inner" true
    (outer.total_s >= inner.total_s)

let test_span_exception_safe () =
  let r = Obs.Recorder.create () in
  (try
     Obs.Recorder.with_span r "boom" (fun () -> failwith "expected")
   with Failure _ -> ());
  (* the span closed despite the exception: a second span nests at depth 1 *)
  Obs.Recorder.with_span r "after" (fun () -> ());
  let after =
    List.find
      (fun (s : Obs.Metrics.span_stat) -> s.span_name = "after")
      (Obs.Recorder.span_stats r)
  in
  Alcotest.(check int) "depth reset after raise" 1 after.max_depth

(* --- probes and ambient recorder ------------------------------------ *)

let test_probe_ambient () =
  Alcotest.(check bool) "inactive outside" false (Obs.Probe.active ());
  (* probes outside any ambient recorder are no-ops, not crashes *)
  Obs.Probe.count "ignored";
  Obs.Probe.what_if_call ~qid:"q0";
  let r = Obs.Recorder.create () in
  Obs.Recorder.with_ambient r (fun () ->
      Alcotest.(check bool) "active inside" true (Obs.Probe.active ());
      Obs.Probe.count "x";
      Obs.Probe.count "x";
      Obs.Probe.count_n "y" 5;
      Obs.Probe.transform_generated ~kind:"merge_indexes";
      Obs.Probe.transform_generated ~kind:"merge_indexes";
      Obs.Probe.transform_applied ~kind:"merge_indexes";
      Obs.Probe.what_if_call ~qid:"q1";
      Obs.Probe.cache_hit ~qid:"q1";
      Obs.Probe.pool_size 3;
      Obs.Probe.pool_size 5);
  Alcotest.(check bool) "inactive again" false (Obs.Probe.active ());
  let m = Obs.Recorder.snapshot r in
  Alcotest.(check (list (pair string int)))
    "counters" [ ("x", 2); ("y", 5) ] m.named_counters;
  Alcotest.(check (list (pair string int)))
    "generated" [ ("merge_indexes", 2) ] m.transforms_generated;
  Alcotest.(check (list (pair string int)))
    "applied" [ ("merge_indexes", 1) ] m.transforms_applied;
  Alcotest.(check int) "what-if calls" 1 m.what_if_calls;
  Alcotest.(check int) "cache hits" 1 m.cache_hits;
  Alcotest.(check (list int)) "pool oldest-first" [ 3; 5 ] m.pool_trace

let test_metrics_merge () =
  let r1 = Obs.Recorder.create () and r2 = Obs.Recorder.create () in
  Obs.Recorder.with_ambient r1 (fun () ->
      Obs.Probe.count "x";
      Obs.Probe.what_if_call ~qid:"a");
  Obs.Recorder.with_ambient r2 (fun () ->
      Obs.Probe.count_n "x" 2;
      Obs.Probe.count "z";
      Obs.Probe.what_if_call ~qid:"b");
  let m =
    Obs.Metrics.merge_all
      [ Obs.Recorder.snapshot r1; Obs.Recorder.snapshot r2 ]
  in
  Alcotest.(check int) "what-if summed" 2 m.what_if_calls;
  Alcotest.(check (list (pair string int)))
    "counters merged" [ ("x", 3); ("z", 1) ] m.named_counters

(* --- trace sinks ----------------------------------------------------- *)

let test_memory_sink_and_lazy_emit () =
  let sink, lines = Obs.Trace.memory () in
  let r = Obs.Recorder.create ~sink () in
  Obs.Recorder.emit r (fun () -> Obs.Json.Obj [ ("n", Obs.Json.Int 1) ]);
  Obs.Recorder.emit r (fun () -> Obs.Json.Obj [ ("n", Obs.Json.Int 2) ]);
  Alcotest.(check (list string))
    "lines in order"
    [ "{\"n\":1}"; "{\"n\":2}" ]
    (lines ());
  (* without a sink the thunk must never be forced *)
  let bare = Obs.Recorder.create () in
  Obs.Recorder.emit bare (fun () -> Alcotest.fail "thunk forced without sink")

let test_file_sink () =
  let path = Filename.temp_file "relax_obs" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let sink = Obs.Trace.file path in
      Obs.Trace.emit sink (Obs.Json.Obj [ ("a", Obs.Json.Int 1) ]);
      Obs.Trace.emit sink (Obs.Json.Obj [ ("a", Obs.Json.Int 2) ]);
      Obs.Trace.close sink;
      Obs.Trace.close sink;
      (* idempotent *)
      let content = In_channel.with_open_bin path In_channel.input_all in
      Alcotest.(check string)
        "file contents" "{\"a\":1}\n{\"a\":2}\n" content)

(* --- end-to-end: tuning under a recorder ----------------------------- *)

let run_traced_tune () =
  let cat = Lazy.force cat in
  let w = small_workload () in
  (* a budget at half the optimal size forces a real relaxation search *)
  let inst = T.Instrument.optimal_configuration cat ~base:Config.empty w in
  let budget = Config.total_bytes cat inst.optimal *. 0.5 in
  let opts =
    {
      (T.Tuner.default_options ~space_budget:budget ()) with
      max_iterations = 60;
    }
  in
  let sink, lines = Obs.Trace.memory () in
  let obs = Obs.Recorder.create ~sink () in
  let r = T.Tuner.tune ~obs cat w opts in
  (r, lines ())

let traced = lazy (run_traced_tune ())

let parsed_events () =
  let _, lines = Lazy.force traced in
  List.map
    (fun line ->
      match Obs.Json.of_string line with
      | Ok v -> v
      | Error msg -> Alcotest.failf "unparseable trace line (%s): %s" msg line)
    lines

let events_of_type ty events =
  List.filter
    (fun e -> Obs.Json.(member "event" e) = Some (Obs.Json.String ty))
    events

let test_trace_lines_parse () =
  let _, lines = Lazy.force traced in
  Alcotest.(check bool) "trace non-empty" true (lines <> []);
  let events = parsed_events () in
  List.iter
    (fun e ->
      match Obs.Json.member "event" e with
      | Some (Obs.Json.String ("whatif" | "iteration")) -> ()
      | _ -> Alcotest.failf "unknown event: %s" (Obs.Json.to_string e))
    events

let test_trace_iteration_schema () =
  let events = events_of_type "iteration" (parsed_events ()) in
  Alcotest.(check bool) "search iterated" true (events <> []);
  let required =
    [
      "iteration"; "parent"; "transform"; "kind"; "penalty"; "delta_cost";
      "delta_space"; "predicted_cost"; "predicted_size"; "outcome"; "node";
      "actual_cost"; "actual_size"; "bound_drift"; "pool"; "best_cost";
    ]
  in
  List.iter
    (fun e ->
      List.iter
        (fun field ->
          if Obs.Json.member field e = None then
            Alcotest.failf "iteration event missing %s: %s" field
              (Obs.Json.to_string e))
        required;
      (* evaluated iterations carry realized numbers and a finite drift *)
      match Obs.Json.member "outcome" e with
      | Some (Obs.Json.String "evaluated") ->
        let num field =
          match Option.bind (Obs.Json.member field e) Obs.Json.to_float with
          | Some f -> f
          | None ->
            Alcotest.failf "evaluated event: %s not numeric: %s" field
              (Obs.Json.to_string e)
        in
        let drift = num "bound_drift" in
        Alcotest.(check bool)
          "drift finite and positive" true
          (Float.is_finite drift && drift > 0.0);
        ignore (num "actual_cost");
        ignore (num "actual_size")
      | Some (Obs.Json.String ("shortcut" | "duplicate" | "inapplicable")) ->
        Alcotest.(check bool)
          "unevaluated events carry no node" true
          (Obs.Json.member "node" e = Some Obs.Json.Null)
      | _ -> Alcotest.fail "unknown iteration outcome")
    events

let test_trace_counts_match_metrics () =
  let r, _ = Lazy.force traced in
  let events = parsed_events () in
  Alcotest.(check int)
    "whatif events = metrics what-if calls" r.metrics.what_if_calls
    (List.length (events_of_type "whatif" events));
  Alcotest.(check int)
    "iteration events = metrics iterations" r.metrics.iterations
    (List.length (events_of_type "iteration" events));
  Alcotest.(check int)
    "metrics iterations = result iterations" r.iterations
    r.metrics.iterations

let test_metrics_match_legacy_stats () =
  (* the structured metrics must agree with the what-if layer's own
     counters, which Search.outcome still carries *)
  let cat = Lazy.force cat in
  let w = small_workload () in
  let inst = T.Instrument.optimal_configuration cat ~base:Config.empty w in
  let budget = Config.total_bytes cat inst.optimal *. 0.5 in
  let opts =
    {
      (T.Search.default_options ~space_budget:budget) with
      max_iterations = 60;
    }
  in
  let obs = Obs.Recorder.create () in
  let outcome = T.Search.run ~obs cat ~workload:w ~initial:inst.optimal opts in
  let m = Obs.Recorder.snapshot obs in
  Alcotest.(check int)
    "what-if calls agree" outcome.optimizer_calls m.what_if_calls;
  Alcotest.(check int) "cache hits agree" outcome.cache_hits m.cache_hits;
  Alcotest.(check int) "iterations agree" outcome.iterations m.iterations;
  Alcotest.(check int)
    "pool trace covers every iteration" outcome.iterations
    (List.length m.pool_trace)

let test_tuner_metrics_populated () =
  let r, _ = Lazy.force traced in
  let m = r.metrics in
  Alcotest.(check bool) "what-if calls recorded" true (m.what_if_calls > 0);
  Alcotest.(check bool)
    "transformations generated" true
    (m.transforms_generated <> []);
  Alcotest.(check bool)
    "tuner spans recorded" true
    (List.exists
       (fun (s : Obs.Metrics.span_stat) -> s.span_name = "tuner.tune")
       m.spans
    && List.exists
         (fun (s : Obs.Metrics.span_stat) -> s.span_name = "tuner.search")
         m.spans);
  (* metrics snapshots embed into the bench JSON output losslessly enough
     to reparse *)
  match Obs.Json.of_string (Obs.Json.to_string (Obs.Metrics.to_json m)) with
  | Ok j ->
    Alcotest.(check (option int))
      "json what_if_calls" (Some m.what_if_calls)
      (Option.bind (Obs.Json.member "what_if_calls" j) Obs.Json.to_int)
  | Error msg -> Alcotest.failf "metrics json unparseable: %s" msg

let suite =
  [
    Alcotest.test_case "json: round trip" `Quick test_json_roundtrip;
    Alcotest.test_case "json: non-finite and errors" `Quick
      test_json_nonfinite_and_errors;
    Alcotest.test_case "json: unicode escapes" `Quick test_json_unicode_escape;
    Alcotest.test_case "spans: nesting and totals" `Quick test_span_nesting;
    Alcotest.test_case "spans: exception safe" `Quick test_span_exception_safe;
    Alcotest.test_case "probes: ambient aggregation" `Quick test_probe_ambient;
    Alcotest.test_case "metrics: merge" `Quick test_metrics_merge;
    Alcotest.test_case "trace: memory sink, lazy emit" `Quick
      test_memory_sink_and_lazy_emit;
    Alcotest.test_case "trace: file sink" `Quick test_file_sink;
    Alcotest.test_case "trace: lines parse" `Quick test_trace_lines_parse;
    Alcotest.test_case "trace: iteration schema" `Quick
      test_trace_iteration_schema;
    Alcotest.test_case "trace: counts match metrics" `Quick
      test_trace_counts_match_metrics;
    Alcotest.test_case "metrics agree with what-if stats" `Quick
      test_metrics_match_legacy_stats;
    Alcotest.test_case "tuner result carries metrics" `Quick
      test_tuner_metrics_populated;
  ]
