(** Tests for the parallel search layer: the domain pool, the sharded
    what-if cache, the skyline sweep, and the determinism guarantee —
    tuning at [jobs = 1] and [jobs = 4] must produce bit-identical
    results (recommendation, costs, frontier, counters, trace events). *)

module Query = Relax_sql.Query
module Config = Relax_physical.Config
module Index = Relax_physical.Index
module O = Relax_optimizer
module T = Relax_tuner
module W = Relax_workloads
module Pool = Relax_parallel.Pool

let cat = lazy (Fixtures.small_catalog ())

let workload_of_strings l : Query.workload =
  List.mapi
    (fun i s ->
      Query.entry (Printf.sprintf "q%d" (i + 1)) (Relax_sql.Parser.statement s))
    l

(* --- pool --------------------------------------------------------------- *)

let with_pool ~jobs f =
  let pool = Pool.create ~jobs in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let test_pool_order () =
  with_pool ~jobs:4 @@ fun pool ->
  let input = List.init 100 Fun.id in
  (* uneven task durations shuffle completion order; results must still
     come back in input order *)
  let f x =
    if x mod 7 = 0 then Unix.sleepf 0.001;
    x * x
  in
  Alcotest.(check (list int))
    "order preserved" (List.map f input) (Pool.map pool f input)

let test_pool_sequential_matches () =
  let input = List.init 37 (fun i -> i - 5) in
  let f x = (2 * x) + 1 in
  let seq = with_pool ~jobs:1 (fun p -> Pool.map p f input) in
  let par = with_pool ~jobs:4 (fun p -> Pool.map p f input) in
  Alcotest.(check (list int)) "jobs=1 = jobs=4" seq par

let test_pool_empty_and_singleton () =
  with_pool ~jobs:4 @@ fun pool ->
  Alcotest.(check (list int)) "empty" [] (Pool.map pool (fun x -> x) []);
  Alcotest.(check (list int)) "singleton" [ 9 ] (Pool.map pool (fun x -> x * x) [ 3 ])

let test_pool_exception_smallest_index () =
  with_pool ~jobs:4 @@ fun pool ->
  let f x = if x >= 10 then failwith (Printf.sprintf "boom-%d" x) else x in
  match Pool.map pool f (List.init 20 Fun.id) with
  | _ -> Alcotest.fail "expected an exception"
  | exception Failure msg ->
    (* every failing index raises, the smallest one wins deterministically *)
    Alcotest.(check string) "smallest failing index" "boom-10" msg

let test_pool_usable_after_exception () =
  with_pool ~jobs:4 @@ fun pool ->
  (try ignore (Pool.map pool (fun _ -> failwith "x") [ 1; 2; 3 ])
   with Failure _ -> ());
  Alcotest.(check (list int))
    "pool still works" [ 2; 4; 6 ]
    (Pool.map pool (fun x -> 2 * x) [ 1; 2; 3 ])

let test_pool_stats () =
  with_pool ~jobs:4 @@ fun pool ->
  ignore (Pool.map pool Fun.id (List.init 10 Fun.id));
  ignore (Pool.map pool Fun.id (List.init 5 Fun.id));
  ignore (Pool.map pool Fun.id [ 1 ]);
  (* the singleton fast-path *)
  let s = Pool.stats pool in
  Alcotest.(check int) "jobs" 4 s.Pool.pool_jobs;
  Alcotest.(check int) "tasks" 16 s.Pool.tasks;
  Alcotest.(check int) "batches" 2 s.Pool.batches

let test_pool_shutdown_idempotent () =
  let pool = Pool.create ~jobs:4 in
  ignore (Pool.map pool Fun.id [ 1; 2; 3 ]);
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* after shutdown the pool degrades to the sequential path *)
  Alcotest.(check (list int))
    "sequential after shutdown" [ 1; 2; 3 ]
    (Pool.map pool Fun.id [ 1; 2; 3 ])

(* --- sharded what-if cache ---------------------------------------------- *)

let test_whatif_concurrent_domains () =
  let cat = Lazy.force cat in
  let w =
    workload_of_strings
      [
        "SELECT r.a, r.b FROM r WHERE r.a = 5";
        "SELECT r.d FROM r WHERE r.b < 10";
        "SELECT s.x FROM s WHERE s.x = 3";
        "SELECT r.a FROM r, s WHERE r.sid = s.id AND s.x < 50";
      ]
  in
  let selects = (T.Search.prepare w).selects in
  let n = List.length selects in
  let whatif = O.Whatif.create cat in
  let rounds = 5 and domains = 4 in
  let workers =
    Array.init domains (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to rounds do
              List.iter
                (fun (qid, _, q) ->
                  ignore (O.Whatif.plan_select whatif Config.empty ~qid q))
                selects
            done))
  in
  Array.iter Domain.join workers;
  let calls, hits = O.Whatif.stats whatif in
  Alcotest.(check int) "every lookup accounted" (domains * rounds * n)
    (calls + hits);
  Alcotest.(check bool) "at least one call per distinct key" true (calls >= n);
  Alcotest.(check int) "one memoized plan per distinct key" n
    (O.Whatif.cached_plans whatif);
  (* racing domains may duplicate an optimization but never a cache slot *)
  Alcotest.(check bool) "calls bounded by domains x keys" true
    (calls <= domains * n)

let test_whatif_deterministic_plans () =
  let cat = Lazy.force cat in
  let q = Fixtures.parse_select "SELECT r.a, r.b FROM r WHERE r.a = 5" in
  let whatif = O.Whatif.create cat in
  let p1 = O.Whatif.plan_select whatif Config.empty ~qid:"q" q in
  let p2 = O.Whatif.plan_select whatif Config.empty ~qid:"q" q in
  Alcotest.(check bool) "second lookup hits the cache" true (p1 == p2)

(* --- skyline sweep ------------------------------------------------------ *)

(* the seed's O(n²) pairwise definition, kept as the oracle *)
let skyline_naive (raw : T.Search.candidate list) =
  List.filter
    (fun (c : T.Search.candidate) ->
      not
        (List.exists
           (fun (c' : T.Search.candidate) ->
             c' != c
             && c'.delta_cost <= c.delta_cost
             && c'.delta_space >= c.delta_space
             && (c'.delta_cost < c.delta_cost || c'.delta_space > c.delta_space))
           raw))
    raw

let mk_candidate =
  let tr = T.Transform.Remove_index (Index.on "r" [ "a" ]) in
  fun delta_cost delta_space ->
    { T.Search.tr; penalty = 0.0; delta_cost; delta_cost_lo = delta_cost; delta_space }

let check_skyline msg cands =
  let project (c : T.Search.candidate) = (c.delta_cost, c.delta_space) in
  Alcotest.(check (list (pair (float 0.0) (float 0.0))))
    msg
    (List.map project (skyline_naive cands))
    (List.map project (T.Search.skyline_filter cands))

let test_skyline_matches_naive () =
  check_skyline "empty" [];
  check_skyline "singleton" [ mk_candidate 1.0 2.0 ];
  check_skyline "dominated pair"
    [ mk_candidate 1.0 5.0; mk_candidate 2.0 3.0 ];
  check_skyline "equal points both survive"
    [ mk_candidate 1.0 5.0; mk_candidate 1.0 5.0; mk_candidate 0.5 6.0 ];
  check_skyline "equal space, distinct costs"
    [ mk_candidate 3.0 4.0; mk_candidate 1.0 4.0; mk_candidate 2.0 4.0 ];
  check_skyline "equal cost, distinct spaces"
    [ mk_candidate 2.0 1.0; mk_candidate 2.0 9.0; mk_candidate 2.0 4.0 ];
  check_skyline "negative deltas"
    [ mk_candidate (-1.0) 2.0; mk_candidate (-2.0) 2.0; mk_candidate 0.0 (-1.0) ];
  (* a deterministic pseudo-random cloud *)
  let state = ref 123456789 in
  let next () =
    state := (1103515245 * !state) + 12345;
    float_of_int (abs !state mod 1000) /. 100.0
  in
  let cloud = List.init 200 (fun _ -> mk_candidate (next ()) (next ())) in
  check_skyline "random cloud" cloud;
  (* duplicated coordinates exercise the equal-ΔS grouping *)
  let gridded =
    List.init 150 (fun _ ->
        mk_candidate
          (float_of_int (abs (int_of_float (next () *. 10.0)) mod 5))
          (float_of_int (abs (int_of_float (next () *. 10.0)) mod 5)))
  in
  check_skyline "gridded cloud" gridded

let test_skyline_preserves_order () =
  (* (1.0, 5.0) is dominated by (0.5, 6.0); the two survivors are
     incomparable and must come back in input order *)
  let cands =
    [ mk_candidate 1.0 5.0; mk_candidate 0.5 6.0; mk_candidate 0.3 2.0 ]
  in
  let kept = T.Search.skyline_filter cands in
  let projected = List.map (fun (c : T.Search.candidate) -> c.delta_cost) kept in
  Alcotest.(check (list (float 0.0))) "input order kept" [ 0.5; 0.3 ] projected

(* --- determinism across jobs -------------------------------------------- *)

let event_histogram lines =
  let h = Hashtbl.create 8 in
  List.iter
    (fun line ->
      let ev =
        match Relax_obs.Json.of_string line with
        | Ok j -> (
          match Relax_obs.Json.member "event" j with
          | Some (Relax_obs.Json.String s) -> s
          | _ -> "<malformed>")
        | Error _ -> "<unparsable>"
      in
      Hashtbl.replace h ev (1 + Option.value ~default:0 (Hashtbl.find_opt h ev)))
    lines;
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) h [])

let tune_with_jobs ~jobs ~mode ~budget ~iters cat w =
  let sink, lines = Relax_obs.Trace.memory () in
  let obs = Relax_obs.Recorder.create ~sink () in
  let opts =
    {
      (T.Tuner.default_options ~mode ~space_budget:budget ()) with
      max_iterations = iters;
      jobs;
    }
  in
  let r = T.Tuner.tune ~obs cat w opts in
  (r, Relax_obs.Recorder.snapshot obs, lines ())

let check_identical ~label (r1, m1, l1) (r4, m4, l4) =
  let open T.Tuner in
  let chk name b = Alcotest.(check bool) (label ^ ": " ^ name) true b in
  chk "recommended fingerprint"
    (Config.fingerprint r1.recommended = Config.fingerprint r4.recommended);
  chk "recommended cost" (r1.recommended_cost = r4.recommended_cost);
  chk "recommended size" (r1.recommended_size = r4.recommended_size);
  chk "optimal cost" (r1.optimal_cost = r4.optimal_cost);
  chk "improvement" (r1.improvement = r4.improvement);
  chk "frontier" (r1.frontier = r4.frontier);
  chk "best trace" (r1.best_trace = r4.best_trace);
  chk "iterations" (r1.iterations = r4.iterations);
  chk "per-query costs" (r1.per_query = r4.per_query);
  let open Relax_obs.Metrics in
  chk "what-if calls" (m1.what_if_calls = m4.what_if_calls);
  chk "cache hits" (m1.cache_hits = m4.cache_hits);
  chk "plans re-optimized" (m1.plans_reoptimized = m4.plans_reoptimized);
  chk "plans patched" (m1.plans_patched = m4.plans_patched);
  chk "shortcut aborts" (m1.shortcut_aborts = m4.shortcut_aborts);
  chk "iterations counter" (m1.iterations = m4.iterations);
  chk "configurations evaluated"
    (m1.configurations_evaluated = m4.configurations_evaluated);
  chk "transforms generated"
    (m1.transforms_generated = m4.transforms_generated);
  chk "transforms applied" (m1.transforms_applied = m4.transforms_applied);
  chk "pool trace" (m1.pool_trace = m4.pool_trace);
  Alcotest.(check (list (pair string int)))
    (label ^ ": trace event counts")
    (event_histogram l1) (event_histogram l4)

let test_determinism_tpch () =
  let cat = W.Tpch.catalog ~scale:0.01 () in
  let w = W.Tpch.workload_subset [ 1; 3; 6; 10; 14 ] in
  let budget =
    Config.total_bytes cat Config.empty *. 1.4
  in
  let run jobs =
    tune_with_jobs ~jobs ~mode:T.Tuner.Indexes_only ~budget ~iters:60 cat w
  in
  check_identical ~label:"tpch" (run 1) (run 4)

let test_determinism_updates () =
  let schema = W.Star.schema ~scale:0.01 () in
  let profile =
    { W.Generator.default_profile with update_fraction = 0.4; max_tables = 2 }
  in
  let w = W.Generator.workload ~seed:17 ~profile schema ~n:8 in
  let budget = Config.total_bytes schema.catalog Config.empty *. 1.3 in
  let run jobs =
    tune_with_jobs ~jobs ~mode:T.Tuner.Indexes_and_views ~budget ~iters:50
      schema.catalog w
  in
  check_identical ~label:"updates" (run 1) (run 4)

let suite =
  [
    Alcotest.test_case "pool: order-preserving map" `Quick test_pool_order;
    Alcotest.test_case "pool: jobs=1 equals jobs=4" `Quick
      test_pool_sequential_matches;
    Alcotest.test_case "pool: empty and singleton" `Quick
      test_pool_empty_and_singleton;
    Alcotest.test_case "pool: smallest-index exception wins" `Quick
      test_pool_exception_smallest_index;
    Alcotest.test_case "pool: usable after exception" `Quick
      test_pool_usable_after_exception;
    Alcotest.test_case "pool: stats counters" `Quick test_pool_stats;
    Alcotest.test_case "pool: shutdown idempotent, then sequential" `Quick
      test_pool_shutdown_idempotent;
    Alcotest.test_case "whatif: sharded cache under concurrent domains" `Quick
      test_whatif_concurrent_domains;
    Alcotest.test_case "whatif: repeated lookup is a cache hit" `Quick
      test_whatif_deterministic_plans;
    Alcotest.test_case "skyline: sweep matches the pairwise oracle" `Quick
      test_skyline_matches_naive;
    Alcotest.test_case "skyline: survivors keep input order" `Quick
      test_skyline_preserves_order;
    Alcotest.test_case "determinism: TPC-H, jobs=1 vs jobs=4" `Slow
      test_determinism_tpch;
    Alcotest.test_case "determinism: update workload, jobs=1 vs jobs=4" `Slow
      test_determinism_updates;
  ]
