(** Unit tests for the estimation stack (selectivity, cardinality, update
    costs) and the DDL emitter. *)

open Relax_sql.Types
module Predicate = Relax_sql.Predicate
module Expr = Relax_sql.Expr
module Query = Relax_sql.Query
module Index = Relax_physical.Index
module Config = Relax_physical.Config
module Ddl = Relax_physical.Ddl
module O = Relax_optimizer

let c = Column.make
let cat = lazy (Fixtures.small_catalog ())
let env = lazy (O.Env.make (Lazy.force cat) Config.empty)

(* --- selectivity ----------------------------------------------------------- *)

let test_sel_full_range_is_one () =
  let r = Predicate.range (c "r" "a") in
  Fixtures.check_float ~eps:1e-6 "unbounded" 1.0
    (O.Selectivity.range (Lazy.force env) r)

let test_sel_halves () =
  (* r.a is uniform on [0, 1000] *)
  let r = Predicate.range ~hi:(Predicate.bound (VInt 500)) (c "r" "a") in
  let s = O.Selectivity.range (Lazy.force env) r in
  Alcotest.(check bool) "about half" true (s > 0.4 && s < 0.6)

let test_sel_equality_uses_distinct () =
  let s = O.Selectivity.range (Lazy.force env) (Predicate.range_eq (c "r" "a") (VInt 500)) in
  (* ~1/1000 distinct values *)
  Alcotest.(check bool) "around 1/1000" true (s > 1e-4 && s < 1e-2)

let test_sel_join_containment () =
  (* r.sid (1000 distinct) joined to s.id (1000 distinct): 1/1000 *)
  let j = Predicate.make_join (c "r" "sid") (c "s" "id") in
  let s = O.Selectivity.join (Lazy.force env) j in
  Fixtures.check_float ~eps:1e-4 "1/1000" 0.001 s

let test_sel_others_shapes () =
  let env = Lazy.force env in
  let eq = Expr.Cmp (Eq, Col (c "r" "a"), Bin (Add, Col (c "r" "b"), Expr.int_ 1)) in
  let ineq = Expr.Cmp (Lt, Col (c "r" "a"), Col (c "r" "b")) in
  Alcotest.(check bool) "eq more selective than inequality" true
    (O.Selectivity.other env eq < O.Selectivity.other env ineq);
  let in3 = Expr.In_list (Col (c "r" "a"), [ VInt 1; VInt 2; VInt 3 ]) in
  let in1 = Expr.In_list (Col (c "r" "a"), [ VInt 1 ]) in
  Alcotest.(check bool) "IN grows with list" true
    (O.Selectivity.other env in1 < O.Selectivity.other env in3)

let test_sel_clamped () =
  let env = Lazy.force env in
  let wide = Expr.Or (Expr.Cmp (Neq, Col (c "r" "a"), Expr.int_ 1),
                      Expr.Cmp (Neq, Col (c "r" "b"), Expr.int_ 2)) in
  let s = O.Selectivity.other env wide in
  Alcotest.(check bool) "within [0,1]" true (s >= 0.0 && s <= 1.0)

(* --- cardinality ------------------------------------------------------------ *)

let test_card_single_table () =
  let n =
    O.Cardinality.join_rows (Lazy.force env) ~tables:[ "r" ] ~joins:[]
      ~ranges:[] ~others:[]
  in
  Fixtures.check_float "table rows" 100_000.0 n

let test_card_fk_join () =
  (* r ⋈ s on sid=id: |r| × |s| / max(d) = 100000 × 1000/1000 *)
  let n =
    O.Cardinality.join_rows (Lazy.force env) ~tables:[ "r"; "s" ]
      ~joins:[ Predicate.make_join (c "r" "sid") (c "s" "id") ]
      ~ranges:[] ~others:[]
  in
  Alcotest.(check bool) "about |r|" true (n > 50_000.0 && n < 200_000.0)

let test_card_group_capped () =
  let env = Lazy.force env in
  let g = O.Cardinality.group_rows env ~input_rows:50.0 [ c "r" "a" ] in
  Alcotest.(check bool) "groups <= input" true (g <= 50.0);
  let g2 = O.Cardinality.group_rows env ~input_rows:1e9 [ c "r" "d" ] in
  (* d has ~51 distinct values *)
  Alcotest.(check bool) "groups <= distinct" true (g2 <= 60.0)

let test_card_scalar_agg_is_one () =
  let q = (Fixtures.parse_select "SELECT SUM(r.a) FROM r WHERE r.b = 1").body in
  Fixtures.check_float "one row" 1.0 (O.Cardinality.spjg (Lazy.force env) q)

(* --- update costs ------------------------------------------------------------ *)

let dml_of s = Fixtures.parse_dml s

let test_update_affected_rows () =
  let env = Lazy.force env in
  let d = dml_of "DELETE FROM r WHERE a < 100" in
  let k = O.Update_cost.affected_rows env d in
  (* ~10% of 100k rows *)
  Alcotest.(check bool) "about 10k" true (k > 5_000.0 && k < 20_000.0)

let test_update_index_affected_rules () =
  let upd = dml_of "UPDATE r SET b = b + 1 WHERE a < 10" in
  let ins = dml_of "INSERT INTO r ROWS 100" in
  let i_b = Index.on "r" [ "b" ] in
  let i_a = Index.on "r" [ "a" ] in
  let i_s = Index.on "s" [ "x" ] in
  Alcotest.(check bool) "b-index maintained" true
    (O.Update_cost.index_affected upd i_b);
  Alcotest.(check bool) "a-index not maintained by b-update" false
    (O.Update_cost.index_affected upd i_a);
  Alcotest.(check bool) "insert maintains all" true
    (O.Update_cost.index_affected ins i_a);
  Alcotest.(check bool) "other table untouched" false
    (O.Update_cost.index_affected upd i_s)

let test_update_clustered_always_maintained () =
  let upd = dml_of "UPDATE r SET b = b + 1 WHERE a < 10" in
  let ci = Index.on "r" ~clustered:true [ "id" ] in
  Alcotest.(check bool) "clustered rewritten" true
    (O.Update_cost.index_affected upd ci)

let test_update_view_affected () =
  let upd = dml_of "UPDATE r SET b = b + 1 WHERE a < 10" in
  let v_b =
    Relax_physical.View.make (Fixtures.parse_select "SELECT r.b FROM r WHERE r.a < 50").body
  in
  let v_d =
    Relax_physical.View.make (Fixtures.parse_select "SELECT r.d FROM r WHERE r.cc < 50").body
  in
  Alcotest.(check bool) "view reading b maintained" true
    (O.Update_cost.view_affected upd v_b);
  Alcotest.(check bool) "view not reading b spared" false
    (O.Update_cost.view_affected upd v_d)

let test_shell_cost_monotone_in_indexes () =
  let env = Lazy.force env in
  let d = dml_of "INSERT INTO r ROWS 1000" in
  let c0 = O.Update_cost.shell_cost env Config.empty d in
  let c1 =
    O.Update_cost.shell_cost env (Config.of_indexes [ Index.on "r" [ "a" ] ]) d
  in
  let c2 =
    O.Update_cost.shell_cost env
      (Config.of_indexes [ Index.on "r" [ "a" ]; Index.on "r" [ "b" ] ])
      d
  in
  Alcotest.(check bool) "monotone" true (c0 < c1 && c1 < c2)

(* --- DDL ---------------------------------------------------------------------- *)

let test_ddl_index () =
  let i = Index.on "r" [ "a"; "b" ] ~suffix:[ "cc" ] in
  let s = Fmt.str "%a" Ddl.pp_index i in
  Alcotest.(check bool) "create" true (Astring_contains.contains s "CREATE INDEX");
  Alcotest.(check bool) "keys" true (Astring_contains.contains s "(a, b)");
  Alcotest.(check bool) "include" true (Astring_contains.contains s "INCLUDE (cc)")

let test_ddl_clustered () =
  let i = Index.on "r" ~clustered:true [ "id" ] in
  let s = Fmt.str "%a" Ddl.pp_index i in
  Alcotest.(check bool) "clustered keyword" true
    (Astring_contains.contains s "CREATE CLUSTERED INDEX")

let test_ddl_drop_script () =
  let cfg = Config.of_indexes [ Index.on "r" [ "a" ]; Index.on "s" [ "x" ] ] in
  let s = Fmt.str "%a" Ddl.pp_drop cfg in
  Alcotest.(check int) "two drops" 2 (Astring_contains.count s "DROP INDEX")

(* --- pretty-printer round trips for DDL-adjacent pieces ------------------------ *)

let test_pretty_view_sql_reparses () =
  let v =
    Relax_physical.View.make
      (Fixtures.parse_select
         "SELECT r.a, SUM(s.x) FROM r, s WHERE r.sid = s.id AND r.a < 10 GROUP BY r.a")
        .body
  in
  let sql = Fmt.str "%a" Relax_sql.Pretty.pp_spjg (Relax_physical.View.definition v) in
  match Relax_sql.Parser.statement sql with
  | Select q ->
    Alcotest.(check int) "same tables" 2 (List.length q.body.tables)
  | _ -> Alcotest.fail "view definition did not re-parse"

(* --- CBV bound (§3.3.2, view removal) -------------------------------------- *)

(* Regression: the compensating sort of [removed_view_bound] is costed on
   the access's own cardinality, not on the whole view.  A selective
   ordered access over a removed 50k-row view must pay only a 50-row
   sort. *)
let test_removed_view_bound_sorts_accessed_rows () =
  let module View = Relax_physical.View in
  let module T = Relax_tuner in
  let module P = O.Cost_params in
  let cat = Lazy.force cat in
  let view = View.make (Fixtures.parse_select "SELECT r.a, r.b FROM r").body in
  let rows = 50_000.0 in
  let config = Config.add_view Config.empty view ~rows in
  let old_env = O.Env.make cat config in
  let ctx : T.Cost_bound.context =
    {
      env' = O.Env.make cat Config.empty;
      old_env;
      removed_indexes = [];
      removed_views = [ view ];
      view_merge = None;
      cbv = (fun _ -> 1000.0);
      expands = false;
    }
  in
  let vname = View.name view in
  let access ~order ~access_rows : O.Plan.access_info =
    {
      rel = vname;
      request =
        O.Request.make ~rel:vname ~order
          ~cols:(Column_set.singleton (c vname "r_a"))
          ();
      usages = [];
      via_view = None;
      access_cost = 0.0;
      access_rows;
      sorted = order <> [];
      executions = 1.0;
    }
  in
  let ordered = [ (c vname "r_a", Asc) ] in
  let b_unordered = T.Cost_bound.removed_view_bound ctx (access ~order:[] ~access_rows:50.0) view in
  let b_selective =
    T.Cost_bound.removed_view_bound ctx (access ~order:ordered ~access_rows:50.0) view
  in
  let b_full =
    T.Cost_bound.removed_view_bound ctx (access ~order:ordered ~access_rows:rows) view
  in
  let width = O.Env.row_width old_env vname in
  let page = Relax_physical.Size_model.default_params.page_size in
  let expected_sort =
    P.sort_cost ~rows:50.0 ~pages:(Float.max 1.0 (50.0 *. width /. page))
  in
  Fixtures.check_float ~eps:1e-6 "sort costed on accessed cardinality"
    expected_sort
    (b_selective -. b_unordered);
  Alcotest.(check bool) "50-row sort far below full-view sort" true
    (b_full -. b_selective > 10.0 *. expected_sort)

let suite =
  [
    Alcotest.test_case "sel: unbounded" `Quick test_sel_full_range_is_one;
    Alcotest.test_case "sel: half range" `Quick test_sel_halves;
    Alcotest.test_case "sel: equality" `Quick test_sel_equality_uses_distinct;
    Alcotest.test_case "sel: join containment" `Quick test_sel_join_containment;
    Alcotest.test_case "sel: other shapes" `Quick test_sel_others_shapes;
    Alcotest.test_case "sel: clamped" `Quick test_sel_clamped;
    Alcotest.test_case "card: single table" `Quick test_card_single_table;
    Alcotest.test_case "card: fk join" `Quick test_card_fk_join;
    Alcotest.test_case "card: group caps" `Quick test_card_group_capped;
    Alcotest.test_case "card: scalar agg" `Quick test_card_scalar_agg_is_one;
    Alcotest.test_case "update: affected rows" `Quick test_update_affected_rows;
    Alcotest.test_case "update: index rules" `Quick test_update_index_affected_rules;
    Alcotest.test_case "update: clustered" `Quick test_update_clustered_always_maintained;
    Alcotest.test_case "update: views" `Quick test_update_view_affected;
    Alcotest.test_case "update: shell monotone" `Quick
      test_shell_cost_monotone_in_indexes;
    Alcotest.test_case "ddl: index" `Quick test_ddl_index;
    Alcotest.test_case "ddl: clustered" `Quick test_ddl_clustered;
    Alcotest.test_case "ddl: drop" `Quick test_ddl_drop_script;
    Alcotest.test_case "pretty: view sql re-parses" `Quick
      test_pretty_view_sql_reparses;
    Alcotest.test_case "cbv: sort on accessed rows" `Quick
      test_removed_view_bound_sorts_accessed_rows;
  ]
