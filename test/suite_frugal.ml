(** Tests for the budgeted costing tier (lib/core/frugal.ml): the sweep's
    decision rules, the ΔT interval's two-sided soundness over TPC-H
    relaxations, the §3.3.2 patched plan, and end-to-end budgeted tuning
    runs (zero budget, determinism across [jobs], honest reporting). *)

module Query = Relax_sql.Query
module Config = Relax_physical.Config
module View = Relax_physical.View
module O = Relax_optimizer
module T = Relax_tuner
module W = Relax_workloads

(* --- interval algebra ----------------------------------------------------- *)

let test_tighten_with () =
  let open T.Frugal in
  let chk name (got : interval) lo hi =
    Alcotest.(check (pair (float 1e-9) (float 1e-9)))
      name (lo, hi) (got.lo, got.hi)
  in
  let a = { lo = 1.0; hi = 5.0 } in
  chk "overlap shrinks" (tighten_with a ~advisory:{ lo = 2.0; hi = 4.0 }) 2.0 4.0;
  chk "partial overlap clips"
    (tighten_with a ~advisory:{ lo = 4.5; hi = 10.0 })
    4.5 5.0;
  (* a conflicting advisory (empty intersection) must not corrupt the
     checked interval *)
  chk "conflict keeps checked interval"
    (tighten_with a ~advisory:{ lo = 6.0; hi = 7.0 })
    1.0 5.0;
  Alcotest.(check bool) "point is a point" true (is_point (point 3.0));
  Alcotest.(check bool) "wide is not a point" false (is_point a);
  Alcotest.(check (float 1e-9)) "width" 4.0 (width a)

(* --- sweep decision rules -------------------------------------------------- *)

let penalty ~payload:_ ~dt = dt

let test_sweep_bounds_decide () =
  (* intervals entirely on one side of the threshold are decided without a
     single call, even with a zero budget *)
  let open T.Frugal in
  let t = create ~budget:0 in
  let a = cand "a" { lo = 1.0; hi = 2.0 } in
  let b = cand "b" { lo = 10.0; hi = 20.0 } in
  sweep t ~penalty ~tighten:(fun _ -> ()) ~refine:(fun _ -> Alcotest.fail "refine with zero budget") [ a; b ];
  Alcotest.(check int) "nothing spent" 0 (spent t);
  Alcotest.(check int) "one bound accept" 1 (bound_accepts t);
  Alcotest.(check int) "one bound reject" 1 (bound_rejects t)

let test_sweep_refines_widest_first () =
  let open T.Frugal in
  let t = create ~budget:8 in
  let a = cand "a" { lo = 0.0; hi = 10.0 } in
  let b = cand "b" { lo = 2.0; hi = 6.0 } in
  (* c's upper end sets the threshold (5.0) and never straddles it *)
  let c = cand "c" { lo = 4.0; hi = 5.0 } in
  let order = ref [] in
  let refine cd =
    order := cd.payload :: !order;
    debit t 1;
    cd.ival <- point (match cd.payload with "a" -> 3.0 | _ -> 4.0)
  in
  sweep t ~penalty ~tighten:(fun _ -> ()) ~refine [ a; b; c ];
  Alcotest.(check (list string))
    "widest penalty gap first" [ "a"; "b" ] (List.rev !order);
  Alcotest.(check int) "two calls spent" 2 (spent t);
  (* after refinement the threshold is 3.0 (a's exact value); c's whole
     interval sits above it *)
  Alcotest.(check int) "c rejected from bounds" 1 (bound_rejects t);
  Alcotest.(check int) "no bound accepts" 0 (bound_accepts t)

let test_sweep_budget_dry () =
  (* the ranking tier only gets a quarter of the budget; once that share is
     gone, remaining straddlers are left un-refined (they rank by their
     upper ends) rather than over-spending *)
  let open T.Frugal in
  let t = create ~budget:4 in
  Alcotest.(check int) "ranking share is a quarter" 1 (rank_remaining t);
  let a = cand "a" { lo = 0.0; hi = 10.0 } in
  let b = cand "b" { lo = 1.0; hi = 9.0 } in
  let c = cand "c" { lo = 2.0; hi = 8.5 } in
  let refine cd =
    debit t 1;
    cd.ival <- point 7.0
  in
  sweep t ~penalty ~tighten:(fun _ -> ()) ~refine [ a; b; c ];
  Alcotest.(check int) "exactly the ranking share spent" 1 (spent t);
  Alcotest.(check bool) "widest refined" true a.refined;
  Alcotest.(check bool) "others left straddling" false (b.refined || c.refined);
  Alcotest.(check int) "straddlers not miscounted" 0
    (bound_accepts t + bound_rejects t)

let test_sweep_free_tighten_progress () =
  (* a tighten that shrinks the interval re-enters the sweep without
     consuming budget; here it decides everything on its own *)
  let open T.Frugal in
  let t = create ~budget:0 in
  let a = cand "a" { lo = 0.0; hi = 10.0 } in
  let b = cand "b" { lo = 4.0; hi = 6.0 } in
  let tighten cd =
    if cd.payload = "a" then cd.ival <- tighten_with cd.ival ~advisory:(point 1.0)
  in
  sweep t ~penalty ~tighten ~refine:(fun _ -> Alcotest.fail "refine with zero budget") [ a; b ];
  Alcotest.(check int) "nothing spent" 0 (spent t);
  Alcotest.(check int) "a accepted from the tightened bound" 1 (bound_accepts t);
  Alcotest.(check int) "b rejected" 1 (bound_rejects t)

(* --- interval soundness over TPC-H relaxations ----------------------------- *)

let tpch =
  lazy
    (let cat = W.Tpch.catalog ~scale:0.01 () in
     let w = W.Tpch.workload_subset [ 1; 3; 6; 10; 14 ] in
     let inst = T.Instrument.optimal_configuration cat ~base:Config.empty w in
     let prepared = T.Search.prepare w in
     let whatif = O.Whatif.create cat in
     let plans =
       List.map
         (fun (qid, _, sq) ->
           (qid, sq, O.Whatif.plan_select whatif inst.optimal ~qid sq))
         prepared.selects
     in
     let transforms = Array.of_list (T.Transform.enumerate inst.optimal) in
     (cat, inst.optimal, whatif, Array.of_list plans, transforms))

let bound_context cat config config' tr : T.Cost_bound.context =
  {
    env' = O.Env.make cat config';
    old_env = O.Env.make cat config;
    removed_indexes = T.Transform.removed_indexes config tr;
    removed_views = T.Transform.removed_views tr;
    view_merge =
      (match tr with
      | T.Transform.Merge_views (a, b) -> (
        match View.merge a b with Some m -> Some (m, a, b) | None -> None)
      | _ -> None);
    cbv =
      (fun v ->
        (O.Optimizer.optimize cat Config.empty
           { Query.body = View.definition v; order_by = [] })
          .cost);
    expands = T.Transform.adds_structures tr;
  }

(* the frugal tier's central claim: for any relaxation of the TPC-H
   optimal configuration, the re-optimized cost lands inside the cheap
   interval [query_lower_bound, query_bound] *)
let prop_interval_sound_tpch =
  QCheck.Test.make
    ~name:"lower bound <= re-optimized cost <= upper bound (TPC-H)" ~count:120
    (QCheck.make QCheck.Gen.(pair (int_bound 10_000) (int_bound 10_000)))
    (fun (ti, qi) ->
      let cat, optimal, whatif, plans, transforms = Lazy.force tpch in
      if Array.length transforms = 0 then true
      else begin
        let tr = transforms.(ti mod Array.length transforms) in
        let qid, sq, plan = plans.(qi mod Array.length plans) in
        let est v =
          O.Cardinality.spjg (O.Env.make cat Config.empty) (View.definition v)
        in
        match T.Transform.apply ~estimate_rows:est optimal tr with
        | None -> true
        | Some config' ->
          let ctx = bound_context cat optimal config' tr in
          if not (T.Cost_bound.plan_affected ctx plan) then true
          else begin
            let hi =
              T.Cost_bound.query_bound ~order_by:sq.Query.order_by ctx plan
            in
            let lo =
              T.Cost_bound.query_lower_bound ~order_by:sq.Query.order_by ctx
                plan
            in
            let actual =
              (O.Whatif.plan_select whatif config' ~qid sq).O.Plan.cost
            in
            let tol = 1e-6 *. Float.max 1.0 actual in
            lo <= actual +. tol && hi >= actual -. tol && lo <= hi +. tol
          end
      end)

(* the §3.3.2 patched plan is the bound made concrete: its top-level cost
   equals query_bound, and it is a plan under C' — no affected access
   survives the patch *)
let prop_patched_plan_matches_bound =
  QCheck.Test.make ~name:"patched plan realizes query_bound (TPC-H)"
    ~count:120
    (QCheck.make QCheck.Gen.(pair (int_bound 10_000) (int_bound 10_000)))
    (fun (ti, qi) ->
      let cat, optimal, _, plans, transforms = Lazy.force tpch in
      if Array.length transforms = 0 then true
      else begin
        let tr = transforms.(ti mod Array.length transforms) in
        let _, sq, plan = plans.(qi mod Array.length plans) in
        let est v =
          O.Cardinality.spjg (O.Env.make cat Config.empty) (View.definition v)
        in
        match T.Transform.apply ~estimate_rows:est optimal tr with
        | None -> true
        | Some config' ->
          let ctx = bound_context cat optimal config' tr in
          if not (T.Cost_bound.plan_affected ctx plan) then true
          else begin
            match
              T.Cost_bound.patched_plan ~order_by:sq.Query.order_by ctx plan
            with
            | None ->
              (* only removed/merged views are unpatchable *)
              ctx.removed_views <> [] || ctx.view_merge <> None
            | Some p ->
              let bound =
                T.Cost_bound.query_bound ~order_by:sq.Query.order_by ctx plan
              in
              T.Cost_bound.float_eq ~eps:1e-6 p.O.Plan.cost bound
              && not (T.Cost_bound.plan_affected ctx p)
          end
      end)

(* --- end-to-end budgeted tuning runs --------------------------------------- *)

let named name (m : Relax_obs.Metrics.snapshot) =
  Option.value ~default:0 (List.assoc_opt name m.named_counters)

let tune_tpch ?(nums = [ 1; 3; 6 ]) ?(iters = 40) ?(jobs = 1) ~whatif_budget ()
    =
  let cat = W.Tpch.catalog ~scale:0.01 () in
  let w = W.Tpch.workload_subset nums in
  let space = Config.total_bytes cat Config.empty *. 1.3 in
  let obs = Relax_obs.Recorder.create () in
  let opts =
    {
      (T.Tuner.default_options ~space_budget:space ()) with
      max_iterations = iters;
      jobs;
      whatif_budget;
    }
  in
  let r = T.Tuner.tune ~obs cat w opts in
  (cat, w, space, r, Relax_obs.Recorder.snapshot obs)

let test_budget_zero () =
  (* --whatif-budget 0: the search runs purely on bounds; the result must
     still be a valid recommendation, and its reported cost must be an
     honest exact cost, not a bound *)
  let cat, w, space, r, m = tune_tpch ~whatif_budget:(Some 0) () in
  Alcotest.(check int) "no budget spent" 0 (named "whatif.budget_spent" m);
  Alcotest.(check bool) "fits the space budget" true
    (r.recommended_size <= space);
  Alcotest.(check bool) "still improves on the base" true
    (r.recommended_cost <= r.initial_cost);
  let honest = T.Tuner.workload_cost cat r.recommended w in
  Alcotest.(check bool) "reported cost is honest" true
    (T.Cost_bound.float_eq ~eps:1e-6 honest r.recommended_cost)

let test_budget_spends_within () =
  let _, _, _, _, m = tune_tpch ~whatif_budget:(Some 16) () in
  let spent = named "whatif.budget_spent" m in
  Alcotest.(check bool) "spends within the budget" true (spent <= 16)

let test_frugal_fewer_calls () =
  (* the point of the tier: on a workload where exact costing pays calls
     every iteration, a finite budget must cut the what-if call count,
     with an honestly-reported recommendation.  (On toy problems exact
     costing pays almost nothing and frugality's fixed overhead — the
     base-config anchor pass — can balance the savings; this mirrors the
     bench's generated-workload regime at a smaller scale.) *)
  let schema = W.Bench_db.tpch_schema ~scale:0.01 () in
  let base = W.Generator.workload ~seed:900 schema ~n:13 in
  let rng = Relax_catalog.Rng.create 901 in
  let w =
    List.concat_map
      (fun rep ->
        List.map
          (fun (e : Query.entry) ->
            { e with qid = Printf.sprintf "%s-r%d" e.qid rep })
          (if rep = 0 then base
           else W.Generator.reparameterize schema rng base))
      (List.init 3 Fun.id)
  in
  let cat = schema.catalog in
  let space = Config.total_bytes cat Config.empty *. 1.3 in
  let run whatif_budget =
    let obs = Relax_obs.Recorder.create () in
    let opts =
      {
        (T.Tuner.default_options ~mode:T.Tuner.Indexes_only
           ~space_budget:space ())
        with
        max_iterations = 200;
        jobs = 1;
        whatif_budget;
      }
    in
    let r = T.Tuner.tune ~obs cat w opts in
    (r, Relax_obs.Recorder.snapshot obs)
  in
  let _, exact = run None in
  let r, frugal = run (Some 32) in
  let open Relax_obs.Metrics in
  Alcotest.(check bool)
    (Printf.sprintf "fewer what-if calls (exact %d, frugal %d)"
       exact.what_if_calls frugal.what_if_calls)
    true
    (frugal.what_if_calls < exact.what_if_calls);
  let honest = T.Tuner.workload_cost cat r.recommended w in
  Alcotest.(check bool) "frugal reported cost is honest" true
    (T.Cost_bound.float_eq ~eps:1e-6 honest r.recommended_cost)

let test_budget_determinism_jobs () =
  (* the frugal decision pass runs on the main domain; a finite budget must
     not cost determinism across worker counts *)
  let run jobs =
    tune_tpch ~nums:[ 1; 3; 6; 10; 14 ] ~jobs ~whatif_budget:(Some 24) ()
  in
  let _, _, _, r1, m1 = run 1 and _, _, _, r4, m4 = run 4 in
  let chk name b = Alcotest.(check bool) name true b in
  chk "recommended fingerprint"
    (Config.fingerprint r1.recommended = Config.fingerprint r4.recommended);
  chk "recommended cost" (r1.recommended_cost = r4.recommended_cost);
  chk "best trace" (r1.best_trace = r4.best_trace);
  chk "iterations" (r1.iterations = r4.iterations);
  chk "per-query costs" (r1.per_query = r4.per_query);
  let open Relax_obs.Metrics in
  chk "what-if calls" (m1.what_if_calls = m4.what_if_calls);
  chk "budget spent"
    (named "whatif.budget_spent" m1 = named "whatif.budget_spent" m4);
  chk "bound accepts"
    (named "whatif.bound_accepts" m1 = named "whatif.bound_accepts" m4);
  chk "bound rejects"
    (named "whatif.bound_rejects" m1 = named "whatif.bound_rejects" m4)

let suite =
  [
    Alcotest.test_case "interval: tighten_with" `Quick test_tighten_with;
    Alcotest.test_case "sweep: bounds decide without calls" `Quick
      test_sweep_bounds_decide;
    Alcotest.test_case "sweep: widest penalty gap first" `Quick
      test_sweep_refines_widest_first;
    Alcotest.test_case "sweep: ranking share bounds spend" `Quick
      test_sweep_budget_dry;
    Alcotest.test_case "sweep: free tighten progress" `Quick
      test_sweep_free_tighten_progress;
    QCheck_alcotest.to_alcotest prop_interval_sound_tpch;
    QCheck_alcotest.to_alcotest prop_patched_plan_matches_bound;
    Alcotest.test_case "tune: zero budget" `Slow test_budget_zero;
    Alcotest.test_case "tune: spend within budget" `Slow
      test_budget_spends_within;
    Alcotest.test_case "tune: frugal spends fewer calls" `Slow
      test_frugal_fewer_calls;
    Alcotest.test_case "tune: finite budget deterministic across jobs" `Slow
      test_budget_determinism_jobs;
  ]
