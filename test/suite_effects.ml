(** Tests for the interprocedural effect inference itself (lib/lint):
    exact solved signatures for fixture nodes as seen through the
    [--effects-dump] rows, byte-stability of the dump across runs, a
    qcheck property that inference is monotone under adding a call edge,
    and the empty-scan exit path of the CLI driver. *)

module Lint = Relax_lint
module E = Lint.Effects

let rows = lazy (Lazy.force Suite_lint.fixture_result).Lint.Engine.signatures

let find_row node =
  match
    List.find_opt
      (fun (r : Lint.Engine.sig_row) -> r.sr_node = node)
      (Lazy.force rows)
  with
  | Some r -> r
  | None -> Alcotest.failf "no signature row for node %s" node

let check_sig ?(pool = false) node ~effects =
  let r = find_row node in
  Alcotest.(check (list string))
    (node ^ " effects") effects r.Lint.Engine.sr_effects;
  Alcotest.(check bool) (node ^ " pool") pool r.Lint.Engine.sr_pool

(* the fixture nodes with signatures known by construction *)
let test_signatures () =
  check_sig "Fix_effects.pure_add" ~effects:[];
  check_sig "Fix_effects.one_hop_clock" ~effects:[ "reads-clock" ];
  check_sig "Fix_effects.guarded_bump"
    ~effects:[ "acquires-mutex"; "mutex-guarded-mutation" ];
  (* the List.iter closure mutates [seen], a local of [escape] — the
     closure is flagged, and the capture dissolves back at its owner *)
  check_sig "Fix_effects.escape.<fn#1>" ~effects:[ "mutates-captured-state" ];
  check_sig "Fix_effects.escape" ~effects:[];
  (* the clock read two hops away lands on the pool closure *)
  check_sig "Fix_l6.stamped.<pool#1>" ~pool:true ~effects:[ "reads-clock" ];
  check_sig "Fix_l8.publish_good"
    ~effects:[ "acquires-mutex"; "atomic-write"; "mutex-guarded-mutation" ]

(* two fresh engine runs over the same build tree must render the very
   same dump, byte for byte — CI additionally cmp(1)s the CLI output *)
let test_dump_stable () =
  let render () =
    List.map
      (fun row -> Relax_obs.Json.to_string (Lint.Engine.sig_row_to_json row))
      (Lint.Engine.run Suite_lint.fixture_config).Lint.Engine.signatures
  in
  Alcotest.(check (list string)) "byte-identical dumps" (render ()) (render ())

(* --- qcheck: adding a call edge can only grow signatures -------------- *)

let all_effs =
  [
    E.Mutates_shared; E.Mutates_args; E.Mutates_guarded; E.Acquires_mutex;
    E.Atomic_read; E.Atomic_write; E.Reads_clock; E.Nondet; E.Reads_ambient;
    E.Raises; E.Io;
  ]

let dummy_loc = { E.file = "prop.ml"; line = 1; col = 0 }

(* a random graph: per-node direct effect sets, a random edge list, and
   one extra edge to add *)
let gen_case =
  QCheck.Gen.(
    let gen_edge n =
      let* src = int_bound (n - 1) in
      let* dst = int_bound (n - 1) in
      let* k = int_bound 2 in
      return (src, dst, k)
    in
    let* n = int_range 2 6 in
    let* flagged =
      flatten_l
        (List.init n (fun _ ->
             let* mask = int_bound ((1 lsl List.length all_effs) - 1) in
             return
               (List.filteri (fun i _ -> mask land (1 lsl i) <> 0) all_effs)))
    in
    let* m = int_bound 8 in
    let* edges = flatten_l (List.init m (fun _ -> gen_edge n)) in
    let* extra = gen_edge n in
    return (n, flagged, edges, extra))

let print_case (n, flagged, edges, extra) =
  Printf.sprintf "nodes=%d effs=[%s] edges=[%s] extra=%s" n
    (String.concat ";"
       (List.map (fun l -> string_of_int (List.length l)) flagged))
    (String.concat ";"
       (List.map (fun (s, d, k) -> Printf.sprintf "%d->%d/%d" s d k) edges))
    (let s, d, k = extra in
     Printf.sprintf "%d->%d/%d" s d k)

let prop_monotone =
  QCheck.Test.make ~name:"inference monotone under an added call edge"
    ~count:200
    (QCheck.make ~print:print_case gen_case)
    (fun (n, flagged, edges, extra) ->
      ignore n;
      let name i = Printf.sprintf "n%d" i in
      let nodes =
        List.mapi
          (fun i effs ->
            (name i, { E.direct_empty with E.d_flagged = E.Set.of_list effs }))
          flagged
      in
      let argk_of = function
        | 0 -> E.Arg_none
        | 1 -> E.Arg_args
        | _ -> E.Arg_shared
      in
      let mk (src, dst, k) =
        ( name src,
          {
            E.callee = name dst;
            site = dummy_loc;
            guarded = false;
            argk = argk_of k;
          } )
      in
      let to_map es =
        List.fold_left
          (fun acc (src, e) ->
            let prev =
              match E.SMap.find_opt src acc with Some l -> l | None -> []
            in
            E.SMap.add src (prev @ [ e ]) acc)
          E.SMap.empty es
      in
      let before = E.solve ~nodes ~edges:(to_map (List.map mk edges)) in
      let after =
        E.solve ~nodes ~edges:(to_map (List.map mk (edges @ [ extra ])))
      in
      List.for_all
        (fun (id, _) ->
          let a = E.SMap.find id before and b = E.SMap.find id after in
          E.Set.subset a.E.s_flagged b.E.s_flagged
          && E.Set.subset a.E.s_sanctioned b.E.s_sanctioned
          && E.SSet.subset a.E.s_cap_param b.E.s_cap_param
          && E.SSet.subset a.E.s_cap_local b.E.s_cap_local)
        nodes)

(* --- the CLI's empty-scan exit path ---------------------------------- *)

let test_empty_scan () =
  let lint_exe = Filename.concat Suite_lint.build_root "bin/lint.exe" in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "relax_lint_empty_%d" (Unix.getpid ()))
  in
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let err = Filename.temp_file "relax_lint_scan" ".err" in
  let cmd =
    Printf.sprintf "%s --root %s >/dev/null 2>%s" (Filename.quote lint_exe)
      (Filename.quote dir) (Filename.quote err)
  in
  let code = Sys.command cmd in
  let ic = open_in_bin err in
  let out = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove err;
  (try Unix.rmdir dir with Unix.Unix_error _ -> ());
  Alcotest.(check int) "exit code" 2 code;
  Alcotest.(check bool)
    "explains the empty scan" true
    (Astring_contains.contains out "no cmt files found");
  Alcotest.(check bool)
    "names every searched root" true
    (Astring_contains.contains out
       (Printf.sprintf "searched build-tree root(s): %s" dir))

let suite =
  [
    Alcotest.test_case "fixture node signatures" `Quick test_signatures;
    Alcotest.test_case "effects dump is deterministic" `Quick test_dump_stable;
    QCheck_alcotest.to_alcotest prop_monotone;
    Alcotest.test_case "empty scan exits 2 with roots" `Quick test_empty_scan;
  ]
