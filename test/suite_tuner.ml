(** Tests for the relaxation tuner: instrumentation (§2), transformations
    at the configuration level (§3.1), cost bounds (§3.3.2), the search
    (§3.4) and update handling (§3.6). *)

open Relax_sql.Types
module Query = Relax_sql.Query
module Index = Relax_physical.Index
module View = Relax_physical.View
module Config = Relax_physical.Config
module O = Relax_optimizer
module T = Relax_tuner

let c = Column.make
let cat = lazy (Fixtures.small_catalog ())

let workload_of_strings l : Query.workload =
  List.mapi
    (fun i s -> Query.entry (Printf.sprintf "q%d" (i + 1)) (Relax_sql.Parser.statement s))
    l

let mb x = x *. 1024.0 *. 1024.0

(* --- instrumentation ---------------------------------------------------- *)

let test_optimal_beats_scan () =
  let cat = Lazy.force cat in
  let w = workload_of_strings [ "SELECT r.a, r.b FROM r WHERE r.a = 5" ] in
  let inst = T.Instrument.optimal_configuration cat ~base:Config.empty w in
  let whatif = O.Whatif.create cat in
  let base = O.Whatif.workload_cost whatif Config.empty w in
  let opt = O.Whatif.workload_cost whatif inst.optimal w in
  Alcotest.(check bool) "optimal strictly better" true (opt < base /. 2.0)

let test_optimal_covering_single_request () =
  (* Lemmas 1+2: one sargable equality and no order -> a single covering
     index with the sargable column as key *)
  let cat = Lazy.force cat in
  let w = workload_of_strings [ "SELECT r.b, r.e FROM r WHERE r.a = 5" ] in
  let inst = T.Instrument.optimal_configuration cat ~base:Config.empty w in
  let idx = Config.indexes inst.optimal in
  Alcotest.(check int) "one index" 1 (List.length idx);
  let i = List.hd idx in
  Alcotest.(check (list string)) "key is a" [ "a" ]
    (List.map (fun (x : column) -> x.col) i.keys);
  Alcotest.(check bool) "covers b and e" true
    (Column_set.subset
       (Column_set.of_list [ c "r" "b"; c "r" "e" ])
       (Index.columns i))

let test_optimal_order_index () =
  (* an ORDER BY generates an order-providing alternative (§2.1) *)
  let cat = Lazy.force cat in
  let w =
    workload_of_strings
      [ "SELECT r.d, r.e FROM r WHERE r.a < 10 AND r.b < 10 ORDER BY r.d" ]
  in
  let inst = T.Instrument.optimal_configuration cat ~base:Config.empty w in
  let has_d_leading =
    List.exists
      (fun (i : Index.t) ->
        match i.keys with k :: _ -> Column.equal k (c "r" "d") | [] -> false)
      (Config.indexes inst.optimal)
  in
  Alcotest.(check bool) "order index exists" true has_d_leading

let test_optimal_view_for_join () =
  let cat = Lazy.force cat in
  let w =
    workload_of_strings
      [ "SELECT r.a, s.y FROM r, s WHERE r.sid = s.id AND r.a < 5" ]
  in
  let inst = T.Instrument.optimal_configuration cat ~base:Config.empty w in
  Alcotest.(check bool) "view created" true (Config.views inst.optimal <> []);
  (* the view must actually be used by the final plan *)
  let whatif = O.Whatif.create cat in
  let q = Fixtures.parse_select "SELECT r.a, s.y FROM r, s WHERE r.sid = s.id AND r.a < 5" in
  let plan = O.Whatif.plan_select whatif inst.optimal ~qid:"q1" q in
  Alcotest.(check bool) "view used" true
    (List.exists (fun v -> O.Plan.uses_view plan v) (Config.views inst.optimal))

let test_request_stats_counted () =
  let cat = Lazy.force cat in
  let w =
    workload_of_strings
      [ "SELECT r.a, s.y FROM r, s WHERE r.sid = s.id AND r.a < 5" ]
  in
  let inst = T.Instrument.optimal_configuration cat ~base:Config.empty w in
  let s = List.hd inst.stats in
  Alcotest.(check bool) "index requests > 0" true (s.index_requests > 0);
  Alcotest.(check bool) "view requests > 0" true (s.view_requests > 0)

let test_indexes_only_mode () =
  let cat = Lazy.force cat in
  let w =
    workload_of_strings
      [ "SELECT r.a, s.y FROM r, s WHERE r.sid = s.id AND r.a < 5" ]
  in
  let inst =
    T.Instrument.optimal_configuration cat ~base:Config.empty ~views:false w
  in
  Alcotest.(check int) "no views" 0 (List.length (Config.views inst.optimal))

(* --- transformations at configuration level ------------------------------ *)

let est _ = 1000.0

let test_transform_apply_merge () =
  let i1 = Index.on "r" [ "a" ] ~suffix:[ "b" ] in
  let i2 = Index.on "r" [ "a"; "d" ] in
  let cfg = Config.of_indexes [ i1; i2 ] in
  match T.Transform.apply ~estimate_rows:est cfg (Merge_indexes (i1, i2)) with
  | Some cfg' ->
    Alcotest.(check int) "one index left" 1 (List.length (Config.indexes cfg'))
  | None -> Alcotest.fail "merge should apply"

let test_transform_stale () =
  let i1 = Index.on "r" [ "a" ] in
  let cfg = Config.empty in
  Alcotest.(check bool) "stale removal refused" true
    (T.Transform.apply ~estimate_rows:est cfg (Remove_index i1) = None)

let test_enumerate_respects_protected () =
  let i1 = Index.on "r" [ "a" ] in
  let i2 = Index.on "r" [ "b" ] in
  let cfg = Config.of_indexes [ i1; i2 ] in
  let protected = Config.of_indexes [ i1 ] in
  let ts = T.Transform.enumerate ~protected cfg in
  List.iter
    (fun tr ->
      let removed = T.Transform.removed_indexes cfg tr in
      Alcotest.(check bool) "protected untouched" false
        (List.exists (Index.equal i1) removed))
    ts

let test_enumerate_counts () =
  let i1 = Index.on "r" [ "a" ] ~suffix:[ "b" ] in
  let i2 = Index.on "r" [ "a"; "cc" ] in
  let cfg = Config.of_indexes [ i1; i2 ] in
  let ts = T.Transform.enumerate cfg in
  (* 2 removals + prefixes + 2 merges + 1 split + up to 2 promotions *)
  Alcotest.(check bool) "several transformations" true (List.length ts >= 7)

let test_view_merge_transformation_promotes_indexes () =
  let spjg s =
    match Relax_sql.Parser.statement s with
    | Query.Select q -> q.body
    | _ -> assert false
  in
  let v1 = View.make (spjg "SELECT r.a, r.b FROM r WHERE r.a < 10") in
  let v2 = View.make (spjg "SELECT r.a, r.d FROM r WHERE r.a >= 900") in
  let a1 = Option.get (View.view_column_of_base v1 (c "r" "a")) in
  let iv1 = Index.make ~clustered:true ~keys:[ a1 ] ~suffix:Column_set.empty () in
  let cfg = Config.add_view Config.empty v1 ~rows:100.0 in
  let cfg = Config.add_index cfg iv1 in
  let cfg = Config.add_view cfg v2 ~rows:100.0 in
  let a2 = Option.get (View.view_column_of_base v2 (c "r" "a")) in
  let iv2 = Index.make ~clustered:true ~keys:[ a2 ] ~suffix:Column_set.empty () in
  let cfg = Config.add_index cfg iv2 in
  match T.Transform.apply ~estimate_rows:est cfg (Merge_views (v1, v2)) with
  | Some cfg' ->
    Alcotest.(check int) "one view" 1 (List.length (Config.views cfg'));
    let vm = List.hd (Config.views cfg') in
    let on_vm = Config.indexes_on cfg' (View.name vm) in
    Alcotest.(check bool) "indexes promoted" true (List.length on_vm >= 1);
    Alcotest.(check int) "exactly one clustered" 1
      (List.length (List.filter (fun (i : Index.t) -> i.clustered) on_vm))
  | None -> Alcotest.fail "view merge should apply"

(* --- cost bounds --------------------------------------------------------- *)

let bound_vs_true ~workload_s ~config ~tr =
  let cat = Lazy.force cat in
  let q = Fixtures.parse_select workload_s in
  let plan = O.Optimizer.optimize cat config q in
  let config' =
    Option.get (T.Transform.apply ~estimate_rows:est config tr)
  in
  let ctx : T.Cost_bound.context =
    {
      env' = O.Env.make cat config';
      old_env = O.Env.make cat config;
      removed_indexes = T.Transform.removed_indexes config tr;
      removed_views = T.Transform.removed_views tr;
      view_merge = None;
      cbv = (fun _ -> 0.0);
      expands = T.Transform.adds_structures tr;
    }
  in
  let bound = T.Cost_bound.query_bound ctx plan in
  let true_cost = (O.Optimizer.optimize cat config' q).cost in
  (bound, true_cost, plan.cost)

let test_bound_dominates_true_cost_prefix () =
  let i = Index.on "r" [ "a" ] ~suffix:[ "b"; "cc" ] in
  let p = Index.on "r" [ "a" ] in
  let bound, true_cost, _ =
    bound_vs_true
      ~workload_s:"SELECT r.a, r.b, r.cc FROM r WHERE r.a = 5"
      ~config:(Config.of_indexes [ i ])
      ~tr:(Prefix_index (i, p))
  in
  Alcotest.(check bool)
    (Printf.sprintf "bound %.2f >= true %.2f" bound true_cost)
    true
    (bound >= true_cost -. 1e-6)

let test_bound_dominates_true_cost_removal () =
  let i = Index.on "r" [ "a" ] ~suffix:[ "b" ] in
  let bound, true_cost, old_cost =
    bound_vs_true
      ~workload_s:"SELECT r.a, r.b FROM r WHERE r.a = 5"
      ~config:(Config.of_indexes [ i ])
      ~tr:(Remove_index i)
  in
  Alcotest.(check bool) "bound >= true" true (bound >= true_cost -. 1e-6);
  Alcotest.(check bool) "bound >= old" true (bound >= old_cost -. 1e-6)

let test_bound_merge_can_improve () =
  (* merging can make a query cheaper (wider covering index): the bound may
     go below the old cost but must stay above the re-optimized cost *)
  let i1 = Index.on "r" [ "a" ] ~suffix:[ "b" ] in
  let i2 = Index.on "r" [ "a" ] ~suffix:[ "e" ] in
  let bound, true_cost, _ =
    bound_vs_true
      ~workload_s:"SELECT r.a, r.b, r.e FROM r WHERE r.a = 5"
      ~config:(Config.of_indexes [ i1; i2 ])
      ~tr:(Merge_indexes (i1, i2))
  in
  Alcotest.(check bool) "bound >= true" true (bound >= true_cost -. 1e-6)

(* --- end-to-end tuning ---------------------------------------------------- *)

let small_workload =
  [
    "SELECT r.a, r.b FROM r WHERE r.a = 5";
    "SELECT r.b, r.cc FROM r WHERE r.b = 7 AND r.d < 10";
    "SELECT r.a, s.y FROM r, s WHERE r.sid = s.id AND r.a < 20";
    "SELECT r.d, SUM(r.a) FROM r GROUP BY r.d";
    "SELECT s.x, s.y FROM s WHERE s.x = 100";
  ]

let tune ?(mode = T.Tuner.Indexes_only) ?(budget = mb 50.0) ?(iters = 120) w =
  let cat = Lazy.force cat in
  let opts = T.Tuner.default_options ~mode ~space_budget:budget () in
  T.Tuner.tune cat (workload_of_strings w) { opts with max_iterations = iters }

let test_tune_fits_budget () =
  (* the budget must exceed the base-table heap footprint (~6 MB for the
     fixture catalog): table storage counts toward the constraint *)
  let budget = mb 8.0 in
  let r = tune ~budget small_workload in
  Alcotest.(check bool) "within budget" true (r.recommended_size <= budget);
  Alcotest.(check bool) "improves" true (r.improvement > 0.0)

let test_tune_unconstrained_returns_optimal () =
  let r = tune ~budget:infinity small_workload in
  Fixtures.check_float ~eps:1e-6 "recommended = optimal" r.optimal_cost
    r.recommended_cost

let test_tune_monotone_in_budget () =
  let r_small = tune ~budget:(mb 8.0) small_workload in
  let r_large = tune ~budget:(mb 30.0) small_workload in
  Alcotest.(check bool) "more space at least as good" true
    (r_large.recommended_cost <= r_small.recommended_cost +. 1e-6)

let test_tune_cost_between_bounds () =
  let r = tune ~budget:(mb 8.0) small_workload in
  Alcotest.(check bool) "cost >= lower bound" true
    (r.recommended_cost >= r.lower_bound -. 1e-6);
  Alcotest.(check bool) "cost <= initial" true
    (r.recommended_cost <= r.initial_cost +. 1e-6)

let test_tune_frontier_contains_valid_points () =
  let r = tune ~budget:(mb 8.0) small_workload in
  Alcotest.(check bool) "explored several configs" true
    (List.length r.frontier >= 2);
  List.iter
    (fun (s, c) ->
      Alcotest.(check bool) "positive size" true (s > 0.0);
      Alcotest.(check bool) "positive cost" true (c > 0.0))
    r.frontier

let test_tune_views_mode () =
  let r =
    tune ~mode:T.Tuner.Indexes_and_views ~budget:(mb 30.0)
      [
        "SELECT r.a, s.y FROM r, s WHERE r.sid = s.id AND r.a < 20";
        "SELECT r.d, SUM(r.a) FROM r GROUP BY r.d";
      ]
  in
  Alcotest.(check bool) "improves" true (r.improvement > 0.0);
  Alcotest.(check bool) "within budget" true (r.recommended_size <= mb 30.0)

let test_tune_protected_base_preserved () =
  let cat = Lazy.force cat in
  let base = Config.of_indexes [ Index.on "r" ~clustered:true [ "id" ] ] in
  let opts =
    {
      (T.Tuner.default_options ~mode:T.Tuner.Indexes_only ~space_budget:(mb 9.0) ())
      with
      base_config = base;
      max_iterations = 100;
    }
  in
  let r = T.Tuner.tune cat (workload_of_strings small_workload) opts in
  Alcotest.(check bool) "base index kept" true
    (Config.mem_index r.recommended (Index.on "r" ~clustered:true [ "id" ]))

(* --- updates (§3.6) ------------------------------------------------------ *)

let update_workload =
  [
    "SELECT r.a, r.b FROM r WHERE r.a = 5";
    "UPDATE r SET b = b + 1 WHERE a < 50";
    "UPDATE r SET cc = cc + 1 WHERE d < 5";
    "SELECT r.d, SUM(r.a) FROM r GROUP BY r.d";
  ]

let test_tune_with_updates () =
  let r = tune ~budget:(mb 20.0) update_workload in
  Alcotest.(check bool) "within budget" true (r.recommended_size <= mb 20.0);
  Alcotest.(check bool) "not worse than initial" true
    (r.recommended_cost <= r.initial_cost +. 1e-6)

let test_update_lower_bound_not_tight () =
  let r = tune ~budget:(mb 20.0) update_workload in
  (* with updates the bound is generally strictly below any achievable
     configuration cost *)
  Alcotest.(check bool) "lower bound <= recommended" true
    (r.lower_bound <= r.recommended_cost +. 1e-6)

let test_updates_drop_expensive_indexes () =
  (* an index on a heavily-updated column should not survive when its only
     benefit is tiny *)
  let cat = Lazy.force cat in
  let w =
    workload_of_strings
      [
        "UPDATE r SET b = b + 1 WHERE a < 900";
        "UPDATE r SET b = b + 2 WHERE a < 900";
        "UPDATE r SET b = b + 3 WHERE a < 900";
      ]
  in
  let opts =
    T.Tuner.default_options ~mode:T.Tuner.Indexes_only ~space_budget:infinity ()
  in
  let r = T.Tuner.tune cat w { opts with max_iterations = 150 } in
  let has_b_index =
    List.exists
      (fun (i : Index.t) -> Column_set.mem (c "r" "b") (Index.columns i))
      (Config.indexes r.recommended)
  in
  Alcotest.(check bool) "no index containing b" false has_b_index

(* --- §3.5 variants -------------------------------------------------------- *)

let tune_with ?(budget = mb 9.0) patch w =
  let cat = Lazy.force cat in
  let opts =
    T.Tuner.default_options ~mode:T.Tuner.Indexes_only ~space_budget:budget ()
  in
  T.Tuner.tune cat (workload_of_strings w)
    (patch { opts with max_iterations = 80 })

let test_variant_multi_transform () =
  let r = tune_with (fun o -> { o with transforms_per_iteration = 3 }) small_workload in
  Alcotest.(check bool) "fits" true (r.recommended_size <= mb 9.0);
  Alcotest.(check bool) "improves" true (r.improvement > 0.0)

let test_variant_shrink () =
  let r = tune_with (fun o -> { o with shrink_configurations = true }) small_workload in
  Alcotest.(check bool) "fits" true (r.recommended_size <= mb 9.0);
  Alcotest.(check bool) "improves" true (r.improvement > 0.0)

let test_variant_random_deterministic () =
  let run () =
    tune_with (fun o -> { o with selection = T.Search.Random 7 }) small_workload
  in
  let a = run () and b = run () in
  Fixtures.check_float "same cost" a.recommended_cost b.recommended_cost;
  Alcotest.(check string) "same configuration"
    (Config.fingerprint a.recommended)
    (Config.fingerprint b.recommended)

let test_variant_selections_all_valid () =
  List.iter
    (fun sel ->
      let r = tune_with (fun o -> { o with selection = sel }) small_workload in
      Alcotest.(check bool) "fits" true (r.recommended_size <= mb 9.0))
    [ T.Search.Penalty; T.Search.Cost_greedy; T.Search.Space_greedy;
      T.Search.Random 3 ]

(* --- robustness ------------------------------------------------------------ *)

let test_empty_workload () =
  let cat = Lazy.force cat in
  let r =
    T.Tuner.tune cat []
      (T.Tuner.default_options ~mode:T.Tuner.Indexes_only ~space_budget:(mb 50.0) ())
  in
  Alcotest.(check int) "no structures" 0 (Config.cardinal r.recommended);
  Fixtures.check_float "zero cost" 0.0 r.recommended_cost

let test_time_budget_respected () =
  let cat = Lazy.force cat in
  let opts =
    {
      (T.Tuner.default_options ~mode:T.Tuner.Indexes_only ~space_budget:(mb 8.0) ())
      with
      max_iterations = 1_000_000;
      time_budget_s = Some 0.5;
    }
  in
  let t0 = Unix.gettimeofday () in
  let _ = T.Tuner.tune cat (workload_of_strings small_workload) opts in
  let elapsed = Unix.gettimeofday () -. t0 in
  (* instrumentation + one search pass dominate; the loop itself must stop *)
  Alcotest.(check bool)
    (Printf.sprintf "stopped in %.1fs" elapsed)
    true (elapsed < 10.0)

let test_duplicate_statements_ok () =
  let cat = Lazy.force cat in
  let e =
    Relax_sql.Query.entry ~weight:2.0 "dup"
      (Relax_sql.Parser.statement "SELECT r.a FROM r WHERE r.a = 1")
  in
  let r =
    T.Tuner.tune cat [ e; { e with qid = "dup2" } ]
      (T.Tuner.default_options ~mode:T.Tuner.Indexes_only ~space_budget:infinity ())
  in
  Alcotest.(check bool) "improves" true (r.improvement > 0.0)

(* --- report helpers ------------------------------------------------------ *)

let test_per_query_report () =
  let r = tune ~budget:(mb 9.0) small_workload in
  Alcotest.(check int) "one row per statement" (List.length small_workload)
    (List.length r.per_query);
  (* total improvement must be consistent with the per-query rows *)
  let total_after = List.fold_left (fun a (_, _, x) -> a +. x) 0.0 r.per_query in
  Fixtures.check_float ~eps:1e-3 "sums match" r.recommended_cost total_after;
  (* a pure-select workload under a feasible budget never regresses *)
  Alcotest.(check (list string)) "no regressions" []
    (List.map (fun (q, _, _) -> q) (T.Report.regressions r))

let test_pareto_frontier () =
  let pts = [ (10.0, 5.0); (20.0, 3.0); (15.0, 7.0); (30.0, 2.0) ] in
  let f = T.Report.pareto_frontier pts in
  Alcotest.(check int) "three non-dominated" 3 (List.length f);
  Alcotest.(check bool) "dominated point removed" false
    (List.mem (15.0, 7.0) f)

(* --- properties ----------------------------------------------------------- *)

let prop_search_respects_budget =
  QCheck.Test.make ~name:"recommended configuration fits the budget" ~count:8
    (QCheck.make (QCheck.Gen.int_range 8 30))
    (fun budget_mb ->
      let r = tune ~budget:(mb (float_of_int budget_mb)) ~iters:60 small_workload in
      r.recommended_size <= mb (float_of_int budget_mb) +. 1.0)

let suite =
  [
    Alcotest.test_case "optimal beats scan" `Quick test_optimal_beats_scan;
    Alcotest.test_case "optimal covering index (Lemmas 1-2)" `Quick
      test_optimal_covering_single_request;
    Alcotest.test_case "optimal order index" `Quick test_optimal_order_index;
    Alcotest.test_case "optimal view for join" `Quick test_optimal_view_for_join;
    Alcotest.test_case "request stats" `Quick test_request_stats_counted;
    Alcotest.test_case "indexes-only mode" `Quick test_indexes_only_mode;
    Alcotest.test_case "transform: apply merge" `Quick test_transform_apply_merge;
    Alcotest.test_case "transform: stale refused" `Quick test_transform_stale;
    Alcotest.test_case "transform: protected" `Quick
      test_enumerate_respects_protected;
    Alcotest.test_case "transform: enumeration" `Quick test_enumerate_counts;
    Alcotest.test_case "transform: view merge promotes indexes" `Quick
      test_view_merge_transformation_promotes_indexes;
    Alcotest.test_case "bound >= true (prefix)" `Quick
      test_bound_dominates_true_cost_prefix;
    Alcotest.test_case "bound >= true (removal)" `Quick
      test_bound_dominates_true_cost_removal;
    Alcotest.test_case "bound >= true (merge)" `Quick test_bound_merge_can_improve;
    Alcotest.test_case "tune fits budget" `Quick test_tune_fits_budget;
    Alcotest.test_case "tune unconstrained = optimal" `Quick
      test_tune_unconstrained_returns_optimal;
    Alcotest.test_case "tune monotone in budget" `Quick test_tune_monotone_in_budget;
    Alcotest.test_case "tune between bounds" `Quick test_tune_cost_between_bounds;
    Alcotest.test_case "tune frontier" `Quick test_tune_frontier_contains_valid_points;
    Alcotest.test_case "tune with views" `Quick test_tune_views_mode;
    Alcotest.test_case "tune preserves base" `Quick test_tune_protected_base_preserved;
    Alcotest.test_case "tune with updates" `Quick test_tune_with_updates;
    Alcotest.test_case "update lower bound" `Quick test_update_lower_bound_not_tight;
    Alcotest.test_case "updates drop expensive indexes" `Quick
      test_updates_drop_expensive_indexes;
    Alcotest.test_case "variant: multi-transform" `Quick test_variant_multi_transform;
    Alcotest.test_case "variant: shrink" `Quick test_variant_shrink;
    Alcotest.test_case "variant: random deterministic" `Quick
      test_variant_random_deterministic;
    Alcotest.test_case "variant: all selections valid" `Quick
      test_variant_selections_all_valid;
    Alcotest.test_case "per-query report" `Quick test_per_query_report;
    Alcotest.test_case "empty workload" `Quick test_empty_workload;
    Alcotest.test_case "time budget" `Quick test_time_budget_respected;
    Alcotest.test_case "duplicate statements" `Quick test_duplicate_statements_ok;
    Alcotest.test_case "pareto frontier" `Quick test_pareto_frontier;
    QCheck_alcotest.to_alcotest prop_search_respects_budget;
  ]
