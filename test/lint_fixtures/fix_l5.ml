(* L5 fixture: every nondeterminism source the rule knows about. *)

let seed () = Random.self_init ()
let stamp () = Unix.gettimeofday ()
let total (h : (string, int) Hashtbl.t) = Hashtbl.fold (fun _ v acc -> v + acc) h 0
