(* L1 fixture: module-level mutable state in a module that submits task
   closures to the worker pool (the Pool.map reference below seeds the
   reachability closure with this very module). *)

let cache = Hashtbl.create 16

let lookup_all pool keys =
  Relax_parallel.Pool.map pool
    (fun (k : string) -> Option.value ~default:0 (Hashtbl.find_opt cache k))
    keys
