(* L8 fixture: a snapshot published outside the lock, the correct
   publish inside it, and a nested acquisition. *)

type sh = {
  lock : Mutex.t;
  table : (string, int) Hashtbl.t;
  snapshot : int Atomic.t;
}

let publish_bad sh v = Atomic.set sh.snapshot v

let publish_good sh v =
  Mutex.protect sh.lock (fun () ->
      Hashtbl.replace sh.table "k" v;
      Atomic.set sh.snapshot v)

let nested outer inner =
  Mutex.protect outer (fun () -> Mutex.protect inner (fun () -> ()))
