(* L4 fixture: reading the ambient recorder slot outside lib/obs. *)

let recorder () = Relax_obs.Recorder.ambient ()
