(* Effect-inference fixture: nodes whose solved signatures the
   [suite_effects] dump assertions pin down exactly. *)

let pure_add a b = a + b

let one_hop_clock () = Fix_hop.tick ()

let guarded_bump lock counter = Mutex.protect lock (fun () -> incr counter)

let escape xs =
  let seen = ref 0 in
  List.iter (fun x -> seen := !seen + x) xs;
  !seen
