(* L6 fixture: task closures that smuggle effects into the worker
   pool — a captured local mutable, and a wall-clock read reached
   through two call hops in another module. *)

let total pool xs =
  let acc = ref 0 in
  let sums =
    Relax_parallel.Pool.map pool (fun x -> acc := !acc + x; x) xs
  in
  ignore sums;
  !acc

let stamped pool xs =
  Relax_parallel.Pool.map pool
    (fun x -> float_of_int x +. Fix_hop.tick ())
    xs
