(* W0 fixture: this waiver excuses nothing and must be flagged. *)

(* relax-lint: allow L5 stale on purpose: the clock read it excused is gone *)
let pure x = x + 1
