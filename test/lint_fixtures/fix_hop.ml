(* Effect-inference fixture: the wall-clock read is buried one call
   away, so callers of [tick] inherit reads-clock through a hop. *)

let raw_now () = Unix.gettimeofday ()
let tick () = raw_now () +. 1.0
