(* Waived fixture: the finding below is real but suppressed inline. *)

(* relax-lint: allow L5 fixture exercising the waiver mechanism itself *)
let stamp () = Unix.gettimeofday ()
