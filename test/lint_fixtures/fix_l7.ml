(* L7 fixture: a costing entry point (the fixture engine config names
   this module) reaching a clock read two call hops away. *)

let cost pages = float_of_int pages *. Fix_hop.tick ()
