(* L3 fixture: a raw float comparison and an int-truncating division in
   what the test config declares to be costing / page-arithmetic scope. *)

let same_cost (a : float) (b : float) = a = b
let pages (bytes : int) = bytes / 4096
