(* L2 fixture: a silent catch-all exception handler. *)

let swallow f = try f () with _ -> 0
