(* Clean fixture: float arithmetic and rounding done the sanctioned way —
   no raw comparisons, no truncating division, no ambient access. *)

let combine a b = a +. b
let pages bytes = Float.to_int (Float.ceil (bytes /. 4096.0))
