(** Measured execution: walk an optimizer plan against real rows, computing
    exact intermediate cardinalities and page accesses.

    The same cost constants as the optimizer's model are used, so the
    difference between an estimated plan cost and its measured cost isolates
    exactly what validation is after: cardinality-estimation error and
    page-locality effects, not unit mismatches. *)

open Relax_sql.Types
module O = Relax_optimizer
module P = O.Cost_params
module Predicate = Relax_sql.Predicate
module Size_model = Relax_physical.Size_model
module Index = Relax_physical.Index

type measured = {
  rows : Eval.rowset;  (** the exact result of the sub-plan *)
  cost : float;  (** measured cost in the optimizer's units *)
}

let heap_rows_per_page env rel =
  let width = Float.max 1.0 (O.Env.row_width env rel) in
  (* floor, matching the size model: a partial row does not fit on a page *)
  Float.max 1.0
    (Float.floor
       ((Size_model.default_params.page_size -. Size_model.default_params.page_overhead)
        *. Size_model.default_params.fill_factor /. width))

(* distinct heap pages touched when fetching these row indices *)
let distinct_pages env rel indices =
  let per = int_of_float (heap_rows_per_page env rel) in
  let pages = Hashtbl.create 64 in
  List.iter (fun i -> Hashtbl.replace pages (i / max 1 per) ()) indices;
  float_of_int (Hashtbl.length pages)

let index_geometry env (i : Index.t) =
  let rel = Index.owner i in
  let rows = O.Env.rows env rel in
  let leaf =
    Size_model.leaf_pages ~rows ~width_of:(O.Env.width_of env)
      ~row_width:(O.Env.row_width env rel) i
  in
  let height =
    float_of_int
      (Size_model.height ~rows ~width_of:(O.Env.width_of env)
         ~row_width:(O.Env.row_width env rel) i)
  in
  (rows, leaf, height)

(* measured cost of one index usage given the TRUE matched fraction *)
let usage_cost env (u : O.Plan.index_usage) ~true_matched =
  let rows, leaf, height = index_geometry env u.index in
  match u.kind with
  | Scan -> (leaf *. P.seq_page) +. (rows *. P.cpu_tuple)
  | Seek _ ->
    let frac = if rows <= 0.0 then 0.0 else true_matched /. rows in
    (height *. P.rand_page)
    +. (Float.max 1.0 (Float.ceil (frac *. leaf)) *. P.seq_page)
    +. (true_matched *. P.cpu_tuple)

(* rows matching only the constraints a seek consumed *)
let seek_matched (rs : Eval.rowset) (request : O.Request.t)
    (u : O.Plan.index_usage) =
  match u.kind with
  | Scan -> float_of_int (Eval.cardinality rs)
  | Seek { seek_cols; _ } ->
    let consumed =
      List.filter
        (fun (r : Predicate.range) ->
          List.exists (Column.equal r.rcol) seek_cols)
        request.ranges
    in
    float_of_int (Eval.count_matching rs ~ranges:consumed ~others:[])

(** Measure a single-relation access exactly.  [extra_filter] restricts the
    output further (used when a caller pushes parameters). *)
let access db env (info : O.Plan.access_info) : measured =
  let r = info.request in
  let rel = Data.relation db r.rel in
  let rs = Eval.of_relation rel in
  let n = float_of_int (Eval.cardinality rs) in
  let matched_idx = Eval.matching_indices rs ~ranges:r.ranges ~others:r.others in
  let matched = float_of_int (List.length matched_idx) in
  let out = Eval.filter rs ~ranges:r.ranges ~others:r.others in
  (* a view access stands for a sub-join over base tables: upstream plan
     nodes reference the base columns, so alias each plain view output
     with the base column it exposes *)
  let out =
    match info.via_view with
    | None -> out
    | Some v ->
      let module View = Relax_physical.View in
      let aliases =
        List.filter_map
          (fun (_, it) ->
            match it with
            | Relax_sql.Query.Item_col base ->
              Some (Eval.index_of out (View.column_of_item v it), base)
            | Relax_sql.Query.Item_agg _ -> None)
          (View.outputs v)
      in
      {
        Eval.schema =
          Array.append out.schema
            (Array.of_list (List.map snd aliases));
        rows =
          Array.map
            (fun row ->
              Array.append row
                (Array.of_list (List.map (fun (i, _) -> row.(i)) aliases)))
            out.rows;
      }
  in
  let covered avail = Column_set.subset r.cols avail in
  let base_cost =
    match info.usages with
    | [] ->
      (* heap scan *)
      (O.Env.table_pages env r.rel *. P.seq_page) +. (n *. P.cpu_tuple)
    | usages ->
      List.fold_left
        (fun acc (u : O.Plan.index_usage) ->
          acc +. usage_cost env u ~true_matched:(seek_matched rs r u))
        0.0 usages
  in
  let lookup_cost =
    match info.usages with
    | [] -> 0.0
    | [ u ] when u.index.clustered -> 0.0
    | u :: _ ->
      let avail =
        if u.index.clustered then
          Column_set.of_list (Array.to_list rel.schema)
        else Index.columns u.index
      in
      if covered avail then 0.0
      else begin
        (* TRUE page locality: distinct heap pages of the matched rids *)
        let pages = distinct_pages env r.rel matched_idx in
        (pages *. P.rand_page) +. (matched *. P.cpu_tuple)
      end
  in
  let filter_cost = matched *. P.cpu_eval in
  let sort_cost =
    if info.sorted then
      P.sort_cost ~rows:matched
        ~pages:(Float.max 1.0 (matched /. heap_rows_per_page env r.rel))
    else 0.0
  in
  { rows = out; cost = base_cost +. lookup_cost +. filter_cost +. sort_cost }

(* inner side of an index nested-loop join: candidates after non-param
   predicates; the join itself accounts the per-execution seeks *)
let nlj_inner db (info : O.Plan.access_info) : Eval.rowset =
  let r = info.request in
  let rel = Data.relation db r.rel in
  Eval.filter (Eval.of_relation rel) ~ranges:r.ranges ~others:r.others

exception Unmeasurable of string

(** Measure a whole plan: exact result rows plus measured cost. *)
let rec plan db env (p : O.Plan.t) : measured =
  match p.node with
  | Access { info; _ } -> access db env info
  | Filter { input; ranges; others } ->
    let m = plan db env input in
    let rows = Eval.filter m.rows ~ranges ~others in
    {
      rows;
      cost = m.cost +. (float_of_int (Eval.cardinality m.rows) *. P.cpu_eval);
    }
  | Sort { input; _ } ->
    let m = plan db env input in
    let n = float_of_int (Eval.cardinality m.rows) in
    { m with cost = m.cost +. P.sort_cost ~rows:n ~pages:(Float.max 1.0 (n /. 100.0)) }
  | Hash_join { build; probe; joins } ->
    let mb = plan db env build and mp = plan db env probe in
    let rows = Eval.hash_join mb.rows mp.rows joins in
    {
      rows;
      cost =
        mb.cost +. mp.cost
        +. (float_of_int (Eval.cardinality mb.rows) *. P.cpu_hash)
        +. (float_of_int (Eval.cardinality mp.rows) *. P.cpu_hash);
    }
  | Merge_join { left; right; joins } ->
    let ml = plan db env left and mr = plan db env right in
    let rows = Eval.hash_join ml.rows mr.rows joins in
    {
      rows;
      cost =
        ml.cost +. mr.cost
        +. ((float_of_int (Eval.cardinality ml.rows)
            +. float_of_int (Eval.cardinality mr.rows))
           *. P.cpu_tuple);
    }
  | Nl_join { outer; inner; joins } -> (
    let mo = plan db env outer in
    match inner.node with
    | Access { info; _ } ->
      let candidates = nlj_inner db info in
      let rows = Eval.hash_join mo.rows candidates joins in
      let executions = float_of_int (Eval.cardinality mo.rows) in
      let total_matched = float_of_int (Eval.cardinality rows) in
      let avg = if executions > 0.0 then total_matched /. executions else 0.0 in
      let per_exec =
        match info.usages with
        | { index; _ } :: _ ->
          let irows, leaf, height = index_geometry env index in
          let frac = if irows > 0.0 then avg /. irows else 0.0 in
          (height *. P.rand_page)
          +. (Float.max 1.0 (Float.ceil (frac *. leaf)) *. P.seq_page)
          +. (avg *. P.cpu_tuple)
          +.
          (* lookup when the index does not cover *)
          (let avail =
             if index.clustered then
               Column_set.of_list
                 (Array.to_list (Data.relation db info.rel).schema)
             else Index.columns index
           in
           if Column_set.subset info.request.cols avail then 0.0
           else avg *. P.rand_page)
        | [] ->
          (* scanning the inner per outer row *)
          (O.Env.table_pages env info.rel *. P.seq_page)
          +. (float_of_int (Eval.cardinality candidates) *. P.cpu_tuple)
      in
      {
        rows;
        cost = mo.cost +. (executions *. per_exec) +. (total_matched *. P.cpu_tuple);
      }
    | _ -> raise (Unmeasurable "nested-loop inner is not an access"))
  | Group { input; keys; aggs; streaming } ->
    let m = plan db env input in
    let rows = Eval.group_by m.rows ~keys ~aggs in
    let n_in = float_of_int (Eval.cardinality m.rows) in
    let n_out = float_of_int (Eval.cardinality rows) in
    let cost =
      if streaming then m.cost +. (n_in *. P.cpu_agg)
      else m.cost +. (n_in *. P.cpu_hash) +. (n_out *. P.cpu_agg)
    in
    { rows; cost }
  | Seq_scan _ | Index_scan _ | Index_seek _ | Rid_intersect _ | Rid_union _
  | Rid_lookup _ ->
    raise (Unmeasurable "bare physical node outside an access wrapper")
