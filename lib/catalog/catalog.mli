(** The system catalog: table definitions plus per-column statistics.

    Statistics (row counts, histograms, widths, distinct counts) are all the
    optimizer ever reads — there are no stored rows, matching how what-if
    tuning tools operate.  Materialized views are simulated by registering a
    {e derived table} whose statistics are synthesized from base tables
    ({!add_derived_table}): the paper's what-if API. *)

open Relax_sql.Types

(** A column declaration: name, type, and the value distribution its
    statistics are synthesized from. *)
type column_def = {
  cname : string;
  ctype : data_type;
  dist : Distribution.t;
}

val column : ?dist:Distribution.t -> string -> data_type -> column_def
(** [dist] defaults to {!Distribution.default_for_type}. *)

type table_def = {
  tname : string;
  rows : int;
  cols : column_def list;
}

val table : string -> rows:int -> column_def list -> table_def

(** Statistics for one column, as exposed to the optimizer. *)
type col_stats = {
  stype : data_type;
  width : float;  (** average stored width in bytes *)
  distinct : float;
  min_v : float;
  max_v : float;
  hist : Histogram.t;
}

type t

val create : ?seed:int -> table_def list -> t
(** Build a catalog, constructing statistics for every column.
    @raise Invalid_argument on duplicate table names. *)

(** {1 Lookup} *)

val table_names : t -> string list
val find_table : t -> string -> table_def option
val table_exn : t -> string -> table_def
val mem_table : t -> string -> bool
val rows : t -> string -> float
val columns_of : t -> string -> column list
val col_stats : t -> column -> col_stats
val col_stats_opt : t -> column -> col_stats option
val col_width : t -> column -> float
val col_distinct : t -> column -> float
val col_type : t -> column -> data_type
val row_width : t -> string -> float

(** {1 Derived tables (simulated views)} *)

val add_derived_table :
  t -> name:string -> rows:float -> cols:(string * col_stats) list -> t
(** Register a derived table with explicit statistics; returns the extended
    catalog (the original is unchanged for membership).  Statistics of a
    derived table registered once are memoized: re-adding the same name is
    O(1) and may pass [cols = []]. *)

val known_derived : t -> string -> bool
(** Has this derived table been registered before? *)

val remove_table : t -> string -> t

(** {1 Identity} *)

val fingerprint : t -> string
(** A stable hex digest of the base schema and its statistics inputs
    (table names, row counts, column definitions, statistics seed).
    Derived tables — simulated views, i.e. configuration state — are
    excluded.  Catalogs with equal fingerprints synthesize identical
    statistics, so persisted what-if costs keyed by this fingerprint are
    valid across processes. *)

(** {1 Printing} *)

val pp_table : Format.formatter -> table_def -> unit
val pp : Format.formatter -> t -> unit
