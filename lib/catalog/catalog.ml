(** The system catalog: table definitions plus per-column statistics.

    Statistics (row counts, histograms, widths, distinct counts) are all the
    optimizer ever reads — there are no stored rows, matching how what-if
    tuning tools operate.  Materialized views are "simulated" by adding a
    derived table whose statistics are synthesized from the base tables
    ({!add_derived_table}), which is exactly the what-if API of the paper. *)

open Relax_sql.Types

module String_map = Map.Make (String)

type column_def = {
  cname : string;
  ctype : data_type;
  dist : Distribution.t;
}

let column ?dist cname ctype =
  let dist =
    match dist with Some d -> d | None -> Distribution.default_for_type ctype
  in
  { cname; ctype; dist }

type table_def = {
  tname : string;
  rows : int;
  cols : column_def list;
}

let table tname ~rows cols = { tname; rows; cols }

(** Statistics for one column, as exposed to the optimizer. *)
type col_stats = {
  stype : data_type;
  width : float;  (** average stored width in bytes *)
  distinct : float;
  min_v : float;
  max_v : float;
  hist : Histogram.t;
}

type t = {
  tables : table_def String_map.t;
  stats : (string * string, col_stats) Hashtbl.t;
  derived_memo : (string, table_def) Hashtbl.t;
      (** derived tables already registered once: their statistics live in
          [stats] and need not be rebuilt when the same view is simulated
          again under another configuration *)
  seed : int;
}

let stats_of_column ~seed ~rows (c : column_def) =
  let hist = Histogram.build ~seed ~rows c.dist in
  let lo, hi = Distribution.support c.dist ~rows in
  {
    stype = c.ctype;
    width = width_of_type c.ctype;
    distinct = float_of_int (Distribution.distinct c.dist ~rows);
    min_v = lo;
    max_v = hi;
    hist;
  }

(** Build a catalog, constructing statistics for every column. *)
let create ?(seed = 42) (tables : table_def list) : t =
  let map =
    List.fold_left
      (fun acc t ->
        if String_map.mem t.tname acc then
          invalid_arg ("Catalog.create: duplicate table " ^ t.tname)
        else String_map.add t.tname t acc)
      String_map.empty tables
  in
  let stats = Hashtbl.create 64 in
  List.iter
    (fun t ->
      List.iteri
        (fun i c ->
          let s = stats_of_column ~seed:(seed + Hashtbl.hash (t.tname, i)) ~rows:t.rows c in
          Hashtbl.replace stats (t.tname, c.cname) s)
        t.cols)
    tables;
  { tables = map; stats; derived_memo = Hashtbl.create 32; seed }

let table_names t = String_map.fold (fun k _ acc -> k :: acc) t.tables [] |> List.rev

let find_table t name = String_map.find_opt name t.tables

let table_exn t name =
  match find_table t name with
  | Some td -> td
  | None -> invalid_arg ("Catalog: unknown table " ^ name)

let rows t name = float_of_int (table_exn t name).rows

let columns_of t name =
  List.map (fun c -> Relax_sql.Types.Column.make name c.cname) (table_exn t name).cols

let mem_table t name = String_map.mem name t.tables

let col_stats t (c : column) : col_stats =
  match Hashtbl.find_opt t.stats (c.tbl, c.col) with
  | Some s -> s
  | None ->
    invalid_arg
      (Printf.sprintf "Catalog: no statistics for %s.%s" c.tbl c.col)

let col_stats_opt t (c : column) = Hashtbl.find_opt t.stats (c.tbl, c.col)

let col_width t c = (col_stats t c).width
let col_distinct t c = (col_stats t c).distinct
let col_type t c = (col_stats t c).stype

(** Total width of a row of table [name]. *)
let row_width t name =
  List.fold_left
    (fun acc (c : column_def) ->
      acc +. (col_stats t (Column.make name c.cname)).width)
    0.0 (table_exn t name).cols

(** Register a derived table (a simulated materialized view) with explicit
    statistics; returns the extended catalog.  The original catalog is not
    mutated for table membership, but statistics share the underlying
    hashtable keyed by (table, column), which is safe because derived table
    names are unique per view. *)
let add_derived_table t ~name ~rows ~(cols : (string * col_stats) list) : t =
  match Hashtbl.find_opt t.derived_memo name with
  | Some td -> { t with tables = String_map.add name td t.tables }
  | None ->
    let cdefs =
      List.map
        (fun (cname, (s : col_stats)) ->
          { cname; ctype = s.stype; dist = Distribution.Uniform (s.min_v, s.max_v) })
        cols
    in
    let td = { tname = name; rows = max 1 (int_of_float rows); cols = cdefs } in
    List.iter (fun (cname, s) -> Hashtbl.replace t.stats (name, cname) s) cols;
    Hashtbl.replace t.derived_memo name td;
    { t with tables = String_map.add name td t.tables }

(** Has this derived table been registered before?  If so its statistics are
    already available and {!add_derived_table} is O(1). *)
let known_derived t name = Hashtbl.mem t.derived_memo name

(** Remove a derived table (when a simulated view leaves the configuration). *)
let remove_table t name =
  (match find_table t name with
  | Some td ->
    List.iter (fun c -> Hashtbl.remove t.stats (name, c.cname)) td.cols
  | None -> ());
  { t with tables = String_map.remove name t.tables }

(** A stable digest of the base schema and its statistics inputs: table
    names, row counts, column names/types/distributions and the
    statistics seed.  Derived tables (simulated views) are excluded —
    they are configuration state, not schema.  Two catalogs with equal
    fingerprints synthesize identical statistics, so what-if costs
    computed against one are valid against the other: the key the
    persistent what-if cache is guarded by. *)
let fingerprint t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "seed=%d;" t.seed);
  String_map.iter
    (fun name (td : table_def) ->
      if not (Hashtbl.mem t.derived_memo name) then begin
        Buffer.add_string buf (Printf.sprintf "%s=%d[" name td.rows);
        List.iter
          (fun (c : column_def) ->
            Buffer.add_string buf
              (Fmt.str "%s:%a:%a;" c.cname pp_data_type c.ctype
                 Distribution.pp c.dist))
          td.cols;
        Buffer.add_string buf "]"
      end)
    t.tables;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let pp_table ppf (td : table_def) =
  Fmt.pf ppf "@[<v2>%s (%d rows):@," td.tname td.rows;
  List.iter
    (fun c -> Fmt.pf ppf "%s %a %a@," c.cname pp_data_type c.ctype Distribution.pp c.dist)
    td.cols;
  Fmt.pf ppf "@]"

let pp ppf t =
  String_map.iter (fun _ td -> Fmt.pf ppf "%a@." pp_table td) t.tables
