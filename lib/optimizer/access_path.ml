(** Single-relation access-path selection — the optimizer's unique entry
    point for physical index strategies (§2, Figure 2).

    Given a request [(S, N, O, A)] and the indexes available in the current
    configuration, the generated plans instantiate the paper's template
    tree: index seeks or scans at the leaves, binary rid intersections, an
    optional rid lookup for missing columns, an optional filter for
    non-sargable predicates, and an optional sort to enforce order
    (Figure 1 shows three instances).  The cheapest alternative wins. *)

open Relax_sql.Types
module Index = Relax_physical.Index
module Size_model = Relax_physical.Size_model
module Predicate = Relax_sql.Predicate
module Expr = Relax_sql.Expr
module P = Cost_params

(* ------------------------------------------------------------------ *)
(* plan-construction helpers                                           *)
(* ------------------------------------------------------------------ *)

let width_of_cols env cols =
  Column_set.fold (fun c acc -> acc +. Env.width_of env c) cols 8.0

let pages_of env ~rows ~cols =
  Float.max 1.0 (rows *. width_of_cols env cols /. Size_model.default_params.page_size)

(** Direction-insensitive prefix test: the delivered order satisfies the
    required one if required columns are a prefix of delivered columns. *)
let order_satisfied ~delivered ~required =
  required = []
  ||
  let rec go d r =
    match (d, r) with
    | _, [] -> true
    | [], _ -> false
    | (dc, _) :: d', (rc, _) :: r' -> Column.equal dc rc && go d' r'
  in
  go delivered required

let mk node ~rows ~cost ~order ~cols : Plan.t =
  { node; rows; cost; out_order = order; out_cols = cols }

let add_filter env (plan : Plan.t) ~ranges ~param ~others : Plan.t =
  if ranges = [] && param = [] && others = [] then plan
  else begin
    let sel =
      Selectivity.local env ~ranges ~others
      *. List.fold_left (fun acc c -> acc *. Selectivity.param_eq env c) 1.0 param
    in
    let rows = Float.max 1.0 (plan.rows *. sel) in
    let cost = plan.cost +. (plan.rows *. P.cpu_eval) in
    mk (Filter { input = plan; ranges; others }) ~rows ~cost
      ~order:plan.out_order ~cols:plan.out_cols
  end

let add_sort env (plan : Plan.t) ~required : Plan.t =
  if order_satisfied ~delivered:plan.out_order ~required then plan
  else begin
    let pages = pages_of env ~rows:plan.rows ~cols:plan.out_cols in
    let cost = plan.cost +. P.sort_cost ~rows:plan.rows ~pages in
    mk (Sort { input = plan; order = required }) ~rows:plan.rows ~cost
      ~order:required ~cols:plan.out_cols
  end

let add_lookup env (plan : Plan.t) ~rel : Plan.t =
  let table_pages = Env.table_pages env rel in
  let clustered = Env.clustered_on env rel <> None in
  let cost =
    plan.cost +. P.rid_lookup_cost ~rows:plan.rows ~table_pages ~clustered
  in
  let cols =
    Column_set.of_list (Relax_catalog.Catalog.columns_of (env : Env.t).cat rel)
  in
  mk (Rid_lookup { input = plan; rel }) ~rows:plan.rows ~cost ~order:[]
    ~cols

(* ------------------------------------------------------------------ *)
(* seek-prefix analysis                                                *)
(* ------------------------------------------------------------------ *)

type seek = {
  seek_sel : float;
  seek_cols : column list;  (** key prefix actually sought *)
  used_ranges : Predicate.range list;
  used_params : column list;
}

(** Longest usable key prefix for a seek: equality constraints extend the
    prefix, one trailing non-equality range closes it. *)
let seek_of env (r : Request.t) (i : Index.t) : seek option =
  let find_range c =
    List.find_opt (fun (rg : Predicate.range) -> Column.equal rg.rcol c) r.ranges
  in
  let rec go keys acc =
    match keys with
    | [] -> acc
    | k :: rest -> (
      match find_range k with
      | Some rg when Predicate.is_equality rg ->
        go rest
          {
            acc with
            seek_sel = acc.seek_sel *. Selectivity.range env rg;
            seek_cols = k :: acc.seek_cols;
            used_ranges = rg :: acc.used_ranges;
          }
      | Some rg ->
        (* a non-equality range closes the prefix *)
        {
          acc with
          seek_sel = acc.seek_sel *. Selectivity.range env rg;
          seek_cols = k :: acc.seek_cols;
          used_ranges = rg :: acc.used_ranges;
        }
      | None ->
        if List.exists (Column.equal k) r.param_eq then
          go rest
            {
              acc with
              seek_sel = acc.seek_sel *. Selectivity.param_eq env k;
              seek_cols = k :: acc.seek_cols;
              used_params = k :: acc.used_params;
            }
        else acc)
  in
  let s =
    go i.keys
      { seek_sel = 1.0; seek_cols = []; used_ranges = []; used_params = [] }
  in
  if s.seek_cols = [] then None
  else
    Some
      {
        s with
        seek_cols = List.rev s.seek_cols;
        used_ranges = List.rev s.used_ranges;
        used_params = List.rev s.used_params;
      }

(* ------------------------------------------------------------------ *)
(* candidate generation                                                *)
(* ------------------------------------------------------------------ *)

type candidate = { plan : Plan.t; usages : Plan.index_usage list }

let index_stats env (i : Index.t) =
  let rel = Index.owner i in
  let rows = Env.rows env rel in
  let width_of = Env.width_of env in
  let row_width = Env.row_width env rel in
  let leaf = Size_model.leaf_pages ~rows ~width_of ~row_width i in
  let height = Size_model.height ~rows ~width_of ~row_width i in
  (rows, leaf, float_of_int height)

let available_columns env (i : Index.t) =
  if i.clustered then
    Column_set.of_list
      (Relax_catalog.Catalog.columns_of (env : Env.t).cat (Index.owner i))
  else Index.columns i

(* Finish an index access: pre-lookup filter on index columns, rid lookup if
   the index does not cover, post-lookup filter, and a sort when the request
   demands an unsatisfied order. *)
let finish_index_access env (r : Request.t) ~base ~avail ~consumed_ranges
    ~consumed_params ?(consumed_others = []) () : Plan.t =
  let residual_ranges =
    List.filter
      (fun (rg : Predicate.range) ->
        not (List.memq rg consumed_ranges))
      r.ranges
  in
  let residual_params =
    List.filter
      (fun c -> not (List.exists (Column.equal c) consumed_params))
      r.param_eq
  in
  let residual_others_all =
    List.filter (fun e -> not (List.memq e consumed_others)) r.others
  in
  let evaluable cols e = Column_set.subset (Expr.columns e) cols in
  let pre_ranges, post_ranges =
    List.partition (fun (rg : Predicate.range) -> Column_set.mem rg.rcol avail) residual_ranges
  in
  let pre_params, post_params =
    List.partition (fun c -> Column_set.mem c avail) residual_params
  in
  let pre_others, post_others =
    List.partition (evaluable avail) residual_others_all
  in
  let plan = add_filter env base ~ranges:pre_ranges ~param:pre_params ~others:pre_others in
  let covered = Column_set.subset r.cols avail in
  let plan = if covered then plan else add_lookup env plan ~rel:r.rel in
  let plan =
    if covered then begin
      assert (post_ranges = [] && post_params = [] && post_others = []);
      plan
    end
    else add_filter env plan ~ranges:post_ranges ~param:post_params ~others:post_others
  in
  add_sort env plan ~required:r.order

let heap_candidate env (r : Request.t) : candidate =
  let rel = r.rel in
  let rows = Env.rows env rel in
  let pages = Env.table_pages env rel in
  let all_cols =
    Column_set.of_list (Relax_catalog.Catalog.columns_of (env : Env.t).cat rel)
  in
  let order =
    match Env.clustered_on env rel with
    | Some ci -> List.map (fun c -> (c, Asc)) ci.keys
    | None -> []
  in
  let base =
    mk (Plan.Seq_scan rel) ~rows
      ~cost:((pages *. P.seq_page) +. (rows *. P.cpu_tuple))
      ~order ~cols:all_cols
  in
  let plan =
    add_filter env base ~ranges:r.ranges ~param:r.param_eq ~others:r.others
  in
  let plan = add_sort env plan ~required:r.order in
  let usages =
    match Env.clustered_on env rel with
    | Some ci -> [ { Plan.index = ci; kind = Scan; rows_touched = rows } ]
    | None -> []
  in
  { plan; usages }

let seek_candidate env (r : Request.t) (i : Index.t) : candidate option =
  match seek_of env r i with
  | None -> None
  | Some s ->
    let rows, leaf, height = index_stats env i in
    let touched = Float.max 1.0 (rows *. s.seek_sel) in
    let io =
      (height *. P.rand_page)
      +. (Float.max 1.0 (Float.ceil (s.seek_sel *. leaf)) *. P.seq_page)
    in
    let base =
      mk
        (Plan.Index_seek { index = i; sel = s.seek_sel; seek_cols = s.seek_cols })
        ~rows:touched
        ~cost:(io +. (touched *. P.cpu_tuple))
        ~order:(List.map (fun c -> (c, Asc)) i.keys)
        ~cols:(available_columns env i)
    in
    let plan =
      finish_index_access env r ~base ~avail:(available_columns env i)
        ~consumed_ranges:s.used_ranges ~consumed_params:s.used_params ()
    in
    Some
      {
        plan;
        usages =
          [
            {
              Plan.index = i;
              kind = Seek { sel = s.seek_sel; seek_cols = s.seek_cols };
              rows_touched = touched;
            };
          ];
      }

let scan_candidate env (r : Request.t) (i : Index.t) : candidate =
  let rows, leaf, _ = index_stats env i in
  let base =
    mk (Plan.Index_scan i) ~rows
      ~cost:((leaf *. P.seq_page) +. (rows *. P.cpu_tuple))
      ~order:(List.map (fun c -> (c, Asc)) i.keys)
      ~cols:(available_columns env i)
  in
  let plan =
    finish_index_access env r ~base ~avail:(available_columns env i)
      ~consumed_ranges:[] ~consumed_params:[] ()
  in
  {
    plan;
    usages = [ { Plan.index = i; kind = Scan; rows_touched = rows } ];
  }

(* Multi-point seeks for IN-list predicates (the "unions" of the paper's
   plan template, Figure 1): one seek per listed value on an index whose
   leading key is the listed column, rids unioned. *)
let union_candidates env (r : Request.t) indexes : candidate list =
  List.concat_map
    (fun e ->
      match e with
      | Expr.In_list (Expr.Col c, vs) when c.tbl = r.rel && vs <> [] ->
        List.filter_map
          (fun (i : Index.t) ->
            match i.keys with
            | k :: _ when Column.equal k c ->
              let rows, _leaf, height = index_stats env i in
              let sel = Selectivity.other env e in
              let out_rows = Float.max 1.0 (rows *. sel) in
              let points = List.length vs in
              let io =
                float_of_int points
                *. ((height *. P.rand_page) +. P.seq_page)
              in
              let base =
                mk
                  (Plan.Rid_union { index = i; points; rows = out_rows })
                  ~rows:out_rows
                  ~cost:(io +. (out_rows *. (P.cpu_tuple +. P.cpu_hash)))
                  ~order:[]
                  ~cols:(available_columns env i)
              in
              let plan =
                finish_index_access env r ~base
                  ~avail:(available_columns env i) ~consumed_ranges:[]
                  ~consumed_params:[] ~consumed_others:[ e ] ()
              in
              Some
                {
                  plan;
                  usages =
                    [
                      {
                        Plan.index = i;
                        kind = Seek { sel; seek_cols = [ c ] };
                        rows_touched = out_rows;
                      };
                    ];
                }
            | _ -> None)
          indexes
      | _ -> [])
    r.others

let intersection_candidates env (r : Request.t) seekable : candidate list =
  (* only worthwhile between selective secondary seeks *)
  let sorted =
    List.sort
      (fun (_, s1) (_, s2) -> Float.compare s1.seek_sel s2.seek_sel)
      seekable
  in
  let top = List.filteri (fun k _ -> k < 4) sorted in
  let pairs =
    List.concat_map
      (fun (i1, s1) ->
        List.filter_map
          (fun (i2, s2) ->
            if Index.compare i1 i2 < 0 then Some ((i1, s1), (i2, s2)) else None)
          top)
      top
  in
  List.filter_map
    (fun ((i1, s1), (i2, s2)) ->
      if s1.seek_sel >= 0.5 || s2.seek_sel >= 0.5 then None
      else begin
        let mk_seek i (s : seek) =
          let rows, leaf, height = index_stats env i in
          let touched = Float.max 1.0 (rows *. s.seek_sel) in
          let io =
            (height *. P.rand_page)
            +. (Float.max 1.0 (Float.ceil (s.seek_sel *. leaf)) *. P.seq_page)
          in
          mk
            (Plan.Index_seek { index = i; sel = s.seek_sel; seek_cols = s.seek_cols })
            ~rows:touched
            ~cost:(io +. (touched *. P.cpu_tuple))
            ~order:(List.map (fun c -> (c, Asc)) i.keys)
            ~cols:(available_columns env i)
        in
        let p1 = mk_seek i1 s1 and p2 = mk_seek i2 s2 in
        let rows_base = Env.rows env r.rel in
        (* combined selectivity over the *distinct* predicates the two seeks
           consumed: both indexes may seek the same range (e.g. two indexes
           keyed on the same column), and multiplying the per-seek
           selectivities would then double-count it — yielding an output
           cardinality below what the request logically returns, which in
           turn breaks the relaxation bound's local-patching argument
           (access cardinality must depend on the request, not the path) *)
        let distinct_ranges =
          List.fold_left
            (fun acc (rg : Predicate.range) ->
              if List.memq rg acc then acc else rg :: acc)
            [] (s1.used_ranges @ s2.used_ranges)
        in
        let distinct_params =
          List.fold_left
            (fun acc c ->
              if List.exists (Column.equal c) acc then acc else c :: acc)
            [] (s1.used_params @ s2.used_params)
        in
        let combined_sel =
          List.fold_left
            (fun acc rg -> acc *. Selectivity.range env rg)
            1.0 distinct_ranges
          *. List.fold_left
               (fun acc c -> acc *. Selectivity.param_eq env c)
               1.0 distinct_params
        in
        let out_rows = Float.max 1.0 (rows_base *. combined_sel) in
        let inter =
          mk
            (Plan.Rid_intersect (p1, p2))
            ~rows:out_rows
            ~cost:(p1.cost +. p2.cost +. ((p1.rows +. p2.rows) *. P.cpu_hash))
            ~order:[]
            ~cols:(Column_set.union p1.out_cols p2.out_cols)
        in
        let consumed_ranges = s1.used_ranges @ s2.used_ranges in
        let consumed_params = s1.used_params @ s2.used_params in
        let plan =
          finish_index_access env r ~base:inter ~avail:inter.out_cols
            ~consumed_ranges ~consumed_params ()
        in
        Some
          {
            plan;
            usages =
              [
                {
                  Plan.index = i1;
                  kind = Seek { sel = s1.seek_sel; seek_cols = s1.seek_cols };
                  rows_touched = p1.rows;
                };
                {
                  Plan.index = i2;
                  kind = Seek { sel = s2.seek_sel; seek_cols = s2.seek_cols };
                  rows_touched = p2.rows;
                };
              ];
          }
      end)
    pairs

(* ------------------------------------------------------------------ *)
(* entry point                                                         *)
(* ------------------------------------------------------------------ *)

(** Pick the cheapest physical strategy for an index request; fires the
    [on_index_request] hook first, so by the time plans are generated the
    tuner may already have simulated new structures (the caller re-invokes
    optimization in that case — see the tuner's instrumentation loop). *)
let best env ?hooks ?via_view (r : Request.t) : Plan.t =
  Relax_obs.Probe.count "access_path.requests";
  Hooks.fire_index hooks r;
  let indexes = Env.indexes_on env r.rel in
  let heap = heap_candidate env r in
  let seekable =
    List.filter_map
      (fun i -> match seek_of env r i with Some s -> Some (i, s) | None -> None)
      indexes
  in
  let candidates =
    (heap :: List.filter_map (seek_candidate env r) indexes)
    @ List.map (scan_candidate env r) indexes
    @ intersection_candidates env r seekable
    @ union_candidates env r indexes
  in
  let best =
    List.fold_left
      (fun (acc : candidate) (c : candidate) ->
        if c.plan.cost < acc.plan.cost then c else acc)
      heap candidates
  in
  let sorted =
    match best.plan.node with Plan.Sort _ -> true | _ -> false
  in
  let info =
    {
      Plan.rel = r.rel;
      request = r;
      usages = best.usages;
      via_view = via_view;
      access_cost = best.plan.cost;
      access_rows = best.plan.rows;
      sorted;
      executions = 1.0;
    }
  in
  {
    best.plan with
    node = Plan.Access { info; input = best.plan };
  }
