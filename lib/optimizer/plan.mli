(** Physical execution plans, annotated with estimated rows, cumulative
    cost, delivered order and delivered columns.

    Every single-relation access decision is wrapped in an [Access] node
    carrying the request it answered and per-index usage records — the
    "explain" information §3.3.2 requires: estimated cost, rows, type of
    usage (seek with its selectivity, or scan), required order, sought
    columns, and the additional columns provided upward. *)

open Relax_sql.Types
module Index = Relax_physical.Index
module View = Relax_physical.View

(** How one index was used by an access path. *)
type usage_kind =
  | Seek of { sel : float; seek_cols : column list }
  | Scan

type index_usage = {
  index : Index.t;
  kind : usage_kind;
  rows_touched : float;
}

(** The record attached to each single-relation access decision. *)
type access_info = {
  rel : string;
  request : Request.t;
  usages : index_usage list;  (** empty = a heap scan answered the request *)
  via_view : View.t option;
      (** set when this access implements a sub-join via a matched view *)
  access_cost : float;  (** cost of the access sub-plan, per execution *)
  access_rows : float;
  sorted : bool;  (** a sort operator was needed inside the access *)
  executions : float;
      (** how many times the access runs (> 1 on nested-loop inner sides);
          total attributable cost is [executions *. access_cost] *)
}

type t = {
  node : node;
  rows : float;
  cost : float;  (** cumulative, including inputs *)
  out_order : (column * order_dir) list;
  out_cols : Column_set.t;
}

and node =
  | Seq_scan of string
  | Index_scan of Index.t
  | Index_seek of { index : Index.t; sel : float; seek_cols : column list }
  | Rid_intersect of t * t
  | Rid_union of { index : Index.t; points : int; rows : float }
      (** multi-point seek: one seek per IN-list value, rids unioned *)
  | Rid_lookup of { input : t; rel : string }
  | Filter of {
      input : t;
      ranges : Relax_sql.Predicate.range list;
      others : Relax_sql.Expr.t list;
    }
  | Sort of { input : t; order : (column * order_dir) list }
  | Hash_join of { build : t; probe : t; joins : Relax_sql.Predicate.join list }
  | Merge_join of { left : t; right : t; joins : Relax_sql.Predicate.join list }
      (** both inputs sorted on the join keys *)
  | Nl_join of { outer : t; inner : t; joins : Relax_sql.Predicate.join list }
  | Group of {
      input : t;
      keys : column list;
      aggs : Relax_sql.Query.select_item list;
      streaming : bool;
    }
  | Access of { info : access_info; input : t }

val cost : t -> float
val rows : t -> float

val iter_accesses : (access_info -> unit) -> t -> unit
(** Apply a function to every access decision, pre-order, without
    materializing a list — the traversal the search's per-node scoring
    loops use. *)

val accesses : t -> access_info list
(** Every access decision in the plan ({!iter_accesses} order). *)

val index_usages : t -> index_usage list
val uses_index : t -> Index.t -> bool
val uses_relation : t -> string -> bool
val uses_view : t -> View.t -> bool

val pp : Format.formatter -> t -> unit
