(** Physical execution plans.

    Plans are annotated with estimated rows, cumulative cost, delivered
    order and delivered columns.  Every single-relation access decision is
    wrapped in an [Access] node carrying the request it answered and the
    index usage records the tuner's cost-bounding machinery consumes
    (§3.3.2: "we extract from a query's execution plan, for each used
    index: estimated cost, rows, type of usage, required order, sought
    columns, and additional columns"). *)

open Relax_sql.Types
module Index = Relax_physical.Index
module View = Relax_physical.View
module Predicate = Relax_sql.Predicate
module Expr = Relax_sql.Expr
module Query = Relax_sql.Query

(** How one index was used by an access path. *)
type usage_kind =
  | Seek of { sel : float; seek_cols : column list }
      (** fraction of the index touched and the key prefix sought *)
  | Scan

type index_usage = {
  index : Index.t;
  kind : usage_kind;
  rows_touched : float;  (** rows read out of the index *)
}

(** The record attached to each single-relation access decision. *)
type access_info = {
  rel : string;
  request : Request.t;
  usages : index_usage list;  (** empty = heap scan answered the request *)
  via_view : View.t option;
      (** set when this access implements a sub-join via a matched view *)
  access_cost : float;  (** total cost of the access sub-plan, per execution *)
  access_rows : float;  (** rows the access sub-plan outputs *)
  sorted : bool;  (** a sort operator was needed inside the access *)
  executions : float;
      (** how many times the access runs (> 1 on inner sides of nested-loop
          joins); total attributable cost is [executions *. access_cost] *)
}

type t = {
  node : node;
  rows : float;
  cost : float;  (** cumulative cost including inputs *)
  out_order : (column * order_dir) list;
  out_cols : Column_set.t;
}

and node =
  | Seq_scan of string
  | Index_scan of Index.t
  | Index_seek of { index : Index.t; sel : float; seek_cols : column list }
  | Rid_intersect of t * t
  | Rid_union of { index : Index.t; points : int; rows : float }
      (** multi-point seek: one seek per IN-list value, rids unioned *)
  | Rid_lookup of { input : t; rel : string }
  | Filter of {
      input : t;
      ranges : Predicate.range list;
      others : Expr.t list;
    }
  | Sort of { input : t; order : (column * order_dir) list }
  | Hash_join of { build : t; probe : t; joins : Predicate.join list }
  | Merge_join of { left : t; right : t; joins : Predicate.join list }
      (** both inputs sorted on the join keys (sorts, if needed, are inside
          the inputs) *)
  | Nl_join of { outer : t; inner : t; joins : Predicate.join list }
      (** [inner.cost] is per-outer-row; total accounted in the node *)
  | Group of {
      input : t;
      keys : column list;
      aggs : Query.select_item list;
      streaming : bool;
    }
  | Access of { info : access_info; input : t }

let cost t = t.cost
let rows t = t.rows

(** Apply [f] to every access decision in the plan, pre-order.  The
    allocation-free traversal: the scoring loops walk every plan of every
    node per iteration, and materializing an [access_info list] per walk
    (worse, gluing sub-lists with [@]) was measurable minor-heap churn on
    100+-statement workloads. *)
let iter_accesses f t =
  let rec go t =
    match t.node with
    | Seq_scan _ | Index_scan _ | Index_seek _ | Rid_union _ -> ()
    | Access { info; input } ->
      f info;
      go input
    | Rid_lookup { input; _ } | Filter { input; _ } | Sort { input; _ } ->
      go input
    | Rid_intersect (a, b) ->
      go a;
      go b
    | Hash_join { build; probe; _ } ->
      go build;
      go probe
    | Merge_join { left; right; _ } ->
      go left;
      go right
    | Nl_join { outer; inner; _ } ->
      go outer;
      go inner
    | Group { input; _ } -> go input
  in
  go t

(** Collect every access decision in the plan (pre-order, same order as
    {!iter_accesses}).  One accumulator pass, no list concatenation. *)
let accesses t =
  let acc = ref [] in
  iter_accesses (fun info -> acc := info :: !acc) t;
  List.rev !acc

exception Found

(* short-circuiting exists over the access decisions, no list built *)
let exists_access pred t =
  match iter_accesses (fun a -> if pred a then raise_notrace Found) t with
  | () -> false
  | exception Found -> true

(** All index usages in the plan. *)
let index_usages t = List.concat_map (fun a -> a.usages) (accesses t)

(** Does the plan use this physical structure (index, or any index over the
    named view / the view itself)? *)
let uses_index t i =
  exists_access
    (fun a -> List.exists (fun u -> Index.equal u.index i) a.usages)
    t

let uses_relation t rel = exists_access (fun (a : access_info) -> a.rel = rel) t

let uses_view t v =
  exists_access
    (fun (a : access_info) ->
      a.rel = View.name v
      || match a.via_view with Some v' -> View.equal v v' | None -> false)
    t

let rec pp ppf t =
  let child = Fmt.pf ppf "@,@[<v2>  %a@]" pp in
  Fmt.pf ppf "@[<v>";
  (match t.node with
  | Seq_scan rel -> Fmt.pf ppf "SeqScan(%s)" rel
  | Index_scan i -> Fmt.pf ppf "IndexScan(%a)" Index.pp i
  | Index_seek { index; sel; seek_cols } ->
    Fmt.pf ppf "IndexSeek(%a; on %a; sel=%.4g)" Index.pp index
      Fmt.(list ~sep:comma Column.pp)
      seek_cols sel
  | Rid_intersect (a, b) ->
    Fmt.pf ppf "RidIntersect";
    child a;
    child b
  | Rid_union { index; points; _ } ->
    Fmt.pf ppf "RidUnion(%a; %d points)" Index.pp index points
  | Rid_lookup { input; rel } ->
    Fmt.pf ppf "RidLookup(%s)" rel;
    child input
  | Filter { input; ranges; others } ->
    Fmt.pf ppf "Filter(%d ranges, %d others)" (List.length ranges)
      (List.length others);
    child input
  | Sort { input; order } ->
    Fmt.pf ppf "Sort(%a)"
      Fmt.(list ~sep:comma (fun ppf (c, _) -> Column.pp ppf c))
      order;
    child input
  | Hash_join { build; probe; _ } ->
    Fmt.pf ppf "HashJoin";
    child build;
    child probe
  | Merge_join { left; right; _ } ->
    Fmt.pf ppf "MergeJoin";
    child left;
    child right
  | Nl_join { outer; inner; _ } ->
    Fmt.pf ppf "IndexNLJoin";
    child outer;
    child inner
  | Group { input; keys; streaming; _ } ->
    Fmt.pf ppf "Group(%s; %a)"
      (if streaming then "stream" else "hash")
      Fmt.(list ~sep:comma Column.pp)
      keys;
    child input
  | Access { info; input } ->
    Fmt.pf ppf "Access(%s%s)" info.rel
      (match info.via_view with
      | Some v -> " via " ^ View.name v
      | None -> "");
    child input);
  Fmt.pf ppf "  [rows=%.4g cost=%.4g]@]" t.rows t.cost
