(** The cost-based query optimizer.

    System-R style dynamic programming over connected table subsets, with
    hash joins and index nested-loop joins (whose inner sides issue index
    requests with parameterized equality predicates, per Figure 2); view
    matching is attempted for every enumerated sub-join and for the full
    grouped block; grouping and ordering are enforced on top.

    Hooks fire on every index and view request, which is the entire
    instrumentation surface the tuner needs (§2). *)

open Relax_sql.Types
module Query = Relax_sql.Query
module Predicate = Relax_sql.Predicate
module Expr = Relax_sql.Expr
module View = Relax_physical.View
module Config = Relax_physical.Config
module P = Cost_params

let src = Logs.Src.create "relax.optimizer" ~doc:"query optimizer"

module Log = (val Logs.src_log src : Logs.LOG)

(* ------------------------------------------------------------------ *)
(* per-query precomputation                                            *)
(* ------------------------------------------------------------------ *)

type qinfo = {
  q : Query.spjg;
  order_by : (column * order_dir) list;
  tables : string array;
  n : int;
  needed : (string, Column_set.t) Hashtbl.t;  (** columns needed per table *)
}

let table_index info t =
  let rec go i = if info.tables.(i) = t then i else go (i + 1) in
  go 0

let mask_of_tables info ts =
  List.fold_left (fun m t -> m lor (1 lsl table_index info t)) 0 ts

let tables_of_mask info mask =
  let rec go i acc =
    if i >= info.n then List.rev acc
    else go (i + 1) (if mask land (1 lsl i) <> 0 then info.tables.(i) :: acc else acc)
  in
  go 0 []

let analyze (sq : Query.select_query) : qinfo =
  let q = sq.body in
  let tables = Array.of_list q.tables in
  let all_cols = Query.spjg_columns q in
  let all_cols =
    List.fold_left (fun acc (c, _) -> Column_set.add c acc) all_cols sq.order_by
  in
  let needed = Hashtbl.create 8 in
  Array.iter
    (fun t ->
      Hashtbl.replace needed t
        (Column_set.filter (fun c -> c.tbl = t) all_cols))
    tables;
  { q; order_by = sq.order_by; tables; n = Array.length tables; needed }

(* predicates applicable once all tables of [mask] are joined *)
let joins_in info mask =
  List.filter
    (fun (j : Predicate.join) ->
      let m = mask_of_tables info [ j.left.tbl; j.right.tbl ] in
      m land mask = m)
    info.q.joins

let ranges_in info mask =
  List.filter
    (fun (r : Predicate.range) ->
      mask_of_tables info [ r.rcol.tbl ] land mask <> 0)
    info.q.ranges

let others_in info mask =
  List.filter
    (fun e ->
      let ts = Expr.tables e in
      ts <> [] && mask_of_tables info ts land mask = mask_of_tables info ts)
    info.q.others

(* the SPJG block computed by the sub-join of [mask]: outputs every column
   needed above the sub-join *)
let sub_block info mask : Query.spjg =
  let ts = tables_of_mask info mask in
  let outside_cols =
    (* columns of mask tables used by joins crossing the mask boundary, by
       predicates not yet applicable, by select/group/order *)
    let acc = Column_set.empty in
    let acc =
      List.fold_left
        (fun acc it -> Column_set.union acc (Query.item_columns it))
        acc info.q.select
    in
    let acc = List.fold_left (fun acc c -> Column_set.add c acc) acc info.q.group_by in
    let acc =
      List.fold_left (fun acc (c, _) -> Column_set.add c acc) acc info.order_by
    in
    let acc =
      List.fold_left
        (fun acc (j : Predicate.join) ->
          let m = mask_of_tables info [ j.left.tbl; j.right.tbl ] in
          if m land mask <> m then
            Column_set.add j.left (Column_set.add j.right acc)
          else acc)
        acc info.q.joins
    in
    List.fold_left
      (fun acc e ->
        let ts' = Expr.tables e in
        let m = mask_of_tables info ts' in
        if m land mask <> m then Column_set.union acc (Expr.columns e) else acc)
      acc info.q.others
  in
  let select =
    Column_set.elements
      (Column_set.filter (fun c -> List.mem c.tbl ts) outside_cols)
    |> List.map (fun c -> Query.Item_col c)
  in
  Query.make_spjg ~select ~tables:ts ~joins:(joins_in info mask)
    ~ranges:(ranges_in info mask) ~others:(others_in info mask) ()

(* ------------------------------------------------------------------ *)
(* view-based alternatives                                             *)
(* ------------------------------------------------------------------ *)

(** Build a plan answering [block] through a matched view. *)
let view_plan env ?hooks (m : View_match.result) ~rows_out : Plan.t =
  let vname = View.name m.view in
  let request =
    Request.make ~rel:vname ~ranges:m.residual_ranges ~others:m.residual_others
      ~cols:m.needed_cols ()
  in
  let access = Access_path.best env ?hooks ~via_view:m.view request in
  let plan =
    match m.regroup with
    | None -> access
    | Some (keys, items) ->
      let groups =
        Cardinality.group_rows env ~input_rows:access.rows keys
      in
      let cost =
        access.cost +. (access.rows *. P.cpu_hash) +. (groups *. P.cpu_agg)
      in
      {
        Plan.node = Group { input = access; keys; aggs = items; streaming = false };
        rows = groups;
        cost;
        out_order = [];
        out_cols =
          List.fold_left
            (fun acc it -> Column_set.union acc (Query.item_columns it))
            (Column_set.of_list keys) items;
      }
  in
  { plan with rows = Float.max 1.0 rows_out }

(** All view-based plans for a block.  The view-request hook fires only for
    {e interesting} blocks — ones whose result condenses its inputs (by
    predicates or grouping) — matching how production optimizers gate view
    matching; uninteresting blocks still try to match existing views. *)
let view_alternatives env ?hooks ~interesting (block : Query.spjg) ~rows_out :
    Plan.t list =
  if interesting then Hooks.fire_view hooks block;
  List.filter_map
    (fun v ->
      match View_match.try_match v block with
      | Some m -> Some (view_plan env ?hooks m ~rows_out)
      | None -> None)
    (Config.views (env : Env.t).config)

(* ------------------------------------------------------------------ *)
(* join enumeration                                                    *)
(* ------------------------------------------------------------------ *)

let base_request env info i ~order : Request.t =
  ignore env;
  let t = info.tables.(i) in
  let mask = 1 lsl i in
  Request.make ~rel:t ~ranges:(ranges_in info mask)
    ~others:(others_in info mask)
    ~order
    ~cols:(Hashtbl.find info.needed t)
    ()

let connecting_joins info ~left ~right =
  List.filter
    (fun (j : Predicate.join) ->
      let ml = mask_of_tables info [ j.left.tbl ]
      and mr = mask_of_tables info [ j.right.tbl ] in
      (ml land left <> 0 && mr land right <> 0)
      || (ml land right <> 0 && mr land left <> 0))
    info.q.joins

let popcount m =
  let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
  go m 0

(** Optimize one select query under the environment's configuration. *)
let optimize_select env ?hooks (sq : Query.select_query) : Plan.t =
  let info = analyze sq in
  let n = info.n in
  let full = (1 lsl n) - 1 in
  let card = Array.make (full + 1) 0.0 in
  for mask = 1 to full do
    card.(mask) <-
      Cardinality.join_rows env
        ~tables:(tables_of_mask info mask)
        ~joins:(joins_in info mask) ~ranges:(ranges_in info mask)
        ~others:(others_in info mask)
  done;
  let dp : Plan.t option array = Array.make (full + 1) None in
  (* effective order pushed into single-table requests at the top *)
  let top_order =
    if info.q.group_by <> [] then List.map (fun c -> (c, Asc)) info.q.group_by
    else info.order_by
  in
  (* Interesting orders: when the whole required order lives on one table,
     a second DP track [dpo] carries plans that already deliver it (an
     order-providing index on that table, propagated through joins that
     preserve their streamed side's order).  This is what lets an ordered
     index at a join input absorb the top-level sort — and, in tuning mode,
     what makes the optimizer issue the ordered index requests of §2.1. *)
  let order_tbl =
    match top_order with
    | [] -> None
    | (c0, _) :: rest ->
      if List.for_all (fun ((c : column), _) -> c.tbl = c0.tbl) rest then
        Some c0.tbl
      else None
  in
  let dpo : Plan.t option array = Array.make (full + 1) None in
  for i = 0 to n - 1 do
    let order = if n = 1 then top_order else [] in
    let r = base_request env info i ~order in
    dp.(1 lsl i) <- Some (Access_path.best env ?hooks r);
    if n > 1 && order_tbl = Some info.tables.(i) then
      dpo.(1 lsl i) <-
        Some (Access_path.best env ?hooks { r with order = top_order })
  done;
  (* enumerate masks by size *)
  let consider mask (p : Plan.t) =
    match dp.(mask) with
    | Some best when best.cost <= p.cost -> ()
    | _ -> dp.(mask) <- Some p
  in
  for mask = 1 to full do
    if popcount mask >= 2 then begin
      (* join splits *)
      let sub = ref ((mask - 1) land mask) in
      let found_connected = ref false in
      let try_split ~allow_cartesian sub =
        let left = sub and right = mask land lnot sub in
        if left <> 0 && right <> 0 then begin
          match (dp.(left), dp.(right)) with
          | Some lp, Some rp ->
            let joins = connecting_joins info ~left ~right in
            if joins <> [] || allow_cartesian then begin
              if joins <> [] then found_connected := true;
              let rows_out = card.(mask) in
              (* newly applicable multi-table others *)
              let new_others =
                List.filter
                  (fun e ->
                    let m = mask_of_tables info (Expr.tables e) in
                    popcount m >= 2 && m land left <> m && m land right <> m)
                  (others_in info mask)
              in
              let out_cols = Column_set.union lp.out_cols rp.out_cols in
              let consider_o (p : Plan.t) =
                match dpo.(mask) with
                | Some best when best.cost <= p.cost -> ()
                | _ -> dpo.(mask) <- Some p
              in
              let finish ?(sink = consider mask) (node : Plan.node) ~cost
                  ~order =
                let p =
                  {
                    Plan.node;
                    rows = rows_out;
                    cost;
                    out_order = order;
                    out_cols;
                  }
                in
                let p =
                  if new_others = [] then p
                  else
                    {
                      Plan.node = Filter { input = p; ranges = []; others = new_others };
                      rows = rows_out;
                      cost = p.cost +. (p.rows *. P.cpu_eval);
                      out_order = p.out_order;
                      out_cols;
                    }
                in
                sink p
              in
              (* hash join: build on the smaller input *)
              let build, probe = if lp.rows <= rp.rows then (lp, rp) else (rp, lp) in
              finish
                (Hash_join { build; probe; joins })
                ~cost:
                  (lp.cost +. rp.cost
                  +. (build.rows *. P.cpu_hash)
                  +. (probe.rows *. P.cpu_hash))
                ~order:probe.out_order;
              (* merge join: exploits inputs already sorted on the join
                 keys (an index delivering key order avoids both sorts) *)
              if joins <> [] then begin
                let left_keys, right_keys =
                  List.split
                    (List.map
                       (fun (j : Predicate.join) ->
                         if mask_of_tables info [ j.left.tbl ] land left <> 0
                         then (j.left, j.right)
                         else (j.right, j.left))
                       joins)
                in
                (* join-key interesting orders: a single-table side may
                   satisfy the merge order through an order-providing index
                   instead of an explicit sort.  Requesting the ordered
                   access explicitly matters beyond plan quality: the §3.3.2
                   relaxation bound patches accesses with their consumed
                   order folded into the request, and its soundness needs
                   the optimizer's plan space to contain those patched
                   plans (the checker caught a configuration where the
                   best *unordered* access lost the order an index had
                   delivered for free, and the bound undercut the
                   re-optimized cost). *)
                let sorted_input sub (p : Plan.t) keys =
                  let required = List.map (fun c -> (c, Asc)) keys in
                  let sorted = Access_path.add_sort env p ~required in
                  if popcount sub <> 1 then sorted
                  else begin
                    let i =
                      table_index info (List.hd (tables_of_mask info sub))
                    in
                    let r = base_request env info i ~order:required in
                    let ordered = Access_path.best env ?hooks r in
                    if ordered.cost < sorted.cost then ordered else sorted
                  end
                in
                let ls = sorted_input left lp left_keys
                and rs = sorted_input right rp right_keys in
                finish
                  (Merge_join { left = ls; right = rs; joins })
                  ~cost:
                    (ls.cost +. rs.cost
                    +. ((ls.rows +. rs.rows) *. P.cpu_tuple))
                  ~order:ls.out_order
              end;
              (* index nested-loop join when the inner side is one table *)
              let nlj_inner () =
                let i = table_index info (List.hd (tables_of_mask info right)) in
                let inner_t = info.tables.(i) in
                let param_eq =
                  List.map
                    (fun (j : Predicate.join) ->
                      if j.left.tbl = inner_t then j.left else j.right)
                    joins
                in
                let r =
                  Request.make ~rel:inner_t
                    ~ranges:(ranges_in info right)
                    ~param_eq
                    ~others:(others_in info right)
                    ~cols:(Hashtbl.find info.needed inner_t)
                    ()
                in
                Access_path.best env ?hooks r
              in
              let with_executions (inner : Plan.t) executions =
                (* record the multiplicity so cost-bounding can attribute
                   the inner access its true share of the plan cost *)
                match inner.node with
                | Plan.Access { info; input } ->
                  {
                    inner with
                    node = Plan.Access { info = { info with executions }; input };
                  }
                | _ -> inner
              in
              if popcount right = 1 && joins <> [] then begin
                let inner = with_executions (nlj_inner ()) lp.rows in
                finish
                  (Nl_join { outer = lp; inner; joins })
                  ~cost:
                    (lp.cost
                    +. (lp.rows *. inner.cost)
                    +. (rows_out *. P.cpu_tuple))
                  ~order:lp.out_order
              end;
              (* the interesting-order track: joins that stream an ordered
                 input preserve its order (hash probe side, nested-loop
                 outer), letting an order-providing index absorb the
                 top-level sort *)
              (match dpo.(left) with
              | Some lpo when joins <> [] ->
                finish ~sink:consider_o
                  (Hash_join { build = rp; probe = lpo; joins })
                  ~cost:
                    (lpo.cost +. rp.cost
                    +. (rp.rows *. P.cpu_hash)
                    +. (lpo.rows *. P.cpu_hash))
                  ~order:lpo.out_order;
                if popcount right = 1 then begin
                  let inner = with_executions (nlj_inner ()) lpo.rows in
                  finish ~sink:consider_o
                    (Nl_join { outer = lpo; inner; joins })
                    ~cost:
                      (lpo.cost
                      +. (lpo.rows *. inner.cost)
                      +. (rows_out *. P.cpu_tuple))
                    ~order:lpo.out_order
                end
              | _ -> ());
              (match dpo.(right) with
              | Some rpo when joins <> [] ->
                finish ~sink:consider_o
                  (Hash_join { build = lp; probe = rpo; joins })
                  ~cost:
                    (lp.cost +. rpo.cost
                    +. (lp.rows *. P.cpu_hash)
                    +. (rpo.rows *. P.cpu_hash))
                  ~order:rpo.out_order
              | _ -> ())
            end
          | _ -> ()
        end
      in
      (* first pass: connected splits only *)
      let s = ref !sub in
      while !s <> 0 do
        try_split ~allow_cartesian:false !s;
        s := (!s - 1) land mask
      done;
      if (not !found_connected) && dp.(mask) = None then begin
        (* disconnected sub-join: fall back to cartesian products *)
        let s = ref ((mask - 1) land mask) in
        while !s <> 0 do
          try_split ~allow_cartesian:true !s;
          s := (!s - 1) land mask
        done
      end;
      (* view-based alternative for this sub-join; the request is only
         interesting if materializing it would condense the data *)
      let block = sub_block info mask in
      let max_base_rows =
        List.fold_left
          (fun acc t -> Float.max acc (Env.rows env t))
          1.0 (tables_of_mask info mask)
      in
      let interesting = card.(mask) <= 0.8 *. max_base_rows in
      List.iter (consider mask)
        (view_alternatives env ?hooks ~interesting block ~rows_out:card.(mask))
    end
  done;
  (* single-table SPJ blocks never enter the >= 2 mask loop; still try
     matching user-supplied single-table views for the full block *)
  if n = 1 then begin
    let block = sub_block info full in
    List.iter
      (fun (p : Plan.t) ->
        match dp.(full) with
        | Some best when best.cost <= p.cost -> ()
        | _ -> dp.(full) <- Some p)
      (view_alternatives env ?hooks ~interesting:false block
         ~rows_out:card.(full))
  end;
  let joined =
    match dp.(full) with
    | Some p -> p
    | None -> assert false (* singles always exist *)
  in
  (* grouping / aggregation on top *)
  let apply_grouping (joined : Plan.t) =
    if info.q.group_by = [] && not (Query.has_aggregates info.q) then joined
    else begin
      let keys = info.q.group_by in
      let streaming =
        keys <> []
        && Access_path.order_satisfied ~delivered:joined.out_order
             ~required:(List.map (fun c -> (c, Asc)) keys)
      in
      let groups =
        if keys = [] then 1.0
        else Cardinality.group_rows env ~input_rows:joined.rows keys
      in
      let cost =
        if streaming then joined.cost +. (joined.rows *. P.cpu_agg)
        else
          joined.cost +. (joined.rows *. P.cpu_hash) +. (groups *. P.cpu_agg)
      in
      let out_cols =
        List.fold_left
          (fun acc it -> Column_set.union acc (Query.item_columns it))
          (Column_set.of_list keys) info.q.select
      in
      {
        Plan.node =
          Group { input = joined; keys; aggs = info.q.select; streaming };
        rows = groups;
        cost;
        out_order = (if streaming then joined.out_order else []);
        out_cols;
      }
    end
  in
  let grouped = apply_grouping joined in
  (* the interesting-order track: already delivers the effective top order,
     so grouping streams and the final sort disappears *)
  let ordered_alternative =
    match dpo.(full) with
    | Some p when n > 1 -> Some (apply_grouping p)
    | _ -> None
  in
  (* a view matching the whole grouped block may beat the DP plan *)
  let top_rows = Cardinality.spjg env info.q in
  let whole_block_alternatives =
    if info.q.group_by <> [] || Query.has_aggregates info.q then
      (* grouped blocks always condense: always an interesting request *)
      view_alternatives env ?hooks ~interesting:true info.q ~rows_out:top_rows
    else [] (* pure SPJ blocks were already tried at the full mask *)
  in
  (* compare all top alternatives with the output order enforced *)
  let candidates =
    (grouped :: whole_block_alternatives)
    @ (match ordered_alternative with Some p -> [ p ] | None -> [])
  in
  let final =
    List.fold_left
      (fun (acc : Plan.t) (p : Plan.t) ->
        let p = Access_path.add_sort env p ~required:info.order_by in
        if p.cost < acc.cost then p else acc)
      (Access_path.add_sort env grouped ~required:info.order_by)
      candidates
  in
  final

(** Public entry point: optimize a select query under a configuration. *)
let optimize catalog config ?hooks (sq : Query.select_query) : Plan.t =
  Relax_obs.Probe.span "optimizer.optimize" @@ fun () ->
  Relax_obs.Probe.count "optimizer.optimizations";
  let env = Env.make catalog config in
  optimize_select env ?hooks sq
