(** The what-if costing layer.

    Hypothetical configurations are plain values here, so "simulating" a
    structure is free; what this layer adds is memoization: a query's plan
    only depends on the sub-configuration relevant to its tables, so two
    configurations that agree there share one optimization call.  This is
    the mechanism behind the paper's observation that a relaxed
    configuration only requires re-optimizing the queries that used the
    replaced structures. *)

module Query = Relax_sql.Query
module Config = Relax_physical.Config
module Catalog = Relax_catalog.Catalog

type t = {
  catalog : Catalog.t;
  plans : (string, Plan.t) Hashtbl.t;
  mutable optimizer_calls : int;  (** optimization calls actually executed *)
  mutable cache_hits : int;
}

let create catalog = { catalog; plans = Hashtbl.create 256; optimizer_calls = 0; cache_hits = 0 }

let stats t = (t.optimizer_calls, t.cache_hits)

let key config ~qid ~tables =
  qid ^ "#" ^ Config.fingerprint_for_tables config tables

(** Optimized plan for a select query under [config] (memoized). *)
let plan_select t config ~qid (sq : Query.select_query) : Plan.t =
  let k = key config ~qid ~tables:sq.body.tables in
  match Hashtbl.find_opt t.plans k with
  | Some p ->
    t.cache_hits <- t.cache_hits + 1;
    Relax_obs.Probe.cache_hit ~qid;
    p
  | None ->
    t.optimizer_calls <- t.optimizer_calls + 1;
    Relax_obs.Probe.what_if_call ~qid;
    let p =
      Relax_obs.Probe.span "whatif.optimize" (fun () ->
          Optimizer.optimize t.catalog config sq)
    in
    Hashtbl.replace t.plans k p;
    p

(** Cost of one workload entry under [config]: plan cost for selects;
    select-component cost plus shell cost for updates (§3.6). *)
let entry_cost t config (e : Query.entry) : float =
  match e.stmt with
  | Select sq -> (plan_select t config ~qid:e.qid sq).cost
  | Dml d ->
    let select_part, _shell = Query.split_update d in
    let select_cost =
      match select_part with
      | None -> 0.0
      | Some sq -> (plan_select t config ~qid:(e.qid ^ ":select") sq).cost
    in
    let env = Env.make t.catalog config in
    select_cost +. Update_cost.shell_cost env config d

(** Weighted total workload cost under [config]. *)
let workload_cost t config (w : Query.workload) : float =
  List.fold_left (fun acc e -> acc +. (e.Query.weight *. entry_cost t config e)) 0.0 w

(** Per-entry costs, weighted. *)
let per_entry_costs t config (w : Query.workload) : (string * float) list =
  List.map (fun (e : Query.entry) -> (e.qid, e.weight *. entry_cost t config e)) w
