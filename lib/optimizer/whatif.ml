(** The what-if costing layer.

    Hypothetical configurations are plain values here, so "simulating" a
    structure is free; what this layer adds is memoization: a query's plan
    only depends on the sub-configuration relevant to its tables, so two
    configurations that agree there share one optimization call.  This is
    the mechanism behind the paper's observation that a relaxed
    configuration only requires re-optimizing the queries that used the
    replaced structures.

    The plan cache is sharded by key hash with a mutex per shard, and the
    call/hit counters are atomic, so worker domains can cost plans
    concurrently during the parallel relaxation.  An optimization runs
    outside any shard lock (it can take milliseconds); if two domains ever
    race on the same key they both optimize and one result wins, which is
    harmless because plans are deterministic functions of the key. *)

module Query = Relax_sql.Query
module Config = Relax_physical.Config
module Catalog = Relax_catalog.Catalog

type shard = {
  shard_lock : Mutex.t;
  plans : (string, Plan.t) Hashtbl.t;
  hits : int Atomic.t;
  misses : int Atomic.t;
}

type t = {
  catalog : Catalog.t;
  shards : shard array;
  optimizer_calls : int Atomic.t;  (** optimization calls actually executed *)
  cache_hits : int Atomic.t;
}

let shard_bits = 4
let shard_count = 1 lsl shard_bits

let create catalog =
  {
    catalog;
    shards =
      Array.init shard_count (fun _ ->
          {
            shard_lock = Mutex.create ();
            plans = Hashtbl.create 32;
            hits = Atomic.make 0;
            misses = Atomic.make 0;
          });
    optimizer_calls = Atomic.make 0;
    cache_hits = Atomic.make 0;
  }

let stats t = (Atomic.get t.optimizer_calls, Atomic.get t.cache_hits)

let shard_stats t =
  Array.map (fun sh -> (Atomic.get sh.hits, Atomic.get sh.misses)) t.shards

let cached_plans t =
  Array.fold_left
    (fun acc sh ->
      acc + Mutex.protect sh.shard_lock (fun () -> Hashtbl.length sh.plans))
    0 t.shards

let key config ~qid ~tables =
  qid ^ "#" ^ Config.fingerprint_for_tables config tables

let shard_index k = Hashtbl.hash k land (shard_count - 1)
let series_of_shard i = Printf.sprintf "shard%02d" i

(** Optimized plan for a select query under [config] (memoized). *)
let plan_select t config ~qid (sq : Query.select_query) : Plan.t =
  let k = key config ~qid ~tables:sq.body.tables in
  let i = shard_index k in
  let sh = t.shards.(i) in
  match Mutex.protect sh.shard_lock (fun () -> Hashtbl.find_opt sh.plans k) with
  | Some p ->
    Atomic.incr t.cache_hits;
    Atomic.incr sh.hits;
    Relax_obs.Probe.cache_hit ~qid;
    Relax_obs.Probe.counter_series "whatif.cache_hits"
      ~series:(series_of_shard i)
      (float_of_int (Atomic.get sh.hits));
    p
  | None ->
    Atomic.incr t.optimizer_calls;
    Atomic.incr sh.misses;
    Relax_obs.Probe.what_if_call ~qid;
    Relax_obs.Probe.counter "whatif.calls"
      (float_of_int (Atomic.get t.optimizer_calls));
    Relax_obs.Probe.counter_series "whatif.cache_misses"
      ~series:(series_of_shard i)
      (float_of_int (Atomic.get sh.misses));
    let p =
      Relax_obs.Probe.span "whatif.optimize" (fun () ->
          Optimizer.optimize t.catalog config sq)
    in
    Mutex.protect sh.shard_lock (fun () -> Hashtbl.replace sh.plans k p);
    p

(** Cost of one workload entry under [config]: plan cost for selects;
    select-component cost plus shell cost for updates (§3.6). *)
let entry_cost t config (e : Query.entry) : float =
  match e.stmt with
  | Select sq -> (plan_select t config ~qid:e.qid sq).cost
  | Dml d ->
    let select_part, _shell = Query.split_update d in
    let select_cost =
      match select_part with
      | None -> 0.0
      | Some sq -> (plan_select t config ~qid:(e.qid ^ ":select") sq).cost
    in
    let env = Env.make t.catalog config in
    select_cost +. Update_cost.shell_cost env config d

(** Weighted total workload cost under [config]. *)
let workload_cost t config (w : Query.workload) : float =
  List.fold_left (fun acc e -> acc +. (e.Query.weight *. entry_cost t config e)) 0.0 w

(** Per-entry costs, weighted. *)
let per_entry_costs t config (w : Query.workload) : (string * float) list =
  List.map (fun (e : Query.entry) -> (e.qid, e.weight *. entry_cost t config e)) w
