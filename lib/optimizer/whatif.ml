(** The what-if costing layer.

    Hypothetical configurations are plain values here, so "simulating" a
    structure is free; what this layer adds is memoization: a query's plan
    only depends on the sub-configuration relevant to its tables, so two
    configurations that agree there share one optimization call.  This is
    the mechanism behind the paper's observation that a relaxed
    configuration only requires re-optimizing the queries that used the
    replaced structures.

    The plan cache is sharded by key hash with a mutex per shard, and the
    call/hit counters are atomic, so worker domains can cost plans
    concurrently during the parallel relaxation.  An optimization runs
    outside any shard lock (it can take milliseconds); concurrent requests
    for the same key are deduplicated through a per-shard in-flight set: the
    first requester optimizes, later ones wait on the shard's condition
    variable and count a cache hit, so the same key never pays two
    optimizer calls whatever the parallelism.

    Beyond exact-key memoization the layer keeps a per-query record of
    every (structure set, cost) it has optimized, ordered by structure-set
    inclusion: a recorded superset configuration's cost is a lower bound on
    the current one's (more structures can only help), a recorded subset's
    an upper bound.  {!cost_interval} serves these bounds to the frugal
    costing tier without any optimizer call. *)

module Query = Relax_sql.Query
module Config = Relax_physical.Config
module Catalog = Relax_catalog.Catalog

type shard = {
  shard_lock : Mutex.t;
  resolved : Condition.t;
      (** signalled under [shard_lock] when an in-flight optimize lands *)
  plans : (string, Plan.t) Hashtbl.t;
  inflight : (string, unit) Hashtbl.t;
  hits : int Atomic.t;
  misses : int Atomic.t;
}

type t = {
  catalog : Catalog.t;
  shards : shard array;
  optimizer_calls : int Atomic.t;  (** optimization calls actually executed *)
  cache_hits : int Atomic.t;
  bounds_lock : Mutex.t;  (** guards [bounds] *)
  bounds : (string, (string list * float) list ref) Hashtbl.t;
      (** per qid: (sorted fingerprint entries, optimized plan cost) of
          every sub-configuration ever optimized for that query *)
}

let shard_bits = 4
let shard_count = 1 lsl shard_bits

let create catalog =
  {
    catalog;
    shards =
      Array.init shard_count (fun _ ->
          {
            shard_lock = Mutex.create ();
            resolved = Condition.create ();
            plans = Hashtbl.create 32;
            inflight = Hashtbl.create 4;
            hits = Atomic.make 0;
            misses = Atomic.make 0;
          });
    optimizer_calls = Atomic.make 0;
    cache_hits = Atomic.make 0;
    bounds_lock = Mutex.create ();
    bounds = Hashtbl.create 32;
  }

let stats t = (Atomic.get t.optimizer_calls, Atomic.get t.cache_hits)

let shard_stats t =
  Array.map (fun sh -> (Atomic.get sh.hits, Atomic.get sh.misses)) t.shards

let cached_plans t =
  Array.fold_left
    (fun acc sh ->
      acc + Mutex.protect sh.shard_lock (fun () -> Hashtbl.length sh.plans))
    0 t.shards

let key config ~qid ~tables =
  qid ^ "#" ^ Config.fingerprint_for_tables config tables

let shard_index k = Hashtbl.hash k land (shard_count - 1)
let series_of_shard i = Printf.sprintf "shard%02d" i

(* --- the bound-aware (structure set, cost) record ----------------------- *)

(* a fingerprint as its sorted entry list; the empty fingerprint has no
   entries *)
let fingerprint_entries fp = if fp = "" then [] else String.split_on_char '|' fp

let is_clustered_entry e = String.length e >= 3 && String.sub e 0 3 = "cx["

(* [a] ⊆ [b] as sorted string lists (merge walk) *)
let rec subset_sorted a b =
  match (a, b) with
  | [], _ -> true
  | _ :: _, [] -> false
  | x :: xs, y :: ys ->
    let c = String.compare x y in
    if c = 0 then subset_sorted xs ys
    else if c > 0 then subset_sorted a ys
    else false

(* Structure-set inclusion only orders costs when the two configurations
   store the relations identically: a clustered index replaces its owner's
   heap, so any difference in cx entries changes the physical base data and
   breaks cost monotonicity.  *)
let comparable_le a b =
  subset_sorted a b
  && List.filter is_clustered_entry a = List.filter is_clustered_entry b

(* The store is bounded: a long-running service re-tunes thousands of
   times against the same Whatif, and an append-only history is both a
   leak and a per-lookup slowdown (every {!cost_interval} folds the whole
   list).  Each qid keeps at most [max_bounds_per_qid] records, newest
   first.  Identical structure sets are deduplicated (they can only recur
   after an eviction re-optimizes a key, and then the new cost supersedes
   the old).  On overflow we drop a *dominated* record when one exists — A
   is dominated when some superset B with cost >= A's covers every lower
   bound A could serve AND some subset B' with cost <= A's covers every
   upper bound — and the oldest record otherwise.  Bounds are advisory
   (the frugal tier only uses them to skip optimizer calls), so any
   eviction policy is safe; this one just keeps the tightest survivors. *)
let max_bounds_per_qid = 32

let dominated l (a_entries, a_cost) =
  let covers_lower (b_entries, b_cost) =
    b_cost >= a_cost
    && a_entries != b_entries
    && comparable_le a_entries b_entries
  and covers_upper (b_entries, b_cost) =
    b_cost <= a_cost
    && a_entries != b_entries
    && comparable_le b_entries a_entries
  in
  List.exists covers_lower l && List.exists covers_upper l

let record_bounds t ~qid ~fp (cost : float) =
  let entries = fingerprint_entries fp in
  Mutex.protect t.bounds_lock (fun () ->
      match Hashtbl.find_opt t.bounds qid with
      | None -> Hashtbl.add t.bounds qid (ref [ (entries, cost) ])
      | Some l ->
        let deduped = List.filter (fun (e, _) -> e <> entries) !l in
        let trimmed =
          if List.length deduped < max_bounds_per_qid then deduped
          else begin
            (* at capacity: drop a dominated record, else the oldest *)
            match List.filter (fun r -> not (dominated deduped r)) deduped with
            | survivors when List.length survivors < List.length deduped ->
              (* removing every dominated record at once is fine — each
                 had a surviving dominator on both sides *)
              survivors
            | _ -> (
              match List.rev deduped with
              | [] -> []
              | _ :: rev_rest -> List.rev rev_rest)
          end
        in
        l := (entries, cost) :: trimmed)

(** Total advisory-bound records currently held, across all qids: the
    observable the bounded-growth regression test (and the daemon's
    window-size gauge) watches. *)
let bounds_size t =
  Mutex.protect t.bounds_lock (fun () ->
      Hashtbl.fold (fun _ l acc -> acc + List.length !l) t.bounds 0)

(** Drop every advisory bound.  Plans stay cached. *)
let reset_bounds t =
  Mutex.protect t.bounds_lock (fun () -> Hashtbl.reset t.bounds)

(* the workload qid behind a cache key or bounds qid: strip the
   select-component suffix, then anything from the '#' fingerprint
   separator on *)
let owner_qid k =
  let k = match String.index_opt k '#' with
    | Some i -> String.sub k 0 i
    | None -> k
  in
  Query.base_qid k

(** Evict every cached plan and advisory bound whose owning workload qid
    fails [keep].  The daemon calls this on window rotation: statements
    that left the sliding window stop pinning plans and bounds, which is
    what keeps a long-running service's footprint proportional to the
    window, not the history.  DML select components ([qid ^ ":select"])
    are evicted with their owner. *)
let evict t ~keep =
  Array.iter
    (fun sh ->
      Mutex.protect sh.shard_lock (fun () ->
          let doomed =
            Hashtbl.fold
              (fun k _ acc -> if keep (owner_qid k) then acc else k :: acc)
              sh.plans []
          in
          List.iter (Hashtbl.remove sh.plans) doomed))
    t.shards;
  Mutex.protect t.bounds_lock (fun () ->
      let doomed =
        Hashtbl.fold
          (fun qid _ acc -> if keep (owner_qid qid) then acc else qid :: acc)
          t.bounds []
      in
      List.iter (Hashtbl.remove t.bounds) doomed)

(** Advisory (lower, upper) bounds on the optimized plan cost of [qid]
    under [config], from costs already paid for comparable configurations:
    a recorded superset's cost bounds from below, a recorded subset's from
    above.  [(0., infinity)] when nothing comparable was ever optimized.
    No optimizer call is made. *)
let cost_interval t config ~qid ~tables : float * float =
  let mine = fingerprint_entries (Config.fingerprint_for_tables config tables) in
  Mutex.protect t.bounds_lock (fun () ->
      match Hashtbl.find_opt t.bounds qid with
      | None -> (0.0, infinity)
      | Some l ->
        List.fold_left
          (fun (lo, hi) (entries, cost) ->
            let lo =
              if comparable_le mine entries then Float.max lo cost else lo
            in
            let hi =
              if comparable_le entries mine then Float.min hi cost else hi
            in
            (lo, hi))
          (0.0, infinity) !l)

(* --- plan lookup and optimization --------------------------------------- *)

let count_hit t sh i ~qid =
  Atomic.incr t.cache_hits;
  Atomic.incr sh.hits;
  Relax_obs.Probe.cache_hit ~qid;
  Relax_obs.Probe.counter_series "whatif.cache_hits"
    ~series:(series_of_shard i)
    (float_of_int (Atomic.get sh.hits))

(** Memoized plan for [qid] under [config], when one is already cached.
    Never optimizes and counts nothing: a peek for the frugal evaluation
    tier, which substitutes a bound-costed plan on a miss instead of
    paying the optimizer call. *)
let find_cached t config ~qid ~tables : Plan.t option =
  let k = key config ~qid ~tables in
  let sh = t.shards.(shard_index k) in
  Mutex.protect sh.shard_lock (fun () -> Hashtbl.find_opt sh.plans k)

(** Optimized plan for a select query under [config] (memoized). *)
let plan_select t config ~qid (sq : Query.select_query) : Plan.t =
  let fp = Config.fingerprint_for_tables config sq.body.tables in
  let k = qid ^ "#" ^ fp in
  let i = shard_index k in
  let sh = t.shards.(i) in
  Mutex.lock sh.shard_lock;
  (* wait out any in-flight optimization of the same key rather than
     duplicating its optimizer call (request-level dedup) *)
  let rec await () =
    match Hashtbl.find_opt sh.plans k with
    | Some p -> Some p
    | None ->
      if Hashtbl.mem sh.inflight k then begin
        Condition.wait sh.resolved sh.shard_lock;
        await ()
      end
      else None
  in
  match await () with
  | Some p ->
    Mutex.unlock sh.shard_lock;
    count_hit t sh i ~qid;
    p
  | None ->
    Hashtbl.add sh.inflight k ();
    Mutex.unlock sh.shard_lock;
    let finalize () =
      Mutex.protect sh.shard_lock (fun () ->
          Hashtbl.remove sh.inflight k;
          Condition.broadcast sh.resolved)
    in
    let p =
      match
        Atomic.incr t.optimizer_calls;
        Atomic.incr sh.misses;
        Relax_obs.Probe.what_if_call ~qid;
        Relax_obs.Probe.counter "whatif.calls"
          (float_of_int (Atomic.get t.optimizer_calls));
        Relax_obs.Probe.counter_series "whatif.cache_misses"
          ~series:(series_of_shard i)
          (float_of_int (Atomic.get sh.misses));
        Relax_obs.Probe.span "whatif.optimize" (fun () ->
            Optimizer.optimize t.catalog config sq)
      with
      | p ->
        Mutex.protect sh.shard_lock (fun () -> Hashtbl.replace sh.plans k p);
        finalize ();
        p
      | exception e ->
        finalize ();
        raise e
    in
    record_bounds t ~qid ~fp p.cost;
    p

(** Cost of one workload entry under [config]: plan cost for selects;
    select-component cost plus shell cost for updates (§3.6). *)
let entry_cost t config (e : Query.entry) : float =
  match e.stmt with
  | Select sq -> (plan_select t config ~qid:e.qid sq).cost
  | Dml d ->
    let select_part, _shell = Query.split_update d in
    let select_cost =
      match select_part with
      | None -> 0.0
      | Some sq -> (plan_select t config ~qid:(Query.select_qid e.qid) sq).cost
    in
    let env = Env.make t.catalog config in
    select_cost +. Update_cost.shell_cost env config d

(** Weighted total workload cost under [config]. *)
let workload_cost t config (w : Query.workload) : float =
  List.fold_left (fun acc e -> acc +. (e.Query.weight *. entry_cost t config e)) 0.0 w

(** Per-entry costs, weighted. *)
let per_entry_costs t config (w : Query.workload) : (string * float) list =
  List.map (fun (e : Query.entry) -> (e.qid, e.weight *. entry_cost t config e)) w
