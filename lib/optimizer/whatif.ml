(** The what-if costing layer.

    Hypothetical configurations are plain values here, so "simulating" a
    structure is free; what this layer adds is memoization: a query's plan
    only depends on the sub-configuration relevant to its tables, so two
    configurations that agree there share one optimization call.  This is
    the mechanism behind the paper's observation that a relaxed
    configuration only requires re-optimizing the queries that used the
    replaced structures.

    The plan cache is sharded by key hash.  Reads are lock-free: each
    shard publishes a read-mostly persistent-map snapshot in an
    [Atomic.t], so a cache hit costs one atomic load and a map lookup —
    no mutex, whatever the number of reading domains.  Writers insert
    into the shard's hashtable under its mutex and publish the extended
    snapshot before releasing it, so a snapshot read never observes less
    than the last completed insert.  An optimization runs outside any
    shard lock (it can take milliseconds); concurrent requests for the
    same key are deduplicated through a per-shard in-flight set: the
    first requester optimizes, later ones wait on the shard's condition
    variable and count a cache hit, so the same key never pays two
    optimizer calls whatever the parallelism.

    Beyond exact-key memoization the layer keeps a per-query record of
    every (structure set, cost) it has optimized, ordered by structure-set
    inclusion: a recorded superset configuration's cost is a lower bound on
    the current one's (more structures can only help), a recorded subset's
    an upper bound.  {!cost_interval} serves these bounds to the frugal
    costing tier without any optimizer call.  The bound store is sharded
    by qid hash with the same snapshot-publish discipline, so the
    advisory lookups every worker domain makes during candidate scoring
    no longer serialize on one global mutex.  The store can be persisted
    to disk ({!save_bounds} / {!load_bounds}) keyed by the catalog
    fingerprint: a reloaded record whose configuration fingerprint
    matches exactly yields a point interval — repeated [tune]/[bench]
    invocations amortize their costing. *)

module Query = Relax_sql.Query
module Config = Relax_physical.Config
module Catalog = Relax_catalog.Catalog
module J = Relax_obs.Json
module Smap = Map.Make (String)

type shard = {
  shard_lock : Mutex.t;
  resolved : Condition.t;
      (** signalled under [shard_lock] when an in-flight optimize lands *)
  plans : (string, Plan.t) Hashtbl.t;  (** source of truth, under the lock *)
  snapshot : Plan.t Smap.t Atomic.t;
      (** read-mostly published copy: lock-free lookups.  Extended under
          [shard_lock] on every insert, so it never trails a completed
          write. *)
  inflight : (string, unit) Hashtbl.t;
  hits : int Atomic.t;
  misses : int Atomic.t;
}

(* one shard of the advisory bound store; see [record_bounds] *)
type bound_shard = {
  b_lock : Mutex.t;  (** guards [b_tbl] and the [b_snapshot] publish *)
  b_tbl : (string, (string list * float) list) Hashtbl.t;
      (** per qid: (sorted fingerprint entries, optimized plan cost) of
          every sub-configuration ever optimized for that query *)
  b_snapshot : (string list * float) list Smap.t Atomic.t;
}

type t = {
  catalog : Catalog.t;
  shards : shard array;
  optimizer_calls : int Atomic.t;  (** optimization calls actually executed *)
  cache_hits : int Atomic.t;
  bound_shards : bound_shard array;
}

let shard_bits = 4
let shard_count = 1 lsl shard_bits

let create catalog =
  {
    catalog;
    shards =
      Array.init shard_count (fun _ ->
          {
            shard_lock = Mutex.create ();
            resolved = Condition.create ();
            plans = Hashtbl.create 32;
            snapshot = Atomic.make Smap.empty;
            inflight = Hashtbl.create 4;
            hits = Atomic.make 0;
            misses = Atomic.make 0;
          });
    optimizer_calls = Atomic.make 0;
    cache_hits = Atomic.make 0;
    bound_shards =
      Array.init shard_count (fun _ ->
          {
            b_lock = Mutex.create ();
            b_tbl = Hashtbl.create 16;
            b_snapshot = Atomic.make Smap.empty;
          });
  }

let stats t = (Atomic.get t.optimizer_calls, Atomic.get t.cache_hits)

let shard_stats t =
  Array.map (fun sh -> (Atomic.get sh.hits, Atomic.get sh.misses)) t.shards

let cached_plans t =
  Array.fold_left
    (fun acc sh ->
      acc + Mutex.protect sh.shard_lock (fun () -> Hashtbl.length sh.plans))
    0 t.shards

let key config ~qid ~tables =
  qid ^ "#" ^ Config.fingerprint_for_tables config tables

let shard_index k = Hashtbl.hash k land (shard_count - 1)
let series_of_shard i = Printf.sprintf "shard%02d" i

(* publish [k -> p] into the shard: hashtable insert and snapshot
   extension under the same critical section *)
let publish_plan sh k p =
  Mutex.protect sh.shard_lock (fun () ->
      Hashtbl.replace sh.plans k p;
      Atomic.set sh.snapshot (Smap.add k p (Atomic.get sh.snapshot)))

(* --- the bound-aware (structure set, cost) record ----------------------- *)

(* a fingerprint as its sorted entry list; the empty fingerprint has no
   entries *)
let fingerprint_entries fp = if fp = "" then [] else String.split_on_char '|' fp

let is_clustered_entry e = String.length e >= 3 && String.sub e 0 3 = "cx["

(* [a] ⊆ [b] as sorted string lists (merge walk) *)
let rec subset_sorted a b =
  match (a, b) with
  | [], _ -> true
  | _ :: _, [] -> false
  | x :: xs, y :: ys ->
    let c = String.compare x y in
    if c = 0 then subset_sorted xs ys
    else if c > 0 then subset_sorted a ys
    else false

(* Structure-set inclusion only orders costs when the two configurations
   store the relations identically: a clustered index replaces its owner's
   heap, so any difference in cx entries changes the physical base data and
   breaks cost monotonicity.  *)
let comparable_le a b =
  subset_sorted a b
  && List.filter is_clustered_entry a = List.filter is_clustered_entry b

(* The store is bounded: a long-running service re-tunes thousands of
   times against the same Whatif, and an append-only history is both a
   leak and a per-lookup slowdown (every {!cost_interval} folds the whole
   list).  Each qid keeps at most [max_bounds_per_qid] records, newest
   first.  Identical structure sets are deduplicated (they can only recur
   after an eviction re-optimizes a key, and then the new cost supersedes
   the old).  On overflow we drop a *dominated* record when one exists — A
   is dominated when some superset B with cost >= A's covers every lower
   bound A could serve AND some subset B' with cost <= A's covers every
   upper bound — and the oldest record otherwise.  Bounds are advisory
   (the frugal tier only uses them to skip optimizer calls), so any
   eviction policy is safe; this one just keeps the tightest survivors. *)
let max_bounds_per_qid = 32

let dominated l (a_entries, a_cost) =
  let covers_lower (b_entries, b_cost) =
    b_cost >= a_cost
    && a_entries != b_entries
    && comparable_le a_entries b_entries
  and covers_upper (b_entries, b_cost) =
    b_cost <= a_cost
    && a_entries != b_entries
    && comparable_le b_entries a_entries
  in
  List.exists covers_lower l && List.exists covers_upper l

let bound_shard_of t qid = t.bound_shards.(Hashtbl.hash qid land (shard_count - 1))

let record_bounds t ~qid ~fp (cost : float) =
  let entries = fingerprint_entries fp in
  let bsh = bound_shard_of t qid in
  Mutex.protect bsh.b_lock (fun () ->
      let l = Option.value ~default:[] (Hashtbl.find_opt bsh.b_tbl qid) in
      let deduped = List.filter (fun (e, _) -> e <> entries) l in
      let trimmed =
        if List.length deduped < max_bounds_per_qid then deduped
        else begin
          (* at capacity: drop a dominated record, else the oldest *)
          match List.filter (fun r -> not (dominated deduped r)) deduped with
          | survivors when List.length survivors < List.length deduped ->
            (* removing every dominated record at once is fine — each
               had a surviving dominator on both sides *)
            survivors
          | _ -> (
            match List.rev deduped with
            | [] -> []
            | _ :: rev_rest -> List.rev rev_rest)
        end
      in
      let l' = (entries, cost) :: trimmed in
      Hashtbl.replace bsh.b_tbl qid l';
      Atomic.set bsh.b_snapshot (Smap.add qid l' (Atomic.get bsh.b_snapshot)))

(** Total advisory-bound records currently held, across all qids: the
    observable the bounded-growth regression test (and the daemon's
    window-size gauge) watches. *)
let bounds_size t =
  Array.fold_left
    (fun acc bsh ->
      acc
      + Mutex.protect bsh.b_lock (fun () ->
            Hashtbl.fold (fun _ l n -> n + List.length l) bsh.b_tbl 0))
    0 t.bound_shards

(** Drop every advisory bound.  Plans stay cached. *)
let reset_bounds t =
  Array.iter
    (fun bsh ->
      Mutex.protect bsh.b_lock (fun () ->
          Hashtbl.reset bsh.b_tbl;
          Atomic.set bsh.b_snapshot Smap.empty))
    t.bound_shards

(* the workload qid behind a cache key or bounds qid: strip the
   select-component suffix, then anything from the '#' fingerprint
   separator on *)
let owner_qid k =
  let k = match String.index_opt k '#' with
    | Some i -> String.sub k 0 i
    | None -> k
  in
  Query.base_qid k

(** Evict every cached plan and advisory bound whose owning workload qid
    fails [keep].  The daemon calls this on window rotation: statements
    that left the sliding window stop pinning plans and bounds, which is
    what keeps a long-running service's footprint proportional to the
    window, not the history.  DML select components ([qid ^ ":select"])
    are evicted with their owner. *)
let evict t ~keep =
  Array.iter
    (fun sh ->
      Mutex.protect sh.shard_lock (fun () ->
          let doomed =
            Hashtbl.fold
              (fun k _ acc -> if keep (owner_qid k) then acc else k :: acc)
              sh.plans []
          in
          List.iter (Hashtbl.remove sh.plans) doomed;
          Atomic.set sh.snapshot
            (List.fold_left
               (fun m k -> Smap.remove k m)
               (Atomic.get sh.snapshot) doomed)))
    t.shards;
  Array.iter
    (fun bsh ->
      Mutex.protect bsh.b_lock (fun () ->
          let doomed =
            Hashtbl.fold
              (fun qid _ acc -> if keep (owner_qid qid) then acc else qid :: acc)
              bsh.b_tbl []
          in
          List.iter (Hashtbl.remove bsh.b_tbl) doomed;
          (* re-publish the snapshot from the surviving table while
             [b_lock] is still held, so snapshot and table move together *)
          Atomic.set bsh.b_snapshot
            (Hashtbl.fold
               (fun qid l acc -> Smap.add qid l acc)
               bsh.b_tbl Smap.empty)))
    t.bound_shards

(** Advisory (lower, upper) bounds on the optimized plan cost of [qid]
    under [config], from costs already paid for comparable configurations:
    a recorded superset's cost bounds from below, a recorded subset's from
    above.  [(0., infinity)] when nothing comparable was ever optimized.
    No optimizer call, no lock: the per-qid record list is read off the
    owning shard's published snapshot, so concurrent scoring domains
    never serialize here. *)
let cost_interval t config ~qid ~tables : float * float =
  let mine = fingerprint_entries (Config.fingerprint_for_tables config tables) in
  let bsh = bound_shard_of t qid in
  match Smap.find_opt qid (Atomic.get bsh.b_snapshot) with
  | None -> (0.0, infinity)
  | Some l ->
    List.fold_left
      (fun (lo, hi) (entries, cost) ->
        let lo =
          if comparable_le mine entries then Float.max lo cost else lo
        in
        let hi =
          if comparable_le entries mine then Float.min hi cost else hi
        in
        (lo, hi))
      (0.0, infinity) l

(* --- plan lookup and optimization --------------------------------------- *)

(* Counter increments read back through [fetch_and_add], never a
   separate [Atomic.get]: under contention incr-then-get pairs emit
   duplicated (non-monotonic) values into the counter tracks — the
   double-counting the first real multi-core run surfaced. *)
let count_hit t sh i ~qid =
  Atomic.incr t.cache_hits;
  let shard_hits = 1 + Atomic.fetch_and_add sh.hits 1 in
  Relax_obs.Probe.cache_hit ~qid;
  Relax_obs.Probe.counter_series "whatif.cache_hits"
    ~series:(series_of_shard i)
    (float_of_int shard_hits)

(** Memoized plan for [qid] under [config], when one is already cached.
    Never optimizes and counts nothing: a peek for the frugal evaluation
    tier, which substitutes a bound-costed plan on a miss instead of
    paying the optimizer call.  Lock-free: one atomic snapshot load. *)
let find_cached t config ~qid ~tables : Plan.t option =
  let k = key config ~qid ~tables in
  let sh = t.shards.(shard_index k) in
  Smap.find_opt k (Atomic.get sh.snapshot)

(** Optimized plan for a select query under [config] (memoized). *)
let plan_select t config ~qid (sq : Query.select_query) : Plan.t =
  let fp = Config.fingerprint_for_tables config sq.body.tables in
  let k = qid ^ "#" ^ fp in
  let i = shard_index k in
  let sh = t.shards.(i) in
  (* fast path: the published snapshot, no lock *)
  match Smap.find_opt k (Atomic.get sh.snapshot) with
  | Some p ->
    count_hit t sh i ~qid;
    p
  | None -> (
    Mutex.lock sh.shard_lock;
    (* wait out any in-flight optimization of the same key rather than
       duplicating its optimizer call (request-level dedup) *)
    let rec await () =
      match Hashtbl.find_opt sh.plans k with
      | Some p -> Some p
      | None ->
        if Hashtbl.mem sh.inflight k then begin
          Condition.wait sh.resolved sh.shard_lock;
          await ()
        end
        else None
    in
    match await () with
    | Some p ->
      Mutex.unlock sh.shard_lock;
      count_hit t sh i ~qid;
      p
    | None ->
      Hashtbl.add sh.inflight k ();
      Mutex.unlock sh.shard_lock;
      let finalize () =
        Mutex.protect sh.shard_lock (fun () ->
            Hashtbl.remove sh.inflight k;
            Condition.broadcast sh.resolved)
      in
      let p =
        match
          let calls = 1 + Atomic.fetch_and_add t.optimizer_calls 1 in
          let shard_misses = 1 + Atomic.fetch_and_add sh.misses 1 in
          Relax_obs.Probe.what_if_call ~qid;
          Relax_obs.Probe.counter "whatif.calls" (float_of_int calls);
          Relax_obs.Probe.counter_series "whatif.cache_misses"
            ~series:(series_of_shard i)
            (float_of_int shard_misses);
          Relax_obs.Probe.span "whatif.optimize" (fun () ->
              Optimizer.optimize t.catalog config sq)
        with
        | p ->
          publish_plan sh k p;
          finalize ();
          p
        | exception e ->
          finalize ();
          raise e
      in
      record_bounds t ~qid ~fp p.cost;
      p)

(** Cost of one workload entry under [config]: plan cost for selects;
    select-component cost plus shell cost for updates (§3.6). *)
let entry_cost t config (e : Query.entry) : float =
  match e.stmt with
  | Select sq -> (plan_select t config ~qid:e.qid sq).cost
  | Dml d ->
    let select_part, _shell = Query.split_update d in
    let select_cost =
      match select_part with
      | None -> 0.0
      | Some sq -> (plan_select t config ~qid:(Query.select_qid e.qid) sq).cost
    in
    let env = Env.make t.catalog config in
    select_cost +. Update_cost.shell_cost env config d

(** Weighted total workload cost under [config]. *)
let workload_cost t config (w : Query.workload) : float =
  List.fold_left (fun acc e -> acc +. (e.Query.weight *. entry_cost t config e)) 0.0 w

(** Per-entry costs, weighted. *)
let per_entry_costs t config (w : Query.workload) : (string * float) list =
  List.map (fun (e : Query.entry) -> (e.qid, e.weight *. entry_cost t config e)) w

(* --- on-disk persistence of the advisory bound store -------------------- *)

(* The durable format deliberately stores only (qid, configuration
   fingerprint, cost) triples — not plans: a cost record is a few dozen
   bytes and, reloaded, serves {!cost_interval} a *point* interval
   whenever the exact fingerprint recurs, which is what lets a repeated
   [tune]/[bench] invocation skip the optimizer call entirely through
   the frugal tier.  The file is keyed by {!Catalog.fingerprint}: costs
   are only meaningful against the statistics that produced them, so a
   mismatched catalog refuses to load. *)

let bounds_to_json t : J.t =
  let records =
    Array.fold_left
      (fun acc bsh ->
        Mutex.protect bsh.b_lock (fun () ->
            Hashtbl.fold (fun qid l acc -> (qid, l) :: acc) bsh.b_tbl acc))
      [] t.bound_shards
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  J.Obj
    [
      ("version", J.Int 1);
      ("catalog", J.String (Catalog.fingerprint t.catalog));
      ( "bounds",
        J.List
          (List.concat_map
             (fun (qid, l) ->
               (* oldest first, so reloading through [record_bounds]
                  (which prepends) restores newest-first order *)
               List.rev_map
                 (fun (entries, cost) ->
                   J.Obj
                     [
                       ("qid", J.String qid);
                       ("fp", J.String (String.concat "|" entries));
                       ("cost", J.Float cost);
                     ])
                 l)
             records) );
    ]

let save_bounds t ~file : (int, string) result =
  match bounds_to_json t with
  | json -> (
    let n =
      match json with
      | J.Obj fields -> (
        match List.assoc_opt "bounds" fields with
        | Some (J.List l) -> List.length l
        | _ -> 0)
      | _ -> 0
    in
    try
      Out_channel.with_open_bin file (fun oc ->
          Out_channel.output_string oc (J.to_string json);
          Out_channel.output_char oc '\n');
      Ok n
    with Sys_error msg -> Error msg)

let load_bounds t ~file : (int, string) result =
  let ( let* ) = Result.bind in
  let* contents =
    match In_channel.with_open_bin file In_channel.input_all with
    | c -> Ok c
    | exception Sys_error msg -> Error msg
  in
  let* json = J.of_string (String.trim contents) in
  let member name =
    match J.member name json with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "what-if cache: missing field %S" name)
  in
  let* version = member "version" in
  let* () =
    match version with
    | J.Int 1 -> Ok ()
    | _ -> Error "what-if cache: unsupported version"
  in
  let* cat_fp = member "catalog" in
  let* () =
    match cat_fp with
    | J.String fp when fp = Catalog.fingerprint t.catalog -> Ok ()
    | J.String _ ->
      Error
        "what-if cache: catalog fingerprint mismatch (stale schema or \
         statistics); refusing to load"
    | _ -> Error "what-if cache: catalog field is not a string"
  in
  let* bounds = member "bounds" in
  let* records =
    match bounds with
    | J.List l -> Ok l
    | _ -> Error "what-if cache: bounds field is not a list"
  in
  let* loaded =
    List.fold_left
      (fun acc r ->
        let* n = acc in
        let field name =
          match J.member name r with
          | Some v -> Ok v
          | None ->
            Error (Printf.sprintf "what-if cache: record missing %S" name)
        in
        let* qid = field "qid" in
        let* fp = field "fp" in
        let* cost = field "cost" in
        match (qid, fp, J.to_float cost) with
        | J.String qid, J.String fp, Some cost ->
          record_bounds t ~qid ~fp cost;
          Ok (n + 1)
        | _ -> Error "what-if cache: malformed record")
      (Ok 0) records
  in
  Ok loaded
