(** View matching: decide whether an SPJG block can be rewritten over a
    materialized view, and construct the compensating operators.

    Subsumption tests follow the paper: the FROM sets must be equal; the
    view's "other" conjuncts must be structurally included in the query's
    (modulo column equivalence); joins and ranges are checked with simple
    inclusion/implication tests; a grouped view matches only queries that
    group at least as coarsely.  Compensation can add residual range/other
    filters, residual join filters, and a re-grouping with re-aggregation. *)

open Relax_sql.Types
module Query = Relax_sql.Query
module Predicate = Relax_sql.Predicate
module Expr = Relax_sql.Expr
module View = Relax_physical.View

type result = {
  view : View.t;
  residual_ranges : Predicate.range list;  (** on view columns, sargable *)
  residual_others : Expr.t list;  (** on view columns *)
  regroup : (column list * Query.select_item list) option;
      (** compensating group-by: keys and output items over view columns *)
  needed_cols : Column_set.t;  (** view columns the rewrite reads *)
}

exception No_match

(* Exposure: a query column is available from the view if the view outputs
   it, or outputs a column equal to it in every view row (equivalence under
   the view's own join predicates). *)
let exposure (view : View.t) =
  let vdef = View.definition view in
  let vequiv = Query.column_equiv vdef.joins in
  fun (c : column) : column option ->
    match View.view_column_of_base view c with
    | Some vc -> Some vc
    | None ->
      List.find_map
        (fun (it : Query.select_item) ->
          match it with
          | Item_col c' when vequiv c c' -> Some (View.column_of_item view it)
          | Item_col _ | Item_agg _ -> None)
        vdef.select

let expose_exn expose c =
  match expose c with Some vc -> vc | None -> raise No_match

(* Map an aggregate request onto the view's outputs: returns the select item
   (over view columns) that re-computes it in a compensating group-by. *)
let map_aggregate view expose (f : Query.agg_fn) (arg : column option) :
    Query.select_item =
  let find_agg f' c' =
    let target = View.item_name (Item_agg (f', Some c')) in
    List.find_map
      (fun (it : Query.select_item) ->
        if View.item_name it = target then Some (View.column_of_item view it)
        else None)
      (View.definition view).select
  in
  let grouped = (View.definition view).group_by <> [] in
  match (f, arg) with
  | Count, None ->
    if not grouped then Query.Item_agg (Count, None)
    else begin
      (* count over groups = sum of the stored per-group counts *)
      let target = View.item_name (Item_agg (Count, None)) in
      match
        List.find_map
          (fun (it : Query.select_item) ->
            if View.item_name it = target then
              Some (View.column_of_item view it)
            else None)
          (View.definition view).select
      with
      | Some vc -> Query.Item_agg (Sum, Some vc)
      | None -> raise No_match
    end
  | Count, Some c ->
    if not grouped then
      Query.Item_agg (Count, Some (expose_exn expose c))
    else begin
      match find_agg Count c with
      | Some vc -> Query.Item_agg (Sum, Some vc)
      | None -> (
        match expose c with
        | Some _ -> raise No_match (* per-row multiplicity lost by grouping *)
        | None -> raise No_match)
    end
  | Sum, Some c ->
    if not grouped then Query.Item_agg (Sum, Some (expose_exn expose c))
    else begin
      match find_agg Sum c with
      | Some vc -> Query.Item_agg (Sum, Some vc)
      | None -> raise No_match
    end
  | Min, Some c ->
    if not grouped then Query.Item_agg (Min, Some (expose_exn expose c))
    else begin
      match find_agg Min c with
      | Some vc -> Query.Item_agg (Min, Some vc)
      | None -> (
        (* a grouping column is constant per group: min = the value *)
        match expose c with
        | Some vc
          when List.exists
                 (fun g -> View.view_column_of_base view g = Some vc)
                 (View.definition view).group_by -> Query.Item_agg (Min, Some vc)
        | _ -> raise No_match)
    end
  | Max, Some c ->
    if not grouped then Query.Item_agg (Max, Some (expose_exn expose c))
    else begin
      match find_agg Max c with
      | Some vc -> Query.Item_agg (Max, Some vc)
      | None -> raise No_match
    end
  | Avg, Some c ->
    if not grouped then Query.Item_agg (Avg, Some (expose_exn expose c))
    else raise No_match (* AVG is not re-aggregable without sum+count *)
  | (Sum | Min | Max | Avg), None -> raise No_match

(** Try to match query block [q] against [view].  [q.select] defines the
    required outputs; the result, if any, carries the residual predicates
    and compensating group-by expressed over the view's columns. *)
let try_match (view : View.t) (q : Query.spjg) : result option =
  let vdef = View.definition view in
  if vdef.tables <> q.tables then None
  else begin
    try
      let qequiv = Query.column_equiv q.joins in
      let vequiv = Query.column_equiv vdef.joins in
      let expose = exposure view in
      (* JV ⊆ JQ: every view join must be enforced by the query *)
      List.iter
        (fun (j : Predicate.join) ->
          if not (qequiv j.left j.right) then raise No_match)
        vdef.joins;
      (* residual query joins: not already enforced inside the view *)
      let residual_joins =
        List.filter
          (fun (j : Predicate.join) -> not (vequiv j.left j.right))
          q.joins
      in
      let residual_join_exprs =
        List.map
          (fun (j : Predicate.join) ->
            Expr.Cmp
              (Eq, Col (expose_exn expose j.left), Col (expose_exn expose j.right)))
          residual_joins
      in
      (* Ranges.  Every view range must be implied by a query range on the
         same column (the view must contain all rows the query needs);
         query ranges that are strictly tighter, or on columns the view does
         not restrict, become residual predicates over view columns. *)
      List.iter
        (fun (rv : Predicate.range) ->
          let satisfied =
            List.exists
              (fun (rq : Predicate.range) ->
                Column.equal rq.rcol rv.rcol && Predicate.implies ~by:rq rv)
              q.ranges
          in
          if not satisfied then raise No_match)
        vdef.ranges;
      let residual_ranges =
        List.filter_map
          (fun (rq : Predicate.range) ->
            let exact =
              List.exists
                (fun (rv : Predicate.range) ->
                  Column.equal rv.rcol rq.rcol && Predicate.range_equal rv rq)
                vdef.ranges
            in
            if exact then None
            else
              let vc = expose_exn expose rq.rcol in
              Some { rq with rcol = vc })
          q.ranges
      in
      (* Others: OV's conjuncts must appear in OQ (structural equality
         modulo column equivalence); the rest of OQ is compensated. *)
      List.iter
        (fun ov ->
          if not (List.exists (Expr.equal_modulo qequiv ov) q.others) then
            raise No_match)
        vdef.others;
      let residual_others =
        List.filter_map
          (fun oq ->
            if List.exists (Expr.equal_modulo qequiv oq) vdef.others then None
            else
              Some (Expr.map_columns (expose_exn expose) oq))
          q.others
        @ residual_join_exprs
      in
      (* Grouping and outputs *)
      let q_grouped = q.group_by <> [] || Query.has_aggregates q in
      let v_grouped = vdef.group_by <> [] in
      let has_residual =
        residual_ranges <> [] || residual_others <> []
      in
      let outputs_and_regroup () =
        if not q_grouped then begin
          if v_grouped then raise No_match
            (* a grouped view lost row multiplicity: cannot serve SPJ *)
          else begin
            let out_cols =
              List.filter_map
                (fun (it : Query.select_item) ->
                  match it with
                  | Item_col c -> Some (expose_exn expose c)
                  | Item_agg _ -> raise No_match)
                q.select
            in
            (Column_set.of_list out_cols, None)
          end
        end
        else begin
          (* query groups (or computes a scalar aggregate) *)
          if v_grouped then begin
            (* GQ must be ⊆ GV: each query grouping column must be a view
               grouping column (modulo view equivalence) *)
            List.iter
              (fun g ->
                let ok =
                  List.exists (fun gv -> vequiv g gv) vdef.group_by
                in
                if not ok then raise No_match)
              q.group_by
          end;
          let same_grouping =
            v_grouped
            && List.length q.group_by = List.length vdef.group_by
            && List.for_all
                 (fun gv -> List.exists (fun g -> vequiv g gv) q.group_by)
                 vdef.group_by
          in
          if same_grouping && not has_residual then begin
            (* exact: view rows are exactly the query's groups *)
            let out_cols =
              List.map
                (fun (it : Query.select_item) ->
                  match it with
                  | Query.Item_col c -> expose_exn expose c
                  | Query.Item_agg (f, arg) -> (
                    let target =
                      match arg with
                      | Some c -> View.item_name (Item_agg (f, Some c))
                      | None -> View.item_name (Item_agg (f, None))
                    in
                    match
                      List.find_map
                        (fun it' ->
                          if View.item_name it' = target then
                            Some (View.column_of_item view it')
                          else None)
                        vdef.select
                    with
                    | Some vc -> vc
                    | None -> raise No_match))
                q.select
            in
            (Column_set.of_list out_cols, None)
          end
          else begin
            (* compensating group-by over the view *)
            let keys = List.map (expose_exn expose) q.group_by in
            let items =
              List.map
                (fun (it : Query.select_item) ->
                  match it with
                  | Query.Item_col c -> Query.Item_col (expose_exn expose c)
                  | Query.Item_agg (f, arg) -> map_aggregate view expose f arg)
                q.select
            in
            let cols =
              List.fold_left
                (fun acc it -> Column_set.union acc (Query.item_columns it))
                (Column_set.of_list keys) items
            in
            (cols, Some (keys, items))
          end
        end
      in
      let out_cols, regroup = outputs_and_regroup () in
      let needed_cols =
        List.fold_left
          (fun acc (r : Predicate.range) -> Column_set.add r.rcol acc)
          out_cols residual_ranges
      in
      let needed_cols =
        List.fold_left
          (fun acc e -> Column_set.union acc (Expr.columns e))
          needed_cols residual_others
      in
      Some { view; residual_ranges; residual_others; regroup; needed_cols }
    with No_match -> None
  end

(* observability shim over the matcher above: counts attempts and hits in
   the ambient recorder (no-op outside a tuning run) *)
let try_match view q =
  Relax_obs.Probe.count "view_match.attempts";
  match try_match view q with
  | Some _ as r ->
    Relax_obs.Probe.count "view_match.matches";
    r
  | None -> None
