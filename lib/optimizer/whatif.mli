(** The what-if costing layer: memoized optimization of workload statements
    under hypothetical configurations.

    A query's plan only depends on the sub-configuration relevant to its
    tables ({!Relax_physical.Config.fingerprint_for_tables}), so
    configurations agreeing there share one optimization call — the
    mechanism behind the paper's "only re-optimize queries that used a
    replaced structure".

    Domain-safe: the plan cache is sharded by key hash and every shard
    publishes a read-mostly snapshot in an [Atomic.t], so cache-hit
    reads ({!plan_select}'s fast path, {!find_cached}, {!cost_interval})
    are lock-free — one atomic load plus a persistent-map lookup.
    Writers insert under the shard mutex and publish the extended
    snapshot before releasing it.  Concurrent requests for the same
    uncached key are deduplicated: the first pays the optimizer call,
    later ones wait on the shard's condition variable and count a cache
    hit.  The advisory bound store is sharded the same way (by qid), so
    worker domains scoring candidates never serialize on a global bounds
    mutex. *)

type t

val create : Relax_catalog.Catalog.t -> t

val stats : t -> int * int
(** (optimizer calls actually executed, cache hits). *)

val shard_stats : t -> (int * int) array
(** Per-shard (hits, misses); also sampled into the
    [whatif.cache_hits] / [whatif.cache_misses] counter tracks when the
    ambient recorder is profiling. *)

val cached_plans : t -> int
(** Number of distinct plans currently memoized, across all shards. *)

val plan_select :
  t -> Relax_physical.Config.t -> qid:string -> Relax_sql.Query.select_query ->
  Plan.t

val find_cached :
  t -> Relax_physical.Config.t -> qid:string -> tables:string list ->
  Plan.t option
(** The memoized plan for [qid] under [config], when present.  Never
    optimizes and updates no counter: the peek used by the frugal
    evaluation tier, which substitutes a bound-costed plan on a miss
    instead of paying an optimizer call. *)

val cost_interval :
  t -> Relax_physical.Config.t -> qid:string -> tables:string list ->
  float * float
(** Advisory (lower, upper) bounds on [qid]'s optimized plan cost under
    [config], derived from costs already paid for structure-set-comparable
    configurations (identical clustered-index entries required: clustering
    changes the stored base data): a recorded superset's cost bounds from
    below, a subset's from above.  [(0., infinity)] when nothing comparable
    was optimized yet.  Makes no optimizer call. *)

val bounds_size : t -> int
(** Total advisory-bound records currently held, across all qids.  The
    store is bounded (a few dozen records per qid, dominated records
    evicted first), so this stays proportional to the number of distinct
    statements costed — not to the number of optimizer calls made — however
    long the instance lives. *)

val reset_bounds : t -> unit
(** Drop every advisory bound.  Cached plans are kept. *)

val evict : t -> keep:(string -> bool) -> unit
(** Evict every cached plan and advisory bound whose owning workload qid
    fails [keep] (DML select components are evicted with their owner).
    Called by the continuous-tuning daemon on window rotation so departed
    statements stop pinning cache entries. *)

val entry_cost : t -> Relax_physical.Config.t -> Relax_sql.Query.entry -> float
(** Plan cost for selects; select-component cost plus update-shell
    maintenance for DML (§3.6). *)

val workload_cost :
  t -> Relax_physical.Config.t -> Relax_sql.Query.workload -> float
(** Weighted total. *)

val per_entry_costs :
  t -> Relax_physical.Config.t -> Relax_sql.Query.workload ->
  (string * float) list

(** {1 On-disk persistence}

    The advisory bound store — (qid, configuration fingerprint, cost)
    triples, not plans — can be saved and reloaded across processes, so
    repeated [tune]/[bench] invocations against the same catalog
    amortize their costing: a reloaded record whose fingerprint matches
    the queried configuration exactly gives {!cost_interval} a point
    interval, and the frugal tier then skips the optimizer call.  Files
    are keyed by {!Relax_catalog.Catalog.fingerprint}; a mismatch
    refuses to load (costs are meaningless against other statistics). *)

val save_bounds : t -> file:string -> (int, string) result
(** Write the current advisory bounds to [file] (deterministic order:
    qids sorted, records oldest first).  [Ok n] is the record count. *)

val load_bounds : t -> file:string -> (int, string) result
(** Merge the records of [file] into the store, newest-first order
    preserved.  [Ok n] is the number of records loaded; [Error _] on a
    catalog-fingerprint mismatch, unreadable file or malformed JSON (the
    store is left as it was on the mismatch path, possibly partially
    extended on a malformed-record path — harmless, bounds are
    advisory). *)
