(** The what-if costing layer: memoized optimization of workload statements
    under hypothetical configurations.

    A query's plan only depends on the sub-configuration relevant to its
    tables ({!Relax_physical.Config.fingerprint_for_tables}), so
    configurations agreeing there share one optimization call — the
    mechanism behind the paper's "only re-optimize queries that used a
    replaced structure".

    Domain-safe: the plan cache is sharded by key hash with per-shard
    mutexes and the counters are atomic, so {!plan_select} may be called
    concurrently from the parallel search's worker domains. *)

type t

val create : Relax_catalog.Catalog.t -> t

val stats : t -> int * int
(** (optimizer calls actually executed, cache hits). *)

val shard_stats : t -> (int * int) array
(** Per-shard (hits, misses); also sampled into the
    [whatif.cache_hits] / [whatif.cache_misses] counter tracks when the
    ambient recorder is profiling. *)

val cached_plans : t -> int
(** Number of distinct plans currently memoized, across all shards. *)

val plan_select :
  t -> Relax_physical.Config.t -> qid:string -> Relax_sql.Query.select_query ->
  Plan.t

val entry_cost : t -> Relax_physical.Config.t -> Relax_sql.Query.entry -> float
(** Plan cost for selects; select-component cost plus update-shell
    maintenance for DML (§3.6). *)

val workload_cost :
  t -> Relax_physical.Config.t -> Relax_sql.Query.workload -> float
(** Weighted total. *)

val per_entry_costs :
  t -> Relax_physical.Config.t -> Relax_sql.Query.workload ->
  (string * float) list
