(** DDL rendering of physical designs: turn a configuration into the
    CREATE INDEX / CREATE MATERIALIZED VIEW script a DBA would deploy.

    Syntax follows the common SQL Server/PostgreSQL hybrid: suffix columns
    render as [INCLUDE (...)]; clustered indexes carry the [CLUSTERED]
    keyword; view indexes are created against the view name. *)

open Relax_sql.Types

(* Atomic so concurrent renderings (e.g. from pool workers reporting
   in parallel) cannot tear the counter; each script rendering resets it,
   so scripts stay deterministically numbered when rendered one at a
   time, which is how every current caller uses them. *)
let index_name_counter = Atomic.make 0

(* deterministic, human-readable object names *)
let sanitize s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    s

let index_ddl_name (i : Index.t) =
  let n = Atomic.fetch_and_add index_name_counter 1 + 1 in
  Fmt.str "%s_%s_%s%d"
    (if i.clustered then "cix" else "ix")
    (sanitize (Index.owner i))
    (sanitize (String.concat "_" (List.map (fun (c : column) -> c.col) i.keys)))
    n

let pp_index ppf (i : Index.t) =
  let keys =
    String.concat ", " (List.map (fun (c : column) -> c.col) i.keys)
  in
  let suffix = Column_set.elements i.suffix in
  Fmt.pf ppf "CREATE %sINDEX %s ON %s (%s)%s;"
    (if i.clustered then "CLUSTERED " else "")
    (index_ddl_name i) (Index.owner i) keys
    (if suffix = [] then ""
     else
       Fmt.str " INCLUDE (%s)"
         (String.concat ", " (List.map (fun (c : column) -> c.col) suffix)))

let pp_view ppf (v : View.t) =
  Fmt.pf ppf "@[<v>CREATE MATERIALIZED VIEW %s AS@,  @[%a@];@]" (View.name v)
    Relax_sql.Pretty.pp_spjg (View.definition v)

(** The full deployment script for a configuration: views first (their
    indexes depend on them), then all indexes. *)
let pp_config ppf (config : Config.t) =
  Atomic.set index_name_counter 0;
  Fmt.pf ppf "@[<v>";
  List.iter (fun v -> Fmt.pf ppf "%a@,@," pp_view v) (Config.views config);
  List.iter (fun i -> Fmt.pf ppf "%a@," pp_index i) (Config.indexes config);
  Fmt.pf ppf "@]"

let to_string config = Fmt.str "%a" pp_config config

(* --- incremental deployment deltas -------------------------------------- *)

(** The DDL difference between a deployed configuration and a target one:
    what a continuous tuner actually ships.  Creates are ordered views
    before their indexes, drops indexes before their views, so the script
    is executable top to bottom. *)
type delta = {
  create_views : View.t list;
  create_indexes : Index.t list;
  drop_indexes : Index.t list;
  drop_views : View.t list;
}

let delta ~deployed ~target =
  let names vs = List.map View.name vs in
  let deployed_views = Config.views deployed
  and target_views = Config.views target in
  let deployed_names = names deployed_views
  and target_names = names target_views in
  {
    create_views =
      List.filter
        (fun v -> not (List.mem (View.name v) deployed_names))
        target_views;
    create_indexes =
      Index.Set.elements
        (Index.Set.diff (Config.index_set target) (Config.index_set deployed));
    drop_indexes =
      Index.Set.elements
        (Index.Set.diff (Config.index_set deployed) (Config.index_set target));
    drop_views =
      List.filter
        (fun v -> not (List.mem (View.name v) target_names))
        deployed_views;
  }

let delta_is_empty d =
  d.create_views = [] && d.create_indexes = [] && d.drop_indexes = []
  && d.drop_views = []

let delta_cardinal d =
  List.length d.create_views + List.length d.create_indexes
  + List.length d.drop_indexes + List.length d.drop_views

let pp_delta ppf d =
  Atomic.set index_name_counter 0;
  Fmt.pf ppf "@[<v>";
  List.iter (fun v -> Fmt.pf ppf "%a@," pp_view v) d.create_views;
  List.iter (fun i -> Fmt.pf ppf "%a@," pp_index i) d.create_indexes;
  List.iter
    (fun (i : Index.t) ->
      (* content-derived names here: the numbered DDL names are allocated
         per rendered script, so a drop must identify the structure by
         content, exactly as the configuration does *)
      Fmt.pf ppf "DROP INDEX %s ON %s;@," (sanitize (Index.name i))
        (Index.owner i))
    d.drop_indexes;
  List.iter
    (fun v -> Fmt.pf ppf "DROP MATERIALIZED VIEW %s;@," (View.name v))
    d.drop_views;
  Fmt.pf ppf "@]"

let delta_to_string d = Fmt.str "%a" pp_delta d

(** The tear-down script (inverse order). *)
let pp_drop ppf (config : Config.t) =
  Atomic.set index_name_counter 0;
  Fmt.pf ppf "@[<v>";
  List.iter
    (fun i -> Fmt.pf ppf "DROP INDEX %s;@," (index_ddl_name i))
    (Config.indexes config);
  List.iter
    (fun v -> Fmt.pf ppf "DROP MATERIALIZED VIEW %s;@," (View.name v))
    (Config.views config);
  Fmt.pf ppf "@]"
