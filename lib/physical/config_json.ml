(** Durable JSON serialization of physical configurations.

    The continuous-tuning daemon persists its deployed configuration
    across restarts and keeps the previous deployment around for
    auto-rollback, so the encoding must round-trip *exactly*:
    [of_string (to_string c)] rebuilds a configuration with the same
    fingerprint, and [to_string] is deterministic (sorted structures,
    shortest-exact floats) so a rolled-back configuration is restored
    byte-identically from its saved form.

    Exactness comes from reconstructing through the same canonicalizing
    constructors that built the original: indexes re-enter via
    {!Index.make} and views via {!View.make} over a {!Query.make_spjg}
    definition, so derived names (hence fingerprints) are re-derived, not
    stored — a stored name could silently disagree with the content. *)

open Relax_sql.Types
module Query = Relax_sql.Query
module Expr = Relax_sql.Expr
module Predicate = Relax_sql.Predicate
module J = Relax_obs.Json

exception Parse of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse s)) fmt

(* ------------------------------------------------------------------ *)
(* encoding                                                            *)
(* ------------------------------------------------------------------ *)

let column_to (c : column) = J.List [ J.String c.tbl; J.String c.col ]

let value_to : value -> J.t = function
  | VInt i -> J.Obj [ ("int", J.Int i) ]
  | VFloat f -> J.Obj [ ("float", J.Float f) ]
  | VString s -> J.Obj [ ("str", J.String s) ]
  | VDate d -> J.Obj [ ("date", J.Int d) ]

let arith_op_to = function Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/"

let cmp_op_to = function
  | Eq -> "="
  | Neq -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let rec expr_to : Expr.t -> J.t = function
  | Col c -> J.Obj [ ("col", column_to c) ]
  | Const v -> J.Obj [ ("const", value_to v) ]
  | Neg e -> J.Obj [ ("neg", expr_to e) ]
  | Bin (op, a, b) ->
    J.Obj [ ("bin", J.List [ J.String (arith_op_to op); expr_to a; expr_to b ]) ]
  | Cmp (op, a, b) ->
    J.Obj [ ("cmp", J.List [ J.String (cmp_op_to op); expr_to a; expr_to b ]) ]
  | And (a, b) -> J.Obj [ ("and", J.List [ expr_to a; expr_to b ]) ]
  | Or (a, b) -> J.Obj [ ("or", J.List [ expr_to a; expr_to b ]) ]
  | Not e -> J.Obj [ ("not", expr_to e) ]
  | Like (e, pat) -> J.Obj [ ("like", J.List [ expr_to e; J.String pat ]) ]
  | In_list (e, vs) ->
    J.Obj [ ("in", J.List [ expr_to e; J.List (List.map value_to vs) ]) ]

let agg_fn_to : Query.agg_fn -> string = function
  | Count -> "count"
  | Sum -> "sum"
  | Min -> "min"
  | Max -> "max"
  | Avg -> "avg"

let select_item_to : Query.select_item -> J.t = function
  | Item_col c -> J.Obj [ ("col", column_to c) ]
  | Item_agg (fn, arg) ->
    J.Obj
      [
        ( "agg",
          J.List
            [
              J.String (agg_fn_to fn);
              (match arg with None -> J.Null | Some c -> column_to c);
            ] );
      ]

let bound_to (b : Predicate.bound) =
  J.Obj [ ("value", value_to b.value); ("inclusive", J.Bool b.inclusive) ]

let bound_opt_to = function None -> J.Null | Some b -> bound_to b

let range_to (r : Predicate.range) =
  J.Obj
    [
      ("col", column_to r.rcol);
      ("lo", bound_opt_to r.lo);
      ("hi", bound_opt_to r.hi);
    ]

let join_to (j : Predicate.join) =
  J.Obj [ ("left", column_to j.left); ("right", column_to j.right) ]

let spjg_to (q : Query.spjg) =
  J.Obj
    [
      ("select", J.List (List.map select_item_to q.select));
      ("tables", J.List (List.map (fun t -> J.String t) q.tables));
      ("joins", J.List (List.map join_to q.joins));
      ("ranges", J.List (List.map range_to q.ranges));
      ("others", J.List (List.map expr_to q.others));
      ("group_by", J.List (List.map column_to q.group_by));
    ]

let index_to (i : Index.t) =
  J.Obj
    [
      ("keys", J.List (List.map column_to i.keys));
      ("suffix", J.List (List.map column_to (Column_set.elements i.suffix)));
      ("clustered", J.Bool i.clustered);
    ]

let view_to ((v : View.t), rows) =
  J.Obj [ ("definition", spjg_to (View.definition v)); ("rows", J.Float rows) ]

let to_json (config : Config.t) =
  J.Obj
    [
      ("version", J.Int 1);
      ("indexes", J.List (List.map index_to (Config.indexes config)));
      ("views", J.List (List.map view_to (Config.views_with_rows config)));
    ]

let to_string config = J.to_string (to_json config)

(* ------------------------------------------------------------------ *)
(* decoding                                                            *)
(* ------------------------------------------------------------------ *)

let member name j =
  match J.member name j with
  | Some v -> v
  | None -> fail "missing field %S" name

let as_list what = function J.List l -> l | _ -> fail "%s: expected a list" what

let as_string what = function
  | J.String s -> s
  | _ -> fail "%s: expected a string" what

let as_bool what = function J.Bool b -> b | _ -> fail "%s: expected a bool" what

let as_float what j =
  match J.to_float j with Some f -> f | None -> fail "%s: expected a number" what

let as_int what j =
  match J.to_int j with Some i -> i | None -> fail "%s: expected an int" what

let column_of = function
  | J.List [ J.String tbl; J.String col ] -> Column.make tbl col
  | _ -> fail "column: expected [table, column]"

let value_of = function
  | J.Obj [ ("int", j) ] -> VInt (as_int "int value" j)
  | J.Obj [ ("float", j) ] -> VFloat (as_float "float value" j)
  | J.Obj [ ("str", j) ] -> VString (as_string "string value" j)
  | J.Obj [ ("date", j) ] -> VDate (as_int "date value" j)
  | _ -> fail "value: expected a tagged constant"

let arith_op_of = function
  | "+" -> Add
  | "-" -> Sub
  | "*" -> Mul
  | "/" -> Div
  | s -> fail "unknown arithmetic operator %S" s

let cmp_op_of = function
  | "=" -> Eq
  | "<>" -> Neq
  | "<" -> Lt
  | "<=" -> Le
  | ">" -> Gt
  | ">=" -> Ge
  | s -> fail "unknown comparison operator %S" s

let rec expr_of : J.t -> Expr.t = function
  | J.Obj [ ("col", c) ] -> Col (column_of c)
  | J.Obj [ ("const", v) ] -> Const (value_of v)
  | J.Obj [ ("neg", e) ] -> Neg (expr_of e)
  | J.Obj [ ("bin", J.List [ op; a; b ]) ] ->
    Bin (arith_op_of (as_string "bin op" op), expr_of a, expr_of b)
  | J.Obj [ ("cmp", J.List [ op; a; b ]) ] ->
    Cmp (cmp_op_of (as_string "cmp op" op), expr_of a, expr_of b)
  | J.Obj [ ("and", J.List [ a; b ]) ] -> And (expr_of a, expr_of b)
  | J.Obj [ ("or", J.List [ a; b ]) ] -> Or (expr_of a, expr_of b)
  | J.Obj [ ("not", e) ] -> Not (expr_of e)
  | J.Obj [ ("like", J.List [ e; pat ]) ] ->
    Like (expr_of e, as_string "like pattern" pat)
  | J.Obj [ ("in", J.List [ e; J.List vs ]) ] ->
    In_list (expr_of e, List.map value_of vs)
  | _ -> fail "expression: unknown shape"

let agg_fn_of : string -> Query.agg_fn = function
  | "count" -> Count
  | "sum" -> Sum
  | "min" -> Min
  | "max" -> Max
  | "avg" -> Avg
  | s -> fail "unknown aggregate %S" s

let select_item_of : J.t -> Query.select_item = function
  | J.Obj [ ("col", c) ] -> Item_col (column_of c)
  | J.Obj [ ("agg", J.List [ fn; arg ]) ] ->
    Item_agg
      ( agg_fn_of (as_string "aggregate" fn),
        match arg with J.Null -> None | c -> Some (column_of c) )
  | _ -> fail "select item: unknown shape"

let bound_of j : Predicate.bound =
  {
    value = value_of (member "value" j);
    inclusive = as_bool "inclusive" (member "inclusive" j);
  }

let bound_opt_of = function J.Null -> None | j -> Some (bound_of j)

let range_of j : Predicate.range =
  {
    rcol = column_of (member "col" j);
    lo = bound_opt_of (member "lo" j);
    hi = bound_opt_of (member "hi" j);
  }

let join_of j : Predicate.join =
  Predicate.make_join (column_of (member "left" j)) (column_of (member "right" j))

let spjg_of j : Query.spjg =
  Query.make_spjg
    ~select:(List.map select_item_of (as_list "select" (member "select" j)))
    ~tables:
      (List.map (as_string "table") (as_list "tables" (member "tables" j)))
    ~joins:(List.map join_of (as_list "joins" (member "joins" j)))
    ~ranges:(List.map range_of (as_list "ranges" (member "ranges" j)))
    ~others:(List.map expr_of (as_list "others" (member "others" j)))
    ~group_by:(List.map column_of (as_list "group_by" (member "group_by" j)))
    ()

let index_of j : Index.t =
  let keys = List.map column_of (as_list "keys" (member "keys" j)) in
  let suffix =
    Column_set.of_list (List.map column_of (as_list "suffix" (member "suffix" j)))
  in
  let clustered = as_bool "clustered" (member "clustered" j) in
  match Index.make ~clustered ~keys ~suffix () with
  | i -> i
  | exception Invalid_argument msg -> fail "invalid index: %s" msg

let view_of j =
  let v = View.make (spjg_of (member "definition" j)) in
  let rows = as_float "rows" (member "rows" j) in
  (v, rows)

let of_json j : (Config.t, string) result =
  match
    (match member "version" j with
    | J.Int 1 -> ()
    | J.Int v -> fail "unsupported config version %d" v
    | _ -> fail "version: expected an int");
    let indexes = List.map index_of (as_list "indexes" (member "indexes" j)) in
    let views = List.map view_of (as_list "views" (member "views" j)) in
    List.fold_left
      (fun c (v, rows) -> Config.add_view c v ~rows)
      (Config.of_indexes indexes) views
  with
  | config -> Ok config
  | exception Parse msg -> Error msg

let of_string s =
  match J.of_string s with
  | Error msg -> Error ("config JSON: " ^ msg)
  | Ok j -> of_json j
