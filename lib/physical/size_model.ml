(** The B-tree size model of §3.3.1.

    The size of an index is the sum of pages over the B-tree levels: leaf
    entries are key plus suffix columns (plus a rid for secondary indexes, or
    the whole row for clustered ones); internal entries are key columns plus
    a child pointer.  Leaf pages hold [PL = floor(page / WL)] entries,
    internal pages [PI = floor(page / WI)] — a partial entry does not fit,
    so capacities never round up; level 0 needs [S0 = ceil(rows / PL)]
    pages and level [i] needs [ceil(S_{i-1} / PI)], until a level fits in
    one page. *)

type params = {
  page_size : float;  (** bytes per page *)
  fill_factor : float;  (** usable fraction of a page *)
  rid_width : float;  (** bytes of a row identifier in secondary leaves *)
  pointer_width : float;  (** bytes of a child pointer in internal nodes *)
  page_overhead : float;  (** fixed per-page header bytes *)
}

let default_params =
  {
    page_size = 8192.0;
    fill_factor = 0.75;
    rid_width = 8.0;
    pointer_width = 8.0;
    page_overhead = 96.0;
  }

let usable p = (p.page_size -. p.page_overhead) *. p.fill_factor

(* Entries fitting one page.  The floor matters: rounding to nearest can
   round *up*, overstating fan-out and undersizing the structure — a
   configuration sized against the budget with a rounded-up capacity can
   exceed the real budget once built. *)
let leaf_capacity p leaf_width =
  Float.max 1.0 (Float.floor (usable p /. Float.max 1.0 leaf_width))

let internal_capacity p key_width =
  Float.max 2.0
    (Float.floor (usable p /. Float.max 1.0 (key_width +. p.pointer_width)))

(** Pages of a B-tree with [rows] leaf entries of width [leaf_width] and
    internal entries of width [key_width]. *)
let btree_pages ?(params = default_params) ~rows ~leaf_width ~key_width () =
  let rows = Float.max 1.0 rows in
  let pl = leaf_capacity params leaf_width in
  let pi = internal_capacity params key_width in
  let leaf_pages = Float.ceil (rows /. pl) in
  let rec levels acc s =
    if s <= 1.0 then acc
    else
      let s' = Float.ceil (s /. pi) in
      levels (acc +. s') s'
  in
  levels leaf_pages leaf_pages

(** Number of B-tree levels above the leaves (the seek descent length). *)
let btree_height ?(params = default_params) ~rows ~leaf_width ~key_width () =
  let rows = Float.max 1.0 rows in
  let pl = leaf_capacity params leaf_width in
  let pi = internal_capacity params key_width in
  let rec go h s = if s <= 1.0 then h else go (h + 1) (Float.ceil (s /. pi)) in
  go 0 (Float.ceil (rows /. pl))

(** Width accounting for an index: [width_of c] must resolve every key and
    suffix column; [row_width] is the full row width of the owning table
    (used for clustered indexes, whose leaves are the rows). *)
let index_widths ~width_of ~row_width (i : Index.t) =
  let key_width =
    List.fold_left (fun acc c -> acc +. width_of c) 0.0 i.keys
  in
  let leaf_width =
    if i.clustered then Float.max key_width row_width
    else
      Relax_sql.Types.Column_set.fold
        (fun c acc -> acc +. width_of c)
        i.suffix key_width
      +. default_params.rid_width
  in
  (key_width, leaf_width)

(** Size in bytes of an index over a relation with [rows] rows. *)
let index_bytes ?(params = default_params) ~rows ~width_of ~row_width
    (i : Index.t) =
  let key_width, leaf_width = index_widths ~width_of ~row_width i in
  btree_pages ~params ~rows ~leaf_width ~key_width () *. params.page_size

(** Leaf page count (what scans and range seeks touch). *)
let leaf_pages ?(params = default_params) ~rows ~width_of ~row_width
    (i : Index.t) =
  let _, leaf_width = index_widths ~width_of ~row_width i in
  let pl = leaf_capacity params leaf_width in
  Float.ceil (Float.max 1.0 rows /. pl)

(** Height of an index's B-tree (seek descent cost in page reads). *)
let height ?(params = default_params) ~rows ~width_of ~row_width (i : Index.t)
    =
  let key_width, leaf_width = index_widths ~width_of ~row_width i in
  btree_height ~params ~rows ~leaf_width ~key_width ()

(** Pages of a heap holding [rows] rows of width [row_width]. *)
let heap_pages ?(params = default_params) ~rows ~row_width () =
  let per = leaf_capacity params row_width in
  Float.ceil (Float.max 1.0 rows /. per)

let mb bytes = bytes /. (1024.0 *. 1024.0)
let gb bytes = bytes /. (1024.0 *. 1024.0 *. 1024.0)

let pp_bytes ppf b =
  if b >= 1024.0 *. 1024.0 *. 1024.0 then Fmt.pf ppf "%.2f GB" (gb b)
  else if b >= 1024.0 *. 1024.0 then Fmt.pf ppf "%.1f MB" (mb b)
  else Fmt.pf ppf "%.0f KB" (b /. 1024.0)
