(** Durable JSON serialization of physical configurations.

    Round-trip exact: [of_string (to_string c)] rebuilds a configuration
    with the same fingerprint (indexes and views re-enter through their
    canonicalizing constructors, so derived names are re-derived rather
    than trusted from the file), and [to_string] is deterministic —
    structures sorted, floats printed shortest-exact — so the daemon can
    compare and restore deployed configurations byte-identically. *)

val to_json : Config.t -> Relax_obs.Json.t
val to_string : Config.t -> string

val of_json : Relax_obs.Json.t -> (Config.t, string) result
val of_string : string -> (Config.t, string) result
