(** DDL rendering of physical designs: the CREATE INDEX /
    CREATE MATERIALIZED VIEW script a DBA would deploy.  Suffix columns
    render as [INCLUDE (...)]; clustered indexes carry [CLUSTERED]. *)

val pp_index : Format.formatter -> Index.t -> unit
val pp_view : Format.formatter -> View.t -> unit

val pp_config : Format.formatter -> Config.t -> unit
(** The full deployment script: views first, then indexes. *)

val to_string : Config.t -> string

val pp_drop : Format.formatter -> Config.t -> unit
(** The tear-down script. *)

(** The DDL difference between a deployed configuration and a target one:
    what a continuous tuner actually ships on each re-tune. *)
type delta = {
  create_views : View.t list;
  create_indexes : Index.t list;
  drop_indexes : Index.t list;
  drop_views : View.t list;
}

val delta : deployed:Config.t -> target:Config.t -> delta
val delta_is_empty : delta -> bool

val delta_cardinal : delta -> int
(** Number of DDL statements the delta would execute. *)

val pp_delta : Format.formatter -> delta -> unit
(** Executable top to bottom: created views before their indexes, dropped
    indexes before their views.  Drops identify indexes by their
    content-derived names. *)

val delta_to_string : delta -> string
