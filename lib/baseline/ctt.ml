(** CTT: a bottom-up physical design tuner in the classic AutoAdmin
    architecture, used as the baseline the relaxation approach is compared
    against (§1's Search Framework, faithfully including its shortcuts):

    1. {b candidate selection} — per-query heuristic candidates
       ({!Candidate}), scored one at a time against the query ("atomic
       configurations") and truncated to the top [candidates_per_query];
    2. {b merging} — a single eager pass that pairwise-merges surviving
       index candidates on the same relation (each structure merged at most
       once, as in the published tools) and view candidates with equal FROM
       sets;
    3. {b enumeration} — Greedy(m,k): exhaustively pick the best seed subset
       of size ≤ m, then greedily add the candidate with the best benefit
       until the space budget stops everything (a bottom-up search that
       starts from the empty configuration).

    The per-step trace of (what-if calls, best cost) feeds Figure 3. *)

module Query = Relax_sql.Query
module Config = Relax_physical.Config
module Catalog = Relax_catalog.Catalog
module O = Relax_optimizer

let src = Logs.Src.create "relax.ctt" ~doc:"bottom-up baseline tuner"

module Log = (val Logs.src_log src : Logs.LOG)

type options = {
  space_budget : float;
  with_views : bool;
  base_config : Config.t;
  candidates_per_query : int;
  greedy_seed_size : int;  (** the [m] of Greedy(m,k) *)
  max_steps : int;
}

let default_options ?(with_views = true) ~space_budget () =
  {
    space_budget;
    with_views;
    base_config = Config.empty;
    candidates_per_query = 8;
    greedy_seed_size = 1;
    max_steps = 64;
  }

type result = {
  recommended : Config.t;
  recommended_cost : float;
  recommended_size : float;
  initial_cost : float;
  improvement : float;
  candidate_count : int;  (** candidates surviving selection + merging *)
  trace : (int * float) list;
      (** (cumulative optimizer calls, best cost) after each greedy step *)
  elapsed_s : float;
}

(* score a candidate for one query: improvement of the query's cost when
   the candidate is added alone to the base configuration *)
let candidate_benefit whatif opts (qid, _, sq) cand =
  let config = Candidate.add_to_config opts.base_config cand in
  let base = (O.Whatif.plan_select whatif opts.base_config ~qid sq).cost in
  let with_c = (O.Whatif.plan_select whatif config ~qid sq).cost in
  base -. with_c

(* step 1: per-query candidate selection with atomic-configuration scoring *)
let select_candidates whatif catalog opts selects : Candidate.t list =
  let env = O.Env.make catalog opts.base_config in
  let seen = Hashtbl.create 64 in
  List.concat_map
    (fun ((_, _, sq) as entry) ->
      let cands = Candidate.for_query env ~with_views:opts.with_views sq in
      let scored =
        List.filter_map
          (fun c ->
            let b = candidate_benefit whatif opts entry c in
            if b > 0.0 then Some (c, b) else None)
          cands
      in
      let top =
        List.sort (fun (_, b1) (_, b2) -> Float.compare b2 b1) scored
        |> List.filteri (fun i _ -> i < opts.candidates_per_query)
        |> List.map fst
      in
      List.filter
        (fun c ->
          let k = Candidate.id c in
          if Hashtbl.mem seen k then false
          else begin
            Hashtbl.add seen k ();
            true
          end)
        top)
    selects

(* step 2: one eager merging pass; each candidate participates in at most
   one merge (the restriction of reference [2] in the paper) *)
let merge_pass catalog (cands : Candidate.t list) : Candidate.t list =
  let module Index = Relax_physical.Index in
  let module View = Relax_physical.View in
  let used = Hashtbl.create 16 in
  let merged = ref [] in
  let arr = Array.of_list cands in
  let n = Array.length arr in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if (not (Hashtbl.mem used i)) && not (Hashtbl.mem used j) then begin
        match (arr.(i), arr.(j)) with
        | Candidate.Cand_index a, Candidate.Cand_index b
          when Index.owner a = Index.owner b
               && (not a.clustered) && not b.clustered -> (
          match (a.keys, b.keys) with
          | ka :: _, kb :: _ when Relax_sql.Types.Column.equal ka kb ->
            (* industrial shortcut: only merge indexes sharing the leading
               key column *)
            let m = Index.merge a b in
            let sm = Candidate.size catalog (Cand_index m) in
            let sa = Candidate.size catalog (Cand_index a) in
            let sb = Candidate.size catalog (Cand_index b) in
            if sm < sa +. sb then begin
              Hashtbl.replace used i ();
              Hashtbl.replace used j ();
              merged := Candidate.Cand_index m :: !merged
            end
          | _ -> ())
        | Candidate.Cand_view (va, ra, ia), Candidate.Cand_view (vb, _, ib)
          when (View.definition va).tables = (View.definition vb).tables -> (
          match View.merge va vb with
          | Some { merged = vm; remap1; remap2 } ->
            let promote remap idx =
              List.filter_map
                (fun (i : Index.t) ->
                  let keys =
                    List.filter_map remap i.keys
                  in
                  match keys with
                  | [] -> None
                  | keys ->
                    Some
                      (Index.make ~clustered:i.clustered ~keys
                         ~suffix:Relax_sql.Types.Column_set.empty ()))
                idx
            in
            let idxs =
              match promote remap1 ia @ promote remap2 ib with
              | [] -> []
              | first :: rest ->
                Index.promote first
                :: List.map Index.demote rest
            in
            if idxs <> [] then begin
              Hashtbl.replace used i ();
              Hashtbl.replace used j ();
              merged := Candidate.Cand_view (vm, ra, idxs) :: !merged
            end
          | None -> ())
        | _ -> ()
      end
    done
  done;
  let survivors =
    List.filteri (fun i _ -> not (Hashtbl.mem used i)) cands
  in
  survivors @ !merged

(** Run the bottom-up baseline on a workload. *)
let tune (catalog : Catalog.t) (workload : Query.workload) (opts : options) :
    result =
  let t0 = Relax_obs.Clock.now () in
  let whatif = O.Whatif.create catalog in
  let selects =
    List.filter_map
      (fun (e : Query.entry) ->
        match e.stmt with
        | Select q -> Some (e.qid, e.weight, q)
        | Dml d -> (
          match Query.split_update d with
          | Some q, _ -> Some (Query.select_qid e.qid, e.weight, q)
          | None, _ -> None))
      workload
  in
  let initial_cost = O.Whatif.workload_cost whatif opts.base_config workload in
  let cands = select_candidates whatif catalog opts selects in
  let cands = merge_pass catalog cands in
  let cost config = O.Whatif.workload_cost whatif config workload in
  let size config = Config.total_bytes catalog config in
  let trace = ref [] in
  let record cost =
    let calls, _ = O.Whatif.stats whatif in
    trace := (calls, cost) :: !trace
  in
  (* Greedy(m,k): exhaust subsets of size <= m for the seed *)
  let rec seeds depth acc current remaining =
    if depth = 0 then current :: acc
    else
      current
      :: List.concat
           (List.mapi
              (fun i c ->
                seeds (depth - 1) acc
                  (c :: current)
                  (List.filteri (fun j _ -> j > i) remaining))
              remaining)
  in
  let seed_sets =
    seeds (min opts.greedy_seed_size 2) [] [] cands
    |> List.filter (fun s -> s <> [])
  in
  let config_of cs =
    List.fold_left Candidate.add_to_config opts.base_config cs
  in
  let best_seed =
    List.fold_left
      (fun (bc, bcost, bset) set ->
        let cfg = config_of set in
        if size cfg > opts.space_budget then (bc, bcost, bset)
        else
          let c = cost cfg in
          if c < bcost then (cfg, c, set) else (bc, bcost, bset))
      (opts.base_config, initial_cost, [])
      seed_sets
  in
  let config, best_cost, chosen = best_seed in
  record best_cost;
  (* greedy additions *)
  let rec greedy config best_cost chosen steps =
    if steps >= opts.max_steps then (config, best_cost)
    else begin
      let remaining =
        List.filter
          (fun c -> not (List.exists (fun c' -> Candidate.id c' = Candidate.id c) chosen))
          cands
      in
      let next =
        List.fold_left
          (fun acc c ->
            let cfg = Candidate.add_to_config config c in
            if size cfg > opts.space_budget then acc
            else
              let cst = cost cfg in
              match acc with
              | Some (_, bcst, _) when bcst <= cst -> acc
              | _ when cst < best_cost -> Some (cfg, cst, c)
              | _ -> acc)
          None remaining
      in
      match next with
      | None -> (config, best_cost)
      | Some (cfg, cst, c) ->
        record cst;
        greedy cfg cst (c :: chosen) (steps + 1)
    end
  in
  let config, best_cost = greedy config best_cost chosen 0 in
  {
    recommended = config;
    recommended_cost = best_cost;
    recommended_size = size config;
    initial_cost;
    improvement = 100.0 *. (1.0 -. (best_cost /. Float.max 1e-9 initial_cost));
    candidate_count = List.length cands;
    trace = List.rev !trace;
    elapsed_s = Relax_obs.Clock.elapsed_s ~since:t0;
  }
