(** The sliding workload window (see the mli for the model).

    Weights are stored as-of the template's last arrival and decayed
    lazily: [weight_of] applies [decay^(clock - last)], so a tick is
    O(1) and reading a weight is O(1) — no per-tick sweep over the
    table.  Determinism: templates are emitted in creation ([seq])
    order, and every eviction rule breaks ties on [seq], so the same
    arrival sequence always produces the same workload and the same
    eviction queue whatever the hash table's internal order. *)

module Query = Relax_sql.Query
module W = Relax_workloads

type template = {
  tqid : string;  (** stable daemon-assigned qid *)
  seq : int;  (** creation order *)
  mutable rep : Query.statement;  (** pinned representative *)
  mutable latest : Query.statement;  (** most recent arrival *)
  mutable weight : float;  (** decayed weight as of [last] *)
  mutable last : int;  (** clock at last arrival *)
  mutable arrivals : int;
}

type t = {
  decay : float;
  capacity : int;
  min_weight : float;
  by_sig : (string, template) Hashtbl.t;
  mutable clock : int;
  mutable next_seq : int;
  mutable arrivals_total : int;
  mutable pending : string list;  (** qids awaiting what-if eviction *)
}

type rotation = { dropped : string list; refreshed : string list }

let create ?(decay = 0.98) ?(capacity = 64) ?(min_weight = 0.05) () =
  if not (decay > 0.0 && decay <= 1.0) then
    invalid_arg "Window.create: decay must be in (0, 1]";
  if capacity < 1 then invalid_arg "Window.create: capacity must be positive";
  {
    decay;
    capacity;
    min_weight;
    by_sig = Hashtbl.create 64;
    clock = 0;
    next_seq = 0;
    arrivals_total = 0;
    pending = [];
  }

let weight_of t tpl =
  tpl.weight *. (t.decay ** float_of_int (t.clock - tpl.last))

(* creation order: the deterministic iteration the workload and the
   eviction rules are defined over *)
let templates t =
  Hashtbl.fold (fun s tpl acc -> (s, tpl) :: acc) t.by_sig []
  |> List.sort (fun (_, a) (_, b) -> compare a.seq b.seq)

(* at capacity: evict the lightest template, ties broken towards the
   least recently seen, then the oldest *)
let evict_lightest t =
  match templates t with
  | [] -> ()
  | first :: rest ->
    let lighter (_, a) (_, b) =
      let wa = weight_of t a and wb = weight_of t b in
      if wa < wb then true
      else if wb < wa then false
      else if a.last <> b.last then a.last < b.last
      else a.seq < b.seq
    in
    let s, victim =
      List.fold_left (fun acc c -> if lighter c acc then c else acc) first rest
    in
    Hashtbl.remove t.by_sig s;
    t.pending <- victim.tqid :: t.pending

let add t (e : Query.entry) =
  t.clock <- t.clock + 1;
  t.arrivals_total <- t.arrivals_total + 1;
  let s = W.Compress.signature e.stmt in
  match Hashtbl.find_opt t.by_sig s with
  | Some tpl ->
    tpl.weight <- (tpl.weight *. (t.decay ** float_of_int (t.clock - tpl.last)))
                  +. e.weight;
    tpl.last <- t.clock;
    tpl.arrivals <- tpl.arrivals + 1;
    tpl.latest <- e.stmt
  | None ->
    if Hashtbl.length t.by_sig >= t.capacity then evict_lightest t;
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    Hashtbl.add t.by_sig s
      {
        tqid = Printf.sprintf "w%03d" seq;
        seq;
        rep = e.stmt;
        latest = e.stmt;
        weight = e.weight;
        last = t.clock;
        arrivals = 1;
      }

let tick t = t.clock <- t.clock + 1
let size t = Hashtbl.length t.by_sig
let statements_seen t = t.arrivals_total

let workload t =
  List.map
    (fun (_, tpl) ->
      { Query.qid = tpl.tqid; weight = weight_of t tpl; stmt = tpl.rep })
    (templates t)

let total_weight t =
  Hashtbl.fold (fun _ tpl acc -> acc +. weight_of t tpl) t.by_sig 0.0

let weights t =
  List.map (fun (_, tpl) -> (tpl.tqid, weight_of t tpl)) (templates t)

let rotate t =
  let dropped = ref [] and refreshed = ref [] in
  List.iter
    (fun (s, tpl) ->
      if weight_of t tpl < t.min_weight then begin
        Hashtbl.remove t.by_sig s;
        dropped := tpl.tqid :: !dropped
      end
      else if
        not
          (String.equal
             (Relax_sql.Pretty.statement_to_string tpl.rep)
             (Relax_sql.Pretty.statement_to_string tpl.latest))
      then begin
        (* same template shape, newer constants: refresh the pinned
           representative so selectivities track the live stream — the
           qid's cached plans are stale from this point on *)
        tpl.rep <- tpl.latest;
        refreshed := tpl.tqid :: !refreshed
      end)
    (templates t);
  let r = { dropped = List.rev !dropped; refreshed = List.rev !refreshed } in
  t.pending <- r.dropped @ r.refreshed @ t.pending;
  r

let drain_evictions t =
  let qids = List.sort_uniq compare (List.rev t.pending) in
  t.pending <- [];
  qids
