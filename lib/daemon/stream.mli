(** The statement stream: JSON-lines in, one statement per line.

    Each line is an object [{"qid": ..., "sql": ..., "weight": ...}];
    only ["sql"] is required ([qid] defaults to [""] — the window assigns
    its own stable qids anyway — and [weight] to [1.0]).  Blank lines are
    skipped; malformed lines (bad JSON, missing [sql], SQL that does not
    parse) surface as {!Malformed} events so the daemon can count and
    report them without dying. *)

module Query = Relax_sql.Query

type event =
  | Entry of Query.entry
  | Malformed of { line : string; reason : string }

val parse_line : ?default_weight:float -> string -> (Query.entry, string) result

val line_of_entry : Query.entry -> string
(** The inverse: one JSONL line whose SQL round-trips through the
    parser.  Used by the bench harness to build replay files. *)

val events : in_channel -> event Seq.t
(** Lazily read the channel to end-of-file.  The sequence is ephemeral
    (consume once).  Reading a line blocks; a SIGINT/SIGTERM raised by
    {!Relax_obs.Shutdown} propagates out of the blocked read. *)
