(** The sliding workload window: per-template frequency with exponential
    decay.

    Arriving statements are collapsed to templates by
    {!Relax_workloads.Compress.signature} (identical up to constants);
    each template carries a decayed weight — every logical tick (one
    arrival) multiplies existing weights by the decay factor, so a
    template that stops arriving fades instead of pinning the window
    forever.  Templates get stable daemon-assigned qids ([w000], [w001],
    ...) so the what-if plan cache stays warm across re-tunes.

    Rotation ({!rotate}) is the window's garbage collection: templates
    whose decayed weight fell below the floor are dropped, and templates
    whose latest arrival differs from the pinned representative (same
    shape, new constants) have the representative refreshed.  Both
    invalidate cached per-qid optimizer state, so their qids are queued
    for the daemon to evict from the shared what-if interface
    ({!drain_evictions}). *)

module Query = Relax_sql.Query

type t

val create : ?decay:float -> ?capacity:int -> ?min_weight:float -> unit -> t
(** [decay] (default [0.98]) multiplies every template weight per
    arrival tick; [capacity] (default [64]) bounds live templates — at
    capacity the lightest template is evicted; [min_weight] (default
    [0.05]) is the rotation drop floor. *)

val add : t -> Query.entry -> unit
(** Ingest one statement: advances the logical clock one tick, then
    either reinforces the matching template (decayed weight + the
    entry's weight) or opens a new one. *)

val tick : t -> unit
(** Advance the logical clock without an arrival (decays every weight);
    exposed for decay-property tests. *)

val size : t -> int
(** Live templates. *)

val statements_seen : t -> int
(** Arrivals ingested over the window's lifetime (clock ticks from
    {!tick} excluded). *)

val workload : t -> Query.workload
(** The current window as a weighted workload: one entry per template
    (its pinned representative under its stable qid, decayed weight),
    in template-creation order.  Deterministic. *)

val total_weight : t -> float

val weights : t -> (string * float) list
(** (qid, current decayed weight) per live template, creation order. *)

type rotation = {
  dropped : string list;  (** qids of templates below the weight floor *)
  refreshed : string list;
      (** qids whose representative was replaced by the latest arrival *)
}

val rotate : t -> rotation
(** Drop faded templates, refresh stale representatives; the affected
    qids (plus any earlier capacity evictions) are queued for
    {!drain_evictions}. *)

val drain_evictions : t -> string list
(** Qids whose cached optimizer state (plans, advisory bounds) must be
    evicted, accumulated since the last drain; clears the queue. *)
