(** JSONL statement stream (see the mli). *)

module Query = Relax_sql.Query
module Json = Relax_obs.Json

type event =
  | Entry of Query.entry
  | Malformed of { line : string; reason : string }

let parse_line ?(default_weight = 1.0) line =
  match Json.of_string line with
  | Error msg -> Error ("bad JSON: " ^ msg)
  | Ok j -> (
    match Json.member "sql" j with
    | Some (Json.String sql) -> (
      let qid =
        match Json.member "qid" j with
        | Some (Json.String q) -> q
        | _ -> ""
      in
      let weight =
        match Json.member "weight" j with
        | Some v -> Option.value (Json.to_float v) ~default:default_weight
        | None -> default_weight
      in
      match Relax_sql.Parser.statement sql with
      | stmt -> Ok { Query.qid; weight; stmt }
      | exception Relax_sql.Parser.Parse_error msg ->
        Error ("SQL parse error: " ^ msg)
      | exception Relax_sql.Lexer.Lex_error (msg, pos) ->
        Error (Printf.sprintf "SQL lex error at %d: %s" pos msg))
    | Some _ -> Error {|"sql" must be a string|}
    | None -> Error {|missing "sql" field|})

let line_of_entry (e : Query.entry) =
  Json.to_string
    (Json.Obj
       [
         ("qid", Json.String e.qid);
         ("sql", Json.String (Relax_sql.Pretty.statement_to_string e.stmt));
         ("weight", Json.Float e.weight);
       ])

let events ic =
  let rec next () =
    match input_line ic with
    | exception End_of_file -> Seq.Nil
    | line ->
      let line = String.trim line in
      if line = "" then next ()
      else
        let ev =
          match parse_line line with
          | Ok e -> Entry e
          | Error reason -> Malformed { line; reason }
        in
        Seq.Cons (ev, next)
  in
  next
