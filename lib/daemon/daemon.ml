(** The continuous tuning daemon (see the mli for the cycle model).

    Design notes:

    - {e Per-cycle metrics}: each re-tune runs under a private recorder
      installed as ambient, so [what_if_calls]/[cache_hits] are the
      cycle's own spend — the numbers the warm-vs-cold comparison in the
      bench reads.  Daemon-level counters and events go to the daemon's
      recorder, which outlives cycles.
    - {e Byte-identical rollback}: the previous deployment is kept as the
      exact JSON string written at its deploy time, and rollback restores
      both the parsed configuration and that string verbatim — the state
      file after a rollback is byte-for-byte the pre-faulty-deploy one.
    - {e Drift before tuning}: the probe runs against the {e current}
      window under the {e deployed} configuration through the shared
      what-if interface, so a healthy deployment costs one mostly-cached
      sweep.  A fired rollback skips tuning that cycle; the next cycle
      tunes from the restored deployment.
    - {e Shared cache hygiene}: window rotation refreshes representatives
      and drops faded templates; both invalidate per-qid cached plans, so
      the affected qids are evicted from the shared what-if interface
      ({!Relax_optimizer.Whatif.evict}) before the next cycle uses it. *)

module Query = Relax_sql.Query
module Config = Relax_physical.Config
module Config_json = Relax_physical.Config_json
module Ddl = Relax_physical.Ddl
module Catalog = Relax_catalog.Catalog
module O = Relax_optimizer
module T = Relax_tuner
module C = Relax_check
module Obs = Relax_obs

type options = {
  space_budget : float;
  mode : T.Tuner.mode;
  retune_every : int;
  min_statements : int;
  window_capacity : int;
  decay : float;
  min_weight : float;
  rotate_every : int;
  guard_margin : float;
  tolerances : C.Checker.tolerances;
  max_iterations : int;
  jobs : int;
  whatif_budget : int option;
  warm : bool;
  inject_drift : (int * float) option;
  state_path : string option;
}

let default_options ~space_budget () =
  {
    space_budget;
    mode = T.Tuner.Indexes_and_views;
    retune_every = 32;
    min_statements = 8;
    window_capacity = 64;
    decay = 0.98;
    min_weight = 0.05;
    rotate_every = 4;
    guard_margin = 0.25;
    tolerances = C.Checker.default_tolerances;
    max_iterations = 200;
    jobs = 1;
    whatif_budget = None;
    warm = true;
    inject_drift = None;
    state_path = None;
  }

type action =
  | Steady
  | Deployed of Ddl.delta
  | Rejected of string list
  | Rolled_back of { drift : float }

type retune = {
  ordinal : int;
  statements_seen : int;
  window_templates : int;
  window_weight : float;
  predicted_unit_cost : float option;
  realized_unit_cost : float option;
  what_if_calls : int;
  cache_hits : int;
  action : action;
  elapsed_s : float;
}

(* the previous deployment, exactly as deployed: parsed form, durable
   JSON bytes, and the unit-cost prediction active at its deploy time *)
type deployment = {
  dep_config : Config.t;
  dep_json : string;
  dep_predicted : float option;
}

type t = {
  catalog : Catalog.t;
  opts : options;
  window : Window.t;
  whatif : O.Whatif.t;
  recorder : Obs.Recorder.t;
  mutable deployed : Config.t;
  mutable deployed_json : string;
  mutable predicted_unit : float option;
  mutable prev : deployment option;
  mutable arrivals : int;
  mutable malformed_count : int;
  mutable retune_count : int;
  mutable rollback_count : int;
  mutable since_retune : int;
  mutable past : retune list;  (** newest first *)
}

let bump t name = Obs.Metrics.count (Obs.Recorder.metrics t.recorder) name 1
let emit t json = Obs.Recorder.emit t.recorder (fun () -> json)

let persist t =
  match t.opts.state_path with
  | None -> ()
  | Some path ->
    Out_channel.with_open_bin path (fun oc ->
        Out_channel.output_string oc t.deployed_json;
        Out_channel.output_char oc '\n')

let load_state path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error _ -> None
  | contents -> (
    let trimmed = String.trim contents in
    if trimmed = "" then None
    else
      match Config_json.of_string trimmed with
      | Ok cfg -> Some (cfg, trimmed)
      | Error msg ->
        failwith (Printf.sprintf "daemon: state file %s: %s" path msg))

let create ?recorder catalog (opts : options) =
  let recorder =
    match recorder with Some r -> r | None -> Obs.Recorder.create ()
  in
  let deployed, deployed_json =
    match Option.map load_state opts.state_path with
    | Some (Some (cfg, json)) -> (cfg, json)
    | _ -> (Config.empty, Config_json.to_string Config.empty)
  in
  {
    catalog;
    opts;
    window =
      Window.create ~decay:opts.decay ~capacity:opts.window_capacity
        ~min_weight:opts.min_weight ();
    whatif = O.Whatif.create catalog;
    recorder;
    deployed;
    deployed_json;
    predicted_unit = None;
    prev = None;
    arrivals = 0;
    malformed_count = 0;
    retune_count = 0;
    rollback_count = 0;
    since_retune = 0;
    past = [];
  }

let action_name = function
  | Steady -> "steady"
  | Deployed _ -> "deploy"
  | Rejected _ -> "reject"
  | Rolled_back _ -> "rollback"

let retune_json (r : retune) : Obs.Json.t =
  let opt_float = function
    | None -> Obs.Json.Null
    | Some f -> Obs.Json.Float f
  in
  let base =
    [
      ("event", Obs.Json.String "daemon.retune");
      ("ordinal", Obs.Json.Int r.ordinal);
      ("statements", Obs.Json.Int r.statements_seen);
      ("templates", Obs.Json.Int r.window_templates);
      ("window_weight", Obs.Json.Float r.window_weight);
      ("action", Obs.Json.String (action_name r.action));
      ("predicted_unit_cost", opt_float r.predicted_unit_cost);
      ("realized_unit_cost", opt_float r.realized_unit_cost);
      ("what_if_calls", Obs.Json.Int r.what_if_calls);
      ("cache_hits", Obs.Json.Int r.cache_hits);
      ("elapsed_s", Obs.Json.Float r.elapsed_s);
    ]
  in
  let extra =
    match r.action with
    | Steady -> []
    | Deployed delta ->
      [
        ("ddl_statements", Obs.Json.Int (Ddl.delta_cardinal delta));
        ("ddl", Obs.Json.String (Ddl.delta_to_string delta));
      ]
    | Rejected reasons ->
      [
        ( "reasons",
          Obs.Json.List (List.map (fun s -> Obs.Json.String s) reasons) );
      ]
    | Rolled_back { drift } -> [ ("drift", Obs.Json.Float drift) ]
  in
  Obs.Json.Obj (base @ extra)

(* one re-tune cycle's decision, run under the per-cycle recorder *)
let step t ordinal workload total_w =
  let unit c = if total_w > 0.0 then Some (c /. total_w) else None in
  (* 1. drift probe against the deployed configuration *)
  let realized =
    match t.predicted_unit with
    | None -> None
    | Some _ when total_w <= 0.0 -> None
    | Some _ ->
      let c = O.Whatif.workload_cost t.whatif t.deployed workload /. total_w in
      let c =
        match t.opts.inject_drift with
        | Some (at, factor) when at = ordinal -> c *. factor
        | _ -> c
      in
      Some c
  in
  let drifted =
    match (t.predicted_unit, realized) with
    | Some predicted, Some realized
      when Option.is_some t.prev
           && C.Guardrail.drift_exceeded ~margin:t.opts.guard_margin
                ~predicted ~realized ->
      Some (predicted, realized)
    | _ -> None
  in
  match drifted with
  | Some (predicted, realized_cost) ->
    (* 2a. auto-rollback: restore the previous deployment byte-identically
       and skip tuning this cycle *)
    let prev = Option.get t.prev in
    t.deployed <- prev.dep_config;
    t.deployed_json <- prev.dep_json;
    t.predicted_unit <- prev.dep_predicted;
    t.prev <- None;
    t.rollback_count <- t.rollback_count + 1;
    persist t;
    ( Rolled_back
        { drift = C.Guardrail.drift_ratio ~predicted ~realized:realized_cost },
      realized )
  | None ->
    (* 2b. re-tune, warm-started from the deployment when enabled *)
    let warm_start = t.opts.warm && not (Config.is_empty t.deployed) in
    let topts =
      {
        (T.Tuner.default_options ~mode:t.opts.mode
           ~space_budget:t.opts.space_budget ())
        with
        max_iterations = t.opts.max_iterations;
        jobs = t.opts.jobs;
        whatif_budget = t.opts.whatif_budget;
        initial_config = (if warm_start then Some t.deployed else None);
        whatif = (if t.opts.warm then Some t.whatif else None);
      }
    in
    let r = T.Tuner.tune t.catalog workload topts in
    let delta = Ddl.delta ~deployed:t.deployed ~target:r.recommended in
    if Ddl.delta_is_empty delta then begin
      (* the deployment is already the recommendation; refresh the
         prediction to the current window so drift tracks it *)
      t.predicted_unit <- unit r.recommended_cost;
      (Steady, realized)
    end
    else begin
      (* 3. guardrail: the delta must survive the oracles *)
      let verdict =
        C.Guardrail.validate ~tolerances:t.opts.tolerances t.catalog ~workload
          ~space_budget:t.opts.space_budget ~claimed_cost:r.recommended_cost
          r.recommended
      in
      if not verdict.C.Guardrail.passed then
        (Rejected verdict.C.Guardrail.reasons, realized)
      else begin
        t.prev <-
          Some
            {
              dep_config = t.deployed;
              dep_json = t.deployed_json;
              dep_predicted = t.predicted_unit;
            };
        t.deployed <- r.recommended;
        t.deployed_json <- Config_json.to_string r.recommended;
        t.predicted_unit <- unit r.recommended_cost;
        persist t;
        (Deployed delta, realized)
      end
    end

let retune t =
  t.retune_count <- t.retune_count + 1;
  t.since_retune <- 0;
  let ordinal = t.retune_count in
  let t0 = Obs.Clock.now () in
  let workload = Window.workload t.window in
  let total_w = Window.total_weight t.window in
  (* per-cycle recorder: what-if traffic of this cycle only *)
  let cycle = Obs.Recorder.create () in
  let action, realized =
    Obs.Recorder.with_ambient cycle (fun () -> step t ordinal workload total_w)
  in
  let snap = Obs.Recorder.snapshot cycle in
  (* window rotation + shared-cache eviction *)
  if t.opts.rotate_every > 0 && ordinal mod t.opts.rotate_every = 0 then begin
    let rot = Window.rotate t.window in
    if rot.Window.dropped <> [] || rot.Window.refreshed <> [] then
      bump t "daemon.rotate"
  end;
  (match Window.drain_evictions t.window with
  | [] -> ()
  | doomed -> O.Whatif.evict t.whatif ~keep:(fun q -> not (List.mem q doomed)));
  let r =
    {
      ordinal;
      statements_seen = t.arrivals;
      window_templates = List.length workload;
      window_weight = total_w;
      predicted_unit_cost = t.predicted_unit;
      realized_unit_cost = realized;
      what_if_calls = snap.Obs.Metrics.what_if_calls;
      cache_hits = snap.Obs.Metrics.cache_hits;
      action;
      elapsed_s = Obs.Clock.now () -. t0;
    }
  in
  t.past <- r :: t.past;
  bump t "daemon.retune";
  bump t ("daemon." ^ action_name action);
  Obs.Metrics.observe
    (Obs.Recorder.metrics t.recorder)
    "daemon.retune_latency" r.elapsed_s;
  emit t (retune_json r);
  r

let force_retune t = if Window.size t.window = 0 then None else Some (retune t)

let record_malformed t ~line ~reason =
  t.malformed_count <- t.malformed_count + 1;
  bump t "daemon.malformed";
  emit t
    (Obs.Json.Obj
       [
         ("event", Obs.Json.String "daemon.malformed");
         ("reason", Obs.Json.String reason);
         ("line", Obs.Json.String line);
       ]);
  None

let ingest t (e : Query.entry) =
  (* a parse-clean statement can still name tables this database does not
     have; a long-running service counts that as malformed input instead
     of letting the re-tune die on it *)
  match
    List.filter
      (fun tbl -> not (Catalog.mem_table t.catalog tbl))
      (Query.statement_tables e.stmt)
  with
  | _ :: _ as unknown ->
    record_malformed t
      ~line:(Relax_sql.Pretty.statement_to_string e.stmt)
      ~reason:("unknown table(s): " ^ String.concat ", " unknown)
  | [] ->
    t.arrivals <- t.arrivals + 1;
    t.since_retune <- t.since_retune + 1;
    Window.add t.window e;
    bump t "daemon.statements";
    if
      t.arrivals >= t.opts.min_statements
      && t.since_retune >= t.opts.retune_every
    then force_retune t
    else None

let ingest_event t = function
  | Stream.Entry e -> ingest t e
  | Stream.Malformed { line; reason } -> record_malformed t ~line ~reason

let finalize t =
  let final = if t.since_retune > 0 then force_retune t else None in
  persist t;
  bump t "daemon.shutdown";
  emit t
    (Obs.Json.Obj
       [
         ("event", Obs.Json.String "daemon.shutdown");
         ("statements", Obs.Json.Int t.arrivals);
         ("retunes", Obs.Json.Int t.retune_count);
         ("rollbacks", Obs.Json.Int t.rollback_count);
         ("malformed", Obs.Json.Int t.malformed_count);
         ("deployed_fingerprint", Obs.Json.String (Config.fingerprint t.deployed));
       ]);
  final

let window_workload t = Window.workload t.window
let deployed t = t.deployed
let deployed_json t = t.deployed_json
let predicted_unit_cost t = t.predicted_unit
let statements_seen t = t.arrivals
let retunes t = t.retune_count
let rollbacks t = t.rollback_count
let malformed t = t.malformed_count
let history t = List.rev t.past
