(** The continuous tuning daemon: ingest a statement stream, re-tune the
    sliding window incrementally, deploy guarded DDL deltas, roll back on
    cost drift.

    One {!t} owns a {!Window.t}, a shared what-if interface (plan cache
    and advisory bounds stay warm across re-tunes) and the deployed
    configuration with its durable JSON form.  Every
    [options.retune_every] ingested statements {!ingest} triggers a
    re-tune:

    + {e drift probe} — the deployed configuration is re-costed against
      the current window; realized per-unit-weight cost above the
      deployment-time prediction by more than [options.guard_margin]
      triggers auto-rollback to the previous configuration (restored
      byte-identically from its saved JSON) and skips tuning this cycle;
    + {e re-tune} — warm-started from the deployed configuration
      ([options.warm], the default) through the shared what-if interface,
      or from scratch when cold;
    + {e delta} — the recommendation is diffed against the deployment
      ({!Relax_physical.Ddl.delta}); an empty delta is a {!Steady} cycle
      (the prediction is refreshed to the current window);
    + {e guardrail} — a non-empty delta must pass
      {!Relax_check.Guardrail.validate} (invariants, size oracle, space
      budget, independent cost recompute) before it is deployed;
      failures are {!Rejected} and the deployment stands.

    Every [options.rotate_every] re-tunes the window rotates: faded
    templates are dropped, stale representatives refreshed, and the
    affected qids evicted from the shared what-if cache.

    Deploys, rollbacks and shutdown persist the deployed configuration's
    JSON to [options.state_path] when set; {!create} warm-loads it back,
    so a restarted daemon resumes from the last deployment. *)

module Query = Relax_sql.Query
module Config = Relax_physical.Config
module Ddl = Relax_physical.Ddl

type options = {
  space_budget : float;  (** bytes; [infinity] = unconstrained *)
  mode : Relax_tuner.Tuner.mode;
  retune_every : int;  (** statements between re-tunes *)
  min_statements : int;  (** no re-tune before this many arrivals *)
  window_capacity : int;
  decay : float;
  min_weight : float;  (** rotation drop floor *)
  rotate_every : int;  (** rotate the window every N re-tunes; 0 = never *)
  guard_margin : float;
      (** rollback when realized unit cost exceeds predicted by this
          fraction *)
  tolerances : Relax_check.Checker.tolerances;  (** guardrail oracles *)
  max_iterations : int;  (** relaxation cap per re-tune *)
  jobs : int;
  whatif_budget : int option;  (** frugal costing cap per re-tune *)
  warm : bool;
      (** warm-start re-tunes from the deployment through the shared
          what-if interface; [false] = every re-tune is from scratch *)
  inject_drift : (int * float) option;
      (** fault injection for tests/CI: at re-tune ordinal [n], multiply
          the realized window cost by the factor once *)
  state_path : string option;  (** durable deployed-configuration JSON *)
}

val default_options : space_budget:float -> unit -> options
(** retune_every 32, min_statements 8, window 64 templates at decay 0.98
    with drop floor 0.05, rotation every 4 re-tunes, guard margin 0.25,
    200 iterations per re-tune, sequential, warm. *)

(** What one re-tune cycle did. *)
type action =
  | Steady  (** recommendation equals the deployment; nothing to do *)
  | Deployed of Ddl.delta  (** the delta passed the guardrail *)
  | Rejected of string list  (** guardrail failure reasons; no deploy *)
  | Rolled_back of { drift : float }
      (** realized/predicted unit-cost ratio that fired the trigger *)

type retune = {
  ordinal : int;  (** 1-based re-tune counter *)
  statements_seen : int;  (** arrivals ingested when the cycle ran *)
  window_templates : int;
  window_weight : float;
  predicted_unit_cost : float option;  (** after the cycle *)
  realized_unit_cost : float option;  (** drift probe, when one ran *)
  what_if_calls : int;  (** optimizer calls this cycle spent *)
  cache_hits : int;
  action : action;
  elapsed_s : float;
}

type t

val create : ?recorder:Relax_obs.Recorder.t -> Relax_catalog.Catalog.t ->
  options -> t
(** [recorder] receives the daemon's JSONL events ([daemon.retune],
    [daemon.malformed], [daemon.shutdown]) and counters; a private one is
    created when absent.  When [options.state_path] names a readable
    file, the deployed configuration is loaded from it ({!create} raises
    [Failure] if the file exists but does not parse). *)

val ingest : t -> Query.entry -> retune option
(** Feed one statement; [Some cycle] when this arrival triggered a
    re-tune.  Statements naming tables the catalog does not have are
    counted as malformed and ignored instead of poisoning the window. *)

val ingest_event : t -> Stream.event -> retune option
(** {!ingest} for well-formed events; malformed lines are counted and
    emitted as [daemon.malformed] trace events. *)

val force_retune : t -> retune option
(** Run a re-tune cycle now ([None] on an empty window). *)

val finalize : t -> retune option
(** The SIGTERM path: one final re-tune over the residual window (when
    any statements arrived since the last cycle), persist the deployed
    configuration, emit [daemon.shutdown]. *)

val window_workload : t -> Query.workload
(** The current window exactly as the next re-tune would see it. *)

val deployed : t -> Config.t
val deployed_json : t -> string
(** The deployment's durable JSON — the exact bytes rollback restores. *)

val predicted_unit_cost : t -> float option
val statements_seen : t -> int
val retunes : t -> int
val rollbacks : t -> int
val malformed : t -> int
val history : t -> retune list  (** oldest first *)

val retune_json : retune -> Relax_obs.Json.t
(** The [daemon.retune] trace event body. *)
