(** One structured lint finding: rule id, position, message, suggestion.

    Findings are emitted both as human-readable text and as JSONL lines
    (reusing {!Relax_obs.Json}), so CI can keep the machine-readable
    report as an artifact while the build log stays greppable. *)

type t = {
  rule : string;  (** "L1" .. "L8", or "W0" for stale waivers *)
  file : string;  (** source path as recorded in the cmt, e.g. [lib/core/search.ml] *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based, matching the compiler's own convention *)
  message : string;
  suggestion : string;
}

val make :
  rule:string ->
  file:string ->
  line:int ->
  col:int ->
  message:string ->
  suggestion:string ->
  t
(** Build a finding from an already-extracted position. *)

val of_loc :
  rule:string -> message:string -> suggestion:string -> Location.t -> t
(** Build a finding from a compiler location (start position). *)

val compare : t -> t -> int
(** Order by file, line, column, rule — the emission order of reports. *)

val to_json : t -> Relax_obs.Json.t
(** [{"event":"lint.finding","rule":...,"file":...,"line":...,...}] *)

val pp : Format.formatter -> t -> unit
(** [file:line:col: [rule] message] plus an indented suggestion line. *)
