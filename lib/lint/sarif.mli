(** SARIF 2.1.0 rendering of lint results, for GitHub code scanning.

    One run, one driver ([relax-lint]), the full L1–L8 + W0 rule
    catalogue, and one result per finding.  Waived findings are included
    with an [inSource] suppression so the code-scanning UI shows them as
    suppressed rather than losing them.  Columns are converted from the
    compiler's 0-based convention to SARIF's 1-based one. *)

val to_json :
  findings:Finding.t list -> waived:Finding.t list -> Relax_obs.Json.t
(** The complete SARIF document as a JSON value. *)

val write :
  path:string -> findings:Finding.t list -> waived:Finding.t list -> unit
(** Write the document to [path] (single line, trailing newline). *)
