(** One typedtree walk per module, producing everything the
    interprocedural analysis needs:

    - a {e call-graph node} per top-level binding, plus sub-nodes for
      let-bound and inline lambdas (so a closure has its own effect
      signature, distinct from the function that builds it);
    - {e edges} for every resolved value reference — same-module
      references resolve by binder, cross-module ones by the
      [Mod.value] suffix of the path (seen through local module
      aliases), with the worst mutable argument recorded so
      [mutates-argument] effects can be re-interpreted at the call site;
    - {e direct effects} per node, from a primitive table (atomics,
      mutexes, clocks, [Hashtbl] iteration, IO, mutation of containers
      classified as parameter / local / captured / module-level), with
      mutations inside a mutex-held region — [Mutex.protect]'s thunk or
      a [lock]/[unlock] span tracked through sequences and branches —
      degraded to [mutex-guarded-mutation];
    - {e site markers} for the flow-sensitive rules: L2 catch-alls, L3
      float comparison / int division, L4 ambient reads, L5
      nondeterminism primitives, and the two L8 lock-discipline shapes
      (an [Atomic.set] to a [*snapshot*] cell outside any mutex-held
      region, and a mutex acquired while another is already held);
    - the [Relax_parallel.Pool] task-submission sites with the closure
      (or function) each one submits, for L6. *)

type target =
  | Tnode of string  (** resolved within this module *)
  | Tkey of string  (** ["Mod.value"], resolved by the engine *)

type raw_edge = {
  re_target : target;
  re_site : Effects.loc;
  re_guarded : bool;
  re_argk : Effects.argk;
}

type node = {
  n_id : string;
  n_modname : string;  (** canonical module name, e.g. ["Whatif"] *)
  n_source : string;
  n_loc : Effects.loc;
  n_toplevel : bool;
  n_pool_closure : bool;  (** a lambda submitted at a pool site *)
  n_direct : Effects.direct;
  n_edges : raw_edge list;
  n_key : string option;  (** cross-module resolution key *)
}

type marker =
  | M_catchall of Effects.loc
  | M_ignore of Effects.loc
  | M_float_cmp of Effects.loc * string  (** operator name *)
  | M_float_inst of Effects.loc
  | M_intdiv of Effects.loc
  | M_ambient of Effects.loc
  | M_clock of Effects.loc * string
  | M_selfinit of Effects.loc
  | M_hiter of Effects.loc * string
  | M_snapshot_unguarded of Effects.loc * string  (** cell description *)
  | M_nested_lock of Effects.loc

type pool_site = { ps_loc : Effects.loc; ps_target : target }

type analysis = {
  a_modname : string;
  a_source : string;
  a_nodes : node list;  (** in definition order *)
  a_pool_sites : pool_site list;
  a_mutables : (string * string * Effects.loc) list;
      (** module-level mutable containers: (kind, name, loc) — the L1
          candidates, with [Atomic.t]/[Mutex.t] and [Atomic.make]-built
          bindings already excluded *)
  a_markers : marker list;
}

val canonical_modname : string -> string
(** ["Relax_optimizer__Whatif"] -> ["Whatif"] (the part after the last
    dune wrapping separator). *)

val analyze :
  modname:string -> source:string -> Typedtree.structure -> analysis
(** [modname] is the raw cmt module name; the analysis stores and keys
    nodes by its canonical form. *)
