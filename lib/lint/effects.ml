type eff =
  | Mutates_shared
  | Mutates_args
  | Mutates_guarded
  | Acquires_mutex
  | Atomic_read
  | Atomic_write
  | Reads_clock
  | Nondet
  | Reads_ambient
  | Raises
  | Io

let all =
  [
    Mutates_shared;
    Mutates_args;
    Mutates_guarded;
    Acquires_mutex;
    Atomic_read;
    Atomic_write;
    Reads_clock;
    Nondet;
    Reads_ambient;
    Raises;
    Io;
  ]

let eff_name = function
  | Mutates_shared -> "mutates-shared-state"
  | Mutates_args -> "mutates-argument"
  | Mutates_guarded -> "mutex-guarded-mutation"
  | Acquires_mutex -> "acquires-mutex"
  | Atomic_read -> "atomic-read"
  | Atomic_write -> "atomic-write"
  | Reads_clock -> "reads-clock"
  | Nondet -> "nondeterministic-iteration"
  | Reads_ambient -> "reads-ambient-recorder"
  | Raises -> "raises"
  | Io -> "performs-io"

let captured_name = "mutates-captured-state"

let bit = function
  | Mutates_shared -> 1
  | Mutates_args -> 2
  | Mutates_guarded -> 4
  | Acquires_mutex -> 8
  | Atomic_read -> 16
  | Atomic_write -> 32
  | Reads_clock -> 64
  | Nondet -> 128
  | Reads_ambient -> 256
  | Raises -> 512
  | Io -> 1024

module Set = struct
  type t = int

  let empty = 0
  let singleton e = bit e
  let add e t = t lor bit e
  let mem e t = t land bit e <> 0
  let union = ( lor )
  let inter = ( land )
  let diff a b = a land lnot b
  let subset a b = a land lnot b = 0
  let is_empty t = t = 0
  let of_list l = List.fold_left (fun t e -> add e t) empty l
  let to_list t = List.filter (fun e -> mem e t) all
end

module SSet = Stdlib.Set.Make (String)
module SMap = Stdlib.Map.Make (String)

type loc = { file : string; line : int; col : int }
type witness = { w_eff : eff; w_detail : string; w_loc : loc }

type direct = {
  d_flagged : Set.t;
  d_sanctioned : Set.t;
  d_cap_param : SSet.t;
  d_cap_local : SSet.t;
  d_witnesses : (eff * witness) list;
  d_cap_witness : witness option;
}

let direct_empty =
  {
    d_flagged = Set.empty;
    d_sanctioned = Set.empty;
    d_cap_param = SSet.empty;
    d_cap_local = SSet.empty;
    d_witnesses = [];
    d_cap_witness = None;
  }

type argk =
  | Arg_none
  | Arg_args
  | Arg_captured_param of string
  | Arg_captured_local of string
  | Arg_shared

type edge = { callee : string; site : loc; guarded : bool; argk : argk }

type prov =
  | Direct of witness
  | Via of { callee : string; site : loc; src : [ `Eff of eff | `Cap ] }

type signature_ = {
  s_flagged : Set.t;
  s_sanctioned : Set.t;
  s_cap_param : SSet.t;
  s_cap_local : SSet.t;
  s_prov : (eff * prov) list;
  s_cap_prov : prov option;
}

let captured s =
  not (SSet.is_empty s.s_cap_param && SSet.is_empty s.s_cap_local)

(* --------------------------------------------------------------------- *)
(* fixpoint                                                              *)
(* --------------------------------------------------------------------- *)

(* Mutable working state per node; converted to [signature_] at the end. *)
type cell = {
  mutable flagged : Set.t;
  mutable sanctioned : Set.t;
  mutable cap_param : SSet.t;
  mutable cap_local : SSet.t;
  mutable prov : (eff * prov) list;  (* first acquisition only *)
  mutable cap_prov : prov option;
}

let add_eff cell ~sanctioned e p =
  if sanctioned then begin
    if not (Set.mem e cell.sanctioned) then begin
      cell.sanctioned <- Set.add e cell.sanctioned;
      true
    end
    else false
  end
  else if not (Set.mem e cell.flagged) then begin
    cell.flagged <- Set.add e cell.flagged;
    if not (List.mem_assoc e cell.prov) then cell.prov <- (e, p) :: cell.prov;
    true
  end
  else false

let add_cap cell which owner p =
  let set = match which with `P -> cell.cap_param | `L -> cell.cap_local in
  if SSet.mem owner set then false
  else begin
    (match which with
    | `P -> cell.cap_param <- SSet.add owner cell.cap_param
    | `L -> cell.cap_local <- SSet.add owner cell.cap_local);
    if cell.cap_prov = None then cell.cap_prov <- Some p;
    true
  end

(* Pull [callee]'s cell into [caller]'s through one edge.  Returns true
   when anything changed.  The [Mutates_args] bit is re-interpreted
   through the call site's worst argument; capture sets dissolve when
   they reach their owner; under a held mutex every mutation class
   degrades to [Mutates_guarded]. *)
let propagate ~caller_id caller callee edge =
  let changed = ref false in
  let mark b = if b then changed := true in
  let via src = Via { callee = edge.callee; site = edge.site; src } in
  let pull_set ~sanctioned set =
    List.iter
      (fun e ->
        if Set.mem e set then
          match e with
          | Mutates_args ->
            if edge.guarded then
              mark (add_eff caller ~sanctioned Mutates_guarded (via (`Eff e)))
            else (
              match edge.argk with
              | Arg_none -> ()
              | Arg_args ->
                mark (add_eff caller ~sanctioned Mutates_args (via (`Eff e)))
              | Arg_shared ->
                mark (add_eff caller ~sanctioned Mutates_shared (via (`Eff e)))
              | Arg_captured_param owner ->
                if sanctioned then
                  mark (add_eff caller ~sanctioned Mutates_args (via (`Eff e)))
                else mark (add_cap caller `P owner (via (`Eff e)))
              | Arg_captured_local owner ->
                if sanctioned then
                  mark (add_eff caller ~sanctioned Mutates_args (via (`Eff e)))
                else mark (add_cap caller `L owner (via (`Eff e))))
          | Mutates_shared when edge.guarded ->
            mark (add_eff caller ~sanctioned Mutates_guarded (via (`Eff e)))
          | e -> mark (add_eff caller ~sanctioned e (via (`Eff e))))
      all
  in
  pull_set ~sanctioned:false callee.flagged;
  pull_set ~sanctioned:true callee.sanctioned;
  let pull_caps which set =
    SSet.iter
      (fun owner ->
        if owner = caller_id then begin
          (* the capture has come home: the closure mutates what is, for
             this very node, a parameter or a plain local *)
          match which with
          | `P ->
            if edge.guarded then
              mark (add_eff caller ~sanctioned:false Mutates_guarded (via `Cap))
            else mark (add_eff caller ~sanctioned:false Mutates_args (via `Cap))
          | `L ->
            if edge.guarded then
              mark (add_eff caller ~sanctioned:false Mutates_guarded (via `Cap))
        end
        else if edge.guarded then
          mark (add_eff caller ~sanctioned:false Mutates_guarded (via `Cap))
        else mark (add_cap caller which owner (via `Cap)))
      set
  in
  pull_caps `P callee.cap_param;
  pull_caps `L callee.cap_local;
  !changed

let solve ~nodes ~edges =
  let nodes = List.sort (fun (a, _) (b, _) -> String.compare a b) nodes in
  let cells = Hashtbl.create (List.length nodes * 2) in
  List.iter
    (fun (id, d) ->
      Hashtbl.replace cells id
        {
          flagged = d.d_flagged;
          sanctioned = d.d_sanctioned;
          cap_param = d.d_cap_param;
          cap_local = d.d_cap_local;
          prov = List.map (fun (e, w) -> (e, Direct w)) d.d_witnesses;
          cap_prov = Option.map (fun w -> Direct w) d.d_cap_witness;
        })
    nodes;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (id, _) ->
        let caller = Hashtbl.find cells id in
        match SMap.find_opt id edges with
        | None -> ()
        | Some es ->
          List.iter
            (fun e ->
              match Hashtbl.find_opt cells e.callee with
              | None -> ()
              | Some callee ->
                if propagate ~caller_id:id caller callee e then changed := true)
            es)
      nodes
  done;
  List.fold_left
    (fun acc (id, _) ->
      let c = Hashtbl.find cells id in
      SMap.add id
        {
          s_flagged = c.flagged;
          s_sanctioned = c.sanctioned;
          s_cap_param = c.cap_param;
          s_cap_local = c.cap_local;
          s_prov = List.rev c.prov;
          s_cap_prov = c.cap_prov;
        }
        acc)
    SMap.empty nodes

let chain sigs start src =
  let rec go acc node src depth =
    if depth > 64 then (List.rev acc, None)
    else
      match SMap.find_opt node sigs with
      | None -> (List.rev acc, None)
      | Some s -> (
        let p =
          match src with
          | `Cap -> s.s_cap_prov
          | `Eff e -> List.assoc_opt e s.s_prov
        in
        match p with
        | None -> (List.rev acc, None)
        | Some (Direct w) -> (List.rev acc, Some w)
        | Some (Via v) -> go (v.callee :: acc) v.callee v.src (depth + 1))
  in
  go [ start ] start src 0

let names set ~cap =
  let l = List.map eff_name (Set.to_list set) in
  let l = if cap then l @ [ captured_name ] else l in
  List.sort String.compare l
