module J = Relax_obs.Json

let rules =
  [
    ( "L1",
      "error",
      "Module-level mutable state in a module reachable from \
       Relax_parallel.Pool task closures." );
    ("L2", "error", "Catch-all or exception-discarding handler.");
    ( "L3",
      "error",
      "Raw float comparison or int-truncating division in the costing \
       layers." );
    ( "L4",
      "error",
      "Ambient recorder slot accessed outside the observability layer." );
    ( "L5",
      "error",
      "Nondeterminism source: environment seeding, wall-clock read, or \
       unordered Hashtbl iteration." );
    ( "L6",
      "error",
      "Closure submitted to a worker-pool entry point carries effects \
       beyond atomics, mutex-guarded state, and task-local mutation." );
    ( "L7",
      "error",
      "Code reachable from the costing entry points (Cost_bound, \
       Size_model, Access_path) is not pure and deterministic." );
    ( "L8",
      "error",
      "Lock-discipline violation: snapshot published outside the \
       mutex-held region, or nested mutex acquisition." );
    ("W0", "note", "Inline waiver that no longer suppresses any finding.");
  ]

let level_of_rule rule =
  match List.find_opt (fun (r, _, _) -> r = rule) rules with
  | Some (_, level, _) -> level
  | None -> "warning"

let result_of ~suppressed (f : Finding.t) =
  let base =
    [
      ("ruleId", J.String f.rule);
      ("level", J.String (level_of_rule f.rule));
      ( "message",
        J.String (Printf.sprintf "%s Suggestion: %s." f.message f.suggestion)
      );
      ( "locations",
        J.List
          [
            J.Obj
              [
                ( "physicalLocation",
                  J.Obj
                    [
                      ( "artifactLocation",
                        J.Obj [ ("uri", J.String f.file) ] );
                      ( "region",
                        J.Obj
                          [
                            ("startLine", J.Int (max 1 f.line));
                            ("startColumn", J.Int (f.col + 1));
                          ] );
                    ] );
              ];
          ] );
    ]
  in
  let base =
    (* GitHub requires message.text, not a bare string *)
    List.map
      (fun (k, v) ->
        if k = "message" then
          match v with
          | J.String s -> (k, J.Obj [ ("text", J.String s) ])
          | v -> (k, v)
        else (k, v))
      base
  in
  J.Obj
    (if suppressed then
       base @ [ ("suppressions", J.List [ J.Obj [ ("kind", J.String "inSource") ] ]) ]
     else base)

let to_json ~findings ~waived =
  J.Obj
    [
      ( "$schema",
        J.String "https://json.schemastore.org/sarif-2.1.0.json" );
      ("version", J.String "2.1.0");
      ( "runs",
        J.List
          [
            J.Obj
              [
                ( "tool",
                  J.Obj
                    [
                      ( "driver",
                        J.Obj
                          [
                            ("name", J.String "relax-lint");
                            ("version", J.String "1.0.0");
                            ( "rules",
                              J.List
                                (List.map
                                   (fun (id, level, text) ->
                                     J.Obj
                                       [
                                         ("id", J.String id);
                                         ( "shortDescription",
                                           J.Obj [ ("text", J.String text) ]
                                         );
                                         ( "defaultConfiguration",
                                           J.Obj
                                             [ ("level", J.String level) ] );
                                       ])
                                   rules) );
                          ] );
                    ] );
                ( "results",
                  J.List
                    (List.map (result_of ~suppressed:false) findings
                    @ List.map (result_of ~suppressed:true) waived) );
              ];
          ] );
    ]

let write ~path ~findings ~waived =
  let oc = open_out path in
  output_string oc (J.to_string (to_json ~findings ~waived));
  output_char oc '\n';
  close_out oc
