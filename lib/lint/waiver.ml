type t = (int * string list) list
(** (line, waived rule ids), one entry per waiver comment *)

let empty = []
let marker = "relax-lint: allow "

(* rule ids after the marker, up to the first token that is not of the
   shape L<digits> (comma-separated lists allowed) *)
let parse_rules rest =
  let rest =
    match String.index_opt rest '*' with
    | Some i when i > 0 && rest.[i - 1] = ' ' -> String.sub rest 0 (i - 1)
    | _ -> rest
  in
  let tokens =
    String.split_on_char ' ' rest
    |> List.concat_map (String.split_on_char ',')
    |> List.filter (fun s -> s <> "")
  in
  let is_rule s =
    String.length s >= 2
    && s.[0] = 'L'
    && String.for_all (function '0' .. '9' -> true | _ -> false)
         (String.sub s 1 (String.length s - 1))
  in
  let rec take = function
    | s :: tl when is_rule s -> s :: take tl
    | _ -> []
  in
  take tokens

let find_marker line =
  let n = String.length line and m = String.length marker in
  let rec go i =
    if i + m > n then None
    else if String.sub line i m = marker then Some (i + m)
    else go (i + 1)
  in
  go 0

let load path =
  match open_in path with
  | exception Sys_error _ -> empty
  | ic ->
    let waivers = ref [] in
    let lineno = ref 0 in
    (try
       while true do
         let line = input_line ic in
         incr lineno;
         match find_marker line with
         | None -> ()
         | Some i -> (
           let rest = String.sub line i (String.length line - i) in
           match parse_rules rest with
           | [] -> ()
           | rules -> waivers := (!lineno, rules) :: !waivers)
       done
     with End_of_file -> ());
    close_in ic;
    !waivers

let covers t ~rule ~line =
  List.exists
    (fun (l, rules) -> (l = line || l = line - 1) && List.mem rule rules)
    t

let count t = List.length t

let entries t =
  List.sort (fun (a, _) (b, _) -> Int.compare a b) t
