type modul = {
  modname : string;
  source : string option;
  imports : string list;
  structure : Typedtree.structure option;
}

let rec cmt_files acc dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> acc
  | entries ->
    Array.sort String.compare entries;
    Array.fold_left
      (fun acc entry ->
        let path = Filename.concat dir entry in
        if Sys.is_directory path then cmt_files acc path
        else if Filename.check_suffix entry ".cmt" then path :: acc
        else acc)
      acc entries

let load path =
  match Cmt_format.read_cmt path with
  | exception _ -> None
  | cmt ->
    let structure =
      match cmt.cmt_annots with
      | Cmt_format.Implementation str -> Some str
      | _ -> None
    in
    Some
      {
        modname = cmt.cmt_modname;
        source = cmt.cmt_sourcefile;
        imports = List.map fst cmt.cmt_imports;
        structure;
      }

let scan ~root =
  cmt_files [] root
  |> List.filter_map load
  |> List.sort (fun a b -> String.compare a.modname b.modname)
