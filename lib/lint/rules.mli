(** The relax-lint rule catalogue, expressed as queries over the
    interprocedural call graph and the solved effect signatures
    ({!Callgraph}, {!Effects}).

    - {b L1 domain-safety}: module-level mutable state ([ref], [Hashtbl.t],
      [Buffer.t], [Queue.t], [Stack.t], [array], [bytes], [Random.State.t])
      in a module reachable from [Relax_parallel.Pool] task closures, unless
      the binding is an [Atomic.t] or a synchronization primitive.
    - {b L2 exception hygiene}: [try ... with _ ->] catch-alls and
      [with e -> ignore e] handlers.  A swallowed exception inside a pool
      task would break the order-preserving smallest-index-exception
      contract of [Pool.map].
    - {b L3 costing hygiene}: polymorphic [=], [==], [<>], [!=] or
      [compare] applied (or instantiated) at type [float] inside the
      costing layers, and [int]-truncating [/] inside page/byte arithmetic
      code.
    - {b L4 observability discipline}: reads of the ambient recorder slot
      outside [lib/obs]; deep layers must go through [Probe].
    - {b L5 determinism}: [Random.self_init] anywhere; wall-clock reads
      anywhere (timing routes through [Relax_obs.Clock], which carries the
      single waiver); [Hashtbl.fold]/[iter] inside the search core.
    - {b L6 parallel-purity}: a closure submitted to a
      [Relax_parallel.Pool] entry point whose {e solved} signature carries
      anything beyond atomics, mutex-guarded mutation, task-local mutation
      and [raise] — including mutation of captured state and effects
      reached through any number of call hops.
    - {b L7 costing-purity}: anything reachable from the costing entry
      modules ([Cost_bound], [Size_model], [Access_path]) that is not pure
      and deterministic (only [raise] is allowed).  The finding is placed
      at the grounded witness (the primitive that introduces the effect)
      and the message names the entry point and the call path.
    - {b L8 lock-discipline}: an atomic publish of a [*snapshot*] cell
      outside any mutex-held region (the Whatif publish-before-unlock
      protocol), and nested mutex acquisition — directly in one body, or
      through a call made while a lock is held. *)

(** Which rule scopes apply to the module under analysis (decided by the
    engine from the module's source path and the reachability closure). *)
type scope = {
  parallel_reachable : bool;  (** L1 applies *)
  in_obs : bool;  (** L4 exemption (the obs layer reads its own slot) *)
  in_costing : bool;  (** L3 float-comparison scope *)
  in_intdiv : bool;  (** L3 int-division scope *)
  in_core : bool;  (** L5 Hashtbl-iteration scope *)
  in_lock : bool;  (** L8 lock-discipline scope *)
}

(** The solved whole-program view the queries run against. *)
type graph = {
  sigs : Effects.signature_ Effects.SMap.t;
  node_by_id : (string, Callgraph.node) Hashtbl.t;
  resolve : Callgraph.target -> string list;
      (** [Tnode] resolves to itself; [Tkey "Mod.v"] to every node
          registered under that key (conservatively all, on collision). *)
}

val check_module : scope -> graph -> Callgraph.analysis -> Finding.t list
(** L1–L6 and L8 findings for one module, unsorted. *)

val check_costing :
  graph -> entry_modules:string list -> Callgraph.analysis list -> Finding.t list
(** L7: whole-program query over the costing entry modules' signatures,
    deduplicated by witness site and effect. *)

val references_pool_tasks : Callgraph.analysis -> bool
(** Does the module submit task closures to [Relax_parallel.Pool]
    ([Pool.map], [Pool.map_array]) or build a pool ([Pool.create])?
    Seeds the L1 reachability closure. *)
