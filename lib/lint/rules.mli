(** The five relax-lint rules, run over one module's {!Typedtree}.

    - {b L1 domain-safety}: module-level mutable state ([ref], [Hashtbl.t],
      [Buffer.t], [Queue.t], [Stack.t], [array], [bytes], [Random.State.t])
      in a module reachable from [Relax_parallel.Pool] task closures, unless
      the binding is an [Atomic.t] or a synchronization primitive.  The
      analysis is value-binding based: mutable fields of records created at
      run time are out of scope (the runtime differential checker and the
      TSan CI job cover those dynamically).
    - {b L2 exception hygiene}: [try ... with _ ->] catch-alls and
      [with e -> ignore e] handlers.  A swallowed exception inside a pool
      task would break the order-preserving smallest-index-exception
      contract of [Pool.map].
    - {b L3 costing hygiene}: polymorphic [=], [==], [<>], [!=] or
      [compare] applied (or instantiated) at type [float] inside the
      costing layers, and [int]-truncating [/] inside page/byte arithmetic
      code.  Cost and size comparisons must go through
      [Cost_bound.float_eq]/[float_leq].
    - {b L4 observability discipline}: reads of the ambient recorder slot
      ([Recorder.ambient]/[Recorder.current]) outside [lib/obs]; deep
      layers must go through [Probe] (installation via
      [Recorder.with_ambient] is allowed).
    - {b L5 determinism}: [Random.self_init] anywhere; wall-clock reads
      ([Unix.gettimeofday], [Unix.time], [Sys.time]) anywhere — all
      timing must route through [Relax_obs.Clock], whose implementation
      carries the repository's single waiver;
      [Hashtbl.fold]/[Hashtbl.iter] inside the search core, where
      unspecified iteration order can leak into candidate ordering and
      break the jobs-invariant bit-identical-results guarantee. *)

(** Which rule scopes apply to the module under analysis (decided by the
    engine from the module's source path and the reachability closure). *)
type scope = {
  parallel_reachable : bool;  (** L1 applies *)
  in_obs : bool;  (** L4 exemption (the obs layer reads its own slot) *)
  in_costing : bool;  (** L3 float-comparison scope *)
  in_intdiv : bool;  (** L3 int-division scope *)
  in_core : bool;  (** L5 Hashtbl-iteration scope *)
}

val check : scope -> Typedtree.structure -> Finding.t list
(** All findings of all rules for one module, in source order. *)

val references_pool_tasks : Typedtree.structure -> bool
(** Does the module submit task closures to [Relax_parallel.Pool]
    ([Pool.map] or [Pool.create])?  Seeds the L1 reachability closure. *)
