type config = {
  root : string;
  src_root : string;
  obs_dirs : string list;
  costing_dirs : string list;
  intdiv_dirs : string list;
  core_dirs : string list;
  assume_parallel : bool;
}

let default ~root =
  {
    root;
    src_root = ".";
    obs_dirs = [ "lib/obs" ];
    costing_dirs = [ "lib/core"; "lib/physical"; "lib/check" ];
    intdiv_dirs = [ "lib/physical" ];
    core_dirs = [ "lib/core" ];
    assume_parallel = false;
  }

type result = {
  findings : Finding.t list;
  waived : Finding.t list;
  modules_checked : int;
  parallel_reachable : string list;
}

let contains ~fragment s =
  let lf = String.length fragment and ls = String.length s in
  let rec go i =
    if i + lf > ls then false
    else String.sub s i lf = fragment || go (i + 1)
  in
  go 0

let in_dirs dirs source =
  List.exists (fun d -> contains ~fragment:d source) dirs

(* transitive import closure of the pool-task seeds, restricted to the
   modules actually loaded *)
let reachable_modules (mods : Cmt_load.modul list) =
  let by_name = Hashtbl.create 64 in
  List.iter (fun (m : Cmt_load.modul) -> Hashtbl.replace by_name m.modname m) mods;
  let seeds =
    List.filter
      (fun (m : Cmt_load.modul) ->
        (match m.source with
        | Some s -> in_dirs [ "lib/parallel" ] s
        | None -> false)
        ||
        match m.structure with
        | Some str -> Rules.references_pool_tasks str
        | None -> false)
      mods
  in
  let reachable = Hashtbl.create 64 in
  (* dune's generated wrapped-library alias module imports every sibling
     of its library; expanding through it would pull a whole library into
     the closure because one of its modules is. The alias carries no code
     of its own, so mark it but follow real modules only. *)
  let is_generated_alias (m : Cmt_load.modul) =
    match m.source with
    | Some s -> Filename.check_suffix s ".ml-gen"
    | None -> true
  in
  let rec visit name =
    if not (Hashtbl.mem reachable name) then begin
      match Hashtbl.find_opt by_name name with
      | None -> ()
      | Some (m : Cmt_load.modul) ->
        Hashtbl.replace reachable name ();
        if not (is_generated_alias m) then List.iter visit m.imports
    end
  in
  List.iter (fun (m : Cmt_load.modul) -> visit m.modname) seeds;
  reachable

let run config =
  let mods = Cmt_load.scan ~root:config.root in
  let reachable = reachable_modules mods in
  let findings = ref [] and waived = ref [] in
  let checked = ref 0 in
  List.iter
    (fun (m : Cmt_load.modul) ->
      match (m.structure, m.source) with
      | Some str, Some source ->
        incr checked;
        let scope =
          {
            Rules.parallel_reachable =
              config.assume_parallel || Hashtbl.mem reachable m.modname;
            in_obs = in_dirs config.obs_dirs source;
            in_costing = in_dirs config.costing_dirs source;
            in_intdiv = in_dirs config.intdiv_dirs source;
            in_core = in_dirs config.core_dirs source;
          }
        in
        let found = Rules.check scope str in
        if found <> [] then begin
          let w = Waiver.load (Filename.concat config.src_root source) in
          List.iter
            (fun (f : Finding.t) ->
              if Waiver.covers w ~rule:f.rule ~line:f.line then
                waived := f :: !waived
              else findings := f :: !findings)
            found
        end
      | _ -> ())
    mods;
  {
    findings = List.sort Finding.compare !findings;
    waived = List.sort Finding.compare !waived;
    modules_checked = !checked;
    parallel_reachable =
      Hashtbl.fold (fun k () acc -> k :: acc) reachable []
      |> List.sort String.compare;
  }
