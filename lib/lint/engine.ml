module E = Effects
module C = Callgraph

type config = {
  root : string;
  src_root : string;
  obs_dirs : string list;
  costing_dirs : string list;
  intdiv_dirs : string list;
  core_dirs : string list;
  lock_dirs : string list;
  costing_entry_modules : string list;
  assume_parallel : bool;
}

let default ~root =
  {
    root;
    src_root = ".";
    obs_dirs = [ "lib/obs" ];
    costing_dirs = [ "lib/core"; "lib/physical"; "lib/check" ];
    intdiv_dirs = [ "lib/physical" ];
    core_dirs = [ "lib/core" ];
    lock_dirs = [ "lib/optimizer"; "lib/parallel" ];
    costing_entry_modules = [ "Cost_bound"; "Size_model"; "Access_path" ];
    assume_parallel = false;
  }

type sig_row = {
  sr_node : string;
  sr_module : string;
  sr_source : string;
  sr_toplevel : bool;
  sr_pool : bool;
  sr_effects : string list;
  sr_sanctioned : string list;
}

type result = {
  findings : Finding.t list;
  waived : Finding.t list;
  modules_checked : int;
  parallel_reachable : string list;
  signatures : sig_row list;
}

let contains ~fragment s =
  let lf = String.length fragment and ls = String.length s in
  let rec go i =
    if i + lf > ls then false
    else String.sub s i lf = fragment || go (i + 1)
  in
  go 0

let in_dirs dirs source = List.exists (fun d -> contains ~fragment:d source) dirs

(* ------------------------------------------------------------------ *)
(* L1 reachability: transitive import closure of the pool-task seeds   *)
(* ------------------------------------------------------------------ *)

let reachable_modules (mods : (Cmt_load.modul * C.analysis option) list) =
  let by_name = Hashtbl.create 64 in
  List.iter
    (fun ((m : Cmt_load.modul), _) -> Hashtbl.replace by_name m.modname m)
    mods;
  let seeds =
    List.filter_map
      (fun ((m : Cmt_load.modul), analysis) ->
        let is_seed =
          (match m.source with
          | Some s -> in_dirs [ "lib/parallel" ] s
          | None -> false)
          ||
          match analysis with
          | Some a -> Rules.references_pool_tasks a
          | None -> false
        in
        if is_seed then Some m else None)
      mods
  in
  let reachable = Hashtbl.create 64 in
  (* dune's generated wrapped-library alias module imports every sibling
     of its library; expanding through it would pull a whole library into
     the closure because one of its modules is. The alias carries no code
     of its own, so mark it but follow real modules only. *)
  let is_generated_alias (m : Cmt_load.modul) =
    match m.source with
    | Some s -> Filename.check_suffix s ".ml-gen"
    | None -> true
  in
  let rec visit name =
    if not (Hashtbl.mem reachable name) then begin
      match Hashtbl.find_opt by_name name with
      | None -> ()
      | Some (m : Cmt_load.modul) ->
        Hashtbl.replace reachable name ();
        if not (is_generated_alias m) then List.iter visit m.imports
    end
  in
  List.iter (fun (m : Cmt_load.modul) -> visit m.modname) seeds;
  reachable

(* ------------------------------------------------------------------ *)
(* graph assembly                                                      *)
(* ------------------------------------------------------------------ *)

(* effects originating in the sanctioned observability layer move to
   the sanctioned side before the fixpoint runs *)
let sanctify (n : C.node) =
  let d = n.C.n_direct in
  {
    n with
    C.n_direct =
      {
        E.direct_empty with
        E.d_sanctioned = E.Set.union d.E.d_flagged d.E.d_sanctioned;
      };
  }

let build_graph (analyses : C.analysis list) =
  let node_by_id = Hashtbl.create 512 in
  let by_key = Hashtbl.create 256 in
  List.iter
    (fun (a : C.analysis) ->
      List.iter
        (fun (n : C.node) ->
          Hashtbl.replace node_by_id n.C.n_id n;
          match n.C.n_key with
          | None -> ()
          | Some k ->
            let prev =
              match Hashtbl.find_opt by_key k with Some l -> l | None -> []
            in
            Hashtbl.replace by_key k (n.C.n_id :: prev))
        a.C.a_nodes)
    analyses;
  Hashtbl.iter
    (fun k ids -> Hashtbl.replace by_key k (List.sort String.compare ids))
    (Hashtbl.copy by_key);
  let resolve = function
    | C.Tnode id -> [ id ]
    | C.Tkey k -> ( match Hashtbl.find_opt by_key k with Some l -> l | None -> [])
  in
  let nodes =
    List.concat_map
      (fun (a : C.analysis) ->
        List.map (fun (n : C.node) -> (n.C.n_id, n.C.n_direct)) a.C.a_nodes)
      analyses
  in
  let edges =
    List.fold_left
      (fun acc (a : C.analysis) ->
        List.fold_left
          (fun acc (n : C.node) ->
            let es =
              List.concat_map
                (fun (e : C.raw_edge) ->
                  List.map
                    (fun callee ->
                      {
                        E.callee;
                        site = e.C.re_site;
                        guarded = e.C.re_guarded;
                        argk = e.C.re_argk;
                      })
                    (resolve e.C.re_target))
                n.C.n_edges
            in
            if es = [] then acc else E.SMap.add n.C.n_id es acc)
          acc a.C.a_nodes)
      E.SMap.empty analyses
  in
  let sigs = E.solve ~nodes ~edges in
  { Rules.sigs; node_by_id; resolve }

let signature_rows (analyses : C.analysis list) (g : Rules.graph) =
  List.concat_map
    (fun (a : C.analysis) ->
      List.filter_map
        (fun (n : C.node) ->
          match E.SMap.find_opt n.C.n_id g.Rules.sigs with
          | None -> None
          | Some s ->
            Some
              {
                sr_node = n.C.n_id;
                sr_module = n.C.n_modname;
                sr_source = n.C.n_source;
                sr_toplevel = n.C.n_toplevel;
                sr_pool = n.C.n_pool_closure;
                sr_effects = E.names s.E.s_flagged ~cap:(E.captured s);
                sr_sanctioned = E.names s.E.s_sanctioned ~cap:false;
              })
        a.C.a_nodes)
    analyses
  |> List.sort (fun a b -> String.compare a.sr_node b.sr_node)

let sig_row_to_json r =
  let module J = Relax_obs.Json in
  J.Obj
    [
      ("event", J.String "lint.signature");
      ("node", J.String r.sr_node);
      ("module", J.String r.sr_module);
      ("source", J.String r.sr_source);
      ("toplevel", J.Bool r.sr_toplevel);
      ("pool_closure", J.Bool r.sr_pool);
      ("effects", J.List (List.map (fun e -> J.String e) r.sr_effects));
      ( "sanctioned",
        J.List (List.map (fun e -> J.String e) r.sr_sanctioned) );
    ]

(* ------------------------------------------------------------------ *)
(* run                                                                 *)
(* ------------------------------------------------------------------ *)

let run config =
  let mods = Cmt_load.scan ~root:config.root in
  let pairs =
    List.map
      (fun (m : Cmt_load.modul) ->
        match (m.structure, m.source) with
        | Some str, Some source ->
          let a = C.analyze ~modname:m.modname ~source str in
          let a =
            if in_dirs config.obs_dirs source then
              { a with C.a_nodes = List.map sanctify a.C.a_nodes }
            else a
          in
          (m, Some a)
        | _ -> (m, None))
      mods
  in
  let analyses = List.filter_map snd pairs in
  let reachable = reachable_modules pairs in
  let graph = build_graph analyses in
  let all_found = ref [] in
  let checked = ref 0 in
  List.iter
    (fun ((m : Cmt_load.modul), analysis) ->
      match (analysis, m.source) with
      | Some a, Some source ->
        incr checked;
        let scope =
          {
            Rules.parallel_reachable =
              config.assume_parallel || Hashtbl.mem reachable m.modname;
            in_obs = in_dirs config.obs_dirs source;
            in_costing = in_dirs config.costing_dirs source;
            in_intdiv = in_dirs config.intdiv_dirs source;
            in_core = in_dirs config.core_dirs source;
            in_lock = in_dirs config.lock_dirs source;
          }
        in
        all_found := Rules.check_module scope graph a :: !all_found
      | _ -> ())
    pairs;
  all_found :=
    Rules.check_costing graph ~entry_modules:config.costing_entry_modules
      analyses
    :: !all_found;
  (* waivers are keyed by the file a finding lands in (an L7 finding can
     ground in another module), so load them per file, lazily *)
  let waiver_cache = Hashtbl.create 64 in
  let waivers_for file =
    match Hashtbl.find_opt waiver_cache file with
    | Some w -> w
    | None ->
      let w = Waiver.load (Filename.concat config.src_root file) in
      Hashtbl.replace waiver_cache file w;
      w
  in
  let findings = ref [] and waived = ref [] in
  List.iter
    (fun (f : Finding.t) ->
      if Waiver.covers (waivers_for f.file) ~rule:f.rule ~line:f.line then
        waived := f :: !waived
      else findings := f :: !findings)
    (List.concat !all_found);
  (* W0: waiver comments that suppressed nothing in this run *)
  List.iter
    (fun (a : C.analysis) ->
      let w = waivers_for a.C.a_source in
      List.iter
        (fun (line, rules) ->
          let used =
            List.exists
              (fun (f : Finding.t) ->
                f.file = a.C.a_source
                && (f.line = line || f.line = line + 1)
                && List.mem f.rule rules)
              !waived
          in
          if not used then
            findings :=
              Finding.make ~rule:"W0" ~file:a.C.a_source ~line ~col:0
                ~message:
                  (Printf.sprintf
                     "stale waiver: `relax-lint: allow %s` suppresses no \
                      finding"
                     (String.concat "," rules))
                ~suggestion:
                  "delete the waiver (the code it excused is gone) or fix \
                   its rule list; stale waivers hide real future findings"
              :: !findings)
        (Waiver.entries w))
    analyses;
  {
    findings = List.sort_uniq Finding.compare !findings;
    waived = List.sort Finding.compare !waived;
    modules_checked = !checked;
    parallel_reachable =
      Hashtbl.fold (fun k () acc -> k :: acc) reachable []
      |> List.sort String.compare;
    signatures = signature_rows analyses graph;
  }
