(** The lint engine: load cmts, compute the L1 reachability closure,
    scope and run the rules, apply waivers.

    The L1 scope is the transitive import closure of every module that
    submits task closures to [Relax_parallel.Pool] (plus [lib/parallel]
    itself): anything such a module can call may execute on a worker
    domain.  Imports over-approximate calls, which is the safe direction
    for a race detector. *)

type config = {
  root : string;  (** directory scanned (recursively) for [.cmt] files *)
  src_root : string;
      (** prefix against which cmt-recorded source paths resolve (for
          reading waiver comments); [.] when running from the build root *)
  obs_dirs : string list;  (** path fragments exempt from L4/L5 *)
  costing_dirs : string list;  (** L3 float-comparison scope *)
  intdiv_dirs : string list;  (** L3 int-division scope *)
  core_dirs : string list;  (** L5 Hashtbl-iteration scope *)
  assume_parallel : bool;
      (** treat every module as pool-reachable (fixture testing) *)
}

val default : root:string -> config
(** The repository layout: obs = [lib/obs], costing = [lib/core],
    [lib/physical], [lib/check], int-division = [lib/physical], core =
    [lib/core]; [src_root = "."]. *)

type result = {
  findings : Finding.t list;  (** unwaived, sorted by position *)
  waived : Finding.t list;  (** suppressed by inline waivers *)
  modules_checked : int;
  parallel_reachable : string list;  (** module names in the L1 closure *)
}

val run : config -> result
