(** The lint engine: load cmts, build the whole-program call graph,
    solve effect signatures to a fixpoint, scope and run the rules,
    apply waivers, and report the ones that suppress nothing (W0).

    The L1 scope is the transitive import closure of every module that
    submits task closures to [Relax_parallel.Pool] (plus [lib/parallel]
    itself): anything such a module can call may execute on a worker
    domain.  Imports over-approximate calls, which is the safe direction
    for a race detector.  L6–L8 instead run over the solved call graph,
    so an effect introduced two call hops away — or smuggled through a
    captured mutable — still reaches the rule.

    Modules under [obs_dirs] are {e sanctioned}: their direct effects
    move to the sanctioned side of every signature they flow into.  The
    observability layer's domain-safety is established separately (its
    own rule scope, the TSan job, the single waived clock read), so a
    probe emitted from a pool task does not fail L6. *)

type config = {
  root : string;  (** directory scanned (recursively) for [.cmt] files *)
  src_root : string;
      (** prefix against which cmt-recorded source paths resolve (for
          reading waiver comments); [.] when running from the build root *)
  obs_dirs : string list;  (** sanctioned instrumentation layer, exempt L4 *)
  costing_dirs : string list;  (** L3 float-comparison scope *)
  intdiv_dirs : string list;  (** L3 int-division scope *)
  core_dirs : string list;  (** L5 Hashtbl-iteration scope *)
  lock_dirs : string list;  (** L8 lock-discipline scope *)
  costing_entry_modules : string list;
      (** canonical module names whose public bindings seed L7 *)
  assume_parallel : bool;
      (** treat every module as pool-reachable (fixture testing) *)
}

val default : root:string -> config
(** The repository layout: obs = [lib/obs]; costing = [lib/core],
    [lib/physical], [lib/check]; int-division = [lib/physical]; core =
    [lib/core]; locks = [lib/optimizer], [lib/parallel]; costing entry
    modules = [Cost_bound], [Size_model], [Access_path];
    [src_root = "."]. *)

(** One row of the [--effects-dump] table: a node and its solved
    signature, with effect sets rendered as sorted name lists. *)
type sig_row = {
  sr_node : string;
  sr_module : string;
  sr_source : string;
  sr_toplevel : bool;
  sr_pool : bool;
  sr_effects : string list;  (** flagged side, plus the captured pseudo-effect *)
  sr_sanctioned : string list;
}

type result = {
  findings : Finding.t list;  (** unwaived, sorted by position *)
  waived : Finding.t list;  (** suppressed by inline waivers *)
  modules_checked : int;
  parallel_reachable : string list;  (** module names in the L1 closure *)
  signatures : sig_row list;  (** every node, sorted by node id *)
}

val run : config -> result

val sig_row_to_json : sig_row -> Relax_obs.Json.t
(** [{"event":"lint.signature","node":...,"effects":[...],...}] — one
    line of the effects dump. *)
