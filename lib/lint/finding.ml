type t = {
  rule : string;
  file : string;
  line : int;
  col : int;
  message : string;
  suggestion : string;
}

let make ~rule ~file ~line ~col ~message ~suggestion =
  { rule; file; line; col; message; suggestion }

let of_loc ~rule ~message ~suggestion (loc : Location.t) =
  let p = loc.loc_start in
  {
    rule;
    file = p.pos_fname;
    line = p.pos_lnum;
    col = p.pos_cnum - p.pos_bol;
    message;
    suggestion;
  }

let compare a b =
  match String.compare a.file b.file with
  | 0 -> (
    match Int.compare a.line b.line with
    | 0 -> (
      match Int.compare a.col b.col with
      | 0 -> String.compare a.rule b.rule
      | c -> c)
    | c -> c)
  | c -> c

let to_json f =
  let module J = Relax_obs.Json in
  J.Obj
    [
      ("event", J.String "lint.finding");
      ("rule", J.String f.rule);
      ("file", J.String f.file);
      ("line", J.Int f.line);
      ("col", J.Int f.col);
      ("message", J.String f.message);
      ("suggestion", J.String f.suggestion);
    ]

let pp ppf f =
  Fmt.pf ppf "%s:%d:%d: [%s] %s@.    suggestion: %s" f.file f.line f.col
    f.rule f.message f.suggestion
