(** Inline lint waivers.

    A finding is suppressed by a comment of the form

    {v (* relax-lint: allow L1 reason why this is safe *) v}

    placed on the same line as the flagged expression or on the line
    directly above it.  Several rules can be waived at once by separating
    their ids with commas ([allow L1,L5 ...]).  The reason text is
    mandatory by convention but not enforced; it is what reviewers read. *)

type t
(** The waivers of one source file. *)

val empty : t

val load : string -> t
(** Parse the waiver comments of a source file; a missing or unreadable
    file yields {!empty} (the finding then stands). *)

val covers : t -> rule:string -> line:int -> bool
(** Is a finding of [rule] at [line] covered by a waiver on that line or
    the line above it? *)

val count : t -> int
(** Number of waiver comments in the file. *)

val entries : t -> (int * string list) list
(** All waiver comments as [(line, waived rule ids)], sorted by line —
    the input of the W0 stale-waiver check. *)
