(** Loading typed modules from dune's [.cmt] files.

    The driver runs inside the build tree (an action of the [@lint]
    alias), where dune has already produced a [.cmt] per module under
    [<dir>/.<lib>.objs/byte/].  Reading those back gives the full
    {!Typedtree} with types resolved — no re-typechecking, no load-path
    setup — plus the import list used for the L1 reachability closure. *)

type modul = {
  modname : string;  (** compiled module name, e.g. [Relax_tuner__Search] *)
  source : string option;
      (** source path as recorded by the compiler, workspace-relative
          (e.g. [lib/core/search.ml]); [None] for generated modules *)
  imports : string list;  (** module names whose interfaces were consulted *)
  structure : Typedtree.structure option;
      (** the implementation; [None] for interface-only or packed cmts *)
}

val scan : root:string -> modul list
(** Recursively collect every readable [*.cmt] under [root], sorted by
    module name.  Unreadable or wrong-version files are skipped. *)
