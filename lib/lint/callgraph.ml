(* One typedtree walk per module: nodes, edges, direct effects, lock
   regions, pool-submission sites and the flow-sensitive rule markers.
   See the interface for the model. *)

module E = Effects

type target = Tnode of string | Tkey of string

type raw_edge = {
  re_target : target;
  re_site : E.loc;
  re_guarded : bool;
  re_argk : E.argk;
}

type node = {
  n_id : string;
  n_modname : string;
  n_source : string;
  n_loc : E.loc;
  n_toplevel : bool;
  n_pool_closure : bool;
  n_direct : E.direct;
  n_edges : raw_edge list;
  n_key : string option;
}

type marker =
  | M_catchall of E.loc
  | M_ignore of E.loc
  | M_float_cmp of E.loc * string
  | M_float_inst of E.loc
  | M_intdiv of E.loc
  | M_ambient of E.loc
  | M_clock of E.loc * string
  | M_selfinit of E.loc
  | M_hiter of E.loc * string
  | M_snapshot_unguarded of E.loc * string
  | M_nested_lock of E.loc

type pool_site = { ps_loc : E.loc; ps_target : target }

type analysis = {
  a_modname : string;
  a_source : string;
  a_nodes : node list;
  a_pool_sites : pool_site list;
  a_mutables : (string * string * E.loc) list;
  a_markers : marker list;
}

let canonical_modname m =
  let n = String.length m in
  let rec go i best =
    if i + 1 >= n then best
    else if m.[i] = '_' && m.[i + 1] = '_' then go (i + 1) (Some (i + 2))
    else go (i + 1) best
  in
  match go 0 None with
  | Some i when i < n -> String.sub m i (n - i)
  | _ -> m

(* ------------------------------------------------------------------ *)
(* path and type helpers (shared with the rule layer via this module)  *)
(* ------------------------------------------------------------------ *)

let ends_with ~suffix s =
  let ls = String.length suffix and l = String.length s in
  l >= ls && String.sub s (l - ls) ls = suffix

let path_is p suffixes =
  let name = Path.name p in
  List.exists
    (fun suffix -> name = suffix || ends_with ~suffix:("." ^ suffix) name)
    suffixes

let head_constr ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> Some p
  | _ -> None

let is_float ty =
  match head_constr ty with
  | Some p -> Path.same p Predef.path_float
  | None -> false

let is_int ty =
  match head_constr ty with
  | Some p -> Path.same p Predef.path_int
  | None -> false

let arrow_arg ty =
  match Types.get_desc ty with
  | Types.Tarrow (_, a, _, _) -> Some a
  | _ -> None

let mutable_container ty =
  match head_constr ty with
  | None -> None
  | Some p ->
    if Path.same p Predef.path_array then Some "array"
    else if Path.same p Predef.path_bytes then Some "bytes"
    else if path_is p [ "ref" ] then Some "ref"
    else if path_is p [ "Hashtbl.t" ] then Some "Hashtbl.t"
    else if path_is p [ "Buffer.t" ] then Some "Buffer.t"
    else if path_is p [ "Queue.t" ] then Some "Queue.t"
    else if path_is p [ "Stack.t" ] then Some "Stack.t"
    else if path_is p [ "Random.State.t" ] then Some "Random.State.t"
    else None

let synchronized ty =
  match head_constr ty with
  | Some p ->
    path_is p [ "Atomic.t"; "Mutex.t"; "Condition.t"; "Semaphore.Counting.t" ]
  | None -> false

(* Types that cannot transport a mutation back to the caller; anything
   else is treated as possibly-mutable when ranking call-site arguments. *)
let rec immutable_ty ty =
  match Types.get_desc ty with
  | Types.Tarrow _ -> true
  | Types.Ttuple ts -> List.for_all immutable_ty ts
  | Types.Tvar _ | Types.Tpoly _ -> true
  | Types.Tconstr (p, args, _) ->
    (Path.same p Predef.path_int || Path.same p Predef.path_float
    || Path.same p Predef.path_bool
    || Path.same p Predef.path_string
    || Path.same p Predef.path_char
    || Path.same p Predef.path_unit
    || Path.same p Predef.path_option
    || Path.same p Predef.path_list
    || Path.same p Predef.path_exn)
    && List.for_all immutable_ty args
  | _ -> false

let possibly_mutable ty = (not (immutable_ty ty)) && not (synchronized ty)

let key_of_path p =
  let n = Path.name p in
  match List.rev (String.split_on_char '.' n) with
  | v :: m :: _ -> m ^ "." ^ v
  | [ v ] -> v
  | [] -> n

let op_name p =
  let n = Path.name p in
  match String.rindex_opt n '.' with
  | Some i -> String.sub n (i + 1) (String.length n - i - 1)
  | None -> n

let lower_contains ~fragment s =
  let s = String.lowercase_ascii s in
  let lf = String.length fragment and ls = String.length s in
  let rec go i =
    if i + lf > ls then false else String.sub s i lf = fragment || go (i + 1)
  in
  go 0

(* ------------------------------------------------------------------ *)
(* primitive tables                                                    *)
(* ------------------------------------------------------------------ *)

let comparison_ops = [ "Stdlib.="; "Stdlib.=="; "Stdlib.<>"; "Stdlib.!=" ]
let compare_fns = [ "Stdlib.compare"; "compare" ]
let clock_prims = [ "Unix.gettimeofday"; "Unix.time"; "Sys.time" ]
let ambient_prims = [ "Recorder.ambient"; "Recorder.current" ]
let hiter_prims = [ "Hashtbl.fold"; "Hashtbl.iter" ]

let raise_prims =
  [
    "Stdlib.raise";
    "Stdlib.raise_notrace";
    "Stdlib.failwith";
    "Stdlib.invalid_arg";
  ]

let atomic_read_prims = [ "Atomic.get" ]

let atomic_write_prims =
  [
    "Atomic.set";
    "Atomic.exchange";
    "Atomic.compare_and_set";
    "Atomic.fetch_and_add";
    "Atomic.incr";
    "Atomic.decr";
  ]

let io_prims =
  [
    "Stdlib.print_string";
    "Stdlib.print_endline";
    "Stdlib.print_newline";
    "Stdlib.print_char";
    "Stdlib.print_int";
    "Stdlib.print_float";
    "Stdlib.prerr_string";
    "Stdlib.prerr_endline";
    "Stdlib.prerr_newline";
    "Printf.printf";
    "Printf.eprintf";
    "Printf.fprintf";
    "Format.printf";
    "Format.eprintf";
    "Format.fprintf";
    "Stdlib.output_string";
    "Stdlib.output_char";
    "Stdlib.output_bytes";
    "Stdlib.output_value";
    "Stdlib.open_in";
    "Stdlib.open_in_bin";
    "Stdlib.open_out";
    "Stdlib.open_out_bin";
    "Stdlib.close_in";
    "Stdlib.close_out";
    "Stdlib.input_line";
    "Stdlib.read_line";
    "Stdlib.flush";
    "Stdlib.exit";
    "Sys.command";
    "Sys.remove";
    "Sys.rename";
    "Sys.readdir";
    "Sys.getenv";
    "Sys.getenv_opt";
    "Out_channel.with_open_bin";
    "Out_channel.with_open_text";
    "Out_channel.output_string";
    "Out_channel.output_char";
    "Out_channel.flush";
    "In_channel.with_open_bin";
    "In_channel.with_open_text";
    "In_channel.input_all";
    "Unix.openfile";
    "Unix.read";
    "Unix.write";
    "Unix.sleep";
    "Unix.sleepf";
    "Unix.mkdir";
    "Unix.unlink";
  ]

(* (suffix, index of the mutated argument among explicit arguments) *)
let mutation_prims =
  [
    ("Stdlib.:=", 0);
    ("Stdlib.incr", 0);
    ("Stdlib.decr", 0);
    ("Hashtbl.add", 0);
    ("Hashtbl.replace", 0);
    ("Hashtbl.remove", 0);
    ("Hashtbl.reset", 0);
    ("Hashtbl.clear", 0);
    ("Hashtbl.filter_map_inplace", 1);
    ("Array.set", 0);
    ("Array.unsafe_set", 0);
    ("Array.fill", 0);
    ("Array.blit", 2);
    ("Array.sort", 1);
    ("Array.fast_sort", 1);
    ("Array.stable_sort", 1);
    ("Bytes.set", 0);
    ("Bytes.unsafe_set", 0);
    ("Bytes.fill", 0);
    ("Bytes.blit", 2);
    ("Buffer.add_string", 0);
    ("Buffer.add_char", 0);
    ("Buffer.add_bytes", 0);
    ("Buffer.add_substring", 0);
    ("Buffer.add_buffer", 0);
    ("Buffer.clear", 0);
    ("Buffer.reset", 0);
    ("Queue.push", 1);
    ("Queue.add", 1);
    ("Queue.pop", 0);
    ("Queue.take", 0);
    ("Queue.take_opt", 0);
    ("Queue.clear", 0);
    ("Queue.transfer", 0);
    ("Stack.push", 1);
    ("Stack.pop", 0);
    ("Stack.clear", 0);
  ]

let mutation_prim p =
  let n = Path.name p in
  List.find_opt
    (fun (suffix, _) -> n = suffix || ends_with ~suffix:("." ^ suffix) n)
    mutation_prims

(* ------------------------------------------------------------------ *)
(* walk state                                                          *)
(* ------------------------------------------------------------------ *)

type binder_kind =
  | B_param of string
  | B_local of string
  | B_sub of string
  | B_top of string

type acc = {
  ac_id : string;
  ac_loc : E.loc;
  ac_toplevel : bool;
  ac_pool : bool;
  ac_key : string option;
  mutable ac_direct : E.direct;
  mutable ac_edges : raw_edge list; (* reversed *)
}

type st = {
  st_mod : string; (* canonical *)
  st_src : string;
  binders : (string, binder_kind) Hashtbl.t; (* Ident.unique_name *)
  accs : (string, acc) Hashtbl.t; (* node id -> acc *)
  vb_nodes : (string, acc) Hashtbl.t; (* rendered pattern loc -> acc *)
  counters : (string, int ref) Hashtbl.t;
  mutable order : acc list; (* reversed definition order *)
  mutable pool_sites : pool_site list; (* reversed *)
  mutable mutables : (string * string * E.loc) list; (* reversed *)
  mutable markers : marker list; (* reversed *)
  mutable held : string list; (* lock tokens, innermost first *)
}

let loc_of (l : Location.t) =
  let p = l.loc_start in
  { E.file = p.pos_fname; line = p.pos_lnum; col = p.pos_cnum - p.pos_bol }

let loc_key (l : Location.t) =
  Printf.sprintf "%s:%d:%d:%d" l.loc_start.pos_fname l.loc_start.pos_lnum
    l.loc_start.pos_cnum l.loc_end.pos_cnum

let mark st m = st.markers <- m :: st.markers

let new_acc st ~id ~loc ~toplevel ~pool ~key =
  let a =
    {
      ac_id = id;
      ac_loc = loc;
      ac_toplevel = toplevel;
      ac_pool = pool;
      ac_key = key;
      ac_direct = E.direct_empty;
      ac_edges = [];
    }
  in
  Hashtbl.replace st.accs id a;
  st.order <- a :: st.order;
  a

(* deterministic fresh names: parent scoping plus a per-key counter *)
let counter st key =
  match Hashtbl.find_opt st.counters key with
  | Some r ->
    incr r;
    !r
  | None ->
    Hashtbl.replace st.counters key (ref 1);
    1

let fresh_sub st parent kind =
  Printf.sprintf "%s.<%s#%d>" parent kind (counter st (parent ^ "/" ^ kind))

let sub_id st parent name =
  let base = parent ^ "." ^ name in
  if Hashtbl.mem st.accs base then
    Printf.sprintf "%s#%d" base (counter st (base ^ "/shadow") + 1)
  else base

let eff acc ?(detail = "") e loc =
  let d = acc.ac_direct in
  if not (E.Set.mem e d.E.d_flagged) then
    acc.ac_direct <-
      {
        d with
        E.d_flagged = E.Set.add e d.E.d_flagged;
        d_witnesses =
          d.E.d_witnesses @ [ (e, { E.w_eff = e; w_detail = detail; w_loc = loc }) ];
      }

let cap acc which owner ~detail loc =
  let d = acc.ac_direct in
  let present =
    match which with
    | `P -> E.SSet.mem owner d.E.d_cap_param
    | `L -> E.SSet.mem owner d.E.d_cap_local
  in
  if not present then
    acc.ac_direct <-
      {
        d with
        E.d_cap_param =
          (match which with
          | `P -> E.SSet.add owner d.E.d_cap_param
          | `L -> d.E.d_cap_param);
        d_cap_local =
          (match which with
          | `L -> E.SSet.add owner d.E.d_cap_local
          | `P -> d.E.d_cap_local);
        d_cap_witness =
          (match d.E.d_cap_witness with
          | Some _ as w -> w
          | None ->
            Some { E.w_eff = E.Mutates_args; w_detail = detail; w_loc = loc });
      }

let edge st acc target ~site ~argk =
  acc.ac_edges <-
    { re_target = target; re_site = site; re_guarded = st.held <> []; re_argk = argk }
    :: acc.ac_edges

(* ------------------------------------------------------------------ *)
(* identifier and mutation-target classification                       *)
(* ------------------------------------------------------------------ *)

type iclass =
  | I_param of string
  | I_local of string
  | I_sub of string
  | I_top of string
  | I_unknown

let classify st (id : Ident.t) =
  match Hashtbl.find_opt st.binders (Ident.unique_name id) with
  | Some (B_param o) -> I_param o
  | Some (B_local o) -> I_local o
  | Some (B_sub n) -> I_sub n
  | Some (B_top n) -> I_top n
  | None -> I_unknown

let register st id kind = Hashtbl.replace st.binders (Ident.unique_name id) kind

let rec base_ident (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_ident (Path.Pident id, _, _) -> Some (`Id id)
  | Texp_ident (_, _, _) -> Some `Dot
  | Texp_field (b, _, _) -> base_ident b
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args)
    when path_is p [ "Array.get"; "Array.unsafe_get"; "Bytes.get" ] -> (
    match List.filter_map snd args with
    | b :: _ -> base_ident b
    | [] -> None)
  | _ -> None

(* how a mutation of (or through) [e] relates to the node [acc] *)
type mtk =
  | K_shared
  | K_args
  | K_cap_param of string
  | K_cap_local of string
  | K_local
  | K_unknown

let target_kind st acc (e : Typedtree.expression) =
  match base_ident e with
  | Some `Dot -> K_shared
  | Some (`Id id) -> (
    match classify st id with
    | I_param o -> if o = acc.ac_id then K_args else K_cap_param o
    | I_local o -> if o = acc.ac_id then K_local else K_cap_local o
    | I_top _ -> K_shared
    | I_sub _ | I_unknown -> K_unknown)
  | None -> K_unknown

let record_mutation st acc ~detail kind loc =
  if st.held <> [] then begin
    match kind with
    | K_local | K_unknown -> ()
    | _ -> eff acc ~detail E.Mutates_guarded loc
  end
  else
    match kind with
    | K_shared -> eff acc ~detail E.Mutates_shared loc
    | K_args -> eff acc ~detail E.Mutates_args loc
    | K_cap_param o -> cap acc `P o ~detail loc
    | K_cap_local o -> cap acc `L o ~detail loc
    | K_local | K_unknown -> ()

(* worst possibly-mutable identifier among explicit arguments *)
let argk_rank = function
  | E.Arg_none -> 0
  | E.Arg_args -> 1
  | E.Arg_captured_local _ -> 2
  | E.Arg_captured_param _ -> 3
  | E.Arg_shared -> 4

let call_argk st acc (args : Typedtree.expression list) =
  List.fold_left
    (fun worst (a : Typedtree.expression) ->
      let k =
        if not (possibly_mutable a.exp_type) then E.Arg_none
        else
          match target_kind st acc a with
          | K_shared -> E.Arg_shared
          | K_args -> E.Arg_args
          | K_cap_param o -> E.Arg_captured_param o
          | K_cap_local o -> E.Arg_captured_local o
          | K_local | K_unknown -> E.Arg_none
      in
      if argk_rank k > argk_rank worst then k else worst)
    E.Arg_none args

let head_target st p =
  match p with
  | Path.Pident id -> (
    match classify st id with
    | I_sub n | I_top n -> Some (Tnode n)
    | _ -> None)
  | _ -> Some (Tkey (key_of_path p))

(* ------------------------------------------------------------------ *)
(* lock-region bookkeeping                                             *)
(* ------------------------------------------------------------------ *)

let rec lock_token (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> Path.name p
  | Texp_field (b, _, ld) -> lock_token b ^ "." ^ ld.lbl_name
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args)
    when path_is p [ "Array.get"; "Array.unsafe_get" ] -> (
    match List.filter_map snd args with
    | b :: _ -> lock_token b ^ ".()"
    | [] -> "?")
  | _ -> "?"

let push_lock st tok loc =
  if st.held <> [] then mark st (M_nested_lock loc);
  st.held <- tok :: st.held

let pop_lock st tok =
  if tok <> "?" then begin
    let rec rm = function
      | [] -> []
      | t :: rest -> if t = tok then rest else t :: rm rest
    in
    st.held <- rm st.held
  end

let with_branches st (walks : (unit -> unit) list) =
  let h0 = st.held in
  let exits =
    List.map
      (fun w ->
        st.held <- h0;
        w ();
        st.held)
      walks
  in
  match exits with
  | [] -> st.held <- h0
  | e0 :: rest ->
    st.held <- List.filter (fun t -> List.for_all (List.mem t) rest) e0

let rec target_desc (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> Path.name p
  | Texp_field (b, _, ld) -> target_desc b ^ "." ^ ld.lbl_name
  | _ -> "<expr>"

(* ------------------------------------------------------------------ *)
(* the walker                                                          *)
(* ------------------------------------------------------------------ *)

let rec walk st acc (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> walk_bare_ident st acc e p
  | Texp_constant _ -> ()
  | Texp_let (rf, vbs, body) ->
    walk_let st acc rf vbs;
    walk st acc body
  | Texp_function _ ->
    let id = fresh_sub st acc.ac_id "fn" in
    let sub =
      new_acc st ~id ~loc:(loc_of e.exp_loc) ~toplevel:false ~pool:false
        ~key:None
    in
    edge st acc (Tnode id) ~site:(loc_of e.exp_loc) ~argk:E.Arg_none;
    walk_closure st sub e
  | Texp_apply (head, args) -> walk_apply st acc e head args
  | Texp_match (scrut, cases, _) ->
    walk st acc scrut;
    walk_cases st acc cases
  | Texp_try (body, cases) ->
    walk st acc body;
    List.iter
      (fun (case : Typedtree.value Typedtree.case) ->
        match case.c_lhs.pat_desc with
        | Tpat_any -> mark st (M_catchall (loc_of case.c_lhs.pat_loc))
        | Tpat_var (id, _) -> (
          match case.c_rhs.exp_desc with
          | Texp_apply
              ( { exp_desc = Texp_ident (p, _, _); _ },
                [ (_, Some { exp_desc = Texp_ident (Path.Pident arg, _, _); _ }) ]
              )
            when path_is p [ "ignore" ] && Ident.same id arg ->
            mark st (M_ignore (loc_of case.c_lhs.pat_loc))
          | _ -> ())
        | _ -> ())
      cases;
    walk_cases st acc cases
  | Texp_ifthenelse (c, t, f) ->
    walk st acc c;
    let branches =
      (fun () -> walk st acc t)
      :: (match f with Some f -> [ (fun () -> walk st acc f) ] | None -> [ (fun () -> ()) ])
    in
    with_branches st branches
  | Texp_sequence (a, b) ->
    walk st acc a;
    walk st acc b
  | Texp_while (c, body) ->
    walk st acc c;
    let h0 = st.held in
    walk st acc body;
    st.held <- h0
  | Texp_for (id, _, lo, hi, _, body) ->
    walk st acc lo;
    walk st acc hi;
    register st id (B_local acc.ac_id);
    let h0 = st.held in
    walk st acc body;
    st.held <- h0
  | Texp_tuple es | Texp_array es -> List.iter (walk st acc) es
  | Texp_construct (_, _, es) -> List.iter (walk st acc) es
  | Texp_variant (_, eo) -> Option.iter (walk st acc) eo
  | Texp_record { fields; extended_expression; _ } ->
    Array.iter
      (fun (_, (def : Typedtree.record_label_definition)) ->
        match def with
        | Typedtree.Overridden (_, e) -> walk st acc e
        | Typedtree.Kept _ -> ())
      fields;
    Option.iter (walk st acc) extended_expression
  | Texp_field (b, _, _) -> walk st acc b
  | Texp_setfield (b, _, ld, v) ->
    record_mutation st acc
      ~detail:(target_desc b ^ "." ^ ld.lbl_name ^ " <-")
      (target_kind st acc b) (loc_of e.exp_loc);
    walk st acc b;
    walk st acc v
  | Texp_assert (cond, _) ->
    eff acc ~detail:"assert" E.Raises (loc_of e.exp_loc);
    walk st acc cond
  | Texp_lazy body -> walk st acc body
  | Texp_send (b, _) -> walk st acc b
  | Texp_letmodule (_, _, _, me, body) ->
    walk_local_module st acc me;
    walk st acc body
  | Texp_letexception (_, body) -> walk st acc body
  | Texp_open (_, body) -> walk st acc body
  | Texp_letop { let_; ands; body; _ } ->
    walk st acc let_.bop_exp;
    List.iter (fun (a : Typedtree.binding_op) -> walk st acc a.bop_exp) ands;
    List.iter
      (fun id -> register st id (B_param acc.ac_id))
      (Typedtree.pat_bound_idents body.c_lhs);
    walk st acc body.c_rhs
  | _ -> ()

and walk_cases : 'k. st -> acc -> 'k Typedtree.case list -> unit =
 fun st acc cases ->
  let branches =
    List.map
      (fun (case : _ Typedtree.case) () ->
        List.iter
          (fun id -> register st id (B_local acc.ac_id))
          (Typedtree.pat_bound_idents case.c_lhs);
        Option.iter (walk st acc) case.c_guard;
        walk st acc case.c_rhs)
      cases
  in
  with_branches st branches

(* a lambda body analyzed as its own node: runs later, with no lock held *)
and walk_closure st sub e =
  let h0 = st.held in
  st.held <- [];
  walk_fn_spine st sub e;
  st.held <- h0

and walk_fn_spine st acc (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_function { cases; _ } ->
    List.iter
      (fun (case : Typedtree.value Typedtree.case) ->
        List.iter
          (fun id -> register st id (B_param acc.ac_id))
          (Typedtree.pat_bound_idents case.c_lhs);
        Option.iter (walk st acc) case.c_guard;
        walk_fn_spine st acc case.c_rhs)
      cases
  | _ -> walk st acc e

and walk_let st acc rf vbs =
  let is_lambda (vb : Typedtree.value_binding) =
    match vb.vb_expr.exp_desc with Texp_function _ -> true | _ -> false
  in
  (match rf with
  | Asttypes.Recursive ->
    (* register everything first so recursive references resolve *)
    List.iter
      (fun (vb : Typedtree.value_binding) ->
        match vb.vb_pat.pat_desc with
        | Tpat_var (id, name) when is_lambda vb ->
          let nid = sub_id st acc.ac_id name.txt in
          let _ =
            new_acc st ~id:nid ~loc:(loc_of vb.vb_loc) ~toplevel:false
              ~pool:false ~key:None
          in
          register st id (B_sub nid)
        | _ ->
          List.iter
            (fun id -> register st id (B_local acc.ac_id))
            (Typedtree.pat_bound_idents vb.vb_pat))
      vbs;
    List.iter
      (fun (vb : Typedtree.value_binding) ->
        match vb.vb_pat.pat_desc with
        | Tpat_var (id, _) when is_lambda vb -> (
          match classify st id with
          | I_sub nid -> walk_closure st (Hashtbl.find st.accs nid) vb.vb_expr
          | _ -> ())
        | _ -> walk st acc vb.vb_expr)
      vbs
  | Asttypes.Nonrecursive ->
    List.iter
      (fun (vb : Typedtree.value_binding) ->
        match vb.vb_pat.pat_desc with
        | Tpat_var (id, name) when is_lambda vb ->
          let nid = sub_id st acc.ac_id name.txt in
          let sub =
            new_acc st ~id:nid ~loc:(loc_of vb.vb_loc) ~toplevel:false
              ~pool:false ~key:None
          in
          walk_closure st sub vb.vb_expr;
          register st id (B_sub nid)
        | _ ->
          walk st acc vb.vb_expr;
          List.iter
            (fun id -> register st id (B_local acc.ac_id))
            (Typedtree.pat_bound_idents vb.vb_pat))
      vbs)

(* [let module M = struct ... end in ...]: the bindings execute here *)
and walk_local_module st acc (me : Typedtree.module_expr) =
  match me.mod_desc with
  | Tmod_structure s ->
    List.iter
      (fun (item : Typedtree.structure_item) ->
        match item.str_desc with
        | Tstr_value (rf, vbs) -> walk_let st acc rf vbs
        | Tstr_eval (e, _) -> walk st acc e
        | _ -> ())
      s.str_items
  | Tmod_constraint (me, _, _, _) -> walk_local_module st acc me
  | _ -> ()

(* -------------------------- applications ------------------------- *)

and walk_apply st acc (e : Typedtree.expression) head args =
  let explicit = List.filter_map snd args in
  match head.exp_desc with
  | Texp_ident (p, _, _) -> dispatch st acc e head p explicit
  | _ ->
    walk st acc head;
    List.iter (walk st acc) explicit

and dispatch st acc (e : Typedtree.expression) head p explicit =
  let apply_loc = loc_of e.exp_loc in
  let head_loc = loc_of head.Typedtree.exp_loc in
  let arg_types = List.map (fun (a : Typedtree.expression) -> a.exp_type) explicit in
  if path_is p [ "Pool.map"; "Pool.map_array" ] then
    walk_pool_site st acc apply_loc explicit
  else if path_is p [ "Mutex.protect" ] then walk_protect st acc head_loc explicit
  else if path_is p [ "Mutex.lock"; "Mutex.try_lock" ] then begin
    eff acc ~detail:(Path.name p) E.Acquires_mutex head_loc;
    List.iter (walk st acc) explicit;
    match explicit with
    | m :: _ -> push_lock st (lock_token m) head_loc
    | [] -> ()
  end
  else if path_is p [ "Mutex.unlock" ] then begin
    List.iter (walk st acc) explicit;
    match explicit with
    | m :: _ -> pop_lock st (lock_token m)
    | [] -> ()
  end
  else if path_is p [ "Condition.wait"; "Condition.signal"; "Condition.broadcast" ]
  then List.iter (walk st acc) explicit
  else if path_is p atomic_read_prims then begin
    eff acc ~detail:(Path.name p) E.Atomic_read head_loc;
    List.iter (walk st acc) explicit
  end
  else if path_is p atomic_write_prims then begin
    eff acc ~detail:(Path.name p) E.Atomic_write head_loc;
    (match explicit with
    | cell :: _ ->
      let desc = target_desc cell in
      if
        lower_contains ~fragment:"snapshot" desc
        && st.held = []
        && path_is p [ "Atomic.set"; "Atomic.exchange"; "Atomic.compare_and_set" ]
      then mark st (M_snapshot_unguarded (head_loc, desc))
    | [] -> ());
    List.iter (walk st acc) explicit
  end
  else
    match mutation_prim p with
    | Some (suffix, pos) ->
      (match List.nth_opt explicit pos with
      | Some tgt ->
        record_mutation st acc ~detail:suffix (target_kind st acc tgt) head_loc
      | None ->
        (* partial application: the closure will mutate whatever arrives *)
        if st.held = [] then eff acc ~detail:suffix E.Mutates_args head_loc
        else eff acc ~detail:suffix E.Mutates_guarded head_loc);
      List.iter (walk st acc) explicit
    | None ->
      if
        List.exists (fun n -> Path.name p = n) comparison_ops
        || path_is p compare_fns
      then begin
        if List.exists is_float arg_types then
          mark st (M_float_cmp (apply_loc, op_name p));
        List.iter (walk st acc) explicit
      end
      else if Path.name p = "Stdlib./" then begin
        if List.exists is_int arg_types then mark st (M_intdiv apply_loc);
        List.iter (walk st acc) explicit
      end
      else if path_is p clock_prims then begin
        eff acc ~detail:(Path.name p) E.Reads_clock head_loc;
        mark st (M_clock (head_loc, Path.name p));
        List.iter (walk st acc) explicit
      end
      else if path_is p [ "Random.self_init" ] then begin
        eff acc ~detail:(Path.name p) E.Nondet head_loc;
        mark st (M_selfinit head_loc);
        List.iter (walk st acc) explicit
      end
      else if path_is p hiter_prims then begin
        eff acc ~detail:(Path.name p) E.Nondet head_loc;
        mark st (M_hiter (head_loc, Path.name p));
        List.iter (walk st acc) explicit
      end
      else if path_is p ambient_prims then begin
        eff acc ~detail:(Path.name p) E.Reads_ambient head_loc;
        mark st (M_ambient head_loc);
        List.iter (walk st acc) explicit
      end
      else if path_is p raise_prims then begin
        eff acc ~detail:(Path.name p) E.Raises head_loc;
        List.iter (walk st acc) explicit
      end
      else if path_is p io_prims then begin
        eff acc ~detail:(Path.name p) E.Io head_loc;
        List.iter (walk st acc) explicit
      end
      else begin
        (match head_target st p with
        | Some t ->
          edge st acc t ~site:head_loc ~argk:(call_argk st acc explicit)
        | None -> ());
        List.iter (walk st acc) explicit
      end

(* [Mutex.protect m f]: the thunk runs right here with [m] held, so its
   body is analyzed inline, flow-sensitively, instead of as a closure *)
and walk_protect st acc head_loc explicit =
  eff acc ~detail:"Mutex.protect" E.Acquires_mutex head_loc;
  match explicit with
  | m :: rest ->
    walk st acc m;
    let tok = lock_token m in
    push_lock st tok head_loc;
    (match rest with
    | [ ({ Typedtree.exp_desc = Texp_function _; _ } as thunk) ] ->
      walk_fn_spine st acc thunk
    | _ -> List.iter (walk st acc) rest);
    pop_lock st tok
  | [] -> ()

and walk_pool_site st acc site explicit =
  List.iter
    (fun (a : Typedtree.expression) ->
      match arrow_arg a.exp_type with
      | None -> walk st acc a
      | Some _ -> (
        match a.exp_desc with
        | Texp_function _ ->
          let id = fresh_sub st acc.ac_id "pool" in
          let sub =
            new_acc st ~id ~loc:(loc_of a.exp_loc) ~toplevel:false ~pool:true
              ~key:None
          in
          st.pool_sites <-
            { ps_loc = loc_of a.exp_loc; ps_target = Tnode id } :: st.pool_sites;
          edge st acc (Tnode id) ~site:(loc_of a.exp_loc) ~argk:E.Arg_none;
          walk_closure st sub a
        | Texp_ident (p, _, _) -> (
          walk_bare_ident st acc a p;
          match head_target st p with
          | Some t -> st.pool_sites <- { ps_loc = site; ps_target = t } :: st.pool_sites
          | None -> ())
        | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, _) -> (
          (* partial application: the task runs the applied function *)
          walk st acc a;
          match head_target st p with
          | Some t -> st.pool_sites <- { ps_loc = site; ps_target = t } :: st.pool_sites
          | None -> ())
        | _ -> walk st acc a))
    explicit

(* ----------------------------- idents ----------------------------- *)

and walk_bare_ident st acc (e : Typedtree.expression) p =
  let loc = loc_of e.exp_loc in
  if path_is p clock_prims then begin
    eff acc ~detail:(Path.name p) E.Reads_clock loc;
    mark st (M_clock (loc, Path.name p))
  end
  else if path_is p [ "Random.self_init" ] then begin
    eff acc ~detail:(Path.name p) E.Nondet loc;
    mark st (M_selfinit loc)
  end
  else if path_is p hiter_prims then begin
    eff acc ~detail:(Path.name p) E.Nondet loc;
    mark st (M_hiter (loc, Path.name p))
  end
  else if path_is p ambient_prims then begin
    eff acc ~detail:(Path.name p) E.Reads_ambient loc;
    mark st (M_ambient loc)
  end
  else if path_is p atomic_read_prims then
    eff acc ~detail:(Path.name p) E.Atomic_read loc
  else if path_is p atomic_write_prims then
    eff acc ~detail:(Path.name p) E.Atomic_write loc
  else if mutation_prim p <> None then
    eff acc ~detail:(Path.name p) E.Mutates_args loc
  else if path_is p raise_prims then eff acc ~detail:(Path.name p) E.Raises loc
  else if path_is p io_prims then eff acc ~detail:(Path.name p) E.Io loc
  else begin
    (if path_is p compare_fns then
       match arrow_arg e.exp_type with
       | Some a when is_float a -> mark st (M_float_inst loc)
       | _ -> ());
    match head_target st p with
    | Some t -> edge st acc t ~site:loc ~argk:E.Arg_none
    | None -> ()
  end

(* ------------------------------------------------------------------ *)
(* structure traversal: two passes so forward references resolve       *)
(* ------------------------------------------------------------------ *)

let rhs_head (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, _) -> Some p
  | _ -> None

let rec unwrap_module (me : Typedtree.module_expr) =
  match me.mod_desc with
  | Tmod_structure s -> Some s
  | Tmod_constraint (me, _, _, _) -> unwrap_module me
  | _ -> None

let rec predeclare st ~prefix ~inner (items : Typedtree.structure_item list) =
  List.iter
    (fun (item : Typedtree.structure_item) ->
      match item.str_desc with
      | Tstr_value (_, vbs) ->
        List.iter
          (fun (vb : Typedtree.value_binding) ->
            let id_loc = loc_key vb.vb_pat.pat_loc in
            (match vb.vb_pat.pat_desc with
            | Tpat_var (id, name) ->
              let nid = st.st_mod ^ "." ^ prefix ^ name.txt in
              let a =
                new_acc st ~id:nid ~loc:(loc_of vb.vb_loc) ~toplevel:true
                  ~pool:false
                  ~key:(Some (inner ^ "." ^ name.txt))
              in
              register st id (B_top nid);
              Hashtbl.replace st.vb_nodes id_loc a
            | _ ->
              let nid =
                Printf.sprintf "%s.%s<init#%d>" st.st_mod prefix
                  (counter st (prefix ^ "/init"))
              in
              let a =
                new_acc st ~id:nid ~loc:(loc_of vb.vb_loc) ~toplevel:true
                  ~pool:false ~key:None
              in
              List.iter
                (fun id -> register st id (B_top nid))
                (Typedtree.pat_bound_idents vb.vb_pat);
              Hashtbl.replace st.vb_nodes id_loc a);
            (* L1 candidates: module-level mutable containers *)
            match vb.vb_pat.pat_desc with
            | Tpat_var (_, name) -> (
              let ty = vb.vb_pat.pat_type in
              if not (synchronized ty) then
                match mutable_container ty with
                | None -> ()
                | Some kind ->
                  let allowed =
                    match rhs_head vb.vb_expr with
                    | Some p -> path_is p [ "Atomic.make" ]
                    | None -> false
                  in
                  if not allowed then
                    st.mutables <-
                      (kind, name.txt, loc_of vb.vb_loc) :: st.mutables)
            | _ -> ())
          vbs
      | Tstr_eval (_, _) ->
        let nid =
          Printf.sprintf "%s.%s<init#%d>" st.st_mod prefix
            (counter st (prefix ^ "/init"))
        in
        let a =
          new_acc st ~id:nid ~loc:(loc_of item.str_loc) ~toplevel:true
            ~pool:false ~key:None
        in
        Hashtbl.replace st.vb_nodes (loc_key item.str_loc) a
      | Tstr_module mb -> (
        match (unwrap_module mb.mb_expr, mb.mb_name.txt) with
        | Some s, Some m ->
          predeclare st ~prefix:(prefix ^ m ^ ".") ~inner:m s.str_items
        | _ -> ())
      | _ -> ())
    items

let rec walk_items st ~prefix (items : Typedtree.structure_item list) =
  List.iter
    (fun (item : Typedtree.structure_item) ->
      match item.str_desc with
      | Tstr_value (_, vbs) ->
        List.iter
          (fun (vb : Typedtree.value_binding) ->
            match Hashtbl.find_opt st.vb_nodes (loc_key vb.vb_pat.pat_loc) with
            | None -> ()
            | Some a ->
              st.held <- [];
              walk_fn_spine st a vb.vb_expr)
          vbs
      | Tstr_eval (e, _) -> (
        match Hashtbl.find_opt st.vb_nodes (loc_key item.str_loc) with
        | None -> ()
        | Some a ->
          st.held <- [];
          walk st a e)
      | Tstr_module mb -> (
        match (unwrap_module mb.mb_expr, mb.mb_name.txt) with
        | Some s, Some m -> walk_items st ~prefix:(prefix ^ m ^ ".") s.str_items
        | _ -> ())
      | _ -> ())
    items

let analyze ~modname ~source (str : Typedtree.structure) =
  let st =
    {
      st_mod = canonical_modname modname;
      st_src = source;
      binders = Hashtbl.create 256;
      accs = Hashtbl.create 64;
      vb_nodes = Hashtbl.create 64;
      counters = Hashtbl.create 64;
      order = [];
      pool_sites = [];
      mutables = [];
      markers = [];
      held = [];
    }
  in
  predeclare st ~prefix:"" ~inner:st.st_mod str.str_items;
  walk_items st ~prefix:"" str.str_items;
  let nodes =
    List.rev_map
      (fun a ->
        {
          n_id = a.ac_id;
          n_modname = st.st_mod;
          n_source = st.st_src;
          n_loc = a.ac_loc;
          n_toplevel = a.ac_toplevel;
          n_pool_closure = a.ac_pool;
          n_direct = a.ac_direct;
          n_edges = List.rev a.ac_edges;
          n_key = a.ac_key;
        })
      st.order
  in
  {
    a_modname = st.st_mod;
    a_source = st.st_src;
    a_nodes = nodes;
    a_pool_sites = List.rev st.pool_sites;
    a_mutables = List.rev st.mutables;
    a_markers = List.rev st.markers;
  }
