(** The effect lattice and the interprocedural fixpoint.

    Every function (graph node) gets an {e effect signature}: the set of
    observable effects it may perform, directly or through anything it
    calls.  The atoms are the eight effect classes the parallel-search
    soundness argument cares about (plus two mutation refinements):

    - [Mutates_shared]: writes a module-level mutable container, of this
      module or another (the state two worker domains could race on);
    - [Mutates_args]: writes a mutable value received as an argument —
      the {e caller} decides whether that value is shared;
    - [Mutates_guarded]: a write performed while a [Mutex] is held
      (either lexically inside [Mutex.protect]'s thunk or between
      [Mutex.lock] and [Mutex.unlock] on the same control path);
    - [Acquires_mutex], [Atomic_read], [Atomic_write];
    - [Reads_clock]: [Unix.gettimeofday] / [Unix.time] / [Sys.time],
      directly or transitively;
    - [Nondet]: nondeterministic iteration or seeding
      ([Hashtbl.fold]/[iter], [Random.self_init]);
    - [Reads_ambient]: the ambient recorder slot;
    - [Raises] and [Io].

    Mutation of a value {e captured} from an enclosing function is not a
    bit but a set of owner node ids ([s_cap_param] / [s_cap_local]):
    when the signature of a closure flows back into the very function
    that owns the captured binding, the capture is local again and
    dissolves (or becomes [Mutates_args] when the owner received it as a
    parameter).  A closure whose capture set is non-empty at a
    [Relax_parallel.Pool] boundary is exactly the "mutable value
    smuggled into a task thunk" race.

    Each effect is tracked twice: [flagged] (originating in ordinary
    code) and [sanctioned] (originating inside the observability layer,
    whose domain-safety is established separately — by its own lint
    scope, the TSan job and the single waived clock read).  Rules query
    the flagged side; the dump shows both. *)

type eff =
  | Mutates_shared
  | Mutates_args
  | Mutates_guarded
  | Acquires_mutex
  | Atomic_read
  | Atomic_write
  | Reads_clock
  | Nondet
  | Reads_ambient
  | Raises
  | Io

val eff_name : eff -> string
(** Stable kebab-case names ("mutates-shared-state", "reads-clock", ...)
    used in messages and the [--effects-dump] table. *)

val captured_name : string
(** The pseudo-effect name shown when a capture set is non-empty:
    ["mutates-captured-state"]. *)

(** Effect sets as bit masks. *)
module Set : sig
  type t

  val empty : t
  val singleton : eff -> t
  val add : eff -> t -> t
  val mem : eff -> t -> bool
  val union : t -> t -> t
  val inter : t -> t -> t
  val diff : t -> t -> t
  val subset : t -> t -> bool
  val is_empty : t -> bool
  val of_list : eff list -> t
  val to_list : t -> eff list
  (** In declaration order — deterministic. *)
end

module SSet : Stdlib.Set.S with type elt = string
module SMap : Stdlib.Map.S with type key = string

type loc = { file : string; line : int; col : int }

type witness = {
  w_eff : eff;
  w_detail : string;  (** the primitive, e.g. ["Unix.gettimeofday"] *)
  w_loc : loc;
}

(** Direct (intraprocedural) effect information for one node. *)
type direct = {
  d_flagged : Set.t;
  d_sanctioned : Set.t;
  d_cap_param : SSet.t;  (** owners whose {e parameter} this node mutates *)
  d_cap_local : SSet.t;  (** owners whose {e local} this node mutates *)
  d_witnesses : (eff * witness) list;  (** first flagged site per effect *)
  d_cap_witness : witness option;  (** first captured-mutation site *)
}

val direct_empty : direct

(** How a call site relates the callee's [Mutates_args] to the caller:
    the "worst" mutable-container argument passed. *)
type argk =
  | Arg_none  (** no mutable ident argument *)
  | Arg_args  (** a parameter of the caller *)
  | Arg_captured_param of string  (** a parameter captured from [owner] *)
  | Arg_captured_local of string  (** a local captured from [owner] *)
  | Arg_shared  (** a module-level mutable *)

type edge = {
  callee : string;
  site : loc;
  guarded : bool;  (** the call happens while a mutex is held *)
  argk : argk;
}

(** Where a solved effect came from: a direct witness, or a call edge
    (with the callee-side effect, so chains can be reconstructed across
    the [Mutates_args] transformations). *)
type prov =
  | Direct of witness
  | Via of { callee : string; site : loc; src : [ `Eff of eff | `Cap ] }

type signature_ = {
  s_flagged : Set.t;
  s_sanctioned : Set.t;
  s_cap_param : SSet.t;
  s_cap_local : SSet.t;
  s_prov : (eff * prov) list;  (** per flagged effect *)
  s_cap_prov : prov option;
}

val captured : signature_ -> bool
(** Non-empty capture set (either kind). *)

val solve :
  nodes:(string * direct) list -> edges:edge list SMap.t -> signature_ SMap.t
(** Propagate direct effects over the call graph to a fixpoint.
    Deterministic: nodes are processed in sorted order and edges in list
    order, and the first acquisition of an effect fixes its provenance.
    Monotone: adding a node, an edge, or a direct effect can only grow
    signatures (the property [test/suite_effects.ml] checks). *)

val chain :
  signature_ SMap.t -> string -> [ `Eff of eff | `Cap ] -> string list * witness option
(** [chain sigs node (`Eff e)] follows provenance from [node] to the
    direct witness of [e]: the node ids traversed (starting with [node])
    and the witness when the chain is grounded. *)

val names : Set.t -> cap:bool -> string list
(** Sorted effect names of a set, with [captured_name] appended when
    [cap]; the dump encoding. *)
