(** Rule implementations over the Typedtree (see the interface for the
    rule catalogue).  Identifiers are matched by path suffix, so local
    module aliases ([module O = Relax_optimizer]) are seen through. *)

type scope = {
  parallel_reachable : bool;
  in_obs : bool;
  in_costing : bool;
  in_intdiv : bool;
  in_core : bool;
}

(* ------------------------------------------------------------------ *)
(* path and type helpers                                               *)
(* ------------------------------------------------------------------ *)

let ends_with ~suffix s =
  let ls = String.length suffix and l = String.length s in
  l >= ls && String.sub s (l - ls) ls = suffix

(* [Path.name p] is ["Stdlib.Hashtbl.create"], ["Obs.Recorder.ambient"],
   ... — match the meaningful tail so aliases don't hide a use *)
let path_is p suffixes =
  let name = Path.name p in
  List.exists
    (fun suffix -> name = suffix || ends_with ~suffix:("." ^ suffix) name)
    suffixes

let head_constr ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> Some p
  | _ -> None

let is_float ty =
  match head_constr ty with
  | Some p -> Path.same p Predef.path_float
  | None -> false

let is_int ty =
  match head_constr ty with
  | Some p -> Path.same p Predef.path_int
  | None -> false

(* first parameter type of a (possibly partially generalized) arrow *)
let arrow_arg ty =
  match Types.get_desc ty with
  | Types.Tarrow (_, a, _, _) -> Some a
  | _ -> None

(* ------------------------------------------------------------------ *)
(* L1: module-level mutable state                                      *)
(* ------------------------------------------------------------------ *)

let mutable_container ty =
  match head_constr ty with
  | None -> None
  | Some p ->
    if Path.same p Predef.path_array then Some "array"
    else if Path.same p Predef.path_bytes then Some "bytes"
    else if path_is p [ "ref" ] then Some "ref"
    else if path_is p [ "Hashtbl.t" ] then Some "Hashtbl.t"
    else if path_is p [ "Buffer.t" ] then Some "Buffer.t"
    else if path_is p [ "Queue.t" ] then Some "Queue.t"
    else if path_is p [ "Stack.t" ] then Some "Stack.t"
    else if path_is p [ "Random.State.t" ] then Some "Random.State.t"
    else None

(* bindings whose value is itself a synchronization device *)
let synchronized ty =
  match head_constr ty with
  | Some p ->
    path_is p [ "Atomic.t"; "Mutex.t"; "Condition.t"; "Semaphore.Counting.t" ]
  | None -> false

let rhs_head (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, _) -> Some p
  | _ -> None

let check_l1 (str : Typedtree.structure) =
  List.concat_map
    (fun (item : Typedtree.structure_item) ->
      match item.str_desc with
      | Tstr_value (_, vbs) ->
        List.filter_map
          (fun (vb : Typedtree.value_binding) ->
            match vb.vb_pat.pat_desc with
            | Tpat_var (_, name) -> (
              let ty = vb.vb_pat.pat_type in
              if synchronized ty then None
              else
                match mutable_container ty with
                | None -> None
                | Some kind ->
                  let allowed =
                    match rhs_head vb.vb_expr with
                    | Some p -> path_is p [ "Atomic.make" ]
                    | None -> false
                  in
                  if allowed then None
                  else
                    Some
                      (Finding.of_loc ~rule:"L1"
                         ~message:
                           (Printf.sprintf
                              "module-level mutable %s `%s` in a module \
                               reachable from Relax_parallel.Pool task \
                               closures"
                              kind name.txt)
                         ~suggestion:
                           "use Atomic.t, guard every access with a Mutex \
                            (and waive with a reason), or move the state \
                            into per-call scope"
                         vb.vb_loc))
            | _ -> None)
          vbs
      | _ -> [])
    str.str_items

(* ------------------------------------------------------------------ *)
(* expression-level rules (L2–L5), one traversal                       *)
(* ------------------------------------------------------------------ *)

let comparison_ops = [ "Stdlib.="; "Stdlib.=="; "Stdlib.<>"; "Stdlib.!=" ]
let compare_fns = [ "Stdlib.compare"; "compare" ]

let check_expressions scope (str : Typedtree.structure) =
  let findings = ref [] in
  let add f = findings := f :: !findings in
  (* ident locations already reported as part of an enclosing application,
     so the bare-ident checks below don't double-report the head *)
  let handled_heads = Hashtbl.create 16 in
  let op_name p =
    let n = Path.name p in
    match String.rindex_opt n '.' with
    | Some i -> String.sub n (i + 1) (String.length n - i - 1)
    | None -> n
  in
  let explicit_args args =
    List.filter_map (fun (_, a) -> a) args
    |> List.map (fun (a : Typedtree.expression) -> a.exp_type)
  in
  let check_apply (e : Typedtree.expression) head args =
    match head.Typedtree.exp_desc with
    | Texp_ident (p, _, _) ->
      let arg_types = explicit_args args in
      (* L3a: polymorphic comparison at type float *)
      if
        scope.in_costing
        && (List.exists (fun n -> Path.name p = n) comparison_ops
           || path_is p compare_fns)
        && List.exists is_float arg_types
      then begin
        Hashtbl.replace handled_heads head.exp_loc ();
        add
          (Finding.of_loc ~rule:"L3"
             ~message:
               (Printf.sprintf
                  "polymorphic `%s` applied at type float; cost/size \
                   comparisons need an explicit tolerance"
                  (op_name p))
             ~suggestion:
               "compare through Cost_bound.float_eq / float_leq / float_lt"
             e.exp_loc)
      end;
      (* L3b: int-truncating division in page/byte arithmetic code *)
      if
        scope.in_intdiv
        && Path.name p = "Stdlib./"
        && List.exists is_int arg_types
      then
        add
          (Finding.of_loc ~rule:"L3"
             ~message:
               "int-truncating `/` in page/byte arithmetic; truncation \
                here understates sizes (the bug class behind the \
                leaf_pages fix)"
             ~suggestion:
               "do the arithmetic in float and round explicitly \
                (Float.floor / Float.ceil), as in Size_model"
             e.exp_loc)
    | _ -> ()
  in
  let check_ident (e : Typedtree.expression) p =
    if Hashtbl.mem handled_heads e.exp_loc then ()
    else begin
      (* L3a': compare instantiated at float and passed as an argument
         (e.g. [List.sort compare costs]) *)
      (if scope.in_costing && path_is p compare_fns then
         match arrow_arg e.exp_type with
         | Some a when is_float a ->
           add
             (Finding.of_loc ~rule:"L3"
                ~message:
                  "polymorphic `compare` instantiated at type float; \
                   cost/size ordering needs an explicit tolerance"
                ~suggestion:"use Float.compare or a Cost_bound helper"
                e.exp_loc)
         | _ -> ());
      (* L4: ambient recorder slot accessed outside lib/obs *)
      if
        (not scope.in_obs)
        && path_is p [ "Recorder.ambient"; "Recorder.current" ]
      then
        add
          (Finding.of_loc ~rule:"L4"
             ~message:
               "direct access to the ambient recorder slot outside lib/obs"
             ~suggestion:
               "instrument through Relax_obs.Probe (Probe.count, \
                Probe.span, Probe.emit); only the obs layer reads the \
                ambient slot"
             e.exp_loc);
      (* L5: nondeterminism sources *)
      if path_is p [ "Random.self_init" ] then
        add
          (Finding.of_loc ~rule:"L5"
             ~message:
               "Random.self_init seeds from the environment; results \
                would differ run to run"
             ~suggestion:
               "thread an explicit seed (cf. Search.options.selection \
                Random seed)"
             e.exp_loc);
      if path_is p [ "Unix.gettimeofday"; "Unix.time"; "Sys.time" ] then
        add
          (Finding.of_loc ~rule:"L5"
             ~message:"wall-clock read outside Relax_obs.Clock"
             ~suggestion:
               "route timing through Relax_obs.Clock (now / elapsed_s); \
                the single sanctioned waiver lives inside that module"
             e.exp_loc);
      if
        scope.in_core
        && path_is p [ "Hashtbl.fold"; "Hashtbl.iter" ]
      then
        add
          (Finding.of_loc ~rule:"L5"
             ~message:
               "Hashtbl iteration order is unspecified and may feed \
                candidate ordering"
             ~suggestion:
               "iterate over an explicitly sorted key list (or waive \
                with a reason when the result is order-insensitive)"
             e.exp_loc)
    end
  in
  let check_try (cases : Typedtree.value Typedtree.case list) =
    List.iter
      (fun (case : Typedtree.value Typedtree.case) ->
        match case.c_lhs.pat_desc with
        | Tpat_any ->
          add
            (Finding.of_loc ~rule:"L2"
               ~message:
                 "catch-all `with _ ->` swallows every exception, \
                  including the ones Pool.map must re-raise in index \
                  order"
               ~suggestion:
                 "match the specific exceptions expected here (or waive \
                  with a reason at a boundary that must not throw)"
               case.c_lhs.pat_loc)
        | Tpat_var (id, _) -> (
          match case.c_rhs.exp_desc with
          | Texp_apply
              ( { exp_desc = Texp_ident (p, _, _); _ },
                [ (_, Some { exp_desc = Texp_ident (Path.Pident arg, _, _); _ })
                ] )
            when path_is p [ "ignore" ] && Ident.same id arg ->
            add
              (Finding.of_loc ~rule:"L2"
                 ~message:"`with e -> ignore e` discards the exception"
                 ~suggestion:
                   "handle or re-raise; if the site really must be \
                    silent, waive with a reason"
                 case.c_lhs.pat_loc)
          | _ -> ())
        | _ -> ())
      cases
  in
  let iter =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun sub (e : Typedtree.expression) ->
          (match e.exp_desc with
          | Texp_apply (head, args) -> check_apply e head args
          | Texp_ident (p, _, _) -> check_ident e p
          | Texp_try (_, cases) -> check_try cases
          | _ -> ());
          Tast_iterator.default_iterator.expr sub e);
    }
  in
  iter.structure iter str;
  List.rev !findings

let check scope str =
  let l1 = if scope.parallel_reachable then check_l1 str else [] in
  List.sort Finding.compare (l1 @ check_expressions scope str)

(* ------------------------------------------------------------------ *)
(* reachability seed                                                   *)
(* ------------------------------------------------------------------ *)

let references_pool_tasks (str : Typedtree.structure) =
  let found = ref false in
  let iter =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun sub (e : Typedtree.expression) ->
          (match e.exp_desc with
          | Texp_ident (p, _, _)
            when path_is p [ "Pool.map"; "Pool.create" ] ->
            found := true
          | _ -> ());
          Tast_iterator.default_iterator.expr sub e);
    }
  in
  iter.structure iter str;
  !found
