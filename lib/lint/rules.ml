(* Rule implementations as queries over the call graph and the solved
   effect signatures (see the interface for the catalogue). *)

module E = Effects
module C = Callgraph

type scope = {
  parallel_reachable : bool;
  in_obs : bool;
  in_costing : bool;
  in_intdiv : bool;
  in_core : bool;
  in_lock : bool;
}

type graph = {
  sigs : E.signature_ E.SMap.t;
  node_by_id : (string, C.node) Hashtbl.t;
  resolve : C.target -> string list;
}

let finding ~rule ~message ~suggestion (l : E.loc) =
  Finding.make ~rule ~file:l.file ~line:l.line ~col:l.col ~message ~suggestion

(* ------------------------------------------------------------------ *)
(* provenance rendering                                                *)
(* ------------------------------------------------------------------ *)

let path_string g start src =
  let ids, w = E.chain g.sigs start src in
  let base = String.concat " -> " ids in
  match w with
  | Some w ->
    Printf.sprintf "%s -> %s (%s:%d)" base w.E.w_detail w.E.w_loc.file
      w.E.w_loc.line
  | None -> base

let grounded_witness g start src =
  let _, w = E.chain g.sigs start src in
  w

(* ------------------------------------------------------------------ *)
(* L1: module-level mutable state in parallel-reachable modules        *)
(* ------------------------------------------------------------------ *)

let l1 (a : C.analysis) =
  List.map
    (fun (kind, name, loc) ->
      finding ~rule:"L1"
        ~message:
          (Printf.sprintf
             "module-level mutable %s `%s` in a module reachable from \
              Relax_parallel.Pool task closures"
             kind name)
        ~suggestion:
          "use Atomic.t, guard every access with a Mutex (and waive with a \
           reason), or move the state into per-call scope"
        loc)
    a.C.a_mutables

(* ------------------------------------------------------------------ *)
(* L2–L5, L8 site markers                                              *)
(* ------------------------------------------------------------------ *)

let marker_findings scope (a : C.analysis) =
  List.filter_map
    (fun (m : C.marker) ->
      match m with
      | M_catchall loc ->
        Some
          (finding ~rule:"L2"
             ~message:
               "catch-all `with _ ->` swallows every exception, including \
                the ones Pool.map must re-raise in index order"
             ~suggestion:
               "match the specific exceptions expected here (or waive with \
                a reason at a boundary that must not throw)"
             loc)
      | M_ignore loc ->
        Some
          (finding ~rule:"L2"
             ~message:"`with e -> ignore e` discards the exception"
             ~suggestion:
               "handle or re-raise; if the site really must be silent, \
                waive with a reason"
             loc)
      | M_float_cmp (loc, op) when scope.in_costing ->
        Some
          (finding ~rule:"L3"
             ~message:
               (Printf.sprintf
                  "polymorphic `%s` applied at type float; cost/size \
                   comparisons need an explicit tolerance"
                  op)
             ~suggestion:
               "compare through Cost_bound.float_eq / float_leq / float_lt"
             loc)
      | M_float_inst loc when scope.in_costing ->
        Some
          (finding ~rule:"L3"
             ~message:
               "polymorphic `compare` instantiated at type float; cost/size \
                ordering needs an explicit tolerance"
             ~suggestion:"use Float.compare or a Cost_bound helper" loc)
      | M_intdiv loc when scope.in_intdiv ->
        Some
          (finding ~rule:"L3"
             ~message:
               "int-truncating `/` in page/byte arithmetic; truncation here \
                understates sizes (the bug class behind the leaf_pages fix)"
             ~suggestion:
               "do the arithmetic in float and round explicitly (Float.floor \
                / Float.ceil), as in Size_model"
             loc)
      | M_ambient loc when not scope.in_obs ->
        Some
          (finding ~rule:"L4"
             ~message:
               "direct access to the ambient recorder slot outside lib/obs"
             ~suggestion:
               "instrument through Relax_obs.Probe (Probe.count, Probe.span, \
                Probe.emit); only the obs layer reads the ambient slot"
             loc)
      | M_selfinit loc ->
        Some
          (finding ~rule:"L5"
             ~message:
               "Random.self_init seeds from the environment; results would \
                differ run to run"
             ~suggestion:
               "thread an explicit seed (cf. Search.options.selection Random \
                seed)"
             loc)
      | M_clock (loc, _) ->
        Some
          (finding ~rule:"L5"
             ~message:"wall-clock read outside Relax_obs.Clock"
             ~suggestion:
               "route timing through Relax_obs.Clock (now / elapsed_s); the \
                single sanctioned waiver lives inside that module"
             loc)
      | M_hiter (loc, _) when scope.in_core ->
        Some
          (finding ~rule:"L5"
             ~message:
               "Hashtbl iteration order is unspecified and may feed \
                candidate ordering"
             ~suggestion:
               "iterate over an explicitly sorted key list (or waive with a \
                reason when the result is order-insensitive)"
             loc)
      | M_snapshot_unguarded (loc, cell) when scope.in_lock ->
        Some
          (finding ~rule:"L8"
             ~message:
               (Printf.sprintf
                  "atomic publish of snapshot cell `%s` outside any \
                   mutex-held region; a reader can observe a snapshot older \
                   than the table it mirrors"
                  cell)
             ~suggestion:
               "publish inside the critical section that mutated the table \
                (Mutex.protect), or waive naming the caller-holds-the-lock \
                protocol"
             loc)
      | M_nested_lock loc when scope.in_lock ->
        Some
          (finding ~rule:"L8"
             ~message:
               "mutex acquired while another lock is already held; \
                out-of-order nested acquisition can deadlock the worker \
                domains"
             ~suggestion:
               "restructure to one lock per critical section, or document \
                and waive the canonical acquisition order"
             loc)
      | M_float_cmp _ | M_float_inst _ | M_intdiv _ | M_ambient _
      | M_hiter _ | M_snapshot_unguarded _ | M_nested_lock _ ->
        None)
    a.C.a_markers

(* ------------------------------------------------------------------ *)
(* L6: parallel purity of pool task closures                           *)
(* ------------------------------------------------------------------ *)

let l6_forbidden =
  E.Set.of_list
    [ E.Mutates_shared; E.Mutates_args; E.Reads_clock; E.Nondet;
      E.Reads_ambient; E.Io ]

let l6 g (a : C.analysis) =
  List.concat_map
    (fun (site : C.pool_site) ->
      List.filter_map
        (fun id ->
          match E.SMap.find_opt id g.sigs with
          | None -> None
          | Some s ->
            let bad = E.Set.inter s.E.s_flagged l6_forbidden in
            let cap = E.captured s in
            if E.Set.is_empty bad && not cap then None
            else
              let src =
                match E.Set.to_list bad with
                | e :: _ -> `Eff e
                | [] -> `Cap
              in
              let names = E.names bad ~cap in
              Some
                (finding ~rule:"L6"
                   ~message:
                     (Printf.sprintf
                        "closure submitted to the worker pool carries \
                         effects {%s}; pool tasks must stay pure up to \
                         atomics and mutex-guarded state (path: %s)"
                        (String.concat ", " names)
                        (path_string g id src))
                   ~suggestion:
                     "hoist the side effect out of the parallel region, \
                      guard it with the owning shard's mutex, or make the \
                      captured state task-local; waive only with the \
                      protocol that makes the share safe"
                   site.C.ps_loc))
        (g.resolve site.C.ps_target))
    a.C.a_pool_sites

(* ------------------------------------------------------------------ *)
(* L8 (interprocedural): calls under a held lock that acquire again    *)
(* ------------------------------------------------------------------ *)

let l8_nested_calls g (a : C.analysis) =
  List.concat_map
    (fun (n : C.node) ->
      List.concat_map
        (fun (e : C.raw_edge) ->
          if not e.C.re_guarded then []
          else
            List.filter_map
              (fun id ->
                match E.SMap.find_opt id g.sigs with
                | None -> None
                | Some s ->
                  if
                    E.Set.mem E.Acquires_mutex s.E.s_flagged
                    || E.Set.mem E.Acquires_mutex s.E.s_sanctioned
                  then
                    Some
                      (finding ~rule:"L8"
                         ~message:
                           (Printf.sprintf
                              "call to %s while a mutex is held acquires \
                               another mutex (path: %s); nested acquisition \
                               can deadlock the worker domains"
                              id
                              (path_string g id (`Eff E.Acquires_mutex)))
                         ~suggestion:
                           "restructure to one lock per critical section, or \
                            document and waive the canonical acquisition \
                            order"
                         e.C.re_site)
                  else None)
              (g.resolve e.C.re_target))
        n.C.n_edges)
    a.C.a_nodes

(* ------------------------------------------------------------------ *)
(* L7: purity of everything the costing entry points reach             *)
(* ------------------------------------------------------------------ *)

let l7_forbidden =
  E.Set.of_list
    [ E.Mutates_shared; E.Mutates_args; E.Mutates_guarded; E.Acquires_mutex;
      E.Atomic_read; E.Atomic_write; E.Reads_clock; E.Nondet;
      E.Reads_ambient; E.Io ]

let check_costing g ~entry_modules (analyses : C.analysis list) =
  let seen = Hashtbl.create 32 in
  let out = ref [] in
  List.iter
    (fun (a : C.analysis) ->
      if List.mem a.C.a_modname entry_modules then
        List.iter
          (fun (n : C.node) ->
            if n.C.n_toplevel then
              match E.SMap.find_opt n.C.n_id g.sigs with
              | None -> ()
              | Some s ->
                let bad = E.Set.inter s.E.s_flagged l7_forbidden in
                let srcs =
                  List.map (fun e -> `Eff e) (E.Set.to_list bad)
                  @ (if E.captured s then [ `Cap ] else [])
                in
                List.iter
                  (fun src ->
                    let w = grounded_witness g n.C.n_id src in
                    let loc =
                      match w with Some w -> w.E.w_loc | None -> n.C.n_loc
                    in
                    let effname =
                      match src with
                      | `Eff e -> E.eff_name e
                      | `Cap -> E.captured_name
                    in
                    let key =
                      Printf.sprintf "%s:%d:%d:%s" loc.E.file loc.E.line
                        loc.E.col effname
                    in
                    if not (Hashtbl.mem seen key) then begin
                      Hashtbl.replace seen key ();
                      out :=
                        finding ~rule:"L7"
                          ~message:
                            (Printf.sprintf
                               "costing entry %s reaches effect %s here \
                                (path: %s); what-if costing must be \
                                referentially transparent"
                               n.C.n_id effname
                               (path_string g n.C.n_id src))
                          ~suggestion:
                            "keep everything reachable from Cost_bound / \
                             Size_model / Access_path pure and \
                             deterministic; thread state through arguments \
                             instead of reading shared or ambient state"
                          loc
                        :: !out
                    end)
                  srcs)
          a.C.a_nodes)
    analyses;
  List.rev !out

(* ------------------------------------------------------------------ *)

let check_module scope g (a : C.analysis) =
  let l1_findings = if scope.parallel_reachable then l1 a else [] in
  l1_findings @ marker_findings scope a @ l6 g a
  @ (if scope.in_lock then l8_nested_calls g a else [])

let references_pool_tasks (a : C.analysis) =
  a.C.a_pool_sites <> []
  || List.exists
       (fun (n : C.node) ->
         List.exists
           (fun (e : C.raw_edge) ->
             match e.C.re_target with
             | C.Tkey ("Pool.map" | "Pool.map_array" | "Pool.create") -> true
             | _ -> false)
           n.C.n_edges)
       a.C.a_nodes
