(** A minimal JSON value type with a printer and parser.

    The trace layer emits JSON lines and the test-suite parses them back;
    depending on an external JSON package for that would be the only
    third-party dependency of the whole observability layer, so this
    80-line subset is carried here instead.  Non-finite floats print as
    [null] (JSON has no representation for them). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering (never contains a newline: suitable for
    JSONL). *)

val of_string : string -> (t, string) result
(** Parse one JSON document; [Error msg] carries the position of the first
    offending character. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] for other constructors. *)

val to_float : t -> float option
(** Numeric coercion of [Int] and [Float]. *)

val to_int : t -> int option
val to_string_opt : t -> string option
val pp : Format.formatter -> t -> unit
