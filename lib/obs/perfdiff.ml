(** Perf-regression comparison of two bench JSON outputs.

    Compares a current bench JSON (the jobs-sweep [BENCH_parallel.json] or
    the frugality [BENCH_frugal.json] of [bench/main.exe micro]) against a
    committed baseline, run by run (matched on a string [label] field when
    present, else on the integer [jobs] field), metric by metric, against
    relative thresholds.  Deterministic work counters (what-if calls,
    configurations evaluated) get a tight tolerance — on the same
    workload they should not move at all — while wall-clock metrics
    (elapsed, throughput) get a loose one, since CI machines are noisy.

    Each metric carries a severity: a [Soft] breach is advisory, a [Hard]
    breach (what-if calls — the very thing the frugal tier exists to keep
    down) fails the gate outright.  [Optional] metrics (the frugality
    counters) are skipped silently when absent from either file, so the
    jobs-sweep baseline needs no dummy fields.

    Outcomes map onto [bin/perfdiff.exe] exit codes: no breach → 0, soft
    breaches only → 1, malformed or missing input → 2, at least one hard
    breach → 3.  The CI perf-smoke job soft-fails (annotates) on 1 and
    hard-fails on 2 and 3. *)

type comparison = {
  lines : string list;  (** one human-readable line per compared metric *)
  regressions : string list;  (** subset of [lines] that breached a threshold *)
  hard_regressions : string list;
      (** subset of [regressions] on [Hard]-severity metrics *)
}

(* how a metric can regress *)
type direction =
  | Up_bad  (** more is a regression (elapsed, what-if calls) *)
  | Down_bad  (** less is a regression (throughput, cache hits) *)
  | Change_bad  (** any drift is a regression (deterministic counters) *)

type kind = Counter | Timing

(* whether a breach fails the gate or only annotates *)
type severity = Soft | Hard

(* [Required] metrics must be present in every run; [Optional] ones are
   compared only when both runs carry them *)
type presence = Required | Optional

let metrics : (string * direction * kind * severity * presence) list =
  [
    ("what_if_calls", Up_bad, Counter, Hard, Required);
    ("cache_hits", Down_bad, Counter, Soft, Required);
    ("configurations_evaluated", Change_bad, Counter, Soft, Required);
    ("elapsed_s", Up_bad, Timing, Soft, Required);
    ("throughput_configs_per_s", Down_bad, Timing, Soft, Required);
    ("bound_accepts", Change_bad, Counter, Soft, Optional);
    ("bound_rejects", Change_bad, Counter, Soft, Optional);
    ("budget_spent", Up_bad, Counter, Soft, Optional);
  ]

let field_float name j =
  match Option.bind (Json.member name j) Json.to_float with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "missing numeric field %S" name)

(* the run key: a string "label" when present (BENCH_frugal.json), else
   "jobs=<n>" (BENCH_parallel.json) *)
let run_key run =
  match Option.bind (Json.member "label" run) Json.to_string_opt with
  | Some l -> Ok l
  | None -> (
    match Option.bind (Json.member "jobs" run) Json.to_int with
    | Some jobs -> Ok (Printf.sprintf "jobs=%d" jobs)
    | None -> Error "run without a string \"label\" or integer \"jobs\" field")

let keyed_runs j =
  match Json.member "runs" j with
  | Some (Json.List runs) ->
    List.fold_left
      (fun acc run ->
        match acc with
        | Error _ as e -> e
        | Ok acc -> (
          match run_key run with
          | Ok key -> Ok ((key, run) :: acc)
          | Error _ as e -> e))
      (Ok []) runs
    |> Result.map List.rev
  | Some _ -> Error "\"runs\" is not a list"
  | None -> Error "no \"runs\" field"

let compare_runs ~counter_tol ~time_tol ~key base cur =
  let ( let* ) = Result.bind in
  List.fold_left
    (fun acc (name, dir, kind, severity, presence) ->
      let* lines, regs, hard = acc in
      match (field_float name base, field_float name cur) with
      | (Error _, _ | _, Error _) when presence = Optional ->
        (* frugality counters: only compared when both sides carry them *)
        Ok (lines, regs, hard)
      | Error e, _ | _, Error e -> Error e
      | Ok b, Ok c ->
        let tol =
          match kind with Counter -> counter_tol | Timing -> time_tol
        in
        let change = (c -. b) /. Float.max 1e-9 (Float.abs b) in
        let breach =
          match dir with
          | Up_bad -> change > tol
          | Down_bad -> change < -.tol
          | Change_bad -> Float.abs change > tol
        in
        let line =
          Printf.sprintf
            "%s %s %-26s baseline %12.2f current %12.2f (%+.1f%%, tolerance %.0f%%)"
            (match (breach, severity) with
            | false, _ -> "ok        "
            | true, Hard -> "HARD REGR."
            | true, Soft -> "REGRESSION")
            key name b c (100.0 *. change) (100.0 *. tol)
        in
        Ok
          ( line :: lines,
            (if breach then line :: regs else regs),
            if breach && severity = Hard then line :: hard else hard ))
    (Ok ([], [], [])) metrics

let compare_json ?(counter_tol = 0.10) ?(time_tol = 0.50) ~baseline ~current ()
    : (comparison, string) result =
  let ( let* ) = Result.bind in
  let* base_runs = keyed_runs baseline in
  let* cur_runs = keyed_runs current in
  let* () = if base_runs = [] then Error "baseline has no runs" else Ok () in
  let* rev =
    List.fold_left
      (fun acc (key, base) ->
        let* lines, regs, hard = acc in
        match List.assoc_opt key cur_runs with
        | None ->
          Error (Printf.sprintf "current output has no run matching %S" key)
        | Some cur ->
          let* l, r, h = compare_runs ~counter_tol ~time_tol ~key base cur in
          Ok (l @ lines, r @ regs, h @ hard))
      (Ok ([], [], [])) base_runs
  in
  let lines, regressions, hard_regressions = rev in
  Ok
    {
      lines = List.rev lines;
      regressions = List.rev regressions;
      hard_regressions = List.rev hard_regressions;
    }

let load path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | contents -> (
    match Json.of_string (String.trim contents) with
    | Ok j -> Ok j
    | Error msg -> Error (Printf.sprintf "%s: %s" path msg))

let compare_files ?counter_tol ?time_tol ~baseline ~current () =
  let ( let* ) = Result.bind in
  let* b = load baseline in
  let* c = load current in
  compare_json ?counter_tol ?time_tol ~baseline:b ~current:c ()

let exit_code = function
  | Error _ -> 2
  | Ok { hard_regressions = _ :: _; _ } -> 3
  | Ok { regressions = []; _ } -> 0
  | Ok _ -> 1
