(** Perf-regression comparison of two bench JSON outputs.

    Compares a current bench JSON (the jobs-sweep [BENCH_parallel.json] or
    the frugality [BENCH_frugal.json] of [bench/main.exe micro]) against a
    committed baseline, run by run (matched on a string [label] field when
    present, else on the integer [jobs] field), metric by metric, against
    relative thresholds.  Deterministic work counters (what-if calls,
    configurations evaluated) get a tight tolerance — on the same
    workload they should not move at all — while wall-clock metrics
    (elapsed, throughput) get a loose one, since CI machines are noisy.

    Each metric carries a severity: a [Soft] breach is advisory, a [Hard]
    breach (what-if calls — the very thing the frugal tier exists to keep
    down) fails the gate outright.  [Optional] metrics (the frugality
    counters) are skipped silently when absent from either file, so the
    jobs-sweep baseline needs no dummy fields.

    Outcomes map onto [bin/perfdiff.exe] exit codes: no breach → 0, soft
    breaches only → 1, malformed or missing input → 2, at least one hard
    breach → 3.  The CI perf-smoke job soft-fails (annotates) on 1 and
    hard-fails on 2 and 3. *)

type comparison = {
  lines : string list;  (** one human-readable line per compared metric *)
  regressions : string list;  (** subset of [lines] that breached a threshold *)
  hard_regressions : string list;
      (** subset of [regressions] on [Hard]-severity metrics *)
  skipped : string list;
      (** wall-clock gates waived because the two host shapes differ;
          one warning line per waived metric *)
}

(* how a metric can regress *)
type direction =
  | Up_bad  (** more is a regression (elapsed, what-if calls) *)
  | Down_bad  (** less is a regression (throughput, cache hits) *)
  | Change_bad  (** any drift is a regression (deterministic counters) *)

type kind = Counter | Timing

(* whether a breach fails the gate or only annotates *)
type severity = Soft | Hard

(* [Required] metrics must be present in every run; [Optional] ones are
   compared only when both runs carry them *)
type presence = Required | Optional

let metrics : (string * direction * kind * severity * presence) list =
  [
    ("what_if_calls", Up_bad, Counter, Hard, Required);
    ("cache_hits", Down_bad, Counter, Soft, Required);
    ("configurations_evaluated", Change_bad, Counter, Soft, Required);
    ("elapsed_s", Up_bad, Timing, Soft, Required);
    ("throughput_configs_per_s", Down_bad, Timing, Soft, Required);
    ("bound_accepts", Change_bad, Counter, Soft, Optional);
    ("bound_rejects", Change_bad, Counter, Soft, Optional);
    ("budget_spent", Up_bad, Counter, Soft, Optional);
  ]

let field_float name j =
  match Option.bind (Json.member name j) Json.to_float with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "missing numeric field %S" name)

(* the run key: a string "label" when present (BENCH_frugal.json), else
   "jobs=<n>" (BENCH_parallel.json) *)
let run_key run =
  match Option.bind (Json.member "label" run) Json.to_string_opt with
  | Some l -> Ok l
  | None -> (
    match Option.bind (Json.member "jobs" run) Json.to_int with
    | Some jobs -> Ok (Printf.sprintf "jobs=%d" jobs)
    | None -> Error "run without a string \"label\" or integer \"jobs\" field")

let keyed_runs j =
  match Json.member "runs" j with
  | Some (Json.List runs) ->
    List.fold_left
      (fun acc run ->
        match acc with
        | Error _ as e -> e
        | Ok acc -> (
          match run_key run with
          | Ok key -> Ok ((key, run) :: acc)
          | Error _ as e -> e))
      (Ok []) runs
    |> Result.map List.rev
  | Some _ -> Error "\"runs\" is not a list"
  | None -> Error "no \"runs\" field"

(* The host self-description block ([bench/main.exe] stamps core count
   and compiler version into every BENCH_*.json).  Wall-clock numbers are
   only comparable between hosts of the same shape; counters are
   comparable everywhere. *)
let host_of j = Json.member "host" j

let hosts_differ ~baseline ~current =
  match (host_of baseline, host_of current) with
  | Some b, Some c -> b <> c
  | _ ->
    (* a side without a host block (pre-host baselines) keeps the old
       behaviour: compare everything *)
    false

let host_summary j =
  match host_of j with
  | None -> "unknown host"
  | Some h ->
    let cores =
      match Option.bind (Json.member "recommended_domain_count" h) Json.to_int with
      | Some n -> Printf.sprintf "%d core(s)" n
      | None -> "? cores"
    in
    let ocaml =
      match Option.bind (Json.member "ocaml_version" h) Json.to_string_opt with
      | Some v -> "ocaml " ^ v
      | None -> "ocaml ?"
    in
    cores ^ ", " ^ ocaml

let compare_runs ~counter_tol ~time_tol ~skip_timing ~key base cur =
  let ( let* ) = Result.bind in
  List.fold_left
    (fun acc (name, dir, kind, severity, presence) ->
      let* lines, regs, hard, skipped = acc in
      match (field_float name base, field_float name cur) with
      | (Error _, _ | _, Error _) when presence = Optional ->
        (* frugality counters: only compared when both sides carry them *)
        Ok (lines, regs, hard, skipped)
      | Error e, _ | _, Error e -> Error e
      | Ok _, Ok _ when kind = Timing && skip_timing ->
        let line =
          Printf.sprintf "skipped    %s %-26s host shapes differ" key name
        in
        Ok (line :: lines, regs, hard, line :: skipped)
      | Ok b, Ok c ->
        let tol =
          match kind with Counter -> counter_tol | Timing -> time_tol
        in
        let change = (c -. b) /. Float.max 1e-9 (Float.abs b) in
        let breach =
          match dir with
          | Up_bad -> change > tol
          | Down_bad -> change < -.tol
          | Change_bad -> Float.abs change > tol
        in
        let line =
          Printf.sprintf
            "%s %s %-26s baseline %12.2f current %12.2f (%+.1f%%, tolerance %.0f%%)"
            (match (breach, severity) with
            | false, _ -> "ok        "
            | true, Hard -> "HARD REGR."
            | true, Soft -> "REGRESSION")
            key name b c (100.0 *. change) (100.0 *. tol)
        in
        Ok
          ( line :: lines,
            (if breach then line :: regs else regs),
            (if breach && severity = Hard then line :: hard else hard),
            skipped ))
    (Ok ([], [], [], [])) metrics

let compare_json ?(counter_tol = 0.10) ?(time_tol = 0.50) ~baseline ~current ()
    : (comparison, string) result =
  let ( let* ) = Result.bind in
  let* base_runs = keyed_runs baseline in
  let* cur_runs = keyed_runs current in
  let* () = if base_runs = [] then Error "baseline has no runs" else Ok () in
  let skip_timing = hosts_differ ~baseline ~current in
  let* rev =
    List.fold_left
      (fun acc (key, base) ->
        let* lines, regs, hard, skipped = acc in
        match List.assoc_opt key cur_runs with
        | None ->
          Error (Printf.sprintf "current output has no run matching %S" key)
        | Some cur ->
          let* l, r, h, s =
            compare_runs ~counter_tol ~time_tol ~skip_timing ~key base cur
          in
          Ok (l @ lines, r @ regs, h @ hard, s @ skipped))
      (Ok ([], [], [], [])) base_runs
  in
  let lines, regressions, hard_regressions, skipped = rev in
  let skipped =
    if skip_timing then
      Printf.sprintf
        "wall-clock gates skipped: baseline host (%s) differs from current \
         host (%s); counter gates stay hard"
        (host_summary baseline) (host_summary current)
      :: List.rev skipped
    else []
  in
  Ok
    {
      lines = List.rev lines;
      regressions = List.rev regressions;
      hard_regressions = List.rev hard_regressions;
      skipped;
    }

let load path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | contents -> (
    match Json.of_string (String.trim contents) with
    | Ok j -> Ok j
    | Error msg -> Error (Printf.sprintf "%s: %s" path msg))

let compare_files ?counter_tol ?time_tol ~baseline ~current () =
  let ( let* ) = Result.bind in
  let* b = load baseline in
  let* c = load current in
  compare_json ?counter_tol ?time_tol ~baseline:b ~current:c ()

let exit_code = function
  | Error _ -> 2
  | Ok { hard_regressions = _ :: _; _ } -> 3
  | Ok { regressions = []; _ } -> 0
  | Ok _ -> 1

(* ------------------------------------------------------------------ *)
(* multi-core scaling gate                                             *)
(* ------------------------------------------------------------------ *)

type scaling = {
  s_lines : string list;
  s_failures : string list;  (** hard failures (exit-3 class) *)
  s_skipped : string option;
      (** [Some reason] when the wall-clock assertion was waived (host
          has too few cores to make it meaningful) *)
}

let scaling_exit_code = function
  | Error _ -> 2
  | Ok { s_failures = _ :: _; _ } -> 3
  | Ok _ -> 0

let run_field ~jobs name runs =
  let key = Printf.sprintf "jobs=%d" jobs in
  match List.assoc_opt key runs with
  | None -> Error (Printf.sprintf "no run %s" key)
  | Some run -> field_float name run

let check_scaling ?(time_tol = 0.10) current : (scaling, string) result =
  let ( let* ) = Result.bind in
  let* runs = keyed_runs current in
  let* () = if runs = [] then Error "no runs" else Ok () in
  let cores =
    Option.bind (host_of current) (fun h ->
        Option.bind (Json.member "recommended_domain_count" h) Json.to_int)
  in
  (* determinism across the sweep is asserted unconditionally: the bench
     compares fingerprints, costs, counters run by run and stamps the
     verdict *)
  let identical =
    match Json.member "identical_results" current with
    | Some (Json.Bool b) -> b
    | _ -> false
  in
  let lines = ref [] and failures = ref [] in
  let say fmt = Printf.ksprintf (fun l -> lines := l :: !lines) fmt in
  let fail fmt =
    Printf.ksprintf
      (fun l ->
        lines := l :: !lines;
        failures := l :: !failures)
      fmt
  in
  if identical then say "ok         identical tuning output across the jobs sweep"
  else
    fail
      "SCALING    identical_results is false: the jobs sweep diverged \
       (determinism regression)";
  let skipped =
    match cores with
    | Some n when n >= 2 -> (
      match
        (run_field ~jobs:1 "elapsed_s" runs, run_field ~jobs:2 "elapsed_s" runs)
      with
      | Ok e1, Ok e2 ->
        if e2 <= e1 *. (1.0 +. time_tol) then begin
          say
            "ok         jobs=2 elapsed %.2fs vs jobs=1 %.2fs (%.2fx) on a \
             %d-core host"
            e2 e1
            (e1 /. Float.max 1e-9 e2)
            n;
          None
        end
        else begin
          fail
            "SCALING    jobs=2 elapsed %.2fs exceeds jobs=1 %.2fs by more \
             than %.0f%% on a %d-core host: parallelism is not paying"
            e2 e1 (100.0 *. time_tol) n;
          None
        end
      | Error e, _ | _, Error e ->
        fail "SCALING    cannot read the jobs sweep: %s" e;
        None)
    | Some n ->
      Some
        (Printf.sprintf
           "wall-clock scaling assertion skipped: host reports %d core(s)" n)
    | None ->
      Some "wall-clock scaling assertion skipped: no host block in the input"
  in
  Ok { s_lines = List.rev !lines; s_failures = List.rev !failures; s_skipped = skipped }

let check_scaling_file ?time_tol path =
  Result.bind (load path) (fun j -> check_scaling ?time_tol j)
