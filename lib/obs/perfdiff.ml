(** Perf-regression comparison of two bench JSON outputs.

    Compares a current [BENCH_parallel.json] (the jobs-sweep output of
    [bench/main.exe micro]) against a committed baseline, run by run
    (matched on the [jobs] field), metric by metric, against relative
    thresholds.  Deterministic work counters (what-if calls,
    configurations evaluated) get a tight tolerance — on the same
    workload they should not move at all — while wall-clock metrics
    (elapsed, throughput) get a loose one, since CI machines are noisy.

    Outcomes map onto [bin/perfdiff.exe] exit codes: [Ok] with no
    regressions → 0, at least one regression → 1, malformed or missing
    input → 2.  The CI perf-smoke job soft-fails (annotates) on 1 and
    hard-fails on 2. *)

type comparison = {
  lines : string list;  (** one human-readable line per compared metric *)
  regressions : string list;  (** subset of [lines] that breached a threshold *)
}

(* how a metric can regress *)
type direction =
  | Up_bad  (** more is a regression (elapsed, what-if calls) *)
  | Down_bad  (** less is a regression (throughput, cache hits) *)
  | Change_bad  (** any drift is a regression (deterministic counters) *)

type kind = Counter | Timing

let metrics : (string * direction * kind) list =
  [
    ("what_if_calls", Up_bad, Counter);
    ("cache_hits", Down_bad, Counter);
    ("configurations_evaluated", Change_bad, Counter);
    ("elapsed_s", Up_bad, Timing);
    ("throughput_configs_per_s", Down_bad, Timing);
  ]

let field_float name j =
  match Option.bind (Json.member name j) Json.to_float with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "missing numeric field %S" name)

let runs_by_jobs j =
  match Json.member "runs" j with
  | Some (Json.List runs) ->
    List.fold_left
      (fun acc run ->
        match acc with
        | Error _ as e -> e
        | Ok acc -> (
          match Option.bind (Json.member "jobs" run) Json.to_int with
          | Some jobs -> Ok ((jobs, run) :: acc)
          | None -> Error "run without an integer \"jobs\" field"))
      (Ok []) runs
    |> Result.map List.rev
  | Some _ -> Error "\"runs\" is not a list"
  | None -> Error "no \"runs\" field"

let compare_runs ~counter_tol ~time_tol ~jobs base cur =
  let ( let* ) = Result.bind in
  List.fold_left
    (fun acc (name, dir, kind) ->
      let* lines, regs = acc in
      let* b = field_float name base in
      let* c = field_float name cur in
      let tol = match kind with Counter -> counter_tol | Timing -> time_tol in
      let change = (c -. b) /. Float.max 1e-9 (Float.abs b) in
      let breach =
        match dir with
        | Up_bad -> change > tol
        | Down_bad -> change < -.tol
        | Change_bad -> Float.abs change > tol
      in
      let line =
        Printf.sprintf "%s jobs=%d %-26s baseline %12.2f current %12.2f (%+.1f%%, tolerance %.0f%%)"
          (if breach then "REGRESSION" else "ok        ")
          jobs name b c (100.0 *. change) (100.0 *. tol)
      in
      Ok (line :: lines, if breach then line :: regs else regs))
    (Ok ([], [])) metrics

let compare_json ?(counter_tol = 0.10) ?(time_tol = 0.50) ~baseline ~current ()
    : (comparison, string) result =
  let ( let* ) = Result.bind in
  let* base_runs = runs_by_jobs baseline in
  let* cur_runs = runs_by_jobs current in
  let* () = if base_runs = [] then Error "baseline has no runs" else Ok () in
  let* rev =
    List.fold_left
      (fun acc (jobs, base) ->
        let* lines, regs = acc in
        match List.assoc_opt jobs cur_runs with
        | None ->
          Error (Printf.sprintf "current output has no run with jobs=%d" jobs)
        | Some cur ->
          let* l, r = compare_runs ~counter_tol ~time_tol ~jobs base cur in
          Ok (l @ lines, r @ regs))
      (Ok ([], [])) base_runs
  in
  let lines, regressions = rev in
  Ok { lines = List.rev lines; regressions = List.rev regressions }

let load path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | contents -> (
    match Json.of_string (String.trim contents) with
    | Ok j -> Ok j
    | Error msg -> Error (Printf.sprintf "%s: %s" path msg))

let compare_files ?counter_tol ?time_tol ~baseline ~current () =
  let ( let* ) = Result.bind in
  let* b = load baseline in
  let* c = load current in
  compare_json ?counter_tol ?time_tol ~baseline:b ~current:c ()

let exit_code = function
  | Error _ -> 2
  | Ok { regressions = []; _ } -> 0
  | Ok _ -> 1
