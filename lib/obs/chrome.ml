(** Chrome trace-event JSON export (Perfetto-compatible).

    Converts a profiling recorder's retained span tree and counter log
    into the trace-event format that https://ui.perfetto.dev (and
    chrome://tracing) load directly: one "X" (complete) event per span
    on its domain's thread track, "M" metadata events naming the process
    and threads, and "C" (counter) events for every sampled track —
    what-if calls and latency, per-shard cache hits/misses, frontier and
    pool sizes, queue depth and GC heap words.

    Timestamps are microseconds relative to the recorder's creation, so
    traces start at t=0; thread ids are small integers assigned per
    domain in order of first span, with registered names (main loop
    first, then [pool-workerN]) on the thread tracks. *)

let us ~base t = (t -. base) *. 1e6

let of_recorder r : Json.t =
  let base = Recorder.created_at r in
  let spans = Recorder.profile_spans r in
  let counters = Recorder.counters_log r in
  let names = Recorder.thread_names r in
  (* domain id -> tid, in order of first span appearance (sid order), so
     the creating domain's track comes first *)
  let tids = Hashtbl.create 8 in
  List.iter
    (fun (s : Span_tree.span) ->
      if not (Hashtbl.mem tids s.domain) then
        Hashtbl.add tids s.domain (Hashtbl.length tids))
    spans;
  let tid_of domain =
    match Hashtbl.find_opt tids domain with Some t -> t | None -> 0
  in
  let open Json in
  let meta =
    Obj
      [
        ("name", String "process_name");
        ("ph", String "M");
        ("pid", Int 1);
        ("tid", Int 0);
        ("args", Obj [ ("name", String "relax") ]);
      ]
    :: (Hashtbl.fold (fun domain tid acc -> (domain, tid) :: acc) tids []
       |> List.sort (fun (_, a) (_, b) -> Int.compare a b)
       |> List.map (fun (domain, tid) ->
              let name =
                match List.assoc_opt domain names with
                | Some n -> n
                | None -> if tid = 0 then "main" else Printf.sprintf "domain-%d" domain
              in
              Obj
                [
                  ("name", String "thread_name");
                  ("ph", String "M");
                  ("pid", Int 1);
                  ("tid", Int tid);
                  ("args", Obj [ ("name", String name) ]);
                ]))
  in
  let span_events =
    List.map
      (fun (s : Span_tree.span) ->
        ( us ~base s.t0,
          Obj
            [
              ("name", String s.name);
              ("cat", String "span");
              ("ph", String "X");
              ("pid", Int 1);
              ("tid", Int (tid_of s.domain));
              ("ts", Float (us ~base s.t0));
              ("dur", Float (Float.max 0.0 (s.dur_s *. 1e6)));
              ( "args",
                Obj
                  ([ ("sid", Int s.sid); ("depth", Int s.depth) ]
                  @
                  match s.parent with
                  | None -> []
                  | Some p -> [ ("parent", Int p) ]) );
            ] ))
      spans
  in
  let counter_events =
    List.map
      (fun (ts, track, samples) ->
        ( us ~base ts,
          Obj
            [
              ("name", String track);
              ("cat", String "counter");
              ("ph", String "C");
              ("pid", Int 1);
              ("tid", Int 0);
              ("ts", Float (us ~base ts));
              ("args", Obj (List.map (fun (k, v) -> (k, Float v)) samples));
            ] ))
      counters
  in
  let timed =
    List.stable_sort
      (fun (a, _) (b, _) -> Float.compare a b)
      (span_events @ counter_events)
    |> List.map snd
  in
  Obj
    [
      ("traceEvents", List (meta @ timed));
      ("displayTimeUnit", String "ms");
    ]

let write r path =
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (Json.to_string (of_recorder r));
      Out_channel.output_char oc '\n')
