(** Minimal JSON: just enough for JSONL traces and their tests. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Shortest decimal that parses back to the exact same float: config
   serialization round-trips through this printer, and a lossy "%.12g"
   would perturb view-definition constants (hence view names and config
   fingerprints) across a daemon save/load cycle. *)
let float_str f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else
    let exact fmt =
      let s = Printf.sprintf fmt f in
      if Float.equal (float_of_string s) f then Some s else None
    in
    match exact "%.12g" with
    | Some s -> s
    | None -> (
      match exact "%.15g" with
      | Some s -> s
      | None -> (
        match exact "%.16g" with Some s -> s | None -> Printf.sprintf "%.17g" f))

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_str f)
  | String s -> escape buf s
  | List l ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        write buf v)
      l;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf k;
        Buffer.add_char buf ':';
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

let pp ppf v = Format.pp_print_string ppf (to_string v)

(* ------------------------------------------------------------------ *)
(* parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Fail of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let utf8_of_code buf u =
    (* enough for the BMP; the emitter only escapes control characters *)
    if u < 0x80 then Buffer.add_char buf (Char.chr u)
    else if u < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
  in
  let string_lit () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else begin
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char buf '"'; advance ()
             | '\\' -> Buffer.add_char buf '\\'; advance ()
             | '/' -> Buffer.add_char buf '/'; advance ()
             | 'b' -> Buffer.add_char buf '\b'; advance ()
             | 'f' -> Buffer.add_char buf '\012'; advance ()
             | 'n' -> Buffer.add_char buf '\n'; advance ()
             | 'r' -> Buffer.add_char buf '\r'; advance ()
             | 't' -> Buffer.add_char buf '\t'; advance ()
             | 'u' ->
               advance ();
               if !pos + 4 > n then fail "truncated \\u escape";
               let hex = String.sub s !pos 4 in
               pos := !pos + 4;
               (match int_of_string_opt ("0x" ^ hex) with
               | Some u -> utf8_of_code buf u
               | None -> fail "bad \\u escape")
             | _ -> fail "unknown escape");
          go ()
        | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
      end
    in
    go ();
    Buffer.contents buf
  in
  let number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let is_num = ref false in
    while
      !pos < n
      &&
      match s.[!pos] with
      | '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true
      | _ -> false
    do
      is_num := true;
      advance ()
    done;
    if not !is_num then fail "expected a number";
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "malformed number")
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> String (string_lit ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> number ()
    | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
    | None -> fail "unexpected end of input"
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then begin
      advance ();
      Obj []
    end
    else begin
      let fields = ref [] in
      let rec go () =
        skip_ws ();
        let k = string_lit () in
        skip_ws ();
        expect ':';
        let v = value () in
        fields := (k, v) :: !fields;
        skip_ws ();
        match peek () with
        | Some ',' -> advance (); go ()
        | Some '}' -> advance ()
        | _ -> fail "expected ',' or '}'"
      in
      go ();
      Obj (List.rev !fields)
    end
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then begin
      advance ();
      List []
    end
    else begin
      let items = ref [] in
      let rec go () =
        let v = value () in
        items := v :: !items;
        skip_ws ();
        match peek () with
        | Some ',' -> advance (); go ()
        | Some ']' -> advance ()
        | _ -> fail "expected ',' or ']'"
      in
      go ();
      List (List.rev !items)
    end
  in
  match
    let v = value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail msg -> Error msg

(* ------------------------------------------------------------------ *)
(* accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_int = function Int i -> Some i | _ -> None
let to_string_opt = function String s -> Some s | _ -> None
