(** Pluggable JSON-lines trace sinks.

    A sink receives one rendered JSON object per event.  The search emits
    into whichever sink the caller attached to its {!Recorder}: a file for
    the CLI's [--trace FILE.jsonl], an in-memory buffer for tests, or a
    custom callback. *)

type sink

val file : string -> sink
(** Append-free file sink: truncates [path] and writes one line per
    event.  Raises [Sys_error] if the path cannot be opened. *)

val memory : unit -> sink * (unit -> string list)
(** An in-memory sink and a function returning the lines emitted so far,
    in emission order. *)

val custom : emit:(string -> unit) -> ?close:(unit -> unit) -> unit -> sink
(** Build a sink from callbacks; [emit] receives one rendered line
    (without the trailing newline). *)

val null : sink
(** Swallows everything. *)

val emit : sink -> Json.t -> unit
(** Render [json] compactly and hand it to the sink as one line. *)

val close : sink -> unit
(** Flush and release underlying resources.  Idempotent for the built-in
    sinks. *)
