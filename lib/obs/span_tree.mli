(** Hierarchical spans with per-domain attribution.

    The recorder's span bookkeeping: each domain keeps its own stack of
    open frames, so nesting is well-parenthesized per domain even with
    worker domains timing their tasks concurrently.  Per-name aggregates
    carry both total and self (exclusive) wall-clock; completed span
    records — ids, parent ids, timestamps, durations — are retained only
    when profiling ([retain:true]), which is what the Chrome trace-event
    export consumes. *)

(** One completed span. *)
type span = {
  sid : int;  (** unique, ordered by open time across all domains *)
  parent : int option;  (** enclosing span on the same domain *)
  name : string;
  domain : int;  (** [Domain.self] of the opening domain *)
  depth : int;  (** nesting level on its domain, outermost = 1 *)
  t0 : float;  (** open timestamp ({!Clock.now}) *)
  dur_s : float;
}

type frame
(** An open span, returned by {!enter} and consumed by {!exit}. *)

type t

val create : retain:bool -> unit -> t
(** [retain] keeps completed span records for {!spans} (profiling mode);
    without it only the per-name aggregates accumulate. *)

val enter : t -> string -> frame
val exit : t -> frame -> float
(** Close the frame, returning its duration in seconds.  Must be called
    on the domain that entered it, in LIFO order per domain (the
    recorder's [Fun.protect] discipline guarantees both). *)

val aggregates : t -> Metrics.span_stat list
(** Per-name totals, sorted by name. *)

val spans : t -> span list
(** Completed spans in open (sid) order; [[]] unless [retain]. *)

val open_depth : t -> int
(** Open frames on the calling domain's stack (for tests). *)
