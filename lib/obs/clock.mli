(** The single sanctioned wall-clock source.

    All timing in the repository goes through this module: relax-lint
    rule L5 flags any other [Unix.gettimeofday] / [Unix.time] /
    [Sys.time] call, and the implementation carries the repository's one
    clock waiver.  Timings are only ever {e reported} (spans, histograms,
    elapsed fields) or compared against a user-requested wall-clock
    budget; they never feed a tuning decision. *)

val now : unit -> float
(** Seconds since the epoch, from the best clock the stdlib offers. *)

val elapsed_s : since:float -> float
(** [elapsed_s ~since] is [now () - since] clamped to be non-negative,
    so durations stay monotone even if the wall clock steps. *)
