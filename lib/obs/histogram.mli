(** Log-bucketed latency histograms with p50/p90/p99 summaries.

    Fixed quarter-octave buckets anchored at 1 µs (128 of them, reaching
    to roughly an hour), so histograms from different runs merge by
    bucket-wise sum and quantiles are exact to within one bucket width
    (±19 %).  The mutable accumulator {!t} is not synchronized — callers
    serialize access ({!Metrics} adds under its own lock); {!snap} takes
    an immutable copy for snapshots and merging. *)

type t
(** A mutable histogram accumulator (caller-synchronized). *)

val create : unit -> t
val add : t -> float -> unit
(** Record one duration in seconds (clamped to be non-negative). *)

type snap
(** An immutable histogram snapshot; mergeable. *)

val snap : t -> snap
val count : snap -> int
val total_s : snap -> float
val max_s : snap -> float
val merge : snap -> snap -> snap

val quantile : snap -> float -> float
(** [quantile s q] for [q] in [0,1]: the upper edge of the bucket
    holding rank [ceil (q * count)], capped at the observed maximum;
    [0.] when empty. *)

(** The reporting view: what [--metrics], bench JSON and [perfdiff]
    consume. *)
type summary = {
  h_count : int;
  h_total_s : float;
  h_max_s : float;
  p50_s : float;
  p90_s : float;
  p99_s : float;
}

val summary : snap -> summary

val to_json : snap -> Json.t
(** [{"count", "total_s", "max_ms", "p50_ms", "p90_ms", "p99_ms"}]. *)

(**/**)

val bucket_of : float -> int
val bound : int -> float
(** Bucket layout, exposed for the unit tests. *)
