(** Graceful shutdown on SIGINT/SIGTERM.

    A CLI run killed mid-flight used to drop its buffered observability:
    trace sinks hold JSONL lines in channel buffers, Chrome exports are
    written only at the end, and [exit]-less process death flushes none of
    it.  The fix is deliberately exception-shaped: the installed handler
    {e raises} {!Signalled} from the signal's safe point, so the stack
    unwinds through every [Fun.protect] on the way out — closing sinks,
    flushing channels, shutting worker pools down — exactly as on a normal
    return.  Long-running services (the continuous-tuning daemon) catch
    {!Signalled} at their loop head instead and run their final-delta
    path.

    OCaml runs signal handlers only at safe points, and the trace sinks
    write whole lines in single allocation-free calls, so an unwind can
    never tear a JSONL record.

    Handlers are process-global; install once, from the main domain, near
    the top of [main]. *)

exception Signalled of int
(** The signal number that interrupted the run ([Sys.sigint] /
    [Sys.sigterm]). *)

let exit_code signal = if signal = Sys.sigint then 130 else 143

let installed = ref false

(** Install SIGINT and SIGTERM handlers that raise {!Signalled}.  A second
    signal during cleanup terminates the process with the conventional
    128+N code instead of unwinding twice.  Idempotent. *)
let install () =
  if not !installed then begin
    installed := true;
    let fired = ref false in
    let handle signal =
      if !fired then Stdlib.exit (exit_code signal)
      else begin
        fired := true;
        raise (Signalled signal)
      end
    in
    Sys.set_signal Sys.sigint (Sys.Signal_handle handle);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle handle)
  end

(** [protect f] runs [f ()], turning a {!Signalled} escape into an
    [exit (128+N)] — after the unwind has already closed every
    [Fun.protect]-guarded resource inside [f].  The standard wrapper for
    one-shot CLI mains. *)
let protect f =
  match f () with
  | v -> v
  | exception Signalled signal -> Stdlib.exit (exit_code signal)
