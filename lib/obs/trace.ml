(** JSON-lines trace sinks: file, in-memory (for tests), or custom. *)

type sink = { emit_line : string -> unit; close_sink : unit -> unit }

let custom ~emit ?(close = fun () -> ()) () =
  { emit_line = emit; close_sink = close }

let null = custom ~emit:(fun _ -> ()) ()

let file path =
  let oc = open_out path in
  let closed = ref false in
  {
    emit_line =
      (fun line ->
        if not !closed then
          (* one write call per line: OCaml signal handlers only run at
             safe points (allocations), and a single [output_string] of a
             pre-built string performs none — so a signal raised from a
             handler (see {!Shutdown}) can never land between a line and
             its newline and leave a torn JSONL record in the buffer *)
          output_string oc (line ^ "\n"));
    close_sink =
      (fun () ->
        if not !closed then begin
          closed := true;
          close_out oc
        end);
  }

let memory () =
  let lines = ref [] in
  let sink = custom ~emit:(fun l -> lines := l :: !lines) () in
  (sink, fun () -> List.rev !lines)

let emit sink json = sink.emit_line (Json.to_string json)
let close sink = sink.close_sink ()
