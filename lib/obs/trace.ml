(** JSON-lines trace sinks: file, in-memory (for tests), or custom. *)

type sink = { emit_line : string -> unit; close_sink : unit -> unit }

let custom ~emit ?(close = fun () -> ()) () =
  { emit_line = emit; close_sink = close }

let null = custom ~emit:(fun _ -> ()) ()

let file path =
  let oc = open_out path in
  let closed = ref false in
  {
    emit_line =
      (fun line ->
        if not !closed then begin
          output_string oc line;
          output_char oc '\n'
        end);
    close_sink =
      (fun () ->
        if not !closed then begin
          closed := true;
          close_out oc
        end);
  }

let memory () =
  let lines = ref [] in
  let sink = custom ~emit:(fun l -> lines := l :: !lines) () in
  (sink, fun () -> List.rev !lines)

let emit sink json = sink.emit_line (Json.to_string json)
let close sink = sink.close_sink ()
