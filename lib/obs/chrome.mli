(** Chrome trace-event JSON export (Perfetto-compatible).

    Renders a profiling recorder ({!Recorder.create} with
    [profile:true]) as the trace-event format https://ui.perfetto.dev
    loads directly: spans become "X" complete events on per-domain
    thread tracks (with span id, parent id and depth in [args]),
    counter samples become "C" events (what-if latency, per-shard cache
    hits/misses, frontier size, pool queue depth, [gc.heap_words] and
    friends), and "M" metadata events name the process and threads.
    Timestamps are microseconds relative to recorder creation; events
    are emitted in ascending timestamp order. *)

val of_recorder : Recorder.t -> Json.t
(** The [{"traceEvents": [...]}] object.  Meaningful for profiling
    recorders; a non-profiling recorder yields an empty trace. *)

val write : Recorder.t -> string -> unit
(** Serialize {!of_recorder} to [path].  Raises [Sys_error] like
    [open_out] on an unwritable path. *)
