(** Structured tuning metrics: a mutable accumulator and its snapshots.

    Probes fire from worker domains during parallel candidate scoring and
    plan re-optimization, so every mutation and {!snapshot} goes through
    the accumulator's own [lock] (see {!locked}); snapshots are therefore
    always internally consistent. *)

type t = {
  lock : Mutex.t;  (** guards every field; see {!locked} *)
  mutable what_if_calls : int;
  mutable cache_hits : int;
  mutable plans_reoptimized : int;
  mutable plans_patched : int;
  mutable shortcut_aborts : int;
  mutable iterations : int;
  mutable configurations_evaluated : int;
  generated : (string, int) Hashtbl.t;
  applied : (string, int) Hashtbl.t;
  counters : (string, int) Hashtbl.t;
  histograms : (string, Histogram.t) Hashtbl.t;
  mutable pool_trace : int list;
}

let create () =
  {
    lock = Mutex.create ();
    what_if_calls = 0;
    cache_hits = 0;
    plans_reoptimized = 0;
    plans_patched = 0;
    shortcut_aborts = 0;
    iterations = 0;
    configurations_evaluated = 0;
    generated = Hashtbl.create 8;
    applied = Hashtbl.create 8;
    counters = Hashtbl.create 16;
    histograms = Hashtbl.create 8;
    pool_trace = [];
  }

let locked t f = Mutex.protect t.lock f

let bump tbl key n =
  Hashtbl.replace tbl key (Option.value ~default:0 (Hashtbl.find_opt tbl key) + n)

let add_generated t ~kind = locked t (fun () -> bump t.generated kind 1)
let add_applied t ~kind = locked t (fun () -> bump t.applied kind 1)
let count t name n = locked t (fun () -> bump t.counters name n)
let record_pool t n = locked t (fun () -> t.pool_trace <- n :: t.pool_trace)

let observe t name seconds =
  locked t (fun () ->
      let h =
        match Hashtbl.find_opt t.histograms name with
        | Some h -> h
        | None ->
          let h = Histogram.create () in
          Hashtbl.add t.histograms name h;
          h
      in
      Histogram.add h seconds)

type span_stat = {
  span_name : string;
  calls : int;
  total_s : float;
  self_s : float;
  max_depth : int;
}

type snapshot = {
  what_if_calls : int;
  cache_hits : int;
  plans_reoptimized : int;
  plans_patched : int;
  shortcut_aborts : int;
  iterations : int;
  configurations_evaluated : int;
  transforms_generated : (string * int) list;
  transforms_applied : (string * int) list;
  named_counters : (string * int) list;
  pool_trace : int list;
  spans : span_stat list;
  latency : (string * Histogram.snap) list;
}

let sorted_assoc tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let snapshot (t : t) ~spans : snapshot =
  locked t @@ fun () ->
  {
    what_if_calls = t.what_if_calls;
    cache_hits = t.cache_hits;
    plans_reoptimized = t.plans_reoptimized;
    plans_patched = t.plans_patched;
    shortcut_aborts = t.shortcut_aborts;
    iterations = t.iterations;
    configurations_evaluated = t.configurations_evaluated;
    transforms_generated = sorted_assoc t.generated;
    transforms_applied = sorted_assoc t.applied;
    named_counters = sorted_assoc t.counters;
    pool_trace = List.rev t.pool_trace;
    spans = List.sort (fun a b -> String.compare a.span_name b.span_name) spans;
    latency =
      Hashtbl.fold (fun k h acc -> (k, Histogram.snap h) :: acc) t.histograms []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b);
  }

let empty_snapshot = snapshot (create ()) ~spans:[]

let merge_assoc a b =
  List.fold_left
    (fun acc (k, v) ->
      match List.assoc_opt k acc with
      | Some v0 -> (k, v0 + v) :: List.remove_assoc k acc
      | None -> (k, v) :: acc)
    a b
  |> List.sort (fun (x, _) (y, _) -> String.compare x y)

let merge_spans a b =
  List.fold_left
    (fun acc (s : span_stat) ->
      match List.partition (fun x -> x.span_name = s.span_name) acc with
      | [ x ], rest ->
        {
          s with
          calls = x.calls + s.calls;
          total_s = x.total_s +. s.total_s;
          self_s = x.self_s +. s.self_s;
          max_depth = max x.max_depth s.max_depth;
        }
        :: rest
      | _ -> s :: acc)
    a b
  |> List.sort (fun x y -> String.compare x.span_name y.span_name)

let merge (a : snapshot) (b : snapshot) : snapshot =
  {
    what_if_calls = a.what_if_calls + b.what_if_calls;
    cache_hits = a.cache_hits + b.cache_hits;
    plans_reoptimized = a.plans_reoptimized + b.plans_reoptimized;
    plans_patched = a.plans_patched + b.plans_patched;
    shortcut_aborts = a.shortcut_aborts + b.shortcut_aborts;
    iterations = a.iterations + b.iterations;
    configurations_evaluated =
      a.configurations_evaluated + b.configurations_evaluated;
    transforms_generated = merge_assoc a.transforms_generated b.transforms_generated;
    transforms_applied = merge_assoc a.transforms_applied b.transforms_applied;
    named_counters = merge_assoc a.named_counters b.named_counters;
    pool_trace = a.pool_trace @ b.pool_trace;
    spans = merge_spans a.spans b.spans;
    latency =
      List.fold_left
        (fun acc (k, h) ->
          match List.assoc_opt k acc with
          | Some h0 -> (k, Histogram.merge h0 h) :: List.remove_assoc k acc
          | None -> (k, h) :: acc)
        a.latency b.latency
      |> List.sort (fun (x, _) (y, _) -> String.compare x y);
  }

let merge_all = function
  | [] -> empty_snapshot
  | s :: rest -> List.fold_left merge s rest

let to_json (s : snapshot) : Json.t =
  let assoc l = Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) l) in
  Obj
    [
      ("what_if_calls", Int s.what_if_calls);
      ("cache_hits", Int s.cache_hits);
      ("plans_reoptimized", Int s.plans_reoptimized);
      ("plans_patched", Int s.plans_patched);
      ("shortcut_aborts", Int s.shortcut_aborts);
      ("iterations", Int s.iterations);
      ("configurations_evaluated", Int s.configurations_evaluated);
      ("transforms_generated", assoc s.transforms_generated);
      ("transforms_applied", assoc s.transforms_applied);
      ("counters", assoc s.named_counters);
      ("pool_trace", List (List.map (fun n -> Json.Int n) s.pool_trace));
      ( "spans",
        List
          (List.map
             (fun (sp : span_stat) ->
               Json.Obj
                 [
                   ("name", String sp.span_name);
                   ("calls", Int sp.calls);
                   ("total_s", Float sp.total_s);
                   ("self_s", Float sp.self_s);
                   ("max_depth", Int sp.max_depth);
                 ])
             s.spans) );
      ( "latency",
        Obj (List.map (fun (k, h) -> (k, Histogram.to_json h)) s.latency) );
    ]

let pp ppf (s : snapshot) =
  let row name v = Fmt.pf ppf "  %-28s %10d@," name v in
  Fmt.pf ppf "@[<v>metrics:@,";
  row "what-if optimizer calls" s.what_if_calls;
  row "what-if cache hits" s.cache_hits;
  row "plans re-optimized" s.plans_reoptimized;
  row "plans patched (kept)" s.plans_patched;
  row "shortcut aborts" s.shortcut_aborts;
  row "search iterations" s.iterations;
  row "configurations evaluated" s.configurations_evaluated;
  (match s.pool_trace with
  | [] -> ()
  | l ->
    row "final pool size" (List.nth l (List.length l - 1));
    row "peak pool size" (List.fold_left max 0 l));
  if s.transforms_generated <> [] || s.transforms_applied <> [] then begin
    Fmt.pf ppf "  transformations (generated / applied):@,";
    let kinds =
      List.sort_uniq String.compare
        (List.map fst s.transforms_generated @ List.map fst s.transforms_applied)
    in
    List.iter
      (fun k ->
        let find l = Option.value ~default:0 (List.assoc_opt k l) in
        Fmt.pf ppf "    %-26s %10d / %d@," k
          (find s.transforms_generated)
          (find s.transforms_applied))
      kinds
  end;
  if s.named_counters <> [] then begin
    Fmt.pf ppf "  counters:@,";
    List.iter
      (fun (k, v) -> Fmt.pf ppf "    %-26s %10d@," k v)
      s.named_counters
  end;
  if s.spans <> [] then begin
    Fmt.pf ppf "  spans (calls, total, self):@,";
    List.iter
      (fun (sp : span_stat) ->
        Fmt.pf ppf "    %-26s %10d  %8.3fs  %8.3fs@," sp.span_name sp.calls
          sp.total_s sp.self_s)
      s.spans
  end;
  if s.latency <> [] then begin
    Fmt.pf ppf "  latency (count, p50/p90/p99 ms):@,";
    List.iter
      (fun (k, h) ->
        let sm = Histogram.summary h in
        Fmt.pf ppf "    %-26s %10d  %8.3f / %8.3f / %8.3f@," k sm.h_count
          (sm.p50_s *. 1e3) (sm.p90_s *. 1e3) (sm.p99_s *. 1e3))
      s.latency
  end;
  Fmt.pf ppf "@]"
