(** Log-bucketed latency histograms.

    Buckets are quarter-octave (each boundary is [2^0.25 ≈ 1.19] times
    the previous), anchored at 1 µs: 128 buckets cover 1 µs to roughly
    an hour, which spans everything from an access-path costing call to
    a whole tuning run.  Quantiles are answered with the upper edge of
    the bucket holding the requested rank, so they are exact to within
    one bucket width (±19 %) — plenty for p50/p90/p99 reporting, and the
    fixed layout makes histograms mergeable by plain bucket-wise sum. *)

let bucket_count = 128
let lo = 1e-6
let log_step = Float.log 2.0 /. 4.0

(* upper edge of bucket [i] *)
let bound i = lo *. Float.exp (float_of_int i *. log_step)

let bucket_of v =
  if v <= lo then 0
  else
    let i = int_of_float (Float.ceil (Float.log (v /. lo) /. log_step)) in
    Int.min (bucket_count - 1) (Int.max 0 i)

type t = {
  buckets : int array;
  mutable count : int;
  mutable total_s : float;
  mutable max_s : float;
}

let create () =
  { buckets = Array.make bucket_count 0; count = 0; total_s = 0.0; max_s = 0.0 }

let add t v =
  let v = Float.max 0.0 v in
  let i = bucket_of v in
  t.buckets.(i) <- t.buckets.(i) + 1;
  t.count <- t.count + 1;
  t.total_s <- t.total_s +. v;
  t.max_s <- Float.max t.max_s v

(* snapshots are immutable copies so they can outlive the accumulator
   and merge across runs (bench aggregates, Metrics.merge) *)
type snap = {
  s_buckets : int array;
  s_count : int;
  s_total_s : float;
  s_max_s : float;
}

let snap t =
  {
    s_buckets = Array.copy t.buckets;
    s_count = t.count;
    s_total_s = t.total_s;
    s_max_s = t.max_s;
  }

let count (s : snap) = s.s_count
let total_s (s : snap) = s.s_total_s
let max_s (s : snap) = s.s_max_s

let merge a b =
  {
    s_buckets = Array.init bucket_count (fun i -> a.s_buckets.(i) + b.s_buckets.(i));
    s_count = a.s_count + b.s_count;
    s_total_s = a.s_total_s +. b.s_total_s;
    s_max_s = Float.max a.s_max_s b.s_max_s;
  }

let quantile (s : snap) q =
  if s.s_count = 0 then 0.0
  else begin
    let q = Float.min 1.0 (Float.max 0.0 q) in
    let rank = Int.max 1 (int_of_float (Float.ceil (q *. float_of_int s.s_count))) in
    let acc = ref 0 and result = ref (bound (bucket_count - 1)) in
    (try
       for i = 0 to bucket_count - 1 do
         acc := !acc + s.s_buckets.(i);
         if !acc >= rank then begin
           result := bound i;
           raise Exit
         end
       done
     with Exit -> ());
    (* never report a quantile above the observed maximum *)
    Float.min !result s.s_max_s
  end

type summary = {
  h_count : int;
  h_total_s : float;
  h_max_s : float;
  p50_s : float;
  p90_s : float;
  p99_s : float;
}

let summary s =
  {
    h_count = s.s_count;
    h_total_s = s.s_total_s;
    h_max_s = s.s_max_s;
    p50_s = quantile s 0.50;
    p90_s = quantile s 0.90;
    p99_s = quantile s 0.99;
  }

let to_json s : Json.t =
  let sm = summary s in
  Obj
    [
      ("count", Int sm.h_count);
      ("total_s", Float sm.h_total_s);
      ("max_ms", Float (sm.h_max_s *. 1e3));
      ("p50_ms", Float (sm.p50_s *. 1e3));
      ("p90_ms", Float (sm.p90_s *. 1e3));
      ("p99_ms", Float (sm.p99_s *. 1e3));
    ]
