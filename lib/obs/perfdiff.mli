(** Perf-regression comparison of two bench JSON outputs.

    The library behind [bin/perfdiff.exe]: compares the jobs-sweep
    [BENCH_parallel.json] emitted by [bench/main.exe micro] against a
    committed baseline, matching runs by their [jobs] field and checking
    every known metric against a relative threshold.  Deterministic work
    counters (what-if calls up, cache hits down, configurations
    evaluated drifting either way) use [counter_tol] (default 10 %);
    wall-clock metrics (elapsed up, throughput down) use [time_tol]
    (default 50 %, CI machines are noisy).

    Exit-code mapping (see {!exit_code}): 0 = within thresholds, 1 = at
    least one regression, 2 = malformed or missing input. *)

type comparison = {
  lines : string list;  (** one line per compared metric, run order *)
  regressions : string list;  (** the lines that breached their threshold *)
}

val compare_json :
  ?counter_tol:float ->
  ?time_tol:float ->
  baseline:Json.t ->
  current:Json.t ->
  unit ->
  (comparison, string) result
(** [Error msg] means malformed input (no runs, non-numeric fields, a
    baseline run with no matching current run). *)

val compare_files :
  ?counter_tol:float ->
  ?time_tol:float ->
  baseline:string ->
  current:string ->
  unit ->
  (comparison, string) result

val exit_code : (comparison, string) result -> int
(** [0] clean, [1] regression(s), [2] malformed/missing input. *)
