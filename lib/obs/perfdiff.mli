(** Perf-regression comparison of two bench JSON outputs.

    The library behind [bin/perfdiff.exe]: compares a bench JSON emitted
    by [bench/main.exe micro] (the jobs-sweep [BENCH_parallel.json] or
    the frugality [BENCH_frugal.json]) against a committed baseline,
    matching runs by their string [label] field when present, else by
    [jobs], and checking every known metric against a relative threshold.
    Deterministic work counters (what-if calls up, cache hits down,
    configurations evaluated drifting either way, the frugality counters)
    use [counter_tol] (default 10 %); wall-clock metrics (elapsed up,
    throughput down) use [time_tol] (default 50 %, CI machines are
    noisy).

    [what_if_calls] is a {e hard} gate: a breach exits 3 and fails CI
    outright — it is the budget the frugal costing tier exists to keep
    down.  Every other metric is soft (exit 1, CI annotates).  The
    frugality counters ([bound_accepts], [bound_rejects], [budget_spent])
    are optional: they are compared only when both runs carry them.

    Exit-code mapping (see {!exit_code}): 0 = within thresholds, 1 = soft
    regression(s) only, 2 = malformed or missing input, 3 = hard
    regression(s). *)

type comparison = {
  lines : string list;  (** one line per compared metric, run order *)
  regressions : string list;  (** the lines that breached their threshold *)
  hard_regressions : string list;
      (** subset of [regressions] on hard-gated metrics ([what_if_calls]) *)
}

val compare_json :
  ?counter_tol:float ->
  ?time_tol:float ->
  baseline:Json.t ->
  current:Json.t ->
  unit ->
  (comparison, string) result
(** [Error msg] means malformed input (no runs, non-numeric required
    fields, a baseline run with no matching current run). *)

val compare_files :
  ?counter_tol:float ->
  ?time_tol:float ->
  baseline:string ->
  current:string ->
  unit ->
  (comparison, string) result

val exit_code : (comparison, string) result -> int
(** [0] clean, [1] soft regression(s), [2] malformed/missing input,
    [3] hard regression(s). *)
