(** Perf-regression comparison of two bench JSON outputs.

    The library behind [bin/perfdiff.exe]: compares a bench JSON emitted
    by [bench/main.exe micro] (the jobs-sweep [BENCH_parallel.json] or
    the frugality [BENCH_frugal.json]) against a committed baseline,
    matching runs by their string [label] field when present, else by
    [jobs], and checking every known metric against a relative threshold.
    Deterministic work counters (what-if calls up, cache hits down,
    configurations evaluated drifting either way, the frugality counters)
    use [counter_tol] (default 10 %); wall-clock metrics (elapsed up,
    throughput down) use [time_tol] (default 50 %, CI machines are
    noisy).

    [what_if_calls] is a {e hard} gate: a breach exits 3 and fails CI
    outright — it is the budget the frugal costing tier exists to keep
    down.  Every other metric is soft (exit 1, CI annotates).  The
    frugality counters ([bound_accepts], [bound_rejects], [budget_spent])
    are optional: they are compared only when both runs carry them.

    Exit-code mapping (see {!exit_code}): 0 = within thresholds, 1 = soft
    regression(s) only, 2 = malformed or missing input, 3 = hard
    regression(s). *)

type comparison = {
  lines : string list;  (** one line per compared metric, run order *)
  regressions : string list;  (** the lines that breached their threshold *)
  hard_regressions : string list;
      (** subset of [regressions] on hard-gated metrics ([what_if_calls]) *)
  skipped : string list;
      (** wall-clock gates waived because the [host] blocks of the two
          files differ (core count, compiler): timing on different host
          shapes is noise, not signal.  Non-empty iff a waiver happened;
          the first entry summarizes both hosts.  Counter gates are never
          waived. *)
}

val compare_json :
  ?counter_tol:float ->
  ?time_tol:float ->
  baseline:Json.t ->
  current:Json.t ->
  unit ->
  (comparison, string) result
(** [Error msg] means malformed input (no runs, non-numeric required
    fields, a baseline run with no matching current run). *)

val compare_files :
  ?counter_tol:float ->
  ?time_tol:float ->
  baseline:string ->
  current:string ->
  unit ->
  (comparison, string) result

val exit_code : (comparison, string) result -> int
(** [0] clean, [1] soft regression(s), [2] malformed/missing input,
    [3] hard regression(s). *)

(** {1 Multi-core scaling gate}

    Asserts, on one [BENCH_parallel.json], that parallelism pays: the
    [jobs=2] run's wall clock must not exceed the [jobs=1] run's (within
    [time_tol]), and the sweep's [identical_results] determinism verdict
    must hold.  The wall-clock half is waived — with an explicit skip
    reason the CI job surfaces as a [::warning] — when the file's [host]
    block reports fewer than 2 cores (a 1-core runner cannot show
    speedup); the determinism half is never waived. *)

type scaling = {
  s_lines : string list;  (** one line per assertion *)
  s_failures : string list;  (** hard failures (exit-3 class) *)
  s_skipped : string option;  (** waiver reason, when waived *)
}

val check_scaling :
  ?time_tol:float -> Json.t -> (scaling, string) result
(** [time_tol] defaults to 0.10: jobs=2 may be at most 10 % slower than
    jobs=1 before the gate trips (scheduler noise allowance). *)

val check_scaling_file :
  ?time_tol:float -> string -> (scaling, string) result

val scaling_exit_code : (scaling, string) result -> int
(** [0] clean or waived, [2] malformed input, [3] scaling/determinism
    failure. *)
