(** Ambient-recorder instrumentation points (no-ops when none installed).

    Probes may fire from worker domains (parallel candidate scoring and
    plan re-optimization), so every metrics mutation goes through the
    accumulator's lock. *)

let active () = Recorder.ambient () <> None

let with_metrics f =
  match Recorder.ambient () with
  | None -> ()
  | Some r ->
    let m = Recorder.metrics r in
    Metrics.locked m (fun () -> f m)

let what_if_call ~qid =
  match Recorder.ambient () with
  | None -> ()
  | Some r ->
    let m = Recorder.metrics r in
    Metrics.locked m (fun () -> m.what_if_calls <- m.what_if_calls + 1);
    Recorder.emit r (fun () ->
        Json.Obj [ ("event", String "whatif"); ("qid", String qid) ])

let cache_hit ~qid:_ =
  with_metrics (fun m -> m.cache_hits <- m.cache_hits + 1)

let plan_reoptimized () =
  with_metrics (fun m -> m.plans_reoptimized <- m.plans_reoptimized + 1)

let plan_patched () =
  with_metrics (fun m -> m.plans_patched <- m.plans_patched + 1)

let shortcut_abort () =
  with_metrics (fun m -> m.shortcut_aborts <- m.shortcut_aborts + 1)

let iteration () =
  match Recorder.ambient () with
  | None -> ()
  | Some r ->
    let m = Recorder.metrics r in
    Metrics.locked m (fun () -> m.iterations <- m.iterations + 1);
    (* per-iteration GC counter sample for the Perfetto trace *)
    Recorder.sample_gc r

let config_evaluated () =
  with_metrics (fun m ->
      m.configurations_evaluated <- m.configurations_evaluated + 1)

(* these take the metrics lock themselves *)
let transform_generated ~kind =
  match Recorder.ambient () with
  | None -> ()
  | Some r -> Metrics.add_generated (Recorder.metrics r) ~kind

let transform_applied ~kind =
  match Recorder.ambient () with
  | None -> ()
  | Some r -> Metrics.add_applied (Recorder.metrics r) ~kind

let pool_size n =
  match Recorder.ambient () with
  | None -> ()
  | Some r ->
    Metrics.record_pool (Recorder.metrics r) n;
    Recorder.counter r "search.pool" (float_of_int n)

let observe name seconds =
  match Recorder.ambient () with
  | None -> ()
  | Some r -> Metrics.observe (Recorder.metrics r) name seconds

let counter name value =
  match Recorder.ambient () with
  | None -> ()
  | Some r -> Recorder.counter r name value

let counter_series name ~series value =
  match Recorder.ambient () with
  | None -> ()
  | Some r -> Recorder.counter_series r name ~series value

let thread_name name =
  match Recorder.ambient () with
  | None -> ()
  | Some r -> Recorder.thread_name r name

let count_n name n =
  match Recorder.ambient () with
  | None -> ()
  | Some r -> Metrics.count (Recorder.metrics r) name n

let count name = count_n name 1

let span name f =
  match Recorder.ambient () with
  | None -> f ()
  | Some r -> Recorder.with_span r name f

let emit thunk =
  match Recorder.ambient () with None -> () | Some r -> Recorder.emit r thunk
