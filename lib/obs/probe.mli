(** Instrumentation points for the ambient recorder.

    Every function here is a no-op (one ref read) when no recorder is
    installed, so the optimizer and search stay un-threaded: deep layers
    call [Probe.count], [Probe.span] etc. and the numbers land in
    whichever {!Recorder} the current tuning run installed. *)

val active : unit -> bool
(** Is a recorder installed? *)

val what_if_call : qid:string -> unit
(** A what-if optimization was actually executed (cache miss).  Also
    emits a [{"event":"whatif",...}] trace line, so the trace's whatif
    event count always equals the metrics table's call count. *)

val cache_hit : qid:string -> unit
val plan_reoptimized : unit -> unit
val plan_patched : unit -> unit
val shortcut_abort : unit -> unit
val iteration : unit -> unit
val config_evaluated : unit -> unit
val transform_generated : kind:string -> unit
val transform_applied : kind:string -> unit
val pool_size : int -> unit
(** Record the configuration pool's size after an iteration (also sampled
    into the [search.pool] counter track when profiling). *)

val count : string -> unit
val count_n : string -> int -> unit

val observe : string -> float -> unit
(** Record one duration (seconds) in the ambient recorder's named
    latency histogram (pool task wait/run times, ...). *)

val counter : string -> float -> unit
(** Sample a single-series counter track (profiling mode only). *)

val counter_series : string -> series:string -> float -> unit
(** Sample one series of a counter track (e.g. one cache shard). *)

val thread_name : string -> unit
(** Name the calling domain's thread track in the Chrome export. *)

val span : string -> (unit -> 'a) -> 'a
(** Run [f] inside a named span of the ambient recorder; plain call when
    none is installed. *)

val emit : (unit -> Json.t) -> unit
(** Emit one trace event; the thunk is forced only when the ambient
    recorder has a sink. *)
