(** Graceful shutdown on SIGINT/SIGTERM.

    The installed handler raises {!Signalled} from the signal's safe
    point, so the stack unwinds through every [Fun.protect] on the way out
    — closing trace sinks and flushing channels exactly as on a normal
    return.  One-shot CLIs wrap their main in {!protect}; long-running
    services catch {!Signalled} at their loop head and run their
    final-delta path instead. *)

exception Signalled of int
(** The signal number that interrupted the run. *)

val install : unit -> unit
(** Install SIGINT/SIGTERM handlers that raise {!Signalled} (once; a
    second signal during cleanup exits immediately with 128+N).
    Process-global; call from the main domain. *)

val exit_code : int -> int
(** The conventional exit code for a signal: 130 for SIGINT, 143 for
    SIGTERM. *)

val protect : (unit -> 'a) -> 'a
(** [protect f] runs [f ()]; a {!Signalled} escape becomes
    [exit (128+N)] after the unwind has closed every protected resource
    inside [f]. *)
