(** Hierarchical spans with per-domain attribution.

    Each domain keeps its own stack of open frames, so nesting is
    well-parenthesized per domain even when worker domains open spans
    concurrently with the main loop (the old single [depth] counter
    conflated them).  Closing a frame charges its duration to the parent
    frame's child-time accumulator, which is what lets the per-name
    aggregates report {e self} (exclusive) time next to the total.

    Span ids are allocated from a single counter under the tree lock, so
    they order opens globally; completed span records are only retained
    when the tree was created with [retain:true] (profiling mode — the
    Chrome trace export needs them, plain metrics runs do not). *)

type span = {
  sid : int;
  parent : int option;
  name : string;
  domain : int;
  depth : int;  (** nesting level on its domain, outermost = 1 *)
  t0 : float;  (** open timestamp, {!Clock.now} *)
  dur_s : float;
}

type frame = {
  f_name : string;
  f_sid : int;
  f_parent : int option;
  f_depth : int;
  f_domain : int;
  f_t0 : float;
  mutable f_child_s : float;
}

type agg = {
  mutable a_calls : int;
  mutable a_total_s : float;
  mutable a_self_s : float;
  mutable a_max_depth : int;
}

type t = {
  lock : Mutex.t;
  retain : bool;
  mutable next_sid : int;
  stacks : (int, frame list) Hashtbl.t;  (** domain id -> open frames *)
  aggs : (string, agg) Hashtbl.t;
  mutable completed : span list;  (** newest first; only when [retain] *)
}

let create ~retain () =
  {
    lock = Mutex.create ();
    retain;
    next_sid = 0;
    stacks = Hashtbl.create 8;
    aggs = Hashtbl.create 16;
    completed = [];
  }

let enter t name =
  let domain = (Domain.self () :> int) in
  Mutex.protect t.lock (fun () ->
      let stack =
        Option.value ~default:[] (Hashtbl.find_opt t.stacks domain)
      in
      let parent = match stack with [] -> None | f :: _ -> Some f.f_sid in
      let sid = t.next_sid in
      t.next_sid <- sid + 1;
      let f =
        {
          f_name = name;
          f_sid = sid;
          f_parent = parent;
          f_depth = List.length stack + 1;
          f_domain = domain;
          f_t0 = Clock.now ();
          f_child_s = 0.0;
        }
      in
      Hashtbl.replace t.stacks domain (f :: stack);
      f)

let exit t (f : frame) =
  let t1 = Clock.now () in
  Mutex.protect t.lock (fun () ->
      let dt = Float.max 0.0 (t1 -. f.f_t0) in
      let stack =
        Option.value ~default:[] (Hashtbl.find_opt t.stacks f.f_domain)
      in
      (* [Fun.protect] in the recorder guarantees LIFO per domain, but be
         defensive: drop exactly this frame wherever it sits *)
      let rest =
        match stack with
        | g :: tl when g == f -> tl
        | _ -> List.filter (fun g -> not (g == f)) stack
      in
      Hashtbl.replace t.stacks f.f_domain rest;
      (match rest with
      | g :: _ -> g.f_child_s <- g.f_child_s +. dt
      | [] -> ());
      let a =
        match Hashtbl.find_opt t.aggs f.f_name with
        | Some a -> a
        | None ->
          let a =
            { a_calls = 0; a_total_s = 0.0; a_self_s = 0.0; a_max_depth = 0 }
          in
          Hashtbl.add t.aggs f.f_name a;
          a
      in
      a.a_calls <- a.a_calls + 1;
      a.a_total_s <- a.a_total_s +. dt;
      a.a_self_s <- a.a_self_s +. Float.max 0.0 (dt -. f.f_child_s);
      a.a_max_depth <- Int.max a.a_max_depth f.f_depth;
      if t.retain then
        t.completed <-
          {
            sid = f.f_sid;
            parent = f.f_parent;
            name = f.f_name;
            domain = f.f_domain;
            depth = f.f_depth;
            t0 = f.f_t0;
            dur_s = dt;
          }
          :: t.completed;
      dt)

let aggregates t : Metrics.span_stat list =
  Mutex.protect t.lock (fun () ->
      Hashtbl.fold
        (fun name (a : agg) acc ->
          {
            Metrics.span_name = name;
            calls = a.a_calls;
            total_s = a.a_total_s;
            self_s = a.a_self_s;
            max_depth = a.a_max_depth;
          }
          :: acc)
        t.aggs [])
  |> List.sort (fun (a : Metrics.span_stat) b ->
         String.compare a.span_name b.span_name)

let spans t =
  Mutex.protect t.lock (fun () -> t.completed)
  |> List.sort (fun a b -> Int.compare a.sid b.sid)

let open_depth t =
  let domain = (Domain.self () :> int) in
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.stacks domain with
      | None -> 0
      | Some stack -> List.length stack)
