(** The per-run observability context and its ambient installation.

    Worker domains report into the same recorder as the main search loop
    (spans around what-if optimizations, trace events for executed
    what-if calls), so span bookkeeping lives in a {!Span_tree} with its
    own lock, sink emission behind [emit_lock], and counter/thread-name
    profiling state behind [aux_lock]; the ambient slot is an [Atomic.t]
    so a recorder installed before a parallel region is visible to the
    worker domains it spawns.

    Profiling mode ([create ~profile:true]) additionally retains every
    completed span (id, parent id, timestamps, domain) and a log of
    counter samples — what the Chrome trace-event export consumes.
    Non-profiling runs only pay for the per-name aggregates and latency
    histograms. *)

type t = {
  metrics : Metrics.t;
  sink : Trace.sink option;
  emit_lock : Mutex.t;  (** serializes trace-line emission *)
  tree : Span_tree.t;
  profile : bool;
  created_at : float;
  aux_lock : Mutex.t;  (** guards the three profiling fields below *)
  mutable counters_log : (float * string * (string * float) list) list;
      (** (timestamp, track, series samples), newest first *)
  names : (int, string) Hashtbl.t;  (** domain id -> thread name *)
  mutable gc_last : Gc.stat;  (** previous {!Gc.quick_stat}, for deltas *)
}

let create ?sink ?(profile = false) () =
  {
    metrics = Metrics.create ();
    sink;
    emit_lock = Mutex.create ();
    tree = Span_tree.create ~retain:profile ();
    profile;
    created_at = Clock.now ();
    aux_lock = Mutex.create ();
    counters_log = [];
    names = Hashtbl.create 8;
    gc_last = Gc.quick_stat ();
  }

let metrics t = t.metrics
let profiling t = t.profile
let created_at t = t.created_at

let emit t thunk =
  match t.sink with
  | Some s ->
    let json = thunk () in
    Mutex.protect t.emit_lock (fun () -> Trace.emit s json)
  | None -> ()

let counter_sample t name samples =
  if t.profile then begin
    let ts = Clock.now () in
    Mutex.protect t.aux_lock (fun () ->
        t.counters_log <- (ts, name, samples) :: t.counters_log)
  end

let counter t name value = counter_sample t name [ ("value", value) ]
let counter_series t name ~series value = counter_sample t name [ (series, value) ]

(* Counter tracks from [Gc.quick_stat] deltas: the absolute heap size,
   the words allocated since the previous sample, and the cumulative
   major-collection count.  Sampled at span boundaries and once per
   search iteration (see {!Probe.iteration}). *)
let sample_gc t =
  if t.profile then begin
    let s = Gc.quick_stat () in
    let ts = Clock.now () in
    Mutex.protect t.aux_lock (fun () ->
        let last = t.gc_last in
        t.gc_last <- s;
        let alloc =
          Float.max 0.0
            (s.minor_words -. last.minor_words
            +. (s.major_words -. last.major_words))
        in
        t.counters_log <-
          (ts, "gc.heap_words", [ ("value", float_of_int s.heap_words) ])
          :: (ts, "gc.alloc_words", [ ("value", alloc) ])
          :: ( ts,
               "gc.major_collections",
               [ ("value", float_of_int s.major_collections) ] )
          :: t.counters_log)
  end

let thread_name t name =
  Mutex.protect t.aux_lock (fun () ->
      Hashtbl.replace t.names ((Domain.self () :> int)) name)

let with_span t name f =
  let frame = Span_tree.enter t.tree name in
  Fun.protect
    ~finally:(fun () ->
      let dt = Span_tree.exit t.tree frame in
      Metrics.observe t.metrics name dt;
      if t.profile then begin
        counter t ("latency." ^ name ^ "_us") (dt *. 1e6);
        sample_gc t
      end)
    f

let span_stats t : Metrics.span_stat list = Span_tree.aggregates t.tree
let snapshot t = Metrics.snapshot t.metrics ~spans:(span_stats t)

let profile_spans t = Span_tree.spans t.tree

let counters_log t =
  List.rev (Mutex.protect t.aux_lock (fun () -> t.counters_log))

let thread_names t =
  Mutex.protect t.aux_lock (fun () ->
      Hashtbl.fold (fun d n acc -> (d, n) :: acc) t.names [])
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let current : t option Atomic.t = Atomic.make None
let ambient () = Atomic.get current

let inherit_or_create ?sink ?profile () =
  match ambient () with Some r -> r | None -> create ?sink ?profile ()

let with_ambient t f =
  let old = Atomic.get current in
  Atomic.set current (Some t);
  Fun.protect ~finally:(fun () -> Atomic.set current old) f
