(** The per-run observability context and its ambient installation.

    Worker domains report into the same recorder as the main search loop
    (spans around what-if optimizations, trace events for executed
    what-if calls), so span bookkeeping and sink emission are each
    guarded by a small mutex; the ambient slot is an [Atomic.t] so a
    recorder installed before a parallel region is visible to the worker
    domains it spawns. *)

let now = Unix.gettimeofday

type sstat = {
  mutable calls : int;
  mutable total_s : float;
  mutable max_depth : int;
}

type t = {
  metrics : Metrics.t;
  sink : Trace.sink option;
  emit_lock : Mutex.t;  (** serializes trace-line emission *)
  span_lock : Mutex.t;  (** guards [spans] and [depth] *)
  spans : (string, sstat) Hashtbl.t;
  mutable depth : int;
}

let create ?sink () =
  {
    metrics = Metrics.create ();
    sink;
    emit_lock = Mutex.create ();
    span_lock = Mutex.create ();
    spans = Hashtbl.create 16;
    depth = 0;
  }

let metrics t = t.metrics

let emit t thunk =
  match t.sink with
  | Some s ->
    let json = thunk () in
    Mutex.protect t.emit_lock (fun () -> Trace.emit s json)
  | None -> ()

let with_span t name f =
  let t0 = now () in
  let depth =
    Mutex.protect t.span_lock (fun () ->
        t.depth <- t.depth + 1;
        t.depth)
  in
  Fun.protect
    ~finally:(fun () ->
      let dt = Float.max 0.0 (now () -. t0) in
      Mutex.protect t.span_lock (fun () ->
          t.depth <- t.depth - 1;
          let st =
            match Hashtbl.find_opt t.spans name with
            | Some st -> st
            | None ->
              let st = { calls = 0; total_s = 0.0; max_depth = 0 } in
              Hashtbl.add t.spans name st;
              st
          in
          st.calls <- st.calls + 1;
          st.total_s <- st.total_s +. dt;
          st.max_depth <- max st.max_depth depth))
    f

let span_stats t : Metrics.span_stat list =
  Mutex.protect t.span_lock (fun () ->
      Hashtbl.fold
        (fun name (st : sstat) acc ->
          {
            Metrics.span_name = name;
            calls = st.calls;
            total_s = st.total_s;
            max_depth = st.max_depth;
          }
          :: acc)
        t.spans [])
  |> List.sort (fun (a : Metrics.span_stat) b ->
         String.compare a.span_name b.span_name)

let snapshot t = Metrics.snapshot t.metrics ~spans:(span_stats t)

let current : t option Atomic.t = Atomic.make None
let ambient () = Atomic.get current

let inherit_or_create ?sink () =
  match ambient () with Some r -> r | None -> create ?sink ()

let with_ambient t f =
  let old = Atomic.get current in
  Atomic.set current (Some t);
  Fun.protect ~finally:(fun () -> Atomic.set current old) f
