(** The per-run observability context and its ambient installation. *)

let now = Unix.gettimeofday

type sstat = {
  mutable calls : int;
  mutable total_s : float;
  mutable max_depth : int;
}

type t = {
  metrics : Metrics.t;
  sink : Trace.sink option;
  spans : (string, sstat) Hashtbl.t;
  mutable depth : int;
}

let create ?sink () =
  { metrics = Metrics.create (); sink; spans = Hashtbl.create 16; depth = 0 }

let metrics t = t.metrics

let emit t thunk =
  match t.sink with Some s -> Trace.emit s (thunk ()) | None -> ()

let with_span t name f =
  let t0 = now () in
  t.depth <- t.depth + 1;
  let depth = t.depth in
  Fun.protect
    ~finally:(fun () ->
      t.depth <- t.depth - 1;
      let dt = Float.max 0.0 (now () -. t0) in
      let st =
        match Hashtbl.find_opt t.spans name with
        | Some st -> st
        | None ->
          let st = { calls = 0; total_s = 0.0; max_depth = 0 } in
          Hashtbl.add t.spans name st;
          st
      in
      st.calls <- st.calls + 1;
      st.total_s <- st.total_s +. dt;
      st.max_depth <- max st.max_depth depth)
    f

let span_stats t : Metrics.span_stat list =
  Hashtbl.fold
    (fun name (st : sstat) acc ->
      {
        Metrics.span_name = name;
        calls = st.calls;
        total_s = st.total_s;
        max_depth = st.max_depth;
      }
      :: acc)
    t.spans []
  |> List.sort (fun (a : Metrics.span_stat) b ->
         String.compare a.span_name b.span_name)

let snapshot t = Metrics.snapshot t.metrics ~spans:(span_stats t)

let current : t option ref = ref None
let ambient () = !current

let with_ambient t f =
  let old = !current in
  current := Some t;
  Fun.protect ~finally:(fun () -> current := old) f
