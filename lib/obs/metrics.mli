(** Structured tuning metrics.

    One mutable {!t} accumulates everything the search and the optimizer
    layers report through {!Probe}; an immutable {!snapshot} is what ends
    up in [Tuner.result], the [--metrics] table and the bench JSON
    output.  The named fields are the quantities the paper's evaluation
    (and every perf PR after this one) needs to see; [counters] carries
    open-ended named counts from deeper layers (access-path requests,
    view-match attempts, ...). *)

type t = {
  lock : Mutex.t;
      (** guards every field: probes fire from worker domains during
          parallel scoring and re-optimization.  Mutate only through the
          update functions below or inside {!locked}. *)
  mutable what_if_calls : int;
      (** what-if optimizations actually executed (cache misses) *)
  mutable cache_hits : int;  (** what-if calls answered from the plan cache *)
  mutable plans_reoptimized : int;
      (** per-query plans re-optimized because a relaxation touched them *)
  mutable plans_patched : int;
      (** per-query plans carried over unchanged (the §3 avoidance rule) *)
  mutable shortcut_aborts : int;
      (** configuration evaluations abandoned early (§3.5) *)
  mutable iterations : int;  (** search iterations executed *)
  mutable configurations_evaluated : int;
      (** configurations fully evaluated and added to the pool *)
  generated : (string, int) Hashtbl.t;
      (** transformations enumerated, per kind *)
  applied : (string, int) Hashtbl.t;
      (** transformations successfully applied, per kind *)
  counters : (string, int) Hashtbl.t;  (** open-ended named counters *)
  histograms : (string, Histogram.t) Hashtbl.t;
      (** named latency histograms (span durations, pool task wait/run);
          mutate through {!observe} *)
  mutable pool_trace : int list;
      (** pool size after each iteration, newest first *)
}

val create : unit -> t

val locked : t -> (unit -> 'a) -> 'a
(** Run [f] holding the accumulator's lock; every direct field mutation
    must happen inside (do not nest with the update functions below,
    which take the lock themselves). *)

val add_generated : t -> kind:string -> unit
val add_applied : t -> kind:string -> unit
val count : t -> string -> int -> unit
val record_pool : t -> int -> unit

val observe : t -> string -> float -> unit
(** Record one duration (seconds) in the named latency histogram. *)

(** Aggregated timing of one span name. *)
type span_stat = {
  span_name : string;
  calls : int;
  total_s : float;  (** summed wall-clock over all calls *)
  self_s : float;
      (** summed wall-clock excluding time spent in child spans *)
  max_depth : int;  (** deepest nesting level observed (outermost = 1) *)
}

type snapshot = {
  what_if_calls : int;
  cache_hits : int;
  plans_reoptimized : int;
  plans_patched : int;
  shortcut_aborts : int;
  iterations : int;
  configurations_evaluated : int;
  transforms_generated : (string * int) list;  (** sorted by kind *)
  transforms_applied : (string * int) list;  (** sorted by kind *)
  named_counters : (string * int) list;  (** sorted by name *)
  pool_trace : int list;  (** pool size after each iteration, oldest first *)
  spans : span_stat list;  (** sorted by name *)
  latency : (string * Histogram.snap) list;
      (** latency histograms, sorted by name; surfaced as p50/p90/p99 in
          {!pp}, {!to_json} and the bench JSON *)
}

val snapshot : t -> spans:span_stat list -> snapshot
val empty_snapshot : snapshot

val merge : snapshot -> snapshot -> snapshot
(** Pointwise sum (assoc lists merged by key, span times summed,
    [pool_trace] concatenated). *)

val merge_all : snapshot list -> snapshot

val to_json : snapshot -> Json.t
(** The object embedded in traces and in the bench JSON output. *)

val pp : Format.formatter -> snapshot -> unit
(** The [--metrics] table. *)
