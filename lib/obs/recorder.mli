(** The per-tuning-run observability context: one {!Metrics.t}, an
    optional trace sink, and a span timer.

    A recorder is installed as the {e ambient} recorder for the dynamic
    extent of a tuning run ({!with_ambient}); instrumentation points deep
    inside the optimizer reach it through {!Probe} without any parameter
    threading, and everything no-ops when no recorder is installed.

    Timings come from the best clock available to the stdlib
    ([Unix.gettimeofday]); span durations are clamped to be non-negative
    so aggregates stay monotone even if the wall clock steps.

    A recorder is safe to share across domains: spans, trace emission and
    the metrics accumulator are each internally locked, and the ambient
    slot is atomic, so probes firing from the parallel search's worker
    domains aggregate into the same recorder as the main loop. *)

type t

val create : ?sink:Trace.sink -> unit -> t
val metrics : t -> Metrics.t

val emit : t -> (unit -> Json.t) -> unit
(** Emit one trace event; the thunk is only forced when a sink is
    attached. *)

val with_span : t -> string -> (unit -> 'a) -> 'a
(** Time [f], aggregating per-name call counts, total wall-clock and
    maximum nesting depth.  Exception-safe. *)

val span_stats : t -> Metrics.span_stat list
val snapshot : t -> Metrics.snapshot

val with_ambient : t -> (unit -> 'a) -> 'a
(** Install [t] as the ambient recorder for the extent of the call
    (restoring the previous one on exit, exception-safe). *)

val ambient : unit -> t option

val inherit_or_create : ?sink:Trace.sink -> unit -> t
(** The ambient recorder when one is installed, else a fresh recorder
    (with [sink] when given).  This is the sanctioned way for an
    entry-point layer to adopt a caller's recorder: reading the ambient
    slot directly outside [lib/obs] is flagged by relax-lint rule L4. *)
