(** The per-tuning-run observability context: one {!Metrics.t}, an
    optional trace sink, and a hierarchical {!Span_tree}.

    A recorder is installed as the {e ambient} recorder for the dynamic
    extent of a tuning run ({!with_ambient}); instrumentation points deep
    inside the optimizer reach it through {!Probe} without any parameter
    threading, and everything no-ops when no recorder is installed.

    Timings come from {!Clock} (the repository's single wall-clock
    source); span durations are clamped to be non-negative so aggregates
    stay monotone even if the wall clock steps.

    A recorder is safe to share across domains: spans, trace emission,
    profiling state and the metrics accumulator are each internally
    locked, and the ambient slot is atomic, so probes firing from the
    parallel search's worker domains aggregate into the same recorder as
    the main loop.  Each domain gets its own span stack, so nesting and
    self-time stay well-defined under parallelism.

    With [profile:true] the recorder additionally retains every
    completed span and a log of counter samples (what-if traffic, cache
    shard hits/misses, GC heap words, pool queue depth, per-span
    latency) for the {!Chrome} trace-event export; plain runs skip that
    retention entirely. *)

type t

val create : ?sink:Trace.sink -> ?profile:bool -> unit -> t
(** [profile] (default [false]) turns on span/counter retention for
    {!profile_spans}, {!counters_log} and the Chrome export. *)

val metrics : t -> Metrics.t
val profiling : t -> bool

val created_at : t -> float
(** {!Clock.now} at creation; the Chrome export's time origin. *)

val emit : t -> (unit -> Json.t) -> unit
(** Emit one trace event; the thunk is only forced when a sink is
    attached. *)

val with_span : t -> string -> (unit -> 'a) -> 'a
(** Time [f] as a span on the calling domain's stack: aggregates
    per-name call counts, total and self wall-clock and maximum nesting
    depth, feeds the per-name latency histogram, and (when profiling)
    retains the completed span and samples the GC.  Exception-safe. *)

val span_stats : t -> Metrics.span_stat list
val snapshot : t -> Metrics.snapshot

val counter : t -> string -> float -> unit
(** Record one sample of a single-series counter track (profiling mode
    only; no-op otherwise). *)

val counter_series : t -> string -> series:string -> float -> unit
(** Record one sample of a named series of a counter track (e.g. one
    cache shard's hit count). *)

val sample_gc : t -> unit
(** Sample [Gc.quick_stat] into the [gc.*] counter tracks (profiling
    mode only).  Called automatically at span boundaries. *)

val thread_name : t -> string -> unit
(** Name the calling domain's thread track in the Chrome export (worker
    domains register themselves as [pool-workerN]). *)

val profile_spans : t -> Span_tree.span list
(** Completed spans in open order; [[]] unless profiling. *)

val counters_log : t -> (float * string * (string * float) list) list
(** Counter samples in chronological order; [[]] unless profiling. *)

val thread_names : t -> (int * string) list
(** Registered domain-id/name pairs, sorted by domain id. *)

val with_ambient : t -> (unit -> 'a) -> 'a
(** Install [t] as the ambient recorder for the extent of the call
    (restoring the previous one on exit, exception-safe). *)

val ambient : unit -> t option

val inherit_or_create : ?sink:Trace.sink -> ?profile:bool -> unit -> t
(** The ambient recorder when one is installed, else a fresh recorder
    (with [sink]/[profile] when given).  This is the sanctioned way for
    an entry-point layer to adopt a caller's recorder: reading the
    ambient slot directly outside [lib/obs] is flagged by relax-lint
    rule L4. *)
