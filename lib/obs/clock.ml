(** The single sanctioned wall-clock source.

    Every wall-clock read in the tree routes through {!now} so that
    relax-lint rule L5 can flag stray [Unix.gettimeofday] calls anywhere
    else — the waiver below is the only one the repository carries.
    Centralizing the reads also keeps the door open for a virtual clock
    (deterministic replay, simulated time) without touching call sites. *)

(* relax-lint: allow L5 the one sanctioned wall-clock read; all timing routes through Clock *)
let now = Unix.gettimeofday

let elapsed_s ~since = Float.max 0.0 (now () -. since)
