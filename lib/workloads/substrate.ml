(** Big-substrate workloads: simulated statistics at TPC-H scale factors
    1–10 and generated statement pools of 100–1000 statements.

    The catalog is pure statistics (histograms, distinct counts, widths) —
    no rows are ever materialized — so an SF-10 catalog costs the same
    memory as the SF-0.05 test catalog while driving the optimizer and the
    size model through realistically large cardinalities.  Statement pools
    follow the production-workload recipe: a seed set of random templates
    over the join graph, replicated by re-drawing every range-predicate
    constant ([Generator.reparameterize]), the shape repeated workloads
    actually have.  Everything is deterministic in [seed]. *)

module Query = Relax_sql.Query
module Rng = Relax_catalog.Rng

let default_seed = 7100

(** TPC-H-shaped catalog at scale factor [sf] (rows = [sf] × the SF-1
    counts; 1.0–10.0 is the supported benchmarking range, smaller values
    work and are what the unit tests use). *)
let catalog ?(sf = 1.0) ?(seed = default_seed) () =
  Tpch.catalog ~scale:sf ~seed ()

let schema ?sf ?seed () : Generator.schema =
  { catalog = catalog ?sf ?seed (); joins = Tpch.join_graph }

let pool_qid ~rep qid = Printf.sprintf "%s-r%d" qid rep

(** [pool ~templates ~reps] = [templates × reps] statements: [templates]
    random statements (ids [g1-r0], [g2-r0], ...) plus [reps - 1]
    reparameterized copies of each ([gK-r1], [gK-r2], ...).  26×4 = 104 is
    the multicore determinism suite's workload; 125×8 = 1000 the top of
    the supported pool range. *)
let pool ?sf ?(seed = default_seed) ?(templates = 26) ?(reps = 4)
    ?(update_fraction = 0.0) () : Query.workload =
  if templates <= 0 || reps <= 0 then invalid_arg "Substrate.pool";
  let sc = schema ?sf ~seed () in
  let profile = { Generator.default_profile with update_fraction } in
  let base = Generator.workload ~seed ~profile sc ~n:templates in
  let rng = Rng.create (seed + 1) in
  List.concat_map
    (fun rep ->
      List.map
        (fun (e : Query.entry) -> { e with qid = pool_qid ~rep e.qid })
        (if rep = 0 then base else Generator.reparameterize sc rng base))
    (List.init reps Fun.id)
