(** Big-substrate workloads for multi-core benchmarking: simulated
    statistics at TPC-H scale factors 1–10 and generated statement pools
    of 100–1000 statements.  Catalogs are statistics-only (an SF-10
    catalog costs no more memory than a test-sized one); pools are
    template sets replicated by re-drawing predicate constants, and
    everything is deterministic in [seed]. *)

val default_seed : int

val catalog : ?sf:float -> ?seed:int -> unit -> Relax_catalog.Catalog.t
(** TPC-H-shaped catalog at scale factor [sf] (default 1.0; rows = [sf] ×
    the SF-1 counts).  1.0–10.0 is the benchmarking range; smaller values
    work too. *)

val schema : ?sf:float -> ?seed:int -> unit -> Generator.schema
(** [catalog] packaged with the TPC-H join graph for the generator. *)

val pool :
  ?sf:float ->
  ?seed:int ->
  ?templates:int ->
  ?reps:int ->
  ?update_fraction:float ->
  unit ->
  Relax_sql.Query.workload
(** A generated pool of [templates × reps] statements: [templates] random
    templates over the join graph plus [reps - 1] reparameterized copies
    of each (qids [gK-rN]).  Defaults 26×4 = 104; 125×8 = 1000 is the top
    of the supported range.
    @raise Invalid_argument when [templates] or [reps] is not positive. *)
