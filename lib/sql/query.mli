(** Query and workload representation: single-block SPJG queries (the
    paper's query and view-definition language), update statements, and
    weighted workloads. *)

open Types

(** Aggregate functions allowed in SPJG select lists. *)
type agg_fn = Count | Sum | Min | Max | Avg

val pp_agg_fn : Format.formatter -> agg_fn -> unit

(** An output item: a base column or an aggregate over one
    ([Item_agg (Count, None)] is a count-star). *)
type select_item = Item_col of column | Item_agg of agg_fn * column option

val item_columns : select_item -> Column_set.t
val pp_select_item : Format.formatter -> select_item -> unit

(** A single-block SPJG query: the 6-tuple (S, F, J, R, O, G) of §3.1.2. *)
type spjg = {
  select : select_item list;  (** S *)
  tables : string list;  (** F: sorted, duplicate-free *)
  joins : Predicate.join list;  (** J *)
  ranges : Predicate.range list;  (** R *)
  others : Expr.t list;  (** O *)
  group_by : column list;  (** G *)
}

val make_spjg :
  select:select_item list ->
  tables:string list ->
  ?joins:Predicate.join list ->
  ?ranges:Predicate.range list ->
  ?others:Expr.t list ->
  ?group_by:column list ->
  unit ->
  spjg
(** Normalizes: sorts and dedups tables, intersects same-column ranges. *)

val has_aggregates : spjg -> bool
val spjg_columns : spjg -> Column_set.t
val spjg_columns_of_table : spjg -> string -> Column_set.t

(** A full select statement: an SPJG block plus a required output order. *)
type select_query = {
  body : spjg;
  order_by : (column * order_dir) list;
}

(** Update statements, in the shape §3.6 wants.  [Insert] models a batch of
    [rows] insertions. *)
type dml =
  | Update of {
      table : string;
      assignments : (string * Expr.t) list;
      ranges : Predicate.range list;
      others : Expr.t list;
    }
  | Insert of { table : string; rows : int }
  | Delete of {
      table : string;
      ranges : Predicate.range list;
      others : Expr.t list;
    }

val dml_table : dml -> string

type statement = Select of select_query | Dml of dml

(** A workload entry: a statement with an identifier and frequency weight. *)
type entry = { qid : string; weight : float; stmt : statement }

type workload = entry list

val entry : ?weight:float -> string -> statement -> entry
val select_entries : workload -> (entry * select_query) list
val dml_entries : workload -> (entry * dml) list
val has_updates : workload -> bool
val statement_tables : statement -> string list

val column_equiv : Predicate.join list -> column -> column -> bool
(** Equivalence of columns under a set of equi-join predicates (union-find
    over the join graph): the relation behind every "modulo column
    equivalence" test in view matching. *)

val select_qid : string -> string
(** The qid under which a DML entry's select component is planned and
    cached.  All costing layers (what-if cache keys, advisory bounds,
    frugal-tier lookups, per-node plan maps) derive the component qid
    through this one helper so caches and bound stores agree. *)

val base_qid : string -> string
(** Inverse of {!select_qid}: the workload entry behind a planning qid,
    whether or not it carries the select-component suffix. *)

val split_update : dml -> select_query option * dml
(** Split an update statement into its pure select component and an update
    shell (§3.6): [UPDATE R SET a=b+1 WHERE a<10] reads as
    [SELECT b+1 FROM R WHERE a<10] plus a shell whose cost is the index
    maintenance.  The select component is [None] for inserts. *)

val updated_columns : dml -> Column_set.t
(** Columns assigned by an UPDATE (empty for insert/delete, which maintain
    every index on the table). *)
