(** Query and workload representation.

    The query language is the paper's: single-block SPJ queries with optional
    GROUP BY (SPJG), plus an ORDER BY on top for select statements.  The same
    SPJG record doubles as the view-definition language (§"Assumptions").
    Update statements carry the pieces needed by §3.6 (splitting into a pure
    select query and an update shell). *)

open Types

(** Aggregate functions allowed in SPJG select lists. *)
type agg_fn = Count | Sum | Min | Max | Avg

let pp_agg_fn ppf f =
  Fmt.string ppf
    (match f with
    | Count -> "COUNT"
    | Sum -> "SUM"
    | Min -> "MIN"
    | Max -> "MAX"
    | Avg -> "AVG")

(** An output column: either a base-table column or an aggregate over one
    ([Item_agg (Count, None)] is a count-star). *)
type select_item = Item_col of column | Item_agg of agg_fn * column option

let item_columns = function
  | Item_col c | Item_agg (_, Some c) -> Column_set.singleton c
  | Item_agg (_, None) -> Column_set.empty

let pp_select_item ppf = function
  | Item_col c -> Column.pp ppf c
  | Item_agg (f, Some c) -> Fmt.pf ppf "%a(%a)" pp_agg_fn f Column.pp c
  | Item_agg (f, None) -> Fmt.pf ppf "%a(*)" pp_agg_fn f

(** A single-block SPJG query: the 6-tuple (S, F, J, R, O, G) of §3.1.2. *)
type spjg = {
  select : select_item list;  (** S *)
  tables : string list;  (** F, kept sorted and duplicate-free *)
  joins : Predicate.join list;  (** J *)
  ranges : Predicate.range list;  (** R *)
  others : Expr.t list;  (** O *)
  group_by : column list;  (** G *)
}

let make_spjg ~select ~tables ?(joins = []) ?(ranges = []) ?(others = [])
    ?(group_by = []) () =
  {
    select;
    tables = List.sort_uniq String.compare tables;
    joins;
    ranges = Predicate.normalize_ranges ranges;
    others;
    group_by;
  }

let has_aggregates q =
  List.exists (function Item_agg _ -> true | Item_col _ -> false) q.select

(** All columns referenced anywhere in the block. *)
let spjg_columns q =
  let acc =
    List.fold_left
      (fun acc it -> Column_set.union acc (item_columns it))
      Column_set.empty q.select
  in
  let acc =
    Predicate.classified_columns
      { joins = q.joins; ranges = q.ranges; others = q.others }
    |> Column_set.union acc
  in
  List.fold_left (fun acc c -> Column_set.add c acc) acc q.group_by

(** Columns of [q] that live in table [t]. *)
let spjg_columns_of_table q t =
  Column_set.filter (fun c -> c.tbl = t) (spjg_columns q)

(** A full select statement: an SPJG block plus a required output order. *)
type select_query = {
  body : spjg;
  order_by : (column * order_dir) list;
}

(** Update statements, already in the shape §3.6 wants.  [Insert] models a
    batch of [rows] row insertions; [Update] assigns expressions to columns
    of a single table under a classified WHERE; [Delete] removes the rows
    matching its WHERE. *)
type dml =
  | Update of {
      table : string;
      assignments : (string * Expr.t) list;
      ranges : Predicate.range list;
      others : Expr.t list;
    }
  | Insert of { table : string; rows : int }
  | Delete of {
      table : string;
      ranges : Predicate.range list;
      others : Expr.t list;
    }

let dml_table = function
  | Update u -> u.table
  | Insert i -> i.table
  | Delete d -> d.table

type statement = Select of select_query | Dml of dml

(** A workload entry: a statement with an identifier and a frequency
    weight. *)
type entry = { qid : string; weight : float; stmt : statement }

type workload = entry list

let entry ?(weight = 1.0) qid stmt = { qid; weight; stmt }

let select_entries w =
  List.filter_map
    (fun e -> match e.stmt with Select q -> Some (e, q) | Dml _ -> None)
    w

let dml_entries w =
  List.filter_map
    (fun e -> match e.stmt with Dml d -> Some (e, d) | Select _ -> None)
    w

let has_updates w = dml_entries w <> []

(** Tables referenced by a statement. *)
let statement_tables = function
  | Select q -> q.body.tables
  | Dml d -> [ dml_table d ]

(* --- Column equivalence under a query's join predicates ------------------ *)

(** Equivalence classes of columns induced by a set of equi-join predicates;
    this is the relation under which "modulo column equivalence" tests run.
    Implemented as a tiny union-find over the columns that appear in
    joins. *)
let column_equiv (joins : Predicate.join list) : column -> column -> bool =
  let parent = Hashtbl.create 16 in
  let rec find c =
    match Hashtbl.find_opt parent c with
    | None -> c
    | Some p ->
      let r = find p in
      Hashtbl.replace parent c r;
      r
  in
  let union a b =
    let ra = find a and rb = find b in
    if not (Column.equal ra rb) then Hashtbl.replace parent ra rb
  in
  List.iter (fun (j : Predicate.join) -> union j.left j.right) joins;
  fun a b -> Column.equal a b || Column.equal (find a) (find b)

(** The qid under which a DML entry's select component is planned and
    cached.  Every costing layer (what-if cache keys, advisory bounds,
    frugal-tier lookups, per-node plan maps) must derive the component qid
    through this one helper so the caches and bound stores agree. *)
let select_qid qid = qid ^ ":select"

(** Inverse of {!select_qid}: the workload entry's qid behind a planning
    qid, whether or not it carries the select-component suffix. *)
let base_qid qid =
  match String.rindex_opt qid ':' with
  | Some i when String.sub qid i (String.length qid - i) = ":select" ->
    String.sub qid 0 i
  | _ -> qid

(* --- The running example of §3.6 ----------------------------------------- *)

(** Split an update statement into its pure select component and an update
    shell, per §3.6:
    [UPDATE R SET a=b+1, c=c*c+5 WHERE a<10 AND d<20] becomes
    [SELECT b+1, c*c+5 FROM R WHERE a<10 AND d<20] plus
    [UPDATE TOP(k) R SET a=0, c=0] where [k] is the select's cardinality.
    The select component is [None] for inserts (nothing to read). *)
let split_update (d : dml) : select_query option * dml =
  match d with
  | Update u ->
    let cols =
      List.fold_left
        (fun acc (_, e) -> Column_set.union acc (Expr.columns e))
        Column_set.empty u.assignments
    in
    let select =
      if Column_set.is_empty cols then
        [ Item_agg (Count, None) ]
      else
        List.map (fun c -> Item_col c) (Column_set.elements cols)
    in
    let body =
      make_spjg ~select ~tables:[ u.table ] ~ranges:u.ranges ~others:u.others
        ()
    in
    (Some { body; order_by = [] }, d)
  | Delete del ->
    let body =
      make_spjg
        ~select:[ Item_agg (Count, None) ]
        ~tables:[ del.table ] ~ranges:del.ranges ~others:del.others ()
    in
    (Some { body; order_by = [] }, d)
  | Insert _ -> (None, d)

(** Columns assigned by an update shell (used to decide which indexes an
    UPDATE maintains: only those containing an assigned column). *)
let updated_columns = function
  | Update u ->
    List.fold_left
      (fun acc (name, _) -> Column_set.add (Column.make u.table name) acc)
      Column_set.empty u.assignments
  | Insert _ | Delete _ -> Column_set.empty
  (* inserts and deletes touch every index on the table *)
