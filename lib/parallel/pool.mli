(** A fixed pool of worker domains over a shared task queue.

    The search uses it for the two hot loops of the relaxation: scoring
    candidate transformations and re-optimizing the plans a relaxation
    affected.  Both are independent per-item computations, so the only
    contract that matters is {!map}'s: results come back in input order
    and an exception raised by [f] is re-raised in the caller (the one
    with the smallest input index, for determinism).  Parallelism is a
    pure speedup, never a behaviour change: at [jobs = 1] no domains are
    spawned and [map] degenerates to [List.map].

    Workers report into the ambient {!Relax_obs} recorder when one is
    installed: per-task queue-wait and run-time latency histograms
    ([pool.task.wait_s] / [pool.task.run_s]), a [pool.queue_depth]
    counter track, and a [pool-workerN] thread name for the Chrome trace
    export's domain→tid mapping.  All of it no-ops without a recorder,
    and none of it changes task order or results. *)

type t

val create : jobs:int -> t
(** Spawn [jobs] worker domains ([jobs <= 1] spawns none: every [map]
    then runs sequentially in the caller).  An explicit request is
    honoured verbatim — even beyond
    [Domain.recommended_domain_count ()], in which case the
    [pool.oversubscribed] / [pool.oversubscribed_by] warning counters
    are recorded instead of silently clamping.  The pool is fixed-size;
    call {!shutdown} when done. *)

val jobs : t -> int
(** The parallelism degree the pool was created with (at least 1). *)

val default_jobs : unit -> int
(** The [RELAX_JOBS] environment variable when set to a positive
    integer (respected uncapped), otherwise
    [Domain.recommended_domain_count ()] capped at 8.  The cap applies
    only to this hardware-derived default, never to an explicit
    request. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel map: [map t f l] equals [List.map f l] for
    pure [f], whatever the parallelism.  Tasks run on the worker domains
    while the caller blocks; when several tasks raise, the exception of
    the smallest list index is re-raised after the whole batch has
    drained (so the pool is reusable afterwards).  Only the domain that
    created the pool may call [map]; worker tasks must not. *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** {!map} over arrays end to end: same ordering and exception contract,
    no intermediate list allocation.  The variant the search's
    arena-based evaluation loop uses. *)

(** Lifetime counters, for {!Relax_obs.Metrics} named counters. *)
type stats = {
  pool_jobs : int;
  tasks : int;  (** tasks executed across all [map] calls *)
  batches : int;  (** [map] calls that dispatched to workers *)
  busy_s : float array;  (** per-worker-domain busy seconds *)
}

val stats : t -> stats

val shutdown : t -> unit
(** Drain and join the worker domains.  Idempotent; [map] after
    [shutdown] runs sequentially. *)
