(** Fixed worker domains over a task queue; see the interface for the
    contract.  The implementation is deliberately dependency-free: one
    mutex, two condition variables, a [Queue.t] of closures.

    A [map] call packs each list element into a closure writing its slot
    of a results array, enqueues them all, and blocks until a shared
    countdown reaches zero.  Writes of the result slots happen-before the
    caller's reads because both sides go through [lock] (the worker
    decrements the countdown under it, the caller observes zero under
    it), so no further synchronization per slot is needed. *)

module Obs = Relax_obs

(* a queued task remembers when it was enqueued, so workers can report
   queue wait separately from run time *)
type task = { enqueued_at : float; run : unit -> unit }

type t = {
  pool_jobs : int;
  lock : Mutex.t;
  work_available : Condition.t;
  work_done : Condition.t;
  queue : task Queue.t;
  mutable shutting_down : bool;
  mutable domains : unit Domain.t array;
  (* lifetime counters, mutated under [lock] (or by the sole caller when
     running sequentially) *)
  mutable n_tasks : int;
  mutable n_batches : int;
  busy : float array;
}

type stats = {
  pool_jobs : int;
  tasks : int;
  batches : int;
  busy_s : float array;
}

(* The 8-way cap is a *default* only: one search rarely profits from
   more domains, so the absent-flag behaviour stays conservative.  An
   explicit request — [RELAX_JOBS] or [create ~jobs] — is always
   respected verbatim; {!create} records an oversubscription warning
   counter instead of silently clamping. *)
let default_jobs () =
  let hw = Int.min 8 (Domain.recommended_domain_count ()) in
  match Sys.getenv_opt "RELAX_JOBS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | Some _ | None -> hw)
  | None -> hw

let worker t i () =
  (* the ambient recorder was installed before this domain was spawned,
     so the registration lands in the run's Chrome thread-name map *)
  Obs.Probe.thread_name (Printf.sprintf "pool-worker%d" i);
  let rec loop () =
    Mutex.lock t.lock;
    while Queue.is_empty t.queue && not t.shutting_down do
      Condition.wait t.work_available t.lock
    done;
    if Queue.is_empty t.queue then begin
      (* shutting down and drained *)
      Mutex.unlock t.lock;
      ()
    end
    else begin
      let task = Queue.pop t.queue in
      let qlen = Queue.length t.queue in
      Mutex.unlock t.lock;
      Obs.Probe.counter "pool.queue_depth" (float_of_int qlen);
      let t0 = Obs.Clock.now () in
      Obs.Probe.observe "pool.task.wait_s"
        (Float.max 0.0 (t0 -. task.enqueued_at));
      task.run ();
      let dt = Obs.Clock.elapsed_s ~since:t0 in
      Obs.Probe.observe "pool.task.run_s" dt;
      Mutex.lock t.lock;
      t.busy.(i) <- t.busy.(i) +. dt;
      Mutex.unlock t.lock;
      loop ()
    end
  in
  loop ()

let create ~jobs =
  let jobs = max 1 jobs in
  (* an explicit request beyond the hardware is honoured, not clamped —
     but it is worth a warning counter: the extra domains only add
     scheduling noise, and the bench host-metadata stamp (BENCH_*.json)
     needs the discrepancy to be visible *)
  let hw = Domain.recommended_domain_count () in
  if jobs > hw then begin
    Obs.Probe.count "pool.oversubscribed";
    Obs.Probe.count_n "pool.oversubscribed_by" (jobs - hw)
  end;
  let t =
    {
      pool_jobs = jobs;
      lock = Mutex.create ();
      work_available = Condition.create ();
      work_done = Condition.create ();
      queue = Queue.create ();
      shutting_down = false;
      domains = [||];
      n_tasks = 0;
      n_batches = 0;
      busy = Array.make (max 1 jobs) 0.0;
    }
  in
  if jobs > 1 then
    t.domains <- Array.init jobs (fun i -> Domain.spawn (worker t i));
  t

let jobs (t : t) = t.pool_jobs

let stats t : stats =
  Mutex.lock t.lock;
  let s =
    {
      pool_jobs = t.pool_jobs;
      tasks = t.n_tasks;
      batches = t.n_batches;
      busy_s = Array.copy t.busy;
    }
  in
  Mutex.unlock t.lock;
  s

(* Re-raise the smallest-index exception so failures are deterministic
   whatever the scheduling. *)
let reraise_first (errors : exn option array) =
  Array.iter (function Some e -> raise e | None -> ()) errors

let sequential_map t f l =
  t.n_batches <- t.n_batches + 1;
  t.n_tasks <- t.n_tasks + List.length l;
  List.map f l

(* Dispatch [n] slot-writing tasks and block until the countdown drains.
   Writes of the result slots happen-before the caller's reads because
   both sides go through [lock].  Shared by {!map} and {!map_array}. *)
let dispatch (type b) t (n : int) (run_slot : int -> b) :
    b option array =
  let results : b option array = Array.make n None in
  let errors : exn option array = Array.make n None in
  let remaining = ref n in
  let task i () =
    (try results.(i) <- Some (run_slot i)
     with e -> errors.(i) <- Some e);
    Mutex.lock t.lock;
    decr remaining;
    if !remaining = 0 then Condition.broadcast t.work_done;
    Mutex.unlock t.lock
  in
  let enqueued_at = Obs.Clock.now () in
  Mutex.lock t.lock;
  for i = 0 to n - 1 do
    (* relax-lint: allow L8 the closure is enqueued, not invoked: a worker runs it after this section ends and takes t.lock afresh, so the acquisition never nests *)
    Queue.add { enqueued_at; run = task i } t.queue
  done;
  t.n_tasks <- t.n_tasks + n;
  t.n_batches <- t.n_batches + 1;
  Condition.broadcast t.work_available;
  while !remaining > 0 do
    Condition.wait t.work_done t.lock
  done;
  Mutex.unlock t.lock;
  reraise_first errors;
  results

let map (type a b) t (f : a -> b) (l : a list) : b list =
  match l with
  | [] -> []
  | [ x ] ->
    t.n_tasks <- t.n_tasks + 1;
    [ f x ]
  | l when Array.length t.domains = 0 -> sequential_map t f l
  | l ->
    let arr = Array.of_list l in
    let results = dispatch t (Array.length arr) (fun i -> f arr.(i)) in
    List.init (Array.length arr) (fun i ->
        match results.(i) with
        | Some r -> r
        | None -> assert false (* no exception and no result is impossible *))

(* the arena-friendly variant: same contract as {!map}, arrays end to
   end — no per-batch list rebuilding on the hot evaluation path *)
let map_array (type a b) t (f : a -> b) (arr : a array) : b array =
  let n = Array.length arr in
  if n = 0 then [||]
  else if n = 1 then begin
    t.n_tasks <- t.n_tasks + 1;
    [| f arr.(0) |]
  end
  else if Array.length t.domains = 0 then begin
    t.n_batches <- t.n_batches + 1;
    t.n_tasks <- t.n_tasks + n;
    Array.map f arr
  end
  else begin
    let results = dispatch t n (fun i -> f arr.(i)) in
    Array.map
      (function
        | Some r -> r
        | None -> assert false (* no exception and no result is impossible *))
      results
  end

let shutdown t =
  if Array.length t.domains > 0 then begin
    Mutex.lock t.lock;
    t.shutting_down <- true;
    Condition.broadcast t.work_available;
    Mutex.unlock t.lock;
    Array.iter Domain.join t.domains;
    t.domains <- [||]
  end
