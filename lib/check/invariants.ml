(** Structural configuration invariants (see the interface). *)

open Relax_sql.Types
module Catalog = Relax_catalog.Catalog
module Config = Relax_physical.Config
module Index = Relax_physical.Index
module View = Relax_physical.View

type violation = { rule : string; subject : string; detail : string }

let pp_violation ppf v =
  Fmt.pf ppf "%s: %s (%s)" v.rule v.subject v.detail

let v rule subject detail = { rule; subject; detail }

(* columns an index over [owner] may legally reference *)
let owner_columns catalog config owner =
  if Catalog.mem_table catalog owner then
    Some (Catalog.columns_of catalog owner)
  else
    match Config.find_view config owner with
    | Some (view, _) ->
      Some (List.map (fun (_, it) -> View.column_of_item view it) (View.outputs view))
    | None -> None

let check catalog config =
  let acc = ref [] in
  let add x = acc := x :: !acc in
  (* at most one clustered index per relation *)
  let clustered = Hashtbl.create 8 in
  List.iter
    (fun i ->
      if i.Index.clustered then begin
        let owner = Index.owner i in
        match Hashtbl.find_opt clustered owner with
        | Some first ->
          add
            (v "clustered_unique" owner
               (Fmt.str "both %s and %s are clustered" first (Index.name i)))
        | None -> Hashtbl.replace clustered owner (Index.name i)
      end)
    (Config.indexes config);
  (* no duplicate structure names (content-derived names: a duplicate means
     the same structure is carried twice) *)
  let names = Hashtbl.create 16 in
  List.iter
    (fun n ->
      if Hashtbl.mem names n then
        add (v "duplicate_structure" n "structure appears more than once")
      else Hashtbl.replace names n ())
    (Config.structure_names config);
  (* every index column exists on its owner *)
  List.iter
    (fun i ->
      let owner = Index.owner i in
      match owner_columns catalog config owner with
      | None ->
        add
          (v "unknown_owner" (Index.name i)
             (Fmt.str "owner %s is neither a base table nor a view of the \
                       configuration"
                owner))
      | Some cols ->
        Column_set.iter
          (fun c ->
            if not (List.exists (Column.equal c) cols) then
              add
                (v "unknown_column" (Index.name i)
                   (Fmt.str "column %s.%s does not exist on %s" c.tbl c.col
                      owner)))
          (Index.columns i))
    (Config.indexes config);
  (* view row estimates must be finite and non-negative *)
  List.iter
    (fun (view, rows) ->
      if not (Float.is_finite rows) || rows < 0.0 then
        add
          (v "view_rows" (View.name view)
             (Fmt.str "row estimate %g is not a finite non-negative number"
                rows)))
    (Config.views_with_rows config);
  List.rev !acc
