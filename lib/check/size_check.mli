(** Differential size oracle for the §3.3.1 B-tree model.

    {!Relax_physical.Size_model} computes sizes in closed form (float
    division, [floor] capacities, [ceil] page counts).  This module
    re-derives the same quantities by {e simulation}: entries are packed
    onto pages one at a time until a page overflows, page counts are
    integer arithmetic, and the index widths are re-derived from the index
    definition rather than shared with the model.  Agreement within a
    small tolerance is strong evidence the closed form is right; a
    disagreement pinpoints a rounding or truncation bug (the class of bug
    this checker was built to catch). *)

type result = {
  structure : string;
  predicted : float;  (** bytes, per the closed-form model *)
  simulated : float;  (** bytes, per the packing simulation *)
  measured_rows : float option;
      (** actual row count when the relation was materialized through the
          engine; [None] when it was too large to materialize *)
  rel_err : float;  (** |predicted − simulated| / max(1, predicted) *)
}

val simulate_btree_pages :
  ?params:Relax_physical.Size_model.params ->
  rows:float -> leaf_width:float -> key_width:float -> unit -> float
(** Page count of a B-tree by packing simulation: leaf capacity is found
    by adding entries to a page until it overflows, internal fan-out
    likewise (clamped to ≥ 2), level page counts are integer ceiling
    divisions. *)

val simulate_heap_pages :
  ?params:Relax_physical.Size_model.params ->
  rows:float -> row_width:float -> unit -> float

val check_index :
  ?params:Relax_physical.Size_model.params ->
  ?rows:float ->
  Relax_catalog.Catalog.t ->
  Relax_physical.Config.t ->
  Relax_physical.Index.t ->
  result
(** Compare {!Relax_physical.Config.index_bytes} against the simulated
    size of the same index.  [rows] overrides the configuration's row
    count for the owner (used when the engine measured the real count). *)

val measured_rows :
  Relax_engine.Data.t ->
  Relax_physical.Config.t ->
  sample:int ->
  string ->
  float option
(** Materialize a relation through the engine and count its rows: base
    tables directly, views by evaluating their definition.  [None] when
    any involved base table exceeds [sample] rows (materialization would
    be too expensive for a checker). *)
