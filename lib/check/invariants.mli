(** Structural configuration invariants.

    Every configuration produced by {!Relax_tuner.Transform.apply} must
    satisfy a handful of invariants that no later phase re-checks: at most
    one clustered index per relation, no duplicate structures, every index
    column defined on its owner (base table or view), and finite
    non-negative view row estimates.  [check] returns one entry per broken
    invariant; an empty list means the configuration is well-formed. *)

type violation = {
  rule : string;
      (** [clustered_unique], [duplicate_structure], [unknown_owner],
          [unknown_column] or [view_rows] *)
  subject : string;  (** the offending structure or relation *)
  detail : string;
}

val pp_violation : Format.formatter -> violation -> unit

val check :
  Relax_catalog.Catalog.t -> Relax_physical.Config.t -> violation list
