(** Differential size oracle (see the interface). *)

module Catalog = Relax_catalog.Catalog
module Config = Relax_physical.Config
module Index = Relax_physical.Index
module Size_model = Relax_physical.Size_model
module Data = Relax_engine.Data
module Eval = Relax_engine.Eval

type result = {
  structure : string;
  predicted : float;
  simulated : float;
  measured_rows : float option;
  rel_err : float;
}

(* Entries fitting one page, found by adding entries until the page
   overflows — no division, so a floor-vs-round bug in the closed form
   cannot be replicated here. *)
let page_capacity p ~entry_width =
  let usable =
    (p.Size_model.page_size -. p.Size_model.page_overhead)
    *. p.Size_model.fill_factor
  in
  let entry_width = Float.max 1.0 entry_width in
  let rec fill n used =
    if used +. entry_width > usable then n
    else fill (n + 1) (used +. entry_width)
  in
  max 1 (fill 0 0.0)

(* ceil(n / cap) in integer arithmetic *)
let pages_for n cap = (n + cap - 1) / cap

let simulate_btree_pages ?(params = Size_model.default_params) ~rows
    ~leaf_width ~key_width () =
  let entries = int_of_float (Float.ceil (Float.max 1.0 rows)) in
  let lcap = page_capacity params ~entry_width:leaf_width in
  let icap =
    (* fan-out below 2 cannot form a tree; the model clamps identically *)
    max 2
      (page_capacity params
         ~entry_width:(key_width +. params.pointer_width))
  in
  let leaves = pages_for entries lcap in
  let rec levels total s =
    if s <= 1 then total
    else
      let s' = pages_for s icap in
      levels (total + s') s'
  in
  float_of_int (levels leaves leaves)

let simulate_heap_pages ?(params = Size_model.default_params) ~rows
    ~row_width () =
  let entries = int_of_float (Float.ceil (Float.max 1.0 rows)) in
  float_of_int (pages_for entries (page_capacity params ~entry_width:row_width))

(* Index widths re-derived from the definition: keys sum to the internal
   entry width; leaves carry keys + suffix + rid, or the whole row when
   clustered.  Deliberately not shared with [Size_model.index_widths]. *)
let simulate_index_bytes ?(params = Size_model.default_params) catalog config
    ~rows (i : Index.t) =
  let width_of c = Config.column_width catalog config c in
  let key_width =
    List.fold_left (fun acc c -> acc +. width_of c) 0.0 i.keys
  in
  let leaf_width =
    if i.clustered then
      Float.max key_width
        (Config.relation_row_width catalog config (Index.owner i))
    else
      Relax_sql.Types.Column_set.fold
        (fun c acc -> acc +. width_of c)
        i.suffix key_width
      +. params.rid_width
  in
  simulate_btree_pages ~params ~rows ~leaf_width ~key_width ()
  *. params.page_size

let check_index ?(params = Size_model.default_params) ?rows catalog config
    (i : Index.t) =
  let owner = Index.owner i in
  let config_rows = Config.relation_rows catalog config owner in
  let sim_rows = Option.value rows ~default:config_rows in
  let predicted = Config.index_bytes catalog config i in
  let simulated = simulate_index_bytes ~params catalog config ~rows:sim_rows i in
  {
    structure = Index.name i;
    predicted;
    simulated;
    measured_rows = rows;
    rel_err = Float.abs (predicted -. simulated) /. Float.max 1.0 predicted;
  }

let measured_rows (db : Data.t) config ~sample name =
  let cat = db.Data.catalog in
  let small t = Catalog.rows cat t <= float_of_int sample in
  if Catalog.mem_table cat name then begin
    if small name then
      Some (float_of_int (Data.row_count (Data.relation db name)))
    else None
  end
  else
    match Config.find_view config name with
    | Some (view, _)
      when List.for_all small (Relax_physical.View.base_tables view) ->
      Some (float_of_int (Data.row_count (Eval.materialize_view db view)))
    | _ -> None
