(** The differential invariant checker.

    Attached to a tuning run through
    {!Relax_tuner.Search.options.on_iteration} (or
    {!Relax_tuner.Tuner.options.on_iteration}), the checker replays every
    search iteration against independent oracles:

    - {b bound soundness}: the §3.3.2 upper bound
      {!Relax_tuner.Cost_bound.query_bound} must dominate the what-if
      re-optimized cost of every affected query, within [bound_epsilon];
    - {b differential apply}: re-applying the iteration's transformation to
      the parent configuration must reproduce the configuration the search
      built;
    - {b structural invariants}: every produced configuration passes
      {!Invariants.check};
    - {b size fidelity}: every structure's §3.3.1 closed-form size agrees
      with {!Size_check}'s packing simulation within [size_tolerance],
      with small relations materialized through the engine;
    - {b penalty consistency}: the realized ΔT of an evaluated node never
      exceeds the predicted ΔT, and realized ΔS matches predicted ΔS,
      within [penalty_epsilon].

    Ratios realized/predicted are accumulated into {!Drift} histograms.
    Violations are emitted as [check.violation] JSONL events and
    [check.violation.<rule>] counters into the {e ambient} recorder of the
    run being checked; the checker's own oracle computations (what-if
    optimizations, access-path calls) run under a private recorder so they
    never pollute the run's metrics or trace. *)

type tolerances = {
  bound_epsilon : float;
      (** relative slack before a cost bound counts as violated *)
  size_tolerance : float;
      (** relative disagreement allowed between the closed-form size and
          the packing simulation *)
  penalty_epsilon : float;  (** relative slack on ΔT / ΔS consistency *)
  size_sample : int;
      (** materialize relations up to this many rows through the engine *)
}

val default_tolerances : tolerances
(** [bound_epsilon = 1e-6], [size_tolerance = 0.02],
    [penalty_epsilon = 1e-6], [size_sample = 4096]. *)

type violation = {
  rule : string;
  iteration : int;
  subject : string;  (** transformation, structure or query involved *)
  detail : string;
  expected : float;  (** the oracle's value ([nan] when not numeric) *)
  actual : float;  (** the search's value ([nan] when not numeric) *)
}

val violation_json : violation -> Relax_obs.Json.t
val pp_violation : Format.formatter -> violation -> unit

type report = {
  iterations_checked : int;
  bounds_checked : int;  (** (transformation, affected query) pairs *)
  sizes_checked : int;  (** distinct structures cross-sized *)
  violations : violation list;  (** in discovery order *)
  bound_drift : Drift.t;  (** re-optimized cost / §3.3.2 bound *)
  cost_drift : Drift.t;  (** realized ΔT / predicted ΔT *)
  size_drift : Drift.t;  (** simulated bytes / closed-form bytes *)
}

type t

val create :
  ?tolerances:tolerances ->
  Relax_catalog.Catalog.t ->
  workload:Relax_sql.Query.workload ->
  protected:Relax_physical.Config.t ->
  unit ->
  t

val bound_ok : tolerances -> bound:float -> actual:float -> bool
(** Whether [actual] respects the upper [bound] within relative
    [bound_epsilon] noise ({!Relax_tuner.Cost_bound.float_leq}); the
    predicate behind the bound-soundness rule, exposed so tests can pin
    its tolerance behaviour. *)

val hook : t -> Relax_tuner.Search.iteration_report -> unit
(** The per-iteration entry point; pass [Some (Checker.hook t)] as
    [on_iteration]. *)

val report : t -> report
val ok : report -> bool
(** No violations. *)

val report_json : report -> Relax_obs.Json.t
val pp_report : Format.formatter -> report -> unit
