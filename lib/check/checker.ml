(** The differential invariant checker (see the interface). *)

module Query = Relax_sql.Query
module Catalog = Relax_catalog.Catalog
module Config = Relax_physical.Config
module Index = Relax_physical.Index
module View = Relax_physical.View
module O = Relax_optimizer
module T = Relax_tuner
module Obs = Relax_obs
module Data = Relax_engine.Data

type tolerances = {
  bound_epsilon : float;
  size_tolerance : float;
  penalty_epsilon : float;
  size_sample : int;
}

let default_tolerances =
  {
    bound_epsilon = 1e-6;
    size_tolerance = 0.02;
    penalty_epsilon = 1e-6;
    size_sample = 4096;
  }

type violation = {
  rule : string;
  iteration : int;
  subject : string;
  detail : string;
  expected : float;
  actual : float;
}

let violation_json v =
  let module J = Obs.Json in
  J.Obj
    [
      ("event", J.String "check.violation");
      ("rule", J.String v.rule);
      ("iteration", J.Int v.iteration);
      ("subject", J.String v.subject);
      ("detail", J.String v.detail);
      ("expected", J.Float v.expected);
      ("actual", J.Float v.actual);
    ]

let pp_violation ppf v =
  Fmt.pf ppf "[iteration %d] %s: %s — %s" v.iteration v.rule v.subject
    v.detail;
  if Float.is_finite v.expected || Float.is_finite v.actual then
    Fmt.pf ppf " (expected %g, got %g)" v.expected v.actual

type report = {
  iterations_checked : int;
  bounds_checked : int;
  sizes_checked : int;
  violations : violation list;
  bound_drift : Drift.t;
  cost_drift : Drift.t;
  size_drift : Drift.t;
}

type t = {
  cat : Catalog.t;
  tol : tolerances;
  protected : Config.t;
  selects : (string * float * Query.select_query) list;
  whatif : O.Whatif.t;  (** checker-private plan cache *)
  quiet : Obs.Recorder.t;
      (** oracle probes land here instead of the run's recorder *)
  db : Data.t Lazy.t;
  cbv_memo : (string, float) Hashtbl.t;
  sized : (string, unit) Hashtbl.t;  (** structures already cross-sized *)
  rows_memo : (string, float option) Hashtbl.t;
  mutable iterations_checked : int;
  mutable bounds_checked : int;
  mutable sizes_checked : int;
  mutable violations_rev : violation list;
  bound_drift : Drift.t;
  cost_drift : Drift.t;
  size_drift : Drift.t;
}

let create ?(tolerances = default_tolerances) cat ~workload ~protected () =
  let prepared = T.Search.prepare workload in
  {
    cat;
    tol = tolerances;
    protected;
    selects = prepared.selects;
    whatif = O.Whatif.create cat;
    quiet = Obs.Recorder.create ();
    db = lazy (Data.create cat);
    cbv_memo = Hashtbl.create 16;
    sized = Hashtbl.create 64;
    rows_memo = Hashtbl.create 16;
    iterations_checked = 0;
    bounds_checked = 0;
    sizes_checked = 0;
    violations_rev = [];
    bound_drift = Drift.create ();
    cost_drift = Drift.create ();
    size_drift = Drift.create ();
  }

(* --- independent oracles ------------------------------------------------ *)

(* view cardinality the same way the search estimates it: the optimizer's
   §3.3.1 cardinality module over the protected environment *)
let estimate_rows t (v : View.t) =
  O.Cardinality.spjg (O.Env.make t.cat t.protected) (View.definition v)

(* CBV memo: cost of computing a view from scratch under the protected
   configuration *)
let cbv t (v : View.t) =
  let name = View.name v in
  match Hashtbl.find_opt t.cbv_memo name with
  | Some c -> c
  | None ->
    let sq = { Query.body = View.definition v; order_by = [] } in
    let cost = (O.Optimizer.optimize t.cat t.protected sq).cost in
    Hashtbl.replace t.cbv_memo name cost;
    cost

(* the §3.3.2 costing context, rebuilt from scratch (not shared with the
   search's) *)
let bound_context t ~old_config ~new_config (tr : T.Transform.t) :
    T.Cost_bound.context =
  let view_merge =
    match tr with
    | T.Transform.Merge_views (a, b) -> (
      match View.merge a b with Some m -> Some (m, a, b) | None -> None)
    | _ -> None
  in
  {
    env' = O.Env.make t.cat new_config;
    old_env = O.Env.make t.cat old_config;
    removed_indexes = T.Transform.removed_indexes old_config tr;
    removed_views = T.Transform.removed_views tr;
    view_merge;
    cbv = cbv t;
    expands = T.Transform.adds_structures tr;
  }

let relation_rows_measured t config owner =
  match Hashtbl.find_opt t.rows_memo owner with
  | Some r -> r
  | None ->
    let r =
      Size_check.measured_rows (Lazy.force t.db) config
        ~sample:t.tol.size_sample owner
    in
    Hashtbl.replace t.rows_memo owner r;
    r

(* --- the per-iteration hook --------------------------------------------- *)

(* All float comparisons against oracle values go through the
   Cost_bound epsilon helpers (lint L3): a bound holds when the actual
   cost is below it up to relative [bound_epsilon] noise. *)
let bound_ok (tol : tolerances) ~bound ~actual =
  T.Cost_bound.float_leq ~eps:tol.bound_epsilon actual bound

let hook t (r : T.Search.iteration_report) =
  t.iterations_checked <- t.iterations_checked + 1;
  let fresh = ref [] in
  let add rule ~subject ~detail ~expected ~actual =
    fresh :=
      { rule; iteration = r.it_iteration; subject; detail; expected; actual }
      :: !fresh
  in
  let tr_label = T.Transform.id r.it_transform in
  (* Every oracle below may optimize, cost access paths or register
     derived-table statistics; running them under the private recorder
     keeps the checked run's metrics and trace byte-identical to an
     unchecked run. *)
  Obs.Recorder.with_ambient t.quiet (fun () ->
      (* 1. differential apply: re-derive the child configuration *)
      let reapplied =
        T.Transform.apply ~estimate_rows:(estimate_rows t) r.it_parent
          r.it_transform
      in
      (match (reapplied, r.it_applied) with
      | None, None -> ()
      | Some mine, Some theirs
        when Config.fingerprint mine = Config.fingerprint theirs ->
        ()
      | mine, theirs ->
        let show = function
          | None -> "inapplicable"
          | Some c -> Config.fingerprint c
        in
        add "apply_mismatch" ~subject:tr_label
          ~detail:
            (Fmt.str
               "independent re-application produced %s, the search produced \
                %s"
               (show mine) (show theirs))
          ~expected:Float.nan ~actual:Float.nan);
      (* 2. structural invariants on every configuration the iteration
         produced *)
      let check_invariants config =
        List.iter
          (fun (iv : Invariants.violation) ->
            add iv.rule ~subject:iv.subject ~detail:iv.detail
              ~expected:Float.nan ~actual:Float.nan)
          (Invariants.check t.cat config)
      in
      Option.iter check_invariants r.it_applied;
      (match (r.it_applied, r.it_result) with
      | Some applied, Some (result_config, _, _)
        when Config.fingerprint applied <> Config.fingerprint result_config ->
        (* batched transformations or shrinking produced a different
           configuration: check it too *)
        check_invariants result_config
      | _ -> ());
      (* 3. bound soundness: the §3.3.2 bound vs what-if re-optimization *)
      (match reapplied with
      | None -> ()
      | Some config' ->
        let ctx =
          bound_context t ~old_config:r.it_parent ~new_config:config'
            r.it_transform
        in
        List.iter
          (fun (qid, _w, sq) ->
            let plan = O.Whatif.plan_select t.whatif r.it_parent ~qid sq in
            if T.Cost_bound.plan_affected ctx plan then begin
              t.bounds_checked <- t.bounds_checked + 1;
              let bound =
                T.Cost_bound.query_bound ~order_by:sq.Query.order_by ctx plan
              in
              let actual =
                (O.Whatif.plan_select t.whatif config' ~qid sq).O.Plan.cost
              in
              Drift.add t.bound_drift
                (if bound > 0.0 then actual /. bound else Float.nan);
              (* the frugal tier's lower bound must bracket the same
                 re-optimized cost from below *)
              let lower =
                T.Cost_bound.query_lower_bound ~order_by:sq.Query.order_by ctx
                  plan
              in
              if not (bound_ok t.tol ~bound:actual ~actual:lower) then
                add "lower_bound_soundness" ~subject:(tr_label ^ " / " ^ qid)
                  ~detail:
                    "the frugal lower bound is above the re-optimized cost"
                  ~expected:actual ~actual:lower;
              if not (bound_ok t.tol ~bound ~actual) then begin
                add "bound_soundness" ~subject:(tr_label ^ " / " ^ qid)
                  ~detail:
                    "the §3.3.2 upper bound is below the re-optimized cost"
                  ~expected:actual ~actual:bound;
                (* RELAX_CHECK_DEBUG=1 dumps enough context to rebuild the
                   violating case in a standalone repro *)
                if Sys.getenv_opt "RELAX_CHECK_DEBUG" <> None then begin
                  Fmt.epr "@.== check debug: %s / %s ==@." tr_label qid;
                  Fmt.epr "parent structures:@.";
                  List.iter
                    (fun i -> Fmt.epr "  %a@." Index.pp i)
                    (Config.indexes r.it_parent);
                  List.iter
                    (fun v -> Fmt.epr "  view %s@." (View.name v))
                    (Config.views r.it_parent);
                  Fmt.epr "old plan (cost %.3f):@.%a@." plan.O.Plan.cost
                    O.Plan.pp plan;
                  let new_plan = O.Whatif.plan_select t.whatif config' ~qid sq in
                  Fmt.epr "new plan (cost %.3f):@.%a@." new_plan.O.Plan.cost
                    O.Plan.pp new_plan
                end
              end
            end)
          t.selects);
      (* 4. penalty consistency on evaluated nodes (only when the result is
         exactly the applied configuration: the §3.5 extension and
         shrinking legitimately change ΔT/ΔS) *)
      (match (reapplied, r.it_result) with
      | Some mine, Some (result_config, cost', size')
        when Config.fingerprint mine = Config.fingerprint result_config ->
        let realized_dt = cost' -. r.it_parent_cost in
        let realized_ds = r.it_parent_size -. size' in
        (* a zero prediction (no plan affected) has no meaningful ratio;
           the consistency check below still covers it *)
        if Float.abs r.it_predicted_delta_cost > 0.0 then
          Drift.add t.cost_drift (realized_dt /. r.it_predicted_delta_cost);
        if
          not
            (T.Cost_bound.float_leq ~eps:t.tol.penalty_epsilon realized_dt
               r.it_predicted_delta_cost)
        then
          add "delta_cost" ~subject:tr_label
            ~detail:"realized ΔT exceeds the predicted upper bound"
            ~expected:r.it_predicted_delta_cost ~actual:realized_dt;
        if
          not
            (T.Cost_bound.float_eq ~eps:t.tol.penalty_epsilon realized_ds
               r.it_predicted_delta_space)
        then
          add "delta_space" ~subject:tr_label
            ~detail:"realized ΔS diverges from the predicted space saving"
            ~expected:r.it_predicted_delta_space ~actual:realized_ds
      | _ -> ());
      (* 5. size fidelity: cross-size every structure once *)
      match r.it_applied with
      | None -> ()
      | Some config ->
        List.iter
          (fun i ->
            let owner = Index.owner i in
            let key =
              Fmt.str "%s#%g" (Index.name i)
                (Config.relation_rows t.cat config owner)
            in
            if not (Hashtbl.mem t.sized key) then begin
              Hashtbl.replace t.sized key ();
              t.sizes_checked <- t.sizes_checked + 1;
              let measured = relation_rows_measured t config owner in
              let res = Size_check.check_index t.cat config i in
              let sim_at_measured =
                match measured with
                | Some rows when not (Catalog.mem_table t.cat owner) ->
                  (* a view's true cardinality: record how far the stored
                     estimate drifts, without flagging estimation error as
                     a size-model bug *)
                  (Size_check.check_index ~rows t.cat config i).simulated
                | _ -> res.simulated
              in
              Drift.add t.size_drift
                (if res.predicted > 0.0 then sim_at_measured /. res.predicted
                 else Float.nan);
              if res.rel_err > t.tol.size_tolerance then
                add "size_model" ~subject:res.structure
                  ~detail:
                    "closed-form size disagrees with the packing simulation"
                  ~expected:res.simulated ~actual:res.predicted
            end)
          (Config.indexes config));
  (* surface what the oracles found through the run's own recorder *)
  let found = List.rev !fresh in
  List.iter
    (fun v ->
      t.violations_rev <- v :: t.violations_rev;
      Obs.Probe.count "check.violation";
      Obs.Probe.count ("check.violation." ^ v.rule);
      Obs.Probe.emit (fun () -> violation_json v))
    found

(* --- reporting ---------------------------------------------------------- *)

let report t =
  {
    iterations_checked = t.iterations_checked;
    bounds_checked = t.bounds_checked;
    sizes_checked = t.sizes_checked;
    violations = List.rev t.violations_rev;
    bound_drift = t.bound_drift;
    cost_drift = t.cost_drift;
    size_drift = t.size_drift;
  }

let ok (r : report) = r.violations = []

let report_json (r : report) =
  let module J = Obs.Json in
  J.Obj
    [
      ("event", J.String "check.report");
      ("iterations_checked", J.Int r.iterations_checked);
      ("bounds_checked", J.Int r.bounds_checked);
      ("sizes_checked", J.Int r.sizes_checked);
      ("violations", J.Int (List.length r.violations));
      ("bound_drift", Drift.to_json r.bound_drift);
      ("cost_drift", Drift.to_json r.cost_drift);
      ("size_drift", Drift.to_json r.size_drift);
    ]

let pp_report ppf (r : report) =
  Fmt.pf ppf
    "checked %d iterations: %d bound comparisons, %d structures sized, %d \
     violations@."
    r.iterations_checked r.bounds_checked r.sizes_checked
    (List.length r.violations);
  Fmt.pf ppf "  bound drift (actual/bound): %a@." Drift.pp r.bound_drift;
  Fmt.pf ppf "  cost drift  (realized/predicted ΔT): %a@." Drift.pp
    r.cost_drift;
  Fmt.pf ppf "  size drift  (simulated/closed-form): %a@." Drift.pp
    r.size_drift;
  List.iter (fun v -> Fmt.pf ppf "  %a@." pp_violation v) r.violations
