(** The online guardrail: the differential checker's oracles run once
    against a proposed configuration before the continuous tuner deploys
    it, plus the post-deploy cost-drift predicate behind auto-rollback.

    Pre-deploy, {!validate} checks structural invariants
    ({!Invariants.check}), re-derives every index size by packing
    simulation ({!Size_check.check_index}), enforces the space budget and
    recomputes the predicted window cost through an independent what-if
    interface (agreement within [cost_slack], default 1% — looser than
    [bound_epsilon] because §3 plan patching legitimately drifts a
    fraction of a percent from exact re-optimization).  Oracle
    computations run under a private recorder and never pollute the
    caller's metrics or trace. *)

type verdict = {
  passed : bool;
  reasons : string list;
      (** one human-readable line per failed check; empty iff [passed] *)
  invariant_violations : Invariants.violation list;
  size_failures : Size_check.result list;
  size_bytes : float;  (** total footprint of the proposal *)
  recomputed_cost : float;
      (** independent what-if cost of the window under the proposal *)
  claimed_cost : float;
}

val validate :
  ?tolerances:Checker.tolerances ->
  ?cost_slack:float ->
  Relax_catalog.Catalog.t ->
  workload:Relax_sql.Query.workload ->
  space_budget:float ->
  claimed_cost:float ->
  Relax_physical.Config.t ->
  verdict

val drift_exceeded : margin:float -> predicted:float -> realized:float -> bool
(** Post-deploy rollback trigger: realized per-unit-weight cost above the
    predicted one by more than [margin] (one-sided; running cheaper than
    predicted never fires). *)

val drift_ratio : predicted:float -> realized:float -> float
(** realized / predicted, [1.0] when the prediction is degenerate. *)

val verdict_json : verdict -> Relax_obs.Json.t
