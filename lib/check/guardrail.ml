(** The online guardrail: the differential checker's oracles, run once
    against a proposed DDL delta before it is "deployed".

    The offline {!Checker} replays every search iteration; a continuous
    tuner cannot afford that per re-tune, but it can afford one pass over
    the proposal itself: structural invariants, the packing-simulation
    size oracle for every structure the delta creates, the space budget,
    and an independent what-if recompute of the predicted window cost.  A
    configuration failing any of these never reaches deployment — the "no
    regression by construction" half of the safety story.

    The other half is post-deploy: predicted cost is a model value, and a
    model can be wrong about the live window.  {!drift_exceeded} is the
    rollback trigger — it compares realized per-unit-weight cost against
    the prediction with a configurable margin.  Costs are normalized per
    unit of window weight by the caller, so the comparison survives the
    window itself growing or decaying between re-tunes.

    Oracle computations run under a private recorder so validation never
    pollutes the daemon's own metrics or trace. *)

module Query = Relax_sql.Query
module Config = Relax_physical.Config
module O = Relax_optimizer
module Obs = Relax_obs

type verdict = {
  passed : bool;
  reasons : string list;
      (** one human-readable line per failed check; empty iff [passed] *)
  invariant_violations : Invariants.violation list;
  size_failures : Size_check.result list;
      (** structures whose closed-form size disagreed with the packing
          simulation beyond tolerance *)
  size_bytes : float;  (** total footprint of the proposal *)
  recomputed_cost : float;
      (** the independent what-if cost of the window under the proposal *)
  claimed_cost : float;
}

let validate ?(tolerances = Checker.default_tolerances) ?(cost_slack = 0.01)
    catalog ~(workload : Query.workload) ~space_budget ~claimed_cost
    (proposal : Config.t) : verdict =
  let quiet = Obs.Recorder.create () in
  Obs.Recorder.with_ambient quiet @@ fun () ->
  let reasons = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> reasons := s :: !reasons) fmt in
  (* structural invariants *)
  let invariant_violations = Invariants.check catalog proposal in
  List.iter
    (fun (v : Invariants.violation) ->
      fail "invariant %s: %s (%s)" v.rule v.subject v.detail)
    invariant_violations;
  (* size oracle: every index re-derived by packing simulation *)
  let size_failures =
    List.filter_map
      (fun i ->
        let r = Size_check.check_index catalog proposal i in
        if r.Size_check.rel_err > tolerances.Checker.size_tolerance then begin
          fail "size oracle: %s drifts %.1f%% (model %.0f vs simulated %.0f)"
            r.Size_check.structure
            (100.0 *. r.Size_check.rel_err)
            r.Size_check.predicted r.Size_check.simulated;
          Some r
        end
        else None)
      (Config.indexes proposal)
  in
  (* the space budget, allowing the size oracle's own tolerance as slack *)
  let size_bytes = Config.total_bytes catalog proposal in
  if size_bytes > space_budget *. (1.0 +. tolerances.Checker.size_tolerance)
  then
    fail "space budget: %.0f bytes exceeds budget %.0f" size_bytes space_budget;
  (* independent cost recompute: a fresh what-if interface, so no cached
     plan or advisory bound of the tuning run is trusted.  [cost_slack]
     is deliberately looser than [bound_epsilon]: the search's §3 plan
     patching carries costs over without full re-optimization, so a
     fraction of a percent of drift against exact recompute is expected —
     the check is after stale-cache/wrong-config mistakes, not float
     noise *)
  let whatif = O.Whatif.create catalog in
  let recomputed_cost = O.Whatif.workload_cost whatif proposal workload in
  let cost_gap =
    Float.abs (recomputed_cost -. claimed_cost)
    /. Float.max 1e-9 (Float.abs recomputed_cost)
  in
  if cost_gap > cost_slack then
    fail "predicted cost: claimed %.6g, independent recompute %.6g (%.2f%% apart)"
      claimed_cost recomputed_cost (100.0 *. cost_gap);
  {
    passed = !reasons = [];
    reasons = List.rev !reasons;
    invariant_violations;
    size_failures;
    size_bytes;
    recomputed_cost;
    claimed_cost;
  }

(** Post-deploy rollback trigger: has the realized per-unit-weight window
    cost drifted above the predicted one by more than [margin]
    (e.g. [0.15] = 15%)?  One-sided — a window running {e cheaper} than
    predicted is good news, not drift.  An absolute epsilon guards the
    near-zero regime so noise on a tiny prediction cannot fire it. *)
let drift_exceeded ~margin ~predicted ~realized =
  realized > (predicted *. (1.0 +. margin)) +. 1e-9

(** The drift ratio reported in daemon events: realized / predicted,
    [1.0] when the prediction is degenerate. *)
let drift_ratio ~predicted ~realized =
  if predicted > 1e-12 then realized /. predicted else 1.0

let verdict_json (v : verdict) : Obs.Json.t =
  Obs.Json.Obj
    [
      ("passed", Obs.Json.Bool v.passed);
      ("reasons", Obs.Json.List (List.map (fun s -> Obs.Json.String s) v.reasons));
      ("size_bytes", Obs.Json.Float v.size_bytes);
      ("recomputed_cost", Obs.Json.Float v.recomputed_cost);
      ("claimed_cost", Obs.Json.Float v.claimed_cost);
    ]
