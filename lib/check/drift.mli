(** Fixed-bucket drift histograms.

    The checker records the ratio [realized / predicted] for every
    quantity it cross-checks (cost bounds, size estimates, penalty
    components).  Ratios land in a fixed log-scale bucketing centred on
    1.0, so histograms from different runs are directly comparable and
    the JSONL rendering is stable. *)

type t

val create : unit -> t

val add : t -> float -> unit
(** Record one [realized / predicted] ratio.  Non-finite ratios (a zero
    or infinite prediction) go to a dedicated bucket instead of being
    dropped. *)

val count : t -> int
val buckets : t -> (string * int) list
(** (label, count) for every bucket, in ratio order, zero counts
    included. *)

val mean : t -> float
(** Arithmetic mean of the finite ratios recorded; [nan] when none. *)

val to_json : t -> Relax_obs.Json.t
val pp : Format.formatter -> t -> unit
