(** Fixed-bucket drift histograms (see the interface). *)

(* Bucket upper bounds (exclusive); the last bucket is open-ended.  The
   grid is asymmetric around 1.0 on purpose: a ratio just under 1.0 means
   a sound over-estimate (healthy), just over 1.0 means the prediction was
   exceeded — the interesting tail gets finer buckets. *)
let bounds = [| 0.5; 0.9; 0.99; 1.0; 1.01; 1.1; 2.0; 10.0 |]

let labels =
  [|
    "<0.5"; "0.5-0.9"; "0.9-0.99"; "0.99-1.0"; "1.0-1.01"; "1.01-1.1";
    "1.1-2"; "2-10"; ">=10";
  |]

type t = {
  counts : int array;  (** one per label *)
  mutable non_finite : int;
  mutable n : int;
  mutable sum : float;  (** of finite ratios, for the mean *)
}

let create () =
  { counts = Array.make (Array.length labels) 0; non_finite = 0; n = 0; sum = 0.0 }

let bucket_index r =
  let rec go i =
    if i >= Array.length bounds then Array.length bounds
    else if r < bounds.(i) then i
    else go (i + 1)
  in
  go 0

let add t r =
  t.n <- t.n + 1;
  if Float.is_finite r then begin
    t.sum <- t.sum +. r;
    let i = bucket_index r in
    t.counts.(i) <- t.counts.(i) + 1
  end
  else t.non_finite <- t.non_finite + 1

let count t = t.n

let buckets t =
  List.concat
    [
      Array.to_list (Array.mapi (fun i c -> (labels.(i), c)) t.counts);
      (if t.non_finite > 0 then [ ("non-finite", t.non_finite) ] else []);
    ]

let mean t =
  let finite = t.n - t.non_finite in
  if finite = 0 then Float.nan else t.sum /. float_of_int finite

let to_json t =
  let module J = Relax_obs.Json in
  J.Obj
    [
      ("count", J.Int t.n);
      ("mean", J.Float (mean t));
      ( "buckets",
        J.Obj (List.map (fun (l, c) -> (l, J.Int c)) (buckets t)) );
    ]

let pp ppf t =
  if t.n = 0 then Fmt.pf ppf "(empty)"
  else begin
    Fmt.pf ppf "n=%d mean=%.4f" t.n (mean t);
    List.iter
      (fun (l, c) -> if c > 0 then Fmt.pf ppf " [%s]=%d" l c)
      (buckets t)
  end
