(** Execution-cost upper bounds for relaxed configurations (§3.3.2).

    Each access sub-plan that used a replaced structure is re-costed against
    the relaxed configuration by re-running access-path selection only (a
    component of the optimizer, not a full optimization call), adding
    compensating lookups, filters, sorts or group-bys.  Substituting the
    patched sub-plan into the otherwise unchanged plan yields a valid plan
    under the relaxed configuration — hence a true upper bound.

    Removed views are bounded by [CBV]: the cost of computing the view from
    scratch under the base configuration plus a scan over its result. *)

module Index = Relax_physical.Index
module View = Relax_physical.View
module O = Relax_optimizer

(** Context describing one candidate relaxation [C -> C']. *)
type context = {
  env' : O.Env.t;  (** environment under the relaxed configuration *)
  old_env : O.Env.t;  (** environment under the current configuration *)
  removed_indexes : Index.t list;
  removed_views : View.t list;
  view_merge : (View.merge_result * View.t * View.t) option;
      (** set when the transformation merges two views *)
  cbv : View.t -> float;
      (** cost of computing a view under the base configuration *)
  expands : bool;
      (** does the relaxation introduce replacement structures
          ({!Transform.adds_structures})?  Governs which lower-bound
          derivation {!query_lower_bound} may use *)
}

val float_eq : ?eps:float -> float -> float -> bool
(** Tolerant equality for cost/size values: true when the two values agree
    within [eps] (default [1e-9]) relative to the larger magnitude, with an
    absolute floor of [eps] around zero.  Raw polymorphic comparison at
    type float in the costing layers is rejected by relax-lint rule L3;
    these helpers are the sanctioned replacements. *)

val float_leq : ?eps:float -> float -> float -> bool
(** [float_leq a b]: is [a <= b] up to the same tolerance?  ([a] may
    exceed [b] by accumulation noise without failing.) *)

val float_lt : ?eps:float -> float -> float -> bool
(** [float_lt a b]: is [a < b] by clearly more than the tolerance? *)

val affected : context -> O.Plan.access_info -> bool
val plan_affected : context -> O.Plan.t -> bool

val access_bound :
  ?consumed_order:(Relax_sql.Types.column * Relax_sql.Types.order_dir) list ->
  context ->
  O.Plan.access_info ->
  float
(** Upper bound on re-implementing one affected access under [C'], per
    execution.  [consumed_order] is the output order the enclosing plan
    consumes from this access without re-sorting (a merge join's input, a
    streaming aggregate's input, the query's ORDER BY): the replacement is
    required to deliver it too, or the patched plan would not be valid. *)

val removed_view_bound : context -> O.Plan.access_info -> View.t -> float
(** The CBV bound for an access whose view the relaxation removes: compute
    the view from scratch under the base configuration, scan and filter its
    result, and sort only the accessed cardinality when the request is
    ordered.  Exposed for the differential checker and regression tests. *)

val query_bound :
  ?order_by:(Relax_sql.Types.column * Relax_sql.Types.order_dir) list ->
  context ->
  O.Plan.t ->
  float
(** Upper bound on the whole query's cost under [C']: patch every affected
    access, keep the rest of the plan.  Each per-access delta is clamped at
    zero, so the result is never below [plan.cost] — a cheaper access path
    found under [C'] cannot drag the bound below the cost of a valid plan.
    [order_by] is the query's required output order; when an access (not a
    Sort operator) delivers it, its replacement must preserve it. *)

val patched_plan :
  ?order_by:(Relax_sql.Types.column * Relax_sql.Types.order_dir) list ->
  context ->
  O.Plan.t ->
  O.Plan.t option
(** Materialize the §3.3.2 patched plan: every affected access sub-plan is
    replaced by the best surviving access path under [C'] (consumed order
    folded into its request, execution count preserved) and every
    ancestor's cumulative cost absorbs the clamped per-access delta, so
    the result's top-level cost equals {!query_bound}.  The result is a
    valid plan under [C'] with real accesses, so later affected-tests and
    bounds computed from it stay meaningful — this is what the frugal tier
    stores in place of a re-optimization it did not pay for.  [None] when
    an affected access cannot be re-implemented as an access path (removed
    or merged views: their compensation is a from-scratch view
    computation, not a plan). *)

val query_lower_bound :
  ?order_by:(Relax_sql.Types.column * Relax_sql.Types.order_dir) list ->
  context ->
  O.Plan.t ->
  float
(** Lower bound on the query's re-optimized cost under [C'] — the other
    side of the frugal costing interval ([query_lower_bound] ≤ optimizer ≤
    {!query_bound}).  For pure removals ([expands = false]) this is the
    old plan's cost: removal shrinks the plan space, so the optimum cannot
    get cheaper.  With replacement structures ([expands = true]) the model
    makes no claim and the bound is 0 — any floor assembled from the old
    plan's operators can be beaten by a restructured plan (order deleting
    a Sort and flipping the join method at once); the advisory store
    ({!Relax_optimizer.Whatif.cost_interval}) raises the lower end from
    observed costs instead, which is sound by construction. *)
