(** Human-readable tuning reports: the recommendation, the space/cost
    frontier (the Figure 4 style by-product the paper highlights as useful
    DBA feedback), and request statistics. *)

module Config = Relax_physical.Config
module Size_model = Relax_physical.Size_model

let pp_summary ppf (r : Tuner.result) =
  Fmt.pf ppf "@[<v>";
  Fmt.pf ppf "initial configuration : %a, cost %.1f@," Size_model.pp_bytes
    r.initial_size r.initial_cost;
  Fmt.pf ppf "optimal configuration : %a, cost %.1f (%d structures)@,"
    Size_model.pp_bytes r.optimal_size r.optimal_cost
    (Config.cardinal r.optimal);
  Fmt.pf ppf "recommended           : %a, cost %.1f (%d structures)@,"
    Size_model.pp_bytes r.recommended_size r.recommended_cost
    (Config.cardinal r.recommended);
  Fmt.pf ppf "improvement           : %.1f%%@," r.improvement;
  Fmt.pf ppf "lower bound on cost   : %.1f@," r.lower_bound;
  Fmt.pf ppf "search                : %d iterations, %d optimizer calls, %d cache hits, %.2fs@,"
    r.iterations r.metrics.what_if_calls r.metrics.cache_hits r.elapsed_s;
  Fmt.pf ppf "@]"

(** The full metrics table ([--metrics]): what-if traffic, plan patching
    vs. re-optimization, shortcut aborts, per-kind transformation counts,
    pool sizes and span timings. *)
let pp_metrics ppf (r : Tuner.result) =
  Relax_obs.Metrics.pp ppf r.metrics

let pp_recommendation ppf (r : Tuner.result) =
  Fmt.pf ppf "%a" Config.pp r.recommended

(** The frontier of non-dominated (size, cost) points among explored
    configurations: what a DBA reads to decide whether more disk would pay
    off (Figure 4). *)
let pareto_frontier (points : (float * float) list) : (float * float) list =
  let sorted =
    List.sort
      (fun (s1, c1) (s2, c2) ->
        match Float.compare s1 s2 with 0 -> Float.compare c1 c2 | x -> x)
      points
  in
  let rec go best acc = function
    | [] -> List.rev acc
    | (s, c) :: rest ->
      if c < best then go c ((s, c) :: acc) rest else go best acc rest
  in
  go infinity [] sorted

let pp_frontier ppf (r : Tuner.result) =
  let f = pareto_frontier r.frontier in
  Fmt.pf ppf "@[<v>size -> cost frontier (%d explored, %d on frontier):@,"
    (List.length r.frontier) (List.length f);
  List.iter
    (fun (s, c) -> Fmt.pf ppf "  %a  %.1f@," Size_model.pp_bytes s c)
    f;
  Fmt.pf ppf "@]"

(** Machine-readable frontier ([--frontier-csv]): every explored
    configuration as [size_bytes,cost,pareto] where [pareto] flags
    membership in the non-dominated frontier. *)
let frontier_csv (r : Tuner.result) : string =
  let pareto = pareto_frontier r.frontier in
  let on_frontier s c =
    List.exists
      (fun (s', c') -> Cost_bound.float_eq s s' && Cost_bound.float_eq c c')
      pareto
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "size_bytes,cost,pareto\n";
  List.iter
    (fun (s, c) ->
      Buffer.add_string buf
        (Printf.sprintf "%.0f,%.6f,%b\n" s c (on_frontier s c)))
    r.frontier;
  Buffer.contents buf

let pp_request_stats ppf (r : Tuner.result) =
  Fmt.pf ppf "@[<v>query                #index reqs  #view reqs@,";
  List.iter
    (fun (s : Instrument.request_stats) ->
      Fmt.pf ppf "%-22s %10d  %10d@," s.qid s.index_requests s.view_requests)
    r.request_stats;
  let ti = List.fold_left (fun a (s : Instrument.request_stats) -> a + s.index_requests) 0 r.request_stats in
  let tv = List.fold_left (fun a (s : Instrument.request_stats) -> a + s.view_requests) 0 r.request_stats in
  Fmt.pf ppf "%-22s %10d  %10d@," "total" ti tv;
  Fmt.pf ppf "@]"

(** Per-query before/after deltas, flagging regressions: statements the
    recommendation makes slower (possible under space pressure and update
    maintenance; a DBA reviews these before deploying). *)
let pp_regressions ppf (r : Tuner.result) =
  Fmt.pf ppf "@[<v>query                before      after      change@,";
  List.iter
    (fun (qid, before, after) ->
      let change =
        if before <= 0.0 then 0.0
        else 100.0 *. (after -. before) /. before
      in
      Fmt.pf ppf "%-18s %9.1f %10.1f %+9.1f%%%s@," qid before after change
        (if after > before +. 1e-6 then "   << regression" else ""))
    r.per_query;
  Fmt.pf ppf "@]"

(** Statements the recommendation makes more expensive. *)
let regressions (r : Tuner.result) =
  List.filter (fun (_, before, after) -> after > before +. 1e-6) r.per_query
