(** The budgeted costing tier (what-if frugality).

    The relaxation search's expensive primitive is the what-if optimizer
    call.  This module decides candidate rankings from cheap cost
    {e intervals} instead — [ΔT ∈ [lo, hi]] with [lo] from
    {!Cost_bound.query_lower_bound} and [hi] from {!Cost_bound.query_bound}
    — and spends an explicit per-tune budget of optimizer calls only on
    candidates whose interval straddles the decision threshold, widest
    penalty gap first, re-sweeping as refinements land (the Wii-style
    dynamic budget reallocation: calls not needed for one decision remain
    available for every later one).

    The sweep never decides {e wrongly} relative to the bounds: a candidate
    is accepted or rejected without a call only when its whole interval
    lies on one side of the threshold.  When the budget runs out with
    straddling candidates left, their ranking falls back to the interval's
    upper end — exactly the value the non-frugal ranking uses, so a
    zero-budget sweep reproduces the non-frugal order. *)

module Obs = Relax_obs

type interval = { lo : float; hi : float }

let point x = { lo = x; hi = x }
let width i = i.hi -. i.lo
let is_point i = Cost_bound.float_leq i.hi i.lo

(* Intersect a checked model interval [a] with advisory information [b]
   (e.g. memoized costs of structure-comparable configurations).  When the
   two conflict — empty intersection, the advisory data contradicting the
   model — the checked interval wins unchanged. *)
let tighten_with a ~advisory:b =
  let lo = Float.max a.lo b.lo and hi = Float.min a.hi b.hi in
  if Cost_bound.float_leq lo hi then { lo; hi } else a

(** One candidate in a sweep: an opaque payload and its mutable ΔT
    interval.  [refined] marks candidates whose interval was collapsed by
    actual what-if calls (budget debited); the sweep never refines a
    candidate twice. *)
type 'a cand = {
  payload : 'a;
  mutable ival : interval;
  mutable refined : bool;
}

let cand payload ival = { payload; ival; refined = false }

(** The per-tune call ledger and its decision counters. *)
type t = {
  budget : int;  (** optimizer calls the frugal run may spend in total *)
  rank_floor : int;
      (** the ranking tier may only spend the budget down to this level;
          what it leaves is reserved for node evaluation and the endgame
          re-ranking pass, where an exact cost protects a potential
          best-configuration update *)
  mutable spent : int;
  mutable bound_accepts : int;
      (** picks decided purely from bound intervals, no call *)
  mutable bound_rejects : int;
      (** candidates ruled out purely from bound intervals, no call *)
}

let create ~budget =
  let budget = max 0 budget in
  {
    budget;
    (* the ranking tier gets at most a quarter of the budget: candidate
       order is already driven by the same upper bounds the non-frugal
       ranking uses, so refinement there is a second-order improvement,
       while evaluation exactness protects best-configuration updates *)
    rank_floor = budget - (budget / 4);
    spent = 0;
    bound_accepts = 0;
    bound_rejects = 0;
  }

let remaining t = max 0 (t.budget - t.spent)

(* Evaluation pays to collapse a ΔT interval only when its weighted width
   exceeds this fraction of the parent node's total cost.  Narrower
   intervals cannot meaningfully reorder later pool or candidate
   decisions — removal bounds track re-optimization within a fraction of
   a percent — so a call there is wasted even when the budget is idle. *)
let width_floor = 0.01

(* A node may spend budget only when its worst-case (all-bounds) total is
   within this factor of the incumbent best cost: anything further out
   cannot be mis-ranked into the recommendation by bound costing, so
   exactness there buys nothing.  Sized to the empirical drift of the
   loosest bounds (index merges, up to ~60% of a node's cost). *)
let contender_slack = 2.0

(* calls the ranking tier may still spend (its share above [rank_floor]) *)
let rank_remaining t = max 0 (remaining t - t.rank_floor)
let spent t = t.spent
let bound_accepts t = t.bound_accepts
let bound_rejects t = t.bound_rejects

let debit t n =
  if n > 0 then begin
    t.spent <- t.spent + n;
    Obs.Probe.count_n "whatif.budget_spent" n
  end

(* the decision threshold: the least certainly-achievable penalty *)
let threshold ~penalty cands =
  List.fold_left
    (fun acc c -> Float.min acc (penalty ~payload:c.payload ~dt:c.ival.hi))
    infinity cands

(** Resolve one node's candidate ranking.  [penalty] must be monotone
    non-decreasing in [dt] (every penalty formula in the search is: ΔT
    divided by a positive denominator, or ΔT plus a constant).  [tighten]
    may shrink a candidate's interval for free (advisory store lookups);
    [refine] collapses it with actual optimizer calls, debiting the ledger
    through {!debit} and stopping early when {!remaining} hits zero.

    On return every candidate is either decided from bounds (interval
    entirely on one side of the final threshold — counted in
    [bound_accepts]/[bound_rejects]), exactly refined, or left straddling
    because the budget ran dry (ranked by its interval's upper end, the
    non-frugal value). *)
let sweep t ~penalty ~tighten ~refine (cands : 'a cand list) : unit =
  let straddling thr =
    List.filter
      (fun c ->
        (not c.refined)
        && Cost_bound.float_lt (penalty ~payload:c.payload ~dt:c.ival.lo) thr
        && Cost_bound.float_lt thr (penalty ~payload:c.payload ~dt:c.ival.hi))
      cands
  in
  let widest = function
    | [] -> None
    | l ->
      (* widest penalty gap first: the candidate whose decision a call
         would move the most; ties resolve to list order (deterministic) *)
      let gap c =
        penalty ~payload:c.payload ~dt:c.ival.hi
        -. penalty ~payload:c.payload ~dt:c.ival.lo
      in
      Some (List.fold_left (fun acc c -> if gap c > gap acc then c else acc) (List.hd l) l)
  in
  let rec go () =
    let thr = threshold ~penalty cands in
    match widest (straddling thr) with
    | None -> ()
    | Some c ->
      let before = c.ival in
      tighten c;
      if width c.ival < width before then go () (* free progress: re-sweep *)
      else if rank_remaining t > 0 then begin
        refine c;
        c.refined <- true;
        go ()
      end
      (* ranking share dry: remaining straddlers rank by their upper ends *)
  in
  go ();
  (* count the decisions that never cost a call *)
  let thr = threshold ~penalty cands in
  List.iter
    (fun c ->
      if not c.refined then
        if Cost_bound.float_leq (penalty ~payload:c.payload ~dt:c.ival.hi) thr
        then begin
          t.bound_accepts <- t.bound_accepts + 1;
          Obs.Probe.count "whatif.bound_accepts"
        end
        else if
          Cost_bound.float_leq thr (penalty ~payload:c.payload ~dt:c.ival.lo)
        then begin
          t.bound_rejects <- t.bound_rejects + 1;
          Obs.Probe.count "whatif.bound_rejects"
        end)
    cands
