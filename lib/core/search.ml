(** The relaxation-based search (§3.2–§3.6, Figure 5).

    The search starts from the optimal configuration of §2 and repeatedly
    relaxes configurations from a pool.  The template's two open choices are
    instantiated with the paper's heuristics:

    - {e which transformation} (line 6): the one minimizing
      [penalty = ΔT / min(Space(C) − B, ΔS)], where ΔT is the §3.3.2 cost
      upper bound and ΔS the §3.3.1 size estimate; with updates in the
      workload, dominated transformations are first removed (skyline), and
      once a configuration already fits the budget the penalty degenerates
      to ΔT (§3.6).
    - {e which configuration} (line 5): keep relaxing the last one until it
      fits (with updates: or while relaxation keeps reducing its cost); then
      revisit the chain at the largest actual penalty; finally fall back to
      the cheapest configuration with untried transformations (§3.4).

    Only queries whose plans used a replaced structure are re-optimized when
    a configuration is evaluated; with shortcut evaluation, a partial sum
    already exceeding the best known cost aborts the evaluation (§3.5). *)

module Query = Relax_sql.Query
module Config = Relax_physical.Config
module Index = Relax_physical.Index
module View = Relax_physical.View
module O = Relax_optimizer
module Obs = Relax_obs
module Pool = Relax_parallel.Pool

(** A fixed-size bitset over workload slots — the flat replacement for the
    [unit String_map.t] pseudo-marker sets.  One byte per eight selects
    instead of a balanced tree of boxed strings: copying a node's marker
    set is a [Bytes.copy], membership is two shifts and a load. *)
module Bitset = struct
  type t = Bytes.t

  let create n = Bytes.make ((n + 7) lsr 3) '\000'
  let mem t i = Char.code (Bytes.get t (i lsr 3)) land (1 lsl (i land 7)) <> 0

  let add t i =
    Bytes.set t (i lsr 3)
      (Char.chr (Char.code (Bytes.get t (i lsr 3)) lor (1 lsl (i land 7))))

  let is_empty t =
    let n = Bytes.length t in
    let rec go i = i >= n || (Char.code (Bytes.get t i) = 0 && go (i + 1)) in
    go 0
end

let src = Logs.Src.create "relax.search" ~doc:"relaxation search"

module Log = (val Logs.src_log src : Logs.LOG)

(** How line 6 of Figure 5 picks among ranked candidates.  [Penalty] is the
    paper's heuristic (§3.4); the others exist for the ablation study. *)
type selection =
  | Penalty  (** minimize ΔT / min(Space − B, ΔS) *)
  | Cost_greedy  (** minimize ΔT only (ignores space pressure) *)
  | Space_greedy  (** maximize ΔS only (ignores cost) *)
  | Random of int  (** uniformly random applicable transformation (seeded) *)

(** Everything a differential checker needs to replay one iteration of the
    search against independent oracles (see [Relax_check]).  [it_applied]
    is the configuration right after applying [it_transform] to the parent
    — before the §3.5 multi-transformation extension and shrinking — so a
    checker can re-derive it and compare; [it_result] is the evaluated
    node's (configuration, cost, size) when the outcome is ["evaluated"]. *)
type iteration_report = {
  it_iteration : int;
  it_parent : Config.t;
  it_parent_cost : float;
  it_parent_size : float;
  it_transform : Transform.t;
  it_applied : Config.t option;
  it_predicted_delta_cost : float;  (** ΔT: the §3.3.2 upper bound *)
  it_predicted_delta_space : float;  (** ΔS: the §3.3.1 estimate *)
  it_penalty : float;
  it_outcome : string;
      (** [evaluated], [shortcut], [duplicate] or [inapplicable] *)
  it_result : (Config.t * float * float) option;
      (** (configuration, cost, size) of the evaluated node *)
}

type options = {
  space_budget : float;  (** B, in bytes *)
  max_iterations : int;
  time_budget_s : float option;
  protected : Config.t;  (** the base configuration: never transformed *)
  shortcut_evaluation : bool;  (** §3.5 *)
  max_candidates_per_node : int;
      (** cap on ranked transformations kept per configuration *)
  transforms_per_iteration : int;
      (** §3.5 variant: apply up to this many non-conflicting
          transformations before re-evaluating (1 = the paper's default) *)
  shrink_configurations : bool;
      (** §3.5 variant: drop structures unused by any query after each
          evaluation (may hurt quality: an unused structure can become
          useful after other structures are relaxed away) *)
  selection : selection;
  jobs : int;
      (** worker domains for parallel candidate scoring and plan
          re-optimization; 1 = fully sequential.  The result is identical
          whatever the value. *)
  whatif_budget : int option;
      (** [Some n]: frugal costing — candidate decisions come from ΔT bound
          intervals, at most [n] what-if optimizer calls are spent (across
          the whole run) refining straddling candidates, and node
          evaluation substitutes bound-costed plans for uncached
          re-optimizations.  [None] (the default): the frugal tier is
          entirely off and the search behaves exactly as before. *)
  warm_start : Config.t option;
      (** a previously deployed configuration to seed into the pool as a
          second parentless node: it is evaluated up front (cache-warm
          when [whatif] is reused across re-tunes), becomes the incumbent
          best if it fits the budget, and so arms shortcut pruning and the
          frugal contender gate from iteration zero.  The continuous
          tuner's incremental re-tune entry. *)
  whatif : O.Whatif.t option;
      (** an existing what-if interface to run against instead of a fresh
          one, sharing its plan cache and advisory bounds across runs.
          [outcome.optimizer_calls]/[cache_hits] still report this run's
          deltas. *)
  on_iteration : (iteration_report -> unit) option;
      (** invoked once per iteration, after evaluation and trace emission,
          from the main domain (never from workers).  Used by the
          differential invariant checker. *)
}

let default_options ~space_budget =
  {
    space_budget;
    max_iterations = 400;
    time_budget_s = None;
    protected = Config.empty;
    shortcut_evaluation = true;
    max_candidates_per_node = 256;
    transforms_per_iteration = 1;
    shrink_configurations = false;
    selection = Penalty;
    jobs = Pool.default_jobs ();
    whatif_budget = None;
    warm_start = None;
    whatif = None;
    on_iteration = None;
  }

(** A ranked candidate transformation of one configuration. *)
type candidate = {
  tr : Transform.t;
  penalty : float;
  delta_cost : float;  (** ΔT: upper-bound cost increase *)
  delta_cost_lo : float;
      (** ΔT lower bound; equals [delta_cost] outside frugal mode and for
          candidates the frugal sweep refined to an exact value *)
  delta_space : float;  (** ΔS: space saved *)
}

(** A configuration in the pool, with its evaluated plans and costs.
    Plans live in a slot-indexed array (one slot per workload select, see
    {!prepared}), not a string map: the evaluation and ranking loops walk
    every plan of every node each iteration, and the flat representation
    turns those walks into cache-friendly array scans with no per-step
    boxing — the point of the arena refactor. *)
type node = {
  id : int;
  config : Config.t;
  plans : O.Plan.t array;  (** per select-query plans, slot-indexed *)
  slots : (string, int) Hashtbl.t;
      (** shared qid → slot table (never mutated after [prepare]) *)
  select_cost : float;
  shell_cost : float;
  cost : float;
  size : float;
  parent : int option;
  via : Transform.t option;
  actual_penalty : float;
      (** realized (cost increase)/(space saved) when created *)
  pseudo : Bitset.t;
      (** frugal runs only: the select slots whose plan carries a
          bound-substituted (not re-optimized) cost; empty on exact runs *)
  mutable untried : candidate list;  (** sorted by increasing penalty *)
  mutable candidates_ready : bool;
  mutable pruned : bool;
}

type prepared = {
  selects : (string * float * Query.select_query) list;
      (** includes select components of updates *)
  selects_arr : (string * float * Query.select_query) array;
      (** [selects] as an array; the slot index of every per-node plan *)
  slots : (string, int) Hashtbl.t;  (** qid → slot *)
  dmls : (float * Query.dml) list;
  has_updates : bool;
}

let prepare (w : Query.workload) : prepared =
  let selects =
    List.filter_map
      (fun (e : Query.entry) ->
        match e.stmt with
        | Select q -> Some (e.qid, e.weight, q)
        | Dml d -> (
          match Query.split_update d with
          | Some q, _ -> Some (Query.select_qid e.qid, e.weight, q)
          | None, _ -> None))
      w
  in
  let dmls =
    List.filter_map
      (fun (e : Query.entry) ->
        match e.stmt with Dml d -> Some (e.weight, d) | Select _ -> None)
      w
  in
  let selects_arr = Array.of_list selects in
  let slots = Hashtbl.create (Array.length selects_arr) in
  Array.iteri (fun i (qid, _, _) -> Hashtbl.replace slots qid i) selects_arr;
  { selects; selects_arr; slots; dmls; has_updates = dmls <> [] }

let plan_of (n : node) ~qid =
  match Hashtbl.find_opt n.slots qid with
  | Some s -> Some n.plans.(s)
  | None -> None

let is_pseudo (n : node) ~qid =
  match Hashtbl.find_opt n.slots qid with
  | Some s -> Bitset.mem n.pseudo s
  | None -> false

type state = {
  catalog : Relax_catalog.Catalog.t;
  whatif : O.Whatif.t;
  prepared : prepared;
  opts : options;
  pool : Pool.t;  (** worker domains for scoring and re-optimization *)
  mutable nodes : node list;  (** the pool CP, newest first *)
  by_id : (int, node) Hashtbl.t;
  mutable next_id : int;
  mutable best : node option;  (** best configuration fitting the budget *)
  mutable iterations : int;
  mutable candidates_trace : int list;  (** per-iteration candidate counts *)
  seen : (string, unit) Hashtbl.t;  (** configuration fingerprints *)
  cbv_lock : Mutex.t;  (** guards [cbv_cache] (held across the optimize) *)
  cbv_cache : (string, float) Hashtbl.t;
  size_lock : Mutex.t;  (** guards [size_cache] *)
  size_cache : (string, float) Hashtbl.t;  (** per-structure size memo *)
  frugal : Frugal.t option;
      (** the what-if call ledger; [Some] iff [opts.whatif_budget] is *)
  rand : Random.State.t;  (** only consulted by the [Random] selection *)
  started : float;
}

(* structures referenced by any plan: what "shrinking" keeps *)
let used_structure_names (plans : O.Plan.t array) =
  let used = Hashtbl.create 32 in
  Array.iter
    (fun plan ->
      O.Plan.iter_accesses
        (fun (a : O.Plan.access_info) ->
          Hashtbl.replace used a.rel ();
          (match a.via_view with
          | Some v -> Hashtbl.replace used (View.name v) ()
          | None -> ());
          List.iter
            (fun (u : O.Plan.index_usage) ->
              Hashtbl.replace used (Index.name u.index) ())
            a.usages)
        plan)
    plans;
  used

(* Memoized size of one index under a configuration (the owner's row count
   pins the size; view row estimates are stored in the configuration).
   Sizes are computed outside the lock: a racing double-compute is
   harmless because the size is a deterministic function of the key. *)
let index_size st config (i : Relax_physical.Index.t) =
  let rows = Config.relation_rows st.catalog config (Index.owner i) in
  let key = Index.name i ^ "@" ^ string_of_float rows in
  match
    Mutex.protect st.size_lock (fun () -> Hashtbl.find_opt st.size_cache key)
  with
  | Some s -> s
  | None ->
    let s = Config.index_bytes st.catalog config i in
    Mutex.protect st.size_lock (fun () -> Hashtbl.replace st.size_cache key s);
    s

(* Heap bytes of unclustered base tables (cached once). *)
let heap_bytes st config =
  let module Cat = Relax_catalog.Catalog in
  let module SM = Relax_physical.Size_model in
  List.fold_left
    (fun acc name ->
      if Config.clustered_on config name <> None then acc
      else
        let key = "heap@" ^ name in
        let h =
          match
            Mutex.protect st.size_lock (fun () ->
                Hashtbl.find_opt st.size_cache key)
          with
          | Some h -> h
          | None ->
            let h =
              SM.heap_pages ~rows:(Cat.rows st.catalog name)
                ~row_width:(Cat.row_width st.catalog name) ()
              *. SM.default_params.page_size
            in
            Mutex.protect st.size_lock (fun () ->
                Hashtbl.replace st.size_cache key h);
            h
        in
        acc +. h)
    0.0
    (Cat.table_names st.catalog)

let config_size st config =
  List.fold_left
    (fun acc i -> acc +. index_size st config i)
    (heap_bytes st config) (Config.indexes config)

let shell_cost_of st config =
  if st.prepared.dmls = [] then 0.0
  else begin
    let env = O.Env.make st.catalog config in
    List.fold_left
      (fun acc (w, d) -> acc +. (w *. O.Update_cost.shell_cost env config d))
      0.0 st.prepared.dmls
  end

(* CBV: cost of computing a view from scratch under the base configuration.
   The lock is held across the optimize so concurrent callers never
   duplicate it (and never double-count its probes); misses are rare. *)
let cbv st (v : View.t) =
  let name = View.name v in
  Mutex.protect st.cbv_lock @@ fun () ->
  match Hashtbl.find_opt st.cbv_cache name with
  | Some c -> c
  | None ->
    let sq = { Query.body = View.definition v; order_by = [] } in
    let plan = O.Optimizer.optimize st.catalog st.opts.protected sq in
    Hashtbl.replace st.cbv_cache name plan.cost;
    plan.cost

let estimate_view_rows st (v : View.t) =
  let env = O.Env.make st.catalog st.opts.protected in
  O.Cardinality.spjg env (View.definition v)

(* ------------------------------------------------------------------ *)
(* node evaluation                                                     *)
(* ------------------------------------------------------------------ *)

let bound_context ?old_env st ~old_config ~new_config (tr : Transform.t) :
    Cost_bound.context =
  let view_merge =
    match tr with
    | Merge_views (a, b) -> (
      match View.merge a b with Some m -> Some (m, a, b) | None -> None)
    | _ -> None
  in
  {
    env' = O.Env.make st.catalog new_config;
    old_env =
      (match old_env with
      | Some e -> e
      | None -> O.Env.make st.catalog old_config);
    removed_indexes = Transform.removed_indexes old_config tr;
    removed_views = Transform.removed_views tr;
    view_merge;
    cbv = cbv st;
    expands = Transform.adds_structures tr;
  }

(* Fixed width of one parallel (re-)optimization batch.  Deliberately
   independent of [opts.jobs]: the §3.5 abort can only land on a batch
   boundary's sequential fold, so the set of what-if calls made — and with
   it every counter, cache state and trace event — is identical whatever
   the parallelism (the determinism guarantee).  It also bounds the work
   wasted past an abort to one batch. *)
let eval_batch = 16

(** Evaluate a fresh configuration obtained by relaxing [parent] with [tr]:
    re-optimize only the plans the relaxation affected; optionally abort as
    soon as the running total exceeds the best known cost (§3.5).  Plans
    are (re-)optimized in fixed-width batches on the worker domains, then
    folded sequentially in workload order, so the float accumulation and
    the abort point do not depend on [opts.jobs]. *)
let evaluate st ~(parent : node) ~(tr : Transform.t) (config : Config.t) :
    node option =
  (* the context's [Env.make] runs before any parallel work: it may
     register derived-view statistics in the shared catalog *)
  let ctx = bound_context st ~old_config:parent.config ~new_config:config tr in
  let best_cost =
    match st.best with Some b -> b.cost | None -> infinity
  in
  let shell = shell_cost_of st config in
  (* Frugal node gate: only a node that could become the incumbent best —
     it fits the space budget and a cheap lower bound on its total cost is
     below the best known cost — is allowed to spend budget on exact
     re-optimization.  Every other node is costed entirely from bounds,
     for free: its cost only feeds the pool trajectory, where a sound
     upper bound is good enough.  (With [shrink_configurations] the gate
     sees the pre-shrink size, so a node only the shrink makes fit may be
     bound-costed — a conservative miss, never a wrong best.) *)
  (* Frugal upfront analysis — sequential, on the main domain, so the
     spend schedule is identical at any [jobs].  One pass over the
     workload classifies every query and prices the uncertain ones:

     - unaffected, non-pseudo: the plan survives (free, exact);
     - warm cache: the exact plan is already known (free, exact);
     - tier 0: a pure removal whose patched plan costs no more than the
       surviving plan — the old cost is a sound lower bound (removal
       shrinks the plan space) and the patched plan achieves it, so the
       patched plan is optimal (free, exact);
     - the rest carry a genuine ΔT interval [lo, hi] with [hi] the
       §3.3.2 patched-plan cost.  The budget goes to the widest weighted
       intervals first — in practice the index-merge evaluations, whose
       upper bounds drift an order of magnitude while removal bounds
       track re-optimization within a percent — and only above a noise
       floor relative to the parent's cost: paying to collapse a narrow
       interval cannot move any later decision.

     The node gate: only a node that could become the incumbent best —
     it fits the space budget and the summed interval floor is below the
     best known cost — may spend at all.  Every other node is costed
     entirely from bounds: its cost only feeds the pool trajectory,
     where a sound upper bound is good enough.  (With
     [shrink_configurations] the gate sees the pre-shrink size, so a
     node only the shrink makes fit may be bound-costed — a conservative
     miss, never a wrong best.) *)
  let nsel = Array.length st.prepared.selects_arr in
  (* slot-indexed upfront classification; [None] = patch along *)
  let decisions = Array.make nsel None in
  (match st.frugal with
  | None -> ()
  | Some ledger ->
    let lo_total = ref shell and hi_total = ref shell in
    let widths = ref [] in
    Array.iteri
      (fun slot (qid, w, q) ->
        let old_plan = parent.plans.(slot) in
        let parent_pseudo = Bitset.mem parent.pseudo slot in
        let affected = Cost_bound.plan_affected ctx old_plan in
        let advisory_lo () =
          fst
            (O.Whatif.cost_interval st.whatif config ~qid
               ~tables:q.Query.body.tables)
        in
        if (not parent_pseudo) && not affected then begin
          lo_total := !lo_total +. (w *. old_plan.O.Plan.cost);
          hi_total := !hi_total +. (w *. old_plan.O.Plan.cost)
        end
        else begin
          let lo =
            if parent_pseudo then advisory_lo ()
            else
              Float.max (advisory_lo ())
                (Cost_bound.query_lower_bound ~order_by:q.Query.order_by ctx
                   old_plan)
          in
          lo_total := !lo_total +. (w *. lo);
          match
            O.Whatif.find_cached st.whatif config ~qid
              ~tables:q.Query.body.tables
          with
          | Some p ->
            hi_total := !hi_total +. (w *. p.O.Plan.cost);
            decisions.(slot) <- Some (`Cached p)
          | None -> (
            let patched =
              Cost_bound.patched_plan ~order_by:q.Query.order_by ctx old_plan
            in
            match patched with
            | Some p
              when (not parent_pseudo)
                   && (not ctx.Cost_bound.expands)
                   && Cost_bound.float_leq p.O.Plan.cost old_plan.O.Plan.cost
              ->
              hi_total := !hi_total +. (w *. p.O.Plan.cost);
              decisions.(slot) <- Some (`Point p)
            | _ ->
              let hi =
                match patched with
                | Some p -> p.O.Plan.cost
                | None -> (
                  (* unpatchable (removed or merged view): the universal
                     fallback is the base-configuration plan, pre-costed
                     by the anchoring pass *)
                  match
                    O.Whatif.find_cached st.whatif st.opts.protected ~qid
                      ~tables:q.Query.body.tables
                  with
                  | Some (b : O.Plan.t) -> b.cost
                  | None -> old_plan.O.Plan.cost)
              in
              hi_total := !hi_total +. (w *. hi);
              decisions.(slot) <- Some (`Bound patched);
              widths := (slot, w *. (hi -. lo)) :: !widths)
        end)
      st.prepared.selects_arr;
    (* contender test: worst-case total within [contender_slack] of the
       incumbent best.  A node whose upper bound is far above the best
       cannot be mis-ranked into the recommendation by its bound cost —
       exactness there buys nothing. *)
    let spend_ok =
      config_size st config <= st.opts.space_budget
      && Cost_bound.float_lt !lo_total best_cost
      && !hi_total < best_cost *. Frugal.contender_slack
    in
    if spend_ok then begin
      (* widest weighted interval first; ties resolve to workload order
         (the [widths] list is built in reverse workload order) *)
      let ranked =
        List.stable_sort
          (fun (_, a) (_, b) -> Float.compare b a)
          (List.rev !widths)
      in
      let floor = Frugal.width_floor *. parent.cost in
      let k = ref (Frugal.remaining ledger) in
      List.iter
        (fun (slot, width) ->
          if !k > 0 && Cost_bound.float_lt floor width then begin
            decr k;
            decisions.(slot) <- Some `Paid
          end)
        ranked
    end);
  (* unaffected plans survive as-is (the §3 re-optimization-avoidance rule) *)
  let exception Shortcut in
  try
    let total = ref shell in
    let plans = Array.copy parent.plans in
    let pseudo = Bitset.create nsel in
    let base = ref 0 in
    while !base < nsel do
      let len = Int.min eval_batch (nsel - !base) in
      (* Consume the upfront classification — still sequentially on
         the main domain; the ledger is debited per batch, so a
         shortcut abort returns the calls later batches never made
         back to the pool (dynamic reallocation). *)
      let work =
        Array.init len (fun k ->
            let slot = !base + k in
            let qid, w, q = st.prepared.selects_arr.(slot) in
            (slot, qid, w, q, parent.plans.(slot)))
      in
      for k = 0 to len - 1 do
        let slot = !base + k in
        (match st.frugal with
        | None -> ()
        | Some ledger -> (
          (* a pseudo plan is valid but suboptimal, so it is never
             silently patched along: every evaluation gives it a chance
             to improve — a warm cache entry, a budgeted
             re-optimization, or at least a re-patch against the
             current configuration *)
          match decisions.(slot) with
          | Some `Paid ->
            (* reserve exactly the one optimizer call the worker below
               will execute *)
            Frugal.debit ledger 1
          | _ -> ()))
      done;
      let scored =
        Pool.map_array st.pool
          (fun (slot, qid, w, q, old_plan) ->
            let decision =
              match st.frugal with
              | None ->
                if Cost_bound.plan_affected ctx old_plan then `Reoptimize
                else `Patch
              | Some _ -> (
                match decisions.(slot) with
                | None -> `Patch
                | Some (`Cached p) -> `Cached p
                | Some (`Point p) -> `Point p
                | Some `Paid -> `Reoptimize
                | Some (`Bound patched) -> `Bound patched)
            in
            match decision with
            | `Patch -> (slot, w, `Patched, old_plan)
            | `Cached p -> (slot, w, `Reoptimized, p)
            | `Point p -> (slot, w, `Point_exact, p)
            | `Reoptimize ->
              (slot, w, `Reoptimized,
               O.Whatif.plan_select st.whatif config ~qid q)
            | `Bound patched ->
              (* No call: the upfront pass materialized the §3.3.2
                 patched plan — a valid plan under [config] whose cost
                 is the model's upper bound.  Keep the cheaper of it
                 and the query's base-configuration plan (valid under
                 any configuration).  Either way the stored plan is
                 real, so affected-tests and bounds computed from it at
                 later relaxations stay sound; it is merely
                 suboptimal, which the [pseudo] marker records. *)
              let base =
                O.Whatif.find_cached st.whatif st.opts.protected ~qid
                  ~tables:q.Query.body.tables
              in
              let plan =
                match (patched, base) with
                | Some p, Some (b : O.Plan.t) ->
                  if b.cost < p.O.Plan.cost then b else p
                | Some p, None -> p
                | None, Some b -> b
                | None, None ->
                  (* unreachable in practice: the base-configuration
                     pass pre-optimized every select.  Degrade to the
                     surviving plan — sound only as long as nothing
                     relies on its accesses, hence last resort. *)
                  old_plan
              in
              (slot, w, `Bound_costed, plan))
          work
      in
      Array.iter
        (fun (slot, w, how, (plan : O.Plan.t)) ->
          (match how with
          | `Reoptimized -> Obs.Probe.plan_reoptimized ()
          | `Patched ->
            Obs.Probe.plan_patched ();
            (* a surviving plan inherits its pseudo status *)
            if Bitset.mem parent.pseudo slot then Bitset.add pseudo slot
          | `Point_exact ->
            (* an exact cost obtained without a call: the patched plan
               provably achieves the removal's lower bound *)
            Obs.Probe.plan_patched ();
            Obs.Probe.count "whatif.point_exact"
          | `Bound_costed ->
            Obs.Probe.plan_patched ();
            Obs.Probe.count "whatif.bound_costed";
            Bitset.add pseudo slot);
          total := !total +. (w *. plan.cost);
          if st.opts.shortcut_evaluation && !total > best_cost *. 3.0 then
            raise Shortcut;
          plans.(slot) <- plan)
        scored;
      base := !base + len
    done;
    let select_cost = !total -. shell in
    (* §3.5 shrinking variant: drop structures no surviving plan uses *)
    let config =
      if not st.opts.shrink_configurations then config
      else begin
        let used = used_structure_names plans in
        let keep_index i =
          Config.mem_index st.opts.protected i
          || Hashtbl.mem used (Index.name i)
          ||
          (* a clustered index is the storage of a used view *)
          (i.clustered && Hashtbl.mem used (Index.owner i))
        in
        let config =
          List.fold_left
            (fun cfg i -> if keep_index i then cfg else Config.remove_index cfg i)
            config (Config.indexes config)
        in
        List.fold_left
          (fun cfg v ->
            if
              Config.mem_view st.opts.protected v
              || Hashtbl.mem used (View.name v)
            then cfg
            else Config.remove_view cfg v)
          config (Config.views config)
      end
    in
    let size = config_size st config in
    let actual_penalty =
      let d_s = parent.size -. size in
      let d_t = !total -. parent.cost in
      if d_s > 0.0 then d_t /. d_s else d_t
    in
    let node =
      {
        id = st.next_id;
        config;
        plans;
        slots = st.prepared.slots;
        select_cost;
        shell_cost = shell;
        cost = !total;
        size;
        parent = Some parent.id;
        via = Some tr;
        actual_penalty;
        pseudo;
        untried = [];
        candidates_ready = false;
        pruned = false;
      }
    in
    st.next_id <- st.next_id + 1;
    Some node
  with Shortcut ->
    Obs.Probe.shortcut_abort ();
    None

(* ------------------------------------------------------------------ *)
(* candidate ranking (§3.4, §3.6)                                      *)
(* ------------------------------------------------------------------ *)

(* §3.6 skyline: drop transformations dominated by another with cost
   increase ≤ and space saving ≥ (strict in at least one).  One sweep over
   the candidates sorted by decreasing ΔS: [best] is the least ΔT among
   candidates with strictly larger ΔS (any of them dominates a candidate
   costing at least as much), [gmin] the least ΔT within the equal-ΔS
   group (it dominates only strictly costlier group members).  O(n log n)
   against the former pairwise scan, with the same survivors; the output
   keeps the input order. *)
let skyline_filter (raw : candidate list) : candidate list =
  match raw with
  | [] | [ _ ] -> raw
  | _ ->
    let arr = Array.of_list raw in
    let m = Array.length arr in
    let order = Array.init m Fun.id in
    Array.sort
      (fun i j -> Float.compare arr.(j).delta_space arr.(i).delta_space)
      order;
    let keep = Array.make m true in
    let best = ref infinity in
    let i = ref 0 in
    while !i < m do
      (* the group [!i, !j) of candidates with this ΔS *)
      let ds = arr.(order.(!i)).delta_space in
      let j = ref !i in
      let gmin = ref infinity in
      while !j < m && Cost_bound.float_eq arr.(order.(!j)).delta_space ds do
        gmin := Float.min !gmin arr.(order.(!j)).delta_cost;
        incr j
      done;
      for k = !i to !j - 1 do
        let dc = arr.(order.(k)).delta_cost in
        if dc >= !best || dc > !gmin then keep.(order.(k)) <- false
      done;
      best := Float.min !best !gmin;
      i := !j
    done;
    List.filteri (fun idx _ -> keep.(idx)) raw

let rank_candidates st (n : node) : candidate list =
  let transforms = Transform.enumerate ~protected:st.opts.protected n.config in
  List.iter
    (fun tr -> Obs.Probe.transform_generated ~kind:(Transform.kind tr))
    transforms;
  let old_env = O.Env.make st.catalog n.config in
  (* index which queries (by slot) use which structures, so each
     transformation only touches the plans it actually affects *)
  let usage : (string, (int * float) list) Hashtbl.t = Hashtbl.create 64 in
  let usage_seen : (string * int, unit) Hashtbl.t = Hashtbl.create 256 in
  let add_usage name slot w =
    if not (Hashtbl.mem usage_seen (name, slot)) then begin
      Hashtbl.add usage_seen (name, slot) ();
      let l = Option.value ~default:[] (Hashtbl.find_opt usage name) in
      Hashtbl.replace usage name ((slot, w) :: l)
    end
  in
  Array.iteri
    (fun slot (_, w, _) ->
      O.Plan.iter_accesses
        (fun (a : O.Plan.access_info) ->
          List.iter
            (fun (u : O.Plan.index_usage) ->
              add_usage (Index.name u.index) slot w)
            a.usages;
          if Config.find_view n.config a.rel <> None then add_usage a.rel slot w)
        n.plans.(slot))
    st.prepared.selects_arr;
  let affected_queries tr =
    let names =
      List.map Index.name (Transform.removed_indexes n.config tr)
      @ List.map View.name (Transform.removed_views tr)
    in
    (* slots sort in workload order, a total order: dedup is exact *)
    List.sort_uniq compare
      (List.concat_map
         (fun name -> Option.value ~default:[] (Hashtbl.find_opt usage name))
         names)
  in
  (* Phase 1, sequential: apply each transformation and build its costing
     context.  [Env.make] may register derived-view statistics in the
     shared catalog, so every environment the workers will read is created
     here, before the parallel phase. *)
  let applied =
    List.filter_map
      (fun tr ->
        match
          Transform.apply ~estimate_rows:(estimate_view_rows st) n.config tr
        with
        | None -> None
        | Some config' ->
          let affected = affected_queries tr in
          let ctx =
            if affected = [] then None
            else
              Some
                (bound_context ~old_env st ~old_config:n.config
                   ~new_config:config' tr)
          in
          (match ctx with
          | None when st.prepared.dmls <> [] ->
            (* the parallel shell costing below needs this environment *)
            ignore (O.Env.make st.catalog config')
          | _ -> ());
          Some (tr, config', affected, ctx))
      transforms
  in
  let order_by_of slot =
    let _, _, (sq : Query.select_query) = st.prepared.selects_arr.(slot) in
    sq.order_by
  in
  let frugal_on = st.frugal <> None in
  (* Phase 2, parallel: score each applied transformation — incremental
     size (only the structures that changed are re-measured; heaps are
     cheap cached lookups), §3.3.2 cost upper bound (and, in frugal mode,
     the matching lower bound), update-shell delta.  Everything here reads
     shared state through locks ([size_cache], [cbv_cache], the catalog
     memos pre-filled in phase 1). *)
  let score (tr, config', affected, ctx) =
    let removed =
      Index.Set.diff (Config.index_set n.config) (Config.index_set config')
    in
    let added =
      Index.Set.diff (Config.index_set config') (Config.index_set n.config)
    in
    let size' =
      n.size -. heap_bytes st n.config +. heap_bytes st config'
      -. Index.Set.fold (fun i a -> a +. index_size st n.config i) removed 0.0
      +. Index.Set.fold (fun i a -> a +. index_size st config' i) added 0.0
    in
    let delta_space = n.size -. size' in
    let delta_selects, delta_selects_lo =
      match ctx with
      | None -> (0.0, 0.0)
      | Some ctx ->
        List.fold_left
          (fun ((hi, lo) as acc) (slot, w) ->
            let plan = n.plans.(slot) in
            if Cost_bound.plan_affected ctx plan then begin
              let order_by = order_by_of slot in
              let hi =
                hi
                +. (w
                   *. (Cost_bound.query_bound ~order_by ctx plan
                      -. plan.O.Plan.cost))
              in
              let lo =
                if frugal_on then
                  lo
                  +. (w
                     *. (Cost_bound.query_lower_bound ~order_by ctx plan
                        -. plan.O.Plan.cost))
                else hi
              in
              (hi, lo)
            end
            else acc)
          (0.0, 0.0) affected
    in
    let delta_shell =
      if st.prepared.dmls = [] then 0.0
      else shell_cost_of st config' -. n.shell_cost
    in
    let delta_cost = delta_selects +. delta_shell in
    let delta_cost_lo =
      if frugal_on then delta_selects_lo +. delta_shell else delta_cost
    in
    if delta_space <= 0.0 && delta_cost >= 0.0 then None
    else
      Some
        ( { tr; penalty = 0.0; delta_cost; delta_cost_lo; delta_space },
          (config', affected, ctx, delta_shell) )
  in
  let raw = List.filter_map Fun.id (Pool.map st.pool score applied) in
  (* skyline filtering for update workloads: drop dominated transformations
     (§3.6: a transformation with lower cost increase AND larger space
     saving dominates) *)
  let raw =
    if not st.prepared.has_updates then raw
    else begin
      let kept = skyline_filter (List.map fst raw) in
      List.filter (fun (c, _) -> List.memq c kept) raw
    end
  in
  let over_budget = n.size -. st.opts.space_budget in
  let penalty_of ~delta_space dt =
    if over_budget <= 0.0 then
      (* already fits: only meaningful with updates, ranked by ΔT *)
      dt
    else begin
      let denom = Float.min over_budget delta_space in
      if denom > 0.0 then dt /. denom
      else
        (* non-shrinking while over budget: rank below every shrinking
           candidate, whatever its ΔT *)
        1e12 +. dt
    end
  in
  let with_penalty =
    List.map
      (fun (c, aux) ->
        ({ c with penalty = penalty_of ~delta_space:c.delta_space c.delta_cost },
         aux))
      raw
  in
  let sorted =
    List.sort
      (fun (a, _) (b, _) -> Float.compare a.penalty b.penalty)
      with_penalty
  in
  let capped =
    List.filteri (fun i _ -> i < st.opts.max_candidates_per_node) sorted
  in
  match st.frugal with
  | None -> List.map fst capped
  | Some ledger ->
    (* The frugal tier.  Decide the ranking from ΔT intervals
       [delta_cost_lo, delta_cost]; spend budgeted what-if calls only on
       candidates straddling the decision threshold, widest penalty gap
       first (see {!Frugal.sweep}).  Runs sequentially on the main domain,
       so the call sequence — and with it every counter and cache state —
       is identical whatever [opts.jobs]. *)
    let tables_of slot =
      let _, _, (sq : Query.select_query) = st.prepared.selects_arr.(slot) in
      sq.body.tables
    in
    let fcands =
      List.map
        (fun ((c, _) as payload) ->
          Frugal.cand payload { Frugal.lo = c.delta_cost_lo; hi = c.delta_cost })
        capped
    in
    let penalty ~payload ~dt =
      let (c : candidate), _ = payload in
      penalty_of ~delta_space:c.delta_space dt
    in
    (* Free tightening: raise the interval's lower end with the advisory
       floor the what-if layer derives from structure-comparable
       configurations it already optimized (floors sharpen as budgeted
       calls land anywhere).  The upper end deliberately stays the model
       bound: evaluation stores exactly the model's patched plan for
       un-budgeted queries, so an advisory-lowered upper end could drop
       below the realized cost and break the realized-≤-predicted
       invariant the differential checker enforces. *)
    let tighten (fc : _ Frugal.cand) =
      let _, (config', affected, ctx, delta_shell) = fc.Frugal.payload in
      match ctx with
      | None -> ()
      | Some ctx ->
        let lo = ref delta_shell in
        List.iter
          (fun (slot, w) ->
            let plan = n.plans.(slot) in
            if Cost_bound.plan_affected ctx plan then begin
              let qid, _, _ = st.prepared.selects_arr.(slot) in
              let alo, _ =
                O.Whatif.cost_interval st.whatif config' ~qid
                  ~tables:(tables_of slot)
              in
              lo := !lo +. (w *. (alo -. plan.O.Plan.cost))
            end)
          affected;
        fc.Frugal.ival <-
          Frugal.tighten_with fc.Frugal.ival
            ~advisory:{ Frugal.lo = !lo; hi = infinity }
    in
    (* refinement: re-optimize the affected queries for real, debiting the
       ledger per optimizer call actually executed (cache hits are free);
       queries the budget could not cover keep their model bounds, leaving
       a mixed — but still valid — interval *)
    let refine (fc : _ Frugal.cand) =
      let _, (config', affected, ctx, delta_shell) = fc.Frugal.payload in
      match ctx with
      | None -> ()
      | Some ctx ->
        let lo = ref delta_shell and hi = ref delta_shell in
        List.iter
          (fun (slot, w) ->
            let plan = n.plans.(slot) in
            if Cost_bound.plan_affected ctx plan then begin
              let qid, _, sq = st.prepared.selects_arr.(slot) in
              if Frugal.rank_remaining ledger > 0 then begin
                let calls_before = fst (O.Whatif.stats st.whatif) in
                let plan' = O.Whatif.plan_select st.whatif config' ~qid sq in
                Frugal.debit ledger
                  (fst (O.Whatif.stats st.whatif) - calls_before);
                let d = w *. (plan'.O.Plan.cost -. plan.O.Plan.cost) in
                lo := !lo +. d;
                hi := !hi +. d
              end
              else begin
                let order_by = order_by_of slot in
                lo :=
                  !lo
                  +. (w
                     *. (Cost_bound.query_lower_bound ~order_by ctx plan
                        -. plan.O.Plan.cost));
                hi :=
                  !hi
                  +. (w
                     *. (Cost_bound.query_bound ~order_by ctx plan
                        -. plan.O.Plan.cost))
              end
            end)
          affected;
        fc.Frugal.ival <-
          Frugal.tighten_with
            { Frugal.lo = !lo; hi = !hi }
            ~advisory:fc.Frugal.ival
    in
    Frugal.sweep ledger ~penalty ~tighten ~refine fcands;
    let updated =
      List.map
        (fun (fc : _ Frugal.cand) ->
          let c, _ = fc.Frugal.payload in
          let dt = fc.Frugal.ival.Frugal.hi in
          {
            c with
            delta_cost = dt;
            delta_cost_lo = fc.Frugal.ival.Frugal.lo;
            penalty = penalty_of ~delta_space:c.delta_space dt;
          })
        fcands
    in
    List.stable_sort (fun a b -> Float.compare a.penalty b.penalty) updated

let ensure_candidates st n =
  if not n.candidates_ready then begin
    n.untried <- Obs.Probe.span "search.rank_candidates" (fun () -> rank_candidates st n);
    n.candidates_ready <- true
  end

(* ------------------------------------------------------------------ *)
(* configuration choice (§3.4 / §3.6)                                  *)
(* ------------------------------------------------------------------ *)

let has_untried st n =
  ensure_candidates st n;
  (not n.pruned) && n.untried <> []

(* count without forcing lazy candidate computation *)
let untried_ready_count st =
  List.fold_left
    (fun acc n ->
      if n.candidates_ready && not n.pruned then acc + List.length n.untried
      else acc)
    0 st.nodes

let find_node st id = Hashtbl.find st.by_id id

(* chain of ancestors from [n] (inclusive) to the root *)
let chain st n =
  let rec go acc n =
    match n.parent with
    | None -> List.rev (n :: acc)
    | Some p -> go (n :: acc) (find_node st p)
  in
  go [] n

let parent_cost st n =
  match n.parent with None -> infinity | Some p -> (find_node st p).cost

let pick_configuration st ~(last : node) : node option =
  let b = st.opts.space_budget in
  (* Heuristic 1: keep relaxing the last configuration while it is over
     budget (or, with updates, while the relaxation reduced its cost). *)
  let continue_last =
    last.size > b
    || (st.prepared.has_updates && last.cost < parent_cost st last)
  in
  if continue_last && has_untried st last then Some last
  else begin
    (* Heuristic 2: along the chain of the best fitting configuration, pick
       the node whose relaxation realized the largest penalty. *)
    let from_chain =
      match st.best with
      | None -> None
      | Some best ->
        let ch = chain st best in
        let edges =
          List.filter_map
            (fun n ->
              match n.parent with
              | Some p ->
                let parent = find_node st p in
                if has_untried st parent then Some (n.actual_penalty, parent)
                else None
              | None -> None)
            ch
        in
        (match List.sort (fun (a, _) (b', _) -> Float.compare b' a) edges with
        | (_, parent) :: _ -> Some parent
        | [] -> None)
    in
    match from_chain with
    | Some n -> Some n
    | None ->
      (* Heuristic 3: the cheapest configuration with work left (checked in
         cost order so candidate ranking is only forced until a hit). *)
      let sorted =
        List.sort (fun a b -> Float.compare a.cost b.cost) st.nodes
      in
      List.find_opt (has_untried st) sorted
  end

(* Pop one candidate from the node's untried list, per the selection
   strategy (§3.4 default: minimum penalty = head of the sorted list). *)
let pick_candidate st (c : node) : candidate option =
  match c.untried with
  | [] -> None
  | l ->
    let minimize f =
      List.fold_left (fun acc x -> if f x < f acc then x else acc) (List.hd l) l
    in
    let chosen =
      match st.opts.selection with
      | Penalty -> List.hd l
      | Cost_greedy -> minimize (fun x -> x.delta_cost)
      | Space_greedy -> minimize (fun x -> -.x.delta_space)
      | Random _ -> List.nth l (Random.State.int st.rand (List.length l))
    in
    c.untried <- List.filter (fun x -> x != chosen) l;
    Some chosen

(* §3.5 variant: greedily pile further candidates of the same node onto a
   partially-relaxed configuration.  Conflicting transformations (ones whose
   structures are already gone) simply fail to apply and are skipped. *)
let extend_with_transforms st (c : node) config k =
  let applied = ref [] in
  let config = ref config in
  let rec go remaining k =
    match (remaining, k) with
    | [], _ | _, 0 -> ()
    | cand :: rest, k -> (
      match
        Transform.apply ~estimate_rows:(estimate_view_rows st) !config cand.tr
      with
      | Some cfg' ->
        config := cfg';
        applied := cand :: !applied;
        go rest (k - 1)
      | None -> go rest k)
  in
  go c.untried k;
  c.untried <- List.filter (fun x -> not (List.memq x !applied)) c.untried;
  !config

(* ------------------------------------------------------------------ *)
(* the main loop (Figure 5)                                            *)
(* ------------------------------------------------------------------ *)

type outcome = {
  initial : node;  (** the optimal configuration's node *)
  best : node option;  (** best configuration within the budget *)
  explored : (float * float * float) list;
      (** (size, select+shell cost, actual penalty) of every evaluated node *)
  best_trace : (int * float) list;
      (** (iteration, cost) each time a new best valid configuration was
          found: the tuner's anytime behaviour *)
  iterations : int;
  candidates_per_iteration : int list;
  optimizer_calls : int;
  cache_hits : int;
  whatif : O.Whatif.t;
      (** the search's what-if interface, cache warm with every plan the
          run optimized — reusing it to re-cost the recommended
          configuration avoids a second round of optimizer calls *)
}

(* One JSONL event per search iteration: the chosen transformation, its
   predicted ΔT/ΔS and penalty, the realized cost/size after evaluation and
   the bound-drift ratio (§3.3.2 upper bound vs. actual re-optimized cost;
   a drift ≥ 1 means the bound held). *)
let emit_iteration (st : state) ~(parent : node) ~(cand : candidate) ~status
    ~(node : node option) =
  Obs.Probe.emit (fun () ->
      let open Obs.Json in
      let predicted_cost = parent.cost +. cand.delta_cost in
      let predicted_size = parent.size -. cand.delta_space in
      let realized =
        match node with
        | None -> [ ("node", Null); ("actual_cost", Null); ("actual_size", Null); ("bound_drift", Null) ]
        | Some n ->
          [ ("node", Int n.id);
            ("actual_cost", Float n.cost);
            ("actual_size", Float n.size);
            ("bound_drift", Float (if n.cost > 0.0 then predicted_cost /. n.cost else 1.0));
          ]
      in
      Obj
        ([ ("event", String "iteration");
           ("iteration", Int st.iterations);
           ("parent", Int parent.id);
           ("transform", String (Fmt.str "%a" Transform.pp cand.tr));
           ("kind", String (Transform.kind cand.tr));
           ("penalty", Float cand.penalty);
           ("delta_cost", Float cand.delta_cost);
           ("delta_space", Float cand.delta_space);
           ("predicted_cost", Float predicted_cost);
           ("predicted_size", Float predicted_size);
           ("outcome", String status);
         ]
        @ realized
        @ [ ("pool", Int (List.length st.nodes));
            ("best_cost",
             match st.best with Some b -> Float b.cost | None -> Null);
          ]))

(** Run the relaxation search from an initial (optimal) configuration.
    When [obs] is given it is installed as the ambient recorder for the
    duration of the search, so every probe in the optimizer stack below
    reports into it. *)
let run ?obs catalog ~(workload : Query.workload) ~(initial : Config.t)
    (opts : options) : outcome =
  (match obs with
  | Some r -> Obs.Recorder.with_ambient r
  | None -> fun f -> f ())
  @@ fun () ->
  let whatif =
    match opts.whatif with Some w -> w | None -> O.Whatif.create catalog
  in
  (* a reused interface arrives with history; report this run's deltas *)
  let calls0, hits0 = O.Whatif.stats whatif in
  let prepared = prepare workload in
  let pool = Pool.create ~jobs:opts.jobs in
  Fun.protect
    ~finally:(fun () ->
      let pst = Pool.stats pool in
      Obs.Probe.count_n "pool.jobs" pst.Pool.pool_jobs;
      Obs.Probe.count_n "pool.tasks" pst.Pool.tasks;
      Obs.Probe.count_n "pool.batches" pst.Pool.batches;
      Array.iteri
        (fun i busy ->
          Obs.Probe.count_n
            (Printf.sprintf "pool.domain%d.busy_ms" i)
            (int_of_float (busy *. 1000.0)))
        pst.Pool.busy_s;
      Pool.shutdown pool)
  @@ fun () ->
  let st =
    {
      catalog;
      whatif;
      prepared;
      opts;
      pool;
      nodes = [];
      by_id = Hashtbl.create 64;
      next_id = 0;
      best = None;
      iterations = 0;
      candidates_trace = [];
      seen = Hashtbl.create 64;
      cbv_lock = Mutex.create ();
      cbv_cache = Hashtbl.create 16;
      size_lock = Mutex.create ();
      size_cache = Hashtbl.create 256;
      frugal = Option.map (fun budget -> Frugal.create ~budget) opts.whatif_budget;
      rand =
        Random.State.make
          [| (match opts.selection with Random seed -> seed | _ -> 0) |];
      started = Obs.Clock.now ();
    }
  in
  (* register the derived-view statistics of the two configurations the
     workers will cost before any parallel region ([Env.make] mutates the
     shared catalog memo on first sight of a view) *)
  ignore (O.Env.make catalog opts.protected);
  ignore (O.Env.make catalog initial);
  (* Frugal runs pre-optimize every select under the protected base
     configuration.  The base configuration is a subset of every
     configuration the search visits, so its plans are valid — and their
     costs sound upper bounds — everywhere: they are the universal
     fallback when the budget cannot pay for a re-optimization and the
     patched plan drifts loose.  The same cache entries serve the tuner's
     base-configuration report, so the pass costs the run nothing net. *)
  let nsel = Array.length prepared.selects_arr in
  (match opts.whatif_budget with
  | None -> ()
  | Some _ ->
    ignore
      (Pool.map_array pool
         (fun (qid, _, q) -> O.Whatif.plan_select whatif opts.protected ~qid q)
         prepared.selects_arr));
  (* evaluate a configuration from scratch, in batches on the worker
     domains, folding costs sequentially in workload order (used for the
     root and for the warm-start seed) *)
  let eval_scratch config =
    let total = ref 0.0 in
    let batches = ref [] in
    let base = ref 0 in
    while !base < nsel do
      let len = Int.min eval_batch (nsel - !base) in
      let scored =
        Pool.map_array pool
          (fun (qid, _, q) -> O.Whatif.plan_select whatif config ~qid q)
          (Array.sub prepared.selects_arr !base len)
      in
      Array.iteri
        (fun k (plan : O.Plan.t) ->
          let _, w, _ = prepared.selects_arr.(!base + k) in
          total := !total +. (w *. plan.cost))
        scored;
      batches := scored :: !batches;
      base := !base + len
    done;
    (Array.concat (List.rev !batches), !total)
  in
  let shell = shell_cost_of st initial in
  let plans, select_cost = eval_scratch initial in
  let root =
    {
      id = 0;
      config = initial;
      plans;
      slots = prepared.slots;
      select_cost;
      shell_cost = shell;
      cost = select_cost +. shell;
      size = config_size st initial;
      parent = None;
      via = None;
      actual_penalty = 0.0;
      pseudo = Bitset.create nsel;
      untried = [];
      candidates_ready = false;
      pruned = false;
    }
  in
  st.next_id <- 1;
  st.nodes <- [ root ];
  Hashtbl.replace st.by_id root.id root;
  Hashtbl.replace st.seen (Config.fingerprint initial) ();
  let best_trace = ref [] in
  if root.size <= opts.space_budget then begin
    st.best <- Some root;
    best_trace := [ (0, root.cost) ]
  end;
  (* Warm start: seed the previously deployed configuration as a second
     parentless pool node.  On an incremental re-tune its plans are
     already in the (shared) cache, so the evaluation is nearly free, and
     installing it as the incumbent best means shortcut evaluation and the
     frugal contender gate prune against a realistic cost from iteration
     zero — the mechanism behind warm re-tunes spending fewer optimizer
     calls than cold ones. *)
  (match opts.warm_start with
  | None -> ()
  | Some cfg when Hashtbl.mem st.seen (Config.fingerprint cfg) -> ()
  | Some cfg ->
    ignore (O.Env.make catalog cfg);
    let shell = shell_cost_of st cfg in
    let plans, select_cost = eval_scratch cfg in
    let warm =
      {
        id = st.next_id;
        config = cfg;
        plans;
        slots = prepared.slots;
        select_cost;
        shell_cost = shell;
        cost = select_cost +. shell;
        size = config_size st cfg;
        parent = None;
        via = None;
        actual_penalty = 0.0;
        pseudo = Bitset.create nsel;
        untried = [];
        candidates_ready = false;
        pruned = false;
      }
    in
    st.next_id <- st.next_id + 1;
    st.nodes <- warm :: st.nodes;
    Hashtbl.replace st.by_id warm.id warm;
    Hashtbl.replace st.seen (Config.fingerprint cfg) ();
    if warm.size <= opts.space_budget then begin
      let better =
        match st.best with None -> true | Some b -> warm.cost < b.cost
      in
      if better then begin
        st.best <- Some warm;
        best_trace := (0, warm.cost) :: !best_trace
      end
    end);
  let time_ok () =
    match opts.time_budget_s with
    | None -> true
    | Some s -> Obs.Clock.elapsed_s ~since:st.started < s
  in
  let last = ref root in
  (try
     while st.iterations < opts.max_iterations && time_ok () do
       match pick_configuration st ~last:!last with
       | None -> raise Exit
       | Some c ->
         Obs.Probe.span "search.iteration" @@ fun () ->
         (
         ensure_candidates st c;
         st.candidates_trace <- untried_ready_count st :: st.candidates_trace;
         match pick_candidate st c with
         | None -> () (* will be skipped next pick *)
         | Some cand ->
           st.iterations <- st.iterations + 1;
           Obs.Probe.iteration ();
           let applied =
             Transform.apply ~estimate_rows:(estimate_view_rows st) c.config
               cand.tr
           in
           let status, produced =
             match applied with
             | None -> ("inapplicable", None)
             | Some config' -> (
               (* §3.5 variant: pile up to k−1 further non-conflicting
                  transformations before evaluating *)
               let config' =
                 if opts.transforms_per_iteration <= 1 then config'
                 else extend_with_transforms st c config'
                        (opts.transforms_per_iteration - 1)
               in
               Obs.Probe.transform_applied ~kind:(Transform.kind cand.tr);
               let fp = Config.fingerprint config' in
               if Hashtbl.mem st.seen fp then ("duplicate", None)
               else begin
                 Hashtbl.replace st.seen fp ();
                 match
                   Obs.Probe.span "search.evaluate" (fun () ->
                       evaluate st ~parent:c ~tr:cand.tr config')
                 with
                 | None -> ("shortcut", None) (* shortcut-pruned *)
                 | Some node ->
                   Obs.Probe.config_evaluated ();
                   st.nodes <- node :: st.nodes;
                   Hashtbl.replace st.by_id node.id node;
                   last := node;
                   let fits = node.size <= opts.space_budget in
                   let better =
                     match st.best with
                     | None -> fits
                     | Some b -> fits && node.cost < b.cost
                   in
                   if better then begin
                     st.best <- Some node;
                     best_trace := (st.iterations, node.cost) :: !best_trace
                   end;
                   ("evaluated", Some node)
               end)
           in
           Obs.Probe.pool_size (List.length st.nodes);
           emit_iteration st ~parent:c ~cand ~status ~node:produced;
           match st.opts.on_iteration with
           | None -> ()
           | Some check ->
             check
               {
                 it_iteration = st.iterations;
                 it_parent = c.config;
                 it_parent_cost = c.cost;
                 it_parent_size = c.size;
                 it_transform = cand.tr;
                 it_applied = applied;
                 it_predicted_delta_cost = cand.delta_cost;
                 it_predicted_delta_space = cand.delta_space;
                 it_penalty = cand.penalty;
                 it_outcome = status;
                 it_result =
                   Option.map (fun n -> (n.config, n.cost, n.size)) produced;
               })
     done
   with Exit -> ());
  (* Endgame re-ranking (frugal only).  The loop compared configurations
     by bound-substituted costs, so among close contenders the best node
     may be mis-identified.  Re-cost the cheapest valid configurations
     honestly — pseudo plans only, through the warm cache, cheapest
     first, whole nodes only — spending what is left of the budget, then
     re-pick the best.  Sequential on the main domain, so the spend
     sequence (and hence the recommendation) is identical at any
     [jobs]. *)
  (match st.frugal with
  | None -> ()
  | Some ledger ->
    let by_cost a b =
      match Float.compare a.cost b.cost with
      | 0 -> Int.compare a.id b.id
      | c -> c
    in
    let contenders =
      List.sort by_cost
        (List.filter (fun n -> n.size <= opts.space_budget) st.nodes)
    in
    let recost (n : node) : node =
      if Bitset.is_empty n.pseudo then n
      else begin
        let cached = ref [] in
        Array.iteri
          (fun slot (qid, w, q) ->
            if Bitset.mem n.pseudo slot then
              cached :=
                ( slot,
                  qid,
                  w,
                  q,
                  O.Whatif.find_cached st.whatif n.config ~qid
                    ~tables:q.Query.body.tables )
                :: !cached)
          st.prepared.selects_arr;
        let cached = List.rev !cached in
        (* cached plans are free; commit only when the ledger covers
           every miss — partial honesty would spend calls without making
           the node's cost comparable to fully honest ones *)
        let misses =
          List.length
            (List.filter (fun (_, _, _, _, p) -> Option.is_none p) cached)
        in
        if misses > Frugal.remaining ledger then n
        else begin
          Frugal.debit ledger misses;
          Obs.Probe.count_n "whatif.endgame_spent" misses;
          let plans = Array.copy n.plans and delta = ref 0.0 in
          List.iter
            (fun (slot, qid, w, q, cp) ->
              let p =
                match cp with
                | Some p -> p
                | None -> O.Whatif.plan_select st.whatif n.config ~qid q
              in
              let old = n.plans.(slot) in
              delta := !delta +. (w *. (p.O.Plan.cost -. old.O.Plan.cost));
              plans.(slot) <- p)
            cached;
          {
            n with
            plans;
            select_cost = n.select_cost +. !delta;
            cost = n.cost +. !delta;
            pseudo = Bitset.create (Array.length st.prepared.selects_arr);
          }
        end
      end
    in
    let replaced = Hashtbl.create 16 in
    List.iter
      (fun n ->
        let n' = recost n in
        if n' != n then Hashtbl.replace replaced n.id n')
      contenders;
    if Hashtbl.length replaced > 0 then begin
      st.nodes <-
        List.map
          (fun n ->
            match Hashtbl.find_opt replaced n.id with
            | Some n' ->
              Hashtbl.replace st.by_id n.id n';
              n'
            | None -> n)
          st.nodes;
      let best =
        match
          List.sort by_cost
            (List.filter (fun n -> n.size <= opts.space_budget) st.nodes)
        with
        | [] -> None
        | n :: _ -> Some n
      in
      match best with
      | None -> ()
      | Some n ->
        let changed =
          match st.best with
          | None -> true
          | Some b -> b.id <> n.id || not (Cost_bound.float_eq b.cost n.cost)
        in
        st.best <- Some n;
        if changed then best_trace := (st.iterations, n.cost) :: !best_trace
    end);
  let calls, hits = O.Whatif.stats whatif in
  let calls = calls - calls0 and hits = hits - hits0 in
  {
    initial = root;
    best = st.best;
    explored =
      List.rev_map (fun n -> (n.size, n.cost, n.actual_penalty)) st.nodes;
    best_trace = List.rev !best_trace;
    iterations = st.iterations;
    candidates_per_iteration = List.rev st.candidates_trace;
    optimizer_calls = calls;
    cache_hits = hits;
    whatif;
  }
