(** Relaxation transformations (§3.1): replace one or two physical
    structures of a configuration by smaller, generally less efficient
    ones. *)

module Index = Relax_physical.Index
module View = Relax_physical.View
module Config = Relax_physical.Config

type t =
  | Merge_indexes of Index.t * Index.t  (** asymmetric: first stays seekable *)
  | Split_indexes of Index.t * Index.t
  | Prefix_index of Index.t * Index.t  (** original, replacement prefix *)
  | Promote_clustered of Index.t
  | Remove_index of Index.t
  | Merge_views of View.t * View.t
  | Remove_view of View.t

val pp : Format.formatter -> t -> unit

val id : t -> string
(** Stable identity for bookkeeping. *)

val kind : t -> string
(** The constructor name in snake case ([merge_indexes], [remove_view],
    ...): the per-kind key used by metrics and trace events. *)

val adds_structures : t -> bool
(** Does the transformation introduce replacement structures (merged,
    split, prefixed or promoted indexes, a merged view)?  [false] exactly
    for pure removals ([Remove_index], [Remove_view]): those shrink the
    plan space, so the old plan's cost is a sound lower bound on the
    re-optimized cost (see {!Cost_bound.query_lower_bound}). *)

val removed_indexes : Config.t -> t -> Index.t list
(** Indexes leaving the configuration (for view transformations: every
    index over the removed views). *)

val removed_views : t -> View.t list

val apply : estimate_rows:(View.t -> float) -> Config.t -> t -> Config.t option
(** Apply to a configuration; [None] when no longer applicable (stale
    structures).  View merging promotes the inputs' indexes onto the merged
    view through the column remapping and keeps exactly one clustered index
    per view; [estimate_rows] supplies the merged view's cardinality
    (§3.3.1 reuses the optimizer's cardinality module). *)

val enumerate : ?protected:Config.t -> Config.t -> t list
(** Every applicable transformation; structures in [protected] (the base
    configuration) are never transformed. *)
