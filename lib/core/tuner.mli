(** The public tuning API: instrument, then relax — the whole paper in one
    call. *)

module Query = Relax_sql.Query
module Config = Relax_physical.Config
module Catalog = Relax_catalog.Catalog

type mode = Indexes_only | Indexes_and_views

type options = {
  mode : mode;
  space_budget : float;  (** bytes; [infinity] = unconstrained (§4.1) *)
  base_config : Config.t;
      (** constraint-enforcing structures present in every configuration *)
  max_iterations : int;
  time_budget_s : float option;
  transforms_per_iteration : int;  (** §3.5 variant; paper default 1 *)
  shrink_configurations : bool;  (** §3.5 variant; default off *)
  selection : Search.selection;  (** {!Search.Penalty} is the paper's *)
  jobs : int;
      (** worker domains for the parallel search; 1 = sequential.  The
          recommendation, costs, frontier and trace event counts are
          identical whatever the value. *)
  whatif_budget : int option;
      (** frugal costing (see {!Search.options.whatif_budget}): cap on the
          what-if optimizer calls the relaxation ranking may spend;
          [None] = unlimited (frugal tier off).  With a finite budget
          [result.recommended_cost] is re-derived from exact per-query
          what-if costs after the search. *)
  initial_config : Config.t option;
      (** warm start: a previously deployed configuration seeded into the
          search pool as an incumbent (see {!Search.options.warm_start}).
          The continuous tuner's incremental re-tune entry; [None] = tune
          from scratch. *)
  whatif : Relax_optimizer.Whatif.t option;
      (** an existing what-if interface to tune through, keeping its plan
          cache and advisory bounds warm across re-tunes; [None] = a
          fresh one per call. *)
  on_iteration : (Search.iteration_report -> unit) option;
      (** per-iteration hook threaded to {!Search.run}; used by the
          differential invariant checker ([Relax_check]) *)
}

val default_options : ?mode:mode -> space_budget:float -> unit -> options
(** [jobs] defaults to {!Relax_parallel.Pool.default_jobs} ([RELAX_JOBS]
    or the machine's domain count, capped at 8). *)

type result = {
  workload : Query.workload;
  initial_cost : float;  (** under the base configuration *)
  initial_size : float;
  optimal : Config.t;
  optimal_cost : float;
  optimal_size : float;
  recommended : Config.t;
  recommended_cost : float;
  recommended_size : float;
  improvement : float;  (** §4's metric, percent *)
  lower_bound : float;
      (** cost no configuration can beat (tight iff no updates, §3.6) *)
  frontier : (float * float) list;
      (** (size, cost) of every explored configuration (Figure 4) *)
  candidates_per_iteration : int list;  (** Figure 6 *)
  request_stats : Instrument.request_stats list;  (** Table 1 *)
  per_query : (string * float * float) list;
      (** per statement: (id, cost under base, cost under recommendation) *)
  best_trace : (int * float) list;
      (** (iteration, best valid cost): the anytime behaviour of the search *)
  iterations : int;
  metrics : Relax_obs.Metrics.snapshot;
      (** structured counters and span timings for the whole run: what-if
          calls, cache hits, plans patched vs. re-optimized, shortcut
          aborts, transformations generated/applied per kind, pool sizes *)
  elapsed_s : float;
}

val improvement : initial:float -> recommended:float -> float
(** [100 (1 − recommended/initial)]. *)

val workload_cost : Catalog.t -> Config.t -> Query.workload -> float

val tune :
  ?obs:Relax_obs.Recorder.t -> Catalog.t -> Query.workload -> options -> result
(** Derive the optimal configuration by intercepting optimizer requests
    (§2), then relax until the budget is met or iterations/time run out
    (§3).  When nothing fits the budget, the recommendation falls back to
    the base configuration.

    The run records into [obs] when given, else into the ambient
    {!Relax_obs.Recorder.t} if one is installed (e.g. by a benchmark
    harness), else into a fresh private recorder; [result.metrics] is the
    recorder's final snapshot either way.  Attach a {!Relax_obs.Trace.sink}
    to the recorder to capture the per-iteration JSONL trace. *)
