(** The relaxation-based search (§3.2–§3.6, Figure 5).

    Starts from the optimal configuration of §2 and repeatedly relaxes
    configurations from a pool.  Line 6 of the template picks the
    transformation minimizing [penalty = ΔT / min(Space(C) − B, ΔS)] (with
    skyline filtering and the ΔT-only denominator once under budget for
    update workloads, §3.6); line 5 keeps relaxing the last configuration
    until it fits, then revisits the chain at the largest realized penalty,
    then falls back to the cheapest configuration with work left (§3.4).
    Only queries whose plans used a replaced structure are re-optimized;
    shortcut evaluation aborts hopeless configurations early (§3.5). *)

module Query = Relax_sql.Query
module Config = Relax_physical.Config
module O = Relax_optimizer

(** Fixed-size bitset over workload slots (see {!prepared}): the flat
    representation of per-node pseudo-plan markers. *)
module Bitset : sig
  type t

  val create : int -> t
  val mem : t -> int -> bool
  val add : t -> int -> unit
  val is_empty : t -> bool
end

(** How line 6 picks among ranked candidates; [Penalty] is the paper's
    heuristic, the others exist for the ablation study. *)
type selection =
  | Penalty
  | Cost_greedy  (** minimize ΔT only *)
  | Space_greedy  (** maximize ΔS only *)
  | Random of int  (** uniformly random, seeded *)

(** Everything a differential checker needs to replay one iteration of the
    search against independent oracles (see [Relax_check]).  [it_applied]
    is the configuration right after applying [it_transform] to the parent
    — before the §3.5 multi-transformation extension and shrinking — so a
    checker can re-derive and compare it; [it_result] is the evaluated
    node's (configuration, cost, size) when the outcome is
    ["evaluated"]. *)
type iteration_report = {
  it_iteration : int;
  it_parent : Config.t;
  it_parent_cost : float;
  it_parent_size : float;
  it_transform : Transform.t;
  it_applied : Config.t option;
  it_predicted_delta_cost : float;  (** ΔT: the §3.3.2 upper bound *)
  it_predicted_delta_space : float;  (** ΔS: the §3.3.1 estimate *)
  it_penalty : float;
  it_outcome : string;
      (** [evaluated], [shortcut], [duplicate] or [inapplicable] *)
  it_result : (Config.t * float * float) option;
      (** (configuration, cost, size) of the evaluated node *)
}

type options = {
  space_budget : float;  (** B, bytes *)
  max_iterations : int;
  time_budget_s : float option;
  protected : Config.t;  (** base configuration: never transformed *)
  shortcut_evaluation : bool;  (** §3.5 *)
  max_candidates_per_node : int;
  transforms_per_iteration : int;  (** §3.5 variant; paper default 1 *)
  shrink_configurations : bool;  (** §3.5 variant; default off *)
  selection : selection;
  jobs : int;
      (** worker domains for parallel candidate scoring and plan
          re-optimization; 1 = fully sequential.  The recommended
          configuration, costs, frontier and trace event counts are
          identical whatever the value. *)
  whatif_budget : int option;
      (** [Some n]: frugal costing (see {!Frugal}) — candidate decisions
          come from ΔT bound intervals, at most [n] what-if optimizer
          calls are spent refining straddling candidates across the whole
          run, and node evaluation substitutes §3.3.2 bound costs for
          re-optimizations the budget did not cover.  [None] (default):
          the frugal tier is entirely off and the search behaves exactly
          as without it.  The frugal sweep runs sequentially on the main
          domain, so results stay deterministic at any [jobs]. *)
  warm_start : Config.t option;
      (** a previously deployed configuration seeded into the pool as a
          second parentless node: evaluated up front (cache-warm when
          [whatif] is reused), installed as the incumbent best if it fits,
          arming shortcut pruning and the frugal contender gate from
          iteration zero.  The continuous tuner's incremental re-tune
          entry.  [None] (default): off. *)
  whatif : O.Whatif.t option;
      (** an existing what-if interface to run against instead of a fresh
          one, sharing its plan cache and advisory bound store across
          runs; [outcome.optimizer_calls]/[cache_hits] still report this
          run's deltas.  [None] (default): a private interface. *)
  on_iteration : (iteration_report -> unit) option;
      (** invoked once per iteration, after evaluation and trace emission,
          from the main domain (never from workers).  Used by the
          differential invariant checker. *)
}

val default_options : space_budget:float -> options
(** [jobs] defaults to {!Relax_parallel.Pool.default_jobs} ([RELAX_JOBS]
    or the machine's domain count, capped at 8); [on_iteration] to
    [None]. *)

type candidate = {
  tr : Transform.t;
  penalty : float;
  delta_cost : float;  (** ΔT: upper-bound cost increase *)
  delta_cost_lo : float;
      (** ΔT lower bound; equals [delta_cost] outside frugal mode and for
          candidates the frugal sweep refined to an exact value *)
  delta_space : float;  (** ΔS: space saved *)
}

(** A configuration in the pool, with its evaluated plans and costs.
    Plans are held in a slot-indexed array (one slot per workload select,
    in {!prepared.selects_arr} order) — the flat representation the
    scoring loops scan; use {!plan_of} / {!is_pseudo} for qid-keyed
    access. *)
type node = {
  id : int;
  config : Config.t;
  plans : O.Plan.t array;  (** slot-indexed *)
  slots : (string, int) Hashtbl.t;
      (** shared qid → slot table; never mutated after {!prepare} *)
  select_cost : float;
  shell_cost : float;
  cost : float;
  size : float;
  parent : int option;
  via : Transform.t option;
  actual_penalty : float;
  pseudo : Bitset.t;
      (** frugal runs only: the select slots whose plan carries a
          bound-substituted (not re-optimized) cost; empty on exact runs *)
  mutable untried : candidate list;
  mutable candidates_ready : bool;
  mutable pruned : bool;
}

(** Workload split into optimizable selects (including update select
    components) and update shells.  [selects_arr] is [selects] as an
    array; its indices are the plan slots of every {!node}. *)
type prepared = {
  selects : (string * float * Query.select_query) list;
  selects_arr : (string * float * Query.select_query) array;
  slots : (string, int) Hashtbl.t;  (** qid → slot *)
  dmls : (float * Query.dml) list;
  has_updates : bool;
}

val prepare : Query.workload -> prepared

val plan_of : node -> qid:string -> O.Plan.t option
(** The node's evaluated plan for a select qid (O(1) slot lookup). *)

val is_pseudo : node -> qid:string -> bool
(** Is the qid's plan bound-substituted on this node (frugal runs)? *)

val skyline_filter : candidate list -> candidate list
(** §3.6 dominance filter: drop candidates dominated by another with
    [delta_cost] ≤ and [delta_space] ≥ (strict in at least one), keeping
    the input order.  A sort-and-sweep, O(n log n).  Exposed for tests. *)

type outcome = {
  initial : node;  (** the optimal configuration's node *)
  best : node option;  (** best configuration within the budget *)
  explored : (float * float * float) list;
      (** (size, cost, realized penalty) of every evaluated node *)
  best_trace : (int * float) list;
      (** (iteration, cost) each time a new best valid configuration was
          found: the tuner's anytime behaviour *)
  iterations : int;
  candidates_per_iteration : int list;  (** Figure 6 series *)
  optimizer_calls : int;  (** this run's calls (deltas under a shared
                              what-if interface) *)
  cache_hits : int;
  whatif : O.Whatif.t;
      (** the search's what-if interface, cache warm with every plan the
          run optimized; callers can re-cost configurations explored by
          the search (e.g. the recommended one) without paying fresh
          optimizer calls *)
}

val run :
  ?obs:Relax_obs.Recorder.t ->
  Relax_catalog.Catalog.t ->
  workload:Query.workload ->
  initial:Config.t ->
  options ->
  outcome
(** Run the relaxation search from an initial (optimal) configuration.
    When [obs] is given it is installed as the ambient
    {!Relax_obs.Recorder.t} for the duration of the search: spans and
    counters accumulate into its metrics and one JSONL event is emitted
    per iteration (plus one per actual what-if optimizer call) into its
    trace sink. *)
