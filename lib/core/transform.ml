(** Relaxation transformations (§3.1).

    A transformation replaces one or two physical structures of a
    configuration by smaller, generally less efficient ones.  Indexes
    support merging, splitting, prefixing, promotion to clustered and
    removal; views support merging (with promotion of their indexes onto
    the merged view) and removal. *)

open Relax_sql.Types
module Index = Relax_physical.Index
module View = Relax_physical.View
module Config = Relax_physical.Config

type t =
  | Merge_indexes of Index.t * Index.t
  | Split_indexes of Index.t * Index.t
  | Prefix_index of Index.t * Index.t  (** original, replacement prefix *)
  | Promote_clustered of Index.t
  | Remove_index of Index.t
  | Merge_views of View.t * View.t
  | Remove_view of View.t

let pp ppf = function
  | Merge_indexes (a, b) -> Fmt.pf ppf "merge(%a, %a)" Index.pp a Index.pp b
  | Split_indexes (a, b) -> Fmt.pf ppf "split(%a, %a)" Index.pp a Index.pp b
  | Prefix_index (a, p) -> Fmt.pf ppf "prefix(%a -> %a)" Index.pp a Index.pp p
  | Promote_clustered i -> Fmt.pf ppf "promote(%a)" Index.pp i
  | Remove_index i -> Fmt.pf ppf "remove(%a)" Index.pp i
  | Merge_views (a, b) -> Fmt.pf ppf "vmerge(%s, %s)" (View.name a) (View.name b)
  | Remove_view v -> Fmt.pf ppf "vremove(%s)" (View.name v)

(** Stable identity, for bookkeeping of already-tried transformations. *)
let id t = Fmt.str "%a" pp t

(** Stable per-constructor label (metric and trace keys). *)
let kind = function
  | Merge_indexes _ -> "merge_indexes"
  | Split_indexes _ -> "split_indexes"
  | Prefix_index _ -> "prefix_index"
  | Promote_clustered _ -> "promote_clustered"
  | Remove_index _ -> "remove_index"
  | Merge_views _ -> "merge_views"
  | Remove_view _ -> "remove_view"

(** The index structures a transformation removes from the configuration. *)
let adds_structures = function
  | Remove_index _ | Remove_view _ -> false
  | Merge_indexes _ | Split_indexes _ | Prefix_index _ | Promote_clustered _
  | Merge_views _ -> true

let removed_indexes config = function
  | Merge_indexes (a, b) | Split_indexes (a, b) -> [ a; b ]
  | Prefix_index (a, _) -> [ a ]
  | Promote_clustered i -> [ i ]
  | Remove_index i -> [ i ]
  | Merge_views (a, b) ->
    Config.indexes_on config (View.name a) @ Config.indexes_on config (View.name b)
  | Remove_view v -> Config.indexes_on config (View.name v)

(** The views a transformation removes. *)
let removed_views = function
  | Merge_views (a, b) -> [ a; b ]
  | Remove_view v -> [ v ]
  | Merge_indexes _ | Split_indexes _ | Prefix_index _ | Promote_clustered _
  | Remove_index _ -> []

(* Promote an index from a pre-merge view onto the merged view: keys map
   column-wise (the key sequence is cut at the first unmappable column);
   suffix columns that cannot be mapped are dropped. *)
let promote_index_onto_merged ~(remap : column -> column option) (i : Index.t) :
    Index.t option =
  let rec map_keys acc = function
    | [] -> List.rev acc
    | k :: rest -> (
      match remap k with
      | Some k' -> map_keys (k' :: acc) rest
      | None -> List.rev acc)
  in
  let keys = map_keys [] i.keys in
  match keys with
  | [] -> None
  | keys ->
    let suffix =
      Column_set.fold
        (fun c acc ->
          match remap c with Some c' -> Column_set.add c' acc | None -> acc)
        i.suffix Column_set.empty
    in
    Some (Index.make ~clustered:i.clustered ~keys ~suffix ())

(** Apply a transformation.  [estimate_rows] supplies the cardinality
    estimate for a freshly merged view (§3.3.1 uses the optimizer's
    cardinality module for this).  Returns [None] when the transformation
    no longer applies to [config]. *)
let apply ~(estimate_rows : View.t -> float) (config : Config.t) (t : t) :
    Config.t option =
  match t with
  | Remove_index i ->
    if Config.mem_index config i then Some (Config.remove_index config i)
    else None
  | Remove_view v ->
    if Config.mem_view config v then Some (Config.remove_view config v)
    else None
  | Prefix_index (i, p) ->
    if Config.mem_index config i then
      Some (Config.add_index (Config.remove_index config i) p)
    else None
  | Promote_clustered i ->
    if
      Config.mem_index config i && (not i.clustered)
      && Config.clustered_on config (Index.owner i) = None
    then
      Some (Config.add_index (Config.remove_index config i) (Index.promote i))
    else None
  | Merge_indexes (a, b) ->
    if Config.mem_index config a && Config.mem_index config b then begin
      let m = Index.merge a b in
      let config = Config.remove_index (Config.remove_index config a) b in
      (* keep the configuration's single-clustered-per-relation invariant *)
      let m =
        if m.clustered && Config.clustered_on config (Index.owner m) <> None
        then Index.demote m
        else m
      in
      Some (Config.add_index config m)
    end
    else None
  | Split_indexes (a, b) ->
    if Config.mem_index config a && Config.mem_index config b then
      match Index.split a b with
      | None -> None
      | Some (ic, ir1, ir2) ->
        let config = Config.remove_index (Config.remove_index config a) b in
        let config = Config.add_index config ic in
        let config =
          List.fold_left
            (fun acc -> function Some i -> Config.add_index acc i | None -> acc)
            config [ ir1; ir2 ]
        in
        Some config
    else None
  | Merge_views (a, b) ->
    if Config.mem_view config a && Config.mem_view config b then
      match View.merge a b with
      | None -> None
      | Some { merged; remap1; remap2 } ->
        if Config.mem_view config merged then None
        else begin
          let ia = Config.indexes_on config (View.name a) in
          let ib = Config.indexes_on config (View.name b) in
          let config = Config.remove_view (Config.remove_view config a) b in
          let rows = estimate_rows merged in
          let config = Config.add_view config merged ~rows in
          let promoted =
            List.filter_map (promote_index_onto_merged ~remap:remap1) ia
            @ List.filter_map (promote_index_onto_merged ~remap:remap2) ib
          in
          (* exactly one clustered index on the merged view *)
          let config, has_clustered =
            List.fold_left
              (fun (cfg, seen) (i : Index.t) ->
                let i = if i.clustered && seen then Index.demote i else i in
                (Config.add_index cfg i, seen || i.clustered))
              (config, false) promoted
          in
          let config =
            if has_clustered then config
            else begin
              match View.outputs merged with
              | [] -> config
              | (_, first) :: _ ->
                Config.add_index config
                  (Index.make ~clustered:true
                     ~keys:[ View.column_of_item merged first ]
                     ~suffix:Column_set.empty ())
            end
          in
          Some config
        end
    else None

(* ------------------------------------------------------------------ *)
(* enumeration                                                         *)
(* ------------------------------------------------------------------ *)

(** All transformations applicable to [config].  Structures present in
    [protected] (the base configuration of constraint-enforcing indexes)
    are never transformed. *)
let enumerate ?(protected = Config.empty) (config : Config.t) : t list =
  let indexes =
    List.filter
      (fun i -> not (Config.mem_index protected i))
      (Config.indexes config)
  in
  let views =
    List.filter
      (fun v -> not (Config.mem_view protected v))
      (Config.views config)
  in
  let by_owner = Hashtbl.create 16 in
  List.iter
    (fun i ->
      let o = Index.owner i in
      Hashtbl.replace by_owner o (i :: (Option.value ~default:[] (Hashtbl.find_opt by_owner o))))
    indexes;
  let acc = ref [] in
  let push t = acc := t :: !acc in
  (* removals *)
  List.iter (fun i -> push (Remove_index i)) indexes;
  List.iter (fun v -> push (Remove_view v)) views;
  (* prefixing *)
  List.iter
    (fun i -> List.iter (fun p -> push (Prefix_index (i, p))) (Index.prefixes i))
    indexes;
  (* promotion to clustered *)
  List.iter
    (fun (i : Index.t) ->
      if (not i.clustered) && Config.clustered_on config (Index.owner i) = None
      then push (Promote_clustered i))
    indexes;
  (* same-relation merges and splits; owners are walked in sorted order —
     Hashtbl iteration order must never leak into transform enumeration
     (candidate tie-breaks preserve generation order) *)
  List.iter
    (fun owner ->
      let group =
        Option.value ~default:[] (Hashtbl.find_opt by_owner owner)
      in
      List.iter
        (fun a ->
          List.iter
            (fun b ->
              if Index.compare a b < 0 then begin
                push (Merge_indexes (a, b));
                push (Merge_indexes (b, a));
                if Index.split a b <> None then push (Split_indexes (a, b))
              end)
            group)
        group)
    (List.sort_uniq String.compare (List.map Index.owner indexes));
  (* view merges: same FROM set *)
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if
            View.compare a b < 0
            && (View.definition a).tables = (View.definition b).tables
          then push (Merge_views (a, b)))
        views)
    views;
  !acc
