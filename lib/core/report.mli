(** Human-readable tuning reports, including the space/cost frontier the
    paper highlights as DBA decision support (Figure 4). *)

val pp_summary : Format.formatter -> Tuner.result -> unit
val pp_recommendation : Format.formatter -> Tuner.result -> unit

val pp_metrics : Format.formatter -> Tuner.result -> unit
(** The full metrics table ([--metrics]): what-if traffic, plan patching
    vs. re-optimization, shortcut aborts, per-kind transformation counts,
    pool sizes and span timings. *)

val pareto_frontier : (float * float) list -> (float * float) list
(** Non-dominated (size, cost) points, sorted by size. *)

val pp_frontier : Format.formatter -> Tuner.result -> unit

val frontier_csv : Tuner.result -> string
(** Machine-readable frontier ([--frontier-csv]): header
    [size_bytes,cost,pareto], one line per explored configuration. *)

val pp_request_stats : Format.formatter -> Tuner.result -> unit

val pp_regressions : Format.formatter -> Tuner.result -> unit
(** Per-query before/after deltas, flagging statements the recommendation
    makes slower. *)

val regressions : Tuner.result -> (string * float * float) list
(** The regressed statements: (id, before, after). *)
