(** The budgeted costing tier (what-if frugality).

    Candidate rankings are decided from cheap ΔT intervals
    ([{!Cost_bound.query_lower_bound}, {!Cost_bound.query_bound}]); an
    explicit per-tune budget of what-if optimizer calls is spent only on
    candidates whose interval straddles the decision threshold, widest
    penalty gap first, re-sweeping as refinements land.  Calls not needed
    for one decision remain available for every later one (dynamic budget
    reallocation).  With the budget dry, straddling candidates rank by the
    interval's upper end — the exact value the non-frugal ranking uses. *)

type interval = { lo : float; hi : float }

val point : float -> interval
val width : interval -> float

val is_point : interval -> bool
(** Degenerate up to the {!Cost_bound.float_leq} tolerance. *)

val tighten_with : interval -> advisory:interval -> interval
(** Intersect a checked model interval with advisory information (e.g.
    {!Relax_optimizer.Whatif.cost_interval}); on conflict the checked
    interval wins unchanged. *)

(** One candidate in a sweep: an opaque payload and its mutable ΔT
    interval.  [refined] marks candidates already collapsed by actual
    what-if calls; the sweep never refines a candidate twice. *)
type 'a cand = {
  payload : 'a;
  mutable ival : interval;
  mutable refined : bool;
}

val cand : 'a -> interval -> 'a cand

(** The per-tune call ledger and its decision counters.  [debit] also
    feeds the [whatif.budget_spent] metrics counter; bound decisions feed
    [whatif.bound_accepts] / [whatif.bound_rejects]. *)
type t

val create : budget:int -> t
val remaining : t -> int

val width_floor : float
(** Node evaluation pays to collapse a query's ΔT interval only when its
    weighted width exceeds this fraction of the parent node's cost;
    narrower intervals cannot meaningfully reorder later decisions. *)

val contender_slack : float
(** A node may spend budget only when its worst-case (all-bounds) total
    cost is within this factor of the incumbent best; nodes further out
    cannot be mis-ranked into the recommendation by bound costing. *)

val rank_remaining : t -> int
(** Calls the ranking tier may still spend.  The ranking tier only gets a
    quarter of the budget; the rest is reserved for node evaluation and
    the endgame re-ranking pass, where an exact cost protects a potential
    best-configuration update.  (Calls the ranking tier leaves unspent
    stay available to evaluation — the reservation is
    one-directional.) *)

val spent : t -> int
val bound_accepts : t -> int
val bound_rejects : t -> int
val debit : t -> int -> unit

val sweep :
  t ->
  penalty:(payload:'a -> dt:float -> float) ->
  tighten:('a cand -> unit) ->
  refine:('a cand -> unit) ->
  'a cand list ->
  unit
(** Resolve one node's candidate ranking.  [penalty] must be monotone
    non-decreasing in [dt].  [tighten] may shrink an interval for free;
    [refine] collapses one with optimizer calls, debiting the ledger and
    stopping early when {!remaining} hits zero.  On return every candidate
    is decided from bounds, exactly refined, or left straddling because the
    budget ran dry. *)
