(** The public tuning API: instrument, then relax (the whole paper in one
    call).

    [tune] derives the optimal configuration by intercepting optimizer
    requests (§2), then runs the relaxation-based search (§3) until the
    space budget is met, the iteration cap is reached or time runs out.
    The result carries everything the evaluation section measures:
    improvement over the initial configuration, the optimal (unconstrained)
    configuration and its cost bound, the explored space/cost frontier
    (Figure 4), candidate-count traces (Figure 6) and request statistics
    (Table 1). *)

module Query = Relax_sql.Query
module Config = Relax_physical.Config
module Catalog = Relax_catalog.Catalog
module O = Relax_optimizer

type mode = Indexes_only | Indexes_and_views

type options = {
  mode : mode;
  space_budget : float;  (** bytes; [infinity] = unconstrained (§4.1) *)
  base_config : Config.t;
      (** constraint-enforcing structures present in every configuration *)
  max_iterations : int;
  time_budget_s : float option;
  transforms_per_iteration : int;  (** §3.5 variant; the paper default is 1 *)
  shrink_configurations : bool;  (** §3.5 variant; default off *)
  selection : Search.selection;
      (** transformation-choice strategy; {!Search.Penalty} is the paper's *)
  jobs : int;
      (** worker domains for the parallel search; 1 = sequential.  The
          recommendation is identical whatever the value. *)
  whatif_budget : int option;
      (** frugal costing (see {!Search.options.whatif_budget}): cap on the
          what-if optimizer calls the relaxation ranking may spend;
          [None] = unlimited (the frugal tier is off).  With a finite
          budget the recommended cost is re-derived from exact per-query
          what-if costs after the search, so the reported numbers are
          honest even when the search ran on bound-costed plans. *)
  initial_config : Config.t option;
      (** warm start: a previously deployed configuration seeded into the
          search pool as an incumbent (see {!Search.options.warm_start}).
          The continuous tuner's incremental re-tune entry; [None] =
          tune from scratch. *)
  whatif : O.Whatif.t option;
      (** an existing what-if interface to tune through, keeping its plan
          cache and advisory bounds warm across re-tunes; [None] = a
          fresh one per call. *)
  on_iteration : (Search.iteration_report -> unit) option;
      (** per-iteration hook threaded to {!Search.run}; used by the
          differential invariant checker ([Relax_check]) *)
}

let default_options ?(mode = Indexes_and_views) ~space_budget () =
  {
    mode;
    space_budget;
    base_config = Config.empty;
    max_iterations = 400;
    time_budget_s = None;
    transforms_per_iteration = 1;
    shrink_configurations = false;
    selection = Search.Penalty;
    jobs = Relax_parallel.Pool.default_jobs ();
    whatif_budget = None;
    initial_config = None;
    whatif = None;
    on_iteration = None;
  }

type result = {
  workload : Query.workload;
  initial_cost : float;  (** workload cost under the base configuration *)
  initial_size : float;
  optimal : Config.t;
  optimal_cost : float;
  optimal_size : float;
  recommended : Config.t;
  recommended_cost : float;
  recommended_size : float;
  improvement : float;  (** §4's metric, in percent *)
  lower_bound : float;
      (** a cost no configuration can beat (tight iff no updates, §3.6) *)
  frontier : (float * float) list;
      (** (size, cost) of every configuration explored, for Figure 4 *)
  candidates_per_iteration : int list;  (** Figure 6 *)
  request_stats : Instrument.request_stats list;  (** Table 1 *)
  per_query : (string * float * float) list;
      (** per statement: (id, cost under base, cost under recommendation) *)
  best_trace : (int * float) list;
      (** (iteration, best valid cost): the anytime behaviour of the search *)
  iterations : int;
  metrics : Relax_obs.Metrics.snapshot;
      (** structured counters and span timings for the whole run: what-if
          calls, cache hits, plans patched vs. re-optimized, shortcut
          aborts, transformations generated/applied per kind, pool sizes *)
  elapsed_s : float;
}

(** The paper's quality metric:
    [improvement(CI, CR, W) = 100 (1 − cost(W, CR) / cost(W, CI))]. *)
let improvement ~initial ~recommended =
  100.0 *. (1.0 -. (recommended /. Float.max 1e-9 initial))

let workload_cost catalog config w =
  let whatif = O.Whatif.create catalog in
  O.Whatif.workload_cost whatif config w

(* The body of [tune] under an installed recorder.  Returns a closure so
   the metrics snapshot can be taken after the outermost span has closed. *)
let tune_spanned recorder (catalog : Catalog.t) (workload : Query.workload)
    (options : options) : Relax_obs.Metrics.snapshot -> result =
  let t0 = Relax_obs.Clock.now () in
  Relax_obs.Recorder.with_ambient recorder @@ fun () ->
  Relax_obs.Recorder.with_span recorder "tuner.tune" @@ fun () ->
  let views = options.mode = Indexes_and_views in
  let inst =
    Relax_obs.Recorder.with_span recorder "tuner.instrument" @@ fun () ->
    Instrument.optimal_configuration catalog ~base:options.base_config ~views
      workload
  in
  let search_opts =
    {
      (Search.default_options ~space_budget:options.space_budget) with
      max_iterations = options.max_iterations;
      time_budget_s = options.time_budget_s;
      protected = options.base_config;
      transforms_per_iteration = options.transforms_per_iteration;
      shrink_configurations = options.shrink_configurations;
      selection = options.selection;
      jobs = options.jobs;
      whatif_budget = options.whatif_budget;
      warm_start = options.initial_config;
      whatif = options.whatif;
      on_iteration = options.on_iteration;
    }
  in
  let outcome =
    Relax_obs.Recorder.with_span recorder "tuner.search" @@ fun () ->
    Search.run catalog ~workload ~initial:inst.optimal search_opts
  in
  Relax_obs.Recorder.with_span recorder "tuner.report" @@ fun () ->
  (* Every report cost goes through the search's own what-if interface:
     its cache already holds every plan the search optimized (frugal runs
     even pre-costed the base configuration as their re-anchoring pass),
     so the report pays one per-entry pass over the base configuration at
     most — not three passes as a naive implementation would. *)
  let base_entries =
    O.Whatif.per_entry_costs outcome.whatif options.base_config workload
  in
  let initial_cost =
    List.fold_left (fun acc (_, c) -> acc +. c) 0.0 base_entries
  in
  let initial_size = Config.total_bytes catalog options.base_config in
  let recommended, recommended_size =
    match outcome.best with
    | Some n -> (n.Search.config, n.Search.size)
    | None ->
      (* nothing fit the budget: fall back to the base configuration *)
      (options.base_config, initial_size)
  in
  (* Per-entry weighted costs of a node's configuration, read straight off
     its evaluated plans — no optimizer calls. *)
  let entries_of_node (n : Search.node) =
    let env = lazy (O.Env.make catalog n.Search.config) in
    List.map
      (fun (e : Query.entry) ->
        let cost =
          match e.stmt with
          | Query.Select _ -> (
            match Search.plan_of n ~qid:e.qid with
            | Some (p : O.Plan.t) -> p.cost
            | None -> invalid_arg ("entries_of_node: no plan for " ^ e.qid))
          | Query.Dml d ->
            let select_cost =
              match Search.plan_of n ~qid:(Query.select_qid e.qid) with
              | Some (p : O.Plan.t) -> p.cost
              | None -> 0.0
            in
            select_cost
            +. O.Update_cost.shell_cost (Lazy.force env) n.Search.config d
        in
        (e.qid, e.weight *. cost))
      workload
  in
  (* Frugal runs carry bound-costed plans in their nodes, so the
     recommended cost is re-derived from per-query what-if costs (through
     the search's warm cache — only plans the budget skipped are paid
     for); exact runs read the node's plans directly. *)
  let recommended_entries =
    match outcome.best with
    | None -> base_entries
    | Some n ->
      if options.whatif_budget = None then entries_of_node n
      else
        (* only the entries whose plan the budget skipped need a real
           what-if cost; the rest are exact on the node already *)
        List.map2
          (fun (qid, c) (e : Query.entry) ->
            let is_pseudo =
              match e.stmt with
              | Query.Select _ -> Search.is_pseudo n ~qid:e.qid
              | Query.Dml _ -> Search.is_pseudo n ~qid:(Query.select_qid e.qid)
            in
            if is_pseudo then
              (qid, e.weight *. O.Whatif.entry_cost outcome.whatif recommended e)
            else (qid, c))
          (entries_of_node n) workload
  in
  let recommended_cost =
    List.fold_left (fun acc (_, c) -> acc +. c) 0.0 recommended_entries
  in
  let per_query =
    List.map2
      (fun (qid, before) (_, after) -> (qid, before, after))
      base_entries recommended_entries
  in
  (* §3.6 lower bound: optimal select cost plus base-configuration shell
     cost; with no updates this is simply the optimal configuration cost *)
  let lower_bound =
    let prepared = Search.prepare workload in
    if not prepared.has_updates then outcome.initial.cost
    else begin
      let base_env = O.Env.make catalog options.base_config in
      outcome.initial.select_cost
      +. List.fold_left
           (fun acc (w, d) ->
             acc
             +. w
                *. O.Update_cost.shell_cost base_env options.base_config d)
           0.0 prepared.dmls
    end
  in
  (* [metrics] is filled in only after the outermost span has closed, so
     the snapshot includes the "tuner.tune" timing itself. *)
  fun metrics ->
    {
      workload;
      initial_cost;
      initial_size;
      optimal = outcome.initial.config;
      optimal_cost = outcome.initial.cost;
      optimal_size = outcome.initial.size;
      recommended;
      recommended_cost;
      recommended_size;
      improvement =
        improvement ~initial:initial_cost ~recommended:recommended_cost;
      lower_bound;
      frontier = List.map (fun (s, c, _) -> (s, c)) outcome.explored;
      candidates_per_iteration = outcome.candidates_per_iteration;
      request_stats = inst.stats;
      per_query;
      best_trace = outcome.best_trace;
      iterations = outcome.iterations;
      metrics;
      elapsed_s = Relax_obs.Clock.elapsed_s ~since:t0;
    }

(** Tune [workload] against [catalog] under [options].  The run records
    into [obs] when given, else into the ambient recorder (e.g. one
    installed by a benchmark harness), else into a fresh private one;
    either way [result.metrics] is the recorder's final snapshot. *)
let tune ?obs catalog workload options : result =
  let recorder =
    match obs with
    | Some r -> r
    | None -> Relax_obs.Recorder.inherit_or_create ()
  in
  let finish = tune_spanned recorder catalog workload options in
  finish (Relax_obs.Recorder.snapshot recorder)
