(** Optimizer instrumentation: deriving the optimal configuration (§2).

    Each index request [(S, N, O, A)] is answered with the physical
    structures that make the request's optimal plan possible (§2.1):

    - With no required order, Lemmas 1 and 2 imply the optimal plan seeks a
      single covering index whose keys are the sargable columns sorted by
      selectivity (equality predicates first, then at most one trailing
      non-equality range) and whose suffix holds every other referenced
      column.
    - With a required order [O], a second candidate starts its keys with
      [O]: if [O ⊆ S] the remaining sargable columns follow as keys and the
      rest become suffix columns; otherwise all of [S] and [A] become suffix
      columns.  The optimizer then picks whichever of the two alternatives
      (with or without a sort) is cheaper.

    Each view request (an SPJG sub-query) is answered by the sub-query
    itself materialized as a view — trivially the most efficient view for
    the request — with a clustered index over it.

    Because view matching spawns index requests over the view-tables on the
    next optimization pass, the procedure iterates to a fixpoint. *)

open Relax_sql.Types
module Query = Relax_sql.Query
module Predicate = Relax_sql.Predicate
module Index = Relax_physical.Index
module View = Relax_physical.View
module Config = Relax_physical.Config
module O = Relax_optimizer

let src = Logs.Src.create "relax.instrument" ~doc:"optimizer instrumentation"

module Log = (val Logs.src_log src : Logs.LOG)

(** Per-query request counts (Table 1). *)
type request_stats = {
  qid : string;
  index_requests : int;  (** distinct index requests *)
  view_requests : int;  (** distinct view requests *)
}

(* ------------------------------------------------------------------ *)
(* optimal structures per request                                      *)
(* ------------------------------------------------------------------ *)

(** Optimal index candidates for one index request (at most two: the
    seek-optimal index and, when an order is requested, the
    order-providing index). *)
let indexes_for_request env (r : O.Request.t) : Index.t list =
  let ranges_sorted =
    List.sort
      (fun a b ->
        Float.compare (O.Selectivity.range env a) (O.Selectivity.range env b))
      r.ranges
  in
  let eqs, noneqs = List.partition Predicate.is_equality ranges_sorted in
  let seek_keys =
    List.map (fun (rg : Predicate.range) -> rg.rcol) eqs
    @ r.param_eq
    @ (match noneqs with [] -> [] | rg :: _ -> [ rg.rcol ])
  in
  (* dedup while keeping order *)
  let dedup cols =
    let seen = Hashtbl.create 8 in
    List.filter
      (fun c ->
        if Hashtbl.mem seen c then false
        else begin
          Hashtbl.add seen c ();
          true
        end)
      cols
  in
  let seek_keys = dedup seek_keys in
  let mk keys =
    match keys with
    | [] -> None
    | _ ->
      let suffix = Column_set.diff r.cols (Column_set.of_list keys) in
      Some (Index.make ~keys ~suffix ())
  in
  let seek_index =
    match seek_keys with
    | [] ->
      (* no sargable predicate: a covering index still beats scanning the
         base table when the table is wide; key on the first needed column *)
      (match Column_set.elements r.cols with
      | [] -> None
      | first :: _ -> mk [ first ])
    | keys -> mk keys
  in
  (* IN-list predicates are non-sargable for a single seek but support
     multi-point union plans when the listed column leads an index *)
  let union_indexes =
    List.filter_map
      (fun e ->
        match e with
        | Relax_sql.Expr.In_list (Relax_sql.Expr.Col c, _ :: _)
          when c.tbl = r.rel ->
          mk (dedup (c :: seek_keys))
        | _ -> None)
      r.others
  in
  let order_index =
    if r.order = [] then None
    else begin
      let o_cols = dedup (List.map fst r.order) in
      let s_cols = O.Request.sargable_columns r in
      let o_in_s =
        List.for_all (fun c -> Column_set.mem c s_cols) o_cols
      in
      let keys =
        if o_in_s then
          o_cols
          @ List.filter
              (fun c -> not (List.exists (Column.equal c) o_cols))
              (Column_set.elements s_cols)
        else o_cols
      in
      mk (dedup keys)
    end
  in
  List.filter_map Fun.id [ seek_index; order_index ] @ union_indexes

(** Materialize a view request: the sub-query itself, with a clustered
    index (keyed on its grouping columns when it has any, so that
    compensating re-aggregations stream). *)
let view_for_request env (block : Query.spjg) : (View.t * float * Index.t) option
    =
  (* single-table ungrouped blocks are index territory, not view territory *)
  if List.length block.tables < 2 && block.group_by = [] then None
  else begin
    let v = View.make block in
    let rows = O.Cardinality.spjg env block in
    let outputs = View.outputs v in
    match outputs with
    | [] -> None
    | (_, first) :: _ ->
      let keys =
        if block.group_by <> [] then
          List.filter_map (View.view_column_of_base v) block.group_by
        else []
      in
      let keys =
        match keys with [] -> [ View.column_of_item v first ] | ks -> ks
      in
      let ci = Index.make ~clustered:true ~keys ~suffix:Column_set.empty () in
      Some (v, rows, ci)
  end

(* ------------------------------------------------------------------ *)
(* the fixpoint loop                                                   *)
(* ------------------------------------------------------------------ *)

type result = {
  optimal : Config.t;  (** the optimal configuration (§2.1) *)
  stats : request_stats list;  (** request counts per query (Table 1) *)
  passes : int;
}

(** Select statements to instrument: plain selects plus the select
    components of update statements (§3.6). *)
let instrumentable (w : Query.workload) : (string * Query.select_query) list =
  List.filter_map
    (fun (e : Query.entry) ->
      match e.stmt with
      | Select q -> Some (e.qid, q)
      | Dml d -> (
        match Query.split_update d with
        | Some q, _ -> Some (Query.select_qid e.qid, q)
        | None, _ -> None))
    w

(** Compute the optimal configuration for a workload by intercepting all
    index and view requests during optimization (§2).  [base] holds the
    structures that must be present in any configuration.  With
    [~views:false] only indexes are simulated (the "indexes only" tuning
    mode of §4). *)
let optimal_configuration catalog ~(base : Config.t) ?(views = true)
    ?(max_passes = 4) (w : Query.workload) : result =
  let queries = instrumentable w in
  let config = ref base in
  let stats : (string, string list ref * string list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let get_stat qid =
    match Hashtbl.find_opt stats qid with
    | Some s -> s
    | None ->
      let s = (ref [], ref []) in
      Hashtbl.add stats qid s;
      s
  in
  let passes = ref 0 in
  let continue = ref true in
  while !continue && !passes < max_passes do
    incr passes;
    Relax_obs.Probe.count "instrument.passes";
    let added = ref false in
    List.iter
      (fun (qid, sq) ->
        let env = O.Env.make catalog !config in
        let pending_indexes = ref [] and pending_views = ref [] in
        let ireqs, vreqs = get_stat qid in
        let hooks =
          {
            O.Hooks.on_index_request =
              (fun r ->
                let fp = O.Request.fingerprint r in
                if not (List.mem fp !ireqs) then ireqs := fp :: !ireqs;
                pending_indexes := indexes_for_request env r @ !pending_indexes);
            on_view_request =
              (fun block ->
                if views then begin
                  let fp = View.fingerprint block in
                  if not (List.mem fp !vreqs) then vreqs := fp :: !vreqs;
                  match view_for_request env block with
                  | Some vrc -> pending_views := vrc :: !pending_views
                  | None -> ()
                end);
          }
        in
        let _plan =
          Relax_obs.Probe.span "instrument.optimize" (fun () ->
              O.Optimizer.optimize catalog !config ~hooks sq)
        in
        List.iter
          (fun i ->
            if not (Config.mem_index !config i) then begin
              config := Config.add_index !config i;
              added := true
            end)
          !pending_indexes;
        List.iter
          (fun (v, rows, ci) ->
            if not (Config.mem_view !config v) then begin
              config := Config.add_view !config v ~rows;
              config := Config.add_index !config ci;
              added := true
            end)
          !pending_views)
      queries;
    if not !added then continue := false
  done;
  let stats =
    List.map
      (fun (qid, _) ->
        let ireqs, vreqs = get_stat qid in
        {
          qid;
          index_requests = List.length !ireqs;
          view_requests = List.length !vreqs;
        })
      queries
  in
  Log.debug (fun m ->
      m "optimal configuration: %d structures after %d passes"
        (Config.cardinal !config) !passes);
  { optimal = !config; stats; passes = !passes }
