(** Execution-cost upper bounds for relaxed configurations (§3.3.2).

    The principle: a relaxed configuration [C'] can answer every request the
    replaced structures answered, just less efficiently.  So we isolate each
    access sub-plan that used a replaced structure and re-cost {e only that
    sub-plan} against [C'] (reusing access-path selection — a component of
    the optimizer, not a full optimization call), adding compensating
    rid-lookups, filters, sorts or group-bys where needed.  Substituting the
    patched sub-plan into the otherwise unchanged execution plan yields a
    valid plan under [C'], hence an upper bound on the optimizer's cost.

    Removed views are bounded by [CBV]: the cost of computing the view from
    scratch under the base configuration, plus a scan over its result
    (§3.3.2, "View Transformations"). *)

open Relax_sql.Types
module Index = Relax_physical.Index
module View = Relax_physical.View
module Config = Relax_physical.Config
module Predicate = Relax_sql.Predicate
module Expr = Relax_sql.Expr
module O = Relax_optimizer
module P = O.Cost_params

(** Context describing one candidate relaxation [C -> C']. *)
type context = {
  env' : O.Env.t;  (** environment under the relaxed configuration *)
  old_env : O.Env.t;  (** environment under the current configuration *)
  removed_indexes : Index.t list;
  removed_views : View.t list;
  view_merge : (View.merge_result * View.t * View.t) option;
      (** set when the transformation merges two views (result, v1, v2) *)
  cbv : View.t -> float;
      (** cost of computing a view under the base configuration *)
  expands : bool;
      (** does the relaxation introduce replacement structures
          ({!Transform.adds_structures})?  Pure removals shrink the plan
          space, which makes the old plan's cost a sound lower bound on the
          re-optimized cost; with replacements an affected query can
          genuinely get cheaper and the lower bound must account for it *)
}

(* ------------------------------------------------------------------ *)
(* tolerant float comparisons                                          *)
(* ------------------------------------------------------------------ *)

(* Costs and sizes are sums of products of estimates: the last ulps of a
   comparison are accumulation noise, not signal.  Every cost/size
   comparison in the costing layers goes through these helpers (enforced
   by relax-lint L3); the default tolerance is relative to the larger
   magnitude, with an absolute floor of [eps] around zero. *)

let float_scale a b = Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))
let float_eq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps *. float_scale a b
let float_leq ?(eps = 1e-9) a b = a -. b <= eps *. float_scale a b
let float_lt ?(eps = 1e-9) a b = b -. a > eps *. float_scale a b

let index_removed ctx i = List.exists (Index.equal i) ctx.removed_indexes

let view_removed ctx name =
  List.exists (fun v -> View.name v = name) ctx.removed_views

(** Is this access affected by the relaxation? *)
let affected ctx (a : O.Plan.access_info) =
  List.exists (fun (u : O.Plan.index_usage) -> index_removed ctx u.index) a.usages
  || view_removed ctx a.rel

exception Unbounded
(* raised when no compensation can be constructed; the caller falls back to
   the CBV bound or, at worst, infinity (the search then avoids the
   transformation) *)

(* --- view-merge compensation ------------------------------------------ *)

(* Remap an access request over view [v] onto the merged view, adding the
   compensating predicates for whatever the merge widened. *)
let remap_request_onto_merged (m : View.merge_result) (v : View.t)
    ~(remap : column -> column option) (r : O.Request.t) : O.Request.t * bool =
  let map_col c = match remap c with Some c' -> c' | None -> raise Unbounded in
  let merged_def = View.definition m.merged in
  let vdef = View.definition v in
  (* base-level predicates of [v] that the merged view no longer enforces *)
  let expose_base c =
    match View.view_column_of_base m.merged c with
    | Some vc -> vc
    | None -> raise Unbounded
  in
  let lost_ranges =
    List.filter_map
      (fun (rv : Predicate.range) ->
        let kept =
          List.exists
            (fun (rm : Predicate.range) ->
              Column.equal rm.rcol rv.rcol && Predicate.range_equal rm rv)
            merged_def.ranges
        in
        if kept then None else Some { rv with rcol = expose_base rv.rcol })
      vdef.ranges
  in
  let lost_others =
    List.filter_map
      (fun e ->
        if List.exists (Expr.equal e) merged_def.others then None
        else Some (Expr.map_columns expose_base e))
      vdef.others
  in
  let lost_joins =
    List.filter_map
      (fun (j : Predicate.join) ->
        if Predicate.join_mem j merged_def.joins then None
        else
          Some (Expr.Cmp (Eq, Col (expose_base j.left), Col (expose_base j.right))))
      vdef.joins
  in
  let ranges = List.map (fun (rg : Predicate.range) -> { rg with rcol = map_col rg.rcol }) r.ranges in
  let others = List.map (Expr.map_columns map_col) r.others in
  let cols =
    Column_set.fold (fun c acc -> Column_set.add (map_col c) acc) r.cols Column_set.empty
  in
  let regroup_needed =
    vdef.group_by <> []
    && not
         (List.length vdef.group_by = List.length merged_def.group_by
         && List.for_all
              (fun g ->
                match View.view_column_of_base v g with
                | Some _ -> List.exists (Column.equal g) merged_def.group_by
                | None -> false)
              vdef.group_by)
  in
  let order = if regroup_needed then [] else List.map (fun (c, d) -> (map_col c, d)) r.order in
  ( O.Request.make ~rel:(View.name m.merged)
      ~ranges:(ranges @ lost_ranges)
      ~others:(others @ lost_others @ lost_joins)
      ~order ~cols (),
    regroup_needed )

(* --- per-access bounds -------------------------------------------------- *)

(* Bound for an access whose view was removed outright: compute the view
   from scratch under the base configuration (CBV) and scan its output. *)
let removed_view_bound ctx (a : O.Plan.access_info) (v : View.t) : float =
  let rows = O.Env.rows ctx.old_env (View.name v) in
  let width = O.Env.row_width ctx.old_env (View.name v) in
  let page = Relax_physical.Size_model.default_params.page_size in
  let pages = Float.max 1.0 (rows *. width /. page) in
  let scan = (pages *. P.seq_page) +. (rows *. P.cpu_tuple) in
  let sort =
    if a.request.order = [] then 0.0
    else begin
      (* only the rows the access actually returns reach the sort, not the
         whole view: cost it on the accessed cardinality and its pages *)
      let sort_rows = Float.min rows (Float.max 0.0 a.access_rows) in
      let sort_pages = Float.max 1.0 (sort_rows *. width /. page) in
      P.sort_cost ~rows:sort_rows ~pages:sort_pages
    end
  in
  ctx.cbv v +. scan +. (rows *. P.cpu_eval) +. sort

(* The enclosing plan may consume an access's delivered output order
   without re-sorting: a merge join's inputs, a streaming aggregate's
   input, the query's ORDER BY when no Sort operator re-establishes it.
   Patching such an access with an unordered replacement silently
   invalidates the surrounding plan — the optimizer's true best can then
   exceed the "bound" (the checker caught exactly this on a TPC-H merge
   join fed by an index scan's key order).  [go] threads whether the
   parent still needs this subtree's order; at each access that order, if
   needed, becomes part of the replacement's request. *)
let accesses_with_consumed_order ~order_by (plan : O.Plan.t) :
    (O.Plan.access_info * (column * order_dir) list) list =
  let rec go needed (p : O.Plan.t) acc =
    match p.node with
    | O.Plan.Seq_scan _ | Index_scan _ | Index_seek _ | Rid_union _ -> acc
    | Access { info; input } ->
      let consumed = if needed then p.out_order else [] in
      (info, consumed) :: go needed input acc
    | Sort { input; _ } -> go false input acc
    | Filter { input; _ } | Rid_lookup { input; _ } -> go needed input acc
    | Rid_intersect (a, b) -> go false a (go false b acc)
    | Hash_join { build; probe; _ } -> go false build (go needed probe acc)
    | Merge_join { left; right; _ } -> go true left (go true right acc)
    | Nl_join { outer; inner; _ } -> go needed outer (go false inner acc)
    | Group { input; streaming; _ } -> go streaming input acc
  in
  go (order_by <> []) plan []

(* Fold the consumed order into the access's request, so every bounding
   strategy below (access-path re-selection, view remapping, CBV) prices
   the sort needed to keep the enclosing plan valid. *)
let with_consumed_order (a : O.Plan.access_info)
    (consumed : (column * order_dir) list) : O.Plan.access_info =
  if consumed = [] || a.request.order <> [] then a
  else
    {
      a with
      request =
        O.Request.make ~rel:a.request.rel ~ranges:a.request.ranges
          ~param_eq:a.request.param_eq ~others:a.request.others
          ~order:consumed ~cols:a.request.cols ();
    }

(** Upper bound on the cost of re-implementing one affected access under the
    relaxed configuration (per execution).  [consumed_order] is the output
    order the enclosing plan relies on this access to deliver (empty when
    none): the replacement must provide it too. *)
let access_bound ?(consumed_order = []) ctx (a : O.Plan.access_info) : float =
  let a = with_consumed_order a consumed_order in
  match ctx.view_merge with
  | Some (m, v1, v2) when a.rel = View.name v1 || a.rel = View.name v2 -> (
    let v, remap =
      if a.rel = View.name v1 then (v1, m.remap1) else (v2, m.remap2)
    in
    try
      let request, regroup = remap_request_onto_merged m v ~remap a.request in
      let plan = O.Access_path.best ctx.env' request in
      let regroup_cost =
        if regroup then
          (plan.rows *. P.cpu_hash) +. (a.access_rows *. P.cpu_agg)
        else 0.0
      in
      plan.cost +. regroup_cost
    with Unbounded -> removed_view_bound ctx a v)
  | _ ->
    if view_removed ctx a.rel then begin
      match
        List.find_opt (fun v -> View.name v = a.rel) ctx.removed_views
      with
      | Some v -> removed_view_bound ctx a v
      | None -> raise Unbounded
    end
    else begin
      (* index transformation: the relation still exists under C'; re-run
         access-path selection there.  The result is a valid plan, hence an
         upper bound. *)
      let plan = O.Access_path.best ctx.env' a.request in
      plan.cost
    end

(** Upper bound on the whole query's cost under the relaxed configuration:
    patch every affected access, keep the rest of the plan (§3.3.2).
    [order_by] is the query's required output order — when the plan
    delivers it through an access rather than a Sort operator, patching
    that access must preserve it. *)
let query_bound ?(order_by = []) ctx (plan : O.Plan.t) : float =
  List.fold_left
    (fun acc ((a : O.Plan.access_info), consumed) ->
      if affected ctx a then
        (* access-path selection under [C'] may find a *cheaper* path than
           the one the old plan used; a negative delta would drag the
           "upper bound" below the cost of the (still valid) patched plan,
           so each per-access contribution is clamped at zero — the result
           stays an upper bound on the optimizer's cost under [C']. *)
        acc
        +. Float.max 0.0
             (a.executions
             *. (access_bound ~consumed_order:consumed ctx a -. a.access_cost)
             )
      else acc)
    plan.cost
    (accesses_with_consumed_order ~order_by plan)

(** Does this plan touch any structure the relaxation removes? *)
let plan_affected ctx (plan : O.Plan.t) =
  List.exists (affected ctx) (O.Plan.accesses plan)

(* --- patched-plan materialization (the frugal costing tier) ------------- *)

exception Unpatchable

(** Materialize the §3.3.2 patched plan: every affected access sub-plan is
    replaced by the best surviving access path under [C'] (with the
    consumed output order folded into its request, and the original
    execution count preserved), the rest of the plan is kept, and every
    ancestor's cumulative cost absorbs the per-access delta — clamped at
    zero exactly like {!query_bound}, so the returned plan's top-level
    cost equals the {!query_bound} value.  The result is a {e valid} plan
    under [C'] — real accesses, real usages — so every later
    affected-test, bound and ranking delta computed from it stays
    meaningful, unlike a stale plan carrying a substituted cost.

    Returns [None] when an affected access cannot be re-implemented as an
    access path (removed or merged views: their compensation is a
    from-scratch view computation, not a plan). *)
let patched_plan ?(order_by = []) ctx (plan : O.Plan.t) : O.Plan.t option =
  let rec go needed (p : O.Plan.t) : O.Plan.t * float =
    let lift mk kids =
      let kids' = List.map (fun (needed, k) -> go needed k) kids in
      let d = List.fold_left (fun acc (_, dk) -> acc +. dk) 0.0 kids' in
      ({ p with node = mk (List.map fst kids'); cost = p.cost +. d }, d)
    in
    let one mk needed_k k = lift (function [ k' ] -> mk k' | _ -> assert false) [ (needed_k, k) ] in
    let two mk na a nb b =
      lift (function [ a'; b' ] -> mk a' b' | _ -> assert false) [ (na, a); (nb, b) ]
    in
    match p.node with
    | O.Plan.Seq_scan _ | Index_scan _ | Index_seek _ | Rid_union _ -> (p, 0.0)
    | Access { info; input = _ } when affected ctx info ->
      if
        view_removed ctx info.rel
        || (match ctx.view_merge with
           | Some (_, v1, v2) ->
             info.rel = View.name v1 || info.rel = View.name v2
           | None -> false)
      then raise Unpatchable
      else begin
        let consumed = if needed then p.out_order else [] in
        let info = with_consumed_order info consumed in
        let repl =
          O.Access_path.best ctx.env' ?via_view:info.via_view info.request
        in
        (* the replacement runs as many times as the access it replaces *)
        let repl =
          match repl.node with
          | O.Plan.Access { info = ri; input } ->
            { repl with
              node =
                O.Plan.Access
                  { info = { ri with executions = info.executions }; input }
            }
          | _ -> repl
        in
        ( repl,
          Float.max 0.0 (info.executions *. (repl.cost -. info.access_cost)) )
      end
    | Access _ -> (p, 0.0)
    | Sort s -> one (fun input -> O.Plan.Sort { s with input }) false s.input
    | Filter f -> one (fun input -> O.Plan.Filter { f with input }) needed f.input
    | Rid_lookup r ->
      one (fun input -> O.Plan.Rid_lookup { r with input }) needed r.input
    | Rid_intersect (a, b) ->
      two (fun a' b' -> O.Plan.Rid_intersect (a', b')) false a false b
    | Hash_join h ->
      two
        (fun build probe -> O.Plan.Hash_join { h with build; probe })
        false h.build needed h.probe
    | Merge_join m ->
      two
        (fun left right -> O.Plan.Merge_join { m with left; right })
        true m.left true m.right
    | Nl_join n ->
      two
        (fun outer inner -> O.Plan.Nl_join { n with outer; inner })
        needed n.outer false n.inner
    | Group g ->
      one (fun input -> O.Plan.Group { g with input }) g.streaming g.input
  in
  match go (order_by <> []) plan with
  | p, _ -> Some p
  | exception Unpatchable -> None

(* --- lower bounds (the frugal costing tier) ----------------------------- *)

(** Lower bound on the query's re-optimized cost under [C'].

    For pure removals ([expands = false]) the old plan's cost itself is the
    bound: the plan was optimal under a configuration that is a superset of
    [C'], and shrinking the structure set can only shrink the plan space,
    so the optimum under [C'] cannot be cheaper.  This direction is exact
    model-free reasoning, not an estimate.

    With replacement structures ([expands = true]) the model makes no
    claim: the bound is 0.  Any floor assembled from the old plan's
    operators can be beaten by a plan the optimizer restructures around
    the replacement — a promoted clustered index whose order deletes a
    Sort {e and} flips a hash join to a merge join, a merged index whose
    covering kills a rid-lookup an entire join order was shaped by — and
    the differential checker caught exactly such a case (a per-access
    floor over-estimating the optimum by 27% under an index promotion).
    Real information tightens the interval instead: the advisory store
    ({!Relax_optimizer.Whatif.cost_interval}) raises the lower end from
    {e observed} costs of structure-comparable configurations, which is
    sound by construction. *)
let query_lower_bound ?(order_by = []) ctx (plan : O.Plan.t) : float =
  ignore order_by;
  if not ctx.expands then plan.cost else 0.0
