(** [tune] — command-line physical design tuning.

    Tunes a workload against one of the built-in databases (or a SQL script
    file) with either the relaxation-based tuner (PTT, the paper's
    contribution) or the bottom-up baseline (CTT), and prints the
    recommendation, the space/cost frontier and request statistics.

    Examples:
    {v
    tune --db tpch --queries 1,3,6,10 --budget-mb 40
    tune --db ds1 --generate 12 --seed 7 --updates 0.3 --tool ctt
    tune --db tpch --file workload.sql --mode indexes --iterations 500
    v} *)

module Query = Relax_sql.Query
module Config = Relax_physical.Config
module T = Relax_tuner
module B = Relax_baseline
module W = Relax_workloads
open Cmdliner

type db = Tpch | Ds1 | Bench

let schema_of_db ~scale = function
  | Tpch -> W.Bench_db.tpch_schema ~scale ()
  | Ds1 -> W.Star.schema ~scale ()
  | Bench -> W.Bench_db.schema ~scale ()

let read_file path =
  try In_channel.with_open_bin path In_channel.input_all
  with Sys_error msg ->
    Fmt.epr "tune: cannot read %s: %s@." path msg;
    exit 2

let load_workload ~db ~scale ~schema_file ~queries ~file ~generate ~seed
    ~updates =
  let schema =
    match schema_file with
    | None -> schema_of_db ~scale db
    | Some path ->
      let catalog, joins = Relax_catalog.Schema_parser.parse (read_file path) in
      { W.Generator.catalog; joins }
  in
  let workload =
    match (file, queries, db) with
    | Some path, _, _ -> Relax_sql.Parser.workload (read_file path)
    | None, Some nums, Tpch when schema_file = None ->
      W.Tpch.workload_subset nums
    | None, Some _, _ ->
      failwith "--queries only applies to --db tpch (the 22 fixed queries)"
    | None, None, Tpch when generate = 0 && schema_file = None ->
      W.Tpch.workload ()
    | None, None, _ ->
      let n = if generate = 0 then 10 else generate in
      let profile =
        { W.Generator.default_profile with update_fraction = updates }
      in
      W.Generator.workload ~seed ~profile schema ~n
  in
  (schema.catalog, workload)

let run db scale schema_file queries file generate seed updates tool mode
    budget_mb iterations time_s jobs whatif_budget whatif_cache ddl
    do_compress explain analyze verbose log_level trace_file
    trace_chrome_file metrics frontier_csv_file check check_jsonl =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (if verbose then Some Logs.Debug else log_level);
  (* a SIGINT/SIGTERM mid-run unwinds through the [Fun.protect] around
     the tuner, closing the trace sink before the process exits 128+N *)
  Relax_obs.Shutdown.install ();
  Relax_obs.Shutdown.protect @@ fun () ->
  let catalog, workload =
    load_workload ~db ~scale ~schema_file ~queries ~file ~generate ~seed
      ~updates
  in
  let workload =
    if do_compress then begin
      let before, after = W.Compress.compression_ratio workload in
      Fmt.pr "compressed workload: %d statements -> %d templates@." before
        after;
      W.Compress.compress workload
    end
    else workload
  in
  Fmt.pr "workload (%d statements):@." (List.length workload);
  List.iter
    (fun (e : Query.entry) ->
      Fmt.pr "  %s: %s@." e.qid
        (Relax_sql.Pretty.statement_to_string e.stmt))
    workload;
  let budget =
    match budget_mb with
    | None -> infinity
    | Some m -> m *. 1024.0 *. 1024.0
  in
  match tool with
  | `Ptt ->
    let mode =
      if mode = "indexes" then T.Tuner.Indexes_only
      else T.Tuner.Indexes_and_views
    in
    let checker =
      match check with
      | None -> None
      | Some _ ->
        Some
          (Relax_check.Checker.create catalog ~workload
             ~protected:Config.empty ())
    in
    (* a persistent what-if cache: load advisory bounds before the run,
       save the (possibly grown) store after.  Bounds are advisory — a
       stale or missing file degrades to a cold store, never to a wrong
       answer — so load failures warn and continue. *)
    let whatif =
      Option.map
        (fun cache_file ->
          let w = Relax_optimizer.Whatif.create catalog in
          (if Sys.file_exists cache_file then
             match Relax_optimizer.Whatif.load_bounds w ~file:cache_file with
             | Ok n ->
               Fmt.pr "what-if cache: loaded %d bound record(s) from %s@." n
                 cache_file
             | Error msg ->
               Fmt.epr
                 "tune: what-if cache %s not loaded (%s); starting cold@."
                 cache_file msg);
          (w, cache_file))
        whatif_cache
    in
    let opts =
      {
        (T.Tuner.default_options ~mode ~space_budget:budget ()) with
        max_iterations = iterations;
        time_budget_s = time_s;
        jobs = Option.value jobs ~default:(Relax_parallel.Pool.default_jobs ());
        whatif_budget;
        whatif = Option.map fst whatif;
        on_iteration =
          Option.map (fun c -> Relax_check.Checker.hook c) checker;
      }
    in
    let open_out_checked ~what path f =
      try f path
      with Sys_error msg ->
        Fmt.epr "tune: cannot write %s %s: %s@." what path msg;
        exit 2
    in
    let sink =
      Option.map
        (fun p -> open_out_checked ~what:"trace" p Relax_obs.Trace.file)
        trace_file
    in
    let obs =
      Relax_obs.Recorder.create ?sink
        ~profile:(trace_chrome_file <> None)
        ()
    in
    let r =
      Fun.protect
        ~finally:(fun () -> Option.iter Relax_obs.Trace.close sink)
        (fun () -> T.Tuner.tune ~obs catalog workload opts)
    in
    Option.iter
      (fun (w, cache_file) ->
        match Relax_optimizer.Whatif.save_bounds w ~file:cache_file with
        | Ok n ->
          Fmt.pr "what-if cache: saved %d bound record(s) to %s@." n
            cache_file
        | Error msg ->
          Fmt.epr "tune: what-if cache %s not saved: %s@." cache_file msg)
      whatif;
    Option.iter
      (fun path -> Fmt.pr "trace written to %s@." path)
      trace_file;
    Option.iter
      (fun path ->
        open_out_checked ~what:"chrome trace" path (fun path ->
            Relax_obs.Chrome.write obs path);
        Fmt.pr "chrome trace written to %s (open in ui.perfetto.dev)@." path)
      trace_chrome_file;
    Fmt.pr "@.%a@." T.Report.pp_summary r;
    Option.iter
      (fun c ->
        let report = Relax_check.Checker.report c in
        Fmt.pr "@.differential check:@.%a" Relax_check.Checker.pp_report
          report;
        Option.iter
          (fun path ->
            open_out_checked ~what:"check JSONL" path (fun path ->
                let sink = Relax_obs.Trace.file path in
                List.iter
                  (fun v ->
                    Relax_obs.Trace.emit sink
                      (Relax_check.Checker.violation_json v))
                  report.Relax_check.Checker.violations;
                Relax_obs.Trace.emit sink
                  (Relax_check.Checker.report_json report);
                Relax_obs.Trace.close sink);
            Fmt.pr "check report written to %s@." path)
          check_jsonl;
        if check = Some `Strict && not (Relax_check.Checker.ok report)
        then begin
          Fmt.epr "tune: --check=strict: %d violation(s)@."
            (List.length report.Relax_check.Checker.violations);
          exit 1
        end)
      checker;
    if metrics then Fmt.pr "@.%a@." T.Report.pp_metrics r;
    Option.iter
      (fun path ->
        open_out_checked ~what:"frontier CSV" path (fun path ->
            Out_channel.with_open_bin path (fun oc ->
                Out_channel.output_string oc (T.Report.frontier_csv r)));
        Fmt.pr "frontier written to %s@." path)
      frontier_csv_file;
    Fmt.pr "@.%a@." T.Report.pp_request_stats r;
    Fmt.pr "@.%a@." T.Report.pp_frontier r;
    Fmt.pr "@.recommended configuration:@.%a@." T.Report.pp_recommendation r;
    if ddl then
      Fmt.pr "@.-- deployment script@.%a@." Relax_physical.Ddl.pp_config
        r.recommended;
    if analyze then begin
      (* generate rows matching the statistics and execute the chosen
         plans: estimated vs measured, before and after *)
      Fmt.pr "@.validating against generated data...@.";
      let db = Relax_engine.Data.create ~seed:2024 catalog in
      let before = Relax_engine.Validate.run db Config.empty workload in
      let after = Relax_engine.Validate.run db r.recommended workload in
      Fmt.pr "@.before:@.%a@." Relax_engine.Validate.pp_report before;
      Fmt.pr "@.after:@.%a@." Relax_engine.Validate.pp_report after;
      Fmt.pr "measured improvement: %.1f%%@."
        (100.0 *. (1.0 -. (after.measured_total /. before.measured_total)))
    end;
    if explain then begin
      let whatif = Relax_optimizer.Whatif.create catalog in
      Fmt.pr "@.chosen plans under the recommendation:@.";
      List.iter
        (fun (e : Query.entry) ->
          match e.stmt with
          | Select sq ->
            let plan =
              Relax_optimizer.Whatif.plan_select whatif r.recommended
                ~qid:e.qid sq
            in
            Fmt.pr "@.-- %s@.%a@." e.qid Relax_optimizer.Plan.pp plan
          | Dml _ -> ())
        workload
    end
  | `Ctt ->
    let opts =
      B.Ctt.default_options ~with_views:(mode <> "indexes")
        ~space_budget:budget ()
    in
    let r = B.Ctt.tune catalog workload opts in
    Fmt.pr "@.CTT (bottom-up baseline):@.";
    Fmt.pr "  improvement : %.1f%%@." r.improvement;
    Fmt.pr "  cost        : %.1f (initial %.1f)@." r.recommended_cost
      r.initial_cost;
    Fmt.pr "  size        : %a@." Relax_physical.Size_model.pp_bytes
      r.recommended_size;
    Fmt.pr "  candidates  : %d, %.2fs@." r.candidate_count r.elapsed_s;
    Fmt.pr "@.recommended configuration:@.%a@." Config.pp r.recommended;
    if ddl then
      Fmt.pr "@.-- deployment script@.%a@." Relax_physical.Ddl.pp_config
        r.recommended

(* --- cmdliner wiring ----------------------------------------------------- *)

let db =
  let parse = function
    | "tpch" -> Ok Tpch
    | "ds1" -> Ok Ds1
    | "bench" -> Ok Bench
    | s -> Error (`Msg ("unknown database: " ^ s))
  in
  let print ppf d =
    Fmt.string ppf (match d with Tpch -> "tpch" | Ds1 -> "ds1" | Bench -> "bench")
  in
  Arg.(
    value
    & opt (conv (parse, print)) Tpch
    & info [ "db" ] ~docv:"DB" ~doc:"Database: tpch, ds1 or bench.")

let scale =
  Arg.(
    value & opt float 0.02
    & info [ "scale" ] ~docv:"S"
        ~doc:"Database scale factor (1.0 = TPC-H SF-1 row counts).")

let schema_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "schema" ] ~docv:"PATH"
        ~doc:
          "Use a custom database described by a CREATE TABLE script \
           (overrides --db).")

let queries =
  let parse s =
    try Ok (Some (List.map int_of_string (String.split_on_char ',' s)))
    with _ -> Error (`Msg "expected a comma-separated list of query numbers")
  in
  let print ppf = function
    | None -> Fmt.string ppf "all"
    | Some l -> Fmt.(list ~sep:comma int) ppf l
  in
  Arg.(
    value
    & opt (conv (parse, print)) None
    & info [ "queries" ] ~docv:"N,N,..."
        ~doc:"Subset of the 22 TPC-H queries (tpch only).")

let file =
  Arg.(
    value
    & opt (some string) None
    & info [ "file" ] ~docv:"PATH" ~doc:"Read the workload from a SQL script.")

let generate =
  Arg.(
    value & opt int 0
    & info [ "generate" ] ~docv:"N" ~doc:"Generate N random statements.")

let seed =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Generator seed.")

let updates =
  Arg.(
    value & opt float 0.0
    & info [ "updates" ] ~docv:"F"
        ~doc:"Fraction of generated statements that are updates.")

let tool =
  Arg.(
    value
    & opt (enum [ ("ptt", `Ptt); ("ctt", `Ctt) ]) `Ptt
    & info [ "tool" ] ~docv:"TOOL"
        ~doc:"Tuner: ptt (relaxation-based) or ctt (bottom-up baseline).")

let mode =
  Arg.(
    value
    & opt (enum [ ("indexes", "indexes"); ("views", "views") ]) "views"
    & info [ "mode" ] ~docv:"MODE"
        ~doc:"What to recommend: indexes only, or indexes and views.")

let budget_mb =
  Arg.(
    value
    & opt (some float) None
    & info [ "budget-mb" ] ~docv:"MB"
        ~doc:"Storage budget in megabytes (absent = unconstrained).")

let iterations =
  Arg.(
    value & opt int 400
    & info [ "iterations" ] ~docv:"N" ~doc:"Relaxation iteration cap (ptt).")

let time_s =
  Arg.(
    value
    & opt (some float) None
    & info [ "time" ] ~docv:"SECONDS" ~doc:"Wall-clock tuning budget (ptt).")

let jobs =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the parallel search (ptt only); 1 = \
           sequential.  Defaults to \\$(b,RELAX_JOBS) or the machine's \
           domain count (capped at 8).  The recommendation is identical \
           whatever the value.")

let whatif_budget =
  Arg.(
    value
    & opt (some int) None
    & info [ "whatif-budget" ] ~docv:"N"
        ~doc:
          "Frugal costing (ptt only): cap the what-if optimizer calls the \
           relaxation ranking may spend; candidate decisions come from \
           cost-bound intervals and the budget is spent only on candidates \
           the bounds cannot decide.  Absent = unlimited (frugal tier \
           off).  0 = bounds only.  See the whatif.bound_accepts, \
           whatif.bound_rejects and whatif.budget_spent counters in \
           --metrics.")

let whatif_cache =
  Arg.(
    value
    & opt (some string) None
    & info [ "whatif-cache" ] ~docv:"FILE"
        ~doc:
          "Persist the what-if cost bounds across runs (ptt only): load \
           advisory bound records from \\$(docv) before tuning and save \
           the grown store back after.  Records are keyed by a catalog \
           fingerprint, so a file from different statistics is rejected \
           (with a warning) rather than silently misused; sharing a file \
           is safe exactly when the catalog fingerprint matches.")

let ddl =
  Arg.(
    value & flag
    & info [ "ddl" ] ~doc:"Also print the recommendation as a DDL script.")

let do_compress =
  Arg.(
    value & flag
    & info [ "compress" ]
        ~doc:"Compress the workload to weighted templates before tuning.")

let explain =
  Arg.(
    value & flag
    & info [ "explain" ]
        ~doc:"Print the chosen plan of every query under the recommendation \
              (ptt only).")

let analyze =
  Arg.(
    value & flag
    & info [ "analyze" ]
        ~doc:"Generate rows matching the statistics and measure the chosen \
              plans: estimated vs actual (ptt only).")

let verbose =
  Arg.(
    value & flag
    & info [ "v"; "verbose" ]
        ~doc:"Enable debug logging (same as --log-level debug).")

let log_level =
  let levels =
    [
      ("quiet", None);
      ("app", Some Logs.App);
      ("error", Some Logs.Error);
      ("warning", Some Logs.Warning);
      ("info", Some Logs.Info);
      ("debug", Some Logs.Debug);
    ]
  in
  Arg.(
    value
    & opt (enum levels) (Some Logs.Warning)
    & info [ "log-level" ] ~docv:"LEVEL"
        ~doc:"Log verbosity: quiet, app, error, warning, info or debug.")

let trace_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE.jsonl"
        ~doc:
          "Write a JSON-lines search trace (ptt only): one event per \
           relaxation iteration with the chosen transformation, predicted \
           \\$(b,delta_cost)/\\$(b,delta_space), penalty, realized \
           cost/size and the cost-bound drift ratio, plus one event per \
           what-if optimizer call.")

let trace_chrome_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-chrome" ] ~docv:"FILE.json"
        ~doc:
          "Write a Chrome trace-event profile of the run (ptt only): the \
           hierarchical span tree on per-domain thread tracks plus \
           counter tracks for what-if calls and latency, per-shard cache \
           hits/misses, frontier size, pool queue depth and GC heap \
           words.  Open the file directly in https://ui.perfetto.dev.")

let metrics =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Print the structured metrics table after tuning (ptt only): \
           what-if traffic, plans patched vs re-optimized, shortcut \
           aborts, per-kind transformation counts, pool sizes and span \
           timings.")

let frontier_csv_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "frontier-csv" ] ~docv:"FILE.csv"
        ~doc:
          "Write the explored (size, cost) points as CSV with a pareto \
           membership column (ptt only).")

let check =
  Arg.(
    value
    & opt ~vopt:(Some `On) (some (enum [ ("on", `On); ("strict", `Strict) ]))
        None
    & info [ "check" ] ~docv:"MODE"
        ~doc:
          "Run the differential invariant checker alongside the search \
           (ptt only): every iteration's §3.3.2 cost bound is compared \
           against what-if re-optimization, every structure's §3.3.1 size \
           against a packing simulation, every configuration against the \
           structural invariants, and realized ΔT/ΔS against the \
           predictions.  Violations are printed, counted in the metrics \
           and emitted as \\$(b,check.violation) trace events.  With \
           \\$(b,--check=strict) any violation makes the exit status \
           non-zero.")

let check_jsonl =
  Arg.(
    value
    & opt (some string) None
    & info [ "check-jsonl" ] ~docv:"FILE.jsonl"
        ~doc:
          "Write the checker's violations and drift histograms as JSON \
           lines (implies nothing about --trace; the two files are \
           independent).")

let cmd =
  let doc = "automatic physical database tuning (relaxation-based)" in
  Cmd.v
    (Cmd.info "tune" ~doc)
    Term.(
      const run $ db $ scale $ schema_file $ queries $ file $ generate
      $ seed $ updates $ tool $ mode $ budget_mb $ iterations $ time_s
      $ jobs $ whatif_budget $ whatif_cache $ ddl $ do_compress $ explain
      $ analyze
      $ verbose $ log_level $ trace_file $ trace_chrome_file $ metrics
      $ frontier_csv_file $ check $ check_jsonl)

let () = exit (Cmd.eval cmd)
