(** [relaxd] — the continuous tuning daemon.

    Reads a JSONL statement stream ([{"qid":...,"sql":...,"weight":...}]
    per line) from stdin or a replay file, maintains a decayed sliding
    workload window, re-tunes incrementally warm-started from the
    deployed configuration, and deploys guarded DDL deltas — rolling back
    automatically when realized window cost drifts past the prediction.

    Examples:
    {v
    tail -f statements.jsonl | relaxd --db tpch --budget-mb 40 --jsonl daemon.jsonl
    relaxd --db bench --replay stream.jsonl --retune-every 16 --state deployed.json
    relaxd --db tpch --replay stream.jsonl --inject-drift 3:10 --guard-margin 0.2
    v}

    Exit codes: 0 on end-of-stream or SIGTERM/SIGINT after a clean final
    re-tune and flush; 2 on usage errors (unreadable replay/schema file,
    bad state file). *)

module D = Relax_daemon
module W = Relax_workloads
module Config = Relax_physical.Config
module Ddl = Relax_physical.Ddl
module T = Relax_tuner
module Obs = Relax_obs
open Cmdliner

type db = Tpch | Ds1 | Bench

let schema_of_db ~scale = function
  | Tpch -> W.Bench_db.tpch_schema ~scale ()
  | Ds1 -> W.Star.schema ~scale ()
  | Bench -> W.Bench_db.schema ~scale ()

let read_file path =
  try In_channel.with_open_bin path In_channel.input_all
  with Sys_error msg ->
    Fmt.epr "relaxd: cannot read %s: %s@." path msg;
    exit 2

let run db scale schema_file replay budget_mb retune_every min_statements
    window decay min_weight rotate_every guard_margin iterations jobs
    whatif_budget cold mode inject_drift state_path jsonl_path verbose
    summary =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (if verbose then Some Logs.Debug else Some Logs.Warning);
  Obs.Shutdown.install ();
  let catalog =
    match schema_file with
    | None -> (schema_of_db ~scale db).W.Generator.catalog
    | Some path ->
      let catalog, _joins = Relax_catalog.Schema_parser.parse (read_file path) in
      catalog
  in
  let budget =
    match budget_mb with
    | None -> infinity
    | Some m -> m *. 1024.0 *. 1024.0
  in
  let opts =
    {
      (D.Daemon.default_options ~space_budget:budget ()) with
      mode =
        (if mode = "indexes" then T.Tuner.Indexes_only
         else T.Tuner.Indexes_and_views);
      retune_every;
      min_statements;
      window_capacity = window;
      decay;
      min_weight;
      rotate_every;
      guard_margin;
      max_iterations = iterations;
      jobs = Option.value jobs ~default:1;
      whatif_budget;
      warm = not cold;
      inject_drift;
      state_path;
    }
  in
  let sink =
    Option.map
      (fun path ->
        try Obs.Trace.file path
        with Sys_error msg ->
          Fmt.epr "relaxd: cannot write %s: %s@." path msg;
          exit 2)
      jsonl_path
  in
  let recorder = Obs.Recorder.create ?sink () in
  let daemon =
    try D.Daemon.create ~recorder catalog opts
    with Failure msg ->
      Fmt.epr "relaxd: %s@." msg;
      exit 2
  in
  let ic =
    match replay with
    | None -> stdin
    | Some path -> (
      try open_in path
      with Sys_error msg ->
        Fmt.epr "relaxd: cannot read %s: %s@." path msg;
        exit 2)
  in
  let report (r : D.Daemon.retune) =
    if summary then
      Fmt.pr "retune %d: %s (%d templates, %d what-if calls, %.2fs)@."
        r.ordinal
        (match r.action with
        | D.Daemon.Steady -> "steady"
        | D.Daemon.Deployed d ->
          Fmt.str "deployed %d DDL statement(s)" (Ddl.delta_cardinal d)
        | D.Daemon.Rejected reasons ->
          Fmt.str "rejected (%s)" (String.concat "; " reasons)
        | D.Daemon.Rolled_back { drift } ->
          Fmt.str "rolled back (drift %.2fx)" drift)
        r.window_templates r.what_if_calls r.elapsed_s
  in
  let finish code =
    Option.iter (fun (r : D.Daemon.retune) -> report r) (D.Daemon.finalize daemon);
    if summary then
      Fmt.pr
        "done: %d statement(s), %d retune(s), %d rollback(s), %d malformed@."
        (D.Daemon.statements_seen daemon)
        (D.Daemon.retunes daemon)
        (D.Daemon.rollbacks daemon)
        (D.Daemon.malformed daemon);
    Option.iter Obs.Trace.close sink;
    if replay <> None then close_in_noerr ic;
    exit code
  in
  match
    Seq.iter
      (fun ev -> Option.iter report (D.Daemon.ingest_event daemon ev))
      (D.Stream.events ic)
  with
  | () -> finish 0
  | exception Obs.Shutdown.Signalled _ ->
    (* graceful shutdown: final re-tune over the residual window, flush
       the JSONL sink, then exit 0 — the clean-service convention *)
    finish 0

(* --- cmdliner wiring ----------------------------------------------------- *)

let db =
  let parse = function
    | "tpch" -> Ok Tpch
    | "ds1" -> Ok Ds1
    | "bench" -> Ok Bench
    | s -> Error (`Msg ("unknown database: " ^ s))
  in
  let print ppf d =
    Fmt.string ppf
      (match d with Tpch -> "tpch" | Ds1 -> "ds1" | Bench -> "bench")
  in
  Arg.(
    value
    & opt (conv (parse, print)) Tpch
    & info [ "db" ] ~docv:"DB" ~doc:"Database: tpch, ds1 or bench.")

let scale =
  Arg.(
    value & opt float 0.02
    & info [ "scale" ] ~docv:"S"
        ~doc:"Database scale factor (1.0 = TPC-H SF-1 row counts).")

let schema_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "schema" ] ~docv:"PATH"
        ~doc:
          "Use a custom database described by a CREATE TABLE script \
           (overrides --db).")

let replay =
  Arg.(
    value
    & opt (some string) None
    & info [ "replay" ] ~docv:"FILE.jsonl"
        ~doc:
          "Replay a recorded statement stream instead of reading stdin; \
           the daemon exits cleanly at end-of-file.")

let budget_mb =
  Arg.(
    value
    & opt (some float) None
    & info [ "budget-mb" ] ~docv:"MB"
        ~doc:"Storage budget in megabytes (absent = unconstrained).")

let retune_every =
  Arg.(
    value & opt int 32
    & info [ "retune-every" ] ~docv:"N"
        ~doc:"Statements between re-tune cycles.")

let min_statements =
  Arg.(
    value & opt int 8
    & info [ "min-statements" ] ~docv:"N"
        ~doc:"No re-tune before this many statements arrived.")

let window =
  Arg.(
    value & opt int 64
    & info [ "window" ] ~docv:"N"
        ~doc:"Window capacity in templates; the lightest is evicted at \
              capacity.")

let decay =
  Arg.(
    value & opt float 0.98
    & info [ "decay" ] ~docv:"F"
        ~doc:"Per-arrival decay factor on template weights (in (0,1]).")

let min_weight =
  Arg.(
    value & opt float 0.05
    & info [ "min-weight" ] ~docv:"F"
        ~doc:"Rotation drop floor: templates decayed below F are dropped.")

let rotate_every =
  Arg.(
    value & opt int 4
    & info [ "rotate-every" ] ~docv:"N"
        ~doc:"Rotate the window every N re-tunes (0 = never): drop faded \
              templates, refresh stale representatives, evict their \
              cached plans.")

let guard_margin =
  Arg.(
    value & opt float 0.25
    & info [ "guard-margin" ] ~docv:"F"
        ~doc:
          "Auto-rollback when realized window cost exceeds the \
           deployment-time prediction by more than this fraction.")

let iterations =
  Arg.(
    value & opt int 200
    & info [ "iterations" ] ~docv:"N"
        ~doc:"Relaxation iteration cap per re-tune.")

let jobs =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the parallel search; 1 = sequential \
           (default).  The delta sequence is identical whatever the \
           value.")

let whatif_budget =
  Arg.(
    value
    & opt (some int) None
    & info [ "whatif-budget" ] ~docv:"N"
        ~doc:
          "Frugal costing: cap the what-if optimizer calls each re-tune \
           may spend (absent = unlimited).")

let cold =
  Arg.(
    value & flag
    & info [ "cold" ]
        ~doc:
          "Tune every cycle from scratch instead of warm-starting from \
           the deployed configuration through the shared what-if cache \
           (for comparison runs; the recommendations are the same, the \
           warm path just spends fewer optimizer calls).")

let mode =
  Arg.(
    value
    & opt (enum [ ("indexes", "indexes"); ("views", "views") ]) "views"
    & info [ "mode" ] ~docv:"MODE"
        ~doc:"What to recommend: indexes only, or indexes and views.")

let inject_drift =
  let parse s =
    match String.split_on_char ':' s with
    | [ n; f ] -> (
      match (int_of_string_opt n, float_of_string_opt f) with
      | Some n, Some f when n > 0 && f > 0.0 -> Ok (Some (n, f))
      | _ -> Error (`Msg "expected N:FACTOR with N > 0 and FACTOR > 0"))
    | _ -> Error (`Msg "expected N:FACTOR, e.g. 3:10")
  in
  let print ppf = function
    | None -> Fmt.string ppf "off"
    | Some (n, f) -> Fmt.pf ppf "%d:%g" n f
  in
  Arg.(
    value
    & opt (conv (parse, print)) None
    & info [ "inject-drift" ] ~docv:"N:FACTOR"
        ~doc:
          "Fault injection (tests/CI): at re-tune ordinal N multiply the \
           realized window cost by FACTOR once, to exercise the \
           auto-rollback path deterministically.")

let state_path =
  Arg.(
    value
    & opt (some string) None
    & info [ "state" ] ~docv:"FILE.json"
        ~doc:
          "Persist the deployed configuration's JSON here on every \
           deploy/rollback/shutdown, and load it back on startup.")

let jsonl_path =
  Arg.(
    value
    & opt (some string) None
    & info [ "jsonl" ] ~docv:"FILE.jsonl"
        ~doc:
          "Write daemon events as JSON lines: one daemon.retune event \
           per cycle (action, costs, what-if spend, DDL), plus \
           daemon.malformed and daemon.shutdown.")

let verbose =
  Arg.(
    value & flag
    & info [ "v"; "verbose" ] ~doc:"Enable debug logging.")

let summary =
  Arg.(
    value & flag
    & info [ "summary" ]
        ~doc:"Print a one-line report per re-tune cycle and a final \
              tally to stdout.")

let cmd =
  let doc = "continuous physical database tuning daemon" in
  Cmd.v
    (Cmd.info "relaxd" ~doc)
    Term.(
      const run $ db $ scale $ schema_file $ replay $ budget_mb
      $ retune_every $ min_statements $ window $ decay $ min_weight
      $ rotate_every $ guard_margin $ iterations $ jobs $ whatif_budget
      $ cold $ mode $ inject_drift $ state_path $ jsonl_path $ verbose
      $ summary)

let () = exit (Cmd.eval cmd)
