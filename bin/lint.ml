(** relax-lint driver: run the interprocedural effect analysis and the
    L1–L8 rules over the cmt files of a build tree (normally [lib/], via
    the [@lint] dune alias).

    Exit status is non-zero when any unwaived finding remains, so
    [dune build @lint] doubles as the CI gate.  Findings are printed as
    human-readable lines and, with [--jsonl] / [--sarif], written as
    JSONL and SARIF 2.1.0 for the CI artifact and GitHub code scanning.
    [--effects-dump FILE] writes the solved per-node effect-signature
    table as JSONL; the analysis is deterministic, so two runs over the
    same build tree produce byte-identical dumps. *)

let () =
  let root = ref "lib" in
  let jsonl = ref "" in
  let sarif = ref "" in
  let effects_dump = ref "" in
  let quiet = ref false in
  let assume_parallel = ref false in
  let args =
    [
      ("--root", Arg.Set_string root, "DIR directory scanned for .cmt files (default: lib)");
      ("--jsonl", Arg.Set_string jsonl, "FILE write findings as JSONL");
      ("--sarif", Arg.Set_string sarif, "FILE write findings as SARIF 2.1.0");
      ( "--effects-dump",
        Arg.Set_string effects_dump,
        "FILE write the solved effect-signature table as JSONL" );
      ("--quiet", Arg.Set quiet, " suppress the per-finding text output");
      ( "--assume-parallel",
        Arg.Set assume_parallel,
        " treat every module as pool-reachable (debugging aid)" );
    ]
  in
  Arg.parse args
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "lint [--root DIR] [--jsonl FILE] [--sarif FILE] [--effects-dump FILE]";
  (* The cmt files live in the build tree.  Under the [@lint] alias the
     action already runs from [_build/default], so [--root lib] is right
     as given; under [dune exec] from the workspace root it is not, so
     fall back to the build tree this very binary was built in. *)
  let run ~root ~src_root =
    Relax_lint.Engine.run
      {
        (Relax_lint.Engine.default ~root) with
        src_root;
        assume_parallel = !assume_parallel;
      }
  in
  let attempted = ref [ !root ] in
  let result =
    let r = run ~root:!root ~src_root:"." in
    if r.modules_checked > 0 || not (Filename.is_relative !root) then r
    else begin
      let build_root = Filename.dirname (Filename.dirname Sys.executable_name) in
      let fallback = Filename.concat build_root !root in
      attempted := !attempted @ [ fallback ];
      run ~root:fallback ~src_root:build_root
    end
  in
  if result.modules_checked = 0 then begin
    (* empty scan is its own exit code (2, not the findings exit 1 and
       not "clean" 0) and names every root searched, so an invocation
       order that runs lint before the library build is diagnosable *)
    Fmt.epr
      "relax-lint: no cmt files found; searched build-tree root(s): %s — \
       build first (dune build) or point --root at a build tree@."
      (String.concat ", " !attempted);
    exit 2
  end;
  let module F = Relax_lint.Finding in
  if not !quiet then
    List.iter (fun f -> Fmt.pr "%a@." F.pp f) result.findings;
  if !jsonl <> "" then begin
    let oc = open_out !jsonl in
    List.iter
      (fun f ->
        output_string oc (Relax_obs.Json.to_string (F.to_json f));
        output_char oc '\n')
      (result.findings @ result.waived);
    let summary =
      Relax_obs.Json.Obj
        [
          ("event", Relax_obs.Json.String "lint.summary");
          ("modules", Relax_obs.Json.Int result.modules_checked);
          ("findings", Relax_obs.Json.Int (List.length result.findings));
          ("waived", Relax_obs.Json.Int (List.length result.waived));
          ( "parallel_reachable",
            Relax_obs.Json.Int (List.length result.parallel_reachable) );
        ]
    in
    output_string oc (Relax_obs.Json.to_string summary);
    output_char oc '\n';
    close_out oc
  end;
  if !sarif <> "" then
    Relax_lint.Sarif.write ~path:!sarif ~findings:result.findings
      ~waived:result.waived;
  if !effects_dump <> "" then begin
    let oc = open_out !effects_dump in
    List.iter
      (fun row ->
        output_string oc
          (Relax_obs.Json.to_string (Relax_lint.Engine.sig_row_to_json row));
        output_char oc '\n')
      result.signatures;
    close_out oc
  end;
  Fmt.pr "relax-lint: %d module(s), %d finding(s), %d waived, %d in the \
          parallel closure@."
    result.modules_checked
    (List.length result.findings)
    (List.length result.waived)
    (List.length result.parallel_reachable);
  if result.findings <> [] then exit 1
