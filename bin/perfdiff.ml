(** [perfdiff] — compare two bench JSON outputs against relative
    thresholds.

    {v
    perfdiff [--counter-tolerance F] [--time-tolerance F] BASELINE CURRENT
    v}

    Both files use the bench JSON schema written by [bench/main.exe micro]
    ([BENCH_parallel.json], [BENCH_frugal.json]); runs are matched by
    their string [label] field when present, else by [jobs].  Work
    counters (what-if calls, cache hits, configurations evaluated, the
    frugality counters when both sides carry them) are checked against
    [--counter-tolerance] (default 0.10 = 10 %), wall-clock metrics
    (elapsed, throughput) against [--time-tolerance] (default 0.50 =
    50 %).  [what_if_calls] is a hard gate; everything else is soft.

    Exit codes: 0 = all metrics within thresholds, 1 = soft regression(s)
    only, 2 = malformed or missing input (unreadable file, parse error,
    no runs, mismatched run sets), 3 = hard regression(s)
    ([what_if_calls] breached).  CI soft-fails on 1 and hard-fails on 2
    and 3. *)

let usage = "perfdiff [--counter-tolerance F] [--time-tolerance F] BASELINE CURRENT"

let () =
  let counter_tol = ref 0.10 in
  let time_tol = ref 0.50 in
  let files = ref [] in
  let spec =
    [
      ( "--counter-tolerance",
        Arg.Set_float counter_tol,
        "F relative tolerance for work counters (default 0.10)" );
      ( "--time-tolerance",
        Arg.Set_float time_tol,
        "F relative tolerance for wall-clock metrics (default 0.50)" );
    ]
  in
  Arg.parse spec (fun f -> files := f :: !files) usage;
  match List.rev !files with
  | [ baseline; current ] ->
    let result =
      Relax_obs.Perfdiff.compare_files ~counter_tol:!counter_tol
        ~time_tol:!time_tol ~baseline ~current ()
    in
    (match result with
    | Error msg -> Printf.eprintf "perfdiff: malformed input: %s\n" msg
    | Ok { lines; regressions; hard_regressions } ->
      List.iter print_endline lines;
      Printf.printf "%d metric(s) compared, %d regression(s), %d hard\n"
        (List.length lines) (List.length regressions)
        (List.length hard_regressions));
    exit (Relax_obs.Perfdiff.exit_code result)
  | _ ->
    prerr_endline usage;
    exit 2
