(** [perfdiff] — compare two bench JSON outputs against relative
    thresholds, or assert multi-core scaling on one.

    {v
    perfdiff [--counter-tolerance F] [--time-tolerance F] BASELINE CURRENT
    perfdiff --scaling [--time-tolerance F] BENCH_parallel.json
    v}

    Both files use the bench JSON schema written by [bench/main.exe micro]
    ([BENCH_parallel.json], [BENCH_frugal.json]); runs are matched by
    their string [label] field when present, else by [jobs].  Work
    counters (what-if calls, cache hits, configurations evaluated, the
    frugality counters when both sides carry them) are checked against
    [--counter-tolerance] (default 0.10 = 10 %), wall-clock metrics
    (elapsed, throughput) against [--time-tolerance] (default 0.50 =
    50 %).  [what_if_calls] is a hard gate; everything else is soft.
    When the two files carry different [host] blocks (core count,
    compiler version), wall-clock gates are skipped with a [::warning]
    annotation — timing across host shapes is noise — while counter
    gates stay hard.

    [--scaling] switches to the single-file multi-core gate: the
    [jobs=2] run must not be slower than [jobs=1] (within the time
    tolerance, default 0.10 in this mode) and the sweep's
    [identical_results] verdict must be true.  On a host reporting fewer
    than 2 cores the wall-clock half is waived with a [::warning].

    Exit codes: 0 = within thresholds (or waived), 1 = soft
    regression(s) only, 2 = malformed or missing input, 3 = hard
    regression(s) (what_if_calls breached; scaling or determinism failed
    under [--scaling]).  CI soft-fails on 1 and hard-fails on 2 and 3. *)

let usage =
  "perfdiff [--counter-tolerance F] [--time-tolerance F] BASELINE CURRENT\n\
   perfdiff --scaling [--time-tolerance F] BENCH_parallel.json"

let () =
  let counter_tol = ref 0.10 in
  let time_tol = ref None in
  let scaling = ref false in
  let files = ref [] in
  let spec =
    [
      ( "--counter-tolerance",
        Arg.Set_float counter_tol,
        "F relative tolerance for work counters (default 0.10)" );
      ( "--time-tolerance",
        Arg.Float (fun f -> time_tol := Some f),
        "F relative tolerance for wall-clock metrics (default 0.50; 0.10 \
         under --scaling)" );
      ( "--scaling",
        Arg.Set scaling,
        " single-file mode: assert jobs=2 is no slower than jobs=1 and \
         the sweep stayed deterministic" );
    ]
  in
  Arg.parse spec (fun f -> files := f :: !files) usage;
  match (!scaling, List.rev !files) with
  | true, [ current ] ->
    let result =
      Relax_obs.Perfdiff.check_scaling_file
        ?time_tol:!time_tol current
    in
    (match result with
    | Error msg -> Printf.eprintf "perfdiff: malformed input: %s\n" msg
    | Ok { s_lines; s_failures; s_skipped } ->
      List.iter print_endline s_lines;
      (match s_skipped with
      | Some reason -> Printf.printf "::warning::%s\n" reason
      | None -> ());
      Printf.printf "%d scaling assertion(s), %d failure(s)\n"
        (List.length s_lines) (List.length s_failures));
    exit (Relax_obs.Perfdiff.scaling_exit_code result)
  | false, [ baseline; current ] ->
    let result =
      Relax_obs.Perfdiff.compare_files ~counter_tol:!counter_tol
        ~time_tol:(Option.value ~default:0.50 !time_tol)
        ~baseline ~current ()
    in
    (match result with
    | Error msg -> Printf.eprintf "perfdiff: malformed input: %s\n" msg
    | Ok { lines; regressions; hard_regressions; skipped } ->
      List.iter print_endline lines;
      (match skipped with
      | summary :: _ -> Printf.printf "::warning::%s\n" summary
      | [] -> ());
      Printf.printf
        "%d metric(s) compared, %d regression(s), %d hard, %d skipped\n"
        (List.length lines) (List.length regressions)
        (List.length hard_regressions)
        (List.length skipped));
    exit (Relax_obs.Perfdiff.exit_code result)
  | _ ->
    prerr_endline usage;
    exit 2
