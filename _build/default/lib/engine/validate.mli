(** Cost-model validation: optimize a workload under a configuration, then
    execute the chosen plans against real rows and compare estimated with
    measured. *)

type query_report = {
  qid : string;
  estimated_cost : float;
  measured_cost : float;
  estimated_rows : float;
  true_rows : float;
}

type report = {
  queries : query_report list;
  estimated_total : float;
  measured_total : float;
}

val run :
  Data.t -> Relax_physical.Config.t -> Relax_sql.Query.workload -> report
(** Select statements only; views used by the chosen plans are materialized
    on demand; queries with non-executable predicates are skipped. *)

val same_winner :
  Data.t ->
  Relax_physical.Config.t ->
  Relax_physical.Config.t ->
  Relax_sql.Query.workload ->
  bool
(** Does the cost model rank the two configurations the way measured
    execution does? *)

val q_error : report -> float
(** Geometric-mean cardinality estimation error. *)

val pp_report : Format.formatter -> report -> unit
