lib/engine/measure.mli: Data Eval Relax_optimizer
