lib/engine/data.mli: Hashtbl Relax_catalog Relax_sql
