lib/engine/data.ml: Array Column Float Hashtbl List Printf Relax_catalog Relax_sql
