lib/engine/eval.ml: Array Column Data Float Hashtbl List Option Relax_physical Relax_sql Seq Value
