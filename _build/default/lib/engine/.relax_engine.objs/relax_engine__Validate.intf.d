lib/engine/validate.mli: Data Format Relax_physical Relax_sql
