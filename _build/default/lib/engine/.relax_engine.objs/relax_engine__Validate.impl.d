lib/engine/validate.ml: Data Eval Float Fmt Hashtbl List Measure Relax_optimizer Relax_physical Relax_sql
