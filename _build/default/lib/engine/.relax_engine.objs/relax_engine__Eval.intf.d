lib/engine/eval.mli: Data Relax_physical Relax_sql
