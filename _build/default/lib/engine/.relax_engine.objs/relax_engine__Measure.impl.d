lib/engine/measure.ml: Array Column Column_set Data Eval Float Hashtbl List Relax_optimizer Relax_physical Relax_sql
