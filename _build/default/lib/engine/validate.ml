(** Cost-model validation: optimize a workload under a configuration, then
    execute the chosen plans against real rows and compare.

    Reports per-query estimated vs measured cost and estimated vs true
    output cardinality, plus the statistic that matters for physical design:
    whether the model ranks configurations in the same order real execution
    does ("who wins" preservation). *)

module Query = Relax_sql.Query
module Config = Relax_physical.Config
module O = Relax_optimizer

type query_report = {
  qid : string;
  estimated_cost : float;
  measured_cost : float;
  estimated_rows : float;
  true_rows : float;
}

type report = {
  queries : query_report list;
  estimated_total : float;
  measured_total : float;
}

(** Validate one configuration against one workload (select statements
    only; update shells have no plan to execute). *)
let run (db : Data.t) (config : Config.t) (workload : Query.workload) : report
    =
  let env = O.Env.make db.catalog config in
  (* materialize only the views the chosen plans actually read *)
  let ensure_views plan =
    List.iter
      (fun (a : O.Plan.access_info) ->
        match Config.find_view config a.rel with
        | Some (v, _) when not (Hashtbl.mem db.relations a.rel) ->
          ignore (Eval.materialize_view db v)
        | _ -> ())
      (O.Plan.accesses plan)
  in
  let queries =
    List.filter_map
      (fun (e : Query.entry) ->
        match e.stmt with
        | Select sq -> (
          let plan = O.Optimizer.optimize db.catalog config sq in
          ensure_views plan;
          match Measure.plan db env plan with
          | m ->
            Some
              {
                qid = e.qid;
                estimated_cost = plan.cost;
                measured_cost = m.cost;
                estimated_rows = plan.rows;
                true_rows = float_of_int (Eval.cardinality m.rows);
              }
          | exception (Eval.Unsupported _ | Measure.Unmeasurable _) -> None)
        | Dml _ -> None)
      workload
  in
  {
    queries;
    estimated_total =
      List.fold_left (fun a q -> a +. q.estimated_cost) 0.0 queries;
    measured_total =
      List.fold_left (fun a q -> a +. q.measured_cost) 0.0 queries;
  }

(** Does the cost model pick the same winner real execution picks?
    Compares two configurations on one workload. *)
let same_winner (db : Data.t) c1 c2 workload =
  let r1 = run db c1 workload and r2 = run db c2 workload in
  let est = compare r1.estimated_total r2.estimated_total in
  let msr = compare r1.measured_total r2.measured_total in
  (est = 0 && msr = 0) || est * msr > 0

(** Geometric-mean cardinality estimation error (q-error). *)
let q_error (r : report) =
  let logs =
    List.filter_map
      (fun q ->
        if q.true_rows <= 0.0 || q.estimated_rows <= 0.0 then None
        else
          Some
            (Float.abs (Float.log (q.estimated_rows /. q.true_rows))))
      r.queries
  in
  match logs with
  | [] -> 1.0
  | _ ->
    Float.exp
      (List.fold_left ( +. ) 0.0 logs /. float_of_int (List.length logs))

let pp_report ppf (r : report) =
  Fmt.pf ppf "@[<v>%-10s %12s %12s %12s %12s@," "query" "est cost"
    "measured" "est rows" "true rows";
  List.iter
    (fun q ->
      Fmt.pf ppf "%-10s %12.1f %12.1f %12.0f %12.0f@," q.qid q.estimated_cost
        q.measured_cost q.estimated_rows q.true_rows)
    r.queries;
  Fmt.pf ppf "%-10s %12.1f %12.1f   (q-error %.2f)@," "total"
    r.estimated_total r.measured_total (q_error r);
  Fmt.pf ppf "@]"
