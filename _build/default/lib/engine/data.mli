(** Concrete table data, generated from the catalog's column distributions.

    The tuning pipeline never touches rows (like the paper's tools); this
    engine exists to {e validate} it: with real rows the validator measures
    true cardinalities and page accesses against the optimizer's
    estimates. *)

open Relax_sql.Types

(** One relation's rows: schema plus row-major float data (values use the
    same order-preserving float embedding as the statistics). *)
type relation = {
  rel_name : string;
  schema : column array;
  rows : float array array;
}

val column_index : relation -> column -> int
(** @raise Invalid_argument for an unknown column. *)

val row_count : relation -> int

val generate_table :
  ?seed:int -> Relax_catalog.Catalog.t -> string -> relation
(** Deterministically draw one base table's rows from its column
    distributions (integer-typed columns round to integers so equality
    predicates can match). *)

(** An in-memory database: lazily generated base tables plus registered
    materialized-view contents. *)
type t = {
  catalog : Relax_catalog.Catalog.t;
  seed : int;
  relations : (string, relation) Hashtbl.t;
}

val create : ?seed:int -> Relax_catalog.Catalog.t -> t

val relation : t -> string -> relation
(** Fetch (generating on first access).  @raise Invalid_argument for
    unknown relations. *)

val register : t -> relation -> unit
(** Register a computed relation (a materialized view's contents). *)

val mem : t -> string -> bool
