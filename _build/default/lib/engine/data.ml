(** Concrete table data, generated from the catalog's column
    distributions.

    The tuning pipeline itself never touches rows (like the paper's tools);
    this engine exists to {e validate} it: with real rows we can measure
    true cardinalities and page accesses and compare them against the
    optimizer's estimates (the [validate] benchmark). *)

open Relax_sql.Types
module Catalog = Relax_catalog.Catalog
module Rng = Relax_catalog.Rng
module D = Relax_catalog.Distribution

(** One relation's rows: column-name schema plus row-major float data
    (values use the same order-preserving float embedding as the
    statistics). *)
type relation = {
  rel_name : string;
  schema : column array;
  rows : float array array;
}

let column_index (r : relation) (c : column) =
  let n = Array.length r.schema in
  let rec go i =
    if i >= n then
      invalid_arg
        (Printf.sprintf "Data: %s has no column %s" r.rel_name
           (Column.to_string c))
    else if Column.equal r.schema.(i) c then i
    else go (i + 1)
  in
  go 0

let row_count (r : relation) = Array.length r.rows

(** Generate one base table from its catalog definition. *)
let generate_table ?(seed = 7) (cat : Catalog.t) (name : string) : relation =
  let td = Catalog.table_exn cat name in
  let schema =
    Array.of_list (List.map (fun (c : Catalog.column_def) -> Column.make name c.cname) td.cols)
  in
  let dists = Array.of_list (List.map (fun (c : Catalog.column_def) -> c.dist) td.cols) in
  let rngs =
    Array.init (Array.length dists) (fun i ->
        Rng.create (seed + Hashtbl.hash (name, i)))
  in
  let rows =
    Array.init td.rows (fun row ->
        Array.init (Array.length dists) (fun i ->
            (* integers stay integral so equality predicates can hit *)
            let v = D.draw dists.(i) rngs.(i) ~row in
            match (List.nth td.cols i).ctype with
            | Int | Date | Char _ | Varchar _ -> Float.round v
            | Float -> v))
  in
  { rel_name = name; schema; rows }

(** An in-memory database: lazily generated base tables plus materialized
    views (registered by the validator). *)
type t = {
  catalog : Catalog.t;
  seed : int;
  relations : (string, relation) Hashtbl.t;
}

let create ?(seed = 7) catalog = { catalog; seed; relations = Hashtbl.create 16 }

let relation t name : relation =
  match Hashtbl.find_opt t.relations name with
  | Some r -> r
  | None ->
    if not (Catalog.mem_table t.catalog name) then
      invalid_arg ("Data: unknown relation " ^ name);
    let r = generate_table ~seed:t.seed t.catalog name in
    Hashtbl.replace t.relations name r;
    r

(** Register a computed relation (a materialized view's contents). *)
let register t (r : relation) = Hashtbl.replace t.relations r.rel_name r

let mem t name = Hashtbl.mem t.relations name || Catalog.mem_table t.catalog name
