(** Logical evaluation of predicates, expressions and whole SPJG blocks
    against concrete rows: the reference semantics the measurement layer
    compares optimizer estimates against. *)

open Relax_sql.Types

(** A bag of rows with a schema. *)
type rowset = {
  schema : column array;
  rows : float array array;
}

val of_relation : Data.relation -> rowset
val cardinality : rowset -> int

val index_of : rowset -> column -> int
(** @raise Invalid_argument for an unknown column. *)

exception Unsupported of string
(** Raised for constructs with no numeric execution (LIKE). *)

val eval_expr : rowset -> float array -> Relax_sql.Expr.t -> float
val eval_pred : rowset -> float array -> Relax_sql.Expr.t -> bool
val eval_range : rowset -> float array -> Relax_sql.Predicate.range -> bool

val filter :
  rowset ->
  ranges:Relax_sql.Predicate.range list ->
  others:Relax_sql.Expr.t list ->
  rowset

val count_matching :
  rowset ->
  ranges:Relax_sql.Predicate.range list ->
  others:Relax_sql.Expr.t list ->
  int

val matching_indices :
  rowset ->
  ranges:Relax_sql.Predicate.range list ->
  others:Relax_sql.Expr.t list ->
  int list
(** Row indices of the matches (for page-locality measurements). *)

val hash_join : rowset -> rowset -> Relax_sql.Predicate.join list -> rowset
(** Exact equi-join; empty predicate list = cartesian product. *)

val group_by :
  rowset ->
  keys:column list ->
  aggs:Relax_sql.Query.select_item list ->
  rowset
(** Exact grouping; aggregate outputs are named under the synthetic
    ["$agg"] relation via {!Relax_physical.View.item_name}. *)

val spjg : Data.t -> Relax_sql.Query.spjg -> rowset
(** Execute a whole block exactly: the reference result. *)

val materialize_view : Data.t -> Relax_physical.View.t -> Data.relation
(** Execute a view's definition and register the result so later accesses
    measure against real view rows. *)
