(** Logical evaluation of predicates, expressions and whole SPJG blocks
    against concrete rows: the reference semantics the measurement layer
    compares the optimizer's estimates against. *)

open Relax_sql.Types
module Query = Relax_sql.Query
module Predicate = Relax_sql.Predicate
module Expr = Relax_sql.Expr

(** A bag of rows with a schema. *)
type rowset = {
  schema : column array;
  rows : float array array;
}

let of_relation (r : Data.relation) : rowset =
  { schema = r.schema; rows = r.rows }

let cardinality rs = Array.length rs.rows

let index_of (rs : rowset) (c : column) =
  let n = Array.length rs.schema in
  let rec go i =
    if i >= n then
      invalid_arg ("Eval: no column " ^ Column.to_string c)
    else if Column.equal rs.schema.(i) c then i
    else go (i + 1)
  in
  go 0

(* --- scalar evaluation ---------------------------------------------------- *)

exception Unsupported of string

let rec eval_expr (rs : rowset) (row : float array) (e : Expr.t) : float =
  match e with
  | Col c -> row.(index_of rs c)
  | Const v -> Value.to_float v
  | Neg e -> -.eval_expr rs row e
  | Bin (op, a, b) -> (
    let x = eval_expr rs row a and y = eval_expr rs row b in
    match op with
    | Add -> x +. y
    | Sub -> x -. y
    | Mul -> x *. y
    | Div -> if y = 0.0 then 0.0 else x /. y)
  | Cmp _ | And _ | Or _ | Not _ | Like _ | In_list _ ->
    if eval_pred rs row e then 1.0 else 0.0

and eval_pred (rs : rowset) (row : float array) (e : Expr.t) : bool =
  match e with
  | Cmp (op, a, b) -> (
    let x = eval_expr rs row a and y = eval_expr rs row b in
    match op with
    | Eq -> x = y
    | Neq -> x <> y
    | Lt -> x < y
    | Le -> x <= y
    | Gt -> x > y
    | Ge -> x >= y)
  | And (a, b) -> eval_pred rs row a && eval_pred rs row b
  | Or (a, b) -> eval_pred rs row a || eval_pred rs row b
  | Not a -> not (eval_pred rs row a)
  | In_list (a, vs) ->
    let x = eval_expr rs row a in
    List.exists (fun v -> Value.to_float v = x) vs
  | Like _ -> raise (Unsupported "LIKE is not executable on numeric data")
  | Col _ | Const _ | Neg _ | Bin _ -> eval_expr rs row e <> 0.0

let eval_range (rs : rowset) (row : float array) (r : Predicate.range) : bool =
  let x = row.(index_of rs r.rcol) in
  (match r.lo with
  | None -> true
  | Some b ->
    let v = Value.to_float b.value in
    if b.inclusive then x >= v else x > v)
  && (match r.hi with
     | None -> true
     | Some b ->
       let v = Value.to_float b.value in
       if b.inclusive then x <= v else x < v)

(** Filter a rowset by classified conjuncts. *)
let filter (rs : rowset) ~(ranges : Predicate.range list)
    ~(others : Expr.t list) : rowset =
  let keep row =
    List.for_all (eval_range rs row) ranges
    && List.for_all (eval_pred rs row) others
  in
  { rs with rows = Array.of_seq (Seq.filter keep (Array.to_seq rs.rows)) }

(** Count without materializing. *)
let count_matching (rs : rowset) ~ranges ~others =
  Array.fold_left
    (fun acc row ->
      if
        List.for_all (eval_range rs row) ranges
        && List.for_all (eval_pred rs row) others
      then acc + 1
      else acc)
    0 rs.rows

(** Matching row indices (for page-locality measurements). *)
let matching_indices (rs : rowset) ~ranges ~others : int list =
  let acc = ref [] in
  Array.iteri
    (fun i row ->
      if
        List.for_all (eval_range rs row) ranges
        && List.for_all (eval_pred rs row) others
      then acc := i :: !acc)
    rs.rows;
  List.rev !acc

(* --- joins ----------------------------------------------------------------- *)

(** Exact hash equi-join of two rowsets on the given predicates (schemas
    concatenate). *)
let hash_join (l : rowset) (r : rowset) (joins : Predicate.join list) : rowset
    =
  let schema = Array.append l.schema r.schema in
  if joins = [] then begin
    (* cartesian product *)
    let rows =
      Array.concat
        (Array.to_list
           (Array.map
              (fun lrow -> Array.map (fun rrow -> Array.append lrow rrow) r.rows)
              l.rows))
    in
    { schema; rows }
  end
  else begin
    let on_left (j : Predicate.join) =
      Array.exists (Column.equal j.left) l.schema
    in
    let key_cols_l, key_cols_r =
      List.split
        (List.map
           (fun (j : Predicate.join) ->
             if on_left j then (index_of l j.left, index_of r j.right)
             else (index_of l j.right, index_of r j.left))
           joins)
    in
    let key cols row = List.map (fun i -> row.(i)) cols in
    let tbl = Hashtbl.create (Array.length l.rows) in
    Array.iter
      (fun lrow ->
        let k = key key_cols_l lrow in
        Hashtbl.add tbl k lrow)
      l.rows;
    let out = ref [] in
    Array.iter
      (fun rrow ->
        let k = key key_cols_r rrow in
        List.iter
          (fun lrow -> out := Array.append lrow rrow :: !out)
          (Hashtbl.find_all tbl k))
      r.rows;
    { schema; rows = Array.of_list !out }
  end

(* --- grouping ---------------------------------------------------------------- *)

let apply_agg (f : Query.agg_fn) (values : float list) : float =
  match (f, values) with
  | Count, vs -> float_of_int (List.length vs)
  | Sum, vs -> List.fold_left ( +. ) 0.0 vs
  | Min, v :: vs -> List.fold_left Float.min v vs
  | Max, v :: vs -> List.fold_left Float.max v vs
  | Avg, (_ :: _ as vs) ->
    List.fold_left ( +. ) 0.0 vs /. float_of_int (List.length vs)
  | (Min | Max | Avg), [] -> 0.0

(** Exact group-by: output schema is [keys] then one pseudo-column per
    aggregate item (named via {!Relax_physical.View.item_name} under a
    synthetic relation ["$agg"]). *)
let group_by (rs : rowset) ~(keys : column list)
    ~(aggs : Query.select_item list) : rowset =
  let key_idx = List.map (index_of rs) keys in
  let tbl : (float list, float array list) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun row ->
      let k = List.map (fun i -> row.(i)) key_idx in
      let prev = Option.value ~default:[] (Hashtbl.find_opt tbl k) in
      Hashtbl.replace tbl k (row :: prev))
    rs.rows;
  let agg_items =
    List.filter_map
      (function Query.Item_agg (f, arg) -> Some (f, arg) | Query.Item_col _ -> None)
      aggs
  in
  let schema =
    Array.of_list
      (keys
      @ List.map
          (fun (f, arg) ->
            Column.make "$agg"
              (Relax_physical.View.item_name (Query.Item_agg (f, arg))))
          agg_items)
  in
  let rows =
    Hashtbl.fold
      (fun k members acc ->
        let agg_vals =
          List.map
            (fun (f, arg) ->
              match arg with
              | None -> float_of_int (List.length members)
              | Some c ->
                let i = index_of rs c in
                apply_agg f (List.map (fun row -> row.(i)) members))
            agg_items
        in
        Array.of_list (k @ agg_vals) :: acc)
      tbl []
  in
  { schema; rows = Array.of_list rows }

(* --- whole blocks ------------------------------------------------------------ *)

(** Execute an SPJG block exactly: the reference result. *)
let spjg (db : Data.t) (q : Query.spjg) : rowset =
  let joined, applied =
    match q.tables with
    | [] -> invalid_arg "Eval.spjg: no tables"
    | first :: rest ->
      (* join in FROM order, applying whichever join predicates connect *)
      List.fold_left
        (fun (acc, applied) t ->
          let next = of_relation (Data.relation db t) in
          let connecting =
            List.filter
              (fun (j : Predicate.join) ->
                let has rs c = Array.exists (Column.equal c) rs.schema in
                (has acc j.left && has next j.right)
                || (has acc j.right && has next j.left))
              q.joins
          in
          (hash_join acc next connecting, connecting @ applied))
        (of_relation (Data.relation db first), [])
        rest
  in
  (* join predicates closing cycles between already-joined tables *)
  let residual_joins =
    List.filter_map
      (fun (j : Predicate.join) ->
        if Predicate.join_mem j applied then None
        else Some (Predicate.join_to_expr j))
      q.joins
  in
  let filtered =
    filter joined ~ranges:q.ranges ~others:(q.others @ residual_joins)
  in
  if q.group_by <> [] || Query.has_aggregates q then
    group_by filtered ~keys:q.group_by ~aggs:q.select
  else filtered

(** Materialize a view's contents and register it in the database so later
    accesses measure against real view rows.  The relation's schema uses the
    view's mangled output columns. *)
let materialize_view (db : Data.t) (v : Relax_physical.View.t) : Data.relation
    =
  let name = Relax_physical.View.name v in
  let def = Relax_physical.View.definition v in
  let rs = spjg db def in
  (* map block-output schema to view column names, in select order *)
  let module View = Relax_physical.View in
  let out_schema =
    Array.of_list
      (List.map (fun (_, it) -> View.column_of_item v it) (View.outputs v))
  in
  let source_index (it : Query.select_item) =
    match it with
    | Query.Item_col c -> index_of rs c
    | Query.Item_agg (f, arg) ->
      index_of rs
        (Column.make "$agg" (View.item_name (Query.Item_agg (f, arg))))
  in
  let idxs = List.map (fun (_, it) -> source_index it) (View.outputs v) in
  let rows =
    Array.map (fun row -> Array.of_list (List.map (fun i -> row.(i)) idxs)) rs.rows
  in
  let r = { Data.rel_name = name; schema = out_schema; rows } in
  Data.register db r;
  r
