(** Measured execution: walk an optimizer plan against real rows, computing
    exact intermediate cardinalities and page accesses, priced with the
    optimizer's own cost constants (so estimated-vs-measured differences
    isolate cardinality error and page locality, not unit mismatches). *)

type measured = {
  rows : Eval.rowset;  (** the exact result of the sub-plan *)
  cost : float;  (** measured cost in the optimizer's units *)
}

exception Unmeasurable of string

val access : Data.t -> Relax_optimizer.Env.t -> Relax_optimizer.Plan.access_info -> measured
(** Measure one single-relation access exactly (view accesses alias their
    plain outputs with the base columns they expose, so upstream plan nodes
    resolve). *)

val plan : Data.t -> Relax_optimizer.Env.t -> Relax_optimizer.Plan.t -> measured
(** Measure a whole plan.
    @raise Unmeasurable on malformed plans.
    @raise Eval.Unsupported for non-executable predicates. *)
