(** Predicate classification and range algebra.

    Following the paper, the conjuncts of a WHERE clause are divided into
    three classes:
    - {b join predicates}: column = column equi-joins across tables;
    - {b range predicates}: sargable single-column comparisons against
      constants (equality is a degenerate range);
    - {b other predicates}: everything else (non-sargable).

    Range predicates support the operations the relaxation engine needs:
    intersection (conjunction of predicates on the same column), union
    ("merging" same-column ranges when merging two view definitions, §3.1.2),
    and implication (the subsumption test of view matching). *)

open Types

(** One endpoint of a range. *)
type bound = { value : value; inclusive : bool }

let bound ?(inclusive = true) value = { value; inclusive }

(** A sargable conjunct: [lo <=(<) col <=(<) hi].  [None] means unbounded on
    that side.  Equality is encoded as two inclusive bounds with the same
    value. *)
type range = { rcol : column; lo : bound option; hi : bound option }

(** An equi-join conjunct, normalized so that [left <= right] under column
    order; this makes structural comparison of join sets order-insensitive. *)
type join = { left : column; right : column }

let make_join a b =
  if Column.compare a b <= 0 then { left = a; right = b }
  else { left = b; right = a }

let join_equal j1 j2 =
  Column.equal j1.left j2.left && Column.equal j1.right j2.right

let join_mem j js = List.exists (join_equal j) js

let range_eq col v = { rcol = col; lo = Some (bound v); hi = Some (bound v) }

let range ?lo ?hi col = { rcol = col; lo; hi }

(** Is this range a single-point equality predicate? *)
let is_equality r =
  match (r.lo, r.hi) with
  | Some l, Some h -> l.inclusive && h.inclusive && Value.equal l.value h.value
  | _ -> false

let is_unbounded r = r.lo = None && r.hi = None

(* Pick the tighter of two bounds; [side] selects the max (for lows) or the
   min (for highs). *)
let tighter_low a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some x, Some y ->
    let c = Value.compare x.value y.value in
    if c > 0 then Some x
    else if c < 0 then Some y
    else Some { x with inclusive = x.inclusive && y.inclusive }

let tighter_high a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some x, Some y ->
    let c = Value.compare x.value y.value in
    if c < 0 then Some x
    else if c > 0 then Some y
    else Some { x with inclusive = x.inclusive && y.inclusive }

let looser_low a b =
  match (a, b) with
  | None, _ | _, None -> None
  | Some x, Some y ->
    let c = Value.compare x.value y.value in
    if c < 0 then Some x
    else if c > 0 then Some y
    else Some { x with inclusive = x.inclusive || y.inclusive }

let looser_high a b =
  match (a, b) with
  | None, _ | _, None -> None
  | Some x, Some y ->
    let c = Value.compare x.value y.value in
    if c > 0 then Some x
    else if c < 0 then Some y
    else Some { x with inclusive = x.inclusive || y.inclusive }

(** Conjunction of two ranges on the same column. *)
let range_intersect a b =
  assert (Column.equal a.rcol b.rcol);
  { rcol = a.rcol; lo = tighter_low a.lo b.lo; hi = tighter_high a.hi b.hi }

(** The smallest single range containing both [a] and [b]; this is the
    "merge" of same-column range predicates used by view merging.  If the
    result is unbounded on both sides the caller should drop the predicate
    entirely (the paper's "minor improvement"). *)
let range_union a b =
  assert (Column.equal a.rcol b.rcol);
  { rcol = a.rcol; lo = looser_low a.lo b.lo; hi = looser_high a.hi b.hi }

(* [bound_le side a b]: does bound [a] admit everything bound [b] admits? *)
let low_implied ~weaker ~stronger =
  match (weaker, stronger) with
  | None, _ -> true
  | Some _, None -> false
  | Some w, Some s ->
    let c = Value.compare w.value s.value in
    c < 0 || (c = 0 && (w.inclusive || not s.inclusive))

let high_implied ~weaker ~stronger =
  match (weaker, stronger) with
  | None, _ -> true
  | Some _, None -> false
  | Some w, Some s ->
    let c = Value.compare w.value s.value in
    c > 0 || (c = 0 && (w.inclusive || not s.inclusive))

(** [implies ~by r]: every row satisfying [by] also satisfies [r]
    (i.e. [r] is the weaker predicate).  Used by view matching: a view range
    must be implied by the query's ranges for the view to contain all rows
    the query needs. *)
let implies ~by r =
  Column.equal r.rcol by.rcol
  && low_implied ~weaker:r.lo ~stronger:by.lo
  && high_implied ~weaker:r.hi ~stronger:by.hi

let range_equal a b =
  Column.equal a.rcol b.rcol && implies ~by:a b && implies ~by:b a

(** Normalize a list of ranges: collapse multiple conjuncts on the same
    column into one by intersection, in first-appearance column order. *)
let normalize_ranges ranges =
  let rec insert r = function
    | [] -> [ r ]
    | r' :: rest when Column.equal r'.rcol r.rcol ->
      range_intersect r' r :: rest
    | r' :: rest -> r' :: insert r rest
  in
  List.fold_left (fun acc r -> insert r acc) [] ranges

(** The classified conjuncts of a WHERE clause. *)
type classified = {
  joins : join list;
  ranges : range list;
  others : Expr.t list;
}

let empty_classified = { joins = []; ranges = []; others = [] }

(* Recognize sargable shapes: [col op const] and [const op col]. *)
let as_range = function
  | Expr.Cmp (op, Col c, Const v) -> (
    match op with
    | Eq -> Some (range_eq c v)
    | Lt -> Some (range ~hi:(bound ~inclusive:false v) c)
    | Le -> Some (range ~hi:(bound v) c)
    | Gt -> Some (range ~lo:(bound ~inclusive:false v) c)
    | Ge -> Some (range ~lo:(bound v) c)
    | Neq -> None)
  | Expr.Cmp (op, Const v, Col c) -> (
    match op with
    | Eq -> Some (range_eq c v)
    | Gt -> Some (range ~hi:(bound ~inclusive:false v) c)
    | Ge -> Some (range ~hi:(bound v) c)
    | Lt -> Some (range ~lo:(bound ~inclusive:false v) c)
    | Le -> Some (range ~lo:(bound v) c)
    | Neq -> None)
  | _ -> None

let as_join = function
  | Expr.Cmp (Eq, Col a, Col b) when a.tbl <> b.tbl -> Some (make_join a b)
  | _ -> None

(** Classify the top-level conjuncts of a boolean expression.  Conjuncts on
    the same column are combined; anything not recognizably sargable lands in
    [others]. *)
let classify exprs =
  let step acc e =
    match as_join e with
    | Some j -> { acc with joins = j :: acc.joins }
    | None -> (
      match as_range e with
      | Some r -> { acc with ranges = r :: acc.ranges }
      | None -> { acc with others = e :: acc.others })
  in
  let c =
    List.fold_left step empty_classified
      (List.concat_map Expr.conjuncts exprs)
  in
  {
    joins = List.rev c.joins;
    ranges = normalize_ranges (List.rev c.ranges);
    others = List.rev c.others;
  }

(** Columns mentioned by a classified predicate set. *)
let classified_columns c =
  let join_cols =
    List.fold_left
      (fun acc j -> Column_set.add j.left (Column_set.add j.right acc))
      Column_set.empty c.joins
  in
  let range_cols =
    List.fold_left (fun acc r -> Column_set.add r.rcol acc) join_cols c.ranges
  in
  List.fold_left
    (fun acc e -> Column_set.union acc (Expr.columns e))
    range_cols c.others

let pp_bound_lo ppf = function
  | None -> ()
  | Some b ->
    Fmt.pf ppf "%a %s " Value.pp b.value (if b.inclusive then "<=" else "<")

let pp_bound_hi ppf = function
  | None -> ()
  | Some b ->
    Fmt.pf ppf " %s %a" (if b.inclusive then "<=" else "<") Value.pp b.value

let pp_range ppf r =
  if is_equality r then
    match r.lo with
    | Some b -> Fmt.pf ppf "%a = %a" Column.pp r.rcol Value.pp b.value
    | None -> assert false
  else Fmt.pf ppf "%a%a%a" pp_bound_lo r.lo Column.pp r.rcol pp_bound_hi r.hi

let pp_join ppf j = Fmt.pf ppf "%a = %a" Column.pp j.left Column.pp j.right

(** Render a range back into an expression (for pretty-printing and for
    feeding residual predicates to compensating filters). *)
let range_to_exprs r =
  let lo =
    match r.lo with
    | None -> []
    | Some b ->
      [ Expr.Cmp ((if b.inclusive then Ge else Gt), Col r.rcol, Const b.value) ]
  in
  if is_equality r then
    match r.lo with
    | Some b -> [ Expr.Cmp (Eq, Col r.rcol, Const b.value) ]
    | None -> assert false
  else
    lo
    @
    match r.hi with
    | None -> []
    | Some b ->
      [ Expr.Cmp ((if b.inclusive then Le else Lt), Col r.rcol, Const b.value) ]

let join_to_expr j = Expr.Cmp (Eq, Col j.left, Col j.right)
