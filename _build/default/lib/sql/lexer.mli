(** Hand-written lexer for the SQL subset.  [--] comments run to end of
    line; string literals use single quotes with [''] escaping. *)

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | KW of string  (** uppercased keyword *)
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | STAR
  | SEMI
  | EQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | PLUS
  | MINUS
  | SLASH
  | EOF

exception Lex_error of string * int  (** message, byte position *)

val tokenize : string -> token list
(** Tokenize a whole input; the result ends with {!EOF}.
    @raise Lex_error on invalid input. *)

val pp_token : Format.formatter -> token -> unit
