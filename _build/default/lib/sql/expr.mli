(** Scalar expressions: the WHERE-clause building blocks.

    Expressions carry the non-sargable ("other") predicates of queries and
    view definitions — where structural equality modulo column equivalence
    is the matching test the paper prescribes — and the right-hand sides of
    UPDATE assignments. *)

open Types

type t =
  | Col of column
  | Const of value
  | Neg of t
  | Bin of arith_op * t * t
  | Cmp of cmp_op * t * t
  | And of t * t
  | Or of t * t
  | Not of t
  | Like of t * string
  | In_list of t * value list

(** {1 Constructors} *)

val col : column -> t
val const : value -> t
val int_ : int -> t
val float_ : float -> t
val string_ : string -> t

(** {1 Analysis} *)

val columns : t -> Column_set.t
(** All column references in the expression. *)

val tables : t -> string list
(** Tables referenced (duplicate-free, unspecified order). *)

val equal : t -> t -> bool
(** Structural equality. *)

val equal_modulo : (column -> column -> bool) -> t -> t -> bool
(** Structural equality modulo a column-equivalence relation (the classes
    induced by a query's equi-join predicates, per the paper's view-matching
    rules). *)

val map_columns : (column -> column) -> t -> t
(** Substitute column references, e.g. to map a predicate from base tables
    onto the output columns of a materialized view. *)

val conjuncts : t -> t list
(** Split into top-level AND-conjuncts. *)

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val fingerprint : t -> string
(** A stable structural key, for hashing expressions in caches. *)
