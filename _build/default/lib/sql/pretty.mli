(** SQL rendering of queries, statements and workloads.  The output is
    valid input for {!Parser} (the round-trip property the test suite
    checks). *)

val pp_spjg : Format.formatter -> Query.spjg -> unit
val pp_select : Format.formatter -> Query.select_query -> unit
val pp_dml : Format.formatter -> Query.dml -> unit
val pp_statement : Format.formatter -> Query.statement -> unit
val statement_to_string : Query.statement -> string
val pp_entry : Format.formatter -> Query.entry -> unit
val pp_workload : Format.formatter -> Query.workload -> unit
