lib/sql/parser.mli: Query
