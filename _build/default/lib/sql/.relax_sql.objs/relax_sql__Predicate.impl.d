lib/sql/predicate.ml: Column Column_set Expr Fmt List Types Value
