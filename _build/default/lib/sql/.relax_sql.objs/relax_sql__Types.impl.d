lib/sql/types.ml: Char Float Fmt Hashtbl Int Map Set String
