lib/sql/expr.mli: Column_set Format Types
