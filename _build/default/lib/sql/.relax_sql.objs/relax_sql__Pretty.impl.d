lib/sql/pretty.ml: Column Expr Fmt List Predicate Query Types
