lib/sql/query.ml: Column Column_set Expr Fmt Hashtbl List Predicate String Types
