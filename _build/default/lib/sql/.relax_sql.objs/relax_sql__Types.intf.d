lib/sql/types.mli: Format Map Set
