lib/sql/expr.ml: Column Column_set Fmt List String Types Value
