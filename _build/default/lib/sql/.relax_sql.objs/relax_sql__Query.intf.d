lib/sql/query.mli: Column_set Expr Format Predicate Types
