lib/sql/pretty.mli: Format Query
