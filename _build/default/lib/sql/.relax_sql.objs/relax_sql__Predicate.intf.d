lib/sql/predicate.mli: Column_set Expr Format Types
