lib/sql/parser.ml: Column Expr Fmt Lexer List Option Predicate Printf Query Types
