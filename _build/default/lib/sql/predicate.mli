(** Predicate classification and range algebra.

    Following the paper's Assumptions section, WHERE-clause conjuncts divide
    into three classes: {b join predicates} (equi-joins across tables),
    {b range predicates} (sargable single-column comparisons against
    constants; equality is a degenerate range), and {b other predicates}
    (everything else, non-sargable). *)

open Types

(** One endpoint of a range. *)
type bound = { value : value; inclusive : bool }

val bound : ?inclusive:bool -> value -> bound
(** [inclusive] defaults to [true]. *)

(** A sargable conjunct [lo <=(<) col <=(<) hi]; [None] = unbounded side.
    Equality is two inclusive bounds with the same value. *)
type range = { rcol : column; lo : bound option; hi : bound option }

(** An equi-join conjunct, normalized so [left <= right] under column order
    (making join-set comparison order-insensitive). *)
type join = { left : column; right : column }

(** {1 Joins} *)

val make_join : column -> column -> join
val join_equal : join -> join -> bool
val join_mem : join -> join list -> bool
val join_to_expr : join -> Expr.t

(** {1 Ranges} *)

val range_eq : column -> value -> range
(** The equality predicate [col = v]. *)

val range : ?lo:bound -> ?hi:bound -> column -> range

val is_equality : range -> bool
val is_unbounded : range -> bool

val range_intersect : range -> range -> range
(** Conjunction of two ranges on the same column (tighter bounds win).
    @raise Assert_failure if the columns differ. *)

val range_union : range -> range -> range
(** The smallest single range containing both inputs: the "merge" of
    same-column range predicates used by view merging (§3.1.2).  If the
    result {!is_unbounded}, the caller should drop the predicate. *)

val implies : by:range -> range -> bool
(** [implies ~by r]: every row satisfying [by] also satisfies [r] ([r] is
    the weaker predicate).  The subsumption test of view matching. *)

val range_equal : range -> range -> bool
(** Same column, mutually implying bounds. *)

val normalize_ranges : range list -> range list
(** Collapse multiple conjuncts on the same column by intersection. *)

val range_to_exprs : range -> Expr.t list
(** Render back into comparison expressions (for printing and for
    compensating filters). *)

(** {1 Classification} *)

(** The classified conjuncts of a WHERE clause. *)
type classified = {
  joins : join list;
  ranges : range list;
  others : Expr.t list;
}

val empty_classified : classified

val classify : Expr.t list -> classified
(** Classify the top-level conjuncts of the given expressions.  Same-column
    ranges are combined; unrecognized shapes land in [others]. *)

val classified_columns : classified -> Column_set.t

(** {1 Printing} *)

val pp_range : Format.formatter -> range -> unit
val pp_join : Format.formatter -> join -> unit
