(** Scalar expressions: the WHERE-clause building blocks.

    Expressions serve three purposes in the system:
    - they carry the non-sargable ("other") predicates of queries and view
      definitions, where structural equality (modulo column equivalence) is
      the matching test the paper prescribes;
    - they appear on the right-hand side of UPDATE assignments;
    - the parser produces them before {!Predicate.classify} splits a WHERE
      clause into join / range / other conjuncts. *)

open Types

type t =
  | Col of column
  | Const of value
  | Neg of t
  | Bin of arith_op * t * t
  | Cmp of cmp_op * t * t
  | And of t * t
  | Or of t * t
  | Not of t
  | Like of t * string
  | In_list of t * value list

let col c = Col c
let const v = Const v
let int_ i = Const (VInt i)
let float_ f = Const (VFloat f)
let string_ s = Const (VString s)

(** All column references appearing in an expression. *)
let rec columns = function
  | Col c -> Column_set.singleton c
  | Const _ -> Column_set.empty
  | Neg e | Not e | Like (e, _) | In_list (e, _) -> columns e
  | Bin (_, a, b) | Cmp (_, a, b) | And (a, b) | Or (a, b) ->
    Column_set.union (columns a) (columns b)

(** Tables referenced by an expression. *)
let tables e =
  Column_set.fold
    (fun c acc -> if List.mem c.tbl acc then acc else c.tbl :: acc)
    (columns e) []

(** Structural equality modulo a column equivalence relation.  The paper's
    view-matching procedure tests conjunct equality "structurally, modulo
    column equivalence" -- the equivalence classes being the ones induced by
    the query's equi-join predicates. *)
let rec equal_modulo equiv a b =
  match (a, b) with
  | Col x, Col y -> equiv x y
  | Const x, Const y -> Value.equal x y
  | Neg x, Neg y | Not x, Not y -> equal_modulo equiv x y
  | Bin (o1, x1, y1), Bin (o2, x2, y2) ->
    o1 = o2 && equal_modulo equiv x1 x2 && equal_modulo equiv y1 y2
  | Cmp (o1, x1, y1), Cmp (o2, x2, y2) ->
    o1 = o2 && equal_modulo equiv x1 x2 && equal_modulo equiv y1 y2
  | And (x1, y1), And (x2, y2) | Or (x1, y1), Or (x2, y2) ->
    equal_modulo equiv x1 x2 && equal_modulo equiv y1 y2
  | Like (x, p1), Like (y, p2) -> p1 = p2 && equal_modulo equiv x y
  | In_list (x, v1), In_list (y, v2) ->
    equal_modulo equiv x y
    && List.length v1 = List.length v2
    && List.for_all2 Value.equal v1 v2
  | ( ( Col _ | Const _ | Neg _ | Not _ | Bin _ | Cmp _ | And _ | Or _
      | Like _ | In_list _ ),
      _ ) -> false

let equal a b = equal_modulo Column.equal a b

(** Substitute column references, e.g. when mapping a predicate from base
    tables onto the output columns of a materialized view. *)
let rec map_columns f = function
  | Col c -> Col (f c)
  | Const v -> Const v
  | Neg e -> Neg (map_columns f e)
  | Not e -> Not (map_columns f e)
  | Like (e, p) -> Like (map_columns f e, p)
  | In_list (e, vs) -> In_list (map_columns f e, vs)
  | Bin (o, a, b) -> Bin (o, map_columns f a, map_columns f b)
  | Cmp (o, a, b) -> Cmp (o, map_columns f a, map_columns f b)
  | And (a, b) -> And (map_columns f a, map_columns f b)
  | Or (a, b) -> Or (map_columns f a, map_columns f b)

(** Split an expression into its top-level conjuncts. *)
let rec conjuncts = function
  | And (a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

let rec pp ppf = function
  | Col c -> Column.pp ppf c
  | Const v -> Value.pp ppf v
  | Neg e -> Fmt.pf ppf "-(%a)" pp e
  | Bin (op, a, b) -> Fmt.pf ppf "(%a %a %a)" pp a pp_arith_op op pp b
  | Cmp (op, a, b) -> Fmt.pf ppf "%a %a %a" pp a pp_cmp_op op pp b
  | And (a, b) -> Fmt.pf ppf "(%a AND %a)" pp a pp b
  | Or (a, b) -> Fmt.pf ppf "(%a OR %a)" pp a pp b
  | Not e -> Fmt.pf ppf "NOT (%a)" pp e
  | Like (e, p) -> Fmt.pf ppf "%a LIKE '%s'" pp e p
  | In_list (e, vs) ->
    Fmt.pf ppf "%a IN (%a)" pp e Fmt.(list ~sep:comma Value.pp) vs

let to_string e = Fmt.str "%a" pp e

(** A stable structural key, used for hashing expressions in caches. *)
let rec fingerprint = function
  | Col c -> "c:" ^ Column.to_string c
  | Const v -> "k:" ^ Value.to_string v
  | Neg e -> "n(" ^ fingerprint e ^ ")"
  | Not e -> "!(" ^ fingerprint e ^ ")"
  | Like (e, p) -> "l(" ^ fingerprint e ^ "," ^ p ^ ")"
  | In_list (e, vs) ->
    "i(" ^ fingerprint e ^ ","
    ^ String.concat "," (List.map Value.to_string vs)
    ^ ")"
  | Bin (o, a, b) ->
    Fmt.str "b(%a,%s,%s)" pp_arith_op o (fingerprint a) (fingerprint b)
  | Cmp (o, a, b) ->
    Fmt.str "p(%a,%s,%s)" pp_cmp_op o (fingerprint a) (fingerprint b)
  | And (a, b) -> "a(" ^ fingerprint a ^ "," ^ fingerprint b ^ ")"
  | Or (a, b) -> "o(" ^ fingerprint a ^ "," ^ fingerprint b ^ ")"
