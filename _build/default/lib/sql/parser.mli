(** Recursive-descent parser for the SPJG dialect.

    Supported statements: [SELECT ... FROM ... [WHERE ...] [GROUP BY ...]
    [ORDER BY ...]], [UPDATE t SET c = e, ... [WHERE ...]],
    [INSERT INTO t ROWS n], [DELETE FROM t [WHERE ...]].  Expressions have
    the usual precedence; [BETWEEN], [IN (...)] and [LIKE] are sugar.
    Unqualified column names resolve when exactly one table is in scope. *)

exception Parse_error of string

val statement : string -> Query.statement
(** Parse a single statement.
    @raise Parse_error on malformed input.
    @raise Lexer.Lex_error on invalid tokens. *)

val workload : string -> Query.workload
(** Parse a [;]-separated script; statements are numbered [q1], [q2], ...
    with weight 1. *)
