(** Core scalar types shared by the whole system: SQL data types, column
    references and constant values.

    Columns are identified by a [(table, column)] pair.  Tables here may be
    base tables or synthesized view-tables (a materialized view simulated in
    the catalog); the rest of the system does not care which. *)

type data_type =
  | Int
  | Float
  | Date
  | Char of int  (** fixed width, in bytes *)
  | Varchar of int  (** declared maximum width, in bytes *)

let width_of_type = function
  | Int -> 4.0
  | Float -> 8.0
  | Date -> 4.0
  | Char n -> float_of_int n
  | Varchar n -> float_of_int n /. 2.0
(* average length of a variable-length value: half the declared maximum is
   the usual back-of-the-envelope the paper's size model samples for. *)

let pp_data_type ppf = function
  | Int -> Fmt.string ppf "INT"
  | Float -> Fmt.string ppf "FLOAT"
  | Date -> Fmt.string ppf "DATE"
  | Char n -> Fmt.pf ppf "CHAR(%d)" n
  | Varchar n -> Fmt.pf ppf "VARCHAR(%d)" n

(** A (possibly view-) qualified column reference. *)
type column = { tbl : string; col : string }

module Column = struct
  type t = column

  let make tbl col = { tbl; col }

  let compare a b =
    match String.compare a.tbl b.tbl with
    | 0 -> String.compare a.col b.col
    | c -> c

  let equal a b = compare a b = 0
  let pp ppf c = Fmt.pf ppf "%s.%s" c.tbl c.col
  let to_string c = c.tbl ^ "." ^ c.col
  let hash c = Hashtbl.hash (c.tbl, c.col)
end

module Column_set = Set.Make (Column)
module Column_map = Map.Make (Column)

let pp_column_set ppf s =
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:comma Column.pp) (Column_set.elements s)

let column_set_of_list = Column_set.of_list

(** SQL constants.  Dates are stored as day numbers so they order and
    subtract like integers. *)
type value =
  | VInt of int
  | VFloat of float
  | VString of string
  | VDate of int

module Value = struct
  type t = value

  (* Order-preserving embedding of values into floats, used by histograms
     and selectivity estimation.  Strings are embedded by their first eight
     bytes, which preserves lexicographic order well enough for range
     selectivity purposes. *)
  let to_float = function
    | VInt i -> float_of_int i
    | VFloat f -> f
    | VDate d -> float_of_int d
    | VString s ->
      let acc = ref 0.0 in
      for i = 0 to 7 do
        let c = if i < String.length s then Char.code s.[i] else 0 in
        acc := (!acc *. 256.0) +. float_of_int c
      done;
      !acc

    let compare a b =
      match (a, b) with
      | VInt x, VInt y -> Int.compare x y
      | VString x, VString y -> String.compare x y
      | VDate x, VDate y -> Int.compare x y
      | _ -> Float.compare (to_float a) (to_float b)

    let equal a b = compare a b = 0

    let pp ppf = function
      | VInt i -> Fmt.int ppf i
      | VFloat f -> Fmt.pf ppf "%g" f
      | VString s -> Fmt.pf ppf "'%s'" s
      | VDate d -> Fmt.pf ppf "DATE(%d)" d

    let to_string v = Fmt.str "%a" pp v
end

(** Comparison operators appearing in predicates. *)
type cmp_op = Eq | Neq | Lt | Le | Gt | Ge

let pp_cmp_op ppf op =
  Fmt.string ppf
    (match op with
    | Eq -> "="
    | Neq -> "<>"
    | Lt -> "<"
    | Le -> "<="
    | Gt -> ">"
    | Ge -> ">=")

(** Arithmetic operators in scalar expressions. *)
type arith_op = Add | Sub | Mul | Div

let pp_arith_op ppf op =
  Fmt.string ppf
    (match op with Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/")

type order_dir = Asc | Desc

let pp_order_dir ppf = function
  | Asc -> Fmt.string ppf "ASC"
  | Desc -> Fmt.string ppf "DESC"
