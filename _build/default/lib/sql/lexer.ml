(** Hand-written lexer for the SQL subset.

    Tokens cover exactly what {!Parser} needs: identifiers (optionally
    qualified at parse level), numeric and string literals, the keyword set
    of the SPJG dialect, comparison and arithmetic operators, punctuation.
    [--] starts a comment running to end of line. *)

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | KW of string  (** uppercased keyword *)
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | STAR
  | SEMI
  | EQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | PLUS
  | MINUS
  | SLASH
  | EOF

let keywords =
  [
    "SELECT"; "FROM"; "WHERE"; "AND"; "OR"; "NOT"; "GROUP"; "ORDER"; "BY";
    "ASC"; "DESC"; "SUM"; "COUNT"; "MIN"; "MAX"; "AVG"; "UPDATE"; "SET";
    "INSERT"; "INTO"; "ROWS"; "DELETE"; "LIKE"; "IN"; "DATE"; "BETWEEN";
    (* schema DDL *)
    "CREATE"; "TABLE"; "INT"; "FLOAT"; "CHAR"; "VARCHAR"; "SERIAL";
    "UNIFORM"; "ZIPF"; "NORMAL"; "REFERENCES";
  ]

exception Lex_error of string * int  (** message, position *)

type state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | Some '-' when st.pos + 1 < String.length st.src && st.src.[st.pos + 1] = '-'
    ->
    while peek st <> None && peek st <> Some '\n' do
      advance st
    done;
    skip_ws st
  | _ -> ()

let lex_ident st =
  let start = st.pos in
  while (match peek st with Some c -> is_ident_char c | None -> false) do
    advance st
  done;
  let s = String.sub st.src start (st.pos - start) in
  let up = String.uppercase_ascii s in
  if List.mem up keywords then KW up else IDENT s

let lex_number st =
  let start = st.pos in
  while (match peek st with Some c -> is_digit c | None -> false) do
    advance st
  done;
  let is_float =
    match peek st with
    | Some '.'
      when st.pos + 1 < String.length st.src && is_digit st.src.[st.pos + 1] ->
      advance st;
      while (match peek st with Some c -> is_digit c | None -> false) do
        advance st
      done;
      true
    | _ -> false
  in
  let s = String.sub st.src start (st.pos - start) in
  if is_float then FLOAT (float_of_string s) else INT (int_of_string s)

let lex_string st =
  advance st;
  (* opening quote *)
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> raise (Lex_error ("unterminated string literal", st.pos))
    | Some '\'' ->
      advance st;
      (* doubled quote escapes a quote *)
      if peek st = Some '\'' then (
        Buffer.add_char buf '\'';
        advance st;
        go ())
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      go ()
  in
  go ();
  STRING (Buffer.contents buf)

let next_token st =
  skip_ws st;
  match peek st with
  | None -> EOF
  | Some c when is_ident_start c -> lex_ident st
  | Some c when is_digit c -> lex_number st
  | Some '\'' -> lex_string st
  | Some c -> (
    advance st;
    match c with
    | '(' -> LPAREN
    | ')' -> RPAREN
    | ',' -> COMMA
    | '.' -> DOT
    | '*' -> STAR
    | ';' -> SEMI
    | '+' -> PLUS
    | '-' -> MINUS
    | '/' -> SLASH
    | '=' -> EQ
    | '<' -> (
      match peek st with
      | Some '=' ->
        advance st;
        LE
      | Some '>' ->
        advance st;
        NEQ
      | _ -> LT)
    | '>' -> (
      match peek st with
      | Some '=' ->
        advance st;
        GE
      | _ -> GT)
    | '!' -> (
      match peek st with
      | Some '=' ->
        advance st;
        NEQ
      | _ -> raise (Lex_error ("unexpected '!'", st.pos)))
    | c -> raise (Lex_error (Printf.sprintf "unexpected character %C" c, st.pos)))

(** Tokenize a whole input string. *)
let tokenize src =
  let st = { src; pos = 0 } in
  let rec go acc =
    match next_token st with
    | EOF -> List.rev (EOF :: acc)
    | t -> go (t :: acc)
  in
  go []

let pp_token ppf = function
  | IDENT s -> Fmt.pf ppf "ident(%s)" s
  | INT i -> Fmt.pf ppf "int(%d)" i
  | FLOAT f -> Fmt.pf ppf "float(%g)" f
  | STRING s -> Fmt.pf ppf "string(%s)" s
  | KW k -> Fmt.pf ppf "kw(%s)" k
  | LPAREN -> Fmt.string ppf "("
  | RPAREN -> Fmt.string ppf ")"
  | COMMA -> Fmt.string ppf ","
  | DOT -> Fmt.string ppf "."
  | STAR -> Fmt.string ppf "*"
  | SEMI -> Fmt.string ppf ";"
  | EQ -> Fmt.string ppf "="
  | NEQ -> Fmt.string ppf "<>"
  | LT -> Fmt.string ppf "<"
  | LE -> Fmt.string ppf "<="
  | GT -> Fmt.string ppf ">"
  | GE -> Fmt.string ppf ">="
  | PLUS -> Fmt.string ppf "+"
  | MINUS -> Fmt.string ppf "-"
  | SLASH -> Fmt.string ppf "/"
  | EOF -> Fmt.string ppf "<eof>"
