(** SQL rendering of queries, statements and workloads.

    The output is valid input for {!Parser}, which the round-trip property
    tests rely on. *)

open Types

let pp_where ppf (joins, ranges, others) =
  let join_exprs = List.map Predicate.join_to_expr joins in
  let range_exprs = List.concat_map Predicate.range_to_exprs ranges in
  let all = join_exprs @ range_exprs @ others in
  match all with
  | [] -> ()
  | conjuncts ->
    Fmt.pf ppf "@ WHERE %a" Fmt.(list ~sep:(any "@ AND ") Expr.pp) conjuncts

let pp_spjg ppf (q : Query.spjg) =
  Fmt.pf ppf "@[<hv>SELECT %a@ FROM %a%a"
    Fmt.(list ~sep:comma Query.pp_select_item)
    q.select
    Fmt.(list ~sep:comma string)
    q.tables pp_where
    (q.joins, q.ranges, q.others);
  if q.group_by <> [] then
    Fmt.pf ppf "@ GROUP BY %a" Fmt.(list ~sep:comma Column.pp) q.group_by;
  Fmt.pf ppf "@]"

let pp_order_item ppf (c, d) =
  match d with
  | Asc -> Column.pp ppf c
  | Desc -> Fmt.pf ppf "%a DESC" Column.pp c

let pp_select ppf (q : Query.select_query) =
  pp_spjg ppf q.body;
  if q.order_by <> [] then
    Fmt.pf ppf "@ ORDER BY %a" Fmt.(list ~sep:comma pp_order_item) q.order_by

let pp_dml ppf = function
  | Query.Update u ->
    Fmt.pf ppf "@[<hv>UPDATE %s SET %a%a@]" u.table
      Fmt.(
        list ~sep:comma (fun ppf (c, e) -> Fmt.pf ppf "%s = %a" c Expr.pp e))
      u.assignments pp_where
      ([], u.ranges, u.others)
  | Query.Insert i -> Fmt.pf ppf "INSERT INTO %s ROWS %d" i.table i.rows
  | Query.Delete d ->
    Fmt.pf ppf "@[<hv>DELETE FROM %s%a@]" d.table pp_where
      ([], d.ranges, d.others)

let pp_statement ppf = function
  | Query.Select q -> pp_select ppf q
  | Query.Dml d -> pp_dml ppf d

let statement_to_string s = Fmt.str "%a" pp_statement s

let pp_entry ppf (e : Query.entry) =
  Fmt.pf ppf "-- %s (weight %g)@.%a;@." e.qid e.weight pp_statement e.stmt

let pp_workload ppf (w : Query.workload) = List.iter (pp_entry ppf) w
