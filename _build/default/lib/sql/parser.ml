(** Recursive-descent parser for the SPJG dialect.

    Grammar (statements end at [;] or end of input):
    {v
    stmt      ::= select | update | insert | delete
    select    ::= SELECT items FROM tables [WHERE expr]
                  [GROUP BY cols] [ORDER BY ordcols]
    update    ::= UPDATE ident SET assigns [WHERE expr]
    insert    ::= INSERT INTO ident ROWS int
    delete    ::= DELETE FROM ident [WHERE expr]
    items     ::= item {, item}        item ::= colref | AGG ( colref | * )
    expr      ::= or-expr with the usual precedence
                  (OR < AND < NOT < cmp < add < mul < unary)
    colref    ::= ident . ident | ident
    v}
    Unqualified column names are resolved when exactly one table is in
    scope; otherwise a parse error is raised. *)

open Types

exception Parse_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Parse_error s)) fmt

type state = { mutable toks : Lexer.token list }

let peek st = match st.toks with [] -> Lexer.EOF | t :: _ -> t

let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect st tok =
  if peek st = tok then advance st
  else fail "expected %a, found %a" Lexer.pp_token tok Lexer.pp_token (peek st)

let expect_kw st kw =
  match peek st with
  | Lexer.KW k when k = kw -> advance st
  | t -> fail "expected %s, found %a" kw Lexer.pp_token t

let accept_kw st kw =
  match peek st with
  | Lexer.KW k when k = kw ->
    advance st;
    true
  | _ -> false

let ident st =
  match peek st with
  | Lexer.IDENT s ->
    advance st;
    s
  | t -> fail "expected identifier, found %a" Lexer.pp_token t

(* Column references; [tables] is the FROM list used to resolve unqualified
   names. *)
let colref st ~tables =
  let first = ident st in
  if peek st = Lexer.DOT then (
    advance st;
    let second = ident st in
    Column.make first second)
  else
    match tables with
    | [ t ] -> Column.make t first
    | _ -> fail "unqualified column %s with %d tables in scope" first
             (List.length tables)

let value st =
  match peek st with
  | Lexer.INT i ->
    advance st;
    VInt i
  | Lexer.FLOAT f ->
    advance st;
    VFloat f
  | Lexer.STRING s ->
    advance st;
    VString s
  | Lexer.MINUS -> (
    advance st;
    match peek st with
    | Lexer.INT i ->
      advance st;
      VInt (-i)
    | Lexer.FLOAT f ->
      advance st;
      VFloat (-.f)
    | t -> fail "expected number after '-', found %a" Lexer.pp_token t)
  | Lexer.KW "DATE" ->
    advance st;
    expect st Lexer.LPAREN;
    let v =
      match peek st with
      | Lexer.INT i ->
        advance st;
        VDate i
      | t -> fail "expected day number in DATE(), found %a" Lexer.pp_token t
    in
    expect st Lexer.RPAREN;
    v
  | t -> fail "expected literal, found %a" Lexer.pp_token t

let agg_of_kw = function
  | "COUNT" -> Some Query.Count
  | "SUM" -> Some Query.Sum
  | "MIN" -> Some Query.Min
  | "MAX" -> Some Query.Max
  | "AVG" -> Some Query.Avg
  | _ -> None

(* --- expressions --------------------------------------------------------- *)

let rec parse_or st ~tables =
  let left = parse_and st ~tables in
  if accept_kw st "OR" then Expr.Or (left, parse_or st ~tables) else left

and parse_and st ~tables =
  let left = parse_not st ~tables in
  if accept_kw st "AND" then Expr.And (left, parse_and st ~tables) else left

and parse_not st ~tables =
  if accept_kw st "NOT" then Expr.Not (parse_not st ~tables)
  else parse_cmp st ~tables

and parse_cmp st ~tables =
  let left = parse_add st ~tables in
  match peek st with
  | Lexer.EQ ->
    advance st;
    Expr.Cmp (Eq, left, parse_add st ~tables)
  | Lexer.NEQ ->
    advance st;
    Expr.Cmp (Neq, left, parse_add st ~tables)
  | Lexer.LT ->
    advance st;
    Expr.Cmp (Lt, left, parse_add st ~tables)
  | Lexer.LE ->
    advance st;
    Expr.Cmp (Le, left, parse_add st ~tables)
  | Lexer.GT ->
    advance st;
    Expr.Cmp (Gt, left, parse_add st ~tables)
  | Lexer.GE ->
    advance st;
    Expr.Cmp (Ge, left, parse_add st ~tables)
  | Lexer.KW "LIKE" -> (
    advance st;
    match peek st with
    | Lexer.STRING p ->
      advance st;
      Expr.Like (left, p)
    | t -> fail "expected pattern after LIKE, found %a" Lexer.pp_token t)
  | Lexer.KW "BETWEEN" ->
    advance st;
    let lo = value st in
    expect_kw st "AND";
    let hi = value st in
    Expr.And
      (Expr.Cmp (Ge, left, Const lo), Expr.Cmp (Le, left, Const hi))
  | Lexer.KW "IN" ->
    advance st;
    expect st Lexer.LPAREN;
    let rec vals acc =
      let v = value st in
      if peek st = Lexer.COMMA then (
        advance st;
        vals (v :: acc))
      else List.rev (v :: acc)
    in
    let vs = vals [] in
    expect st Lexer.RPAREN;
    Expr.In_list (left, vs)
  | _ -> left

and parse_add st ~tables =
  let rec go left =
    match peek st with
    | Lexer.PLUS ->
      advance st;
      go (Expr.Bin (Add, left, parse_mul st ~tables))
    | Lexer.MINUS ->
      advance st;
      go (Expr.Bin (Sub, left, parse_mul st ~tables))
    | _ -> left
  in
  go (parse_mul st ~tables)

and parse_mul st ~tables =
  let rec go left =
    match peek st with
    | Lexer.STAR ->
      advance st;
      go (Expr.Bin (Mul, left, parse_unary st ~tables))
    | Lexer.SLASH ->
      advance st;
      go (Expr.Bin (Div, left, parse_unary st ~tables))
    | _ -> left
  in
  go (parse_unary st ~tables)

and parse_unary st ~tables =
  match peek st with
  | Lexer.MINUS -> (
    (* distinguish a negative literal from negation of a subexpression *)
    advance st;
    match peek st with
    | Lexer.INT i ->
      advance st;
      Expr.Const (VInt (-i))
    | Lexer.FLOAT f ->
      advance st;
      Expr.Const (VFloat (-.f))
    | _ -> Expr.Neg (parse_unary st ~tables))
  | Lexer.LPAREN ->
    advance st;
    let e = parse_or st ~tables in
    expect st Lexer.RPAREN;
    e
  | Lexer.INT _ | Lexer.FLOAT _ | Lexer.STRING _ | Lexer.KW "DATE" ->
    Expr.Const (value st)
  | Lexer.IDENT _ -> Expr.Col (colref st ~tables)
  | t -> fail "unexpected token in expression: %a" Lexer.pp_token t

(* --- statements ---------------------------------------------------------- *)

let parse_where st ~tables =
  if accept_kw st "WHERE" then
    Predicate.classify [ parse_or st ~tables ]
  else Predicate.empty_classified

let parse_table_list st =
  let rec go acc =
    let t = ident st in
    if peek st = Lexer.COMMA then (
      advance st;
      go (t :: acc))
    else List.rev (t :: acc)
  in
  go []

let parse_select st =
  expect_kw st "SELECT";
  (* The select list needs the FROM tables to resolve unqualified columns,
     so we first scan items as raw token runs... simpler: parse items into a
     closure applied after FROM is known. *)
  let rec item_thunks acc =
    let thunk =
      match peek st with
      | Lexer.KW k when agg_of_kw k <> None ->
        let f = Option.get (agg_of_kw k) in
        advance st;
        expect st Lexer.LPAREN;
        if peek st = Lexer.STAR then (
          advance st;
          expect st Lexer.RPAREN;
          fun ~tables:_ -> Query.Item_agg (f, None))
        else begin
          let first = ident st in
          let qualified =
            if peek st = Lexer.DOT then (
              advance st;
              let second = ident st in
              Some (Column.make first second))
            else None
          in
          expect st Lexer.RPAREN;
          fun ~tables ->
            match qualified with
            | Some c -> Query.Item_agg (f, Some c)
            | None -> (
              match tables with
              | [ t ] -> Query.Item_agg (f, Some (Column.make t first))
              | _ -> fail "unqualified column %s in aggregate" first)
        end
      | Lexer.IDENT _ ->
        let first = ident st in
        let qualified =
          if peek st = Lexer.DOT then (
            advance st;
            let second = ident st in
            Some (Column.make first second))
          else None
        in
        fun ~tables ->
          (match qualified with
          | Some c -> Query.Item_col c
          | None -> (
            match tables with
            | [ t ] -> Query.Item_col (Column.make t first)
            | _ -> fail "unqualified column %s in select list" first))
      | t -> fail "unexpected token in select list: %a" Lexer.pp_token t
    in
    if peek st = Lexer.COMMA then (
      advance st;
      item_thunks (thunk :: acc))
    else List.rev (thunk :: acc)
  in
  let thunks = item_thunks [] in
  expect_kw st "FROM";
  let tables = parse_table_list st in
  let select = List.map (fun f -> f ~tables) thunks in
  let where = parse_where st ~tables in
  let group_by =
    if accept_kw st "GROUP" then (
      expect_kw st "BY";
      let rec go acc =
        let c = colref st ~tables in
        if peek st = Lexer.COMMA then (
          advance st;
          go (c :: acc))
        else List.rev (c :: acc)
      in
      go [])
    else []
  in
  let order_by =
    if accept_kw st "ORDER" then (
      expect_kw st "BY";
      let rec go acc =
        let c = colref st ~tables in
        let dir =
          if accept_kw st "DESC" then Desc
          else (
            ignore (accept_kw st "ASC");
            Asc)
        in
        if peek st = Lexer.COMMA then (
          advance st;
          go ((c, dir) :: acc))
        else List.rev ((c, dir) :: acc)
      in
      go [])
    else []
  in
  let body =
    Query.make_spjg ~select ~tables ~joins:where.joins ~ranges:where.ranges
      ~others:where.others ~group_by ()
  in
  Query.Select { body; order_by }

let parse_update st =
  expect_kw st "UPDATE";
  let table = ident st in
  expect_kw st "SET";
  let tables = [ table ] in
  let rec assigns acc =
    let c = ident st in
    expect st Lexer.EQ;
    let e = parse_add st ~tables in
    if peek st = Lexer.COMMA then (
      advance st;
      assigns ((c, e) :: acc))
    else List.rev ((c, e) :: acc)
  in
  let assignments = assigns [] in
  let where = parse_where st ~tables in
  if where.joins <> [] then fail "UPDATE may not contain join predicates";
  Query.Dml
    (Query.Update { table; assignments; ranges = where.ranges; others = where.others })

let parse_insert st =
  expect_kw st "INSERT";
  expect_kw st "INTO";
  let table = ident st in
  expect_kw st "ROWS";
  match peek st with
  | Lexer.INT rows ->
    advance st;
    Query.Dml (Query.Insert { table; rows })
  | t -> fail "expected row count, found %a" Lexer.pp_token t

let parse_delete st =
  expect_kw st "DELETE";
  expect_kw st "FROM";
  let table = ident st in
  let where = parse_where st ~tables:[ table ] in
  if where.joins <> [] then fail "DELETE may not contain join predicates";
  Query.Dml (Query.Delete { table; ranges = where.ranges; others = where.others })

let parse_statement_tokens st =
  let stmt =
    match peek st with
    | Lexer.KW "SELECT" -> parse_select st
    | Lexer.KW "UPDATE" -> parse_update st
    | Lexer.KW "INSERT" -> parse_insert st
    | Lexer.KW "DELETE" -> parse_delete st
    | t -> fail "expected a statement, found %a" Lexer.pp_token t
  in
  (match peek st with
  | Lexer.SEMI -> advance st
  | Lexer.EOF -> ()
  | t -> fail "trailing tokens after statement: %a" Lexer.pp_token t);
  stmt

(** Parse a single statement. *)
let statement src : Query.statement =
  let st = { toks = Lexer.tokenize src } in
  let s = parse_statement_tokens st in
  (match peek st with
  | Lexer.EOF -> ()
  | t -> fail "trailing input: %a" Lexer.pp_token t);
  s

(** Parse a [;]-separated script into a weighted workload; statements get
    identifiers [q1], [q2], ... *)
let workload src : Query.workload =
  let st = { toks = Lexer.tokenize src } in
  let rec go i acc =
    match peek st with
    | Lexer.EOF -> List.rev acc
    | _ ->
      let s = parse_statement_tokens st in
      go (i + 1) (Query.entry (Printf.sprintf "q%d" i) s :: acc)
  in
  go 1 []
