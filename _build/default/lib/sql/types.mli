(** Core scalar types shared by the whole system: SQL data types, column
    references and constant values. *)

(** SQL column data types.  Widths are in bytes. *)
type data_type =
  | Int
  | Float
  | Date
  | Char of int  (** fixed width *)
  | Varchar of int  (** declared maximum width *)

val width_of_type : data_type -> float
(** Average stored width of a value of this type, in bytes (half the
    declared maximum for variable-length types). *)

val pp_data_type : Format.formatter -> data_type -> unit

(** A qualified column reference.  [tbl] may name a base table or a
    synthesized view-table; the rest of the system treats both uniformly. *)
type column = { tbl : string; col : string }

(** Column references with total order, suitable for sets and maps. *)
module Column : sig
  type t = column

  val make : string -> string -> t
  (** [make tbl col] *)

  val compare : t -> t -> int
  val equal : t -> t -> bool
  val hash : t -> int
  val pp : Format.formatter -> t -> unit
  val to_string : t -> string
end

module Column_set : Set.S with type elt = column
module Column_map : Map.S with type key = column

val pp_column_set : Format.formatter -> Column_set.t -> unit
val column_set_of_list : column list -> Column_set.t

(** SQL constants.  Dates are day numbers, so they order and subtract like
    integers. *)
type value =
  | VInt of int
  | VFloat of float
  | VString of string
  | VDate of int

module Value : sig
  type t = value

  val to_float : t -> float
  (** Order-preserving embedding into floats, used by histograms and
      selectivity estimation.  Strings embed by their first eight bytes. *)

  val compare : t -> t -> int
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
  val to_string : t -> string
end

(** Comparison operators appearing in predicates. *)
type cmp_op = Eq | Neq | Lt | Le | Gt | Ge

val pp_cmp_op : Format.formatter -> cmp_op -> unit

(** Arithmetic operators in scalar expressions. *)
type arith_op = Add | Sub | Mul | Div

val pp_arith_op : Format.formatter -> arith_op -> unit

type order_dir = Asc | Desc

val pp_order_dir : Format.formatter -> order_dir -> unit
