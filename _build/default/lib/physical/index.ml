(** Physical indexes.

    Following the paper's assumptions, an index [I = (K; S)] consists of a
    sequence of key columns [K] optionally followed by a set of suffix
    columns [S].  Suffix columns are not present at internal B-tree nodes and
    cannot be sought, but make the index covering for queries that reference
    them.  An index may be clustered, in which case its leaves are the table
    rows themselves (every column of the owning table is implicitly
    covered).

    This module also implements the structural index algebra of §3.1.1 —
    merging, splitting, prefixing — as pure operations; how they are used to
    relax configurations lives in the tuner. *)

open Relax_sql.Types

type t = {
  keys : column list;  (** K: ordered key columns, non-empty *)
  suffix : Column_set.t;  (** S: unordered suffix columns, disjoint from K *)
  clustered : bool;
}

let owner t = (List.hd t.keys).tbl

let make ?(clustered = false) ~keys ~suffix () =
  if keys = [] then invalid_arg "Index.make: empty key sequence";
  let tbl = (List.hd keys).tbl in
  List.iter
    (fun (c : column) ->
      if c.tbl <> tbl then
        invalid_arg "Index.make: key columns span multiple tables")
    keys;
  Column_set.iter
    (fun c ->
      if c.tbl <> tbl then
        invalid_arg "Index.make: suffix columns span multiple tables")
    suffix;
  let key_set = Column_set.of_list keys in
  if List.length keys <> Column_set.cardinal key_set then
    invalid_arg "Index.make: duplicate key column";
  { keys; suffix = Column_set.diff suffix key_set; clustered }

(** Convenience: build from column names on one table. *)
let on table ?(clustered = false) ?(suffix = []) keys =
  make ~clustered
    ~keys:(List.map (Column.make table) keys)
    ~suffix:(Column_set.of_list (List.map (Column.make table) suffix))
    ()

(** All columns materialized in the index (keys plus suffix). *)
let columns t =
  List.fold_left (fun acc c -> Column_set.add c acc) t.suffix t.keys

let key_set t = Column_set.of_list t.keys

let compare a b =
  match List.compare Column.compare a.keys b.keys with
  | 0 -> (
    match Column_set.compare a.suffix b.suffix with
    | 0 -> Bool.compare a.clustered b.clustered
    | c -> c)
  | c -> c

let equal a b = compare a b = 0

let name t =
  Fmt.str "%s[%s](%s%s%s)"
    (if t.clustered then "cx" else "ix")
    (owner t)
    (String.concat "," (List.map (fun (c : column) -> c.col) t.keys))
    (if Column_set.is_empty t.suffix then "" else ";")
    (String.concat ","
       (List.map (fun (c : column) -> c.col) (Column_set.elements t.suffix)))

let pp ppf t = Fmt.string ppf (name t)

(* --- ordered sequence helpers (the paper's S1 ∩ S2 / S1 − S2 on
   sequences keep the order of the first operand) ------------------------- *)

let seq_inter s1 s2 =
  let set2 = Column_set.of_list s2 in
  List.filter (fun c -> Column_set.mem c set2) s1

let seq_diff s1 s2 =
  let set2 = Column_set.of_list s2 in
  List.filter (fun c -> not (Column_set.mem c set2)) s1

let is_prefix ~prefix l =
  let rec go p l =
    match (p, l) with
    | [], _ -> true
    | _, [] -> false
    | x :: p', y :: l' -> Column.equal x y && go p' l'
  in
  go prefix l

(* --- §3.1.1 transformations ---------------------------------------------- *)

(** Ordered merging of two indexes on the same table: the best index that
    answers all requests either input does, seekable wherever [i1] was.
    [merge i1 i2 = (K1; (S1 ∪ K2 ∪ S2) − K1)], or [(K2; (S1 ∪ S2) − K2)]
    when [K1] is a prefix of [K2]. *)
let merge i1 i2 =
  if owner i1 <> owner i2 then invalid_arg "Index.merge: different tables";
  let clustered = i1.clustered || i2.clustered in
  if is_prefix ~prefix:i1.keys i2.keys then
    make ~clustered ~keys:i2.keys
      ~suffix:(Column_set.union i1.suffix i2.suffix)
      ()
  else
    make ~clustered ~keys:i1.keys
      ~suffix:
        (Column_set.union i1.suffix
           (Column_set.union (Column_set.of_list i2.keys) i2.suffix))
      ()

(** Splitting two indexes into a common index and up to two residuals,
    enabling suboptimal index-intersection plans (§3.1.1).  Returns [None]
    when the key sequences share no columns (split undefined). *)
let split i1 i2 :
    (t * t option * t option) option =
  if owner i1 <> owner i2 then invalid_arg "Index.split: different tables";
  let kc = seq_inter i1.keys i2.keys in
  if kc = [] then None
  else begin
    let sc = Column_set.inter i1.suffix i2.suffix in
    let ic = make ~keys:kc ~suffix:sc () in
    let ic_cols = columns ic in
    let residual (i : t) =
      if i.keys = kc then None
      else begin
        let leftover = Column_set.diff (columns i) ic_cols in
        let keys = seq_diff i.keys kc in
        match (keys, Column_set.is_empty leftover) with
        | [], true -> None
        | [], false ->
          (* same key set in a different order: the common index already
             covers these columns, no residual is needed *)
          None
        | keys, _ ->
          let suffix = Column_set.diff leftover (Column_set.of_list keys) in
          Some (make ~keys ~suffix ())
      end
    in
    Some (ic, residual i1, residual i2)
  end

(** All prefixes usable by the prefixing transformation: every proper key
    prefix, plus the full key sequence when a suffix would be dropped.  The
    results carry no suffix columns. *)
let prefixes t =
  let rec go acc rev_prefix = function
    | [] -> acc
    | k :: rest ->
      let p = List.rev (k :: rev_prefix) in
      let acc =
        if rest = [] then
          (* full K: only a new index if it drops something *)
          if Column_set.is_empty t.suffix && not t.clustered then acc
          else make ~keys:p ~suffix:Column_set.empty () :: acc
        else make ~keys:p ~suffix:Column_set.empty () :: acc
      in
      go acc (k :: rev_prefix) rest
  in
  List.rev (go [] [] t.keys)

(** Promotion to clustered (§3.1.1). *)
let promote t = { t with clustered = true }

(** Drop the clustered flag (used to keep the one-clustered-per-relation
    invariant when promoting or merging). *)
let demote t = { t with clustered = false }

(** Can [t] answer every request that [sub] answers with at most extra rid
    lookups?  True when [sub]'s keys are a prefix-permutation...  we use the
    conservative check the merge definition guarantees: [t]'s columns
    include [sub]'s columns. *)
let covers_columns t ~of_:sub = Column_set.subset (columns sub) (columns t)

module Ordered = struct
  type nonrec t = t

  let compare = compare
end

module Set = struct
  include Stdlib.Set.Make (Ordered)
end
