(** Materialized views.

    A view is an SPJG block [V = (S, F, J, R, O, G)] (§3.1.2).  When
    simulated, a view becomes a derived table whose columns are the mangled
    output items; secondary indexes are then built over the view exactly as
    over base tables. *)

open Relax_sql.Types
module Query = Relax_sql.Query

type t

val make : Query.spjg -> t
(** Canonicalizes the definition (dedups select items) and derives a stable
    content-based name. *)

val name : t -> string
(** The derived-table name, e.g. [v_1a2b3c4d5e]. *)

val definition : t -> Query.spjg
val equal : t -> t -> bool
val compare : t -> t -> int

val fingerprint : Query.spjg -> string
(** Stable structural digest of a definition (used to dedup view
    requests). *)

val item_name : Query.select_item -> string
(** The mangled column name of an output item ([r_a], [sum_r_b], ...). *)

val outputs : t -> (string * Query.select_item) list
(** Output items in select order, with their mangled column names. *)

val column_of_item : t -> Query.select_item -> column
(** The view-qualified column for an output item. *)

val view_column_of_base : t -> column -> column option
(** The view column exposing a base column as a plain (non-aggregated)
    output, if any. *)

val item_of_view_column : t -> column -> Query.select_item option
(** Inverse lookup: the select item a view column stands for. *)

val has_aggregates : t -> bool

val base_tables : t -> string list
(** The F component: an update to any of these tables incurs
    view-maintenance cost. *)

val pp : Format.formatter -> t -> unit

(** {1 §3.1.2 view merging} *)

(** Result of merging two views: the merged view plus per-input column
    remappings, used to promote the inputs' indexes onto the merged
    view. *)
type merge_result = {
  merged : t;
  remap1 : column -> column option;
  remap2 : column -> column option;
}

val merge : t -> t -> merge_result option
(** Merge two views with identical FROM sets: [JM = J1 ∩ J2]; same-column
    ranges union (ranges that become unbounded or exist on one side only
    are dropped, with their columns exposed for compensating filters);
    [OM = O1 ∩ O2] structurally; [GM = G1 ∪ G2] when both group (plus
    compensation columns), else no grouping and aggregates are replaced by
    their argument columns.  [None] when the FROM sets differ. *)
