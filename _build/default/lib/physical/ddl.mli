(** DDL rendering of physical designs: the CREATE INDEX /
    CREATE MATERIALIZED VIEW script a DBA would deploy.  Suffix columns
    render as [INCLUDE (...)]; clustered indexes carry [CLUSTERED]. *)

val pp_index : Format.formatter -> Index.t -> unit
val pp_view : Format.formatter -> View.t -> unit

val pp_config : Format.formatter -> Config.t -> unit
(** The full deployment script: views first, then indexes. *)

val to_string : Config.t -> string

val pp_drop : Format.formatter -> Config.t -> unit
(** The tear-down script. *)
