(** Physical configurations: a set of indexes plus a set of materialized
    views (each view carrying its estimated row count, supplied by the
    optimizer's cardinality module when the view is created — §3.3.1).

    Configurations are immutable values; the optimizer takes one as input,
    which is the whole "what-if" interface: hypothetical structures are
    simulated simply by being present in the configuration. *)

open Relax_sql.Types
module String_map = Map.Make (String)

type t = {
  indexes : Index.Set.t;
  views : (View.t * float) String_map.t;  (** name -> (view, row estimate) *)
}

let empty = { indexes = Index.Set.empty; views = String_map.empty }

let of_indexes l = { empty with indexes = Index.Set.of_list l }

let indexes t = Index.Set.elements t.indexes

(** The raw index set (for cheap structural diffs). *)
let index_set t = t.indexes
let views t = List.map (fun (_, (v, _)) -> v) (String_map.bindings t.views)

(** Views with their stored row estimates. *)
let views_with_rows t = List.map snd (String_map.bindings t.views)

let mem_index t i = Index.Set.mem i t.indexes
let mem_view t v = String_map.mem (View.name v) t.views

let find_view t name = String_map.find_opt name t.views

let add_index t i = { t with indexes = Index.Set.add i t.indexes }

let add_view t v ~rows =
  { t with views = String_map.add (View.name v) (v, rows) t.views }

let remove_index t i = { t with indexes = Index.Set.remove i t.indexes }

(** Removing a view also removes every index defined over it (§3.1.2,
    Removal). *)
let remove_view t v =
  let vname = View.name v in
  {
    indexes = Index.Set.filter (fun i -> Index.owner i <> vname) t.indexes;
    views = String_map.remove vname t.views;
  }

(** Indexes over a given relation (base table or view). *)
let indexes_on t name =
  Index.Set.elements (Index.Set.filter (fun i -> Index.owner i = name) t.indexes)

let clustered_on t name =
  Index.Set.fold
    (fun i acc -> if Index.owner i = name && i.clustered then Some i else acc)
    t.indexes None

let union a b =
  {
    indexes = Index.Set.union a.indexes b.indexes;
    views =
      String_map.union (fun _ v _ -> Some v) a.views b.views;
  }

let cardinal t = Index.Set.cardinal t.indexes + String_map.cardinal t.views

let is_empty t = Index.Set.is_empty t.indexes && String_map.is_empty t.views

(** Structure names, sorted: the identity of a configuration. *)
let structure_names t =
  Index.Set.fold (fun i acc -> Index.name i :: acc) t.indexes []
  @ String_map.fold (fun n _ acc -> n :: acc) t.views []
  |> List.sort String.compare

let fingerprint t = String.concat "|" (structure_names t)

(** Fingerprint of the sub-configuration relevant to a set of relations;
    two configurations agreeing on it yield identical plans for a query
    touching only those relations.  Views are relevant if they read any of
    the tables (they may match a sub-query), as are indexes over relevant
    views. *)
let fingerprint_for_tables t tables =
  let relevant_views =
    String_map.filter
      (fun _ (v, _) -> List.exists (fun tb -> List.mem tb tables) (View.base_tables v))
      t.views
  in
  let relevant_relation name =
    List.mem name tables || String_map.mem name relevant_views
  in
  let idx =
    Index.Set.fold
      (fun i acc ->
        if relevant_relation (Index.owner i) then Index.name i :: acc else acc)
      t.indexes []
  in
  let vws = String_map.fold (fun n _ acc -> n :: acc) relevant_views [] in
  String.concat "|" (List.sort String.compare (idx @ vws))

(* --- sizing --------------------------------------------------------------- *)

(** Width of an index column: base columns read the catalog, view columns
    resolve through the view's output items (aggregates are 8-byte
    numbers). *)
let column_width catalog t (c : column) =
  match Relax_catalog.Catalog.col_stats_opt catalog c with
  | Some s -> s.width
  | None -> (
    match find_view t c.tbl with
    | None -> 8.0
    | Some (v, _) -> (
      match View.item_of_view_column v c with
      | Some (Item_col base) -> (
        match Relax_catalog.Catalog.col_stats_opt catalog base with
        | Some s -> s.width
        | None -> 8.0)
      | Some (Item_agg _) | None -> 8.0))

(** Row count of a relation under this configuration. *)
let relation_rows catalog t name =
  match find_view t name with
  | Some (_, rows) -> rows
  | None -> Relax_catalog.Catalog.rows catalog name

(** Full row width of a relation (for clustered leaves and heap pages). *)
let relation_row_width catalog t name =
  match find_view t name with
  | Some (v, _) ->
    List.fold_left
      (fun acc (_, it) -> acc +. column_width catalog t (View.column_of_item v it))
      0.0
      (List.map (fun (n, it) -> (n, it)) (View.outputs v))
  | None -> Relax_catalog.Catalog.row_width catalog name

(** Size in bytes of one index under this configuration. *)
let index_bytes catalog t (i : Index.t) =
  let name = Index.owner i in
  Size_model.index_bytes
    ~rows:(relation_rows catalog t name)
    ~width_of:(column_width catalog t)
    ~row_width:(relation_row_width catalog t name)
    i

(** Total size of the configuration: the sum of sizes of all physical
    structures (§3.3.1).  A view's storage is carried by its indexes
    (including the clustered one). *)
let bytes catalog t =
  Index.Set.fold (fun i acc -> acc +. index_bytes catalog t i) t.indexes 0.0

(** Total storage footprint: the configuration's structures plus base-table
    storage (each table is a heap unless the configuration clusters it).
    This is the quantity compared against the space budget; promoting an
    index to clustered trades the heap for the clustered leaves. *)
let total_bytes catalog t =
  let module Cat = Relax_catalog.Catalog in
  List.fold_left
    (fun acc name ->
      if clustered_on t name <> None then acc
      else
        acc
        +. Size_model.heap_pages ~rows:(Cat.rows catalog name)
             ~row_width:(Cat.row_width catalog name) ()
           *. Size_model.default_params.page_size)
    (bytes catalog t) (Cat.table_names catalog)

let pp ppf t =
  Fmt.pf ppf "@[<v>config (%d structures):@," (cardinal t);
  String_map.iter (fun _ (v, rows) -> Fmt.pf ppf "  %a  [~%.0f rows]@," View.pp v rows) t.views;
  Index.Set.iter (fun i -> Fmt.pf ppf "  %a@," Index.pp i) t.indexes;
  Fmt.pf ppf "@]"
