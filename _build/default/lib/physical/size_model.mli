(** The B-tree size model of §3.3.1.

    An index's size is the sum of pages over the B-tree levels: leaf entries
    hold key plus suffix columns (plus a rid in secondary indexes, or the
    whole row in clustered ones); internal entries hold key columns plus a
    child pointer.  [PL = page/WL] entries fit a leaf page, [PI = page/WI]
    an internal page; level 0 takes [ceil(rows/PL)] pages and level [i]
    takes [ceil(S_{i-1}/PI)]. *)

type params = {
  page_size : float;
  fill_factor : float;
  rid_width : float;
  pointer_width : float;
  page_overhead : float;
}

val default_params : params
(** 8 KiB pages, 75 % fill, 8-byte rids and pointers, 96-byte headers. *)

val btree_pages :
  ?params:params -> rows:float -> leaf_width:float -> key_width:float ->
  unit -> float

val btree_height :
  ?params:params -> rows:float -> leaf_width:float -> key_width:float ->
  unit -> int
(** Levels above the leaves: the random reads of one seek descent. *)

val index_bytes :
  ?params:params ->
  rows:float ->
  width_of:(Relax_sql.Types.column -> float) ->
  row_width:float ->
  Index.t ->
  float
(** Size in bytes of an index over a relation with [rows] rows;
    [width_of] resolves column widths, [row_width] is the full row width
    (clustered leaves). *)

val leaf_pages :
  ?params:params ->
  rows:float ->
  width_of:(Relax_sql.Types.column -> float) ->
  row_width:float ->
  Index.t ->
  float
(** Leaf page count: what scans and range seeks touch. *)

val height :
  ?params:params ->
  rows:float ->
  width_of:(Relax_sql.Types.column -> float) ->
  row_width:float ->
  Index.t ->
  int

val heap_pages : ?params:params -> rows:float -> row_width:float -> unit -> float

val mb : float -> float
val gb : float -> float
val pp_bytes : Format.formatter -> float -> unit
