(** Physical configurations: a set of indexes plus a set of materialized
    views, each view carrying the row estimate computed when it was created
    (§3.3.1 uses the optimizer's cardinality module for this).

    Configurations are immutable values; the optimizer takes one as input —
    that {e is} the what-if interface: hypothetical structures are simulated
    simply by being present. *)

open Relax_sql.Types

type t

val empty : t
val of_indexes : Index.t list -> t

(** {1 Contents} *)

val indexes : t -> Index.t list
val index_set : t -> Index.Set.t
val views : t -> View.t list
val views_with_rows : t -> (View.t * float) list
val mem_index : t -> Index.t -> bool
val mem_view : t -> View.t -> bool
val find_view : t -> string -> (View.t * float) option
val indexes_on : t -> string -> Index.t list
val clustered_on : t -> string -> Index.t option
val cardinal : t -> int
val is_empty : t -> bool

(** {1 Updates} *)

val add_index : t -> Index.t -> t
val add_view : t -> View.t -> rows:float -> t
val remove_index : t -> Index.t -> t

val remove_view : t -> View.t -> t
(** Also removes every index defined over the view (§3.1.2, Removal). *)

val union : t -> t -> t

(** {1 Identity} *)

val structure_names : t -> string list
val fingerprint : t -> string

val fingerprint_for_tables : t -> string list -> string
(** Fingerprint of the sub-configuration relevant to the given tables; two
    configurations agreeing on it yield identical plans for queries over
    those tables (the what-if memoization key). *)

(** {1 Sizing (§3.3.1)} *)

val column_width : Relax_catalog.Catalog.t -> t -> column -> float
val relation_rows : Relax_catalog.Catalog.t -> t -> string -> float
val relation_row_width : Relax_catalog.Catalog.t -> t -> string -> float
val index_bytes : Relax_catalog.Catalog.t -> t -> Index.t -> float

val bytes : Relax_catalog.Catalog.t -> t -> float
(** Sum of sizes of the configuration's structures. *)

val total_bytes : Relax_catalog.Catalog.t -> t -> float
(** {!bytes} plus base-table storage (a heap unless the configuration
    clusters the table): the quantity compared against the space budget.
    Promoting an index to clustered trades the heap for clustered leaves. *)

val pp : Format.formatter -> t -> unit
