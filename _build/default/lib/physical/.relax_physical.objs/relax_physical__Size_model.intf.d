lib/physical/size_model.mli: Format Index Relax_sql
