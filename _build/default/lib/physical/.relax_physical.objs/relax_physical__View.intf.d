lib/physical/view.mli: Format Relax_sql
