lib/physical/config.mli: Format Index Relax_catalog Relax_sql View
