lib/physical/ddl.ml: Column_set Config Fmt Index List Relax_sql String View
