lib/physical/index.mli: Column_set Format Relax_sql Stdlib
