lib/physical/index.ml: Bool Column Column_set Fmt List Relax_sql Stdlib String
