lib/physical/ddl.mli: Config Format Index View
