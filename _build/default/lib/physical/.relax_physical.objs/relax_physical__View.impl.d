lib/physical/view.ml: Buffer Column Column_set Digest Fmt Hashtbl List Relax_sql String
