lib/physical/config.ml: Fmt Index List Map Relax_catalog Relax_sql Size_model String View
