lib/physical/size_model.ml: Float Fmt Index List Relax_sql
