(** Materialized views.

    A view is an SPJG block [V = (S, F, J, R, O, G)] (§3.1.2).  When
    simulated, a view becomes a derived table whose columns are the mangled
    output items; secondary indexes can then be built over the view exactly
    as over base tables.  This module provides the pure structural parts:
    naming, output-column mapping, and the §3.1.2 merge operation. *)

open Relax_sql.Types
module Query = Relax_sql.Query
module Predicate = Relax_sql.Predicate
module Expr = Relax_sql.Expr

type t = {
  vname : string;  (** derived-table name, canonical in the definition *)
  def : Query.spjg;
}

(* Deterministic, readable mangled name for an output item. *)
let item_name (it : Query.select_item) =
  match it with
  | Item_col c -> c.tbl ^ "_" ^ c.col
  | Item_agg (f, Some c) ->
    Fmt.str "%a_%s_%s" Query.pp_agg_fn f c.tbl c.col |> String.lowercase_ascii
  | Item_agg (f, None) ->
    Fmt.str "%a_star" Query.pp_agg_fn f |> String.lowercase_ascii

let dedup_items items =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun it ->
      let k = item_name it in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    items

(* A short stable digest of the definition for the view name. *)
let fingerprint (def : Query.spjg) =
  let b = Buffer.create 128 in
  List.iter (fun it -> Buffer.add_string b (item_name it)) (dedup_items def.select);
  List.iter (Buffer.add_string b) def.tables;
  List.iter
    (fun (j : Predicate.join) ->
      Buffer.add_string b (Column.to_string j.left);
      Buffer.add_string b (Column.to_string j.right))
    def.joins;
  List.iter
    (fun r -> Buffer.add_string b (Fmt.str "%a" Predicate.pp_range r))
    def.ranges;
  List.iter (fun e -> Buffer.add_string b (Expr.fingerprint e)) def.others;
  List.iter (fun c -> Buffer.add_string b (Column.to_string c)) def.group_by;
  Buffer.contents b

let make (def : Query.spjg) : t =
  let def = { def with select = dedup_items def.select } in
  let digest = Digest.to_hex (Digest.string (fingerprint def)) in
  { vname = "v_" ^ String.sub digest 0 10; def }

let name t = t.vname
let definition t = t.def

let equal a b = String.equal a.vname b.vname
let compare a b = String.compare a.vname b.vname

(** Output items, in select order, with their mangled column names. *)
let outputs t : (string * Query.select_item) list =
  List.map (fun it -> (item_name it, it)) t.def.select

(** The view-qualified column for an output item. *)
let column_of_item t it = Column.make t.vname (item_name it)

(** Map a base-table column to its view column, if the view exposes it
    as a plain (non-aggregated) output. *)
let view_column_of_base t (c : column) : column option =
  List.find_map
    (fun (it : Query.select_item) ->
      match it with
      | Item_col c' when Column.equal c c' -> Some (column_of_item t it)
      | Item_col _ | Item_agg _ -> None)
    t.def.select

(** Inverse of {!view_column_of_base} / aggregate lookup: the select item a
    view column stands for. *)
let item_of_view_column t (c : column) : Query.select_item option =
  if c.tbl <> t.vname then None
  else
    List.find_map
      (fun it -> if item_name it = c.col then Some it else None)
      t.def.select

(** Does the view definition contain aggregates? *)
let has_aggregates t = Query.has_aggregates t.def

(** Tables the view reads (its F component); an update to any of them incurs
    view-maintenance cost. *)
let base_tables t = t.def.tables

let pp ppf t =
  Fmt.pf ppf "%s = %a" t.vname Relax_sql.Pretty.pp_spjg t.def

(* --- §3.1.2 view merging -------------------------------------------------- *)

(** Result of merging two views: the merged view plus the column remapping
    for each input (used to promote indexes from the inputs onto the merged
    view). *)
type merge_result = {
  merged : t;
  (* for each input view, maps that view's output column to the merged
     view's output column carrying the same contents *)
  remap1 : column -> column option;
  remap2 : column -> column option;
}

(** Merge two views with identical FROM sets (§3.1.2):
    [JM = J1 ∩ J2], [RM] unions same-column ranges (dropping ones that
    become unbounded or appear on one side only, while exposing the
    column so the original predicate can be compensated), [OM = O1 ∩ O2]
    structurally, [GM = G1 ∪ G2] when both group, and [SM] keeps
    aggregates only when a grouping survives.  Returns [None] when the
    FROM sets differ. *)
let merge (v1 : t) (v2 : t) : merge_result option =
  let d1 = v1.def and d2 = v2.def in
  if d1.tables <> d2.tables then None
  else begin
    let jm =
      List.filter (fun j -> Predicate.join_mem j d2.joins) d1.joins
    in
    (* Range merge: same-column ranges union; single-sided or unbounded
       ranges are dropped but their column must remain available for
       compensating filters. *)
    let compensation_cols = ref Column_set.empty in
    let need c = compensation_cols := Column_set.add c !compensation_cols in
    let rm =
      List.filter_map
        (fun (r1 : Predicate.range) ->
          match
            List.find_opt
              (fun (r2 : Predicate.range) -> Column.equal r1.rcol r2.rcol)
              d2.ranges
          with
          | None ->
            need r1.rcol;
            None
          | Some r2 ->
            let u = Predicate.range_union r1 r2 in
            if Predicate.is_unbounded u then begin
              need r1.rcol;
              None
            end
            else begin
              (* the surviving range is wider than either input, so both
                 sides still need the column for residual filtering *)
              if not (Predicate.range_equal u r1 && Predicate.range_equal u r2)
              then need r1.rcol;
              Some u
            end)
        d1.ranges
    in
    List.iter
      (fun (r2 : Predicate.range) ->
        if
          not
            (List.exists
               (fun (r1 : Predicate.range) -> Column.equal r1.rcol r2.rcol)
               d1.ranges)
        then need r2.rcol)
      d2.ranges;
    (* OM: structural intersection; conjuncts lost from either side need
       their columns exposed for compensation. *)
    let om =
      List.filter (fun e1 -> List.exists (Expr.equal e1) d2.others) d1.others
    in
    let lost_others =
      List.filter (fun e -> not (List.exists (Expr.equal e) om)) d1.others
      @ List.filter (fun e -> not (List.exists (Expr.equal e) om)) d2.others
    in
    List.iter
      (fun e -> Column_set.iter need (Expr.columns e))
      lost_others;
    (* Joins lost from either side also need their columns for compensation *)
    let lost_joins =
      List.filter (fun j -> not (Predicate.join_mem j jm)) (d1.joins @ d2.joins)
    in
    List.iter
      (fun (j : Predicate.join) ->
        need j.left;
        need j.right)
      lost_joins;
    let gm =
      if d1.group_by = [] || d2.group_by = [] then []
      else
        d1.group_by
        @ List.filter
            (fun c -> not (List.exists (Column.equal c) d1.group_by))
            d2.group_by
    in
    let sm =
      if gm <> [] then begin
        (* grouping survives: keep aggregates from both sides; compensation
           columns must join the grouping so residual predicates remain
           evaluable *)
        let extra =
          Column_set.elements !compensation_cols
          |> List.map (fun c -> Query.Item_col c)
        in
        dedup_items (d1.select @ d2.select @ extra)
      end
      else begin
        (* no grouping: aggregates cannot be stored; replace them by their
           base argument columns *)
        let debase (it : Query.select_item) =
          match it with
          | Item_col _ -> [ it ]
          | Item_agg (_, Some c) -> [ Query.Item_col c ]
          | Item_agg (_, None) -> []
        in
        let extra =
          Column_set.elements !compensation_cols
          |> List.map (fun c -> Query.Item_col c)
        in
        dedup_items (List.concat_map debase (d1.select @ d2.select) @ extra)
      end
    in
    let gm =
      if gm = [] then []
      else begin
        (* compensation columns must be grouped as well *)
        let extra =
          Column_set.elements !compensation_cols
          |> List.filter (fun c -> not (List.exists (Column.equal c) gm))
        in
        gm @ extra
      end
    in
    let merged =
      make
        (Query.make_spjg ~select:sm ~tables:d1.tables ~joins:jm ~ranges:rm
           ~others:om ~group_by:gm ())
    in
    (* Column remapping: an output item of an input view maps to the merged
       output carrying the same item; aggregates that were debased map to
       their base column. *)
    let remap (v : t) (c : column) : column option =
      match item_of_view_column v c with
      | None -> None
      | Some it -> (
        let target =
          if List.exists (fun it' -> item_name it' = item_name it) merged.def.select
          then Some it
          else
            match it with
            | Item_agg (_, Some base)
              when List.exists
                     (fun it' -> item_name it' = item_name (Item_col base))
                     merged.def.select -> Some (Query.Item_col base)
            | _ -> None
        in
        match target with
        | Some it' -> Some (column_of_item merged it')
        | None -> None)
    in
    Some { merged; remap1 = remap v1; remap2 = remap v2 }
  end
