(** Synthetic value distributions for catalog columns.

    Base tables never store rows in this reproduction — the whole tuning
    pipeline (like the paper's PTT and CTT) operates on optimizer estimates.
    Distributions are what the statistics are {e built from}: the catalog
    samples a distribution to construct histograms and average widths,
    playing the role the paper assigns to sampling the stored data. *)

open Relax_sql.Types

type t =
  | Uniform of float * float  (** uniform on [lo, hi] *)
  | Zipf of { n : int; skew : float }
      (** values 1..n with zipfian frequencies *)
  | Normal of { mean : float; stddev : float }
  | Serial  (** a key column: value = row number, all distinct *)

let pp ppf = function
  | Uniform (lo, hi) -> Fmt.pf ppf "uniform[%g,%g]" lo hi
  | Zipf { n; skew } -> Fmt.pf ppf "zipf(n=%d,s=%g)" n skew
  | Normal { mean; stddev } -> Fmt.pf ppf "normal(%g,%g)" mean stddev
  | Serial -> Fmt.string ppf "serial"

(** Draw one value; [row] feeds [Serial] columns. *)
let draw t rng ~row =
  match t with
  | Uniform (lo, hi) -> Rng.float_range rng lo hi
  | Zipf { n; skew } -> float_of_int (Rng.zipf rng ~n ~skew)
  | Normal { mean; stddev } -> Rng.normal rng ~mean ~stddev
  | Serial -> float_of_int row

(** Theoretical support bounds (used for histogram framing and for the
    min/max statistics). *)
let support t ~rows =
  match t with
  | Uniform (lo, hi) -> (lo, hi)
  | Zipf { n; _ } -> (1.0, float_of_int n)
  | Normal { mean; stddev } -> (mean -. (4.0 *. stddev), mean +. (4.0 *. stddev))
  | Serial -> (0.0, float_of_int (max 0 (rows - 1)))

(** Estimated distinct-value count for a column with [rows] rows. *)
let distinct t ~rows =
  match t with
  | Serial -> rows
  | Uniform (lo, hi) ->
    (* treat as integer-valued when the span is small *)
    let span = int_of_float (hi -. lo) + 1 in
    min rows (max 1 span)
  | Zipf { n; _ } -> min rows n
  | Normal { stddev; _ } ->
    min rows (max 1 (int_of_float (8.0 *. stddev)))

(** A typical value drawn deterministically (used to instantiate predicate
    constants in generated workloads). *)
let quantile t ~rows q =
  let lo, hi = support t ~rows in
  lo +. (q *. (hi -. lo))

let default_for_type = function
  | Int -> Uniform (0.0, 10_000.0)
  | Float -> Normal { mean = 1000.0; stddev = 250.0 }
  | Date -> Uniform (8000.0, 11650.0) (* ~1992 .. 2001 in day numbers *)
  | Char _ | Varchar _ -> Zipf { n = 1000; skew = 0.8 }
