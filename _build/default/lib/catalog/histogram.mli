(** Equi-depth histograms over the float embedding of column values, built
    by sampling a {!Distribution.t} and queried by the optimizer's
    selectivity estimator. *)

type bucket = {
  lo : float;  (** inclusive lower boundary *)
  hi : float;  (** inclusive upper boundary *)
  frac : float;  (** fraction of rows in this bucket *)
  distinct : float;  (** estimated distinct values inside *)
}

type t

val build :
  ?buckets:int -> ?samples:int -> seed:int -> rows:int -> Distribution.t -> t
(** Equi-depth histogram from [samples] draws (defaults: 32 buckets, 2048
    samples). *)

val of_values : ?buckets:int -> float list -> t
(** Build directly from data points (used in tests and for derived
    columns).  @raise Invalid_argument on []. *)

val buckets : t -> bucket list
val min_value : t -> float
val max_value : t -> float

val selectivity_range : t -> lo:float -> hi:float -> float
(** Fraction of rows with [lo <= v <= hi]; use [neg_infinity]/[infinity]
    for open sides.  Uniform-inside-bucket assumption; result in [0, 1]. *)

val selectivity_eq : t -> float -> float
(** Fraction of rows equal to the given value: the containing bucket's mass
    divided by its distinct count. *)

val pp : Format.formatter -> t -> unit
