(** Parser for schema-definition scripts: catalogs described in text.

    Grammar (statements separated by [;]):
    {v
    CREATE TABLE name ROWS n (
      col INT SERIAL,
      col INT UNIFORM(lo, hi),
      col FLOAT NORMAL(mean, stddev),
      col INT ZIPF(n, skew),
      col VARCHAR(40),                       -- default distribution
      col INT REFERENCES other(key)          -- FK: uniform over the parent
    );
    v}
    [REFERENCES] both sets the column's distribution (uniform over the
    parent's serial key range) and records an edge in the foreign-key join
    graph returned alongside the catalog — which is what the random
    workload generator walks. *)

open Relax_sql.Types
module Lexer = Relax_sql.Lexer

exception Schema_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Schema_error s)) fmt

type state = { mutable toks : Lexer.token list }

let peek st = match st.toks with [] -> Lexer.EOF | t :: _ -> t
let advance st = match st.toks with [] -> () | _ :: r -> st.toks <- r

let expect st tok =
  if peek st = tok then advance st
  else
    fail "expected %s, found %s"
      (Fmt.str "%a" Lexer.pp_token tok)
      (Fmt.str "%a" Lexer.pp_token (peek st))

let expect_kw st kw =
  match peek st with
  | Lexer.KW k when k = kw -> advance st
  | t -> fail "expected %s, found %a" kw Lexer.pp_token t

let ident st =
  match peek st with
  | Lexer.IDENT s ->
    advance st;
    s
  | t -> fail "expected identifier, found %a" Lexer.pp_token t

let number st =
  match peek st with
  | Lexer.INT i ->
    advance st;
    float_of_int i
  | Lexer.FLOAT f ->
    advance st;
    f
  | Lexer.MINUS -> (
    advance st;
    match peek st with
    | Lexer.INT i ->
      advance st;
      float_of_int (-i)
    | Lexer.FLOAT f ->
      advance st;
      -.f
    | t -> fail "expected number, found %a" Lexer.pp_token t)
  | t -> fail "expected number, found %a" Lexer.pp_token t

let int_arg st = int_of_float (number st)

(* a pending column: the FK targets resolve after all tables are parsed *)
type pending_col = {
  pc_name : string;
  pc_type : data_type;
  pc_dist : Distribution.t option;
  pc_ref : (string * string) option;  (** REFERENCES table(column) *)
}

type pending_table = {
  pt_name : string;
  pt_rows : int;
  pt_cols : pending_col list;
}

let parse_type st : data_type =
  match peek st with
  | Lexer.KW "INT" ->
    advance st;
    Int
  | Lexer.KW "FLOAT" ->
    advance st;
    Float
  | Lexer.KW "DATE" ->
    advance st;
    Date
  | Lexer.KW "CHAR" ->
    advance st;
    expect st Lexer.LPAREN;
    let n = int_arg st in
    expect st Lexer.RPAREN;
    Char n
  | Lexer.KW "VARCHAR" ->
    advance st;
    expect st Lexer.LPAREN;
    let n = int_arg st in
    expect st Lexer.RPAREN;
    Varchar n
  | t -> fail "expected a column type, found %a" Lexer.pp_token t

let parse_dist st : Distribution.t option * (string * string) option =
  match peek st with
  | Lexer.KW "SERIAL" ->
    advance st;
    (Some Distribution.Serial, None)
  | Lexer.KW "UNIFORM" ->
    advance st;
    expect st Lexer.LPAREN;
    let lo = number st in
    expect st Lexer.COMMA;
    let hi = number st in
    expect st Lexer.RPAREN;
    (Some (Distribution.Uniform (lo, hi)), None)
  | Lexer.KW "ZIPF" ->
    advance st;
    expect st Lexer.LPAREN;
    let n = int_arg st in
    expect st Lexer.COMMA;
    let skew = number st in
    expect st Lexer.RPAREN;
    (Some (Distribution.Zipf { n; skew }), None)
  | Lexer.KW "NORMAL" ->
    advance st;
    expect st Lexer.LPAREN;
    let mean = number st in
    expect st Lexer.COMMA;
    let stddev = number st in
    expect st Lexer.RPAREN;
    (Some (Distribution.Normal { mean; stddev }), None)
  | Lexer.KW "REFERENCES" ->
    advance st;
    let t = ident st in
    expect st Lexer.LPAREN;
    let c = ident st in
    expect st Lexer.RPAREN;
    (None, Some (t, c))
  | _ -> (None, None)

let parse_column st : pending_col =
  let pc_name = ident st in
  let pc_type = parse_type st in
  let pc_dist, pc_ref = parse_dist st in
  { pc_name; pc_type; pc_dist; pc_ref }

let parse_table st : pending_table =
  expect_kw st "CREATE";
  expect_kw st "TABLE";
  let pt_name = ident st in
  expect_kw st "ROWS";
  let pt_rows = int_arg st in
  expect st Lexer.LPAREN;
  let rec cols acc =
    let c = parse_column st in
    if peek st = Lexer.COMMA then begin
      advance st;
      cols (c :: acc)
    end
    else List.rev (c :: acc)
  in
  let pt_cols = cols [] in
  expect st Lexer.RPAREN;
  (match peek st with Lexer.SEMI -> advance st | _ -> ());
  { pt_name; pt_rows; pt_cols }

(** Parse a schema script into a catalog plus its foreign-key join graph
    (usable as a {e generator schema} together with the catalog).
    @raise Schema_error on malformed input. *)
let parse ?(seed = 42) (src : string) :
    Catalog.t * (column * column) list =
  let st = { toks = Lexer.tokenize src } in
  let rec tables acc =
    match peek st with
    | Lexer.EOF -> List.rev acc
    | _ -> tables (parse_table st :: acc)
  in
  let pending = tables [] in
  let rows_of name =
    match List.find_opt (fun t -> t.pt_name = name) pending with
    | Some t -> t.pt_rows
    | None -> fail "REFERENCES unknown table %s" name
  in
  let joins = ref [] in
  let table_of (pt : pending_table) : Catalog.table_def =
    let cols =
      List.map
        (fun (pc : pending_col) ->
          let dist =
            match (pc.pc_dist, pc.pc_ref) with
            | Some d, _ -> Some d
            | None, Some (t, c) ->
              joins :=
                (Column.make pt.pt_name pc.pc_name, Column.make t c) :: !joins;
              Some (Distribution.Uniform (0.0, float_of_int (max 1 (rows_of t) - 1)))
            | None, None -> None
          in
          Catalog.column ?dist pc.pc_name pc.pc_type)
        pt.pt_cols
    in
    Catalog.table pt.pt_name ~rows:pt.pt_rows cols
  in
  let defs = List.map table_of pending in
  (Catalog.create ~seed defs, List.rev !joins)
