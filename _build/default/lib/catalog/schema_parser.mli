(** Parser for schema-definition scripts: catalogs described in text.

    {v
    CREATE TABLE users ROWS 500000 (
      id INT SERIAL,
      country INT UNIFORM(0, 99),
      income FLOAT NORMAL(60000, 25000),
      segment INT ZIPF(8, 0.4),
      name VARCHAR(40)
    );
    CREATE TABLE posts ROWS 5000000 (
      id INT SERIAL,
      author INT REFERENCES users(id),
      score INT ZIPF(1000, 0.9)
    );
    v}

    [REFERENCES parent(key)] sets a uniform distribution over the parent's
    key range and records an edge in the returned foreign-key join graph
    (what the random workload generator walks). *)

exception Schema_error of string

val parse :
  ?seed:int ->
  string ->
  Catalog.t * (Relax_sql.Types.column * Relax_sql.Types.column) list
(** @raise Schema_error on malformed input.
    @raise Relax_sql.Lexer.Lex_error on invalid tokens. *)
