(** Deterministic splitmix64 random number generator.  Every stochastic
    component (histogram sampling, workload generation) threads an explicit
    generator seeded by the caller, so runs are reproducible. *)

type t

val create : int -> t
val next_int64 : t -> int64

val float : t -> float
(** Uniform in [0, 1). *)

val int : t -> int -> int
(** [int t n]: uniform in [0, n).  @raise Invalid_argument if [n <= 0]. *)

val int_range : t -> int -> int -> int
(** [int_range t lo hi]: uniform in [lo, hi] inclusive. *)

val float_range : t -> float -> float -> float
(** Uniform in [lo, hi). *)

val bernoulli : t -> float -> bool
(** True with the given probability. *)

val choose : t -> 'a list -> 'a
(** Uniform element of a non-empty list.  @raise Invalid_argument on []. *)

val sample : t -> int -> 'a list -> 'a list
(** A uniform random subset of size [min k (length l)]. *)

val shuffle : t -> 'a list -> 'a list

val normal : t -> mean:float -> stddev:float -> float
(** Gaussian via Box–Muller. *)

val zipf : t -> n:int -> skew:float -> int
(** Zipf-distributed rank in [1, n]. *)

val split : t -> t
(** Derive an independent generator without disturbing the parent. *)
