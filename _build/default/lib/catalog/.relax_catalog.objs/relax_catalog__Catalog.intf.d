lib/catalog/catalog.mli: Distribution Format Histogram Relax_sql
