lib/catalog/catalog.ml: Column Distribution Fmt Hashtbl Histogram List Map Printf Relax_sql String
