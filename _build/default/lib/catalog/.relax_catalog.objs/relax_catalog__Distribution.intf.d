lib/catalog/distribution.mli: Format Relax_sql Rng
