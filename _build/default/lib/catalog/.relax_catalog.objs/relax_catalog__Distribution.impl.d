lib/catalog/distribution.ml: Fmt Relax_sql Rng
