lib/catalog/histogram.ml: Array Distribution Float Fmt List Rng
