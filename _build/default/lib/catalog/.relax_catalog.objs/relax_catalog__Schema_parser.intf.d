lib/catalog/schema_parser.mli: Catalog Relax_sql
