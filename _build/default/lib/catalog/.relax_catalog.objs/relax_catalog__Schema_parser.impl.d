lib/catalog/schema_parser.ml: Catalog Column Distribution Fmt List Relax_sql
