lib/catalog/rng.ml: Array Float Int64 List
