lib/catalog/rng.mli:
