lib/catalog/histogram.mli: Distribution Format
