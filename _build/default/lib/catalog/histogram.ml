(** Equi-depth histograms over the float embedding of column values.

    Built by sampling a {!Distribution.t} (standing in for sampling stored
    data, as the paper's tools do when creating statistics), and queried by
    the optimizer's selectivity estimator. *)

type bucket = {
  lo : float;  (** inclusive lower boundary *)
  hi : float;  (** inclusive upper boundary *)
  frac : float;  (** fraction of rows falling in this bucket *)
  distinct : float;  (** estimated distinct values inside the bucket *)
}

type t = {
  buckets : bucket array;
  min_v : float;
  max_v : float;
  null_frac : float;
}

let buckets t = Array.to_list t.buckets
let min_value t = t.min_v
let max_value t = t.max_v

(** Build an equi-depth histogram with [buckets] buckets from [samples]
    draws of [dist]. *)
let build ?(buckets = 32) ?(samples = 2048) ~seed ~rows dist =
  let rng = Rng.create seed in
  let n = max buckets samples in
  let data = Array.init n (fun i -> Distribution.draw dist rng ~row:(i * max 1 (rows / n))) in
  Array.sort Float.compare data;
  let per = n / buckets in
  let bucket_of i =
    let first = i * per in
    let last = if i = buckets - 1 then n - 1 else ((i + 1) * per) - 1 in
    let lo = data.(first) and hi = data.(last) in
    let count = last - first + 1 in
    (* count distinct inside the sorted slice *)
    let distinct = ref 1 in
    for j = first + 1 to last do
      if data.(j) <> data.(j - 1) then incr distinct
    done;
    {
      lo;
      hi;
      frac = float_of_int count /. float_of_int n;
      distinct = float_of_int !distinct;
    }
  in
  {
    buckets = Array.init buckets bucket_of;
    min_v = data.(0);
    max_v = data.(n - 1);
    null_frac = 0.0;
  }

(** Build directly from explicit data points (used in tests). *)
let of_values ?(buckets = 8) values =
  if values = [] then invalid_arg "Histogram.of_values: empty";
  let data = Array.of_list values in
  Array.sort Float.compare data;
  let n = Array.length data in
  let buckets = min buckets n in
  let per = max 1 (n / buckets) in
  let rec collect i acc =
    if i >= buckets then List.rev acc
    else
      let first = i * per in
      let last = if i = buckets - 1 then n - 1 else min (n - 1) (((i + 1) * per) - 1) in
      if first > last then List.rev acc
      else begin
        let distinct = ref 1 in
        for j = first + 1 to last do
          if data.(j) <> data.(j - 1) then incr distinct
        done;
        let b =
          {
            lo = data.(first);
            hi = data.(last);
            frac = float_of_int (last - first + 1) /. float_of_int n;
            distinct = float_of_int !distinct;
          }
        in
        collect (i + 1) (b :: acc)
      end
  in
  let bs = collect 0 [] in
  {
    buckets = Array.of_list bs;
    min_v = data.(0);
    max_v = data.(n - 1);
    null_frac = 0.0;
  }

(* Fraction of a bucket covered by [lo, hi] under a uniform-inside-bucket
   assumption. *)
let bucket_overlap b ~lo ~hi =
  let blo = b.lo and bhi = b.hi in
  if hi < blo || lo > bhi then 0.0
  else if bhi = blo then 1.0
  else
    let l = Float.max lo blo and h = Float.min hi bhi in
    Float.max 0.0 (h -. l) /. (bhi -. blo)

(** Selectivity of [lo <= col <= hi]; [neg_infinity]/[infinity] encode
    open sides. *)
let selectivity_range t ~lo ~hi =
  if hi < lo then 0.0
  else
    Array.fold_left
      (fun acc b -> acc +. (b.frac *. bucket_overlap b ~lo ~hi))
      0.0 t.buckets
    |> Float.min 1.0

(** Selectivity of an equality predicate: the matching bucket's share split
    across its distinct values. *)
let selectivity_eq t v =
  let sel = ref 0.0 in
  Array.iter
    (fun b ->
      if v >= b.lo && v <= b.hi then
        sel := !sel +. (b.frac /. Float.max 1.0 b.distinct))
    t.buckets;
  Float.min 1.0 !sel

let pp ppf t =
  Fmt.pf ppf "@[<v>histogram [%g, %g]:@," t.min_v t.max_v;
  Array.iter
    (fun b ->
      Fmt.pf ppf "  [%g, %g] frac=%.4f distinct=%g@," b.lo b.hi b.frac
        b.distinct)
    t.buckets;
  Fmt.pf ppf "@]"
