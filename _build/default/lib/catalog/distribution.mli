(** Synthetic value distributions for catalog columns.

    Base tables store no rows in this reproduction — the tuning pipeline
    operates on optimizer estimates, as the paper's tools do.  Distributions
    are what the statistics are {e built from}: histograms and widths are
    sampled from them, playing the role the paper assigns to sampling
    stored data. *)

type t =
  | Uniform of float * float  (** uniform on [lo, hi] *)
  | Zipf of { n : int; skew : float }  (** ranks 1..n, zipfian frequencies *)
  | Normal of { mean : float; stddev : float }
  | Serial  (** key column: value = row number, all distinct *)

val pp : Format.formatter -> t -> unit

val draw : t -> Rng.t -> row:int -> float
(** One sample; [row] feeds [Serial]. *)

val support : t -> rows:int -> float * float
(** Theoretical (min, max) for histogram framing. *)

val distinct : t -> rows:int -> int
(** Estimated distinct count for a column with [rows] rows. *)

val quantile : t -> rows:int -> float -> float
(** Deterministic value at quantile [q] of the support (used to instantiate
    predicate constants in generated workloads). *)

val default_for_type : Relax_sql.Types.data_type -> t
