(** Deterministic splitmix64 random number generator.

    Every stochastic component in the system (histogram sampling, workload
    generation) threads an explicit generator seeded by the caller, so runs
    are reproducible bit-for-bit. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

(* splitmix64, Steele et al.; the standard small fast generator. *)
let next_int64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** Uniform float in [0, 1). *)
let float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0 (* 2^53 *)

(** Uniform integer in [0, n). *)
let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  int_of_float (float t *. float_of_int n)

(** Uniform integer in [lo, hi] inclusive. *)
let int_range t lo hi = lo + int t (hi - lo + 1)

(** Uniform float in [lo, hi). *)
let float_range t lo hi = lo +. (float t *. (hi -. lo))

(** True with probability [p]. *)
let bernoulli t p = float t < p

(** Pick a uniformly random element of a non-empty list. *)
let choose t = function
  | [] -> invalid_arg "Rng.choose: empty list"
  | l -> List.nth l (int t (List.length l))

(** A random subset of size [k] (Fisher–Yates prefix). *)
let sample t k l =
  let arr = Array.of_list l in
  let n = Array.length arr in
  let k = min k n in
  for i = 0 to k - 1 do
    let j = int_range t i (n - 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list (Array.sub arr 0 k)

(** Shuffle a list. *)
let shuffle t l = sample t (List.length l) l

(** Standard normal via Box-Muller. *)
let normal t ~mean ~stddev =
  let u1 = max 1e-12 (float t) and u2 = float t in
  mean +. (stddev *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

(** Zipf-distributed rank in [1, n] with skew [s], by inverse-CDF over the
    harmonic weights (linear scan is fine for the sizes we draw). *)
let zipf t ~n ~skew =
  let h = ref 0.0 in
  for k = 1 to n do
    h := !h +. (1.0 /. Float.pow (float_of_int k) skew)
  done;
  let target = float t *. !h in
  let acc = ref 0.0 and result = ref n in
  (try
     for k = 1 to n do
       acc := !acc +. (1.0 /. Float.pow (float_of_int k) skew);
       if !acc >= target then begin
         result := k;
         raise Exit
       end
     done
   with Exit -> ());
  !result

(** Derive an independent generator (e.g. one per table/column) without
    disturbing the parent's stream. *)
let split t =
  let s = next_int64 t in
  { state = s }
