(** Execution-cost upper bounds for relaxed configurations (§3.3.2).

    Each access sub-plan that used a replaced structure is re-costed against
    the relaxed configuration by re-running access-path selection only (a
    component of the optimizer, not a full optimization call), adding
    compensating lookups, filters, sorts or group-bys.  Substituting the
    patched sub-plan into the otherwise unchanged plan yields a valid plan
    under the relaxed configuration — hence a true upper bound.

    Removed views are bounded by [CBV]: the cost of computing the view from
    scratch under the base configuration plus a scan over its result. *)

module Index = Relax_physical.Index
module View = Relax_physical.View
module O = Relax_optimizer

(** Context describing one candidate relaxation [C -> C']. *)
type context = {
  env' : O.Env.t;  (** environment under the relaxed configuration *)
  old_env : O.Env.t;  (** environment under the current configuration *)
  removed_indexes : Index.t list;
  removed_views : View.t list;
  view_merge : (View.merge_result * View.t * View.t) option;
      (** set when the transformation merges two views *)
  cbv : View.t -> float;
      (** cost of computing a view under the base configuration *)
}

val affected : context -> O.Plan.access_info -> bool
val plan_affected : context -> O.Plan.t -> bool

val access_bound : context -> O.Plan.access_info -> float
(** Upper bound on re-implementing one affected access under [C'], per
    execution. *)

val query_bound : context -> O.Plan.t -> float
(** Upper bound on the whole query's cost under [C']: patch every affected
    access, keep the rest of the plan. *)
