(** Execution-cost upper bounds for relaxed configurations (§3.3.2).

    The principle: a relaxed configuration [C'] can answer every request the
    replaced structures answered, just less efficiently.  So we isolate each
    access sub-plan that used a replaced structure and re-cost {e only that
    sub-plan} against [C'] (reusing access-path selection — a component of
    the optimizer, not a full optimization call), adding compensating
    rid-lookups, filters, sorts or group-bys where needed.  Substituting the
    patched sub-plan into the otherwise unchanged execution plan yields a
    valid plan under [C'], hence an upper bound on the optimizer's cost.

    Removed views are bounded by [CBV]: the cost of computing the view from
    scratch under the base configuration, plus a scan over its result
    (§3.3.2, "View Transformations"). *)

open Relax_sql.Types
module Index = Relax_physical.Index
module View = Relax_physical.View
module Config = Relax_physical.Config
module Predicate = Relax_sql.Predicate
module Expr = Relax_sql.Expr
module O = Relax_optimizer
module P = O.Cost_params

(** Context describing one candidate relaxation [C -> C']. *)
type context = {
  env' : O.Env.t;  (** environment under the relaxed configuration *)
  old_env : O.Env.t;  (** environment under the current configuration *)
  removed_indexes : Index.t list;
  removed_views : View.t list;
  view_merge : (View.merge_result * View.t * View.t) option;
      (** set when the transformation merges two views (result, v1, v2) *)
  cbv : View.t -> float;
      (** cost of computing a view under the base configuration *)
}

let index_removed ctx i = List.exists (Index.equal i) ctx.removed_indexes

let view_removed ctx name =
  List.exists (fun v -> View.name v = name) ctx.removed_views

(** Is this access affected by the relaxation? *)
let affected ctx (a : O.Plan.access_info) =
  List.exists (fun (u : O.Plan.index_usage) -> index_removed ctx u.index) a.usages
  || view_removed ctx a.rel

exception Unbounded
(* raised when no compensation can be constructed; the caller falls back to
   the CBV bound or, at worst, infinity (the search then avoids the
   transformation) *)

(* --- view-merge compensation ------------------------------------------ *)

(* Remap an access request over view [v] onto the merged view, adding the
   compensating predicates for whatever the merge widened. *)
let remap_request_onto_merged (m : View.merge_result) (v : View.t)
    ~(remap : column -> column option) (r : O.Request.t) : O.Request.t * bool =
  let map_col c = match remap c with Some c' -> c' | None -> raise Unbounded in
  let merged_def = View.definition m.merged in
  let vdef = View.definition v in
  (* base-level predicates of [v] that the merged view no longer enforces *)
  let expose_base c =
    match View.view_column_of_base m.merged c with
    | Some vc -> vc
    | None -> raise Unbounded
  in
  let lost_ranges =
    List.filter_map
      (fun (rv : Predicate.range) ->
        let kept =
          List.exists
            (fun (rm : Predicate.range) ->
              Column.equal rm.rcol rv.rcol && Predicate.range_equal rm rv)
            merged_def.ranges
        in
        if kept then None else Some { rv with rcol = expose_base rv.rcol })
      vdef.ranges
  in
  let lost_others =
    List.filter_map
      (fun e ->
        if List.exists (Expr.equal e) merged_def.others then None
        else Some (Expr.map_columns expose_base e))
      vdef.others
  in
  let lost_joins =
    List.filter_map
      (fun (j : Predicate.join) ->
        if Predicate.join_mem j merged_def.joins then None
        else
          Some (Expr.Cmp (Eq, Col (expose_base j.left), Col (expose_base j.right))))
      vdef.joins
  in
  let ranges = List.map (fun (rg : Predicate.range) -> { rg with rcol = map_col rg.rcol }) r.ranges in
  let others = List.map (Expr.map_columns map_col) r.others in
  let cols =
    Column_set.fold (fun c acc -> Column_set.add (map_col c) acc) r.cols Column_set.empty
  in
  let regroup_needed =
    vdef.group_by <> []
    && not
         (List.length vdef.group_by = List.length merged_def.group_by
         && List.for_all
              (fun g ->
                match View.view_column_of_base v g with
                | Some _ -> List.exists (Column.equal g) merged_def.group_by
                | None -> false)
              vdef.group_by)
  in
  let order = if regroup_needed then [] else List.map (fun (c, d) -> (map_col c, d)) r.order in
  ( O.Request.make ~rel:(View.name m.merged)
      ~ranges:(ranges @ lost_ranges)
      ~others:(others @ lost_others @ lost_joins)
      ~order ~cols (),
    regroup_needed )

(* --- per-access bounds -------------------------------------------------- *)

(* Bound for an access whose view was removed outright: compute the view
   from scratch under the base configuration (CBV) and scan its output. *)
let removed_view_bound ctx (a : O.Plan.access_info) (v : View.t) : float =
  let rows = O.Env.rows ctx.old_env (View.name v) in
  let width = O.Env.row_width ctx.old_env (View.name v) in
  let pages =
    Float.max 1.0
      (rows *. width /. Relax_physical.Size_model.default_params.page_size)
  in
  let scan = (pages *. P.seq_page) +. (rows *. P.cpu_tuple) in
  let sort =
    if a.request.order = [] then 0.0
    else P.sort_cost ~rows:a.access_rows ~pages
  in
  ctx.cbv v +. scan +. (rows *. P.cpu_eval) +. sort

(** Upper bound on the cost of re-implementing one affected access under the
    relaxed configuration (per execution). *)
let access_bound ctx (a : O.Plan.access_info) : float =
  match ctx.view_merge with
  | Some (m, v1, v2) when a.rel = View.name v1 || a.rel = View.name v2 -> (
    let v, remap =
      if a.rel = View.name v1 then (v1, m.remap1) else (v2, m.remap2)
    in
    try
      let request, regroup = remap_request_onto_merged m v ~remap a.request in
      let plan = O.Access_path.best ctx.env' request in
      let regroup_cost =
        if regroup then
          (plan.rows *. P.cpu_hash) +. (a.access_rows *. P.cpu_agg)
        else 0.0
      in
      plan.cost +. regroup_cost
    with Unbounded -> removed_view_bound ctx a v)
  | _ ->
    if view_removed ctx a.rel then begin
      match
        List.find_opt (fun v -> View.name v = a.rel) ctx.removed_views
      with
      | Some v -> removed_view_bound ctx a v
      | None -> raise Unbounded
    end
    else begin
      (* index transformation: the relation still exists under C'; re-run
         access-path selection there.  The result is a valid plan, hence an
         upper bound. *)
      let plan = O.Access_path.best ctx.env' a.request in
      plan.cost
    end

(** Upper bound on the whole query's cost under the relaxed configuration:
    patch every affected access, keep the rest of the plan (§3.3.2). *)
let query_bound ctx (plan : O.Plan.t) : float =
  let accesses = O.Plan.accesses plan in
  List.fold_left
    (fun acc (a : O.Plan.access_info) ->
      if affected ctx a then
        acc
        +. (a.executions *. access_bound ctx a)
        -. (a.executions *. a.access_cost)
      else acc)
    plan.cost accesses

(** Does this plan touch any structure the relaxation removes? *)
let plan_affected ctx (plan : O.Plan.t) =
  List.exists (affected ctx) (O.Plan.accesses plan)
