(** Optimizer instrumentation: deriving the optimal configuration (§2).

    Each index request is answered with the structures making its optimal
    plan possible (§2.1, Lemmas 1–2); each view request with the requested
    sub-query materialized as a view plus a clustered index.  Because view
    matching spawns index requests over the view-tables on the next pass,
    the procedure iterates to a fixpoint. *)

module Query = Relax_sql.Query
module Index = Relax_physical.Index
module View = Relax_physical.View
module Config = Relax_physical.Config

(** Per-query distinct-request counts (Table 1). *)
type request_stats = {
  qid : string;
  index_requests : int;
  view_requests : int;
}

val indexes_for_request :
  Relax_optimizer.Env.t -> Relax_optimizer.Request.t -> Index.t list
(** Optimal index candidates for one request: the seek-optimal covering
    index (keys = sargable columns by increasing selectivity, equalities
    first, at most one trailing non-equality; suffix = every other needed
    column) and, when an order is requested, the order-providing index
    (§2.1).  At most two. *)

val view_for_request :
  Relax_optimizer.Env.t -> Query.spjg -> (View.t * float * Index.t) option
(** Materialize a view request: the sub-query itself, its cardinality
    estimate, and a clustered index keyed on its grouping columns.  [None]
    for single-table ungrouped blocks (index territory). *)

type result = {
  optimal : Config.t;  (** the optimal configuration (§2.1) *)
  stats : request_stats list;
  passes : int;
}

val instrumentable : Query.workload -> (string * Query.select_query) list
(** Statements to instrument: selects plus select components of updates. *)

val optimal_configuration :
  Relax_catalog.Catalog.t ->
  base:Config.t ->
  ?views:bool ->
  ?max_passes:int ->
  Query.workload ->
  result
(** Intercept all requests during optimization and gather the optimal
    structures.  [base] holds structures present in any configuration;
    [views:false] gives the indexes-only tuning mode. *)
