lib/core/transform.ml: Column_set Fmt Hashtbl List Option Relax_physical Relax_sql
