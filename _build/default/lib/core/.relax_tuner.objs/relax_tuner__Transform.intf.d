lib/core/transform.mli: Format Relax_physical
