lib/core/tuner.mli: Instrument Relax_catalog Relax_physical Relax_sql Search
