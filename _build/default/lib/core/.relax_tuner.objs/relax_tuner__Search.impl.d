lib/core/search.ml: Cost_bound Float Hashtbl List Logs Map Option Random Relax_catalog Relax_optimizer Relax_physical Relax_sql String Transform Unix
