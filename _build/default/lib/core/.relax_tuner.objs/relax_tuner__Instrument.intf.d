lib/core/instrument.mli: Relax_catalog Relax_optimizer Relax_physical Relax_sql
