lib/core/search.mli: Map Relax_catalog Relax_optimizer Relax_physical Relax_sql Transform
