lib/core/cost_bound.ml: Column Column_set Float List Relax_optimizer Relax_physical Relax_sql
