lib/core/report.mli: Format Tuner
