lib/core/instrument.ml: Column Column_set Float Fun Hashtbl List Logs Relax_optimizer Relax_physical Relax_sql
