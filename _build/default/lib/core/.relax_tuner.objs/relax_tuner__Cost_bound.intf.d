lib/core/cost_bound.mli: Relax_optimizer Relax_physical
