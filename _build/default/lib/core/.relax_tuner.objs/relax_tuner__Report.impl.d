lib/core/report.ml: Float Fmt Instrument List Relax_physical Tuner
