lib/core/tuner.ml: Float Instrument List Relax_catalog Relax_optimizer Relax_physical Relax_sql Search Unix
