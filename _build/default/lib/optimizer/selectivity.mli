(** Selectivity estimation, under the paper's standing independence
    assumption: histograms for sargable ranges, the containment rule for
    equi-joins, System-R-style defaults for non-sargable shapes. *)

val clamp : float -> float
(** Into [1e-9, 1]. *)

val range : Env.t -> Relax_sql.Predicate.range -> float
val join : Env.t -> Relax_sql.Predicate.join -> float

val param_eq : Env.t -> Relax_sql.Types.column -> float
(** Equality against a join parameter: [1 / distinct]. *)

val other : Env.t -> Relax_sql.Expr.t -> float
(** Shape-keyed default guess for a non-sargable conjunct. *)

val local :
  Env.t ->
  ranges:Relax_sql.Predicate.range list ->
  others:Relax_sql.Expr.t list ->
  float
(** Combined selectivity of single-relation conjuncts. *)
