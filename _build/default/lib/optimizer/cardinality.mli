(** Cardinality estimation for SPJG blocks — the optimizer's "cardinality
    module", also reused to estimate candidate view sizes (§3.3.1). *)

val join_rows :
  Env.t ->
  tables:string list ->
  joins:Relax_sql.Predicate.join list ->
  ranges:Relax_sql.Predicate.range list ->
  others:Relax_sql.Expr.t list ->
  float
(** Rows of the (pre-grouping) join under the given predicates. *)

val group_rows : Env.t -> input_rows:float -> Relax_sql.Types.column list -> float
(** Distinct groups when grouping [input_rows] rows by the given keys. *)

val spjg : Env.t -> Relax_sql.Query.spjg -> float
(** Output cardinality of a full block. *)
