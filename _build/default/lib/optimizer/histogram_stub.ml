(** Tiny constructors for synthetic histograms attached to derived (view)
    columns whose true distribution is unknown. *)

module Histogram = Relax_catalog.Histogram

(** A single-bucket uniform histogram over [lo, hi]. *)
let uniform lo hi = Histogram.of_values ~buckets:1 [ lo; hi ]

(** The degenerate [0,1] histogram. *)
let unit_hist = uniform 0.0 1.0
