(** Maintenance costs of physical structures under update statements
    (§3.6): the "update shell" model.

    An index on the updated table is charged when the statement touches any
    of its columns (always, for inserts and deletes); an index over a view
    is charged whenever the view reads the updated table, with a multiplier
    for delta computation. *)

val view_delta_factor : float

val affected_rows : Env.t -> Relax_sql.Query.dml -> float
(** Estimated rows the statement touches. *)

val index_affected : Relax_sql.Query.dml -> Relax_physical.Index.t -> bool
val view_affected : Relax_sql.Query.dml -> Relax_physical.View.t -> bool

val shell_cost :
  Env.t -> Relax_physical.Config.t -> Relax_sql.Query.dml -> float
(** Total maintenance cost of the configuration for one update statement
    (plus the config-independent base-relation write). *)
