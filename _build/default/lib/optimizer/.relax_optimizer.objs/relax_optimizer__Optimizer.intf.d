lib/optimizer/optimizer.mli: Env Hooks Plan Relax_catalog Relax_physical Relax_sql
