lib/optimizer/request.mli: Column_set Format Relax_sql
