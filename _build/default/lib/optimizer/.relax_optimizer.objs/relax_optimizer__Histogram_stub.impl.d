lib/optimizer/histogram_stub.ml: Relax_catalog
