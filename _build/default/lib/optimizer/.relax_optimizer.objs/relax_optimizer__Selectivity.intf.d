lib/optimizer/selectivity.mli: Env Relax_sql
