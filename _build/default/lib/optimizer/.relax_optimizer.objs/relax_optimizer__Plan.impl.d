lib/optimizer/plan.ml: Column Column_set Fmt List Relax_physical Relax_sql Request
