lib/optimizer/hooks.ml: Relax_sql Request
