lib/optimizer/view_match.mli: Column_set Relax_physical Relax_sql
