lib/optimizer/hooks.mli: Relax_sql Request
