lib/optimizer/optimizer.ml: Access_path Array Cardinality Column_set Cost_params Env Float Hashtbl Hooks List Logs Plan Relax_physical Relax_sql Request View_match
