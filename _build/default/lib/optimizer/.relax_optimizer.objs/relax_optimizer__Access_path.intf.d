lib/optimizer/access_path.mli: Env Hooks Plan Relax_physical Relax_sql Request
