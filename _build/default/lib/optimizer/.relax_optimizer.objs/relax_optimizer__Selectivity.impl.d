lib/optimizer/selectivity.ml: Env Float List Relax_catalog Relax_sql String Value
