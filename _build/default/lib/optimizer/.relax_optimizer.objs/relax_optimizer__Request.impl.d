lib/optimizer/request.ml: Column Column_set Fmt List Relax_sql String
