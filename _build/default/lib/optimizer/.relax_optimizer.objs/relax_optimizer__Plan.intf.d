lib/optimizer/plan.mli: Column_set Format Relax_physical Relax_sql Request
