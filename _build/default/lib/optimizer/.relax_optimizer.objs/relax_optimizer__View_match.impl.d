lib/optimizer/view_match.ml: Column Column_set List Relax_physical Relax_sql
