lib/optimizer/access_path.ml: Column Column_set Cost_params Env Float Hooks List Plan Relax_catalog Relax_physical Relax_sql Request Selectivity
