lib/optimizer/whatif.ml: Env Hashtbl List Optimizer Plan Relax_catalog Relax_physical Relax_sql Update_cost
