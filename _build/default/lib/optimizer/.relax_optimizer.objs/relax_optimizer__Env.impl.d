lib/optimizer/env.ml: Float Histogram_stub List Relax_catalog Relax_physical Relax_sql
