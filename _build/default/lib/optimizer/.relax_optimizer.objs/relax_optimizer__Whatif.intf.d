lib/optimizer/whatif.mli: Plan Relax_catalog Relax_physical Relax_sql
