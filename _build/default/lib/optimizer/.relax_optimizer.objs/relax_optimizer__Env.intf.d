lib/optimizer/env.mli: Relax_catalog Relax_physical Relax_sql
