lib/optimizer/cost_params.ml: Float
