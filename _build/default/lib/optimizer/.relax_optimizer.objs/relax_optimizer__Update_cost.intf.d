lib/optimizer/update_cost.mli: Env Relax_physical Relax_sql
