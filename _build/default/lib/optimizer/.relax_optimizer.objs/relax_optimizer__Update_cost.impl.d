lib/optimizer/update_cost.ml: Column_set Cost_params Env Float List Relax_physical Relax_sql Selectivity
