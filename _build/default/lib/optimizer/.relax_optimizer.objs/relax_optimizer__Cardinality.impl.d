lib/optimizer/cardinality.ml: Env Float List Relax_sql Selectivity
