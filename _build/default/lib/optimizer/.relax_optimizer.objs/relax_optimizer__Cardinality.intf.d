lib/optimizer/cardinality.mli: Env Relax_sql
