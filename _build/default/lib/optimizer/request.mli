(** Access-path requests — the contract between the optimizer and the
    tuner.

    An index request [(S, N, O, A)] (§2) is issued by the optimizer's
    single-relation access-path-selection entry point each time it needs a
    physical sub-plan for a logical single-table expression. *)

open Relax_sql.Types

type t = {
  rel : string;  (** the relation (base table or view-table) *)
  ranges : Relax_sql.Predicate.range list;
      (** sargable conjuncts against constants *)
  param_eq : column list;
      (** sargable equalities against join parameters (index nested-loop
          inner sides) *)
  others : Relax_sql.Expr.t list;  (** N: non-sargable conjuncts *)
  order : (column * order_dir) list;  (** O: required output order *)
  cols : Column_set.t;  (** every column required upward *)
}

val make :
  rel:string ->
  ?ranges:Relax_sql.Predicate.range list ->
  ?param_eq:column list ->
  ?others:Relax_sql.Expr.t list ->
  ?order:(column * order_dir) list ->
  cols:Column_set.t ->
  unit ->
  t
(** [cols] is automatically extended with every column the predicates and
    order reference. *)

val sargable_columns : t -> Column_set.t
(** S. *)

val non_sargable_columns : t -> Column_set.t
(** Columns of N. *)

val order_columns : t -> column list

val additional_columns : t -> Column_set.t
(** A: referenced columns not already in S, N or O. *)

val pp : Format.formatter -> t -> unit

val fingerprint : t -> string
(** Stable identity for request de-duplication (Table 1 counts distinct
    requests). *)
