(** Maintenance costs of physical structures under update statements
    (§3.6).

    Each update statement is split into a pure select component (costed by
    the regular optimizer) and an "update shell" whose cost is the sum of
    per-structure maintenance charges: an index on the updated table is
    charged when the statement touches any of its columns (always, for
    inserts and deletes); an index over a view is charged whenever the view
    reads the updated table, with a multiplier reflecting delta
    computation. *)

open Relax_sql.Types
module Query = Relax_sql.Query
module Index = Relax_physical.Index
module View = Relax_physical.View
module Config = Relax_physical.Config
module Size_model = Relax_physical.Size_model
module P = Cost_params

let view_delta_factor = 2.0
(* maintaining a view index costs about this multiple of a base index: the
   delta rows must be computed by (partially) re-evaluating the view *)

(** Estimated number of rows an update statement touches. *)
let affected_rows env (d : Query.dml) =
  match d with
  | Insert i -> float_of_int i.rows
  | Update { table; ranges; others; _ } | Delete { table; ranges; others } ->
    Float.max 1.0 (Env.rows env table *. Selectivity.local env ~ranges ~others)

(* Touching [k] entries of an index: descend once per modified row (cheap,
   cached upper levels -> charge a fraction of a random page) plus a leaf
   write, capped by the number of leaf pages. *)
let per_index env ~k (i : Index.t) =
  let rel = Index.owner i in
  let rows = Env.rows env rel in
  let leaf =
    Size_model.leaf_pages ~rows ~width_of:(Env.width_of env)
      ~row_width:(Env.row_width env rel) i
  in
  let touched_pages = Float.min k (2.0 *. leaf) in
  (touched_pages *. P.rand_page *. 0.5) +. (k *. P.cpu_tuple)

(** Does the statement force maintenance of this base-table index? *)
let index_affected (d : Query.dml) (i : Index.t) =
  Index.owner i = Query.dml_table d
  &&
  match d with
  | Insert _ | Delete _ -> true
  | Update _ as u ->
    let updated = Query.updated_columns u in
    not (Column_set.is_empty (Column_set.inter updated (Index.columns i)))
    || i.clustered (* clustered leaves are the rows: any update rewrites them *)

(** Does the statement force maintenance of this view? *)
let view_affected (d : Query.dml) (v : View.t) =
  let table = Query.dml_table d in
  List.mem table (View.base_tables v)
  &&
  match d with
  | Insert _ | Delete _ -> true
  | Update _ as u ->
    let updated = Query.updated_columns u in
    let vcols = Query.spjg_columns (View.definition v) in
    not (Column_set.is_empty (Column_set.inter updated vcols))

(** Total maintenance cost of the configuration for one update statement:
    the "update shell" cost of §3.6. *)
let shell_cost env (config : Config.t) (d : Query.dml) =
  let k = affected_rows env d in
  let base =
    (* the base-relation write itself: always paid, config-independent *)
    Float.min k (2.0 *. Env.table_pages env (Query.dml_table d))
    *. P.rand_page *. 0.5
    +. (k *. P.cpu_tuple)
  in
  let index_cost =
    List.fold_left
      (fun acc i ->
        if index_affected d i then acc +. per_index env ~k i else acc)
      0.0
      (Config.indexes config)
  in
  let view_cost =
    List.fold_left
      (fun acc v ->
        if view_affected d v then begin
          let vindexes = Config.indexes_on config (View.name v) in
          let per =
            List.fold_left (fun acc i -> acc +. per_index env ~k i) 0.0 vindexes
          in
          acc +. (view_delta_factor *. Float.max (k *. P.cpu_tuple) per)
        end
        else acc)
      0.0 (Config.views config)
  in
  base +. index_cost +. view_cost
