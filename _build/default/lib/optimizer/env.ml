(** Optimization environment: the catalog extended with the derived tables
    that simulate the configuration's materialized views.

    This implements the what-if principle: a hypothetical view becomes
    visible to the optimizer purely as metadata — a derived table whose
    column statistics are synthesized from the base tables it projects. *)

open Relax_sql.Types
module Catalog = Relax_catalog.Catalog
module Config = Relax_physical.Config
module View = Relax_physical.View

type t = {
  cat : Catalog.t;  (** includes derived view tables *)
  config : Config.t;
}

(** Synthesize statistics for one view output column. *)
let stats_for_item cat ~view_rows (it : Relax_sql.Query.select_item) :
    Catalog.col_stats =
  match it with
  | Item_col base -> (
    match Catalog.col_stats_opt cat base with
    | Some s -> { s with distinct = Float.min s.distinct view_rows }
    | None ->
      {
        stype = Float;
        width = 8.0;
        distinct = view_rows;
        min_v = 0.0;
        max_v = 1.0;
        hist = Histogram_stub.unit_hist;
      })
  | Item_agg (Count, _) ->
    {
      stype = Int;
      width = 8.0;
      distinct = Float.max 1.0 (sqrt view_rows);
      min_v = 1.0;
      max_v = view_rows;
      hist = Histogram_stub.uniform 1.0 (Float.max 2.0 view_rows);
    }
  | Item_agg ((Sum | Min | Max | Avg), Some base) -> (
    match Catalog.col_stats_opt cat base with
    | Some s ->
      { s with width = 8.0; distinct = Float.min view_rows s.distinct }
    | None ->
      {
        stype = Float;
        width = 8.0;
        distinct = view_rows;
        min_v = 0.0;
        max_v = 1e9;
        hist = Histogram_stub.uniform 0.0 1e9;
      })
  | Item_agg ((Sum | Min | Max | Avg), None) ->
    {
      stype = Float;
      width = 8.0;
      distinct = view_rows;
      min_v = 0.0;
      max_v = 1e9;
      hist = Histogram_stub.uniform 0.0 1e9;
    }

(** Build the environment for optimizing under [config]. *)
let make cat (config : Config.t) : t =
  let cat =
    List.fold_left
      (fun cat (v, rows) ->
        let name = View.name v in
        let cols =
          if Catalog.known_derived cat name then []
            (* statistics already synthesized on a previous simulation *)
          else
            List.map
              (fun (cname, it) -> (cname, stats_for_item cat ~view_rows:rows it))
              (View.outputs v)
        in
        Catalog.add_derived_table cat ~name ~rows ~cols)
      cat
      (Config.views_with_rows config)
  in
  { cat; config }

let rows t rel = Config.relation_rows t.cat t.config rel

let col_stats t (c : column) = Catalog.col_stats t.cat c

let col_stats_opt t (c : column) = Catalog.col_stats_opt t.cat c

let row_width t rel = Config.relation_row_width t.cat t.config rel

let width_of t c = Config.column_width t.cat t.config c

(** All indexes available on a relation under this environment. *)
let indexes_on t rel = Config.indexes_on t.config rel

let clustered_on t rel = Config.clustered_on t.config rel

(** Heap (or clustered) pages of a relation: what a full scan reads. *)
let table_pages t rel =
  match clustered_on t rel with
  | Some ci ->
    Relax_physical.Size_model.leaf_pages ~rows:(rows t rel)
      ~width_of:(width_of t) ~row_width:(row_width t rel) ci
  | None ->
    Relax_physical.Size_model.heap_pages ~rows:(rows t rel)
      ~row_width:(row_width t rel) ()
