(** Instrumentation hooks (Figure 2): callbacks firing on each index
    request (at access-path selection) and each view request (at view
    matching).  Without hooks the optimizer behaves like a production
    system. *)

type t = {
  on_index_request : Request.t -> unit;
  on_view_request : Relax_sql.Query.spjg -> unit;
}

val none : t

val fire_index : t option -> Request.t -> unit
val fire_view : t option -> Relax_sql.Query.spjg -> unit
