(** Optimization environment: the catalog extended with the derived tables
    that simulate the configuration's materialized views (the what-if
    principle: a hypothetical view is pure metadata). *)

open Relax_sql.Types
module Catalog = Relax_catalog.Catalog
module Config = Relax_physical.Config

type t = {
  cat : Catalog.t;  (** includes the derived view-tables *)
  config : Config.t;
}

val make : Catalog.t -> Config.t -> t
(** Registers a derived table per view, synthesizing column statistics from
    the base tables the view projects (memoized per view). *)

val stats_for_item :
  Catalog.t -> view_rows:float -> Relax_sql.Query.select_item ->
  Catalog.col_stats
(** Statistics synthesized for one view output column. *)

val rows : t -> string -> float
val col_stats : t -> column -> Catalog.col_stats
val col_stats_opt : t -> column -> Catalog.col_stats option
val row_width : t -> string -> float
val width_of : t -> column -> float
val indexes_on : t -> string -> Relax_physical.Index.t list
val clustered_on : t -> string -> Relax_physical.Index.t option

val table_pages : t -> string -> float
(** Heap (or clustered) pages: what a full scan of the relation reads. *)
