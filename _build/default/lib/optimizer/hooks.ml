(** Instrumentation hooks (Figure 2).

    In tuning mode, the tuner registers callbacks that fire on each index
    request (at access-path selection) and each view request (at view
    matching).  In normal mode no hooks are installed and the optimizer
    behaves like a production system. *)

type t = {
  on_index_request : Request.t -> unit;
  on_view_request : Relax_sql.Query.spjg -> unit;
}

let none = { on_index_request = ignore; on_view_request = ignore }

let fire_index hooks r =
  match hooks with Some h -> h.on_index_request r | None -> ()

let fire_view hooks q =
  match hooks with Some h -> h.on_view_request q | None -> ()
