(** Cardinality estimation for SPJG blocks.

    This is the optimizer's "cardinality module", which the paper reuses to
    estimate the row count of candidate materialized views (§3.3.1) — we do
    the same. *)

open Relax_sql.Types
module Query = Relax_sql.Query
module Predicate = Relax_sql.Predicate

(** Estimated rows of the join of [tables] under the given predicates
    (before any grouping). *)
let join_rows env ~tables ~(joins : Predicate.join list)
    ~(ranges : Predicate.range list) ~others =
  let base =
    List.fold_left (fun acc t -> acc *. Env.rows env t) 1.0 tables
  in
  let with_joins =
    List.fold_left (fun acc j -> acc *. Selectivity.join env j) base joins
  in
  let sel = Selectivity.local env ~ranges ~others in
  Float.max 1.0 (with_joins *. sel)

(** Estimated distinct groups when grouping [input_rows] rows by [keys]. *)
let group_rows env ~input_rows (keys : column list) =
  if keys = [] then 1.0
  else
    let prod =
      List.fold_left
        (fun acc c ->
          match Env.col_stats_opt env c with
          | Some s -> acc *. Float.max 1.0 s.distinct
          | None -> acc *. 100.0)
        1.0 keys
    in
    Float.max 1.0 (Float.min prod input_rows)

(** Output cardinality of a full SPJG block. *)
let spjg env (q : Query.spjg) =
  let rows =
    join_rows env ~tables:q.tables ~joins:q.joins ~ranges:q.ranges
      ~others:q.others
  in
  if q.group_by <> [] then group_rows env ~input_rows:rows q.group_by
  else if Query.has_aggregates q then 1.0
  else rows
