(** View matching: can an SPJG block be rewritten over a materialized view,
    and with what compensation?

    Subsumption tests follow the paper: equal FROM sets; the view's "other"
    conjuncts structurally included in the query's (modulo column
    equivalence); joins and ranges checked by inclusion/implication; a
    grouped view only matches queries grouping at least as coarsely.
    Compensation adds residual filters and, when needed, a re-grouping
    with re-aggregation. *)

open Relax_sql.Types

type result = {
  view : Relax_physical.View.t;
  residual_ranges : Relax_sql.Predicate.range list;
      (** over view columns, sargable *)
  residual_others : Relax_sql.Expr.t list;  (** over view columns *)
  regroup : (column list * Relax_sql.Query.select_item list) option;
      (** compensating group-by keys and outputs, over view columns *)
  needed_cols : Column_set.t;  (** view columns the rewrite reads *)
}

val try_match :
  Relax_physical.View.t -> Relax_sql.Query.spjg -> result option
(** [q.select] defines the required outputs; [None] if any subsumption test
    fails or some output/residual cannot be compensated. *)
