(** Access-path requests — the contract between the optimizer and the
    tuner.

    An index request [(S, N, O, A)] (§2) is issued by the optimizer's
    single-relation access-path-selection entry point each time it needs a
    physical sub-plan for a logical single-table expression: [S] are columns
    in sargable predicates (here split into constant [ranges] and
    parameterized equalities [param_eq], the latter arising as inner sides of
    index nested-loop joins), [N] the non-sargable conjuncts, [O] the
    required order, and [A] the additionally referenced columns. *)

open Relax_sql.Types
module Predicate = Relax_sql.Predicate
module Expr = Relax_sql.Expr

type t = {
  rel : string;  (** the relation (base table or view-table) *)
  ranges : Predicate.range list;  (** sargable conjuncts against constants *)
  param_eq : column list;
      (** sargable equalities against join parameters *)
  others : Expr.t list;  (** N: non-sargable conjuncts local to [rel] *)
  order : (column * order_dir) list;  (** O: required output order *)
  cols : Column_set.t;  (** every column required upward (includes A) *)
}

let make ~rel ?(ranges = []) ?(param_eq = []) ?(others = []) ?(order = [])
    ~cols () =
  let cols =
    List.fold_left
      (fun acc (r : Predicate.range) -> Column_set.add r.rcol acc)
      cols ranges
  in
  let cols = List.fold_left (fun acc c -> Column_set.add c acc) cols param_eq in
  let cols =
    List.fold_left
      (fun acc e -> Column_set.union acc (Expr.columns e))
      cols others
  in
  let cols =
    List.fold_left (fun acc (c, _) -> Column_set.add c acc) cols order
  in
  { rel; ranges; param_eq; others; order; cols }

(** S: the sargable columns. *)
let sargable_columns t =
  List.fold_left
    (fun acc (r : Predicate.range) -> Column_set.add r.rcol acc)
    (Column_set.of_list t.param_eq)
    t.ranges

(** N: columns of non-sargable conjuncts. *)
let non_sargable_columns t =
  List.fold_left
    (fun acc e -> Column_set.union acc (Expr.columns e))
    Column_set.empty t.others

let order_columns t = List.map fst t.order

(** A: referenced columns not already in S, N or O. *)
let additional_columns t =
  let s = sargable_columns t in
  let n = non_sargable_columns t in
  let o = Column_set.of_list (order_columns t) in
  Column_set.diff t.cols (Column_set.union s (Column_set.union n o))

let pp ppf t =
  Fmt.pf ppf "@[<h>req %s S={%a%s%a} N=%d O=[%a] A=%a@]" t.rel
    Fmt.(list ~sep:comma Predicate.pp_range)
    t.ranges
    (if t.param_eq = [] then "" else "; param:")
    Fmt.(list ~sep:comma Column.pp)
    t.param_eq (List.length t.others)
    Fmt.(list ~sep:comma (fun ppf (c, _) -> Column.pp ppf c))
    t.order pp_column_set (additional_columns t)

(** Stable identity for request de-duplication (Table 1 counts distinct
    requests). *)
let fingerprint t =
  Fmt.str "%s|%a|%s|%s|%s|%s" t.rel
    Fmt.(list ~sep:comma Predicate.pp_range)
    t.ranges
    (String.concat "," (List.map Column.to_string t.param_eq))
    (String.concat "," (List.map Expr.fingerprint t.others))
    (String.concat ","
       (List.map (fun (c, _) -> Column.to_string c) t.order))
    (String.concat ","
       (List.map Column.to_string (Column_set.elements t.cols)))
