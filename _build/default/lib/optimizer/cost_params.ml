(** Cost-model constants, in abstract "time units".

    The unit is calibrated so that one sequential page read costs 1.0 — all
    other constants are relative to that, in the usual textbook proportions.
    Absolute values are irrelevant to the reproduction (the paper compares
    configurations under one fixed model); what matters is that seeks beat
    scans when selective, random I/O is much more expensive than sequential,
    and CPU work is visible but small. *)

let seq_page = 1.0  (** sequential page read *)

let rand_page = 4.0  (** random page read *)

let cpu_tuple = 0.005  (** per-row pipeline processing *)

let cpu_compare = 0.002  (** per-comparison (sorting) *)

let cpu_hash = 0.008  (** per-row hash-table build/probe *)

let cpu_agg = 0.004  (** per-row aggregate update *)

let cpu_eval = 0.002  (** per-row predicate evaluation *)

let sort_memory_pages = 4096.0
(** pages that fit in the sort work area; larger inputs spill and pay extra
    I/O passes *)

let lookup_cluster_discount = 0.5
(** rid lookups into a clustered index hit fewer distinct pages than into a
    heap, on average *)

(** Cost of sorting [rows] rows occupying [pages] pages. *)
let sort_cost ~rows ~pages =
  let rows = Float.max 1.0 rows in
  let cpu = rows *. Float.log2 rows *. cpu_compare in
  if pages <= sort_memory_pages then cpu
  else
    (* external merge sort: one extra write+read pass per merge level *)
    let passes = Float.ceil (Float.log (pages /. sort_memory_pages) /. Float.log 8.0) in
    cpu +. (2.0 *. passes *. pages *. seq_page)

(** Cost of [rows] rid lookups against a table stored on [table_pages]
    pages.  Random fetches, capped: touching more lookups than pages
    degrades into roughly one fetch per page. *)
let rid_lookup_cost ~rows ~table_pages ~clustered =
  let per = if clustered then rand_page *. lookup_cluster_discount else rand_page in
  let fetches = Float.min rows (table_pages *. 2.0) in
  (fetches *. per) +. (rows *. cpu_tuple)
