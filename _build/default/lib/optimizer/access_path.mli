(** Single-relation access-path selection — the optimizer's unique entry
    point for physical index strategies (§2, Figure 2).

    Generated plans instantiate the paper's template tree: index seeks or
    scans at the leaves, binary rid intersections, an optional rid lookup
    for missing columns, an optional filter for non-sargable predicates, and
    an optional sort to enforce order (Figure 1).  The cheapest alternative
    wins. *)

val order_satisfied :
  delivered:(Relax_sql.Types.column * Relax_sql.Types.order_dir) list ->
  required:(Relax_sql.Types.column * Relax_sql.Types.order_dir) list ->
  bool
(** Direction-insensitive prefix test (indexes scan both ways). *)

val add_sort :
  Env.t ->
  Plan.t ->
  required:(Relax_sql.Types.column * Relax_sql.Types.order_dir) list ->
  Plan.t
(** Enforce an order with a sort operator when the plan does not already
    deliver it. *)

val best :
  Env.t ->
  ?hooks:Hooks.t ->
  ?via_view:Relax_physical.View.t ->
  Request.t ->
  Plan.t
(** Pick the cheapest physical strategy for a request, firing the
    [on_index_request] hook first.  The result is wrapped in an
    [Plan.Access] node carrying the usage records. *)
