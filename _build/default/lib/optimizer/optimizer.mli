(** The cost-based query optimizer: System-R-style dynamic programming over
    connected table subsets with hash joins and index nested-loop joins
    (whose inner sides issue parameterized index requests), view matching
    for every enumerated sub-join and for the full grouped block, and
    grouping/ordering enforcement on top.

    Hooks fire on every index and view request — the entire instrumentation
    surface of §2. *)

val optimize :
  Relax_catalog.Catalog.t ->
  Relax_physical.Config.t ->
  ?hooks:Hooks.t ->
  Relax_sql.Query.select_query ->
  Plan.t
(** Optimize one select query under a configuration. *)

val optimize_select :
  Env.t -> ?hooks:Hooks.t -> Relax_sql.Query.select_query -> Plan.t
(** Same, under a pre-built environment. *)
